package scanpower

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// runWithRecorder executes a small Table I run with a live Recorder and
// returns the recorder, its registry, and the raw trace.
func runWithRecorder(t *testing.T, names []string, workers int) (*Recorder, *telemetry.Registry, *bytes.Buffer) {
	t.Helper()
	reg := telemetry.NewRegistry()
	var traceBuf bytes.Buffer
	tw := telemetry.NewTraceWriter(&traceBuf)
	rec := NewRecorder(reg, tw)

	eng := NewEngine(DefaultConfig())
	eng.Workers = workers
	eng.Hooks = rec.Hooks()
	if _, err := eng.RunAll(context.Background(), names); err != nil {
		t.Fatal(err)
	}
	rec.Close()
	if open := tw.OpenSpans(); open != 0 {
		t.Errorf("trace left %d spans open after Close", open)
	}
	return rec, reg, &traceBuf
}

// TestRecorderEndToEnd: a concurrent Engine run through the Recorder must
// populate every metric family, produce a balanced and correctly nested
// trace, and yield a manifest that round-trips through encoding/json.
func TestRecorderEndToEnd(t *testing.T) {
	names := []string{"s344", "s382"}
	rec, reg, traceBuf := runWithRecorder(t, names, 2)

	// Metrics: the counter families of every instrumented layer are live.
	snap := reg.Snapshot()
	for _, key := range []string{
		MetricStageSeconds + `_count{stage="atpg"}`,
		MetricStageSeconds + `_count{stage="traditional"}`,
		MetricStageSeconds + `_count{stage="input-control"}`,
		MetricStageSeconds + `_count{stage="proposed"}`,
		MetricPodemFaults + `{outcome="detected"}`,
		MetricPodemBacktracks + `_count`,
		MetricJustify + `{result="success"}`,
		MetricObsSamples,
		MetricPatterns,
		MetricCacheMisses,
		MetricCircuitsDone,
	} {
		if snap[key] <= 0 {
			t.Errorf("metric %s = %v, want > 0 (snapshot %v)", key, snap[key], snap)
		}
	}
	if got := snap[MetricCircuitsDone]; got != float64(len(names)) {
		t.Errorf("circuits done = %v, want %d", got, len(names))
	}

	// Trace: every start has an end, and stage spans nest under their
	// circuit span which nests under the single run span.
	assertTraceNesting(t, traceBuf, names)

	// Manifest: populated, and stable through a JSON round-trip.
	m := rec.Manifest("test")
	if len(m.Circuits) != len(names) {
		t.Fatalf("manifest has %d circuits, want %d", len(m.Circuits), len(names))
	}
	for _, cm := range m.Circuits {
		if len(cm.Stages) != 4 {
			t.Errorf("circuit %s recorded %d stages, want 4", cm.Name, len(cm.Stages))
		}
		for _, st := range cm.Stages {
			if st.Patterns == 0 {
				t.Errorf("circuit %s stage %s reports zero patterns", cm.Name, st.Stage)
			}
		}
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := back.Write(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("manifest JSON is not stable across a round-trip")
	}
}

// assertTraceNesting parses the JSONL trace and checks the run → circuit
// → stage hierarchy with balanced start/end pairs.
func assertTraceNesting(t *testing.T, traceBuf *bytes.Buffer, circuits []string) {
	t.Helper()
	type spanRec struct{ name, parentName string }
	spans := map[int64]spanRec{} // started spans by id
	ended := map[int64]bool{}
	var runID int64
	sc := bufio.NewScanner(bytes.NewReader(traceBuf.Bytes()))
	for sc.Scan() {
		var ev telemetry.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line is not JSON: %v: %s", err, sc.Text())
		}
		switch ev.Ev {
		case "start":
			parentName := ""
			if p, ok := spans[ev.Parent]; ok {
				parentName = p.name
			}
			spans[ev.ID] = spanRec{name: ev.Name, parentName: parentName}
			if ev.Name == "run" {
				if runID != 0 {
					t.Error("trace has more than one run span")
				}
				runID = ev.ID
			}
		case "end":
			if _, ok := spans[ev.ID]; !ok {
				t.Errorf("end for unknown span %d (%s)", ev.ID, ev.Name)
			}
			if ended[ev.ID] {
				t.Errorf("span %d (%s) ended twice", ev.ID, ev.Name)
			}
			ended[ev.ID] = true
		case "span": // completed sub-stage: parent must be a started span
			if _, ok := spans[ev.Parent]; !ok {
				t.Errorf("sub-span %s has unknown parent %d", ev.Name, ev.Parent)
			}
		default:
			t.Errorf("unknown trace event %q", ev.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if runID == 0 {
		t.Fatal("trace has no run span")
	}
	for id, s := range spans {
		if !ended[id] {
			t.Errorf("span %d (%s) never ended", id, s.name)
		}
	}
	stageNames := map[string]bool{
		StageATPG: true, StageTraditional: true,
		StageInputControl: true, StageProposed: true,
	}
	circuitSet := map[string]bool{}
	for _, c := range circuits {
		circuitSet[c] = true
	}
	sawStages := 0
	for _, s := range spans {
		switch {
		case s.name == "run":
		case circuitSet[s.name]:
			if s.parentName != "run" {
				t.Errorf("circuit span %s nests under %q, want run", s.name, s.parentName)
			}
		case stageNames[s.name]:
			sawStages++
			if !circuitSet[s.parentName] {
				t.Errorf("stage span %s nests under %q, want a circuit", s.name, s.parentName)
			}
		default:
			t.Errorf("unexpected span name %q", s.name)
		}
	}
	if want := 4 * len(circuits); sawStages != want {
		t.Errorf("trace has %d stage spans, want %d", sawStages, want)
	}
}

// TestTelemetryDebugServerScrape: the debug server serves the registry a
// run populated, in Prometheus text form with expanded histogram series.
func TestTelemetryDebugServerScrape(t *testing.T) {
	_, reg, _ := runWithRecorder(t, []string{"s344"}, 1)
	srv, err := telemetry.ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE scanpower_stage_seconds histogram",
		`scanpower_stage_seconds_bucket{stage="atpg",le="+Inf"} 1`,
		`scanpower_podem_faults_total{outcome="detected"}`,
		"scanpower_patterns_measured_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestRecorderNilSinks: a Recorder with no registry and no trace writer
// still accumulates the manifest and never panics.
func TestRecorderNilSinks(t *testing.T) {
	rec := NewRecorder(nil, nil)
	eng := NewEngine(DefaultConfig())
	eng.Hooks = rec.Hooks()
	if _, err := eng.RunAll(context.Background(), []string{"s344"}); err != nil {
		t.Fatal(err)
	}
	rec.Close()
	m := rec.Manifest("nil-sinks")
	if len(m.Circuits) != 1 || len(m.Circuits[0].Stages) != 4 {
		t.Errorf("manifest = %+v, want one circuit with four stages", m.Circuits)
	}
	if m.Counters != nil {
		t.Errorf("nil registry must yield nil counters, got %v", m.Counters)
	}
}

// TestRecorderCircuitError: failures reported after the fact land in the
// manifest entry of the right circuit.
func TestRecorderCircuitError(t *testing.T) {
	rec := NewRecorder(nil, nil)
	rec.Hooks().OnStageStart("sX", StageATPG)
	rec.CircuitError("sX", fmt.Errorf("boom"))
	rec.CircuitError("sY", fmt.Errorf("late"))
	rec.Close()
	m := rec.Manifest("")
	if len(m.Circuits) != 2 {
		t.Fatalf("manifest has %d circuits, want 2", len(m.Circuits))
	}
	byName := map[string]telemetry.CircuitManifest{}
	for _, cm := range m.Circuits {
		byName[cm.Name] = cm
	}
	if byName["sX"].Err != "boom" || byName["sY"].Err != "late" {
		t.Errorf("errors not recorded: %+v", m.Circuits)
	}
}

// TestMergeHooksAllFire: merged hook sets must both observe every event
// class, in argument order.
func TestMergeHooksAllFire(t *testing.T) {
	var order []string
	mk := func(tag string) Hooks {
		return Hooks{
			OnStageStart: func(string, string) { order = append(order, tag+".start") },
			OnPodemFault: func(string, PodemFaultInfo) { order = append(order, tag+".podem") },
		}
	}
	h := MergeHooks(mk("a"), Hooks{}, mk("b"))
	h.OnStageStart("c", StageATPG)
	h.OnPodemFault("c", PodemFaultInfo{})
	want := []string{"a.start", "b.start", "a.podem", "b.podem"}
	if len(order) != len(want) {
		t.Fatalf("events = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("events = %v, want %v", order, want)
		}
	}
}
