package scanpower

// Benchmark harness regenerating every table and figure of the paper:
//
//   - BenchmarkTableI/<circuit>   — one benchmark per Table I row. Each
//     run reports, via b.ReportMetric, the measured dynamic (µW/Hz ×1e9
//     for readability) and static (µW) power of the three structures and
//     the four improvement percentages — the exact columns of the table.
//   - BenchmarkFigure2           — the NAND2 45 nm leakage table.
//   - BenchmarkAblation*         — the design-choice studies DESIGN.md
//     calls out (observability directive, input reordering, don't-care
//     fill, MUX budget).
//   - Benchmark<Component>       — throughput of the substrates.
//
// Run: go test -bench=. -benchmem .

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/leakage"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/scan"
	"repro/internal/sim"
	"repro/internal/timing"
)

func benchCircuit(b *testing.B, name string) *netlist.Circuit {
	b.Helper()
	c, err := Benchmark(name)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkTableI regenerates the paper's Table I row by row.
func BenchmarkTableI(b *testing.B) {
	for _, name := range BenchmarkNames() {
		b.Run(name, func(b *testing.B) {
			c := benchCircuit(b, name)
			cfg := DefaultConfig()
			var cmp *Comparison
			var err error
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cmp, err = Compare(context.Background(), c, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cmp.Traditional.DynamicPerHz*1e9, "trad_dyn_nW/GHz")
			b.ReportMetric(cmp.Traditional.StaticUW, "trad_stat_uW")
			b.ReportMetric(cmp.InputControl.DynamicPerHz*1e9, "ic_dyn_nW/GHz")
			b.ReportMetric(cmp.InputControl.StaticUW, "ic_stat_uW")
			b.ReportMetric(cmp.Proposed.DynamicPerHz*1e9, "prop_dyn_nW/GHz")
			b.ReportMetric(cmp.Proposed.StaticUW, "prop_stat_uW")
			b.ReportMetric(cmp.DynImprovementVsTraditional(), "dynT_%")
			b.ReportMetric(cmp.StaticImprovementVsTraditional(), "statT_%")
			b.ReportMetric(cmp.DynImprovementVsInputControl(), "dynIC_%")
			b.ReportMetric(cmp.StaticImprovementVsInputControl(), "statIC_%")
		})
	}
}

// BenchmarkFigure2 regenerates the NAND2 leakage table of Figure 2 and
// reports its four entries (paper: 78, 73, 264, 408 nA).
func BenchmarkFigure2(b *testing.B) {
	var f [4]float64
	for i := 0; i < b.N; i++ {
		m := leakage.New(leakage.DefaultParams())
		f = m.Figure2()
	}
	b.ReportMetric(f[0], "nand2_00_nA")
	b.ReportMetric(f[1], "nand2_01_nA")
	b.ReportMetric(f[2], "nand2_10_nA")
	b.ReportMetric(f[3], "nand2_11_nA")
}

// ablationSetup prepares circuit + patterns once per ablation benchmark.
func ablationSetup(b *testing.B, name string) (*netlist.Circuit, []scan.Pattern, Config) {
	b.Helper()
	c := benchCircuit(b, name)
	cfg := DefaultConfig()
	res, err := atpg.Generate(c, cfg.ATPG)
	if err != nil {
		b.Fatal(err)
	}
	return c, res.Patterns, cfg
}

func measureWith(b *testing.B, c *netlist.Circuit, pats []scan.Pattern,
	cfg Config, opts core.Options) power.Report {
	b.Helper()
	sol, err := core.Build(c, opts)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := power.MeasureScan(scan.New(sol.Circuit), pats, sol.Cfg, cfg.Leak, cfg.Cap)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkAblationObsDirective compares the full flow against one whose
// choices are not directed by leakage observability.
func BenchmarkAblationObsDirective(b *testing.B) {
	c, pats, cfg := ablationSetup(b, "s641")
	var full, ablated power.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full = measureWith(b, c, pats, cfg, cfg.Proposed)
		noObs := cfg.Proposed
		noObs.ObsDirected = false
		ablated = measureWith(b, c, pats, cfg, noObs)
	}
	b.ReportMetric(full.StaticUW, "full_stat_uW")
	b.ReportMetric(ablated.StaticUW, "noObs_stat_uW")
	b.ReportMetric(power.Improvement(ablated.StaticUW, full.StaticUW), "obs_gain_%")
}

// BenchmarkAblationReorder isolates the gate input reordering stage.
func BenchmarkAblationReorder(b *testing.B) {
	c, pats, cfg := ablationSetup(b, "s344")
	var full, ablated power.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full = measureWith(b, c, pats, cfg, cfg.Proposed)
		noRe := cfg.Proposed
		noRe.ReorderInputs = false
		ablated = measureWith(b, c, pats, cfg, noRe)
	}
	b.ReportMetric(full.StaticUW, "full_stat_uW")
	b.ReportMetric(ablated.StaticUW, "noReorder_stat_uW")
	b.ReportMetric(power.Improvement(ablated.StaticUW, full.StaticUW), "reorder_gain_%")
}

// BenchmarkAblationFill isolates the random minimum-leakage don't-care
// fill against a single arbitrary completion.
func BenchmarkAblationFill(b *testing.B) {
	c, pats, cfg := ablationSetup(b, "s344")
	var full, ablated power.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full = measureWith(b, c, pats, cfg, cfg.Proposed)
		oneFill := cfg.Proposed
		oneFill.FillTrials = 1
		oneFill.ObsDirected = false // greedy fill would mask the ablation
		ablated = measureWith(b, c, pats, cfg, oneFill)
	}
	b.ReportMetric(full.StaticUW, "full_stat_uW")
	b.ReportMetric(ablated.StaticUW, "oneFill_stat_uW")
	b.ReportMetric(power.Improvement(ablated.StaticUW, full.StaticUW), "fill_gain_%")
}

// BenchmarkAblationMuxBudget sweeps the MUX count (0%, 50%, 100% of the
// timing-feasible cells) and reports the dynamic power at each point.
func BenchmarkAblationMuxBudget(b *testing.B) {
	c, pats, cfg := ablationSetup(b, "s344")
	muxable, _ := core.AddMUX(c, cfg.Delay)
	var feasible []int
	for fi, ok := range muxable {
		if ok {
			feasible = append(feasible, fi)
		}
	}
	var dyn [3]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, frac := range []float64{0, 0.5, 1} {
			mask := make([]bool, c.NumFFs())
			for k := 0; k < int(frac*float64(len(feasible))+0.5); k++ {
				mask[feasible[k]] = true
			}
			opts := cfg.Proposed
			opts.MuxMask = mask
			dyn[j] = measureWith(b, c, pats, cfg, opts).DynamicPerHz
		}
	}
	b.ReportMetric(dyn[0]*1e9, "mux0_dyn_nW/GHz")
	b.ReportMetric(dyn[1]*1e9, "mux50_dyn_nW/GHz")
	b.ReportMetric(dyn[2]*1e9, "mux100_dyn_nW/GHz")
}

// ---- substrate throughput benchmarks ----

func BenchmarkSimEval(b *testing.B) {
	c := benchCircuit(b, "s1423")
	s := sim.New(c)
	rng := rand.New(rand.NewSource(1))
	pi := make([]bool, len(c.PIs))
	ppi := make([]bool, c.NumFFs())
	sim.RandomVector(rng, pi)
	sim.RandomVector(rng, ppi)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Eval(pi, ppi)
	}
	b.ReportMetric(float64(c.NumGates()), "gates")
}

func BenchmarkLeakageCircuit(b *testing.B) {
	c := benchCircuit(b, "s1423")
	lm := leakage.Default()
	tabs := lm.CircuitTables(c)
	state := make([]bool, c.NumNets())
	for i := range state {
		state[i] = i%3 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lm.CircuitLeakBoolTabs(c, state, tabs)
	}
}

func BenchmarkSTA(b *testing.B) {
	c := benchCircuit(b, "s5378")
	model := timing.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		timing.Analyze(c, model)
	}
}

func BenchmarkATPG(b *testing.B) {
	c := benchCircuit(b, "s344")
	opts := atpg.DefaultOptions()
	var res *atpg.Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = atpg.Generate(c, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Coverage()*100, "coverage_%")
	b.ReportMetric(float64(len(res.Patterns)), "patterns")
}

func BenchmarkFaultSim(b *testing.B) {
	c := benchCircuit(b, "s1423")
	fs := atpg.NewFaultSim(c)
	faults := atpg.AllFaults(c)
	rng := rand.New(rand.NewSource(2))
	pi := make([]bool, len(c.PIs))
	ppi := make([]bool, c.NumFFs())
	sim.RandomVector(rng, pi)
	sim.RandomVector(rng, ppi)
	fs.SetPattern(pi, ppi)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if fs.Detects(faults[i%len(faults)]) {
			n++
		}
	}
	_ = n
}

func BenchmarkFindControlledInputPattern(b *testing.B) {
	c := benchCircuit(b, "s641")
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(c, cfg.Proposed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObservability(b *testing.B) {
	c := benchCircuit(b, "s1423")
	lm := leakage.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs.Estimate(c, lm, 128, rand.New(rand.NewSource(3)))
	}
}

func BenchmarkMeasureScan(b *testing.B) {
	c := benchCircuit(b, "s641")
	cfg := DefaultConfig()
	res, err := atpg.Generate(c, cfg.ATPG)
	if err != nil {
		b.Fatal(err)
	}
	ch := scan.New(c)
	tcfg := scan.Traditional(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := power.MeasureScan(ch, res.Patterns, tcfg, cfg.Leak, cfg.Cap); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Patterns)*c.NumFFs()), "shift_cycles")
}

func BenchmarkReorderInputs(b *testing.B) {
	c := benchCircuit(b, "s1423")
	lm := leakage.Default()
	state := make([]logic.Value, c.NumNets())
	rng := rand.New(rand.NewSource(4))
	for i := range state {
		state[i] = logic.Value(rng.Intn(3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clone := c.Clone()
		clone.MustFreeze()
		core.ReorderInputs(clone, state, lm)
	}
}
