package scanpower

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/power"
)

// Stage names reported through Hooks.
const (
	// StageATPG is pattern generation (PODEM + fault simulation) — the
	// dominant cost and the stage the Engine memoizes.
	StageATPG = "atpg"
	// StageTraditional, StageInputControl and StageProposed are the three
	// structure build+measure stages of one Table I row.
	StageTraditional  = "traditional"
	StageInputControl = "input-control"
	StageProposed     = "proposed"
)

// StageInfo carries per-stage counters to Hooks.OnStageDone.
type StageInfo struct {
	// Patterns is the test-set size after the stage (ATPG: generated or
	// cache-served; measurement stages: applied).
	Patterns int
	// Backtracks is the total PODEM backtrack count (ATPG stage only;
	// zero when the stage was served from the cache).
	Backtracks int
	// CacheHit is true when the ATPG stage performed no generation work
	// because the pattern cache already held the result.
	CacheHit bool
	// Failed is true when the stage ended with an error (including
	// cancellation). Failed stages still emit OnStageDone so start/done
	// pairs — and any spans built on them — always balance.
	Failed bool
}

// PodemFaultInfo describes one deterministic PODEM attempt to
// Hooks.OnPodemFault.
type PodemFaultInfo struct {
	// Fault names the target stuck-at fault, e.g. "G17/SA0".
	Fault string
	// Outcome is "detected", "untestable", "aborted" or "skipped" (the
	// MaxPodemFaults cap left the fault unattempted).
	Outcome string
	// Backtracks is the search effort this fault cost.
	Backtracks int
}

// JustifyInfo describes one justification attempt of the transition
// blocking search to Hooks.OnJustify.
type JustifyInfo struct {
	// Success reports whether a blocking assignment was committed.
	Success bool
	// Backtracks is the branch-and-bound effort spent.
	Backtracks int
}

// Hooks observes an Engine (or a context-first package function) as it
// works. Any field may be nil; callbacks must be safe for concurrent use
// when the Engine runs with more than one worker. The stage callbacks are
// coarse (four per circuit); the remaining callbacks are the deep
// instrumentation feed of the telemetry layer (see Recorder) and fire at
// per-fault / per-pattern granularity, so keep them cheap.
type Hooks struct {
	// OnStageStart fires when a stage begins on a circuit. Cache-served
	// ATPG stages fire it too, immediately followed by their OnStageDone
	// with CacheHit set, so start/done pairs always balance.
	OnStageStart func(circuit, stage string)
	// OnStageDone fires when a stage completes, with its wall time and
	// counters. Cache-served ATPG stages report ~zero elapsed time and
	// CacheHit set.
	OnStageDone func(circuit, stage string, elapsed time.Duration, info StageInfo)
	// OnProgress fires after each circuit of an Engine run completes
	// (successfully or not), with the running done count.
	OnProgress func(circuit string, done, total int)

	// OnSubStage fires when an instrumented sub-stage completes: ATPG's
	// "random"/"podem"/"compact" phases and the structure builds'
	// "observability"/"blocking"/"fill"/"reorder" phases.
	OnSubStage func(circuit, stage, sub string, elapsed time.Duration, info StageInfo)
	// OnPodemFault fires after every deterministic-phase PODEM fault
	// during generation (never for cache-served stages).
	OnPodemFault func(circuit string, info PodemFaultInfo)
	// OnJustify fires after every justification attempt of the
	// input-control and proposed structure builds.
	OnJustify func(circuit string, info JustifyInfo)
	// OnObsSamples fires as the Monte-Carlo leakage-observability estimate
	// progresses, with the vectors simulated since the previous call.
	OnObsSamples func(circuit string, samples int)
	// OnPattern fires after each pattern measured during a measurement
	// stage, with the zero-based pattern index.
	OnPattern func(circuit, stage string, index int)
	// OnMeasureBatch fires after the packed measurement kernel evaluates
	// one batch of bit-parallel lanes, with the number of scan cycles the
	// batch carried and its wall time. Serial backends never fire it.
	OnMeasureBatch func(circuit, stage string, lanes int, elapsed time.Duration)
	// OnMCBatch fires after a packed Monte-Carlo kernel inside a structure
	// build evaluates one 64-lane batch: kind is "obs" (observability
	// vectors) or "fill" (fill trials), lanes the vectors/trials carried,
	// elapsed the batch's evaluation wall time. The scalar MC backend
	// never fires it.
	OnMCBatch func(circuit, stage, kind string, lanes int, elapsed time.Duration)
	// OnFaultSimBatch fires after each packed fault-dropping pass of the
	// ATPG stage: kind is "drop" (deterministic-phase buffer flush) or
	// "compact" (static compaction), lanes the pattern lanes the pass
	// simulated (never for cache-served stages).
	OnFaultSimBatch func(circuit, kind string, lanes int, elapsed time.Duration)
	// OnPodemChunk fires after a fault-parallel ATPG scheduler worker
	// finishes one chunk of the residual fault queue (only when
	// Config.ATPG.Workers > 1). It is invoked concurrently from worker
	// goroutines; implementations must be goroutine-safe.
	OnPodemChunk func(circuit string, start, n int, elapsed time.Duration)
}

// empty reports whether no callback is set (func fields make Hooks
// non-comparable, so this stands in for == Hooks{}).
func (h Hooks) empty() bool {
	return h.OnStageStart == nil && h.OnStageDone == nil && h.OnProgress == nil &&
		h.OnSubStage == nil && h.OnPodemFault == nil && h.OnJustify == nil &&
		h.OnObsSamples == nil && h.OnPattern == nil && h.OnMeasureBatch == nil &&
		h.OnMCBatch == nil && h.OnFaultSimBatch == nil && h.OnPodemChunk == nil
}

func (h Hooks) stageStart(circuit, stage string) {
	if h.OnStageStart != nil {
		h.OnStageStart(circuit, stage)
	}
}

func (h Hooks) stageDone(circuit, stage string, elapsed time.Duration, info StageInfo) {
	if h.OnStageDone != nil {
		h.OnStageDone(circuit, stage, elapsed, info)
	}
}

func (h Hooks) progress(circuit string, done, total int) {
	if h.OnProgress != nil {
		h.OnProgress(circuit, done, total)
	}
}

// atpgObserver adapts the deep hooks to an atpg.Observer bound to one
// circuit. With none of the relevant hooks set it returns the zero
// Observer, which adds no work to generation.
func (h Hooks) atpgObserver(c *netlist.Circuit) atpg.Observer {
	var ob atpg.Observer
	if h.OnPodemFault != nil {
		hook := h.OnPodemFault
		ob.OnPodemFault = func(f atpg.Fault, outcome atpg.PodemOutcome, backtracks int) {
			hook(c.Name, PodemFaultInfo{
				Fault:      f.Name(c),
				Outcome:    outcome.String(),
				Backtracks: backtracks,
			})
		}
	}
	if h.OnSubStage != nil {
		hook := h.OnSubStage
		ob.OnPhase = func(phase string, elapsed time.Duration, patterns int) {
			hook(c.Name, StageATPG, phase, elapsed, StageInfo{Patterns: patterns})
		}
	}
	if h.OnFaultSimBatch != nil {
		hook := h.OnFaultSimBatch
		ob.OnFaultSimBatch = func(kind string, lanes int, elapsed time.Duration) {
			hook(c.Name, kind, lanes, elapsed)
		}
	}
	if h.OnPodemChunk != nil {
		hook := h.OnPodemChunk
		ob.OnPodemChunk = func(start, n int, elapsed time.Duration) {
			hook(c.Name, start, n, elapsed)
		}
	}
	return ob
}

// coreObserver adapts the deep hooks to a core.Observer bound to one
// circuit's structure-build stage.
func (h Hooks) coreObserver(circuit, stage string) core.Observer {
	var ob core.Observer
	if h.OnJustify != nil {
		hook := h.OnJustify
		ob.OnJustify = func(_ netlist.NetID, success bool, backtracks int) {
			hook(circuit, JustifyInfo{Success: success, Backtracks: backtracks})
		}
	}
	if h.OnObsSamples != nil {
		hook := h.OnObsSamples
		ob.OnObsSamples = func(n int) { hook(circuit, n) }
	}
	if h.OnMCBatch != nil {
		hook := h.OnMCBatch
		ob.OnMCBatch = func(kind string, lanes int, elapsed time.Duration) {
			hook(circuit, stage, kind, lanes, elapsed)
		}
	}
	if h.OnSubStage != nil {
		hook := h.OnSubStage
		ob.OnPhase = func(phase string, elapsed time.Duration) {
			hook(circuit, stage, phase, elapsed, StageInfo{})
		}
	}
	return ob
}

// measureOptions returns the per-stage measurement options, wiring the
// per-pattern hook when set.
func (h Hooks) measureOptions(ctx context.Context, circuit, stage string) power.MeasureOptions {
	m := power.MeasureOptions{Ctx: ctx}
	if h.OnPattern != nil {
		hook := h.OnPattern
		m.OnPattern = func(index int) { hook(circuit, stage, index) }
	}
	if h.OnMeasureBatch != nil {
		hook := h.OnMeasureBatch
		m.OnBatch = func(lanes int, elapsed time.Duration) { hook(circuit, stage, lanes, elapsed) }
	}
	return m
}

// MergeHooks chains any number of hook sets: every non-nil callback of
// every set fires, in argument order. Use it to combine a progress printer
// with a telemetry Recorder.
func MergeHooks(hs ...Hooks) Hooks {
	var live []Hooks
	for _, h := range hs {
		if !h.empty() {
			live = append(live, h)
		}
	}
	if len(live) == 1 {
		return live[0]
	}
	var out Hooks
	for _, h := range live {
		h := h
		if h.OnStageStart != nil {
			prev := out.OnStageStart
			next := h.OnStageStart
			out.OnStageStart = func(circuit, stage string) {
				if prev != nil {
					prev(circuit, stage)
				}
				next(circuit, stage)
			}
		}
		if h.OnStageDone != nil {
			prev := out.OnStageDone
			next := h.OnStageDone
			out.OnStageDone = func(circuit, stage string, elapsed time.Duration, info StageInfo) {
				if prev != nil {
					prev(circuit, stage, elapsed, info)
				}
				next(circuit, stage, elapsed, info)
			}
		}
		if h.OnProgress != nil {
			prev := out.OnProgress
			next := h.OnProgress
			out.OnProgress = func(circuit string, done, total int) {
				if prev != nil {
					prev(circuit, done, total)
				}
				next(circuit, done, total)
			}
		}
		if h.OnSubStage != nil {
			prev := out.OnSubStage
			next := h.OnSubStage
			out.OnSubStage = func(circuit, stage, sub string, elapsed time.Duration, info StageInfo) {
				if prev != nil {
					prev(circuit, stage, sub, elapsed, info)
				}
				next(circuit, stage, sub, elapsed, info)
			}
		}
		if h.OnPodemFault != nil {
			prev := out.OnPodemFault
			next := h.OnPodemFault
			out.OnPodemFault = func(circuit string, info PodemFaultInfo) {
				if prev != nil {
					prev(circuit, info)
				}
				next(circuit, info)
			}
		}
		if h.OnJustify != nil {
			prev := out.OnJustify
			next := h.OnJustify
			out.OnJustify = func(circuit string, info JustifyInfo) {
				if prev != nil {
					prev(circuit, info)
				}
				next(circuit, info)
			}
		}
		if h.OnObsSamples != nil {
			prev := out.OnObsSamples
			next := h.OnObsSamples
			out.OnObsSamples = func(circuit string, samples int) {
				if prev != nil {
					prev(circuit, samples)
				}
				next(circuit, samples)
			}
		}
		if h.OnPattern != nil {
			prev := out.OnPattern
			next := h.OnPattern
			out.OnPattern = func(circuit, stage string, index int) {
				if prev != nil {
					prev(circuit, stage, index)
				}
				next(circuit, stage, index)
			}
		}
		if h.OnMeasureBatch != nil {
			prev := out.OnMeasureBatch
			next := h.OnMeasureBatch
			out.OnMeasureBatch = func(circuit, stage string, lanes int, elapsed time.Duration) {
				if prev != nil {
					prev(circuit, stage, lanes, elapsed)
				}
				next(circuit, stage, lanes, elapsed)
			}
		}
		if h.OnMCBatch != nil {
			prev := out.OnMCBatch
			next := h.OnMCBatch
			out.OnMCBatch = func(circuit, stage, kind string, lanes int, elapsed time.Duration) {
				if prev != nil {
					prev(circuit, stage, kind, lanes, elapsed)
				}
				next(circuit, stage, kind, lanes, elapsed)
			}
		}
		if h.OnFaultSimBatch != nil {
			prev := out.OnFaultSimBatch
			next := h.OnFaultSimBatch
			out.OnFaultSimBatch = func(circuit, kind string, lanes int, elapsed time.Duration) {
				if prev != nil {
					prev(circuit, kind, lanes, elapsed)
				}
				next(circuit, kind, lanes, elapsed)
			}
		}
		if h.OnPodemChunk != nil {
			prev := out.OnPodemChunk
			next := h.OnPodemChunk
			out.OnPodemChunk = func(circuit string, start, n int, elapsed time.Duration) {
				if prev != nil {
					prev(circuit, start, n, elapsed)
				}
				next(circuit, start, n, elapsed)
			}
		}
	}
	return out
}

// patternSource supplies the ATPG result for a circuit: the Engine plugs
// in its memoized layer, plain package functions the direct generator.
type patternSource func(ctx context.Context, c *netlist.Circuit) (*atpg.Result, error)

// directPatterns generates without caching, reporting through hooks.
func directPatterns(cfg Config, hooks Hooks) patternSource {
	return func(ctx context.Context, c *netlist.Circuit) (*atpg.Result, error) {
		hooks.stageStart(c.Name, StageATPG)
		start := time.Now()
		res, err := atpg.GenerateObserved(ctx, c, scaledATPG(c, cfg), hooks.atpgObserver(c))
		if err != nil {
			hooks.stageDone(c.Name, StageATPG, time.Since(start), StageInfo{Failed: true})
			return nil, err
		}
		hooks.stageDone(c.Name, StageATPG, time.Since(start),
			StageInfo{Patterns: len(res.Patterns), Backtracks: res.Backtracks})
		return res, nil
	}
}

// patternKey identifies one memoized ATPG run: the frozen circuit's
// structural fingerprint plus the exact generation options (which the
// large-circuit scaling may vary per circuit). Options.Workers and
// Options.Lanes are normalized out of the key — they change wall time
// only, never a result bit, so runs that differ only in worker count or
// packed batch width share one entry.
type patternKey struct {
	fp   uint64
	opts atpg.Options
}

func newPatternKey(fp uint64, opts atpg.Options) patternKey {
	opts.Workers = 0
	opts.Lanes = 0
	return patternKey{fp: fp, opts: opts}
}

// patternEntry is one cache slot. done is closed when res/err are final.
type patternEntry struct {
	done chan struct{}
	res  *atpg.Result
	err  error
}

// patternCache memoizes ATPG results with in-flight coalescing: when two
// workers need the same circuit's patterns, one generates and the other
// waits. Failed runs (including cancellations) are evicted so a later
// caller with a healthy context retries instead of inheriting the error.
type patternCache struct {
	mu sync.Mutex
	m  map[patternKey]*patternEntry
}

// get returns the cached result for key, generating it via gen on a miss.
// hit reports whether this caller avoided generation work (a prior result
// or another in-flight caller's).
func (pc *patternCache) get(ctx context.Context, key patternKey,
	gen func() (*atpg.Result, error)) (res *atpg.Result, hit bool, err error) {

	for {
		pc.mu.Lock()
		if pc.m == nil {
			pc.m = make(map[patternKey]*patternEntry)
		}
		e, ok := pc.m[key]
		if !ok {
			e = &patternEntry{done: make(chan struct{})}
			pc.m[key] = e
			pc.mu.Unlock()
			e.res, e.err = gen()
			if e.err != nil {
				pc.mu.Lock()
				delete(pc.m, key)
				pc.mu.Unlock()
			}
			close(e.done)
			return e.res, false, e.err
		}
		pc.mu.Unlock()
		select {
		case <-e.done:
			if e.err != nil {
				// The generating caller failed; retry under our context.
				if cerr := ctx.Err(); cerr != nil {
					return nil, false, cerr
				}
				continue
			}
			return e.res, true, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// Engine runs Table I-style experiments across a bounded worker pool with
// a shared, memoized ATPG layer: every experiment on the same frozen
// circuit (Compare, CompareEnhanced, StudyReordering, repeated runs)
// generates patterns exactly once. The zero value is not usable; use
// NewEngine. An Engine is safe for concurrent use.
type Engine struct {
	// Cfg is the experiment configuration, fixed at construction.
	Cfg Config
	// Workers bounds the worker pool of Run; values < 1 mean
	// runtime.GOMAXPROCS(0).
	Workers int
	// Hooks observes stages and progress. Set before calling Run.
	Hooks Hooks

	cache  patternCache
	hits   atomic.Int64
	misses atomic.Int64
}

// NewEngine returns an Engine over cfg with GOMAXPROCS workers.
func NewEngine(cfg Config) *Engine {
	return &Engine{Cfg: cfg}
}

// CacheStats reports how many pattern lookups were served from the cache
// (hits — including waits on an in-flight generation) versus generated
// (misses).
func (e *Engine) CacheStats() (hits, misses int64) {
	return e.hits.Load(), e.misses.Load()
}

// patterns is the Engine's memoized pattern source under its own Cfg.
func (e *Engine) patterns(ctx context.Context, c *netlist.Circuit) (*atpg.Result, error) {
	return e.patternsFor(e.Cfg)(ctx, c)
}

// patternsFor returns a memoized pattern source under an arbitrary
// configuration. The cache key includes the (circuit-scaled) ATPG options,
// so sources built from different configurations share entries exactly
// when their generation work would be identical — the per-job override
// path of the scanpowerd service rides on this.
func (e *Engine) patternsFor(cfg Config) patternSource {
	return func(ctx context.Context, c *netlist.Circuit) (*atpg.Result, error) {
		opts := scaledATPG(c, cfg)
		key := newPatternKey(c.Fingerprint(), opts)
		gen := func() (*atpg.Result, error) {
			e.Hooks.stageStart(c.Name, StageATPG)
			start := time.Now()
			res, err := atpg.GenerateObserved(ctx, c, opts, e.Hooks.atpgObserver(c))
			if err != nil {
				e.Hooks.stageDone(c.Name, StageATPG, time.Since(start), StageInfo{Failed: true})
				return nil, err
			}
			e.Hooks.stageDone(c.Name, StageATPG, time.Since(start),
				StageInfo{Patterns: len(res.Patterns), Backtracks: res.Backtracks})
			return res, nil
		}
		res, hit, err := e.cache.get(ctx, key, gen)
		if err != nil {
			return nil, err
		}
		if hit {
			e.hits.Add(1)
			// Cache-served stages still emit a paired start/done (with
			// CacheHit set) so span accounting never sees an unbalanced
			// close.
			e.Hooks.stageStart(c.Name, StageATPG)
			e.Hooks.stageDone(c.Name, StageATPG, 0,
				StageInfo{Patterns: len(res.Patterns), CacheHit: true})
		} else {
			e.misses.Add(1)
		}
		return res, nil
	}
}

// Compare runs the Table I experiment on c through the Engine's pattern
// cache; repeated calls (or CompareEnhanced/StudyReordering on the same
// circuit) reuse the generated patterns.
func (e *Engine) Compare(ctx context.Context, c *netlist.Circuit) (*Comparison, error) {
	return compareWith(ctx, c, e.Cfg, e.patterns, e.Hooks)
}

// CompareWith is Compare under a per-call configuration override while
// still sharing the Engine's memoized ATPG layer: calls whose (scaled)
// ATPG options match — e.g. the same circuit requested with different
// measurement backends — generate patterns once. The scanpowerd service
// uses this to apply per-job Config overrides on one shared cache.
func (e *Engine) CompareWith(ctx context.Context, c *netlist.Circuit, cfg Config) (*Comparison, error) {
	return compareWith(ctx, c, cfg, e.patternsFor(cfg), e.Hooks)
}

// CompareEnhanced runs the enhanced-scan extension through the cache.
func (e *Engine) CompareEnhanced(ctx context.Context, c *netlist.Circuit) (*EnhancedComparison, error) {
	return compareEnhancedWith(ctx, c, e.Cfg, e.patterns)
}

// StudyReordering runs the reordering extension through the cache.
func (e *Engine) StudyReordering(ctx context.Context, c *netlist.Circuit, structure string) (*ReorderingStudy, error) {
	return studyReorderingWith(ctx, c, e.Cfg, structure, e.patterns)
}

// Result is one streamed outcome of Engine.Run: the comparison for
// names[Index], or the error that stopped it.
type Result struct {
	// Index is the circuit's position in the Run names slice.
	Index int
	// Name is names[Index].
	Name string
	// Comparison is the Table I row; nil when Err is set.
	Comparison *Comparison
	// Err is the per-circuit failure, ctx.Err() for circuits abandoned
	// by cancellation.
	Err error
}

// Run fans the named benchmarks out across the worker pool and streams
// per-circuit results as they complete, in completion order (Result.Index
// restores input order). The returned channel is buffered for the whole
// run — readers may abandon it at any time — and closes when every worker
// has finished. On cancellation, queued circuits are dropped and in-flight
// ones return promptly with ctx's error.
func (e *Engine) Run(ctx context.Context, names []string) (<-chan Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := e.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	if workers < 1 {
		workers = 1
	}
	out := make(chan Result, len(names))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var done atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r := Result{Index: i, Name: names[i]}
				if err := ctx.Err(); err != nil {
					r.Err = err
				} else if c, err := Benchmark(names[i]); err != nil {
					r.Err = err
				} else {
					r.Comparison, r.Err = e.Compare(ctx, c)
				}
				out <- r
				e.Hooks.progress(r.Name, int(done.Add(1)), len(names))
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range names {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, nil
}

// RunAll is the blocking form of Run: it returns the comparisons in input
// order, or the first error (decorated with its circuit name). On
// cancellation it returns ctx's error.
func (e *Engine) RunAll(ctx context.Context, names []string) ([]*Comparison, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ch, err := e.Run(ctx, names)
	if err != nil {
		return nil, err
	}
	out := make([]*Comparison, len(names))
	var firstErr error
	got := 0
	for r := range ch {
		got++
		if r.Err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", r.Name, r.Err)
			}
			continue
		}
		out[r.Index] = r.Comparison
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if got < len(names) {
		return nil, ctx.Err()
	}
	return out, nil
}

// WriteTable renders the Table I rows for names to w in input order,
// streaming each row as soon as every earlier row is available. With
// Workers > 1 the output is byte-identical to the sequential WriteTable —
// the experiments are independent and individually deterministic.
func (e *Engine) WriteTable(ctx context.Context, w io.Writer, names []string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, err := fmt.Fprintln(w, TableHeader()); err != nil {
		return err
	}
	ch, err := e.Run(ctx, names)
	if err != nil {
		return err
	}
	pending := make(map[int]Result, len(names))
	next := 0
	for r := range ch {
		pending[r.Index] = r
		for {
			rr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if rr.Err != nil {
				// The out channel is buffered for the whole run, so the
				// remaining workers finish without a reader.
				return fmt.Errorf("%s: %w", rr.Name, rr.Err)
			}
			if _, err := fmt.Fprintln(w, rr.Comparison.Row()); err != nil {
				return err
			}
			next++
		}
	}
	if next < len(names) {
		return ctx.Err()
	}
	return nil
}
