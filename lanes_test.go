package scanpower

import (
	"context"
	"testing"

	"repro/internal/sim"
)

// TestCompareLanesInvariance pins the lane-width contract at the top of
// the stack: a full Table I row — ATPG, both engineered builds, and all
// three measurements — must be bit-identical whether the packed kernels
// run 64 or 256 lanes per batch, so Config.Lanes is observable only as
// wall time. An unsupported width must fail the experiment up front.
func TestCompareLanesInvariance(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	var ref *Comparison
	for _, lanes := range sim.LaneWidths() {
		cfg := DefaultConfig()
		cfg.Lanes = lanes
		cmp, err := Compare(context.Background(), c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = cmp
			continue
		}
		if cmp.Patterns != ref.Patterns || cmp.FaultCoverage != ref.FaultCoverage {
			t.Errorf("lanes=%d: patterns/coverage %d/%v, want %d/%v",
				lanes, cmp.Patterns, cmp.FaultCoverage, ref.Patterns, ref.FaultCoverage)
		}
		if cmp.Traditional != ref.Traditional {
			t.Errorf("lanes=%d: traditional report differs", lanes)
		}
		if cmp.InputControl != ref.InputControl {
			t.Errorf("lanes=%d: input-control report differs", lanes)
		}
		if cmp.Proposed != ref.Proposed {
			t.Errorf("lanes=%d: proposed report differs", lanes)
		}
		if cmp.ProposedStats != ref.ProposedStats || cmp.InputControlStats != ref.InputControlStats {
			t.Errorf("lanes=%d: build stats differ", lanes)
		}
		if cmp.MuxOverheadUW != ref.MuxOverheadUW {
			t.Errorf("lanes=%d: mux overhead differs", lanes)
		}
	}

	cfg := DefaultConfig()
	cfg.Lanes = 32
	if _, err := Compare(context.Background(), c, cfg); err == nil {
		t.Error("Compare accepted an unsupported lane width")
	}
}
