package scanpower

import (
	"context"
	"io"
	"runtime"
	"testing"
)

// The acceptance benchmark for the Engine: the full 12-circuit Table I
// through one worker versus a GOMAXPROCS pool. Each iteration uses a
// fresh Engine so the pattern cache cannot hide generation cost; on a
// 4-core runner the parallel run is expected to be ≥ 2× faster.
//
//	go test -run=NONE -bench=BenchmarkTableOne -benchtime=1x .

func benchTable(b *testing.B, workers int) {
	names := BenchmarkNames()
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(cfg)
		eng.Workers = workers
		if err := eng.WriteTable(context.Background(), io.Discard, names); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableOneSequential(b *testing.B) { benchTable(b, 1) }

func BenchmarkTableOneParallel(b *testing.B) { benchTable(b, runtime.GOMAXPROCS(0)) }

// BenchmarkCompareCached measures the steady-state cost of a Compare once
// the Engine's pattern cache is warm — the repeated-experiment case the
// memoized ATPG layer exists for.
func BenchmarkCompareCached(b *testing.B) {
	c, err := Benchmark("s344")
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(DefaultConfig())
	if _, err := eng.Compare(context.Background(), c); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Compare(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}
