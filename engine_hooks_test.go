package scanpower

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/atpg"
	"repro/internal/telemetry"
)

// stageBalance counts OnStageStart/OnStageDone events per stage and the
// Failed flags seen, under a mutex (Engine workers may be concurrent).
type stageBalance struct {
	mu     sync.Mutex
	starts map[string]int
	dones  map[string]int
	failed map[string]int
}

func newStageBalance() *stageBalance {
	return &stageBalance{
		starts: make(map[string]int),
		dones:  make(map[string]int),
		failed: make(map[string]int),
	}
}

func (b *stageBalance) hooks() Hooks {
	return Hooks{
		OnStageStart: func(_, stage string) {
			b.mu.Lock()
			b.starts[stage]++
			b.mu.Unlock()
		},
		OnStageDone: func(_, stage string, _ time.Duration, info StageInfo) {
			b.mu.Lock()
			b.dones[stage]++
			if info.Failed {
				b.failed[stage]++
			}
			b.mu.Unlock()
		},
	}
}

func (b *stageBalance) check(t *testing.T) {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	for stage, n := range b.starts {
		if b.dones[stage] != n {
			t.Errorf("stage %s: %d starts but %d dones", stage, n, b.dones[stage])
		}
	}
	for stage, n := range b.dones {
		if b.starts[stage] != n {
			t.Errorf("stage %s: %d dones but %d starts", stage, n, b.starts[stage])
		}
	}
}

// TestStageHooksPairedOnError: however a stage ends — ATPG aborted by
// cancellation, or a measurement stage cut off mid-flight — every
// OnStageStart has a matching OnStageDone (with Failed set on the broken
// stage), and the Recorder's span tree drains to zero open spans.
func TestStageHooksPairedOnError(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	// cancelOn aborts the run the moment the named stage starts.
	for _, cancelOn := range []string{StageATPG, StageTraditional, StageProposed} {
		t.Run("cancel-during-"+cancelOn, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			bal := newStageBalance()
			var buf bytes.Buffer
			tw := telemetry.NewTraceWriter(&buf)
			rec := NewRecorder(telemetry.NewRegistry(), tw)
			trigger := Hooks{OnStageStart: func(_, stage string) {
				if stage == cancelOn {
					cancel()
				}
			}}
			eng := NewEngine(DefaultConfig())
			eng.Hooks = MergeHooks(trigger, bal.hooks(), rec.Hooks())
			_, err := eng.Compare(ctx, c)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Compare error = %v, want context.Canceled", err)
			}
			bal.check(t)
			bal.mu.Lock()
			if bal.failed[cancelOn] == 0 {
				t.Errorf("stage %s aborted but no StageInfo.Failed reported", cancelOn)
			}
			bal.mu.Unlock()
			rec.Close()
			if open := tw.OpenSpans(); open != 0 {
				t.Errorf("%d spans still open after Recorder.Close", open)
			}
		})
	}
}

// TestStageHooksPairedOnSuccess pins the balance on the happy path too,
// including the direct (non-Engine) entry point.
func TestStageHooksPairedOnSuccess(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	bal := newStageBalance()
	if _, err := compareWith(context.Background(), c, DefaultConfig(),
		directPatterns(DefaultConfig(), bal.hooks()), bal.hooks()); err != nil {
		t.Fatal(err)
	}
	bal.check(t)
	bal.mu.Lock()
	defer bal.mu.Unlock()
	for stage, n := range bal.failed {
		if n != 0 {
			t.Errorf("stage %s reported Failed on a clean run", stage)
		}
	}
	if len(bal.starts) != 4 {
		t.Errorf("saw %d distinct stages, want 4", len(bal.starts))
	}
}

// TestPatternCacheCoalescing proves the cache's concurrency contract
// directly: two distinct keys generate at the same time (the cache lock is
// not held across generation), while a duplicate of an in-flight key waits
// for that generation and comes back as a hit.
func TestPatternCacheCoalescing(t *testing.T) {
	var pc patternCache
	ctx := context.Background()
	keyA := patternKey{fp: 1}
	keyB := patternKey{fp: 2}
	resA, resB := &atpg.Result{}, &atpg.Result{}

	aStarted := make(chan struct{})
	bStarted := make(chan struct{})
	dupWaiting := make(chan struct{})
	release := make(chan struct{})
	fail := func(msg string) {
		t.Helper()
		t.Error(msg)
	}

	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // generator for key A
		defer wg.Done()
		res, hit, err := pc.get(ctx, keyA, func() (*atpg.Result, error) {
			close(aStarted)
			select {
			case <-bStarted:
				// Key B's generator ran while we were still generating:
				// the cache cannot be holding its lock across gen.
			case <-time.After(10 * time.Second):
				fail("key B's generator never started while key A's was in flight")
			}
			<-release
			return resA, nil
		})
		if err != nil || hit || res != resA {
			fail("key A generator: unexpected result")
		}
	}()
	go func() { // generator for key B
		defer wg.Done()
		<-aStarted
		res, hit, err := pc.get(ctx, keyB, func() (*atpg.Result, error) {
			close(bStarted)
			<-release
			return resB, nil
		})
		if err != nil || hit || res != resB {
			fail("key B generator: unexpected result")
		}
	}()
	go func() { // duplicate of key A: must wait, then hit
		defer wg.Done()
		<-aStarted
		close(dupWaiting)
		res, hit, err := pc.get(ctx, keyA, func() (*atpg.Result, error) {
			fail("duplicate key regenerated instead of waiting")
			return nil, nil
		})
		if err != nil {
			fail("duplicate key: " + err.Error())
		}
		if !hit {
			fail("duplicate key did not record a cache hit")
		}
		if res != resA {
			fail("duplicate key got a different result than the generator")
		}
	}()

	<-dupWaiting
	time.Sleep(10 * time.Millisecond) // let the duplicate reach its wait
	close(release)
	wg.Wait()
}

// TestPatternCacheFailedEviction: a failed generation must not poison the
// key — the next caller regenerates.
func TestPatternCacheFailedEviction(t *testing.T) {
	var pc patternCache
	ctx := context.Background()
	key := patternKey{fp: 9}
	boom := errors.New("boom")
	if _, _, err := pc.get(ctx, key, func() (*atpg.Result, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("first get error = %v, want boom", err)
	}
	want := &atpg.Result{}
	res, hit, err := pc.get(ctx, key, func() (*atpg.Result, error) { return want, nil })
	if err != nil || hit || res != want {
		t.Errorf("retry after failure: res=%p hit=%v err=%v, want fresh generation", res, hit, err)
	}
}

// TestEngineSeedStableJSON: the same ATPG seed must yield byte-identical
// Table I JSON regardless of worker count — parallelism must not leak into
// the measured numbers.
func TestEngineSeedStableJSON(t *testing.T) {
	names := []string{"s344", "s382", "s510"}
	render := func(workers int) []byte {
		cfg := DefaultConfig()
		cfg.ATPG.Seed = 7
		eng := NewEngine(cfg)
		eng.Workers = workers
		cmps, err := eng.RunAll(context.Background(), names)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := NewTable("Table I", cmps).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("-j 1 and -j 8 render different JSON:\n--- j=1 ---\n%s--- j=8 ---\n%s", serial, parallel)
	}
}
