// Command reproduce regenerates every experiment of the reproduction in
// one run and emits a self-contained Markdown report: Figure 2, Table I,
// the technology-scaling motivation, and the extension studies. This is
// the "rebuild EXPERIMENTS.md's data" entry point.
//
// Table I and the extension studies run on the scanpower Engine, so the
// circuits fan out across -j workers and every study of the same circuit
// shares one ATPG run. -timeout aborts the whole report cleanly.
//
// Usage:
//
//	reproduce                  # full report to stdout (minutes)
//	reproduce -quick           # small circuits only (seconds)
//	reproduce -o report.md -j 8 -timeout 30m -progress
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/report"
)

func main() {
	quick := flag.Bool("quick", false, "only circuits up to ~700 gates")
	out := flag.String("o", "", "write the report to this file (default stdout)")
	workers := flag.Int("j", runtime.NumCPU(), "parallel circuits for Table I (worker pool size)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
	progress := flag.Bool("progress", false, "stream per-stage progress to stderr")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	cfg := scanpower.DefaultConfig()
	eng := scanpower.NewEngine(cfg)
	eng.Workers = *workers
	if *progress {
		eng.Hooks = scanpower.Hooks{
			OnProgress: func(circuit string, done, total int) {
				fmt.Fprintf(os.Stderr, "reproduce: %d/%d done (%s)\n", done, total, circuit)
			},
		}
	}
	fmt.Fprintln(w, "# scanpower reproduction report")
	fmt.Fprintln(w)

	// Figure 2.
	fmt.Fprintln(w, "## Figure 2 — NAND2 leakage (45 nm)")
	fmt.Fprintln(w)
	f2 := report.New("", "A B", "paper (nA)", "measured (nA)")
	paper := []string{"78", "73", "264", "408"}
	meas := cfg.Leak.Figure2()
	for ab := 0; ab < 4; ab++ {
		f2.MustAddRow(fmt.Sprintf("%d %d", ab>>1&1, ab&1), paper[ab],
			fmt.Sprintf("%.0f", meas[ab]))
	}
	must(f2.Markdown(w))
	fmt.Fprintln(w)

	// Table I.
	names := scanpower.BenchmarkNames()
	if *quick {
		var small []string
		for _, n := range names {
			c, err := scanpower.Benchmark(n)
			if err != nil {
				fatal(err)
			}
			if c.NumGates() <= 700 {
				small = append(small, n)
			}
		}
		names = small
	}
	fmt.Fprintf(w, "## Table I — scan-mode power (%s)\n\n", strings.Join(names, ", "))
	cmps, err := eng.RunAll(ctx, names)
	if err != nil {
		fatal(err)
	}
	must(scanpower.NewTable("", cmps).Markdown(w))
	fmt.Fprintln(w)

	// Motivation trend.
	fmt.Fprintln(w, "## Motivation — static share across technology nodes (traditional scan, 100 MHz shift)")
	fmt.Fprintln(w)
	c641, err := scanpower.Benchmark(pick(names, "s641", names[0]))
	if err != nil {
		fatal(err)
	}
	points, err := scanpower.StudyTechScaling(c641, cfg, 100e6)
	if err != nil {
		fatal(err)
	}
	ts := report.New("", "node", "VDD", "dynamic µW", "static µW", "static share")
	for _, p := range points {
		ts.MustAddRow(fmt.Sprintf("%d nm", p.NM), fmt.Sprintf("%.2f V", p.VDD),
			fmt.Sprintf("%.2f", p.DynamicUW), fmt.Sprintf("%.2f", p.StaticUW),
			fmt.Sprintf("%.1f%%", p.StaticShare*100))
	}
	must(ts.Markdown(w))
	fmt.Fprintln(w)

	// Extensions on a small circuit. Running them through the Engine
	// shares one ATPG run with the Table I row of the same circuit.
	small, err := scanpower.Benchmark(names[0])
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "## Extensions (%s)\n\n", names[0])
	enh, err := eng.CompareEnhanced(ctx, small)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "- Enhanced scan (full isolation): dynamic %.3e µW/Hz vs proposed %.3e, at +%.1f ps clock period.\n",
		enh.Enhanced.DynamicPerHz, enh.Proposed.DynamicPerHz, enh.DelayPenaltyPS)
	for _, structure := range []string{"traditional", "proposed"} {
		st, err := eng.StudyReordering(ctx, small, structure)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "- Reordering on %s: %.3e → best %.3e µW/Hz (%.1f%% further gain).\n",
			structure, st.Baseline.DynamicPerHz,
			minReport(st), st.BestDynamicGain())
	}
	tp, err := scanpower.StudyTestPoints(small, cfg, 0.6)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "- Test points ([6]): %d gated lines to cap peak at 60%% (%.1f → %.1f nW/GHz), costing +%.0f ps.\n",
		tp.Points, tp.BasePeakPerHz*1e9, tp.FinalPeakPerHz*1e9, tp.DelayPenaltyPS)
	chains, err := scanpower.StudyChains(small, cfg)
	if err != nil {
		fatal(err)
	}
	firstCy, lastCy := chains[0], chains[len(chains)-1]
	fmt.Fprintf(w, "- Multi-chain: %d → %d chains cuts shift cycles %d → %d.\n",
		firstCy.Chains, lastCy.Chains, firstCy.ShiftCycles, lastCy.ShiftCycles)

	hits, misses := eng.CacheStats()
	fmt.Fprintf(w, "\n_Total runtime %v (%d ATPG runs, %d served from cache); fully deterministic for DefaultConfig seeds._\n",
		time.Since(start).Round(time.Millisecond), misses, hits)
}

func minReport(st *scanpower.ReorderingStudy) float64 {
	best := st.Baseline.DynamicPerHz
	for _, v := range []float64{st.PatternsReordered.DynamicPerHz,
		st.ChainReordered.DynamicPerHz, st.Both.DynamicPerHz} {
		if v < best {
			best = v
		}
	}
	return best
}

func pick(names []string, want, fallback string) string {
	for _, n := range names {
		if n == want {
			return n
		}
	}
	return fallback
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reproduce:", err)
	os.Exit(1)
}
