// Command reproduce regenerates every experiment of the reproduction in
// one run and emits a self-contained Markdown report: Figure 2, Table I,
// the technology-scaling motivation, and the extension studies. This is
// the "rebuild EXPERIMENTS.md's data" entry point.
//
// Usage:
//
//	reproduce                  # full report to stdout (minutes)
//	reproduce -quick           # small circuits only (seconds)
//	reproduce -o report.md -j 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/report"
)

func main() {
	quick := flag.Bool("quick", false, "only circuits up to ~700 gates")
	out := flag.String("o", "", "write the report to this file (default stdout)")
	workers := flag.Int("j", runtime.NumCPU(), "parallel circuits for Table I")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	start := time.Now()
	cfg := scanpower.DefaultConfig()
	fmt.Fprintln(w, "# scanpower reproduction report")
	fmt.Fprintln(w)

	// Figure 2.
	fmt.Fprintln(w, "## Figure 2 — NAND2 leakage (45 nm)")
	fmt.Fprintln(w)
	f2 := report.New("", "A B", "paper (nA)", "measured (nA)")
	paper := []string{"78", "73", "264", "408"}
	meas := cfg.Leak.Figure2()
	for ab := 0; ab < 4; ab++ {
		f2.MustAddRow(fmt.Sprintf("%d %d", ab>>1&1, ab&1), paper[ab],
			fmt.Sprintf("%.0f", meas[ab]))
	}
	must(f2.Markdown(w))
	fmt.Fprintln(w)

	// Table I.
	names := scanpower.BenchmarkNames()
	if *quick {
		var small []string
		for _, n := range names {
			c, err := scanpower.Benchmark(n)
			if err != nil {
				fatal(err)
			}
			if c.NumGates() <= 700 {
				small = append(small, n)
			}
		}
		names = small
	}
	fmt.Fprintf(w, "## Table I — scan-mode power (%s)\n\n", strings.Join(names, ", "))
	cmps := compareAll(names, cfg, *workers)
	must(scanpower.NewTable("", cmps).Markdown(w))
	fmt.Fprintln(w)

	// Motivation trend.
	fmt.Fprintln(w, "## Motivation — static share across technology nodes (traditional scan, 100 MHz shift)")
	fmt.Fprintln(w)
	c641, err := scanpower.Benchmark(pick(names, "s641", names[0]))
	if err != nil {
		fatal(err)
	}
	points, err := scanpower.StudyTechScaling(c641, cfg, 100e6)
	if err != nil {
		fatal(err)
	}
	ts := report.New("", "node", "VDD", "dynamic µW", "static µW", "static share")
	for _, p := range points {
		ts.MustAddRow(fmt.Sprintf("%d nm", p.NM), fmt.Sprintf("%.2f V", p.VDD),
			fmt.Sprintf("%.2f", p.DynamicUW), fmt.Sprintf("%.2f", p.StaticUW),
			fmt.Sprintf("%.1f%%", p.StaticShare*100))
	}
	must(ts.Markdown(w))
	fmt.Fprintln(w)

	// Extensions on a small circuit.
	small, err := scanpower.Benchmark(names[0])
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "## Extensions (%s)\n\n", names[0])
	enh, err := scanpower.CompareEnhanced(small, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "- Enhanced scan (full isolation): dynamic %.3e µW/Hz vs proposed %.3e, at +%.1f ps clock period.\n",
		enh.Enhanced.DynamicPerHz, enh.Proposed.DynamicPerHz, enh.DelayPenaltyPS)
	for _, structure := range []string{"traditional", "proposed"} {
		st, err := scanpower.StudyReordering(small, cfg, structure)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "- Reordering on %s: %.3e → best %.3e µW/Hz (%.1f%% further gain).\n",
			structure, st.Baseline.DynamicPerHz,
			minReport(st), st.BestDynamicGain())
	}
	tp, err := scanpower.StudyTestPoints(small, cfg, 0.6)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "- Test points ([6]): %d gated lines to cap peak at 60%% (%.1f → %.1f nW/GHz), costing +%.0f ps.\n",
		tp.Points, tp.BasePeakPerHz*1e9, tp.FinalPeakPerHz*1e9, tp.DelayPenaltyPS)
	chains, err := scanpower.StudyChains(small, cfg)
	if err != nil {
		fatal(err)
	}
	firstCy, lastCy := chains[0], chains[len(chains)-1]
	fmt.Fprintf(w, "- Multi-chain: %d → %d chains cuts shift cycles %d → %d.\n",
		firstCy.Chains, lastCy.Chains, firstCy.ShiftCycles, lastCy.ShiftCycles)

	fmt.Fprintf(w, "\n_Total runtime %v; fully deterministic for DefaultConfig seeds._\n",
		time.Since(start).Round(time.Millisecond))
}

func compareAll(names []string, cfg scanpower.Config, workers int) []*scanpower.Comparison {
	if workers < 1 {
		workers = 1
	}
	out := make([]*scanpower.Comparison, len(names))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				c, err := scanpower.Benchmark(names[i])
				if err != nil {
					fatal(err)
				}
				cmp, err := scanpower.Compare(c, cfg)
				if err != nil {
					fatal(err)
				}
				out[i] = cmp
			}
		}()
	}
	for i := range names {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

func minReport(st *scanpower.ReorderingStudy) float64 {
	best := st.Baseline.DynamicPerHz
	for _, v := range []float64{st.PatternsReordered.DynamicPerHz,
		st.ChainReordered.DynamicPerHz, st.Both.DynamicPerHz} {
		if v < best {
			best = v
		}
	}
	return best
}

func pick(names []string, want, fallback string) string {
	for _, n := range names {
		if n == want {
			return n
		}
	}
	return fallback
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reproduce:", err)
	os.Exit(1)
}
