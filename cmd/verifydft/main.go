// Command verifydft independently verifies the three safety claims of the
// proposed DFT modification on a circuit:
//
//  1. normal-mode equivalence — with Shift Enable low, the materialized
//     MUX netlist computes exactly the original functions (randomized
//     simulation);
//  2. timing — the critical path delay is unchanged;
//  3. test quality — the original test set achieves the same stuck-at
//     coverage on the modified circuit.
//
// Usage:
//
//	verifydft -circuit s344 [-trials 2000]
//	verifydft -bench path/to/x.bench
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro"
	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/techmap"
	"repro/internal/timing"
)

func main() {
	circuit := flag.String("circuit", "", "Table I benchmark name")
	benchFile := flag.String("bench", "", "path to an ISCAS89 .bench file")
	trials := flag.Int("trials", 2000, "random equivalence trials")
	flag.Parse()

	var (
		c   *netlist.Circuit
		err error
	)
	switch {
	case *circuit != "":
		c, err = scanpower.Benchmark(*circuit)
	case *benchFile != "":
		c, err = scanpower.LoadBench(*benchFile)
		if err == nil && !techmap.IsMapped(c, 4) {
			c, err = scanpower.Prepare(c)
		}
	default:
		fmt.Fprintln(os.Stderr, "verifydft: need -circuit or -bench")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "verifydft:", err)
		os.Exit(1)
	}

	cfg := scanpower.DefaultConfig()
	sol, err := core.Build(c, cfg.Proposed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verifydft:", err)
		os.Exit(1)
	}
	dft, err := core.InsertMuxes(c, sol.Cfg.Muxed, sol.Cfg.MuxVal)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verifydft:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d/%d scan cells muxed\n", c.Name, sol.Stats.MuxCount, c.NumFFs())
	fail := false

	// 1. Normal-mode equivalence.
	if err := normalModeEquiv(c, dft, *trials); err != nil {
		fmt.Println("EQUIVALENCE   FAIL:", err)
		fail = true
	} else {
		fmt.Printf("EQUIVALENCE   ok (%d random vectors, SE=0)\n", *trials)
	}

	// 2. Timing.
	before := timing.Analyze(c, cfg.Delay).Critical
	after := timing.Analyze(dft, cfg.Delay).Critical
	if after > before+1e-9 {
		fmt.Printf("TIMING        FAIL: %.2f ps -> %.2f ps\n", before, after)
		fail = true
	} else {
		fmt.Printf("TIMING        ok (critical path %.2f ps unchanged)\n", before)
	}

	// 3. Coverage.
	res, err := atpg.Generate(c, cfg.ATPG)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verifydft:", err)
		os.Exit(1)
	}
	covA := atpg.CoverageOf(c, res.Patterns)
	covB := atpg.CoverageOf(sol.Circuit, res.Patterns)
	if covB+1e-9 < covA {
		fmt.Printf("COVERAGE      FAIL: %.2f%% -> %.2f%%\n", covA*100, covB*100)
		fail = true
	} else {
		fmt.Printf("COVERAGE      ok (%.2f%% with %d patterns)\n", covA*100, len(res.Patterns))
	}
	if math.IsNaN(covA) {
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("all checks passed")
}

// normalModeEquiv simulates both circuits with SE=0 and compares outputs
// and next state for random vectors.
func normalModeEquiv(c, dft *netlist.Circuit, trials int) error {
	rng := rand.New(rand.NewSource(42))
	sa, sb := sim.New(c), sim.New(dft)
	pi := make([]bool, len(c.PIs))
	ppi := make([]bool, c.NumFFs())
	piB := make([]bool, len(dft.PIs))
	// Map DFT PI index -> original PI index or special.
	kind := make([]int, len(dft.PIs)) // >=0: orig index, -1: SE, -2: TIE0, -3: TIE1
	origIdx := make(map[string]int)
	for i, p := range c.PIs {
		origIdx[c.Nets[p].Name] = i
	}
	for i, p := range dft.PIs {
		switch name := dft.Nets[p].Name; name {
		case "SE":
			kind[i] = -1
		case "TIE0":
			kind[i] = -2
		case "TIE1":
			kind[i] = -3
		default:
			j, ok := origIdx[name]
			if !ok {
				return fmt.Errorf("unexpected DFT input %q", name)
			}
			kind[i] = j
		}
	}
	for trial := 0; trial < trials; trial++ {
		sim.RandomVector(rng, pi)
		sim.RandomVector(rng, ppi)
		for i := range piB {
			switch k := kind[i]; k {
			case -1, -2:
				piB[i] = false
			case -3:
				piB[i] = true
			default:
				piB[i] = pi[k]
			}
		}
		stA := sa.Eval(pi, ppi)
		stB := sb.Eval(piB, ppi)
		for _, po := range c.POs {
			name := c.Nets[po].Name
			poB, ok := dft.NetByName(name)
			if !ok {
				return fmt.Errorf("output %q missing", name)
			}
			if stA[po] != stB[poB] {
				return fmt.Errorf("trial %d: output %q differs", trial, name)
			}
		}
		for fi := range c.FFs {
			if stA[c.FFs[fi].D] != stB[dft.FFs[fi].D] {
				return fmt.Errorf("trial %d: next state of flop %d differs", trial, fi)
			}
		}
	}
	return nil
}
