// Command scanpower runs the full low-power scan flow on one circuit and
// prints a detailed report: timing, MUX selection, transition blocking,
// leakage vector, and the three-structure power comparison.
//
// The comparison and the -extensions studies run on the scanpower Engine,
// so the expensive ATPG stage executes once and is shared across every
// study of the circuit. -timeout aborts a stuck or oversized run cleanly.
//
// Telemetry: -listen serves /metrics, /debug/vars and /debug/pprof while
// the run executes; -trace writes the span tree as JSON Lines; -manifest
// writes the machine-readable run manifest.
//
// -server submits the experiment to a running scanpowerd (or a
// comma-separated cluster of them) through the typed client instead of
// computing in-process: the job is sharded to its owning node, served
// from the cluster's persistent result store when warm, and the same
// comparison table is printed from the returned document.
//
// Circuits come from -circuit (built-in Table I name), -bench (ISCAS89
// netlist) or -verilog (structural Verilog, primitive subset). An
// optional switching-activity profile — -activity (JSON factors) or
// -activity-vcd (toggle rates extracted from a VCD) — adds the
// weighted-transition metrics to the report, locally and remotely.
//
// Usage:
//
//	scanpower -circuit s344          # synthetic Table I benchmark
//	scanpower -bench path/to/x.bench # real netlist (mapped automatically)
//	scanpower -verilog path/to/x.v -activity act.json
//	scanpower -circuit s9234 -timeout 2m -extensions
//	scanpower -circuit s344 -listen :8080 -trace s344.jsonl -manifest s344.json
//	scanpower -circuit s344 -server http://127.0.0.1:8344,http://127.0.0.1:8345
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/api"
	"repro/client"
	"repro/internal/atpg"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/scan"
	"repro/internal/techmap"
	"repro/internal/telemetry"
	"repro/internal/vcd"
	"repro/internal/vectors"
	"repro/internal/verilog"
)

func main() {
	fs := flag.CommandLine
	circuit := fs.String("circuit", "", "Table I benchmark name (e.g. s344)")
	benchFile := fs.String("bench", "", "path to an ISCAS89 .bench file")
	verilogFile := fs.String("verilog", "", "path to a structural Verilog file (primitive subset)")
	activityJSON := fs.String("activity", "", `path to a JSON activity block, e.g. {"default_input":0.2,"inputs":{"G0":0.5}}`)
	activityVCD := fs.String("activity-vcd", "", "path to a VCD whose per-input toggle rates become the activity profile")
	extensions := fs.Bool("extensions", false, "also run the enhanced-scan and reordering extension studies")
	vcdPath := fs.String("vcd", "", "dump the proposed structure's scan-mode waveforms to this VCD file")
	patFile := fs.String("patterns", "", "replay patterns from this vectors file instead of running ATPG (power section only)")
	timeout := cliflags.Timeout(fs, "timeout", 0, "abort the run after this duration (0 = no limit)")
	listen := fs.String("listen", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8080)")
	tracePath := fs.String("trace", "", "write the span trace as JSON Lines to this file")
	manifestPath := fs.String("manifest", "", "write the run manifest JSON to this file")
	measure := cliflags.Measure(fs)
	mcBackend := cliflags.MC(fs)
	lanes := cliflags.Lanes(fs)
	atpgWorkers := cliflags.ATPGWorkers(fs)
	server := fs.String("server", "", "submit to these scanpowerd base URLs (comma-separated) instead of computing in-process")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	act, err := loadActivity(*activityJSON, *activityVCD)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanpower:", err)
		os.Exit(2)
	}

	if *server != "" {
		if *extensions || *vcdPath != "" || *patFile != "" {
			fmt.Fprintln(os.Stderr, "scanpower: -extensions, -vcd and -patterns run in-process only, not with -server")
			os.Exit(2)
		}
		if err := runRemote(ctx, *server, *circuit, *benchFile, *verilogFile, *measure, act, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "scanpower:", err)
			os.Exit(1)
		}
		return
	}

	var c *netlist.Circuit
	switch {
	case moreThanOne(*circuit != "", *benchFile != "", *verilogFile != ""):
		fmt.Fprintln(os.Stderr, "scanpower: need exactly one of -circuit, -bench or -verilog")
		os.Exit(2)
	case *circuit != "":
		c, err = scanpower.Benchmark(*circuit)
	case *benchFile != "":
		c, err = scanpower.LoadBench(*benchFile)
		if err == nil && !techmap.IsMapped(c, 4) {
			c, err = scanpower.Prepare(c)
		}
	case *verilogFile != "":
		c, err = loadVerilog(*verilogFile)
	default:
		fmt.Fprintln(os.Stderr, "scanpower: need -circuit, -bench or -verilog")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanpower:", err)
		os.Exit(1)
	}

	reg := telemetry.NewRegistry()
	if *listen != "" {
		srv, err := telemetry.ListenAndServe(*listen, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scanpower:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "scanpower: telemetry on http://%s/metrics\n", srv.Addr)
	}
	var tw *telemetry.TraceWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scanpower:", err)
			os.Exit(1)
		}
		defer f.Close()
		tw = telemetry.NewTraceWriter(f)
	}
	rec := scanpower.NewRecorder(reg, tw)
	defer func() {
		rec.Close()
		if *manifestPath != "" {
			if err := rec.Manifest("scanpower").WriteFile(*manifestPath); err != nil {
				fmt.Fprintln(os.Stderr, "scanpower:", err)
			}
		}
	}()

	cfg, err := cliflags.BackendConfig(*measure, *mcBackend, *lanes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanpower:", err)
		os.Exit(2)
	}
	if cfg.ATPG.Workers, err = cliflags.ValidateATPGWorkers(*atpgWorkers); err != nil {
		fmt.Fprintln(os.Stderr, "scanpower:", err)
		os.Exit(2)
	}
	if act != nil {
		prof, aerr := act.Profile(piNames(c))
		if aerr != nil {
			fmt.Fprintln(os.Stderr, "scanpower:", aerr.Message)
			os.Exit(2)
		}
		cfg.Activity = prof
	}
	// The direct core.BuildContext call below bypasses Compare's MC
	// propagation, so mirror the choice into the per-structure options.
	cfg.Proposed.MC = core.MCBackend(cfg.MC)
	cfg.InputControl.MC = core.MCBackend(cfg.MC)
	eng := scanpower.NewEngine(cfg)
	eng.Hooks = rec.Hooks()
	st := c.ComputeStats()
	fmt.Printf("circuit      %s\n", st)

	sol, err := core.BuildContext(ctx, c, cfg.Proposed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanpower:", err)
		os.Exit(1)
	}
	fmt.Printf("critical     %.1f ps (unchanged by the DFT modification)\n", sol.Stats.CriticalDelay)
	fmt.Printf("muxed        %d / %d scan cells\n", sol.Stats.MuxCount, st.FFs)
	fmt.Printf("blocking     %d gates blocked, %d unblockable, %d nets still toggling\n",
		sol.Stats.BlockedGates, sol.Stats.FailedGates, sol.Stats.TransitionNets)
	fmt.Printf("vector       %d inputs justified, %d filled for minimum leakage\n",
		sol.Stats.AssignedInputs, sol.Stats.FilledInputs)
	fmt.Printf("reordering   %d gates permuted\n", sol.Stats.ReorderedGates)
	fmt.Printf("quiet gates  %.1f%% of the combinational part\n", sol.BlockedShare()*100)
	fmt.Printf("scan leak    %.2f µW expected (+%.2f µW in the MUX cells)\n",
		cfg.Leak.PowerUW(sol.Stats.ScanLeakNA), cfg.Leak.PowerUW(sol.MuxScanLeakNA(cfg.Leak)))

	if *vcdPath != "" {
		if err := dumpVCD(*vcdPath, sol, cfg, *patFile); err != nil {
			fmt.Fprintln(os.Stderr, "scanpower:", err)
			os.Exit(1)
		}
		fmt.Printf("vcd          scan-mode waveforms written to %s\n", *vcdPath)
	}

	if *patFile != "" {
		if err := replayPatterns(c, sol, cfg, *patFile); err != nil {
			fmt.Fprintln(os.Stderr, "scanpower:", err)
			os.Exit(1)
		}
		return
	}

	cmp, err := eng.Compare(ctx, c)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanpower:", err)
		os.Exit(1)
	}
	printComparison(cmp)

	if !*extensions {
		return
	}
	fmt.Println("\n--- extensions ---")
	enh, err := eng.CompareEnhanced(ctx, c)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanpower:", err)
		os.Exit(1)
	}
	fmt.Printf("enhanced scan (full isolation): dynamic %.3e µW/Hz, but +%.1f ps on the clock period\n",
		enh.Enhanced.DynamicPerHz, enh.DelayPenaltyPS)
	for _, structure := range []string{"traditional", "proposed"} {
		st, err := eng.StudyReordering(ctx, c, structure)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scanpower:", err)
			os.Exit(1)
		}
		fmt.Printf("reordering on %-12s dynamic %.3e -> patterns %.3e, chain %.3e, both %.3e µW/Hz (best gain %.1f%%)\n",
			structure+":", st.Baseline.DynamicPerHz,
			st.PatternsReordered.DynamicPerHz, st.ChainReordered.DynamicPerHz,
			st.Both.DynamicPerHz, st.BestDynamicGain())
	}
}

// moreThanOne reports whether two or more of the flags are set.
func moreThanOne(flags ...bool) bool {
	n := 0
	for _, f := range flags {
		if f {
			n++
		}
	}
	return n > 1
}

// piNames lists the circuit's primary-input net names.
func piNames(c *netlist.Circuit) []string {
	names := make([]string, len(c.PIs))
	for i, pi := range c.PIs {
		names[i] = c.Nets[pi].Name
	}
	return names
}

// loadVerilog parses and library-maps a structural Verilog file.
func loadVerilog(path string) (*netlist.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	c, err := verilog.Parse(f, name)
	if err != nil {
		return nil, err
	}
	if !techmap.IsMapped(c, 4) {
		return scanpower.Prepare(c)
	}
	return c, nil
}

// loadActivity builds the submit-style activity block from the CLI flags.
func loadActivity(jsonPath, vcdPath string) (*api.Activity, error) {
	switch {
	case jsonPath != "" && vcdPath != "":
		return nil, fmt.Errorf("need at most one of -activity and -activity-vcd")
	case jsonPath != "":
		raw, err := os.ReadFile(jsonPath)
		if err != nil {
			return nil, err
		}
		var a api.Activity
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&a); err != nil {
			return nil, fmt.Errorf("%s: %w", jsonPath, err)
		}
		return &a, nil
	case vcdPath != "":
		raw, err := os.ReadFile(vcdPath)
		if err != nil {
			return nil, err
		}
		return &api.Activity{VCD: string(raw)}, nil
	}
	return nil, nil
}

// printComparison renders the three-structure table — the same lines
// whether the comparison was computed here or fetched from a daemon.
func printComparison(cmp *scanpower.Comparison) {
	fmt.Printf("\npatterns     %d (%.1f%% stuck-at coverage)\n", cmp.Patterns, cmp.FaultCoverage*100)
	fmt.Printf("%-14s %14s %12s\n", "structure", "dynamic µW/Hz", "static µW")
	fmt.Printf("%-14s %14.3e %12.2f\n", "traditional", cmp.Traditional.DynamicPerHz, cmp.Traditional.StaticUW)
	fmt.Printf("%-14s %14.3e %12.2f\n", "input-control", cmp.InputControl.DynamicPerHz, cmp.InputControl.StaticUW)
	fmt.Printf("%-14s %14.3e %12.2f\n", "proposed", cmp.Proposed.DynamicPerHz, cmp.Proposed.StaticUW)
	fmt.Printf("\nimprovement vs traditional: dynamic %.2f%%, static %.2f%%\n",
		cmp.DynImprovementVsTraditional(), cmp.StaticImprovementVsTraditional())
	fmt.Printf("improvement vs input-ctrl:  dynamic %.2f%%, static %.2f%%\n",
		cmp.DynImprovementVsInputControl(), cmp.StaticImprovementVsInputControl())
	if a := cmp.Activity; a != nil {
		fmt.Printf("\nactivity (%s, default %.3g): WTM %d total, %.1f per pattern\n",
			a.Source, a.DefaultInput, a.WTMTotal, a.WTMPerPattern)
		fmt.Printf("%-14s %14s\n", "structure", "weighted µW/Hz")
		fmt.Printf("%-14s %14.3e\n", "traditional", a.TraditionalWeightedPerHz)
		fmt.Printf("%-14s %14.3e\n", "input-control", a.InputControlWeightedPerHz)
		fmt.Printf("%-14s %14.3e\n", "proposed", a.ProposedWeightedPerHz)
	}
}

// runRemote submits the experiment to a scanpowerd cluster through the
// typed client — as a source-union body, with the activity block when one
// was given — and prints the returned comparison.
func runRemote(ctx context.Context, servers, circuit, benchFile, verilogFile, measure string, act *api.Activity, timeout time.Duration) error {
	if _, err := cliflags.ValidateMeasure(measure); err != nil {
		return err
	}
	var endpoints []string
	for _, s := range strings.Split(servers, ",") {
		if s = cliflags.NormalizeEndpoint(s); s != "" {
			endpoints = append(endpoints, s)
		}
	}
	cl, err := client.New(endpoints, client.Options{})
	if err != nil {
		return err
	}

	req := client.SubmitRequest{Measure: measure, Timeout: timeout, Wait: true, Activity: act}
	switch {
	case moreThanOne(circuit != "", benchFile != "", verilogFile != ""):
		return fmt.Errorf("need exactly one of -circuit, -bench or -verilog")
	case circuit != "":
		req.Source = &api.Source{Circuit: circuit}
	case benchFile != "":
		src, err := os.ReadFile(benchFile)
		if err != nil {
			return err
		}
		req.Source = &api.Source{Bench: string(src),
			Name: strings.TrimSuffix(filepath.Base(benchFile), ".bench")}
	case verilogFile != "":
		src, err := os.ReadFile(verilogFile)
		if err != nil {
			return err
		}
		req.Source = &api.Source{Verilog: string(src),
			Name: strings.TrimSuffix(filepath.Base(verilogFile), filepath.Ext(verilogFile))}
	default:
		return fmt.Errorf("need -circuit, -bench or -verilog")
	}

	job, err := cl.Submit(ctx, req)
	if err != nil {
		return err
	}
	if !job.Terminal() {
		if job, err = cl.Wait(ctx, job); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "scanpower: job %s on %s (%s)\n", job.ID, job.Node, job.State)
	cmp, _, err := cl.Result(ctx, job)
	if err != nil {
		return err
	}
	fmt.Printf("circuit      %s (computed remotely, measure %s)\n", cmp.Circuit, job.Measure)
	printComparison(cmp)
	return nil
}

// loadOrGenerate returns the patterns for the power section: from the
// vectors file when given, otherwise freshly generated.
func loadOrGenerate(c *netlist.Circuit, cfg scanpower.Config, patFile string) ([]scan.Pattern, error) {
	if patFile == "" {
		res, err := atpg.Generate(c, cfg.ATPG)
		if err != nil {
			return nil, err
		}
		return res.Patterns, nil
	}
	f, err := os.Open(patFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, err := vectors.Read(f)
	if err != nil {
		return nil, err
	}
	if err := set.Validate(c); err != nil {
		return nil, err
	}
	return set.Patterns, nil
}

// dumpVCD writes the proposed structure's scan waveforms.
func dumpVCD(path string, sol *core.Solution, cfg scanpower.Config, patFile string) error {
	pats, err := loadOrGenerate(sol.Circuit, cfg, patFile)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return vcd.DumpScan(f, scan.New(sol.Circuit), pats, sol.Cfg, nil)
}

// replayPatterns measures the three structures on a stored pattern set.
func replayPatterns(c *netlist.Circuit, sol *core.Solution, cfg scanpower.Config, patFile string) error {
	pats, err := loadOrGenerate(c, cfg, patFile)
	if err != nil {
		return err
	}
	trad, err := power.MeasureScan(scan.New(c), pats, scan.Traditional(c), cfg.Leak, cfg.Cap)
	if err != nil {
		return err
	}
	prop, err := power.MeasureScan(scan.New(sol.Circuit), pats, sol.Cfg, cfg.Leak, cfg.Cap)
	if err != nil {
		return err
	}
	fmt.Printf("\nreplayed %d stored patterns\n", len(pats))
	fmt.Printf("%-14s %14s %12s\n", "structure", "dynamic µW/Hz", "static µW")
	fmt.Printf("%-14s %14.3e %12.2f\n", "traditional", trad.DynamicPerHz, trad.StaticUW)
	fmt.Printf("%-14s %14.3e %12.2f\n", "proposed", prop.DynamicPerHz, prop.StaticUW)
	return nil
}
