// Command tableone regenerates the paper's Table I: scan-mode dynamic and
// static power of the combinational part under traditional scan, the
// input-control baseline, and the proposed structure, for the twelve
// ISCAS89 benchmark profiles.
//
// Usage:
//
//	tableone [-circuits s344,s382,...] [-markdown] [-j N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro"
)

type row struct {
	idx  int
	cmp  *scanpower.Comparison
	note string
	err  error
}

func main() {
	circuits := flag.String("circuits", "", "comma-separated circuit names (default: all twelve)")
	markdown := flag.Bool("markdown", false, "emit a Markdown table (for EXPERIMENTS.md)")
	workers := flag.Int("j", runtime.NumCPU(), "circuits to process in parallel")
	flag.Parse()

	names := scanpower.BenchmarkNames()
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	cfg := scanpower.DefaultConfig()

	if *workers < 1 {
		*workers = 1
	}
	jobs := make(chan int)
	results := make([]row, len(names))
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				start := time.Now()
				r := row{idx: i}
				c, err := scanpower.Benchmark(names[i])
				if err != nil {
					r.err = err
					results[i] = r
					continue
				}
				cmp, err := scanpower.Compare(c, cfg)
				if err != nil {
					r.err = err
					results[i] = r
					continue
				}
				r.cmp = cmp
				r.note = fmt.Sprintf("# %s: %d patterns, %.1f%% coverage, %d/%d flops muxed, %v",
					cmp.Circuit, cmp.Patterns, cmp.FaultCoverage*100,
					cmp.ProposedStats.MuxCount, cmp.Stats.FFs,
					time.Since(start).Round(time.Millisecond))
				results[i] = r
			}
		}()
	}
	go func() {
		for i := range names {
			jobs <- i
		}
		close(jobs)
	}()
	wg.Wait()

	if *markdown {
		fmt.Println("| Circuit | Trad dyn (µW/Hz) | Trad static (µW) | IC dyn (µW/Hz) | IC static (µW) | Prop dyn (µW/Hz) | Prop static (µW) | dyn% vs Trad | stat% vs Trad | dyn% vs IC | stat% vs IC |")
		fmt.Println("|---|---|---|---|---|---|---|---|---|---|---|")
	} else {
		fmt.Println(scanpower.TableHeader())
	}
	failed := false
	for _, r := range results {
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "tableone: %s: %v\n", names[r.idx], r.err)
			failed = true
			continue
		}
		cmp := r.cmp
		if *markdown {
			fmt.Printf("| %s | %.3e | %.2f | %.3e | %.2f | %.3e | %.2f | %.2f | %.2f | %.2f | %.2f |\n",
				cmp.Circuit,
				cmp.Traditional.DynamicPerHz, cmp.Traditional.StaticUW,
				cmp.InputControl.DynamicPerHz, cmp.InputControl.StaticUW,
				cmp.Proposed.DynamicPerHz, cmp.Proposed.StaticUW,
				cmp.DynImprovementVsTraditional(), cmp.StaticImprovementVsTraditional(),
				cmp.DynImprovementVsInputControl(), cmp.StaticImprovementVsInputControl())
		} else {
			fmt.Println(cmp.Row())
		}
		fmt.Fprintln(os.Stderr, r.note)
	}
	if failed {
		os.Exit(1)
	}
}
