// Command tableone regenerates the paper's Table I: scan-mode dynamic and
// static power of the combinational part under traditional scan, the
// input-control baseline, and the proposed structure, for the twelve
// ISCAS89 benchmark profiles.
//
// The experiments run on the scanpower Engine: -j bounds the worker pool
// (default GOMAXPROCS), -timeout aborts the whole run cleanly after the
// given duration, and -progress streams per-stage timings to stderr.
//
// Telemetry: -listen serves /metrics (Prometheus text), /debug/vars
// (expvar) and /debug/pprof on the given address while the run executes;
// -trace writes the run → circuit → stage span tree as JSON Lines;
// -manifest writes a machine-readable run manifest (environment, config,
// per-circuit stage timings, metric snapshot, results) — the payload of
// `make bench-json`.
//
// Usage:
//
//	tableone [-circuits s344,s382,...] [-markdown] [-j N] [-timeout 5m] [-progress]
//	         [-listen :8080] [-trace trace.jsonl] [-manifest run.json]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/atpg"
	"repro/internal/cliflags"
	"repro/internal/telemetry"
)

func main() {
	fs := flag.CommandLine
	circuits := fs.String("circuits", "", "comma-separated circuit names (default: all twelve)")
	markdown := fs.Bool("markdown", false, "emit a Markdown table (for EXPERIMENTS.md)")
	workers := cliflags.Workers(fs, "j", runtime.NumCPU(), "circuits to process in parallel (worker pool size)")
	timeout := cliflags.Timeout(fs, "timeout", 0, "abort the whole run after this duration (0 = no limit)")
	progress := fs.Bool("progress", false, "stream per-stage progress to stderr")
	listen := fs.String("listen", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8080)")
	tracePath := fs.String("trace", "", "write the span trace as JSON Lines to this file")
	manifestPath := fs.String("manifest", "", "write the run manifest JSON to this file")
	measure := cliflags.Measure(fs)
	mcBackend := cliflags.MC(fs)
	lanes := cliflags.Lanes(fs)
	atpgWorkers := cliflags.ATPGWorkers(fs)
	flag.Parse()

	names := scanpower.BenchmarkNames()
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	reg := telemetry.NewRegistry()
	if *listen != "" {
		srv, err := telemetry.ListenAndServe(*listen, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tableone:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "tableone: telemetry on http://%s/metrics\n", srv.Addr)
	}
	var tw *telemetry.TraceWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tableone:", err)
			os.Exit(1)
		}
		defer f.Close()
		tw = telemetry.NewTraceWriter(f)
	}
	rec := scanpower.NewRecorder(reg, tw)

	cfg, err := cliflags.BackendConfig(*measure, *mcBackend, *lanes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tableone:", err)
		os.Exit(2)
	}
	if cfg.ATPG.Workers, err = cliflags.ValidateATPGWorkers(*atpgWorkers); err != nil {
		fmt.Fprintln(os.Stderr, "tableone:", err)
		os.Exit(2)
	}
	eng := scanpower.NewEngine(cfg)
	eng.Workers = *workers
	eng.Hooks = rec.Hooks()
	if *progress {
		eng.Hooks = scanpower.MergeHooks(progressHooks("tableone"), rec.Hooks())
	}

	cmps, err := eng.RunAll(ctx, names)
	rec.Close()
	if *manifestPath != "" {
		if werr := writeManifest(*manifestPath, rec, names, *workers, cmps); werr != nil {
			fmt.Fprintln(os.Stderr, "tableone:", werr)
			if err == nil {
				os.Exit(1)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tableone:", err)
		os.Exit(1)
	}

	if *markdown {
		fmt.Println("| Circuit | Trad dyn (µW/Hz) | Trad static (µW) | IC dyn (µW/Hz) | IC static (µW) | Prop dyn (µW/Hz) | Prop static (µW) | dyn% vs Trad | stat% vs Trad | dyn% vs IC | stat% vs IC |")
		fmt.Println("|---|---|---|---|---|---|---|---|---|---|---|")
	} else {
		fmt.Println(scanpower.TableHeader())
	}
	for _, cmp := range cmps {
		if *markdown {
			fmt.Printf("| %s | %.3e | %.2f | %.3e | %.2f | %.3e | %.2f | %.2f | %.2f | %.2f | %.2f |\n",
				cmp.Circuit,
				cmp.Traditional.DynamicPerHz, cmp.Traditional.StaticUW,
				cmp.InputControl.DynamicPerHz, cmp.InputControl.StaticUW,
				cmp.Proposed.DynamicPerHz, cmp.Proposed.StaticUW,
				cmp.DynImprovementVsTraditional(), cmp.StaticImprovementVsTraditional(),
				cmp.DynImprovementVsInputControl(), cmp.StaticImprovementVsInputControl())
		} else {
			fmt.Println(cmp.Row())
		}
		fmt.Fprintf(os.Stderr, "# %s: %d patterns, %.1f%% coverage, %d/%d flops muxed\n",
			cmp.Circuit, cmp.Patterns, cmp.FaultCoverage*100,
			cmp.ProposedStats.MuxCount, cmp.Stats.FFs)
	}
}

// writeManifest assembles and writes the run manifest: the Recorder's
// stage record plus the run configuration and the rendered result table.
func writeManifest(path string, rec *scanpower.Recorder, names []string,
	workers int, cmps []*scanpower.Comparison) error {

	m := rec.Manifest("tableone")
	m.Workers = workers
	cfgJSON, err := json.Marshal(struct {
		Circuits []string     `json:"circuits"`
		ATPG     atpg.Options `json:"atpg"`
	}{names, scanpower.DefaultConfig().ATPG})
	if err != nil {
		return err
	}
	m.Config = cfgJSON
	if len(cmps) > 0 {
		// Results carry the scanpower/comparison/v1 wire form — the same
		// marshaller the scanpowerd service answers with, so manifests and
		// service responses agree byte for byte.
		var buf bytes.Buffer
		if err := scanpower.WriteComparisonsJSON(&buf, cmps); err != nil {
			return err
		}
		m.Results = buf.Bytes()
	}
	return m.WriteFile(path)
}

// progressHooks reports Engine stages and completions on stderr.
func progressHooks(tool string) scanpower.Hooks {
	return scanpower.Hooks{
		OnStageDone: func(circuit, stage string, elapsed time.Duration, info scanpower.StageInfo) {
			extra := ""
			if stage == scanpower.StageATPG {
				if info.CacheHit {
					extra = " (cached)"
				} else {
					extra = fmt.Sprintf(" (%d patterns, %d backtracks)", info.Patterns, info.Backtracks)
				}
			}
			fmt.Fprintf(os.Stderr, "%s: %s %s %v%s\n", tool, circuit, stage,
				elapsed.Round(time.Millisecond), extra)
		},
		OnProgress: func(circuit string, done, total int) {
			fmt.Fprintf(os.Stderr, "%s: %d/%d done (%s)\n", tool, done, total, circuit)
		},
	}
}
