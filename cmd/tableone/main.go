// Command tableone regenerates the paper's Table I: scan-mode dynamic and
// static power of the combinational part under traditional scan, the
// input-control baseline, and the proposed structure, for the twelve
// ISCAS89 benchmark profiles.
//
// The experiments run on the scanpower Engine: -j bounds the worker pool
// (default GOMAXPROCS), -timeout aborts the whole run cleanly after the
// given duration, and -progress streams per-stage timings to stderr.
//
// Usage:
//
//	tableone [-circuits s344,s382,...] [-markdown] [-j N] [-timeout 5m] [-progress]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro"
)

func main() {
	circuits := flag.String("circuits", "", "comma-separated circuit names (default: all twelve)")
	markdown := flag.Bool("markdown", false, "emit a Markdown table (for EXPERIMENTS.md)")
	workers := flag.Int("j", runtime.NumCPU(), "circuits to process in parallel (worker pool size)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
	progress := flag.Bool("progress", false, "stream per-stage progress to stderr")
	flag.Parse()

	names := scanpower.BenchmarkNames()
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	eng := scanpower.NewEngine(scanpower.DefaultConfig())
	eng.Workers = *workers
	if *progress {
		eng.Hooks = progressHooks("tableone")
	}

	cmps, err := eng.RunAll(ctx, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tableone:", err)
		os.Exit(1)
	}

	if *markdown {
		fmt.Println("| Circuit | Trad dyn (µW/Hz) | Trad static (µW) | IC dyn (µW/Hz) | IC static (µW) | Prop dyn (µW/Hz) | Prop static (µW) | dyn% vs Trad | stat% vs Trad | dyn% vs IC | stat% vs IC |")
		fmt.Println("|---|---|---|---|---|---|---|---|---|---|---|")
	} else {
		fmt.Println(scanpower.TableHeader())
	}
	for _, cmp := range cmps {
		if *markdown {
			fmt.Printf("| %s | %.3e | %.2f | %.3e | %.2f | %.3e | %.2f | %.2f | %.2f | %.2f | %.2f |\n",
				cmp.Circuit,
				cmp.Traditional.DynamicPerHz, cmp.Traditional.StaticUW,
				cmp.InputControl.DynamicPerHz, cmp.InputControl.StaticUW,
				cmp.Proposed.DynamicPerHz, cmp.Proposed.StaticUW,
				cmp.DynImprovementVsTraditional(), cmp.StaticImprovementVsTraditional(),
				cmp.DynImprovementVsInputControl(), cmp.StaticImprovementVsInputControl())
		} else {
			fmt.Println(cmp.Row())
		}
		fmt.Fprintf(os.Stderr, "# %s: %d patterns, %.1f%% coverage, %d/%d flops muxed\n",
			cmp.Circuit, cmp.Patterns, cmp.FaultCoverage*100,
			cmp.ProposedStats.MuxCount, cmp.Stats.FFs)
	}
}

// progressHooks reports Engine stages and completions on stderr.
func progressHooks(tool string) scanpower.Hooks {
	return scanpower.Hooks{
		OnStageDone: func(circuit, stage string, elapsed time.Duration, info scanpower.StageInfo) {
			extra := ""
			if stage == scanpower.StageATPG {
				if info.CacheHit {
					extra = " (cached)"
				} else {
					extra = fmt.Sprintf(" (%d patterns, %d backtracks)", info.Patterns, info.Backtracks)
				}
			}
			fmt.Fprintf(os.Stderr, "%s: %s %s %v%s\n", tool, circuit, stage,
				elapsed.Round(time.Millisecond), extra)
		},
		OnProgress: func(circuit string, done, total int) {
			fmt.Fprintf(os.Stderr, "%s: %d/%d done (%s)\n", tool, done, total, circuit)
		},
	}
}
