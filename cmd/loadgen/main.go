// Command loadgen drives mixed traffic at a scanpowerd daemon or
// cluster through the typed client and reports throughput and latency
// percentiles as a JSON document.
//
// The traffic mix models the service's real workload classes:
//
//   - hot repeats — a small fixed set of circuits submitted over and
//     over, exercising job coalescing, the Engine's ATPG memoization and
//     the persistent result store;
//   - cold inline benches — every submit a structurally fresh circuit
//     (unique name, so a unique fingerprint), forcing full ATPG and
//     measurement work and, in cluster mode, spreading across the shards;
//   - cancellations — async submits aborted immediately, exercising the
//     cancel path under load.
//
// Each worker runs submits back to back until -duration elapses; cold
// work is -cold-copies disjoint s27 instances per job, so one flag
// scales how much Engine work a cold submit costs.
//
// Usage:
//
//	loadgen -servers http://127.0.0.1:8344[,http://127.0.0.1:8345,...]
//	        [-duration 30s] [-concurrency 8] [-hot 0.4] [-cancel 0.05]
//	        [-cold-copies 4] [-measure packed] [-timeout 1m]
//	        [-label run] [-out run.json]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/cliflags"
	"repro/internal/telemetry"
)

// s27Bench is the ISCAS89 s27 netlist, the unit cell of generated
// traffic. Small enough to keep submits snappy, real enough that every
// cold job runs genuine ATPG and power measurement.
const s27Bench = `INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

// benchSource returns copies disjoint s27 instances in one netlist, so
// a cold job costs roughly copies times one s27 experiment.
func benchSource(copies int) string {
	if copies < 1 {
		copies = 1
	}
	var sb strings.Builder
	for i := 0; i < copies; i++ {
		suffix := fmt.Sprintf("_c%d", i)
		for _, line := range strings.Split(s27Bench, "\n") {
			sb.WriteString(suffixSignals(line, suffix))
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// suffixSignals rewrites every G<digits> token in one bench line with
// the given suffix, keeping structure tokens intact.
func suffixSignals(line, suffix string) string {
	var sb strings.Builder
	for i := 0; i < len(line); {
		if line[i] == 'G' && i+1 < len(line) && line[i+1] >= '0' && line[i+1] <= '9' {
			j := i + 1
			for j < len(line) && line[j] >= '0' && line[j] <= '9' {
				j++
			}
			sb.WriteString(line[i:j])
			sb.WriteString(suffix)
			i = j
			continue
		}
		sb.WriteByte(line[i])
		i++
	}
	return sb.String()
}

// counters aggregates worker outcomes.
type counters struct {
	submitted int64
	done      int64
	coalesced int64
	canceled  int64
	failures  int64
	rejected  int64 // queue_full / draining backpressure
}

// runDoc is the loadgen output document.
type runDoc struct {
	Schema         string   `json:"schema"`
	Label          string   `json:"label,omitempty"`
	Servers        []string `json:"servers"`
	DurationSec    float64  `json:"duration_sec"`
	Concurrency    int      `json:"concurrency"`
	HotFraction    float64  `json:"hot_fraction"`
	CancelFraction float64  `json:"cancel_fraction"`
	ColdCopies     int      `json:"cold_copies"`
	HotSet         int      `json:"hot_set"`

	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Coalesced int64 `json:"coalesced"`
	Canceled  int64 `json:"canceled"`
	Failures  int64 `json:"failures"`
	Rejected  int64 `json:"rejected"`

	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	LatencyMS            struct {
		P50  float64 `json:"p50"`
		P90  float64 `json:"p90"`
		P99  float64 `json:"p99"`
		Mean float64 `json:"mean"`
	} `json:"latency_ms"`

	// Cluster is the server-side fused metrics snapshot fetched after the
	// run — the authoritative cluster-wide view (queue/inflight occupancy,
	// jobs by state, store hit rate and per-endpoint latency percentiles
	// fused across every node), as opposed to the client-observed latency
	// above. Absent when the fetch fails.
	Cluster *client.ClusterMetrics `json:"cluster,omitempty"`
}

func main() {
	fs := flag.CommandLine
	servers := fs.String("servers", "", "comma-separated scanpowerd base URLs (required)")
	duration := cliflags.Timeout(fs, "duration", 30*time.Second, "how long to drive traffic")
	concurrency := cliflags.Workers(fs, "concurrency", 8, "concurrent submitters")
	hot := fs.Float64("hot", 0.4, "fraction of submits repeating the fixed hot set")
	cancelFrac := fs.Float64("cancel", 0.05, "fraction of submits canceled right after admission")
	coldCopies := fs.Int("cold-copies", 4, "s27 instances per cold circuit (scales per-job Engine work)")
	hotSet := fs.Int("hot-set", 4, "distinct circuits in the hot set")
	measure := cliflags.Measure(fs)
	timeout := cliflags.Timeout(fs, "timeout", time.Minute, "per-job deadline sent with each submit")
	label := fs.String("label", "", "label recorded in the output document")
	out := fs.String("out", "", "write the JSON document to this file (default stdout)")
	seed := fs.Int64("seed", 1, "traffic-mix RNG seed")
	flag.Parse()

	if err := run(*servers, *duration, *concurrency, *hot, *cancelFrac,
		*coldCopies, *hotSet, *measure, *timeout, *label, *out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(servers string, duration time.Duration, concurrency int, hot, cancelFrac float64,
	coldCopies, hotSet int, measure string, timeout time.Duration, label, out string, seed int64) error {

	if servers == "" {
		return errors.New("-servers is required")
	}
	if _, err := cliflags.ValidateMeasure(measure); err != nil {
		return err
	}
	var endpoints []string
	for _, s := range strings.Split(servers, ",") {
		if s = cliflags.NormalizeEndpoint(s); s != "" {
			endpoints = append(endpoints, s)
		}
	}
	cl, err := client.New(endpoints, client.Options{PollInterval: 10 * time.Millisecond})
	if err != nil {
		return err
	}

	cold := benchSource(coldCopies)
	reg := telemetry.NewRegistry()
	// Latency buckets from 1ms to ~4s; Quantile interpolates within.
	hist := reg.Histogram("loadgen_latency_seconds",
		[]float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 4})

	var (
		cnt      counters
		coldSeq  atomic.Int64
		wg       sync.WaitGroup
		deadline = time.Now().Add(duration)
	)
	ctx, cancel := context.WithDeadline(context.Background(), deadline.Add(timeout))
	defer cancel()

	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for time.Now().Before(deadline) {
				req := client.SubmitRequest{
					Source:  &api.Source{Bench: cold},
					Measure: measure,
					Timeout: timeout,
					Wait:    true,
				}
				doCancel := rng.Float64() < cancelFrac
				if !doCancel && rng.Float64() < hot {
					req.Source.Name = fmt.Sprintf("hot-%d", rng.Intn(hotSet))
				} else {
					req.Source.Name = fmt.Sprintf("cold-%d", coldSeq.Add(1))
				}

				atomic.AddInt64(&cnt.submitted, 1)
				t0 := time.Now()
				if doCancel {
					req.Wait = false
					job, err := cl.Submit(ctx, req)
					if err != nil {
						recordErr(&cnt, err)
						continue
					}
					if _, err := cl.Cancel(ctx, job); err != nil {
						recordErr(&cnt, err)
						continue
					}
					atomic.AddInt64(&cnt.canceled, 1)
					continue
				}

				job, err := cl.Submit(ctx, req)
				if err != nil {
					recordErr(&cnt, err)
					continue
				}
				if !job.Terminal() {
					if job, err = cl.Wait(ctx, job); err != nil {
						recordErr(&cnt, err)
						continue
					}
				}
				if job.State != "done" {
					atomic.AddInt64(&cnt.failures, 1)
					continue
				}
				if _, _, err := cl.Result(ctx, job); err != nil {
					recordErr(&cnt, err)
					continue
				}
				hist.Observe(time.Since(t0).Seconds())
				atomic.AddInt64(&cnt.done, 1)
				if job.Coalesced {
					atomic.AddInt64(&cnt.coalesced, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	doc := runDoc{
		Schema:         "scanpower/loadgen-run/v1",
		Label:          label,
		Servers:        endpoints,
		DurationSec:    elapsed.Seconds(),
		Concurrency:    concurrency,
		HotFraction:    hot,
		CancelFraction: cancelFrac,
		ColdCopies:     coldCopies,
		HotSet:         hotSet,
		Submitted:      atomic.LoadInt64(&cnt.submitted),
		Done:           atomic.LoadInt64(&cnt.done),
		Coalesced:      atomic.LoadInt64(&cnt.coalesced),
		Canceled:       atomic.LoadInt64(&cnt.canceled),
		Failures:       atomic.LoadInt64(&cnt.failures),
		Rejected:       atomic.LoadInt64(&cnt.rejected),
	}
	doc.ThroughputJobsPerSec = float64(doc.Done) / elapsed.Seconds()
	doc.LatencyMS.P50 = hist.Quantile(0.50) * 1000
	doc.LatencyMS.P90 = hist.Quantile(0.90) * 1000
	doc.LatencyMS.P99 = hist.Quantile(0.99) * 1000
	if n := hist.Count(); n > 0 {
		doc.LatencyMS.Mean = hist.Sum() / float64(n) * 1000
	}

	// Attach the server-side fused snapshot; a cluster that cannot answer
	// still gets the client-side document.
	mctx, mcancel := context.WithTimeout(context.Background(), 10*time.Second)
	if cm, err := cl.ClusterMetrics(mctx); err == nil {
		doc.Cluster = cm
	} else {
		fmt.Fprintf(os.Stderr, "loadgen: cluster metrics unavailable: %v\n", err)
	}
	mcancel()

	raw, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if out == "" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d done (%d coalesced, %d canceled, %d failures, %d rejected) in %.1fs -> %.1f jobs/s, p50 %.0fms p99 %.0fms\n",
		doc.Done, doc.Coalesced, doc.Canceled, doc.Failures, doc.Rejected,
		doc.DurationSec, doc.ThroughputJobsPerSec, doc.LatencyMS.P50, doc.LatencyMS.P99)
	return nil
}

// recordErr classifies a request error: backpressure rejections are
// expected under load and counted apart from real failures.
func recordErr(cnt *counters, err error) {
	if errors.Is(err, client.ErrQueueFull) || errors.Is(err, client.ErrDraining) {
		atomic.AddInt64(&cnt.rejected, 1)
		return
	}
	atomic.AddInt64(&cnt.failures, 1)
}
