// Command benchgen writes the synthetic ISCAS89-profile benchmark
// circuits to .bench files, so they can be inspected, diffed, or fed to
// external tools.
//
// Usage:
//
//	benchgen -dir out/          # all twelve Table I circuits
//	benchgen -dir out/ -circuits s344,s510
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro"
	"repro/internal/bench"
	"repro/internal/verilog"
)

func main() {
	dir := flag.String("dir", ".", "output directory")
	circuits := flag.String("circuits", "", "comma-separated subset (default: all)")
	asVerilog := flag.Bool("verilog", false, "emit structural Verilog (.v) instead of .bench")
	flag.Parse()

	names := scanpower.BenchmarkNames()
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		c, err := scanpower.Benchmark(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		ext := ".bench"
		write := bench.Write
		if *asVerilog {
			ext = ".v"
			write = verilog.Write
		}
		path := filepath.Join(*dir, name+ext)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		if err := write(f, c); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		st := c.ComputeStats()
		fmt.Printf("%s: %s\n", path, st)
	}
}
