// Command leaktab prints the per-cell leakage tables of the calibrated
// 45 nm model — the reproduction of the paper's Figure 2 (NAND2) and the
// analogous tables for every other library cell.
//
// Usage:
//
//	leaktab            # Figure 2 only
//	leaktab -all       # every cell and input state
package main

import (
	"flag"
	"fmt"

	"repro/internal/bsim"
	"repro/internal/leakage"
	"repro/internal/logic"
)

func main() {
	all := flag.Bool("all", false, "print every library cell, not just the Figure 2 NAND2")
	useBSIM := flag.Bool("bsim", false, "derive the model from the BSIM device equations instead of the Figure 2 calibration")
	flag.Parse()

	m := leakage.Default()
	if *useBSIM {
		params, err := leakage.ParamsFromDevices(bsim.Default45())
		if err != nil {
			fmt.Println("leaktab:", err)
			return
		}
		m = leakage.New(params)
		fmt.Println("(model derived from BSIM device equations, not the Figure 2 anchor)")
	}
	fmt.Println("Figure 2 — leakage current of NAND2 gate in 45nm technology")
	fmt.Println(" A B   Leakage (nA)")
	f := m.Figure2()
	for ab, leak := range f {
		fmt.Printf(" %d %d   %.0f\n", ab>>1&1, ab&1, leak)
	}
	fmt.Println("(paper: 00→78, 01→73, 10→264, 11→408)")
	if !*all {
		return
	}
	cells := []struct {
		t     logic.GateType
		arity int
	}{
		{logic.Not, 1},
		{logic.Nand, 2}, {logic.Nand, 3}, {logic.Nand, 4},
		{logic.Nor, 2}, {logic.Nor, 3}, {logic.Nor, 4},
		{logic.Mux2, 3},
	}
	for _, cell := range cells {
		fmt.Printf("\n%s%d (input bit order: index 0 = transistor nearest the output)\n",
			cell.t, cell.arity)
		for bits := 0; bits < 1<<cell.arity; bits++ {
			pattern := make([]byte, cell.arity)
			for i := range pattern {
				pattern[i] = '0'
				if bits>>i&1 == 1 {
					pattern[i] = '1'
				}
			}
			fmt.Printf(" %s   %8.2f nA\n", pattern, m.GateLeakBits(cell.t, cell.arity, bits))
		}
	}
}
