// Command scanpowerd serves the scan-power experiments as a long-running
// HTTP/JSON job service. Clients submit Table I experiments — a built-in
// ISCAS89 circuit name, inline .bench source or inline structural Verilog,
// with optional measurement backend, deadline overrides and a
// switching-activity annotation — and poll for scanpower/comparison/v1
// results; every job runs on one shared Engine, so repeated circuits hit
// the memoized ATPG cache.
//
// API (see internal/service and the repro/api wire package):
//
//	POST   /v1/jobs              {"source":{"circuit":"s344"}} or
//	                             {"source":{"bench":"...","name":"..."}} or
//	                             {"source":{"verilog":"...","name":"..."}},
//	                             optionally {"activity":{"inputs":{...},
//	                             "default_input":0.2}} or {"activity":
//	                             {"vcd":"..."}}, plus "measure",
//	                             "timeout_ms", "wait". The legacy flat
//	                             {"circuit":...}/{"bench":...} body is
//	                             still accepted byte-compatibly.
//	GET    /v1/jobs/{id}         job status
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/jobs/{id}/result  result document
//	GET    /v1/benchmarks        built-in circuits with structure stats
//	GET    /v1/healthz           queue/store stats; 503 while draining
//	GET    /v1/cluster           membership, peer health and store status
//	GET    /metrics              Prometheus text (plus /debug/vars, /debug/pprof)
//
// The queue is bounded: submits beyond -queue waiting jobs are rejected
// with 429 and Retry-After. SIGTERM or SIGINT drains gracefully — new
// submits get 503 while queued and running jobs finish (up to
// -drain-timeout, then they are cancelled), so results and trace spans
// are never truncated.
//
// -store-dir enables the persistent result store: completed results are
// written to disk keyed by circuit fingerprint, measurement backend and
// activity-profile hash, and a restarted daemon serves previously
// computed jobs from disk — bit-identical bytes, no recompute.
//
// -peers (with -self) enables cluster mode: submits are sharded by
// circuit fingerprint across the members with consistent hashing, jobs
// owned elsewhere are forwarded, and a down peer fails over to the next
// ring replica.
//
// Usage:
//
//	scanpowerd [-listen 127.0.0.1:8344] [-workers N] [-queue N]
//	           [-job-timeout 0] [-max-job-timeout 10m] [-measure packed]
//	           [-store-dir DIR] [-store-max-bytes N]
//	           [-self URL] [-peers URL,URL]
//	           [-trace trace.jsonl] [-manifest run.json] [-drain-timeout 30s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro"
	"repro/internal/cliflags"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	fs := flag.CommandLine
	listen := fs.String("listen", "127.0.0.1:8344", "address to serve the API on")
	workers := cliflags.Workers(fs, "workers", runtime.NumCPU(), "concurrent job executors")
	queue := fs.Int("queue", 16, "jobs allowed to wait beyond the running ones")
	jobTimeout := cliflags.Timeout(fs, "job-timeout", 0, "default per-job deadline for requests without timeout_ms (0 = none)")
	maxJobTimeout := cliflags.Timeout(fs, "max-job-timeout", 10*time.Minute, "cap on client-requested deadlines (0 = no cap)")
	measure := cliflags.Measure(fs)
	lanes := cliflags.Lanes(fs)
	atpgWorkers := cliflags.ATPGWorkers(fs)
	self := fs.String("self", "", "this node's externally reachable base URL (e.g. http://10.0.0.1:8344); required with -peers")
	node := fs.String("node", "", "this node's display name on trace spans and log lines (default -self, then \"local\")")
	cluster := cliflags.ClusterFlags(fs)
	tracePath := fs.String("trace", "", "write the span trace as JSON Lines to this file")
	manifestPath := fs.String("manifest", "", "write a run manifest JSON to this file on shutdown")
	drainTimeout := cliflags.Timeout(fs, "drain-timeout", 30*time.Second, "how long shutdown waits for live jobs before cancelling them")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
	flag.Parse()

	if err := run(*listen, *workers, *queue, *atpgWorkers, *lanes, *jobTimeout, *maxJobTimeout,
		*measure, *self, *node, cluster, *tracePath, *manifestPath, *drainTimeout,
		*logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "scanpowerd:", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon's structured logger: text lines on stderr,
// each carrying the node name (added by the service) and, where a job is
// involved, trace_id and job_id fields.
func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

func run(listen string, workers, queue, atpgWorkers, lanes int, jobTimeout, maxJobTimeout time.Duration,
	measure, self, node string, cluster *cliflags.Cluster, tracePath, manifestPath string,
	drainTimeout time.Duration, logLevel string) error {

	logger, err := newLogger(logLevel)
	if err != nil {
		return err
	}
	backend, err := cliflags.ValidateMeasure(measure)
	if err != nil {
		return err
	}
	atpgWorkers, err = cliflags.ValidateATPGWorkers(atpgWorkers)
	if err != nil {
		return err
	}
	lanes, err = cliflags.ValidateLanes(lanes)
	if err != nil {
		return err
	}
	peers := cluster.PeerList()
	self = cliflags.NormalizeEndpoint(self)
	if len(peers) > 0 && self == "" {
		return fmt.Errorf("cluster mode (-peers) needs -self, this node's own base URL")
	}

	reg := telemetry.NewRegistry()
	var tw *telemetry.TraceWriter
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		tw = telemetry.NewTraceWriter(f)
	}

	var st *store.Store
	if cluster.StoreDir != "" {
		st, err = store.Open(cluster.StoreDir, store.Options{
			MaxBytes:   cluster.StoreMaxBytes,
			WireSchema: scanpower.ComparisonSchemaV1,
		})
		if err != nil {
			return err
		}
		logger.Info("result store opened", "dir", cluster.StoreDir, "warm_entries", st.Len())
	}

	cfg := scanpower.DefaultConfig()
	cfg.Measure = backend
	cfg.Lanes = lanes
	cfg.ATPG.Workers = atpgWorkers
	svc := service.New(service.Options{
		Cfg:            cfg,
		Workers:        workers,
		QueueSize:      queue,
		DefaultTimeout: jobTimeout,
		MaxTimeout:     maxJobTimeout,
		Registry:       reg,
		Trace:          tw,
		Store:          st,
		Self:           self,
		Peers:          peers,
		Node:           node,
		Logger:         logger,
	})

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logger.Info("listening", "addr", "http://"+ln.Addr().String())
	if len(peers) > 0 {
		logger.Info("cluster member", "self", self, "peers", peers)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case got := <-sig:
		logger.Info("draining", "signal", got.String())
	case err := <-serveErr:
		svc.Close()
		return err
	}

	// Drain the job queue first — the HTTP server stays up so clients can
	// keep polling and fetching results while live jobs finish; submits
	// are rejected with 503 the moment draining starts.
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	derr := svc.Drain(dctx)
	if derr != nil {
		logger.Warn("drain cut short", "error", derr)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
	}

	if manifestPath != "" {
		m := svc.Manifest("scanpowerd")
		m.Workers = workers
		if err := m.WriteFile(manifestPath); err != nil {
			return err
		}
	}
	logger.Info("drained, bye")
	return derr
}
