// Command atpggen generates stuck-at test patterns for a circuit and
// prints them with the achieved fault coverage — the stand-in for the
// ATOM test sets used in the paper's experiments.
//
// Usage:
//
//	atpggen -circuit s344
//	atpggen -bench path/to/x.bench [-seed 7] [-no-compact]
//
// Output: one line per pattern, "<PI bits> <scan state bits>", followed by
// a summary on stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/atpg"
	"repro/internal/cliflags"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

func main() {
	circuit := flag.String("circuit", "", "Table I benchmark name")
	benchFile := flag.String("bench", "", "path to an ISCAS89 .bench file")
	seed := flag.Int64("seed", 1, "ATPG random seed")
	noCompact := flag.Bool("no-compact", false, "disable reverse-order compaction")
	out := flag.String("o", "", "write patterns to this file (vectors v1 format) instead of stdout")
	fill := flag.String("fill", "random", "don't-care fill for deterministic patterns: random, 0, 1, adjacent")
	fillChains := flag.Int("fill-chains", 1, "scan-chain count adjacent fill follows (round-robin partition, matching the measurement chains)")
	nDetect := flag.Int("ndetect", 1, "require each fault be detected by at least N patterns")
	atpgWorkers := cliflags.ATPGWorkers(flag.CommandLine)
	lanes := cliflags.Lanes(flag.CommandLine)
	flag.Parse()

	var (
		c   *netlist.Circuit
		err error
	)
	switch {
	case *circuit != "":
		c, err = scanpower.Benchmark(*circuit)
	case *benchFile != "":
		c, err = scanpower.LoadBench(*benchFile)
	default:
		fmt.Fprintln(os.Stderr, "atpggen: need -circuit or -bench")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "atpggen:", err)
		os.Exit(1)
	}

	opts := atpg.DefaultOptions()
	opts.Seed = *seed
	opts.Compact = !*noCompact
	opts.NDetect = *nDetect
	opts.FillChains = *fillChains
	if opts.Workers, err = cliflags.ValidateATPGWorkers(*atpgWorkers); err != nil {
		fmt.Fprintln(os.Stderr, "atpggen:", err)
		os.Exit(2)
	}
	if opts.Lanes, err = cliflags.ValidateLanes(*lanes); err != nil {
		fmt.Fprintln(os.Stderr, "atpggen:", err)
		os.Exit(2)
	}
	switch *fill {
	case "random":
		opts.Fill = atpg.FillRandom
	case "0":
		opts.Fill = atpg.FillZero
	case "1":
		opts.Fill = atpg.FillOne
	case "adjacent":
		opts.Fill = atpg.FillAdjacent
	default:
		fmt.Fprintf(os.Stderr, "atpggen: unknown fill mode %q\n", *fill)
		os.Exit(2)
	}
	res, err := atpg.Generate(c, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atpggen:", err)
		os.Exit(1)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atpggen:", err)
			os.Exit(1)
		}
		set := vectors.Set{Circuit: c.Name, NPI: len(c.PIs), NFF: c.NumFFs(),
			Patterns: res.Patterns}
		if err := vectors.Write(f, set); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "atpggen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "atpggen:", err)
			os.Exit(1)
		}
	} else {
		for _, p := range res.Patterns {
			fmt.Printf("%s %s\n", bits(p.PI), bits(p.State))
		}
	}
	fmt.Fprintf(os.Stderr, "# %s: %d patterns, %d/%d faults detected (%.2f%% coverage), %d untestable, %d aborted\n",
		c.Name, len(res.Patterns), res.DetectedCount(), len(res.Faults),
		res.Coverage()*100, res.Untestable, res.Aborted)
}

func bits(v []bool) string {
	b := make([]byte, len(v))
	for i, x := range v {
		if x {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
