// Command loadsmoke is the `make loadsmoke` / `make bench-cluster`
// driver: it builds scanpowerd and loadgen, boots a real local cluster
// and proves the sharded-service contract end to end —
//
//   - phase A: a single node (-workers 1) takes cold-only traffic for a
//     baseline throughput T1;
//   - phase B: a 3-node cluster (-workers 1 each, consistent-hash
//     sharding, per-node result stores) takes the same cold traffic and
//     must clear the scaling bar (T3 >= 2 x T1 full profile, >= 1.5
//     short profile);
//   - phase C: mixed traffic (hot repeats, cold benches, cancellations)
//     runs while one node is SIGKILLed mid-run and restarted on the same
//     store directory; afterwards the restarted node must serve a job
//     computed in its first life bit-identically from disk — store hits
//     up, the ATPG-stage counter not incrementing;
//   - finally every node drains cleanly on SIGTERM (exit 0).
//
// With -out it writes the whole run as a scanpower/cluster-bench/v1
// JSON document (the payload of `make bench-cluster`). -short shrinks
// the traffic windows for the tier-1 gate.
//
// It exits non-zero on the first violated expectation.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/client"
)

// warmBench is the s27 netlist used for the phase-C warm-restart probe.
const warmBench = `INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

type profile struct {
	name        string
	coldDur     time.Duration
	mixedDur    time.Duration
	scaling     float64 // required T3/T1 on cold traffic
	concurrency int
	coldCopies  int // s27 instances per cold job (keeps compute >> HTTP)
}

var (
	fullProfile  = profile{"full", 10 * time.Second, 10 * time.Second, 2.0, 8, 48}
	shortProfile = profile{"short", 3 * time.Second, 3 * time.Second, 1.5, 8, 48}
)

// node is one scanpowerd process in the local cluster.
type node struct {
	bin      string
	port     int
	self     string
	peers    string
	storeDir string
	logPath  string
	cmd      *exec.Cmd
}

// loadgenRun is the slice of the loadgen document loadsmoke reads back.
type loadgenRun struct {
	Throughput float64 `json:"throughput_jobs_per_sec"`
	Done       int64   `json:"done"`
	Coalesced  int64   `json:"coalesced"`
	Canceled   int64   `json:"canceled"`
	Failures   int64   `json:"failures"`
}

// benchDoc is the scanpower/cluster-bench/v1 output document.
type benchDoc struct {
	Schema    string `json:"schema"`
	Label     string `json:"label"`
	CreatedAt string `json:"created_at"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu,omitempty"`
	CPUs      int    `json:"cpus"`
	Profile   string `json:"profile"`
	Workload  struct {
		Nodes          int    `json:"nodes"`
		WorkersPerNode int    `json:"workers_per_node"`
		Concurrency    int    `json:"concurrency"`
		ColdCopies     int    `json:"cold_copies"`
		Command        string `json:"command"`
	} `json:"workload"`
	SingleNode   json.RawMessage `json:"single_node"`
	ClusterCold  json.RawMessage `json:"cluster_cold"`
	ClusterMixed json.RawMessage `json:"cluster_mixed"`
	WarmRestart  struct {
		Node           string `json:"node"`
		Circuit        string `json:"circuit"`
		BytesIdentical bool   `json:"bytes_identical"`
		StoreHits      int64  `json:"store_hits"`
		ATPGRecomputes int64  `json:"atpg_recomputes"`
	} `json:"warm_restart"`
	Acceptance struct {
		Criterion string  `json:"criterion"`
		ScalingX  float64 `json:"scaling_x"`
		Enforced  bool    `json:"enforced"`
		Met       bool    `json:"met"`
		Note      string  `json:"note,omitempty"`
	} `json:"acceptance"`
}

func main() {
	short := flag.Bool("short", false, "short traffic windows (the tier-1 gate profile)")
	out := flag.String("out", "", "write the scanpower/cluster-bench/v1 document to this file")
	flag.Parse()
	prof := fullProfile
	if *short {
		prof = shortProfile
	}
	if err := run(prof, *out); err != nil {
		fmt.Fprintln(os.Stderr, "loadsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("loadsmoke: OK")
}

func run(prof profile, out string) error {
	tmp, err := os.MkdirTemp("", "loadsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	daemonBin := filepath.Join(tmp, "scanpowerd")
	loadgenBin := filepath.Join(tmp, "loadgen")
	for bin, pkg := range map[string]string{
		daemonBin:  "./cmd/scanpowerd",
		loadgenBin: "./cmd/loadgen",
	} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("build %s: %w", pkg, err)
		}
	}

	doc := benchDoc{
		Schema:    "scanpower/cluster-bench/v1",
		Label:     "scanpowerd-cluster",
		CreatedAt: time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPU:       cpuModel(),
		CPUs:      runtime.NumCPU(),
		Profile:   prof.name,
	}
	doc.Workload.Nodes = 3
	doc.Workload.WorkersPerNode = 1
	doc.Workload.Concurrency = prof.concurrency
	doc.Workload.ColdCopies = prof.coldCopies
	doc.Workload.Command = "go run ./scripts/loadsmoke" + map[bool]string{true: " -short"}[prof.name == "short"]

	// ---- Phase A: single-node cold baseline -------------------------
	single := &node{bin: daemonBin, port: pickPort(), logPath: filepath.Join(tmp, "single.log")}
	if err := single.start(); err != nil {
		return err
	}
	fmt.Printf("loadsmoke: phase A — single node at %s, cold traffic %v\n", single.url(), prof.coldDur)
	t1, t1raw, err := runLoadgen(loadgenBin, []string{single.url()}, prof, "cold", filepath.Join(tmp, "t1.json"))
	if err != nil {
		return err
	}
	if t1.Done == 0 {
		return fmt.Errorf("phase A completed no jobs")
	}
	if err := single.stopGraceful(); err != nil {
		return fmt.Errorf("single node drain: %w", err)
	}
	doc.SingleNode = t1raw
	fmt.Printf("loadsmoke: phase A baseline %.1f jobs/s (%d done)\n", t1.Throughput, t1.Done)

	// ---- Phase B: 3-node cluster, same cold traffic -----------------
	ports := []int{pickPort(), pickPort(), pickPort()}
	selfs := make([]string, 3)
	for i, p := range ports {
		selfs[i] = fmt.Sprintf("http://127.0.0.1:%d", p)
	}
	peers := strings.Join(selfs, ",")
	nodes := make([]*node, 3)
	for i := range nodes {
		nodes[i] = &node{
			bin: daemonBin, port: ports[i], self: selfs[i], peers: peers,
			storeDir: filepath.Join(tmp, fmt.Sprintf("store%d", i)),
			logPath:  filepath.Join(tmp, fmt.Sprintf("node%d.log", i)),
		}
		if err := nodes[i].start(); err != nil {
			return err
		}
	}
	defer func() {
		for _, n := range nodes {
			if n.cmd != nil && n.cmd.Process != nil {
				n.cmd.Process.Kill()
				n.cmd.Wait()
			}
		}
	}()
	fmt.Printf("loadsmoke: phase B — 3-node cluster %v, cold traffic %v\n", selfs, prof.coldDur)
	t3, t3raw, err := runLoadgen(loadgenBin, selfs, prof, "cold", filepath.Join(tmp, "t3.json"))
	if err != nil {
		return err
	}
	doc.ClusterCold = t3raw
	ratio := t3.Throughput / t1.Throughput
	doc.Acceptance.ScalingX = ratio
	doc.Acceptance.Criterion = fmt.Sprintf("3-node cold throughput >= %.1fx single node (enforced on hosts with >= 3 CPUs)", prof.scaling)
	doc.Acceptance.Met = ratio >= prof.scaling
	fmt.Printf("loadsmoke: phase B cluster %.1f jobs/s (%d done) — %.2fx the single node\n",
		t3.Throughput, t3.Done, ratio)
	// Cold jobs are pure compute, so the scaling bar only means something
	// when the three local nodes have cores of their own. On smaller
	// hosts the phase still proves sharding + forwarding under load, and
	// a collapse (well below parity) still fails.
	if runtime.NumCPU() >= 3 {
		doc.Acceptance.Enforced = true
		if ratio < prof.scaling {
			return fmt.Errorf("cold scaling %.2fx below the %.1fx bar (T1 %.1f, T3 %.1f jobs/s)",
				ratio, prof.scaling, t1.Throughput, t3.Throughput)
		}
	} else {
		doc.Acceptance.Note = fmt.Sprintf("host has %d CPU(s); 3 co-located nodes share the core(s), so the scaling bar is recorded, not enforced", runtime.NumCPU())
		fmt.Println("loadsmoke:", doc.Acceptance.Note)
		if ratio < 0.5 {
			return fmt.Errorf("cluster throughput collapsed to %.2fx of a single node", ratio)
		}
	}

	// ---- Phase C: mixed traffic with a kill-and-restart -------------
	cl, err := client.New(selfs, client.Options{PollInterval: 20 * time.Millisecond})
	if err != nil {
		return err
	}
	ctx := context.Background()

	// Compute the warm probe in its owner's first life and keep the
	// canonical result bytes for the restart comparison.
	probe, err := cl.Submit(ctx, client.SubmitRequest{Bench: warmBench, Name: "warm-probe", Wait: true})
	if err != nil {
		return fmt.Errorf("warm probe submit: %w", err)
	}
	if probe.State != "done" {
		return fmt.Errorf("warm probe settled %s (%s)", probe.State, probe.Err)
	}
	_, firstBytes, err := cl.Result(ctx, probe)
	if err != nil {
		return fmt.Errorf("warm probe result: %w", err)
	}
	var victim *node
	for _, n := range nodes {
		if n.self == probe.Node {
			victim = n
		}
	}
	if victim == nil {
		return fmt.Errorf("warm probe owner %q is not a cluster member", probe.Node)
	}
	fmt.Printf("loadsmoke: phase C — mixed traffic %v, killing owner %s mid-run\n", prof.mixedDur, victim.self)

	mixedOut := filepath.Join(tmp, "mixed.json")
	mixed := exec.Command(loadgenBin,
		"-servers", peers, "-duration", prof.mixedDur.String(),
		"-concurrency", strconv.Itoa(prof.concurrency),
		"-hot", "0.4", "-cancel", "0.1", "-cold-copies", "4",
		"-label", "mixed+failover", "-out", mixedOut)
	mixed.Stderr = os.Stderr
	if err := mixed.Start(); err != nil {
		return err
	}

	// A third in: SIGKILL the probe's owner. Restart it on the same
	// store directory once the dust settles.
	time.Sleep(prof.mixedDur / 3)
	if err := victim.cmd.Process.Kill(); err != nil {
		return err
	}
	victim.cmd.Wait()
	time.Sleep(500 * time.Millisecond)
	if err := victim.start(); err != nil {
		return fmt.Errorf("restart killed node: %w", err)
	}
	fmt.Printf("loadsmoke: node %s restarted on its store\n", victim.self)

	if err := mixed.Wait(); err != nil {
		return fmt.Errorf("mixed loadgen: %w", err)
	}
	mraw, err := os.ReadFile(mixedOut)
	if err != nil {
		return err
	}
	var m loadgenRun
	if err := json.Unmarshal(mraw, &m); err != nil {
		return err
	}
	doc.ClusterMixed = json.RawMessage(bytes.TrimSpace(mraw))
	if m.Done == 0 {
		return fmt.Errorf("mixed phase completed no jobs")
	}
	fmt.Printf("loadsmoke: mixed %.1f jobs/s (%d done, %d coalesced, %d canceled, %d failures during the kill window)\n",
		m.Throughput, m.Done, m.Coalesced, m.Canceled, m.Failures)

	// Warm-restart contract: the restarted owner serves the probe from
	// its store — identical bytes, store hit, no ATPG recompute.
	hits0, err := scrapeCounter(victim.url(), "scanpower_service_store_hits_total")
	if err != nil {
		return err
	}
	miss0, err := scrapeCounter(victim.url(), "scanpower_atpg_cache_misses_total")
	if err != nil {
		return err
	}
	ownerCl, err := client.New([]string{victim.self}, client.Options{PollInterval: 20 * time.Millisecond})
	if err != nil {
		return err
	}
	again, err := ownerCl.Submit(ctx, client.SubmitRequest{Bench: warmBench, Name: "warm-probe", Wait: true})
	if err != nil {
		return fmt.Errorf("warm resubmit: %w", err)
	}
	if again.State != "done" {
		return fmt.Errorf("warm resubmit settled %s (%s)", again.State, again.Err)
	}
	_, secondBytes, err := ownerCl.Result(ctx, again)
	if err != nil {
		return err
	}
	if !bytes.Equal(firstBytes, secondBytes) {
		return fmt.Errorf("restarted node served different bytes for warm-probe:\nfirst:  %s\nsecond: %s", firstBytes, secondBytes)
	}
	hits1, err := scrapeCounter(victim.url(), "scanpower_service_store_hits_total")
	if err != nil {
		return err
	}
	miss1, err := scrapeCounter(victim.url(), "scanpower_atpg_cache_misses_total")
	if err != nil {
		return err
	}
	if hits1 <= hits0 {
		return fmt.Errorf("warm resubmit did not hit the store (hits %d -> %d)", hits0, hits1)
	}
	if miss1 != miss0 {
		return fmt.Errorf("warm resubmit recomputed: ATPG cache misses %d -> %d", miss0, miss1)
	}
	doc.WarmRestart.Node = victim.self
	doc.WarmRestart.Circuit = "warm-probe"
	doc.WarmRestart.BytesIdentical = true
	doc.WarmRestart.StoreHits = hits1 - hits0
	doc.WarmRestart.ATPGRecomputes = miss1 - miss0
	fmt.Printf("loadsmoke: warm restart OK — bit-identical bytes from disk, store hits +%d, ATPG recomputes +%d\n",
		hits1-hits0, miss1-miss0)

	// ---- Graceful drain of the whole cluster ------------------------
	for _, n := range nodes {
		if err := n.stopGraceful(); err != nil {
			return fmt.Errorf("drain %s: %w", n.self, err)
		}
	}
	fmt.Println("loadsmoke: all nodes drained cleanly on SIGTERM")

	if out != "" {
		raw, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("loadsmoke: wrote", out)
	}
	return nil
}

// runLoadgen drives one loadgen run and reads its document back.
func runLoadgen(bin string, servers []string, prof profile, mode, outPath string) (*loadgenRun, json.RawMessage, error) {
	args := []string{
		"-servers", strings.Join(servers, ","),
		"-duration", prof.coldDur.String(),
		"-concurrency", strconv.Itoa(prof.concurrency),
		"-out", outPath, "-label", mode,
	}
	if mode == "cold" {
		args = append(args, "-hot", "0", "-cancel", "0", "-cold-copies", strconv.Itoa(prof.coldCopies))
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("loadgen %s: %w", mode, err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		return nil, nil, err
	}
	var r loadgenRun
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, nil, err
	}
	return &r, json.RawMessage(bytes.TrimSpace(raw)), nil
}

func (n *node) url() string { return fmt.Sprintf("http://127.0.0.1:%d", n.port) }

// start boots the daemon and waits for /v1/healthz to answer 200.
func (n *node) start() error {
	args := []string{
		"-listen", fmt.Sprintf("127.0.0.1:%d", n.port),
		"-workers", "1", "-queue", "64",
	}
	if n.storeDir != "" {
		args = append(args, "-store-dir", n.storeDir)
	}
	if n.peers != "" {
		args = append(args, "-self", n.self, "-peers", n.peers)
	}
	logf, err := os.OpenFile(n.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(n.bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	err = cmd.Start()
	logf.Close() // the child holds its own copy of the fd
	if err != nil {
		return fmt.Errorf("start node on :%d: %w", n.port, err)
	}
	n.cmd = cmd

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(n.url() + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	return fmt.Errorf("node on :%d never became healthy (log %s)", n.port, n.logPath)
}

// stopGraceful SIGTERMs the daemon and requires a clean exit.
func (n *node) stopGraceful() error {
	if err := n.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- n.cmd.Wait() }()
	select {
	case err := <-done:
		n.cmd = nil
		if err != nil {
			return fmt.Errorf("exited uncleanly: %v", err)
		}
		return nil
	case <-time.After(60 * time.Second):
		n.cmd.Process.Kill()
		return fmt.Errorf("did not drain within 60s of SIGTERM")
	}
}

// pickPort reserves a free TCP port by binding and releasing it, so the
// cluster's -self/-peers URLs are known before any daemon boots.
func pickPort() int {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// scrapeCounter reads one unlabeled counter family off /metrics.
func scrapeCounter(base, family string) (int64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == family {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return 0, fmt.Errorf("parse %s: %w", family, err)
			}
			return int64(v), nil
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("/metrics has no %s", family)
}

// cpuModel reads the CPU model name, best effort.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
