// Command obssmoke is the `make obs-smoke` driver: it builds scanpowerd,
// boots a real 3-node cluster and proves the observability contract end
// to end —
//
//   - a wait-mode job submitted to a non-owning node is forwarded across
//     the ring, and `GET /v1/jobs/{id}/trace` (asked of the owner AND of
//     the forwarding node) returns one merged span tree: a single trace
//     ID, spans from >= 2 nodes, the ingress/forward hop on the entry
//     node and the job/queue/run ladder on the owner, with the job span
//     parented to the forward span;
//   - a client-minted traceparent is adopted verbatim, so the job joins
//     the caller's distributed trace instead of starting its own;
//   - `GET /v1/cluster/metrics` fuses the per-node registries: for the
//     submit-path series (which no metrics fetch perturbs) the fused
//     counters and every submit-histogram bucket equal the bit-exact
//     sums of the three `/v1/node/metrics` snapshots;
//   - finally every node drains cleanly on SIGTERM (exit 0).
//
// It exits non-zero on the first violated expectation.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/client"
)

// probeBench is the s27 netlist every probe job instantiates; the bench
// name varies per submit so each job gets its own fingerprint (and ring
// owner) instead of coalescing.
const probeBench = `INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

// Submit-path series: these only move when jobs run, never when metrics
// or traces are fetched, so their fused values must be the bit-exact sum
// of the per-node snapshots no matter how the reads interleave.
const (
	metricJobsSubmitted = "scanpower_service_jobs_submitted_total"
	metricJobsDone      = `scanpower_service_jobs_total{state="done"}`
	metricForwarded     = "scanpower_service_forwarded_total"
	metricSubmitSeconds = `scanpower_service_request_seconds{endpoint="submit"}`
)

// node is one scanpowerd process in the local cluster.
type node struct {
	bin      string
	port     int
	name     string
	self     string
	peers    string
	storeDir string
	logPath  string
	cmd      *exec.Cmd
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "obssmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "scanpowerd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/scanpowerd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build scanpowerd: %w", err)
	}

	// ---- Boot a named 3-node cluster --------------------------------
	ports := []int{pickPort(), pickPort(), pickPort()}
	selfs := make([]string, 3)
	for i, p := range ports {
		selfs[i] = fmt.Sprintf("http://127.0.0.1:%d", p)
	}
	peers := strings.Join(selfs, ",")
	names := []string{"obs-a", "obs-b", "obs-c"}
	nodes := make([]*node, 3)
	for i := range nodes {
		nodes[i] = &node{
			bin: bin, port: ports[i], name: names[i], self: selfs[i], peers: peers,
			storeDir: filepath.Join(tmp, fmt.Sprintf("store%d", i)),
			logPath:  filepath.Join(tmp, fmt.Sprintf("%s.log", names[i])),
		}
		if err := nodes[i].start(); err != nil {
			return err
		}
	}
	defer func() {
		for _, n := range nodes {
			if n.cmd != nil && n.cmd.Process != nil {
				n.cmd.Process.Kill()
				n.cmd.Wait()
			}
		}
	}()
	fmt.Printf("obssmoke: 3-node cluster up: %v\n", selfs)

	ctx := context.Background()
	entry := nodes[0]
	byURL := map[string]*node{}
	for _, n := range nodes {
		byURL[n.self] = n
	}

	// The client talks only to the entry node; forwarding is the
	// cluster's job.
	cl, err := client.New([]string{entry.self}, client.Options{PollInterval: 20 * time.Millisecond})
	if err != nil {
		return err
	}

	// Every node reports its identity on healthz.
	for _, n := range nodes {
		h, err := cl.Health(ctx, n.self)
		if err != nil {
			return fmt.Errorf("healthz %s: %w", n.self, err)
		}
		if h.Node != n.name {
			return fmt.Errorf("healthz of %s reports node %q, want %q", n.self, h.Node, n.name)
		}
		if h.GoVersion == "" || h.Version == "" {
			return fmt.Errorf("healthz of %s missing build identity: %+v", n.self, h)
		}
	}

	// ---- A forwarded job's trace spans >= 2 nodes -------------------
	// Submit distinctly named probes at the entry node until one is
	// owned elsewhere; the ring splits the space ~evenly, so this takes
	// a handful of tries at most.
	var fwd *client.Job
	submitted := 0
	for i := 0; i < 32 && fwd == nil; i++ {
		j, err := cl.Submit(ctx, client.SubmitRequest{
			Bench: probeBench, Name: fmt.Sprintf("obs-probe-%d", i), Wait: true,
		})
		if err != nil {
			return fmt.Errorf("submit probe %d: %w", i, err)
		}
		submitted++
		if j.State != "done" {
			return fmt.Errorf("probe %d settled %s (%s)", i, j.State, j.Err)
		}
		if j.Node != entry.self {
			fwd = j
		}
	}
	if fwd == nil {
		return fmt.Errorf("no probe forwarded off the entry node in %d submits", submitted)
	}
	owner := byURL[fwd.Node]
	if owner == nil {
		return fmt.Errorf("forwarded job's owner %q is not a cluster member", fwd.Node)
	}
	fmt.Printf("obssmoke: job %s entered at %s, ran on %s (trace %s)\n",
		fwd.ID, entry.name, owner.name, fwd.TraceID)

	if len(fwd.TraceID) != 32 {
		return fmt.Errorf("job trace ID %q is not 32 hex chars", fwd.TraceID)
	}
	// The owner merges the cross-node tree...
	tr, err := cl.Trace(ctx, fwd)
	if err != nil {
		return fmt.Errorf("trace from owner: %w", err)
	}
	if err := checkForwardedTrace(tr, fwd, entry.name, owner.name); err != nil {
		return fmt.Errorf("trace from owner %s: %w", owner.name, err)
	}
	// ...and so does the forwarding node, resolving the job through its
	// trace ring even though the job lives on the owner.
	trEntry, err := cl.Trace(ctx, &client.Job{ID: fwd.ID, Node: entry.self})
	if err != nil {
		return fmt.Errorf("trace from entry node: %w", err)
	}
	if err := checkForwardedTrace(trEntry, fwd, entry.name, owner.name); err != nil {
		return fmt.Errorf("trace from entry node %s: %w", entry.name, err)
	}
	fmt.Printf("obssmoke: merged trace OK from both ends — %d spans across %v\n",
		len(tr.Spans), tr.Nodes)

	// ---- A client-minted traceparent is adopted ---------------------
	clientTrace := strings.Repeat("ab", 16)
	j, err := cl.Submit(ctx, client.SubmitRequest{
		Bench: probeBench, Name: "obs-traceparent", Wait: true,
		TraceParent: "00-" + clientTrace + "-1111222233334444-01",
	})
	if err != nil {
		return fmt.Errorf("traceparent submit: %w", err)
	}
	submitted++
	if j.State != "done" {
		return fmt.Errorf("traceparent probe settled %s (%s)", j.State, j.Err)
	}
	if j.TraceID != clientTrace {
		return fmt.Errorf("client traceparent not adopted: job trace %q, want %q", j.TraceID, clientTrace)
	}
	fmt.Println("obssmoke: client traceparent adopted verbatim")

	// ---- Fused cluster metrics are bit-exact sums -------------------
	// Per-node snapshots first, then the fusion; only submit-path series
	// are compared, and no submits run between the reads.
	snaps := make([]*client.MetricsSnapshot, len(nodes))
	for i, n := range nodes {
		if snaps[i], err = cl.NodeMetricsSnapshot(ctx, n.self); err != nil {
			return fmt.Errorf("node metrics %s: %w", n.name, err)
		}
	}
	cm, err := cl.ClusterMetrics(ctx)
	if err != nil {
		return fmt.Errorf("cluster metrics: %w", err)
	}
	if cm.Schema != "scanpower/cluster-metrics/v1" {
		return fmt.Errorf("cluster metrics schema %q", cm.Schema)
	}
	if len(cm.Nodes) != 3 {
		return fmt.Errorf("cluster metrics has %d node rows, want 3", len(cm.Nodes))
	}
	for _, row := range cm.Nodes {
		if row.Error != "" {
			return fmt.Errorf("node row %s carries error %q", row.Node, row.Error)
		}
	}

	for _, series := range []string{metricJobsSubmitted, metricJobsDone, metricForwarded} {
		var sum int64
		for _, s := range snaps {
			sum += s.Counters[series]
		}
		if got := cm.Fused.Counters[series]; got != sum {
			return fmt.Errorf("fused %s = %d, per-node sum = %d", series, got, sum)
		}
	}
	var wantSubmitted int64
	for _, s := range snaps {
		wantSubmitted += s.Counters[metricJobsSubmitted]
	}
	if wantSubmitted != int64(submitted) {
		return fmt.Errorf("cluster counted %d submits, driver made %d", wantSubmitted, submitted)
	}
	if cm.Fused.Counters[metricForwarded] == 0 {
		return fmt.Errorf("no forwards counted despite a cross-node job")
	}
	if cm.Summary.Jobs["done"] != int64(submitted) {
		return fmt.Errorf("fused summary jobs done = %d, want %d", cm.Summary.Jobs["done"], submitted)
	}

	// The submit histogram fuses bucket-for-bucket.
	fusedHist, ok := cm.Fused.Histograms[metricSubmitSeconds]
	if !ok {
		return fmt.Errorf("fused snapshot has no %s histogram", metricSubmitSeconds)
	}
	var bucketSum []int64
	var countSum int64
	for i, s := range snaps {
		h, ok := s.Histograms[metricSubmitSeconds]
		if !ok {
			continue
		}
		if bucketSum == nil {
			bucketSum = make([]int64, len(h.Counts))
		}
		if len(h.Counts) != len(bucketSum) {
			return fmt.Errorf("node %s submit histogram has %d buckets, others %d",
				nodes[i].name, len(h.Counts), len(bucketSum))
		}
		for b, c := range h.Counts {
			bucketSum[b] += c
		}
		countSum += h.Count
	}
	if fusedHist.Count != countSum {
		return fmt.Errorf("fused submit histogram count %d, per-node sum %d", fusedHist.Count, countSum)
	}
	for b := range bucketSum {
		if fusedHist.Counts[b] != bucketSum[b] {
			return fmt.Errorf("fused submit bucket %d = %d, per-node sum = %d",
				b, fusedHist.Counts[b], bucketSum[b])
		}
	}
	fmt.Printf("obssmoke: fused metrics OK — %d submits, %d forwards, submit histogram bit-exact over %d buckets\n",
		cm.Fused.Counters[metricJobsSubmitted], cm.Fused.Counters[metricForwarded], len(bucketSum))

	// ---- Graceful drain of the whole cluster ------------------------
	for _, n := range nodes {
		if err := n.stopGraceful(); err != nil {
			return fmt.Errorf("drain %s: %w", n.name, err)
		}
	}
	fmt.Println("obssmoke: all nodes drained cleanly on SIGTERM")
	return nil
}

// checkForwardedTrace asserts the merged tree of a forwarded job: one
// trace ID, spans from both the entry and the owning node, the full
// ingress/forward + job/queue/run ladder, and the cross-node parent link.
func checkForwardedTrace(tr *client.Trace, j *client.Job, entryName, ownerName string) error {
	if tr.Schema != "scanpower/trace/v1" {
		return fmt.Errorf("schema %q", tr.Schema)
	}
	if tr.TraceID != j.TraceID {
		return fmt.Errorf("trace ID %q, job says %q", tr.TraceID, j.TraceID)
	}
	if len(tr.Nodes) < 2 {
		return fmt.Errorf("spans from %v, want >= 2 nodes", tr.Nodes)
	}
	nodesSeen := map[string]bool{}
	spansByName := map[string]client.Span{}
	for _, sp := range tr.Spans {
		nodesSeen[sp.Node] = true
		spansByName[sp.Name] = sp
		if sp.DurNS < 0 {
			return fmt.Errorf("span %s has negative duration %d", sp.Name, sp.DurNS)
		}
	}
	if !nodesSeen[entryName] || !nodesSeen[ownerName] {
		keys := make([]string, 0, len(nodesSeen))
		for k := range nodesSeen {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return fmt.Errorf("spans tagged %v, want both %s and %s", keys, entryName, ownerName)
	}
	for _, name := range []string{"ingress", "forward", "job", "queue", "run"} {
		if _, ok := spansByName[name]; !ok {
			return fmt.Errorf("no %q span in %d-span tree", name, len(tr.Spans))
		}
	}
	if spansByName["ingress"].Node != entryName || spansByName["forward"].Node != entryName {
		return fmt.Errorf("ingress/forward spans not on the entry node")
	}
	if spansByName["job"].Node != ownerName {
		return fmt.Errorf("job span on %q, want owner %s", spansByName["job"].Node, ownerName)
	}
	// The owner's job span parents to the entry node's forward span: the
	// hop is one unbroken tree, not two trees sharing an ID.
	if spansByName["job"].Parent != spansByName["forward"].SpanID {
		return fmt.Errorf("job span parents to %q, forward span is %q",
			spansByName["job"].Parent, spansByName["forward"].SpanID)
	}
	return nil
}

func (n *node) url() string { return fmt.Sprintf("http://127.0.0.1:%d", n.port) }

// start boots the daemon and waits for /v1/healthz to answer 200.
func (n *node) start() error {
	args := []string{
		"-listen", fmt.Sprintf("127.0.0.1:%d", n.port),
		"-workers", "1", "-queue", "64",
		"-node", n.name,
		"-store-dir", n.storeDir,
		"-self", n.self, "-peers", n.peers,
	}
	logf, err := os.OpenFile(n.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(n.bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	err = cmd.Start()
	logf.Close() // the child holds its own copy of the fd
	if err != nil {
		return fmt.Errorf("start %s on :%d: %w", n.name, n.port, err)
	}
	n.cmd = cmd

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(n.url() + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	return fmt.Errorf("%s on :%d never became healthy (log %s)", n.name, n.port, n.logPath)
}

// stopGraceful SIGTERMs the daemon and requires a clean exit.
func (n *node) stopGraceful() error {
	if err := n.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- n.cmd.Wait() }()
	select {
	case err := <-done:
		n.cmd = nil
		if err != nil {
			return fmt.Errorf("exited uncleanly: %v", err)
		}
		return nil
	case <-time.After(60 * time.Second):
		n.cmd.Process.Kill()
		return fmt.Errorf("did not drain within 60s of SIGTERM")
	}
}

// pickPort reserves a free TCP port by binding and releasing it, so the
// cluster's -self/-peers URLs are known before any daemon boots.
func pickPort() int {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}
