// Command servesmoke is the `make serve-smoke` driver: it builds and
// boots a real scanpowerd on a random port and walks the service contract
// end to end —
//
//   - healthz and the benchmark listing answer;
//   - an inline-c17 wait-mode job returns a scanpower/comparison/v1
//     result byte-identical to an in-process Engine run of the same
//     circuit and config;
//   - with -workers 1 -queue 1, a slow running job (s5378) plus one
//     queued job make a third submit fail with 429 and Retry-After;
//   - DELETE cancels the queued job;
//   - /metrics carries the service and packed-kernel families;
//   - SIGTERM while the slow job is still running drains cleanly: exit
//     code 0, a parseable manifest, and a balanced span trace.
//
// It exits non-zero on the first violated expectation.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/telemetry"
)

// c17 is the real ISCAS85 c17 netlist — tiny, combinational and already
// NAND-mapped, so the inline-bench path needs no Prepare step.
const c17 = `# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("serve-smoke: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "scanpowerd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/scanpowerd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build scanpowerd: %w", err)
	}

	tracePath := filepath.Join(tmp, "trace.jsonl")
	manifestPath := filepath.Join(tmp, "manifest.json")
	daemon := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-workers", "1",
		"-queue", "1",
		"-trace", tracePath,
		"-manifest", manifestPath,
	)
	stderr, err := daemon.StderrPipe()
	if err != nil {
		return err
	}
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start scanpowerd: %w", err)
	}
	killed := false
	defer func() {
		if !killed {
			daemon.Process.Kill()
			daemon.Wait()
		}
	}()

	// The daemon announces its bound port on stderr:
	//   scanpowerd: listening on http://127.0.0.1:PORT
	base, lines, err := awaitListening(stderr)
	if err != nil {
		return err
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained
	fmt.Println("serve-smoke: daemon at", base)

	if err := checkHealthz(base); err != nil {
		return err
	}
	if err := checkBenchmarks(base); err != nil {
		return err
	}
	if err := checkC17BitIdentical(base); err != nil {
		return err
	}
	slowID, err := checkBackpressure(base)
	if err != nil {
		return err
	}
	if err := checkMetrics(base); err != nil {
		return err
	}

	// SIGTERM while the slow job is still running: the drain must let it
	// finish and exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	killed = true
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("scanpowerd exited uncleanly after SIGTERM: %v (stderr: %s)", err, lines())
		}
	case <-time.After(60 * time.Second):
		daemon.Process.Kill()
		return fmt.Errorf("scanpowerd did not drain within 60s of SIGTERM")
	}
	fmt.Println("serve-smoke: clean SIGTERM drain (slow job", slowID, "in flight)")

	if err := checkTraceBalanced(tracePath); err != nil {
		return err
	}
	return checkManifest(manifestPath)
}

// awaitListening scans the daemon's stderr for the listening line and
// returns the base URL plus an accessor for everything read so far.
func awaitListening(stderr io.Reader) (string, func() string, error) {
	var buf bytes.Buffer
	sc := bufio.NewScanner(io.TeeReader(stderr, &buf))
	deadline := time.After(30 * time.Second)
	found := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "scanpowerd: listening on "); ok {
				found <- strings.TrimSpace(rest)
				return
			}
		}
		close(found)
	}()
	select {
	case url, ok := <-found:
		if !ok {
			return "", nil, fmt.Errorf("scanpowerd exited before listening (stderr: %s)", buf.String())
		}
		return url, func() string { return buf.String() }, nil
	case <-deadline:
		return "", nil, fmt.Errorf("scanpowerd never announced its port (stderr: %s)", buf.String())
	}
}

func getJSON(url string, out any) (int, http.Header, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, resp.Header, fmt.Errorf("decode %s: %w", url, err)
		}
	}
	return resp.StatusCode, resp.Header, nil
}

func postJob(base string, body map[string]any) (int, http.Header, map[string]any, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, resp.Header, nil, err
	}
	return resp.StatusCode, resp.Header, out, nil
}

func checkHealthz(base string) error {
	var h map[string]any
	code, _, err := getJSON(base+"/v1/healthz", &h)
	if err != nil {
		return err
	}
	if code != http.StatusOK || h["status"] != "ok" {
		return fmt.Errorf("healthz: status %d body %v", code, h)
	}
	return nil
}

func checkBenchmarks(base string) error {
	var b struct {
		Benchmarks []string `json:"benchmarks"`
	}
	code, _, err := getJSON(base+"/v1/benchmarks", &b)
	if err != nil {
		return err
	}
	if code != http.StatusOK || len(b.Benchmarks) != 12 {
		return fmt.Errorf("benchmarks: status %d, %d names", code, len(b.Benchmarks))
	}
	return nil
}

// checkC17BitIdentical runs c17 through the service and through an
// in-process Engine under the same config, and requires byte-identical
// scanpower/comparison/v1 documents.
func checkC17BitIdentical(base string) error {
	code, _, job, err := postJob(base, map[string]any{
		"bench": c17, "name": "c17", "wait": true,
	})
	if err != nil {
		return err
	}
	if code != http.StatusOK || job["state"] != "done" {
		return fmt.Errorf("c17 wait job: status %d body %v", code, job)
	}
	resultURL, _ := job["result_url"].(string)
	resp, err := http.Get(base + resultURL)
	if err != nil {
		return err
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("c17 result: status %d: %s", resp.StatusCode, got)
	}

	c, err := scanpower.ParseBench(c17, "c17")
	if err != nil {
		return err
	}
	cfg := scanpower.DefaultConfig()
	eng := scanpower.NewEngine(cfg)
	cmp, err := eng.CompareWith(context.Background(), c, cfg)
	if err != nil {
		return fmt.Errorf("in-process c17 run: %w", err)
	}
	want, err := json.Marshal(cmp)
	if err != nil {
		return err
	}
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		return fmt.Errorf("c17 result differs from in-process Engine run:\nservice: %s\nengine:  %s", got, want)
	}
	fmt.Println("serve-smoke: c17 result bit-identical to in-process Engine run")
	return nil
}

// checkBackpressure parks the single worker on s5378, fills the one
// queue slot, and requires 429 + Retry-After on the next submit. Returns
// the slow job's ID (still running when we return).
func checkBackpressure(base string) (string, error) {
	code, _, slow, err := postJob(base, map[string]any{"circuit": "s5378"})
	if err != nil {
		return "", err
	}
	if code != http.StatusAccepted {
		return "", fmt.Errorf("slow submit: status %d body %v", code, slow)
	}
	slowID, _ := slow["id"].(string)

	deadline := time.Now().Add(30 * time.Second)
	for {
		var j map[string]any
		if _, _, err := getJSON(base+"/v1/jobs/"+slowID, &j); err != nil {
			return "", err
		}
		if j["state"] == "running" {
			break
		}
		if j["state"] != "queued" {
			return "", fmt.Errorf("slow job in unexpected state %v", j["state"])
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("slow job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}

	code, _, queued, err := postJob(base, map[string]any{"circuit": "s1423"})
	if err != nil {
		return "", err
	}
	if code != http.StatusAccepted {
		return "", fmt.Errorf("queued submit: status %d body %v", code, queued)
	}

	code, hdr, rejected, err := postJob(base, map[string]any{"circuit": "s641"})
	if err != nil {
		return "", err
	}
	if code != http.StatusTooManyRequests {
		return "", fmt.Errorf("overflow submit: status %d, want 429 (body %v)", code, rejected)
	}
	if hdr.Get("Retry-After") == "" {
		return "", fmt.Errorf("429 without Retry-After header")
	}
	fmt.Println("serve-smoke: full queue rejected with 429 + Retry-After")

	// Free the queue slot again: DELETE the queued job.
	queuedID, _ := queued["id"].(string)
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+queuedID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out["state"] != "canceled" {
		return "", fmt.Errorf("cancel queued job: status %d state %v", resp.StatusCode, out["state"])
	}
	return slowID, nil
}

func checkMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		"scanpower_service_jobs_total",
		"scanpower_service_queue_depth",
		"scanpower_service_request_seconds",
		"scanpower_power_packed_lanes_total",
	} {
		if !strings.Contains(string(body), family) {
			return fmt.Errorf("/metrics missing %s", family)
		}
	}
	return nil
}

// checkTraceBalanced requires every span started in the trace to have
// ended — the drain must not truncate the span tree.
func checkTraceBalanced(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var starts, ends int
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev telemetry.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("trace line unparseable: %v: %s", err, sc.Text())
		}
		switch ev.Ev {
		case "start":
			starts++
		case "end":
			ends++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if starts == 0 || starts != ends {
		return fmt.Errorf("trace spans unbalanced: %d starts, %d ends", starts, ends)
	}
	fmt.Printf("serve-smoke: trace balanced (%d spans)\n", starts)
	return nil
}

func checkManifest(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := telemetry.ReadManifest(f)
	if err != nil {
		return err
	}
	if m.Label != "scanpowerd" || len(m.Circuits) == 0 {
		return fmt.Errorf("manifest looks wrong: label %q, %d circuits", m.Label, len(m.Circuits))
	}
	return nil
}
