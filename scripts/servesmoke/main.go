// Command servesmoke is the `make serve-smoke` driver: it builds and
// boots a real scanpowerd on a random port and walks the service contract
// end to end through the typed repro/client package —
//
//   - healthz answers and the benchmark listing carries the structured
//     entries plus the legacy names array;
//   - an inline-c17 wait-mode job returns a scanpower/comparison/v1
//     result byte-identical to an in-process Engine run of the same
//     circuit and config;
//   - a raw legacy flat {"circuit":...} submit still works and its
//     result document carries no activity key — the pre-union bytes;
//   - a Verilog source with an explicit activity profile, and a second
//     one with a VCD-derived profile, return the activity-weighted
//     columns;
//   - with -workers 1 -queue 1, a slow running job (s5378) plus one
//     queued job make a third submit fail typed — client.ErrQueueFull
//     with the parsed Retry-After;
//   - Cancel settles the queued job as canceled;
//   - /metrics carries the service and packed-kernel families;
//   - SIGTERM while the slow job is still running drains cleanly: exit
//     code 0, a parseable manifest, and a balanced span trace;
//   - a second daemon booted on the same -store-dir re-serves the
//     annotated Verilog job byte-identically from the store, without
//     recomputing.
//
// It exits non-zero on the first violated expectation.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/api"
	"repro/client"
	"repro/internal/telemetry"
)

// c17 is the real ISCAS85 c17 netlist — tiny, combinational and already
// NAND-mapped, so the inline-bench path needs no Prepare step.
const c17 = `# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

// s27Verilog is the s27 test circuit as structural Verilog — unlike c17
// it has scan cells, so it exercises the activity-weighted columns.
const s27Verilog = `module s27v (G0, G1, G2, G3, G17);
  input G0, G1, G2, G3;
  output G17;
  wire G5, G6, G7, G8, G9, G10, G11, G12, G13, G14, G15, G16;
  dff d1 (G5, G10);
  dff d2 (G6, G11);
  dff d3 (G7, G13);
  not n1 (G14, G0);
  not n2 (G17, G11);
  and a1 (G8, G14, G6);
  or o1 (G15, G12, G8);
  or o2 (G16, G3, G8);
  nand na1 (G9, G16, G15);
  nor no1 (G10, G14, G11);
  nor no2 (G11, G5, G9);
  nor no3 (G12, G1, G7);
  nor no4 (G13, G2, G12);
endmodule
`

// s27VCD toggles G0 on every cycle and G2 once; G1 never changes.
const s27VCD = "$timescale 1ns $end\n" +
	"$var wire 1 ! G0 $end\n" +
	"$var wire 1 \" G1 $end\n" +
	"$var wire 1 # G2 $end\n" +
	"$enddefinitions $end\n" +
	"#0\n0!\n0\"\n0#\n" +
	"#1\n1!\n" +
	"#2\n0!\n1#\n" +
	"#3\n1!\n" +
	"#4\n0!\n"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("serve-smoke: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "scanpowerd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/scanpowerd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build scanpowerd: %w", err)
	}

	tracePath := filepath.Join(tmp, "trace.jsonl")
	manifestPath := filepath.Join(tmp, "manifest.json")
	storeDir := filepath.Join(tmp, "store")
	daemon := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-workers", "1",
		"-queue", "1",
		"-store-dir", storeDir,
		"-trace", tracePath,
		"-manifest", manifestPath,
	)
	stderr, err := daemon.StderrPipe()
	if err != nil {
		return err
	}
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start scanpowerd: %w", err)
	}
	killed := false
	defer func() {
		if !killed {
			daemon.Process.Kill()
			daemon.Wait()
		}
	}()

	// The daemon announces its bound port on stderr as a structured
	// log line:
	//   time=... level=INFO msg=listening addr=http://127.0.0.1:PORT
	base, lines, err := awaitListening(stderr)
	if err != nil {
		return err
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained
	fmt.Println("serve-smoke: daemon at", base)

	cl, err := client.New([]string{base}, client.Options{PollInterval: 10 * time.Millisecond})
	if err != nil {
		return err
	}
	ctx := context.Background()

	if h, err := cl.Health(ctx, base); err != nil || h.Status != "ok" {
		return fmt.Errorf("healthz: %+v (%v)", h, err)
	}
	bms, err := cl.Benchmarks(ctx)
	if err != nil || len(bms) != 12 {
		return fmt.Errorf("benchmarks: %d entries (%v)", len(bms), err)
	}
	for _, b := range bms {
		if b.Name == "" || b.Gates <= 0 || b.ScanCells <= 0 || b.Chains != 1 {
			return fmt.Errorf("benchmark entry lacks structure stats: %+v", b)
		}
	}
	if err := checkC17BitIdentical(ctx, cl); err != nil {
		return err
	}
	if err := checkLegacyFlatSubmit(base); err != nil {
		return err
	}
	annotated, err := checkActivityJobs(ctx, cl)
	if err != nil {
		return err
	}
	slow, err := checkBackpressure(ctx, cl)
	if err != nil {
		return err
	}
	if err := checkMetrics(base); err != nil {
		return err
	}

	// SIGTERM while the slow job is still running: the drain must let it
	// finish and exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	killed = true
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("scanpowerd exited uncleanly after SIGTERM: %v (stderr: %s)", err, lines())
		}
	case <-time.After(60 * time.Second):
		daemon.Process.Kill()
		return fmt.Errorf("scanpowerd did not drain within 60s of SIGTERM")
	}
	fmt.Println("serve-smoke: clean SIGTERM drain (slow job", slow.ID, "in flight)")

	if err := checkTraceBalanced(tracePath); err != nil {
		return err
	}
	if err := checkManifest(manifestPath); err != nil {
		return err
	}
	return checkWarmRestart(bin, storeDir, annotated)
}

// checkWarmRestart boots a second daemon on the first one's store
// directory and requires the annotated Verilog job to come back as a
// store hit with byte-identical result bytes — no recompute.
func checkWarmRestart(bin, storeDir string, annotated []byte) error {
	daemon := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-workers", "1",
		"-store-dir", storeDir,
	)
	stderr, err := daemon.StderrPipe()
	if err != nil {
		return err
	}
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("restart scanpowerd: %w", err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()
	base, _, err := awaitListening(stderr)
	if err != nil {
		return err
	}
	go io.Copy(io.Discard, stderr)

	cl, err := client.New([]string{base}, client.Options{PollInterval: 10 * time.Millisecond})
	if err != nil {
		return err
	}
	ctx := context.Background()
	raw, err := submitAnnotated(ctx, cl)
	if err != nil {
		return fmt.Errorf("annotated job after restart: %w", err)
	}
	if !bytes.Equal(bytes.TrimSpace(raw), bytes.TrimSpace(annotated)) {
		return fmt.Errorf("restarted daemon served different bytes for the annotated job:\nbefore: %s\nafter:  %s", annotated, raw)
	}
	cm, err := cl.ClusterMetrics(ctx)
	if err != nil {
		return err
	}
	if cm.Summary.StoreHits < 1 {
		return fmt.Errorf("annotated job after restart was recomputed (store hits %d)", cm.Summary.StoreHits)
	}
	fmt.Println("serve-smoke: warm restart re-served the annotated job from the store, bit-identical")
	return nil
}

// awaitListening scans the daemon's stderr for the listening line and
// returns the base URL plus an accessor for everything read so far.
func awaitListening(stderr io.Reader) (string, func() string, error) {
	var buf bytes.Buffer
	sc := bufio.NewScanner(io.TeeReader(stderr, &buf))
	deadline := time.After(30 * time.Second)
	found := make(chan string, 1)
	go func() {
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			var msg, addr string
			for _, f := range fields {
				if v, ok := strings.CutPrefix(f, "msg="); ok {
					msg = v
				}
				if v, ok := strings.CutPrefix(f, "addr="); ok {
					addr = v
				}
			}
			if msg == "listening" && addr != "" {
				found <- addr
				return
			}
		}
		close(found)
	}()
	select {
	case url, ok := <-found:
		if !ok {
			return "", nil, fmt.Errorf("scanpowerd exited before listening (stderr: %s)", buf.String())
		}
		return url, func() string { return buf.String() }, nil
	case <-deadline:
		return "", nil, fmt.Errorf("scanpowerd never announced its port (stderr: %s)", buf.String())
	}
}

// checkC17BitIdentical runs c17 through the service and through an
// in-process Engine under the same config, and requires byte-identical
// scanpower/comparison/v1 documents.
func checkC17BitIdentical(ctx context.Context, cl *client.Client) error {
	job, err := cl.Submit(ctx, client.SubmitRequest{Bench: c17, Name: "c17", Wait: true})
	if err != nil {
		return fmt.Errorf("c17 wait job: %w", err)
	}
	if job.State != "done" {
		return fmt.Errorf("c17 wait job settled %s (%s)", job.State, job.Err)
	}
	_, got, err := cl.Result(ctx, job)
	if err != nil {
		return fmt.Errorf("c17 result: %w", err)
	}

	c, err := scanpower.ParseBench(c17, "c17")
	if err != nil {
		return err
	}
	cfg := scanpower.DefaultConfig()
	eng := scanpower.NewEngine(cfg)
	cmp, err := eng.CompareWith(ctx, c, cfg)
	if err != nil {
		return fmt.Errorf("in-process c17 run: %w", err)
	}
	want, err := json.Marshal(cmp)
	if err != nil {
		return err
	}
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		return fmt.Errorf("c17 result differs from in-process Engine run:\nservice: %s\nengine:  %s", got, want)
	}
	fmt.Println("serve-smoke: c17 result bit-identical to in-process Engine run")
	return nil
}

// checkLegacyFlatSubmit posts a raw pre-union flat body and requires the
// old behavior byte for byte: the submit is accepted and the result
// document is a plain scanpower/comparison/v1 with no activity key.
func checkLegacyFlatSubmit(base string) error {
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"circuit":"s344","wait":true}`))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("legacy flat submit: %d %s", resp.StatusCode, body)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &job); err != nil || job.State != "done" {
		return fmt.Errorf("legacy flat submit settled %q (%v): %s", job.State, err, body)
	}
	resp, err = http.Get(base + "/v1/jobs/" + job.ID + "/result")
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("legacy flat result: %d %s", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte(`"schema":"`+scanpower.ComparisonSchemaV1+`"`)) {
		return fmt.Errorf("legacy flat result lost its schema: %s", raw)
	}
	if bytes.Contains(raw, []byte(`"activity"`)) {
		return fmt.Errorf("legacy flat result grew an activity key: %s", raw)
	}
	fmt.Println("serve-smoke: legacy flat submit unchanged (no activity key)")
	return nil
}

// submitAnnotated runs the s27 Verilog source with an explicit activity
// profile through the union API and returns the raw result bytes.
func submitAnnotated(ctx context.Context, cl *client.Client) ([]byte, error) {
	job, err := cl.Submit(ctx, client.SubmitRequest{
		Source:   &api.Source{Verilog: s27Verilog},
		Activity: &api.Activity{Inputs: map[string]float64{"G0": 0.9}},
		Wait:     true,
	})
	if err != nil {
		return nil, err
	}
	if job.State != "done" {
		return nil, fmt.Errorf("annotated job settled %s (%s)", job.State, job.Err)
	}
	_, raw, err := cl.Result(ctx, job)
	return raw, err
}

// checkActivityJobs runs the two annotated submits — explicit profile
// and VCD-derived — and checks the activity-weighted columns appear.
// Returns the profile job's raw result bytes for the restart check.
func checkActivityJobs(ctx context.Context, cl *client.Client) ([]byte, error) {
	raw, err := submitAnnotated(ctx, cl)
	if err != nil {
		return nil, fmt.Errorf("annotated verilog job: %w", err)
	}
	var doc struct {
		Activity *struct {
			Source                   string  `json:"source"`
			WTMTotal                 int     `json:"wtm_total"`
			TraditionalWeightedPerHz float64 `json:"traditional_weighted_per_hz"`
		} `json:"activity"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	if doc.Activity == nil || doc.Activity.Source != "profile" ||
		doc.Activity.TraditionalWeightedPerHz <= 0 || doc.Activity.WTMTotal <= 0 {
		return nil, fmt.Errorf("annotated result lacks activity columns: %s", raw)
	}

	job, err := cl.Submit(ctx, client.SubmitRequest{
		Source:   &api.Source{Verilog: s27Verilog},
		Activity: &api.Activity{VCD: s27VCD},
		Wait:     true,
	})
	if err != nil {
		return nil, fmt.Errorf("vcd job: %w", err)
	}
	if job.State != "done" {
		return nil, fmt.Errorf("vcd job settled %s (%s)", job.State, job.Err)
	}
	cmp, _, err := cl.Result(ctx, job)
	if err != nil {
		return nil, err
	}
	if cmp.Activity == nil || cmp.Activity.Source != "vcd" || cmp.Activity.Inputs["G0"] != 1.0 {
		return nil, fmt.Errorf("vcd result activity block wrong: %+v", cmp.Activity)
	}
	fmt.Println("serve-smoke: activity-annotated verilog jobs carry weighted columns (profile + vcd)")
	return raw, nil
}

// checkBackpressure parks the single worker on s5378, fills the one
// queue slot, and requires the next submit to fail typed with
// ErrQueueFull + Retry-After. Returns the slow job (still running).
func checkBackpressure(ctx context.Context, cl *client.Client) (*client.Job, error) {
	slow, err := cl.Submit(ctx, client.SubmitRequest{Circuit: "s5378"})
	if err != nil {
		return nil, fmt.Errorf("slow submit: %w", err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		j, err := cl.Status(ctx, slow)
		if err != nil {
			return nil, err
		}
		if j.State == "running" {
			break
		}
		if j.State != "queued" {
			return nil, fmt.Errorf("slow job in unexpected state %s", j.State)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("slow job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}

	queued, err := cl.Submit(ctx, client.SubmitRequest{Circuit: "s1423"})
	if err != nil {
		return nil, fmt.Errorf("queued submit: %w", err)
	}

	_, err = cl.Submit(ctx, client.SubmitRequest{Circuit: "s641"})
	if !errors.Is(err, client.ErrQueueFull) {
		return nil, fmt.Errorf("overflow submit error = %v, want ErrQueueFull", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfter <= 0 {
		return nil, fmt.Errorf("queue_full without Retry-After: %+v", apiErr)
	}
	fmt.Println("serve-smoke: full queue rejected typed with ErrQueueFull + Retry-After")

	// Free the queue slot again: cancel the queued job.
	canceled, err := cl.Cancel(ctx, queued)
	if err != nil {
		return nil, fmt.Errorf("cancel queued job: %w", err)
	}
	if canceled.State != "canceled" {
		return nil, fmt.Errorf("cancel queued job: state %s", canceled.State)
	}
	return slow, nil
}

func checkMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		"scanpower_service_jobs_total",
		"scanpower_service_queue_depth",
		"scanpower_service_request_seconds",
		"scanpower_power_packed_lanes_total",
	} {
		if !strings.Contains(string(body), family) {
			return fmt.Errorf("/metrics missing %s", family)
		}
	}
	return nil
}

// checkTraceBalanced requires every span started in the trace to have
// ended — the drain must not truncate the span tree.
func checkTraceBalanced(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var starts, ends int
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev telemetry.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("trace line unparseable: %v: %s", err, sc.Text())
		}
		switch ev.Ev {
		case "start":
			starts++
		case "end":
			ends++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if starts == 0 || starts != ends {
		return fmt.Errorf("trace spans unbalanced: %d starts, %d ends", starts, ends)
	}
	fmt.Printf("serve-smoke: trace balanced (%d spans)\n", starts)
	return nil
}

func checkManifest(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := telemetry.ReadManifest(f)
	if err != nil {
		return err
	}
	if m.Label != "scanpowerd" || len(m.Circuits) == 0 {
		return fmt.Errorf("manifest looks wrong: label %q, %d circuits", m.Label, len(m.Circuits))
	}
	return nil
}
