// Command servesmoke is the `make serve-smoke` driver: it builds and
// boots a real scanpowerd on a random port and walks the service contract
// end to end through the typed repro/client package —
//
//   - healthz and the benchmark listing answer;
//   - an inline-c17 wait-mode job returns a scanpower/comparison/v1
//     result byte-identical to an in-process Engine run of the same
//     circuit and config;
//   - with -workers 1 -queue 1, a slow running job (s5378) plus one
//     queued job make a third submit fail typed — client.ErrQueueFull
//     with the parsed Retry-After;
//   - Cancel settles the queued job as canceled;
//   - /metrics carries the service and packed-kernel families;
//   - SIGTERM while the slow job is still running drains cleanly: exit
//     code 0, a parseable manifest, and a balanced span trace.
//
// It exits non-zero on the first violated expectation.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/client"
	"repro/internal/telemetry"
)

// c17 is the real ISCAS85 c17 netlist — tiny, combinational and already
// NAND-mapped, so the inline-bench path needs no Prepare step.
const c17 = `# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("serve-smoke: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "scanpowerd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/scanpowerd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build scanpowerd: %w", err)
	}

	tracePath := filepath.Join(tmp, "trace.jsonl")
	manifestPath := filepath.Join(tmp, "manifest.json")
	daemon := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-workers", "1",
		"-queue", "1",
		"-trace", tracePath,
		"-manifest", manifestPath,
	)
	stderr, err := daemon.StderrPipe()
	if err != nil {
		return err
	}
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start scanpowerd: %w", err)
	}
	killed := false
	defer func() {
		if !killed {
			daemon.Process.Kill()
			daemon.Wait()
		}
	}()

	// The daemon announces its bound port on stderr as a structured
	// log line:
	//   time=... level=INFO msg=listening addr=http://127.0.0.1:PORT
	base, lines, err := awaitListening(stderr)
	if err != nil {
		return err
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained
	fmt.Println("serve-smoke: daemon at", base)

	cl, err := client.New([]string{base}, client.Options{PollInterval: 10 * time.Millisecond})
	if err != nil {
		return err
	}
	ctx := context.Background()

	if h, err := cl.Health(ctx, base); err != nil || h.Status != "ok" {
		return fmt.Errorf("healthz: %+v (%v)", h, err)
	}
	if names, err := cl.Benchmarks(ctx); err != nil || len(names) != 12 {
		return fmt.Errorf("benchmarks: %d names (%v)", len(names), err)
	}
	if err := checkC17BitIdentical(ctx, cl); err != nil {
		return err
	}
	slow, err := checkBackpressure(ctx, cl)
	if err != nil {
		return err
	}
	if err := checkMetrics(base); err != nil {
		return err
	}

	// SIGTERM while the slow job is still running: the drain must let it
	// finish and exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	killed = true
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("scanpowerd exited uncleanly after SIGTERM: %v (stderr: %s)", err, lines())
		}
	case <-time.After(60 * time.Second):
		daemon.Process.Kill()
		return fmt.Errorf("scanpowerd did not drain within 60s of SIGTERM")
	}
	fmt.Println("serve-smoke: clean SIGTERM drain (slow job", slow.ID, "in flight)")

	if err := checkTraceBalanced(tracePath); err != nil {
		return err
	}
	return checkManifest(manifestPath)
}

// awaitListening scans the daemon's stderr for the listening line and
// returns the base URL plus an accessor for everything read so far.
func awaitListening(stderr io.Reader) (string, func() string, error) {
	var buf bytes.Buffer
	sc := bufio.NewScanner(io.TeeReader(stderr, &buf))
	deadline := time.After(30 * time.Second)
	found := make(chan string, 1)
	go func() {
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			var msg, addr string
			for _, f := range fields {
				if v, ok := strings.CutPrefix(f, "msg="); ok {
					msg = v
				}
				if v, ok := strings.CutPrefix(f, "addr="); ok {
					addr = v
				}
			}
			if msg == "listening" && addr != "" {
				found <- addr
				return
			}
		}
		close(found)
	}()
	select {
	case url, ok := <-found:
		if !ok {
			return "", nil, fmt.Errorf("scanpowerd exited before listening (stderr: %s)", buf.String())
		}
		return url, func() string { return buf.String() }, nil
	case <-deadline:
		return "", nil, fmt.Errorf("scanpowerd never announced its port (stderr: %s)", buf.String())
	}
}

// checkC17BitIdentical runs c17 through the service and through an
// in-process Engine under the same config, and requires byte-identical
// scanpower/comparison/v1 documents.
func checkC17BitIdentical(ctx context.Context, cl *client.Client) error {
	job, err := cl.Submit(ctx, client.SubmitRequest{Bench: c17, Name: "c17", Wait: true})
	if err != nil {
		return fmt.Errorf("c17 wait job: %w", err)
	}
	if job.State != "done" {
		return fmt.Errorf("c17 wait job settled %s (%s)", job.State, job.Err)
	}
	_, got, err := cl.Result(ctx, job)
	if err != nil {
		return fmt.Errorf("c17 result: %w", err)
	}

	c, err := scanpower.ParseBench(c17, "c17")
	if err != nil {
		return err
	}
	cfg := scanpower.DefaultConfig()
	eng := scanpower.NewEngine(cfg)
	cmp, err := eng.CompareWith(ctx, c, cfg)
	if err != nil {
		return fmt.Errorf("in-process c17 run: %w", err)
	}
	want, err := json.Marshal(cmp)
	if err != nil {
		return err
	}
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		return fmt.Errorf("c17 result differs from in-process Engine run:\nservice: %s\nengine:  %s", got, want)
	}
	fmt.Println("serve-smoke: c17 result bit-identical to in-process Engine run")
	return nil
}

// checkBackpressure parks the single worker on s5378, fills the one
// queue slot, and requires the next submit to fail typed with
// ErrQueueFull + Retry-After. Returns the slow job (still running).
func checkBackpressure(ctx context.Context, cl *client.Client) (*client.Job, error) {
	slow, err := cl.Submit(ctx, client.SubmitRequest{Circuit: "s5378"})
	if err != nil {
		return nil, fmt.Errorf("slow submit: %w", err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		j, err := cl.Status(ctx, slow)
		if err != nil {
			return nil, err
		}
		if j.State == "running" {
			break
		}
		if j.State != "queued" {
			return nil, fmt.Errorf("slow job in unexpected state %s", j.State)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("slow job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}

	queued, err := cl.Submit(ctx, client.SubmitRequest{Circuit: "s1423"})
	if err != nil {
		return nil, fmt.Errorf("queued submit: %w", err)
	}

	_, err = cl.Submit(ctx, client.SubmitRequest{Circuit: "s641"})
	if !errors.Is(err, client.ErrQueueFull) {
		return nil, fmt.Errorf("overflow submit error = %v, want ErrQueueFull", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfter <= 0 {
		return nil, fmt.Errorf("queue_full without Retry-After: %+v", apiErr)
	}
	fmt.Println("serve-smoke: full queue rejected typed with ErrQueueFull + Retry-After")

	// Free the queue slot again: cancel the queued job.
	canceled, err := cl.Cancel(ctx, queued)
	if err != nil {
		return nil, fmt.Errorf("cancel queued job: %w", err)
	}
	if canceled.State != "canceled" {
		return nil, fmt.Errorf("cancel queued job: state %s", canceled.State)
	}
	return slow, nil
}

func checkMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		"scanpower_service_jobs_total",
		"scanpower_service_queue_depth",
		"scanpower_service_request_seconds",
		"scanpower_power_packed_lanes_total",
	} {
		if !strings.Contains(string(body), family) {
			return fmt.Errorf("/metrics missing %s", family)
		}
	}
	return nil
}

// checkTraceBalanced requires every span started in the trace to have
// ended — the drain must not truncate the span tree.
func checkTraceBalanced(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var starts, ends int
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev telemetry.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("trace line unparseable: %v: %s", err, sc.Text())
		}
		switch ev.Ev {
		case "start":
			starts++
		case "end":
			ends++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if starts == 0 || starts != ends {
		return fmt.Errorf("trace spans unbalanced: %d starts, %d ends", starts, ends)
	}
	fmt.Printf("serve-smoke: trace balanced (%d spans)\n", starts)
	return nil
}

func checkManifest(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := telemetry.ReadManifest(f)
	if err != nil {
		return err
	}
	if m.Label != "scanpowerd" || len(m.Circuits) == 0 {
		return fmt.Errorf("manifest looks wrong: label %q, %d circuits", m.Label, len(m.Circuits))
	}
	return nil
}
