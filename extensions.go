package scanpower

import (
	"context"
	"fmt"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/leakage"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/reorder"
	"repro/internal/scan"
	"repro/internal/timing"
)

// This file hosts the extensions beyond the paper's measured table:
//
//   - the enhanced-scan comparison (full isolation à la [5], which the
//     paper argues against because it costs clock period), and
//   - the pattern/scan-cell reordering study the paper explicitly defers
//     ("by applying reordering techniques, further improvements can be
//     achieved").

// EnhancedComparison measures the fully isolated structure on the same
// test set conventions as Compare and reports the normal-mode delay
// penalty the paper's selective approach avoids.
type EnhancedComparison struct {
	Circuit string
	// Enhanced is the power of the fully isolated structure.
	Enhanced power.Report
	// Proposed is the paper's structure on the same patterns.
	Proposed power.Report
	// DelayPenaltyPS is the critical-path increase (ps) full isolation
	// costs; the proposed structure costs zero by construction.
	DelayPenaltyPS float64
	// ProposedMuxes / FFs show how selective the proposed structure was.
	ProposedMuxes int
	FFs           int
}

// CompareEnhanced runs the enhanced-scan extension experiment. Like every
// v1 entry point it is context-first; pass context.Background() when no
// cancellation is needed.
func CompareEnhanced(ctx context.Context, c *netlist.Circuit, cfg Config) (*EnhancedComparison, error) {
	return compareEnhancedWith(ctx, c, cfg, directPatterns(cfg, Hooks{}))
}

// compareEnhancedWith is CompareEnhanced over an explicit pattern source
// (the Engine plugs in its memoized layer).
func compareEnhancedWith(ctx context.Context, c *netlist.Circuit, cfg Config,
	gen patternSource) (*EnhancedComparison, error) {

	res, err := gen(ctx, c)
	if err != nil {
		return nil, err
	}
	mopts := power.MeasureOptions{Ctx: ctx}
	prop, err := core.BuildContext(ctx, c, cfg.Proposed)
	if err != nil {
		return nil, err
	}
	propRep, err := cfg.Measure.measure(scan.New(prop.Circuit), res.Patterns, prop.Cfg, cfg.Leak, cfg.Cap, mopts)
	if err != nil {
		return nil, err
	}
	enh, penalty, err := core.EnhancedScan(c, cfg.Proposed)
	if err != nil {
		return nil, err
	}
	enhRep, err := cfg.Measure.measure(scan.New(enh.Circuit), res.Patterns, enh.Cfg, cfg.Leak, cfg.Cap, mopts)
	if err != nil {
		return nil, err
	}
	return &EnhancedComparison{
		Circuit:        c.Name,
		Enhanced:       enhRep,
		Proposed:       propRep,
		DelayPenaltyPS: penalty,
		ProposedMuxes:  prop.Stats.MuxCount,
		FFs:            c.NumFFs(),
	}, nil
}

// ReorderingStudy measures one structure under the four combinations of
// the two workload orderings.
type ReorderingStudy struct {
	Circuit   string
	Structure string
	// Baseline: paper conventions (no reordering, netlist chain order).
	Baseline power.Report
	// PatternsReordered: greedy Hamming nearest-neighbour pattern order.
	PatternsReordered power.Report
	// ChainReordered: correlation-driven scan-cell order.
	ChainReordered power.Report
	// Both: both orderings applied.
	Both power.Report
}

// BestDynamicGain returns the largest dynamic improvement (%) any
// reordering combination achieves over the baseline.
func (r *ReorderingStudy) BestDynamicGain() float64 {
	best := 0.0
	for _, rep := range []power.Report{r.PatternsReordered, r.ChainReordered, r.Both} {
		if g := power.Improvement(r.Baseline.DynamicPerHz, rep.DynamicPerHz); g > best {
			best = g
		}
	}
	return best
}

// StudyReordering runs the deferred-reordering extension experiment on
// the given structure ("traditional" or "proposed"). Like every v1 entry
// point it is context-first; pass context.Background() when no
// cancellation is needed.
func StudyReordering(ctx context.Context, c *netlist.Circuit, cfg Config, structure string) (*ReorderingStudy, error) {
	return studyReorderingWith(ctx, c, cfg, structure, directPatterns(cfg, Hooks{}))
}

// studyReorderingWith is StudyReordering over an explicit pattern source
// (the Engine plugs in its memoized layer).
func studyReorderingWith(ctx context.Context, c *netlist.Circuit, cfg Config,
	structure string, gen patternSource) (*ReorderingStudy, error) {

	res, err := gen(ctx, c)
	if err != nil {
		return nil, err
	}
	var (
		circ *netlist.Circuit
		sCfg scan.ShiftConfig
	)
	switch structure {
	case "traditional":
		circ, sCfg = c, scan.Traditional(c)
	case "proposed":
		sol, err := core.BuildContext(ctx, c, cfg.Proposed)
		if err != nil {
			return nil, err
		}
		circ, sCfg = sol.Circuit, sol.Cfg
	default:
		return nil, fmt.Errorf("scanpower: unknown structure %q", structure)
	}

	measure := func(pats []scan.Pattern, order []int) (power.Report, error) {
		var ch *scan.Chain
		if order == nil {
			ch = scan.New(circ)
		} else {
			var err error
			ch, err = scan.NewWithOrder(circ, order)
			if err != nil {
				return power.Report{}, err
			}
		}
		return cfg.Measure.measure(ch, pats, sCfg, cfg.Leak, cfg.Cap, power.MeasureOptions{Ctx: ctx})
	}

	st := &ReorderingStudy{Circuit: c.Name, Structure: structure}
	if st.Baseline, err = measure(res.Patterns, nil); err != nil {
		return nil, err
	}
	ordered := reorder.Patterns(res.Patterns)
	if st.PatternsReordered, err = measure(ordered, nil); err != nil {
		return nil, err
	}
	chain := reorder.ChainOrder(res.Patterns, c.NumFFs())
	if st.ChainReordered, err = measure(res.Patterns, chain); err != nil {
		return nil, err
	}
	chainBoth := reorder.ChainOrder(ordered, c.NumFFs())
	if st.Both, err = measure(ordered, chainBoth); err != nil {
		return nil, err
	}
	return st, nil
}

// scaledATPG applies the same large-circuit effort scaling Compare uses.
func scaledATPG(c *netlist.Circuit, cfg Config) atpg.Options {
	aopts := cfg.ATPG
	if cfg.ScaleATPG && c.NumGates() > 2000 {
		aopts.MaxRandomPatterns = 2048
		aopts.MaxBacktracks = 8
		aopts.MaxPodemFaults = 300
	}
	if cfg.Lanes != 0 {
		aopts.Lanes = cfg.Lanes
	}
	return aopts
}

// TechScalingPoint is one generation of the technology-scaling study:
// traditional-scan power of the combinational part at a given shift
// frequency, split into dynamic and static components.
type TechScalingPoint struct {
	NM        int
	VDD       float64
	DynamicUW float64
	StaticUW  float64
	// StaticShare = static / (static + dynamic), in [0,1].
	StaticShare float64
}

// StudyTechScaling reproduces the paper's motivating trend ("in future
// technologies the static portion of power dissipation will outreach the
// dynamic portion"): it measures traditional scan on the same circuit and
// test set across technology generations, scaling the calibrated 45 nm
// leakage and capacitance models per node, and reports the static share
// of total scan power at the given shift frequency.
func StudyTechScaling(c *netlist.Circuit, cfg Config, shiftHz float64) ([]TechScalingPoint, error) {
	res, err := atpg.Generate(c, scaledATPG(c, cfg))
	if err != nil {
		return nil, err
	}
	ch := scan.New(c)
	tcfg := scan.Traditional(c)
	var out []TechScalingPoint
	for _, node := range leakage.Nodes {
		params, err := leakage.ParamsForNode(node.NM)
		if err != nil {
			return nil, err
		}
		lm := leakage.New(params)
		cm, err := power.CapModelForNode(node.NM)
		if err != nil {
			return nil, err
		}
		rep, err := cfg.Measure.measure(ch, res.Patterns, tcfg, lm, cm, power.MeasureOptions{})
		if err != nil {
			return nil, err
		}
		dyn := rep.DynamicPerHz * shiftHz
		pt := TechScalingPoint{NM: node.NM, VDD: node.VDD, DynamicUW: dyn, StaticUW: rep.StaticUW}
		if tot := dyn + rep.StaticUW; tot > 0 {
			pt.StaticShare = rep.StaticUW / tot
		}
		out = append(out, pt)
	}
	return out, nil
}

// ChainStudyPoint is one chain-count configuration of the multi-chain
// study: total test cycles and scan-mode power of the proposed structure.
type ChainStudyPoint struct {
	Chains      int
	ShiftCycles int
	Dynamic     power.Report
}

// StudyChains sweeps the scan-chain count (1, 2, 4, ... up to the flop
// count) for the proposed structure: shift cycles per pattern shrink with
// the longest chain — test time falls — while per-cycle power stays in
// the same band. Multi-chain scan composes with the paper's technique
// unchanged (the MUX select is still the shared Shift Enable).
func StudyChains(c *netlist.Circuit, cfg Config) ([]ChainStudyPoint, error) {
	res, err := atpg.Generate(c, scaledATPG(c, cfg))
	if err != nil {
		return nil, err
	}
	sol, err := core.Build(c, cfg.Proposed)
	if err != nil {
		return nil, err
	}
	var out []ChainStudyPoint
	for n := 1; n <= c.NumFFs(); n *= 2 {
		cs, err := scan.NewChains(sol.Circuit, n)
		if err != nil {
			return nil, err
		}
		rep, err := cfg.Measure.measure(cs, res.Patterns, sol.Cfg, cfg.Leak, cfg.Cap, power.MeasureOptions{})
		if err != nil {
			return nil, err
		}
		out = append(out, ChainStudyPoint{
			Chains:      cs.NumChains(),
			ShiftCycles: rep.Cycles,
			Dynamic:     rep,
		})
	}
	return out, nil
}

// TestPointStudy is the outcome of StudyTestPoints.
type TestPointStudy struct {
	Circuit string
	// BasePeakPerHz is traditional scan's worst-cycle switched energy;
	// LimitPerHz the target (BasePeak × the requested fraction);
	// FinalPeakPerHz what the inserted points achieved.
	BasePeakPerHz, LimitPerHz, FinalPeakPerHz float64
	// Points is the number of gated lines needed.
	Points int
	// DelayPenaltyPS is the critical-path cost of the gating gates — the
	// structural price the paper's technique avoids by construction.
	DelayPenaltyPS float64
	// MeanDynamicPerHz is the average dynamic power with points active.
	MeanDynamicPerHz float64
}

// StudyTestPoints reproduces the peak-power control baseline of the
// paper's reference [6]: test points (gating gates driven by a global
// Test Point Enable) are inserted greedily at the most active lines until
// the worst-cycle scan power drops below targetFrac of traditional
// scan's peak. It reports how many points that takes and what it costs
// in clock period — the two drawbacks the paper's structure avoids.
func StudyTestPoints(c *netlist.Circuit, cfg Config, targetFrac float64) (*TestPointStudy, error) {
	if targetFrac <= 0 || targetFrac > 1 {
		return nil, fmt.Errorf("scanpower: targetFrac %v out of (0,1]", targetFrac)
	}
	res, err := atpg.Generate(c, scaledATPG(c, cfg))
	if err != nil {
		return nil, err
	}
	tcfg := scan.Traditional(c)
	base, err := cfg.Measure.measure(scan.New(c), res.Patterns, tcfg, cfg.Leak, cfg.Cap, power.MeasureOptions{})
	if err != nil {
		return nil, err
	}
	st := &TestPointStudy{
		Circuit:       c.Name,
		BasePeakPerHz: base.PeakDynamicPerHz,
		LimitPerHz:    base.PeakDynamicPerHz * targetFrac,
	}
	profile, err := power.ToggleProfile(scan.New(c), res.Patterns, tcfg, cfg.Cap)
	if err != nil {
		return nil, err
	}
	cands := core.RankTestPointCandidates(c, profile)
	baseCrit := timing.Analyze(c, cfg.Delay).Critical

	try := func(k int) (*core.TestPointPlan, power.Report, error) {
		nets := cands[:k]
		values := make([]bool, k)
		for i, n := range nets {
			values[i] = forceValueFor(c, n)
		}
		plan, err := core.InsertTestPoints(c, nets, values)
		if err != nil {
			return nil, power.Report{}, err
		}
		rep, err := cfg.Measure.measure(scan.New(plan.Circuit),
			plan.AdaptPatterns(res.Patterns), plan.AdaptConfig(tcfg), cfg.Leak, cfg.Cap, power.MeasureOptions{})
		return plan, rep, err
	}
	if st.BasePeakPerHz <= st.LimitPerHz {
		st.FinalPeakPerHz = st.BasePeakPerHz
		st.MeanDynamicPerHz = base.DynamicPerHz
		return st, nil
	}
	// Exponential probe then refine to the smallest sufficient prefix.
	k := 1
	var plan *core.TestPointPlan
	var rep power.Report
	for {
		if k > len(cands) {
			k = len(cands)
		}
		plan, rep, err = try(k)
		if err != nil {
			return nil, err
		}
		if rep.PeakDynamicPerHz <= st.LimitPerHz || k == len(cands) {
			break
		}
		k *= 2
	}
	lo, hi := k/2, k // lo insufficient (or 0), hi sufficient/limit
	for lo+1 < hi {
		mid := (lo + hi) / 2
		p2, r2, err := try(mid)
		if err != nil {
			return nil, err
		}
		if r2.PeakDynamicPerHz <= st.LimitPerHz {
			hi, plan, rep = mid, p2, r2
		} else {
			lo = mid
		}
	}
	st.Points = hi
	st.FinalPeakPerHz = rep.PeakDynamicPerHz
	st.MeanDynamicPerHz = rep.DynamicPerHz
	st.DelayPenaltyPS = timing.Analyze(plan.Circuit, cfg.Delay).Critical - baseCrit
	return st, nil
}

// forceValueFor picks the constant that blocks the most downstream logic:
// the controlling value of the majority of the net's readers.
func forceValueFor(c *netlist.Circuit, n netlist.NetID) bool {
	zero, one := 0, 0
	for _, gi := range c.Nets[n].Fanout {
		switch c.Gates[gi].Type {
		case logic.And, logic.Nand:
			zero++
		case logic.Or, logic.Nor:
			one++
		}
	}
	return one > zero
}
