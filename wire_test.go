package scanpower

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/power"
)

// wireComparison runs a real (small) experiment so the round-trip test
// covers populated stats maps and non-trivial floats.
func wireComparison(t *testing.T) *Comparison {
	t.Helper()
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(context.Background(), c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return cmp
}

func TestComparisonWireRoundTrip(t *testing.T) {
	cmp := wireComparison(t)
	b, err := json.Marshal(cmp)
	if err != nil {
		t.Fatal(err)
	}

	var top map[string]any
	if err := json.Unmarshal(b, &top); err != nil {
		t.Fatal(err)
	}
	if got := top["schema"]; got != ComparisonSchemaV1 {
		t.Fatalf("schema = %v, want %q", got, ComparisonSchemaV1)
	}
	for _, field := range []string{"circuit", "stats", "patterns", "fault_coverage",
		"traditional", "input_control", "proposed", "proposed_stats",
		"input_control_stats", "mux_overhead_uw", "improvements"} {
		if _, ok := top[field]; !ok {
			t.Errorf("wire form missing field %q", field)
		}
	}

	var back Comparison
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cmp, &back) {
		t.Errorf("round trip changed the comparison:\n got %+v\nwant %+v", &back, cmp)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Errorf("marshal → unmarshal → marshal not byte-identical:\n%s\nvs\n%s", b, b2)
	}
}

func TestComparisonWireRejectsWrongSchema(t *testing.T) {
	var cmp Comparison
	err := json.Unmarshal([]byte(`{"schema":"scanpower/comparison/v0"}`), &cmp)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("decode with wrong schema: err = %v, want schema error", err)
	}
}

func TestEnhancedComparisonWireRoundTrip(t *testing.T) {
	in := &EnhancedComparison{
		Circuit:        "s344",
		Enhanced:       power.Report{DynamicPerHz: 1.5e-9, StaticUW: 12.25, Cycles: 400},
		Proposed:       power.Report{DynamicPerHz: 2.5e-9, StaticUW: 14.5, Cycles: 400},
		DelayPenaltyPS: 31.5,
		ProposedMuxes:  7,
		FFs:            15,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), EnhancedComparisonSchemaV1) {
		t.Fatalf("wire form missing schema tag: %s", b)
	}
	var back EnhancedComparison
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &back) {
		t.Errorf("round trip changed the enhanced comparison:\n got %+v\nwant %+v", &back, in)
	}
}

func TestWriteComparisonsJSONRoundTrip(t *testing.T) {
	cmp := wireComparison(t)
	var buf bytes.Buffer
	if err := WriteComparisonsJSON(&buf, []*Comparison{cmp}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadComparisonsJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], cmp) {
		t.Errorf("comparison set round trip mismatch")
	}
	if _, err := ReadComparisonsJSON(strings.NewReader(`{"schema":"x","comparisons":[]}`)); err == nil {
		t.Error("ReadComparisonsJSON accepted a wrong container schema")
	}
}
