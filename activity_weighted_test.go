package scanpower

// Integration coverage for the activity-weighted extension columns at
// the Compare level: the annotation is purely additive, and the
// per-structure weighted figures reflect the shift-blocking each
// structure achieves.

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/power"
)

func TestActivityWeightedColumns(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	plainCfg := DefaultConfig()
	plain, err := Compare(context.Background(), c, plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Activity != nil {
		t.Fatal("unannotated Compare grew an Activity block")
	}

	cfg := DefaultConfig()
	cfg.Activity = &power.ActivityProfile{Source: "profile", Default: 0.3,
		Inputs: map[string]float64{}}
	cmp, err := Compare(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := cmp.Activity
	if a == nil {
		t.Fatal("annotated Compare has no Activity block")
	}
	if a.WTMTotal <= 0 || a.WTMPerPattern <= 0 {
		t.Errorf("WTM missing: %+v", a)
	}

	// The annotation must not steer the experiment: every simulated
	// column and the pattern set stay identical.
	annotated := *cmp
	annotated.Activity = nil
	if !reflect.DeepEqual(&annotated, plain) {
		t.Errorf("activity annotation changed the simulated comparison:\nplain:     %+v\nannotated: %+v", plain, &annotated)
	}

	// The weighted columns reflect each structure's shift blocking: the
	// engineered structures freeze part of the logic during scan, so
	// their weighted figures must come in strictly under traditional
	// scan, with the proposed structure (input control + MUX gating)
	// under input control alone — the paper's Table I ordering.
	if !(a.TraditionalWeightedPerHz > a.InputControlWeightedPerHz &&
		a.InputControlWeightedPerHz > a.ProposedWeightedPerHz &&
		a.ProposedWeightedPerHz > 0) {
		t.Errorf("weighted ordering violated: trad %g, ic %g, prop %g",
			a.TraditionalWeightedPerHz, a.InputControlWeightedPerHz, a.ProposedWeightedPerHz)
	}

	// Higher input activity can only increase the traditional figure.
	hot := DefaultConfig()
	hot.Activity = &power.ActivityProfile{Source: "profile", Default: 0.9}
	hotCmp, err := Compare(context.Background(), c, hot)
	if err != nil {
		t.Fatal(err)
	}
	if hotCmp.Activity.TraditionalWeightedPerHz <= a.TraditionalWeightedPerHz {
		t.Errorf("raising every input activity did not raise the weighted figure: %g vs %g",
			hotCmp.Activity.TraditionalWeightedPerHz, a.TraditionalWeightedPerHz)
	}
}
