package api_test

// The api-compat gate (`make api-compat`): every v1 request/response body
// shape — legacy flat and source-union submits, activity blocks, the
// structured benchmarks response, error envelopes, and comparison/v1
// result documents with and without the activity extension — is pinned as
// a golden JSON fixture. Each fixture must (a) byte-match what the current
// marshaller emits for its Go value and (b) survive a decode→re-encode
// round trip unchanged, so an accidental field rename, type change or
// dropped field fails here before it ships as a wire break. Regenerate
// deliberately with `go test ./api/ -run TestAPICompat -update` after an
// intentional, versioned contract change.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/api"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/power"
)

var update = flag.Bool("update", false, "rewrite the golden API fixtures")

func f64(v float64) *float64 { return &v }

// fixtureComparison builds a plausible, fully-populated comparison/v1
// document; withActivity adds the activity extension block.
func fixtureComparison(withActivity bool) *scanpower.Comparison {
	cmp := &scanpower.Comparison{
		Circuit: "s344",
		Stats: netlist.Stats{
			Name: "s344", PIs: 9, POs: 11, FFs: 15, Gates: 181, Nets: 205,
			Depth: 12, Fanout: 1.7, MaxFan: 9, MaxArit: 4,
			ByType: map[logic.GateType]int{logic.Nand: 120, logic.Nor: 40, logic.Not: 21},
		},
		Patterns:      27,
		FaultCoverage: 0.987,
		Traditional: power.Report{
			DynamicPerHz: 1.01e-7, PeakDynamicPerHz: 2.5e-7, StaticUW: 11.5,
			Cycles: 432, MeanTogglesPerCycle: 41.25, MeanLeakNA: 12784.0,
		},
		InputControl: power.Report{
			DynamicPerHz: 7.2e-8, PeakDynamicPerHz: 2.1e-7, StaticUW: 10.1,
			Cycles: 432, MeanTogglesPerCycle: 30.5, MeanLeakNA: 11222.0,
		},
		Proposed: power.Report{
			DynamicPerHz: 2.3e-8, PeakDynamicPerHz: 1.4e-7, StaticUW: 8.75,
			Cycles: 432, MeanTogglesPerCycle: 9.8, MeanLeakNA: 9720.0,
		},
	}
	if withActivity {
		cmp.Activity = &scanpower.ActivityResult{
			Source:                    "profile",
			DefaultInput:              0.2,
			Inputs:                    map[string]float64{"G0": 0.5, "G1": 0.1},
			WTMTotal:                  2961,
			WTMPerPattern:             109.7,
			TraditionalWeightedPerHz:  9.1e-8,
			InputControlWeightedPerHz: 6.6e-8,
			ProposedWeightedPerHz:     2.0e-8,
		}
	}
	return cmp
}

func TestAPICompat(t *testing.T) {
	cases := []struct {
		file  string
		val   any
		fresh func() any
	}{
		{
			file: "submit_legacy_circuit.json",
			val:  &api.SubmitBody{Circuit: "s1423", Wait: true},
		},
		{
			file: "submit_legacy_bench.json",
			val: &api.SubmitBody{Bench: "INPUT(G0)\nOUTPUT(G1)\nG1 = NOT(G0)\n",
				Name: "tiny", Measure: "packed", TimeoutMS: 5000},
		},
		{
			file: "submit_union_circuit.json",
			val:  &api.SubmitBody{Source: &api.Source{Circuit: "s344"}, Wait: true},
		},
		{
			file: "submit_union_bench.json",
			val: &api.SubmitBody{Source: &api.Source{
				Bench: "INPUT(G0)\nOUTPUT(G1)\nG1 = NOT(G0)\n", Name: "tiny"}},
		},
		{
			file: "submit_union_verilog_activity.json",
			val: &api.SubmitBody{
				Source: &api.Source{
					Verilog: "module t (a, y);\n  input a;\n  output y;\n  not u1 (y, a);\nendmodule\n",
					Name:    "t",
				},
				Activity: &api.Activity{
					DefaultInput: f64(0.2),
					Inputs:       map[string]float64{"a": 0.5},
				},
				Measure: "packed",
				Wait:    true,
			},
		},
		{
			file: "submit_activity_vcd.json",
			val: &api.SubmitBody{
				Source: &api.Source{Circuit: "s344"},
				Activity: &api.Activity{
					VCD: "$var wire 1 ! G0 $end\n$enddefinitions $end\n#0\n0!\n#1\n1!\n",
				},
			},
		},
		{
			file: "benchmarks_response.json",
			val: &api.BenchmarksResponse{
				Benchmarks: []api.Benchmark{
					{Name: "s1423", Gates: 657, ScanCells: 74, Chains: 1},
					{Name: "s344", Gates: 160, ScanCells: 15, Chains: 1},
				},
				Names: []string{"s1423", "s344"},
			},
		},
		{
			file: "error_envelope.json",
			val: &api.Envelope{Error: api.EnvelopeBody{
				Code: "bad_source", Message: "exactly one of source.circuit, source.bench or source.verilog must be set",
			}},
		},
		{
			file: "comparison_v1.json",
			val:  fixtureComparison(false),
		},
		{
			file: "comparison_v1_activity.json",
			val:  fixtureComparison(true),
		},
	}
	// fresh decode targets mirror the value types.
	for i := range cases {
		c := &cases[i]
		switch c.val.(type) {
		case *api.SubmitBody:
			c.fresh = func() any { return &api.SubmitBody{} }
		case *api.BenchmarksResponse:
			c.fresh = func() any { return &api.BenchmarksResponse{} }
		case *api.Envelope:
			c.fresh = func() any { return &api.Envelope{} }
		case *scanpower.Comparison:
			c.fresh = func() any { return &scanpower.Comparison{} }
		}
	}

	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			got, err := json.MarshalIndent(c.val, "", "  ")
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", c.file)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read fixture (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire bytes drifted from the frozen fixture %s:\n got: %s\nwant: %s",
					c.file, got, want)
			}

			// Decode → re-encode must reproduce the fixture exactly.
			dst := c.fresh()
			if err := json.Unmarshal(want, dst); err != nil {
				t.Fatalf("decode fixture: %v", err)
			}
			again, err := json.MarshalIndent(dst, "", "  ")
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			again = append(again, '\n')
			if !bytes.Equal(again, want) {
				t.Errorf("round trip is lossy for %s:\n got: %s\nwant: %s", c.file, again, want)
			}
		})
	}
}
