package api_test

import (
	"net/http"
	"strings"
	"testing"

	"repro/api"
)

const tinyBench = "INPUT(G0)\nOUTPUT(G1)\nG1 = NOT(G0)\n"

func TestValidateLegacyForms(t *testing.T) {
	cases := []struct {
		name    string
		body    api.SubmitBody
		status  int
		code    string
		message string
	}{
		{"circuit ok", api.SubmitBody{Circuit: "s344"}, 0, "", ""},
		{"bench ok", api.SubmitBody{Bench: tinyBench, Name: "t"}, 0, "", ""},
		{"both set", api.SubmitBody{Circuit: "s344", Bench: tinyBench},
			http.StatusBadRequest, api.CodeBadRequest, "exactly one of circuit or bench must be set"},
		{"neither set", api.SubmitBody{},
			http.StatusBadRequest, api.CodeBadRequest, "one of circuit or bench must be set"},
		{"bad measure", api.SubmitBody{Circuit: "s344", Measure: "nope"},
			http.StatusBadRequest, api.CodeBadRequest, `unknown measure backend "nope"`},
		{"negative timeout", api.SubmitBody{Circuit: "s344", TimeoutMS: -1},
			http.StatusBadRequest, api.CodeBadRequest, "timeout_ms must be >= 0"},
		// The server historically checks measure before the source shape;
		// the consolidated validator must keep that order so legacy error
		// bytes never change.
		{"measure beats source shape", api.SubmitBody{Measure: "nope"},
			http.StatusBadRequest, api.CodeBadRequest, `unknown measure backend "nope"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.body.Validate()
			if tc.code == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected %s", tc.code)
			}
			if err.Status != tc.status || err.Code != tc.code || err.Message != tc.message {
				t.Fatalf("got (%d, %s, %q), want (%d, %s, %q)",
					err.Status, err.Code, err.Message, tc.status, tc.code, tc.message)
			}
		})
	}
}

func TestValidateSourceUnion(t *testing.T) {
	v := "module t (a, y);\n input a;\n output y;\n not u1 (y, a);\nendmodule\n"
	cases := []struct {
		name string
		body api.SubmitBody
		code string
	}{
		{"union circuit ok", api.SubmitBody{Source: &api.Source{Circuit: "s344"}}, ""},
		{"union bench ok", api.SubmitBody{Source: &api.Source{Bench: tinyBench, Name: "t"}}, ""},
		{"union verilog ok", api.SubmitBody{Source: &api.Source{Verilog: v}}, ""},
		{"empty union", api.SubmitBody{Source: &api.Source{}}, api.CodeBadSource},
		{"two discriminants", api.SubmitBody{Source: &api.Source{Circuit: "s344", Bench: tinyBench}}, api.CodeBadSource},
		{"three discriminants", api.SubmitBody{Source: &api.Source{Circuit: "s344", Bench: tinyBench, Verilog: v}}, api.CodeBadSource},
		{"name on builtin", api.SubmitBody{Source: &api.Source{Circuit: "s344", Name: "x"}}, api.CodeBadSource},
		{"union plus legacy circuit", api.SubmitBody{Circuit: "s344", Source: &api.Source{Circuit: "s344"}}, api.CodeBadSource},
		{"union plus legacy bench", api.SubmitBody{Bench: tinyBench, Source: &api.Source{Circuit: "s344"}}, api.CodeBadSource},
		{"union plus legacy name", api.SubmitBody{Name: "x", Source: &api.Source{Bench: tinyBench}}, api.CodeBadSource},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.body.Validate()
			if tc.code == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || err.Code != tc.code {
				t.Fatalf("got %v, want code %s", err, tc.code)
			}
			if err.Status != http.StatusUnprocessableEntity {
				t.Fatalf("status %d, want 422", err.Status)
			}
		})
	}
}

func TestValidateActivity(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	src := &api.Source{Circuit: "s344"}
	cases := []struct {
		name string
		act  api.Activity
		code string
	}{
		{"default only", api.Activity{DefaultInput: f(0.2)}, ""},
		{"inputs only", api.Activity{Inputs: map[string]float64{"G0": 0.5}}, ""},
		{"vcd only", api.Activity{VCD: "$var wire 1 ! G0 $end\n$enddefinitions $end\n#0\n0!\n#1\n"}, ""},
		{"zero default explicit", api.Activity{DefaultInput: f(0)}, ""},
		{"empty block", api.Activity{}, api.CodeBadActivity},
		{"vcd plus inputs", api.Activity{VCD: "x", Inputs: map[string]float64{"G0": 0.5}}, api.CodeBadActivity},
		{"vcd plus default", api.Activity{VCD: "x", DefaultInput: f(0.2)}, api.CodeBadActivity},
		{"factor above one", api.Activity{Inputs: map[string]float64{"G0": 1.5}}, api.CodeBadActivity},
		{"negative factor", api.Activity{Inputs: map[string]float64{"G0": -0.1}}, api.CodeBadActivity},
		{"negative default", api.Activity{DefaultInput: f(-1)}, api.CodeBadActivity},
		{"empty input name", api.Activity{Inputs: map[string]float64{"": 0.5}}, api.CodeBadActivity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			act := tc.act
			body := api.SubmitBody{Source: src, Activity: &act}
			err := body.Validate()
			if tc.code == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || err.Code != tc.code {
				t.Fatalf("got %v, want code %s", err, tc.code)
			}
		})
	}
	// Activity also rides on legacy flat bodies.
	body := api.SubmitBody{Circuit: "s344", Activity: &api.Activity{DefaultInput: f(0.3)}}
	if err := body.Validate(); err != nil {
		t.Fatalf("activity on a legacy body must validate: %v", err)
	}
}

func TestResolved(t *testing.T) {
	cases := []struct {
		name    string
		body    api.SubmitBody
		kind    api.SourceKind
		payload string
		label   string
	}{
		{"legacy circuit", api.SubmitBody{Circuit: "s344"}, api.SourceCircuit, "s344", ""},
		{"legacy bench named", api.SubmitBody{Bench: tinyBench, Name: "t"}, api.SourceBench, tinyBench, "t"},
		{"legacy bench unnamed", api.SubmitBody{Bench: tinyBench}, api.SourceBench, tinyBench, "inline"},
		{"union circuit", api.SubmitBody{Source: &api.Source{Circuit: "s344"}}, api.SourceCircuit, "s344", ""},
		{"union bench", api.SubmitBody{Source: &api.Source{Bench: tinyBench, Name: "b"}}, api.SourceBench, tinyBench, "b"},
		{"union verilog unnamed", api.SubmitBody{Source: &api.Source{Verilog: "module..."}}, api.SourceVerilog, "module...", "inline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kind, payload, label := tc.body.Resolved()
			if kind != tc.kind || payload != tc.payload || label != tc.label {
				t.Fatalf("got (%s, %q, %q), want (%s, %q, %q)",
					kind, payload, label, tc.kind, tc.payload, tc.label)
			}
		})
	}
}

func TestActivityProfileResolution(t *testing.T) {
	pis := []string{"G0", "G1", "G2"}

	t.Run("explicit factors", func(t *testing.T) {
		d := 0.4
		a := api.Activity{DefaultInput: &d, Inputs: map[string]float64{"G0": 0.9}}
		p, err := a.Profile(pis)
		if err != nil {
			t.Fatal(err)
		}
		if p.Source != "profile" || p.Default != 0.4 || p.For("G0") != 0.9 || p.For("G1") != 0.4 {
			t.Fatalf("bad profile: %+v", p)
		}
	})

	t.Run("implicit default is 0.2", func(t *testing.T) {
		a := api.Activity{Inputs: map[string]float64{"G0": 0.9}}
		p, err := a.Profile(pis)
		if err != nil {
			t.Fatal(err)
		}
		if p.Default != api.DefaultInputActivity {
			t.Fatalf("default %v, want %v", p.Default, api.DefaultInputActivity)
		}
	})

	t.Run("unknown input rejected", func(t *testing.T) {
		a := api.Activity{Inputs: map[string]float64{"nope": 0.5, "also": 0.2}}
		_, err := a.Profile(pis)
		if err == nil || err.Code != api.CodeBadActivity {
			t.Fatalf("got %v, want bad_activity", err)
		}
		if !strings.Contains(err.Message, "also, nope") {
			t.Fatalf("unknown names should be sorted in %q", err.Message)
		}
	})

	t.Run("vcd matched", func(t *testing.T) {
		a := api.Activity{VCD: "$var wire 1 ! G0 $end\n$var wire 1 \" other $end\n" +
			"$enddefinitions $end\n#0\n0!\n0\"\n#1\n1!\n#2\n"}
		p, err := a.Profile(pis)
		if err != nil {
			t.Fatal(err)
		}
		if p.Source != "vcd" || p.Default != 0 {
			t.Fatalf("bad vcd profile: %+v", p)
		}
		if p.For("G0") != 0.5 {
			t.Fatalf("G0 activity %v, want 0.5", p.For("G0"))
		}
		if _, ok := p.Inputs["other"]; ok {
			t.Fatalf("non-PI signal leaked into the profile")
		}
	})

	t.Run("vcd matching nothing rejected", func(t *testing.T) {
		a := api.Activity{VCD: "$var wire 1 ! other $end\n$enddefinitions $end\n#0\n0!\n#1\n"}
		if _, err := a.Profile(pis); err == nil || err.Code != api.CodeBadActivity {
			t.Fatalf("got %v, want bad_activity", err)
		}
	})

	t.Run("garbage vcd rejected", func(t *testing.T) {
		a := api.Activity{VCD: "not a vcd"}
		if _, err := a.Profile(pis); err == nil || err.Code != api.CodeBadActivity {
			t.Fatalf("got %v, want bad_activity", err)
		}
	})
}
