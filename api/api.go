// Package api freezes the v1 wire contract of the scanpowerd job API: the
// request and response body types shared by the server (internal/service)
// and the typed client (repro/client), plus the one submit-body validator
// both sides run, so a request the client accepts is a request the server
// accepts and vice versa.
//
// # Source union
//
// POST /v1/jobs selects the circuit through a discriminated union:
//
//	{"source": {"circuit": "s1423"}}             built-in Table I name
//	{"source": {"bench": "...", "name": "x"}}    inline .bench source
//	{"source": {"verilog": "...", "name": "x"}}  inline structural Verilog
//
// Exactly one of the three discriminants must be set. The legacy flat
// fields — {"circuit": ...} or {"bench": ..., "name": ...} — remain valid
// forever and must never be combined with "source"; their responses are
// byte-for-byte what they were before the union existed.
//
// # Activity
//
// An optional "activity" block annotates the job with switching activity,
// either as explicit per-input factors or as a VCD whose per-signal toggle
// rates are extracted server-side:
//
//	{"activity": {"default_input": 0.2, "inputs": {"G0": 0.5}}}
//	{"activity": {"vcd": "$var wire 1 ! G0 $end ..."}}
//
// Factors are transitions per cycle in [0, 1]. Unlisted inputs (and scan
// cells) take default_input, itself defaulting to DefaultInputActivity —
// the 0.2 of the industrial set_default_switching_activity convention.
// A job with an activity block gets an extra "activity" object in its
// scanpower/comparison/v1 result; jobs without one are byte-identical to
// pre-activity responses.
package api

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro"
	"repro/internal/power"
	"repro/internal/vcd"
)

// DefaultInputActivity is the switching activity assumed for inputs not
// covered by an explicit factor when the profile sets no default — the
// 0.2 transitions/cycle of the industrial default_switching_activity
// convention.
const DefaultInputActivity = 0.2

// DefaultName names inline circuits whose submit carries no name.
const DefaultName = "inline"

// Error-envelope codes emitted by submit validation. The envelope shape is
// {"error": {"code": ..., "message": ...}} (see Envelope).
const (
	// CodeBadRequest covers malformed legacy bodies: both or neither of
	// the flat circuit/bench fields, bad measure backends, negative
	// timeouts. 400.
	CodeBadRequest = "bad_request"
	// CodeBadSource covers malformed source unions: not exactly one
	// discriminant, mixing the union with the legacy flat fields, or a
	// name on a built-in source. 422.
	CodeBadSource = "bad_source"
	// CodeBadVerilog covers inline Verilog that does not parse or map. 422.
	CodeBadVerilog = "bad_verilog"
	// CodeBadActivity covers malformed activity blocks: factors out of
	// [0, 1], a VCD combined with explicit factors, an empty block, an
	// unparseable VCD, or inputs that match no circuit input. 422.
	CodeBadActivity = "bad_activity"
)

// Source is the discriminated circuit source of a v1 submit: exactly one
// of Circuit, Bench or Verilog must be set.
type Source struct {
	// Circuit names a built-in Table I benchmark.
	Circuit string `json:"circuit,omitempty"`
	// Bench is inline ISCAS89 .bench source.
	Bench string `json:"bench,omitempty"`
	// Verilog is inline primitive-only structural Verilog (the
	// internal/verilog subset); it is technology-mapped server-side.
	Verilog string `json:"verilog,omitempty"`
	// Name labels an inline Bench or Verilog circuit (default "inline";
	// a Verilog module statement's own name wins). Invalid with Circuit.
	Name string `json:"name,omitempty"`
}

// Activity is the optional switching-activity annotation of a v1 submit:
// either explicit per-input factors, or a VCD to extract them from —
// never both.
type Activity struct {
	// DefaultInput is the activity of inputs not listed in Inputs and of
	// scan cells; nil means DefaultInputActivity. Pointer so 0 and
	// "unset" are distinct on the wire.
	DefaultInput *float64 `json:"default_input,omitempty"`
	// Inputs maps primary-input names to activity factors in [0, 1].
	Inputs map[string]float64 `json:"inputs,omitempty"`
	// VCD is a Value Change Dump; each matching primary input's activity
	// becomes its toggle rate in the dump, absent inputs get 0.
	VCD string `json:"vcd,omitempty"`
}

// SubmitBody is the POST /v1/jobs request body: a circuit source (the
// Source union, or the legacy flat Circuit/Bench/Name trio), an optional
// Activity annotation, and the run overrides.
type SubmitBody struct {
	// Circuit, Bench and Name are the legacy flat source fields.
	//
	// Deprecated: use Source. The flat form stays valid forever (and its
	// responses byte-identical), but cannot be combined with Source.
	Circuit string `json:"circuit,omitempty"`
	Bench   string `json:"bench,omitempty"`
	Name    string `json:"name,omitempty"`

	// Source is the discriminated circuit source.
	Source *Source `json:"source,omitempty"`
	// Activity optionally annotates the job with switching activity.
	Activity *Activity `json:"activity,omitempty"`

	// Measure selects the measurement backend ("" = server default).
	Measure string `json:"measure,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds (0 = server
	// default; clamped to the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Wait blocks the response until the job settles.
	Wait bool `json:"wait,omitempty"`
}

// Error is a v1 validation failure: the HTTP status and error-envelope
// code/message the server responds with. It implements error, so the
// client returns the same value its own pre-flight validation produced.
type Error struct {
	Status  int
	Code    string
	Message string
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Message }

func badRequest(format string, args ...any) *Error {
	return &Error{Status: http.StatusBadRequest, Code: CodeBadRequest,
		Message: fmt.Sprintf(format, args...)}
}

func unprocessable(code, format string, args ...any) *Error {
	return &Error{Status: http.StatusUnprocessableEntity, Code: code,
		Message: fmt.Sprintf(format, args...)}
}

// validMeasure reports whether m names a known measurement backend ("" is
// the server default and always valid).
func validMeasure(m string) bool {
	if m == "" {
		return true
	}
	for _, b := range scanpower.MeasureBackends() {
		if scanpower.MeasureBackend(m) == b {
			return true
		}
	}
	return false
}

// Validate checks the body against the v1 contract and returns nil or the
// exact Error the server would respond with. Checks run in the server's
// historical order so legacy bodies keep their pre-union error bytes:
// measure, then timeout, then the source rules, then the activity rules.
// Circuit-dependent checks (unknown benchmark names, Verilog that does
// not elaborate, activity inputs that name no primary input) are
// necessarily server-side and not covered here.
func (b *SubmitBody) Validate() *Error {
	if !validMeasure(b.Measure) {
		return badRequest("unknown measure backend %q", b.Measure)
	}
	if b.TimeoutMS < 0 {
		return badRequest("timeout_ms must be >= 0")
	}
	legacy := b.Circuit != "" || b.Bench != "" || b.Name != ""
	switch {
	case b.Source != nil && legacy:
		return unprocessable(CodeBadSource,
			"source cannot be combined with the legacy circuit/bench/name fields")
	case b.Source != nil:
		n := 0
		for _, set := range []bool{b.Source.Circuit != "", b.Source.Bench != "", b.Source.Verilog != ""} {
			if set {
				n++
			}
		}
		if n != 1 {
			return unprocessable(CodeBadSource,
				"exactly one of source.circuit, source.bench or source.verilog must be set")
		}
		if b.Source.Circuit != "" && b.Source.Name != "" {
			return unprocessable(CodeBadSource,
				"source.name is only valid with inline source.bench or source.verilog")
		}
	case b.Circuit != "" && b.Bench != "":
		return badRequest("exactly one of circuit or bench must be set")
	case b.Circuit == "" && b.Bench == "":
		return badRequest("one of circuit or bench must be set")
	}
	if a := b.Activity; a != nil {
		if a.VCD != "" && (a.DefaultInput != nil || len(a.Inputs) > 0) {
			return unprocessable(CodeBadActivity,
				"activity.vcd cannot be combined with explicit activity factors")
		}
		if a.VCD == "" && a.DefaultInput == nil && len(a.Inputs) == 0 {
			return unprocessable(CodeBadActivity,
				"activity block is empty: set inputs, default_input or vcd")
		}
		if a.VCD == "" {
			p := power.ActivityProfile{Default: a.defaultInput(), Inputs: a.Inputs}
			if err := p.Validate(); err != nil {
				return unprocessable(CodeBadActivity, "%s", err.Error())
			}
		}
	}
	return nil
}

// SourceKind discriminates the canonical circuit source of a valid body.
type SourceKind string

// The three circuit-source kinds.
const (
	SourceCircuit SourceKind = "circuit"
	SourceBench   SourceKind = "bench"
	SourceVerilog SourceKind = "verilog"
)

// Resolved returns the canonical (kind, payload, name) of a Validate-clean
// body, folding the legacy flat fields and the union into one form.
// payload is the benchmark name for SourceCircuit and the source text
// otherwise; name is the inline circuit's label, defaulted to DefaultName.
func (b *SubmitBody) Resolved() (kind SourceKind, payload, name string) {
	name = b.Name
	if b.Source != nil {
		name = b.Source.Name
	}
	if name == "" {
		name = DefaultName
	}
	switch {
	case b.Source != nil && b.Source.Circuit != "":
		return SourceCircuit, b.Source.Circuit, ""
	case b.Source != nil && b.Source.Bench != "":
		return SourceBench, b.Source.Bench, name
	case b.Source != nil:
		return SourceVerilog, b.Source.Verilog, name
	case b.Circuit != "":
		return SourceCircuit, b.Circuit, ""
	default:
		return SourceBench, b.Bench, name
	}
}

// defaultInput resolves the block's default activity factor.
func (a *Activity) defaultInput() float64 {
	if a.DefaultInput != nil {
		return *a.DefaultInput
	}
	return DefaultInputActivity
}

// Profile resolves a Validate-clean activity block into the engine's
// profile form. piNames are the target circuit's primary-input names; an
// explicit factor naming no input, or a VCD matching no input, is a
// CodeBadActivity error — silently dropping a typo'd input name would
// weight the wrong thing.
func (a *Activity) Profile(piNames []string) (*power.ActivityProfile, *Error) {
	known := make(map[string]bool, len(piNames))
	for _, n := range piNames {
		known[n] = true
	}
	if a.VCD != "" {
		sigs, err := vcd.ReadActivity(strings.NewReader(a.VCD))
		if err != nil {
			return nil, unprocessable(CodeBadActivity, "%s", err.Error())
		}
		inputs := make(map[string]float64)
		for name, v := range sigs {
			if known[name] {
				inputs[name] = v
			}
		}
		if len(inputs) == 0 {
			return nil, unprocessable(CodeBadActivity,
				"activity.vcd names no primary input of the circuit")
		}
		// Inputs absent from the dump never switched in it.
		return &power.ActivityProfile{Source: "vcd", Default: 0, Inputs: inputs}, nil
	}
	var unknown []string
	for name := range a.Inputs {
		if !known[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, unprocessable(CodeBadActivity,
			"activity.inputs name no primary input: %s", strings.Join(unknown, ", "))
	}
	p := &power.ActivityProfile{Source: "profile", Default: a.defaultInput()}
	if len(a.Inputs) > 0 {
		p.Inputs = make(map[string]float64, len(a.Inputs))
		for name, v := range a.Inputs {
			p.Inputs[name] = v
		}
	}
	return p, nil
}

// Benchmark is one structured entry of the GET /v1/benchmarks response.
type Benchmark struct {
	Name string `json:"name"`
	// Gates, ScanCells and Chains are the circuit's published statistics:
	// combinational gate count, scan-chain flip-flops, and scan chains
	// (the Table I experiments use a single chain).
	Gates     int `json:"gates"`
	ScanCells int `json:"scan_cells"`
	Chains    int `json:"chains"`
}

// BenchmarksResponse is the GET /v1/benchmarks body: structured entries,
// plus the historical bare name array under "names".
type BenchmarksResponse struct {
	Benchmarks []Benchmark `json:"benchmarks"`
	Names      []string    `json:"names"`
}

// Envelope is the {"error": {...}} body of every non-2xx response.
type Envelope struct {
	Error EnvelopeBody `json:"error"`
}

// EnvelopeBody carries the machine code and human message of an error.
type EnvelopeBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}
