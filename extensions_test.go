package scanpower

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func TestCompareEnhanced(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := CompareEnhanced(context.Background(), c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Full isolation is the dynamic floor: nothing moves during shifting
	// except capture boundaries, so it must be at or below the proposed
	// structure's dynamic power.
	if cmp.Enhanced.DynamicPerHz > cmp.Proposed.DynamicPerHz*1.001 {
		t.Errorf("enhanced dynamic %v above proposed %v",
			cmp.Enhanced.DynamicPerHz, cmp.Proposed.DynamicPerHz)
	}
	// But it pays for it in clock period, which the proposed structure
	// never does (that is the paper's argument).
	if cmp.ProposedMuxes < cmp.FFs && cmp.DelayPenaltyPS <= 0 {
		t.Errorf("enhanced scan penalty %v ps with %d/%d selective muxes",
			cmp.DelayPenaltyPS, cmp.ProposedMuxes, cmp.FFs)
	}
}

func TestStudyReorderingTraditional(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	st, err := StudyReordering(context.Background(), c, DefaultConfig(), "traditional")
	if err != nil {
		t.Fatal(err)
	}
	if st.Baseline.Cycles == 0 {
		t.Fatal("no measurement")
	}
	// Greedy pattern reordering must not increase traditional-scan
	// dynamic power on this workload (it minimizes exactly the loaded-
	// state Hamming tour the shifting replays).
	if st.PatternsReordered.DynamicPerHz > st.Baseline.DynamicPerHz*1.05 {
		t.Errorf("pattern reordering hurt: %v -> %v",
			st.Baseline.DynamicPerHz, st.PatternsReordered.DynamicPerHz)
	}
	if st.BestDynamicGain() <= 0 {
		t.Errorf("no reordering combination improved dynamic power (best gain %.2f%%)",
			st.BestDynamicGain())
	}
}

func TestStudyReorderingProposedStillWins(t *testing.T) {
	// Even with the best reordering applied to traditional scan, the
	// proposed structure (unreordered) should remain far ahead on this
	// FF-rich circuit — reordering is a complement, not a substitute.
	c, err := Benchmark("s382")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	trad, err := StudyReordering(context.Background(), c, cfg, "traditional")
	if err != nil {
		t.Fatal(err)
	}
	prop, err := StudyReordering(context.Background(), c, cfg, "proposed")
	if err != nil {
		t.Fatal(err)
	}
	bestTrad := trad.Baseline.DynamicPerHz
	for _, r := range []float64{trad.PatternsReordered.DynamicPerHz,
		trad.ChainReordered.DynamicPerHz, trad.Both.DynamicPerHz} {
		if r < bestTrad {
			bestTrad = r
		}
	}
	if prop.Baseline.DynamicPerHz >= bestTrad {
		t.Errorf("proposed %v should beat best-reordered traditional %v",
			prop.Baseline.DynamicPerHz, bestTrad)
	}
}

func TestStudyReorderingRejectsUnknownStructure(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StudyReordering(context.Background(), c, DefaultConfig(), "bogus"); err == nil {
		t.Error("accepted unknown structure")
	}
}

func TestStudyTechScalingTrend(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	points, err := StudyTechScaling(c, DefaultConfig(), 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("got %d nodes, want 5", len(points))
	}
	// The paper's motivation: the static share grows monotonically with
	// scaling and dominates at the newest node.
	for i := 1; i < len(points); i++ {
		if points[i].StaticShare <= points[i-1].StaticShare {
			t.Errorf("static share not monotone: %dnm %.3f -> %dnm %.3f",
				points[i-1].NM, points[i-1].StaticShare,
				points[i].NM, points[i].StaticShare)
		}
	}
	if last := points[len(points)-1]; last.StaticShare < 0.5 {
		t.Errorf("static should dominate at %d nm (share %.2f)", last.NM, last.StaticShare)
	}
	// And at the oldest node, dynamic still dominates at this frequency.
	if points[0].StaticShare > 0.5 {
		t.Errorf("dynamic should dominate at %d nm (share %.2f)",
			points[0].NM, points[0].StaticShare)
	}
}

func TestStudyChains(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	points, err := StudyChains(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("only %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].ShiftCycles >= points[i-1].ShiftCycles {
			t.Errorf("%d chains: cycles %d not below %d chains' %d",
				points[i].Chains, points[i].ShiftCycles,
				points[i-1].Chains, points[i-1].ShiftCycles)
		}
	}
}

func TestInsertTestPointsFunctionalTransparency(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	// Gate the three heaviest-fanout gate outputs.
	var nets []netlist.NetID
	for ni := range c.Nets {
		n := &c.Nets[ni]
		if !n.IsPI() && !n.IsPPI() && len(n.Fanout) >= 3 {
			nets = append(nets, netlist.NetID(ni))
			if len(nets) == 3 {
				break
			}
		}
	}
	if len(nets) == 0 {
		t.Skip("no high-fanout nets")
	}
	values := make([]bool, len(nets))
	values[0] = true
	plan, err := core.InsertTestPoints(c, nets, values)
	if err != nil {
		t.Fatal(err)
	}
	// With TPE=0 the gated netlist must compute the original functions.
	sa, sb := sim.New(c), sim.New(plan.Circuit)
	rng := rand.New(rand.NewSource(31))
	pi := make([]bool, len(c.PIs))
	ppi := make([]bool, c.NumFFs())
	piB := make([]bool, len(plan.Circuit.PIs))
	for trial := 0; trial < 300; trial++ {
		sim.RandomVector(rng, pi)
		sim.RandomVector(rng, ppi)
		copy(piB, pi)
		piB[plan.TPEIndex] = false
		stA := sa.Eval(pi, ppi)
		stB := sb.Eval(piB, ppi)
		for fi := range c.FFs {
			if stA[c.FFs[fi].D] != stB[plan.Circuit.FFs[fi].D] {
				t.Fatalf("trial %d: next state of flop %d differs with TPE=0", trial, fi)
			}
		}
		for _, po := range c.POs {
			name := c.Nets[po].Name
			pb, ok := plan.Circuit.NetByName(name)
			if !ok {
				t.Fatalf("PO %s missing", name)
			}
			if stA[po] != stB[pb] {
				t.Fatalf("trial %d: PO %s differs with TPE=0", trial, name)
			}
		}
	}
}

func TestInsertTestPointsValidation(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.InsertTestPoints(c, []netlist.NetID{0}, []bool{true, false}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := core.InsertTestPoints(c, []netlist.NetID{c.PIs[0]}, []bool{false}); err == nil {
		t.Error("accepted gating a primary input")
	}
	someGate := c.Gates[0].Output
	if _, err := core.InsertTestPoints(c, []netlist.NetID{someGate, someGate}, []bool{false, false}); err == nil {
		t.Error("accepted duplicate net")
	}
}

func TestStudyTestPoints(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	st, err := StudyTestPoints(c, DefaultConfig(), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if st.BasePeakPerHz <= 0 {
		t.Fatal("no base peak")
	}
	if st.FinalPeakPerHz > st.LimitPerHz*1.0001 && st.Points < 1 {
		t.Errorf("limit missed with no points: %+v", st)
	}
	if st.Points > 0 {
		if st.FinalPeakPerHz > st.LimitPerHz*1.0001 {
			t.Logf("limit not reached even with %d points (final %v > limit %v)",
				st.Points, st.FinalPeakPerHz, st.LimitPerHz)
		}
		if st.DelayPenaltyPS < 0 {
			t.Errorf("negative delay penalty %v", st.DelayPenaltyPS)
		}
	}
	if _, err := StudyTestPoints(c, DefaultConfig(), 0); err == nil {
		t.Error("accepted bad fraction")
	}
}
