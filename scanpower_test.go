package scanpower

import (
	"context"
	"strings"
	"testing"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/techmap"
)

func TestCompareOnS344(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(context.Background(), c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Patterns == 0 {
		t.Fatal("no test patterns")
	}
	if cmp.FaultCoverage < 0.6 {
		t.Errorf("coverage %.2f implausibly low", cmp.FaultCoverage)
	}
	// The headline shape of Table I: the proposed structure reduces both
	// dynamic and static power versus traditional scan.
	if cmp.DynImprovementVsTraditional() <= 0 {
		t.Errorf("dynamic improvement %.2f%% not positive", cmp.DynImprovementVsTraditional())
	}
	if cmp.StaticImprovementVsTraditional() <= 0 {
		t.Errorf("static improvement %.2f%% not positive", cmp.StaticImprovementVsTraditional())
	}
	// And beats the input-control baseline on dynamic power.
	if cmp.DynImprovementVsInputControl() <= 0 {
		t.Errorf("dynamic improvement vs input control %.2f%% not positive",
			cmp.DynImprovementVsInputControl())
	}
	if !strings.Contains(cmp.Row(), "s344") {
		t.Error("row misses circuit name")
	}
	if len(TableHeader()) == 0 {
		t.Error("empty header")
	}
}

func TestCompareRejectsUnmapped(t *testing.T) {
	c, err := ParseBench("INPUT(a)\nINPUT(b)\nOUTPUT(o)\nq = DFF(d)\nd = AND(a, q)\no = AND(b, q)\n", "unmapped")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(context.Background(), c, DefaultConfig()); err == nil {
		t.Fatal("Compare accepted an unmapped circuit")
	}
	m, err := Prepare(c)
	if err != nil {
		t.Fatal(err)
	}
	if !techmap.IsMapped(m, 4) {
		t.Fatal("Prepare did not map")
	}
	if _, err := Compare(context.Background(), m, DefaultConfig()); err != nil {
		t.Fatalf("Compare rejected mapped circuit: %v", err)
	}
}

func TestBenchmarkNames(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 12 || names[0] != "s344" || names[11] != "s9234" {
		t.Errorf("BenchmarkNames = %v", names)
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Error("Benchmark accepted unknown name")
	}
}

// TestCoverageUnaffectedByDFT demonstrates the paper's claim "fault
// coverage is not affected by this method": the test set generated for
// the original circuit achieves the same coverage on the reordered
// proposed circuit (the netlist actually used in measurement).
func TestCoverageUnaffectedByDFT(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	res, err := atpg.Generate(c, cfg.ATPG)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Build(c, cfg.Proposed)
	if err != nil {
		t.Fatal(err)
	}
	covOrig := atpg.CoverageOf(c, res.Patterns)
	covDFT := atpg.CoverageOf(sol.Circuit, res.Patterns)
	if covDFT < covOrig-1e-9 {
		t.Errorf("coverage dropped: %.4f -> %.4f", covOrig, covDFT)
	}
}

func TestWriteTableSmoke(t *testing.T) {
	var sb strings.Builder
	if err := WriteTable(context.Background(), &sb, []string{"s344"}, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Circuit") || !strings.Contains(out, "s344") {
		t.Errorf("table output malformed:\n%s", out)
	}
}

func TestLoadBenchMissingFile(t *testing.T) {
	if _, err := LoadBench("/nonexistent/file.bench"); err == nil {
		t.Error("LoadBench accepted missing file")
	}
}

func TestNewTableRendering(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(context.Background(), c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable("Table I", []*Comparison{cmp})
	var md, csvOut strings.Builder
	if err := tab.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if err := tab.CSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{md.String(), csvOut.String()} {
		if !strings.Contains(out, "s344") {
			t.Errorf("rendering misses circuit name:\n%s", out)
		}
	}
	if len(cmp.Cells()) != len(TableColumns()) {
		t.Error("cells/columns mismatch")
	}
}
