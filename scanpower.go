// Package scanpower is the public API of this repository: a complete
// reproduction of "Simultaneous Reduction of Dynamic and Static Power in
// Scan Structures" (Sharifi, Jaffari, Hosseinabady, Afzali-Kusha, Navabi —
// DATE 2005).
//
// The package glues the substrates together into the paper's experiment:
//
//	circuit (parsed .bench or generated ISCAS89 profile)
//	  → technology mapping to the NAND/NOR/INV 45 nm library
//	  → ATPG (stuck-at PODEM + fault simulation + compaction)
//	  → three scan structures:
//	      traditional scan,
//	      input control (Huang & Lee, TCAD 2001),
//	      the proposed MUX + leakage-observability-directed blocking
//	  → per-structure dynamic (µW/Hz) and static (µW) scan-mode power
//
// Compare produces one row of the paper's Table I; see cmd/tableone for
// the whole table and EXPERIMENTS.md for measured-vs-paper results.
//
// # Context-first API
//
// Every long-running entry point is context-first — Compare, WriteTable,
// CompareEnhanced and StudyReordering here, plus the Engine methods — and
// cancellation and deadlines reach down into the hot loops (ATPG's
// random-pattern and PODEM phases, the justification search, scan-mode
// measurement), so a hung or oversized circuit aborts cleanly with ctx's
// error. Pass context.Background() when no cancellation is needed. See
// README's "v1 API" table for the stable surface; the pre-v1
// CompareContext/WriteTableContext aliases are gone.
//
// # Engine
//
// Engine is the scalable way to run many experiments: a GOMAXPROCS-bounded
// worker pool (Run / RunAll / Engine.WriteTable) with a shared, memoized
// ATPG layer keyed by frozen-circuit fingerprint, so Compare,
// CompareEnhanced and StudyReordering on the same circuit generate
// patterns exactly once. Hooks expose per-stage wall time, pattern counts
// and PODEM backtrack counters.
package scanpower

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/iscas"
	"repro/internal/leakage"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/scan"
	"repro/internal/techmap"
	"repro/internal/timing"
)

// MeasureBackend selects the scan-power measurement kernel used for the
// three per-structure measurement stages.
type MeasureBackend string

const (
	// MeasurePacked is the 64-way bit-parallel kernel
	// (power.MeasureScanPacked) — the default, bit-identical to the serial
	// kernels and typically an order of magnitude faster.
	MeasurePacked MeasureBackend = "packed"
	// MeasureFast is the event-driven serial kernel
	// (power.MeasureScanFast).
	MeasureFast MeasureBackend = "fast"
	// MeasureDense is the full per-cycle re-evaluation kernel
	// (power.MeasureScan) — the reference the others are tested against.
	MeasureDense MeasureBackend = "dense"
)

// measure dispatches to the selected kernel; the zero value means
// MeasurePacked so existing literal Configs keep working.
func (b MeasureBackend) measure(ch scan.Runner, pats []scan.Pattern, cfg scan.ShiftConfig,
	lm *leakage.Model, cm power.CapModel, opts power.MeasureOptions) (power.Report, error) {
	switch b {
	case "", MeasurePacked:
		return power.MeasureScanPackedOpts(ch, pats, cfg, lm, cm, opts)
	case MeasureFast:
		return power.MeasureScanFastOpts(ch, pats, cfg, lm, cm, opts)
	case MeasureDense:
		return power.MeasureScanOpts(ch, pats, cfg, lm, cm, opts)
	default:
		return power.Report{}, fmt.Errorf("scanpower: unknown measure backend %q", b)
	}
}

// MeasureBackends lists the valid Config.Measure values.
func MeasureBackends() []MeasureBackend {
	return []MeasureBackend{MeasurePacked, MeasureFast, MeasureDense}
}

// MCBackend selects the Monte-Carlo kernel backend used inside the
// structure builds — the leakage-observability estimate and the
// minimum-leakage don't-care fill. Both backends are bit-identical for
// the same seeds (the packed kernels draw the scalar random stream and
// fold in the scalar accumulation order), so like Config.Measure this is
// purely a performance/debugging knob: Table I rows do not change with
// it.
type MCBackend string

const (
	// MCPacked runs both Monte-Carlo loops on the 64-way bit-parallel
	// simulators across a worker pool — the default.
	MCPacked MCBackend = "packed"
	// MCScalar runs the serial reference kernels (one vector at a time).
	MCScalar MCBackend = "scalar"
)

// MCBackends lists the valid Config.MC values.
func MCBackends() []MCBackend {
	return []MCBackend{MCPacked, MCScalar}
}

// Config bundles every model and tuning knob of the experiment. The zero
// value is not usable; start from DefaultConfig.
type Config struct {
	// ATPG tunes pattern generation. Generate's effort is scaled down
	// automatically for very large circuits unless ScaleATPG is false.
	ATPG      atpg.Options
	ScaleATPG bool
	// Measure selects the scan-power measurement kernel; the zero value
	// and MeasurePacked mean the bit-parallel kernel. All backends produce
	// bit-identical Reports, so this is purely a performance/debugging
	// knob.
	Measure MeasureBackend
	// MC selects the Monte-Carlo kernel backend of the structure builds;
	// the zero value keeps whatever Proposed.MC / InputControl.MC say
	// (which itself defaults to packed), a non-zero value overrides both.
	// All backends produce bit-identical solutions.
	MC MCBackend
	// Lanes sets the batch width of every packed kernel in the experiment
	// — scan-power measurement, the Monte-Carlo build loops, and ATPG's
	// compaction fault simulation. The zero value keeps the per-component
	// settings (ATPG.Lanes, Proposed.Lanes, InputControl.Lanes), which
	// themselves default to sim.WideLanes = 256; a non-zero value
	// overrides all of them. Like Measure and MC this is purely a
	// throughput knob: every kernel is bit-identical at every supported
	// width (64 or 256).
	Lanes int
	// Proposed and InputControl configure the two engineered structures.
	Proposed     core.Options
	InputControl core.Options
	// Activity, when non-nil, turns on activity-weighted accounting: the
	// per-input switching activities are propagated as transition
	// densities through each structure's logic and reported alongside the
	// simulated Table I columns (Comparison.Activity), together with the
	// weighted-transition metric of the test set. Activity never changes
	// the simulated columns or the generated patterns.
	Activity *power.ActivityProfile
	// Leak, Cap and Delay are the shared electrical models.
	Leak  *leakage.Model
	Cap   power.CapModel
	Delay timing.DelayModel
}

// DefaultConfig returns the configuration used for all reported
// experiments.
func DefaultConfig() Config {
	leak := leakage.Default()
	cap := power.DefaultCapModel()
	delay := timing.Default()
	prop := core.ProposedOptions()
	prop.Leak, prop.Cap, prop.Delay = leak, cap, delay
	ic := core.InputControlOptions()
	ic.Leak, ic.Cap, ic.Delay = leak, cap, delay
	return Config{
		ATPG:         atpg.DefaultOptions(),
		ScaleATPG:    true,
		Measure:      MeasurePacked,
		MC:           MCPacked,
		Proposed:     prop,
		InputControl: ic,
		Leak:         leak,
		Cap:          cap,
		Delay:        delay,
	}
}

// Comparison is one row of Table I: the three structures measured on one
// circuit with the same test set.
type Comparison struct {
	Circuit  string
	Stats    netlist.Stats
	Patterns int
	// FaultCoverage of the generated test set (identical across the three
	// structures: the modification never touches capture behaviour).
	FaultCoverage float64

	Traditional  power.Report
	InputControl power.Report
	Proposed     power.Report

	ProposedStats     core.Stats
	InputControlStats core.Stats

	// MuxOverheadUW is the scan-mode leakage of the inserted MUX cells
	// themselves (reported separately; Table I counts the combinational
	// part).
	MuxOverheadUW float64

	// Activity holds the activity-weighted extension columns; nil unless
	// Config.Activity was set.
	Activity *ActivityResult
}

// ActivityResult extends a Comparison with activity-weighted figures: the
// stimulus-independent dynamic-power estimate of each structure under the
// submitted switching-activity profile, plus the weighted-transition
// metric (Sankaralingam) of the shared test set — the scan-power
// estimator "Power Management during Scan Based Sequential Circuit
// Testing" evaluates shift power with.
type ActivityResult struct {
	// Source is where the profile came from: "profile" (explicit factors)
	// or "vcd" (extracted from a dump).
	Source string
	// DefaultInput is the activity applied to unlisted inputs and scan
	// cells.
	DefaultInput float64
	// Inputs echoes the per-input activity factors the job resolved to.
	Inputs map[string]float64
	// WTMTotal is the weighted transition metric summed over the test
	// set, for the scan-in order of the traditional chain; WTMPerPattern
	// is its per-pattern mean.
	WTMTotal      int
	WTMPerPattern float64
	// TraditionalWeightedPerHz, InputControlWeightedPerHz and
	// ProposedWeightedPerHz are the activity-weighted dynamic estimates
	// per structure, in µW/Hz like the simulated columns.
	TraditionalWeightedPerHz  float64
	InputControlWeightedPerHz float64
	ProposedWeightedPerHz     float64
}

// DynImprovementVsTraditional returns the Table I "Improvement Compared
// with Traditional Scan (%) / Dynamic" entry.
func (c *Comparison) DynImprovementVsTraditional() float64 {
	return power.Improvement(c.Traditional.DynamicPerHz, c.Proposed.DynamicPerHz)
}

// StaticImprovementVsTraditional returns the static counterpart.
func (c *Comparison) StaticImprovementVsTraditional() float64 {
	return power.Improvement(c.Traditional.StaticUW, c.Proposed.StaticUW)
}

// DynImprovementVsInputControl returns the Table I "Improvement Compared
// With Input Control (%) / Dynamic" entry.
func (c *Comparison) DynImprovementVsInputControl() float64 {
	return power.Improvement(c.InputControl.DynamicPerHz, c.Proposed.DynamicPerHz)
}

// StaticImprovementVsInputControl returns the static counterpart.
func (c *Comparison) StaticImprovementVsInputControl() float64 {
	return power.Improvement(c.InputControl.StaticUW, c.Proposed.StaticUW)
}

// Compare runs the full Table I experiment on the frozen circuit c, which
// must already be mapped to the library (use Prepare). ctx reaches the
// ATPG phases, the structure builds and the power measurement, so the
// experiment aborts promptly with ctx's error when cancelled. Matching
// failures wrap ErrNotMapped.
func Compare(ctx context.Context, c *netlist.Circuit, cfg Config) (*Comparison, error) {
	return compareWith(ctx, c, cfg, directPatterns(cfg, Hooks{}), Hooks{})
}

// compareWith is the shared Table I pipeline: gen supplies the patterns
// (the Engine's memoized layer, or the direct generator), hooks observe
// the measurement stages.
func compareWith(ctx context.Context, c *netlist.Circuit, cfg Config,
	gen patternSource, hooks Hooks) (*Comparison, error) {

	if !techmap.IsMapped(c, 4) {
		return nil, fmt.Errorf("scanpower: circuit %s: %w; call Prepare", c.Name, ErrNotMapped)
	}
	// scaledATPG keeps the deterministic phase affordable on the big
	// circuits: lean on random patterns, cap PODEM effort per fault and
	// in total (PODEM re-implies the full cone per decision).
	res, err := gen(ctx, c)
	if err != nil {
		return nil, fmt.Errorf("scanpower: ATPG: %w", err)
	}

	cmp := &Comparison{
		Circuit:       c.Name,
		Stats:         c.ComputeStats(),
		Patterns:      len(res.Patterns),
		FaultCoverage: res.Coverage(),
	}
	// mopts is the per-stage measurement options with the experiment's
	// lane width applied.
	mopts := func(stage string) power.MeasureOptions {
		m := hooks.measureOptions(ctx, c.Name, stage)
		m.Lanes = cfg.Lanes
		return m
	}
	// stage runs one structure's build+measure under a guaranteed
	// start/done pair: the done callback fires on the error paths too
	// (with Failed set), so span accounting stays balanced however the
	// experiment ends.
	stage := func(name string, body func() error) error {
		hooks.stageStart(c.Name, name)
		start := time.Now()
		err := body()
		hooks.stageDone(c.Name, name, time.Since(start),
			StageInfo{Patterns: len(res.Patterns), Failed: err != nil})
		return err
	}

	// Traditional scan.
	if err := stage(StageTraditional, func() error {
		var err error
		cmp.Traditional, err = cfg.Measure.measure(scan.New(c), res.Patterns, scan.Traditional(c),
			cfg.Leak, cfg.Cap, mopts(StageTraditional))
		return err
	}); err != nil {
		return nil, err
	}

	// Input-control baseline.
	var icSol *core.Solution
	if err := stage(StageInputControl, func() error {
		icOpts := cfg.InputControl
		icOpts.Observe = hooks.coreObserver(c.Name, StageInputControl)
		if cfg.MC != "" {
			icOpts.MC = core.MCBackend(cfg.MC)
		}
		if cfg.Lanes != 0 {
			icOpts.Lanes = cfg.Lanes
		}
		var err error
		icSol, err = core.BuildContext(ctx, c, icOpts)
		if err != nil {
			return fmt.Errorf("scanpower: input-control build: %w", err)
		}
		cmp.InputControlStats = icSol.Stats
		cmp.InputControl, err = cfg.Measure.measure(scan.New(icSol.Circuit), res.Patterns, icSol.Cfg,
			cfg.Leak, cfg.Cap, mopts(StageInputControl))
		return err
	}); err != nil {
		return nil, err
	}

	// Proposed structure.
	var sol *core.Solution
	if err := stage(StageProposed, func() error {
		propOpts := cfg.Proposed
		propOpts.Observe = hooks.coreObserver(c.Name, StageProposed)
		if cfg.MC != "" {
			propOpts.MC = core.MCBackend(cfg.MC)
		}
		if cfg.Lanes != 0 {
			propOpts.Lanes = cfg.Lanes
		}
		var err error
		sol, err = core.BuildContext(ctx, c, propOpts)
		if err != nil {
			return fmt.Errorf("scanpower: proposed build: %w", err)
		}
		cmp.ProposedStats = sol.Stats
		cmp.Proposed, err = cfg.Measure.measure(scan.New(sol.Circuit), res.Patterns, sol.Cfg,
			cfg.Leak, cfg.Cap, mopts(StageProposed))
		return err
	}); err != nil {
		return nil, err
	}
	cmp.MuxOverheadUW = cfg.Leak.PowerUW(sol.MuxScanLeakNA(cfg.Leak))

	if cfg.Activity != nil {
		// Activity-weighted extension columns. The WTM uses the scan-in
		// order of the traditional chain (scan.New's flop order), shared
		// by every structure: the test set never changes across them.
		order := make([]int, c.NumFFs())
		for i := range order {
			order[i] = i
		}
		wtm := power.TestSetWTM(res.Patterns, order)
		ar := &ActivityResult{
			Source:       cfg.Activity.Source,
			DefaultInput: cfg.Activity.Default,
			Inputs:       cfg.Activity.Inputs,
			WTMTotal:     wtm,
		}
		if n := len(res.Patterns); n > 0 {
			ar.WTMPerPattern = float64(wtm) / float64(n)
		}
		// Traditional scan blocks nothing; the engineered structures only
		// count the nets their shift configuration leaves toggling.
		ar.TraditionalWeightedPerHz = cfg.Cap.WeightedDynamicPerHz(c, cfg.Activity)
		ar.InputControlWeightedPerHz = cfg.Cap.WeightedDynamicPerHzOn(icSol.Circuit, cfg.Activity, icSol.Trans)
		ar.ProposedWeightedPerHz = cfg.Cap.WeightedDynamicPerHzOn(sol.Circuit, cfg.Activity, sol.Trans)
		cmp.Activity = ar
	}
	return cmp, nil
}

// Prepare maps an arbitrary parsed circuit onto the NAND/NOR/INV library
// used by the experiments.
func Prepare(c *netlist.Circuit) (*netlist.Circuit, error) {
	return techmap.Map(c, techmap.DefaultOptions())
}

// LoadBench parses an ISCAS89 .bench file from disk. Parse failures wrap
// ErrBadBench.
func LoadBench(path string) (*netlist.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), ".bench")
	c, err := bench.Parse(f, name)
	if err != nil {
		return nil, fmt.Errorf("scanpower: %w: %w", ErrBadBench, err)
	}
	return c, nil
}

// ParseBench parses .bench source text. Parse failures wrap ErrBadBench.
func ParseBench(src, name string) (*netlist.Circuit, error) {
	c, err := bench.ParseString(src, name)
	if err != nil {
		return nil, fmt.Errorf("scanpower: %w: %w", ErrBadBench, err)
	}
	return c, nil
}

// Benchmark generates (deterministically) the synthetic stand-in for one
// of the twelve Table I ISCAS89 circuits, already library-mapped.
func Benchmark(name string) (*netlist.Circuit, error) {
	p, ok := iscas.ByName(name)
	if !ok {
		return nil, fmt.Errorf("scanpower: %w: %q", ErrUnknownBenchmark, name)
	}
	return iscas.Generate(p)
}

// BenchmarkNames lists the Table I circuits in the paper's order.
func BenchmarkNames() []string {
	names := make([]string, len(iscas.Profiles))
	for i, p := range iscas.Profiles {
		names[i] = p.Name
	}
	return names
}

// TableHeader returns the Table I column header for WriteRow output.
func TableHeader() string {
	return fmt.Sprintf("%-8s %12s %10s %12s %10s %12s %10s %8s %8s %8s %8s",
		"Circuit",
		"Trad dyn/f", "Trad stat",
		"IC dyn/f", "IC stat",
		"Prop dyn/f", "Prop stat",
		"dyn%T", "stat%T", "dyn%IC", "stat%IC")
}

// Row renders the comparison as one Table I row.
func (c *Comparison) Row() string {
	return fmt.Sprintf("%-8s %12.3e %10.2f %12.3e %10.2f %12.3e %10.2f %8.2f %8.2f %8.2f %8.2f",
		c.Circuit,
		c.Traditional.DynamicPerHz, c.Traditional.StaticUW,
		c.InputControl.DynamicPerHz, c.InputControl.StaticUW,
		c.Proposed.DynamicPerHz, c.Proposed.StaticUW,
		c.DynImprovementVsTraditional(), c.StaticImprovementVsTraditional(),
		c.DynImprovementVsInputControl(), c.StaticImprovementVsInputControl())
}

// WriteTable runs Compare over the named benchmarks and streams rows to w,
// strictly sequentially, stopping at the first circuit whose experiment
// returns ctx's error. Engine.WriteTable is the parallel equivalent and
// emits byte-identical output.
func WriteTable(ctx context.Context, w io.Writer, names []string, cfg Config) error {
	if _, err := fmt.Fprintln(w, TableHeader()); err != nil {
		return err
	}
	for _, name := range names {
		c, err := Benchmark(name)
		if err != nil {
			return err
		}
		cmp, err := Compare(ctx, c, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if _, err := fmt.Fprintln(w, cmp.Row()); err != nil {
			return err
		}
	}
	return nil
}

// TableColumns lists the Table I column headers used by NewTable.
func TableColumns() []string {
	return []string{"Circuit",
		"Trad dyn (uW/Hz)", "Trad static (uW)",
		"IC dyn (uW/Hz)", "IC static (uW)",
		"Prop dyn (uW/Hz)", "Prop static (uW)",
		"dyn% vs Trad", "stat% vs Trad", "dyn% vs IC", "stat% vs IC"}
}

// Cells renders the comparison as Table I cells (matching TableColumns).
func (c *Comparison) Cells() []string {
	f := func(v float64) string { return fmt.Sprintf("%.3e", v) }
	p := func(v float64) string { return fmt.Sprintf("%.2f", v) }
	return []string{c.Circuit,
		f(c.Traditional.DynamicPerHz), p(c.Traditional.StaticUW),
		f(c.InputControl.DynamicPerHz), p(c.InputControl.StaticUW),
		f(c.Proposed.DynamicPerHz), p(c.Proposed.StaticUW),
		p(c.DynImprovementVsTraditional()), p(c.StaticImprovementVsTraditional()),
		p(c.DynImprovementVsInputControl()), p(c.StaticImprovementVsInputControl())}
}

// NewTable assembles comparisons into a report.Table ready for text,
// Markdown or CSV rendering.
func NewTable(title string, cmps []*Comparison) *report.Table {
	t := report.New(title, TableColumns()...)
	for _, c := range cmps {
		t.MustAddRow(c.Cells()...)
	}
	return t
}
