package scanpower

// Whole-flow property tests over randomly generated circuits: for many
// synthetic designs of varying shape, the full proposed flow must hold
// its contracts — critical path preserved, declared-quiet nets provably
// constant, coverage unaffected, measurement sane.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/power"
	"repro/internal/scan"
	"repro/internal/sim"
	"repro/internal/timing"
)

// randomProfiles builds a spread of small random circuit profiles.
func randomProfiles(n int, seed int64) []iscas.Profile {
	rng := rand.New(rand.NewSource(seed))
	out := make([]iscas.Profile, n)
	for i := range out {
		ffs := 2 + rng.Intn(12)
		pos := 1 + rng.Intn(6)
		out[i] = iscas.Profile{
			Name:  fmt.Sprintf("rnd%d", i),
			PIs:   1 + rng.Intn(10),
			POs:   pos,
			FFs:   ffs,
			Gates: ffs + pos + 20 + rng.Intn(120),
			Seed:  rng.Int63(),
		}
	}
	return out
}

func TestFlowInvariantsOnRandomCircuits(t *testing.T) {
	cfg := DefaultConfig()
	for _, p := range randomProfiles(12, 77) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			c, err := iscas.Generate(p)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			sol, err := core.Build(c, cfg.Proposed)
			if err != nil {
				t.Fatalf("build: %v", err)
			}

			// 1. Timing contract: materialized DFT keeps the critical path.
			dft, err := core.InsertMuxes(c, sol.Cfg.Muxed, sol.Cfg.MuxVal)
			if err != nil {
				t.Fatalf("insert: %v", err)
			}
			before := timing.Analyze(c, cfg.Delay).Critical
			after := timing.Analyze(dft, cfg.Delay).Critical
			if after > before+1e-9 {
				t.Errorf("critical path grew: %v -> %v", before, after)
			}

			// 2. Blocking soundness: quiet nets never move.
			checkQuietNets(t, sol)

			// 3. Measurement sanity + dynamic no worse than traditional.
			res, err := atpg.Generate(c, cfg.ATPG)
			if err != nil {
				t.Fatalf("atpg: %v", err)
			}
			if len(res.Patterns) == 0 {
				t.Skip("no testable faults in this random circuit")
			}
			trad, err := power.MeasureScan(scan.New(c), res.Patterns, scan.Traditional(c), cfg.Leak, cfg.Cap)
			if err != nil {
				t.Fatal(err)
			}
			prop, err := power.MeasureScan(scan.New(sol.Circuit), res.Patterns, sol.Cfg, cfg.Leak, cfg.Cap)
			if err != nil {
				t.Fatal(err)
			}
			if prop.DynamicPerHz > trad.DynamicPerHz*1.001 {
				t.Errorf("proposed dynamic %v above traditional %v",
					prop.DynamicPerHz, trad.DynamicPerHz)
			}
			if prop.StaticUW <= 0 || trad.StaticUW <= 0 {
				t.Error("non-positive static power")
			}

			// 4. Coverage unaffected on the measured (reordered) circuit.
			covA := atpg.CoverageOf(c, res.Patterns)
			covB := atpg.CoverageOf(sol.Circuit, res.Patterns)
			if covB+1e-9 < covA {
				t.Errorf("coverage dropped %v -> %v", covA, covB)
			}
		})
	}
}

func checkQuietNets(t *testing.T, sol *core.Solution) {
	t.Helper()
	w := sol.Circuit
	s := sim.New(w)
	rng := rand.New(rand.NewSource(5))
	pi := make([]bool, len(w.PIs))
	for i := range pi {
		pi[i] = sol.Cfg.PIHold[i] == logic.One
	}
	ppi := make([]bool, w.NumFFs())
	var ref []bool
	for trial := 0; trial < 64; trial++ {
		for f := 0; f < w.NumFFs(); f++ {
			if sol.Cfg.Muxed[f] {
				ppi[f] = sol.Cfg.MuxVal[f]
			} else {
				ppi[f] = rng.Intn(2) == 1
			}
		}
		st := s.Eval(pi, ppi)
		if trial == 0 {
			ref = append([]bool(nil), st...)
			continue
		}
		for n := range st {
			if !sol.Trans[n] && st[n] != ref[n] {
				t.Fatalf("net %s declared quiet but toggled", w.Nets[n].Name)
			}
		}
	}
}
