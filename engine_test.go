package scanpower

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// engineTestNames are small Table I circuits, kept few so the parallel
// tests stay fast.
var engineTestNames = []string{"s344", "s382", "s444", "s510"}

// TestEngineDeterminism: Engine.WriteTable with an oversubscribed worker
// pool must emit byte-identical Table I rows to the sequential WriteTable
// — the per-circuit experiments are independent and seed-deterministic.
func TestEngineDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	var seq strings.Builder
	if err := WriteTable(context.Background(), &seq, engineTestNames, cfg); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(cfg)
	eng.Workers = 8
	var par strings.Builder
	if err := eng.WriteTable(context.Background(), &par, engineTestNames); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("parallel table differs from sequential:\n--- sequential ---\n%s--- parallel (j=8) ---\n%s",
			seq.String(), par.String())
	}
}

// TestEngineCancellation: cancelling mid-run must abort promptly with
// context.Canceled, including circuits whose ATPG/build is in flight.
func TestEngineCancellation(t *testing.T) {
	eng := NewEngine(DefaultConfig())
	eng.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	// s9234 is the largest profile; sequentially this run takes far
	// longer than the cancellation bound below.
	names := []string{"s9234", "s5378", "s1423", "s1238"}

	type outcome struct {
		cmps []*Comparison
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		cmps, err := eng.RunAll(ctx, names)
		done <- outcome{cmps, err}
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case o := <-done:
		if o.err == nil {
			t.Fatal("RunAll returned no error after cancellation")
		}
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("RunAll error = %v, want context.Canceled", o.err)
		}
		if o.cmps != nil {
			t.Error("RunAll returned results alongside an error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunAll did not return within 30s of cancellation")
	}
	if waited := time.Since(start); waited > 15*time.Second {
		t.Errorf("cancellation took %v to propagate", waited)
	}
}

// TestEngineRunStreams exercises the streaming surface: every name yields
// exactly one Result, indices restore input order, progress fires per
// circuit.
func TestEngineRunStreams(t *testing.T) {
	eng := NewEngine(DefaultConfig())
	eng.Workers = 4
	var mu sync.Mutex
	progress := 0
	eng.Hooks.OnProgress = func(circuit string, done, total int) {
		mu.Lock()
		progress++
		mu.Unlock()
		if total != len(engineTestNames) {
			t.Errorf("OnProgress total = %d, want %d", total, len(engineTestNames))
		}
	}
	ch, err := eng.Run(context.Background(), engineTestNames)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for r := range ch {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if seen[r.Index] {
			t.Fatalf("duplicate result for index %d", r.Index)
		}
		seen[r.Index] = true
		if r.Name != engineTestNames[r.Index] || r.Comparison.Circuit != r.Name {
			t.Errorf("result %d: name %q, comparison %q, want %q",
				r.Index, r.Name, r.Comparison.Circuit, engineTestNames[r.Index])
		}
	}
	if len(seen) != len(engineTestNames) {
		t.Errorf("got %d results, want %d", len(seen), len(engineTestNames))
	}
	mu.Lock()
	defer mu.Unlock()
	if progress != len(engineTestNames) {
		t.Errorf("OnProgress fired %d times, want %d", progress, len(engineTestNames))
	}
}

// TestEngineCacheHit: the second Compare of the same circuit — and the
// extension studies after it — must perform zero ATPG work, observed both
// through the Hooks counters and CacheStats.
func TestEngineCacheHit(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(DefaultConfig())
	var mu sync.Mutex
	var atpgStarts int
	var atpgInfos []StageInfo
	eng.Hooks = Hooks{
		OnStageStart: func(circuit, stage string) {
			if stage == StageATPG {
				mu.Lock()
				atpgStarts++
				mu.Unlock()
			}
		},
		OnStageDone: func(circuit, stage string, elapsed time.Duration, info StageInfo) {
			if stage == StageATPG {
				mu.Lock()
				atpgInfos = append(atpgInfos, info)
				mu.Unlock()
			}
		},
	}
	ctx := context.Background()
	first, err := eng.Compare(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Compare(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	if first.Patterns != second.Patterns || first.Traditional != second.Traditional {
		t.Error("cached run disagrees with fresh run")
	}
	// A regenerated circuit with identical structure must also hit.
	c2, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CompareEnhanced(ctx, c2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.StudyReordering(ctx, c2, "proposed"); err != nil {
		t.Fatal(err)
	}

	// Start/done pairs must balance even for cache-served stages: every
	// OnStageDone (one generation + three hits) had a matching
	// OnStageStart.
	if atpgStarts != 4 {
		t.Errorf("ATPG start events = %d, want 4 (one per done event)", atpgStarts)
	}
	if len(atpgInfos) != 4 {
		t.Fatalf("got %d ATPG stage reports, want 4", len(atpgInfos))
	}
	if atpgInfos[0].CacheHit || atpgInfos[0].Backtracks == 0 {
		t.Errorf("first ATPG stage = %+v, want a miss with backtrack work", atpgInfos[0])
	}
	for i, info := range atpgInfos[1:] {
		if !info.CacheHit || info.Backtracks != 0 {
			t.Errorf("ATPG stage %d = %+v, want a zero-work cache hit", i+1, info)
		}
		if info.Patterns != atpgInfos[0].Patterns {
			t.Errorf("cached stage %d reports %d patterns, want %d",
				i+1, info.Patterns, atpgInfos[0].Patterns)
		}
	}
	if hits, misses := eng.CacheStats(); hits != 3 || misses != 1 {
		t.Errorf("CacheStats = (%d hits, %d misses), want (3, 1)", hits, misses)
	}
}

// TestComparePreCancelled: an already-dead context must abort before any
// work happens.
func TestComparePreCancelled(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Compare(ctx, c, DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Errorf("Compare error = %v, want context.Canceled", err)
	}
	var sb strings.Builder
	if err := WriteTable(ctx, &sb, []string{"s344"}, DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Errorf("WriteTable error = %v, want context.Canceled", err)
	}
}

// Typed-error satellites: the sentinels must be reachable via errors.Is
// through the public entry points' wrapping.
func TestErrNotMapped(t *testing.T) {
	c, err := ParseBench("INPUT(a)\nINPUT(b)\nOUTPUT(o)\nq = DFF(d)\nd = AND(a, q)\no = AND(b, q)\n", "unmapped")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compare(context.Background(), c, DefaultConfig())
	if !errors.Is(err, ErrNotMapped) {
		t.Errorf("Compare(unmapped) error = %v, want ErrNotMapped", err)
	}
}

func TestErrUnknownBenchmark(t *testing.T) {
	_, err := Benchmark("s0000")
	if !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("Benchmark error = %v, want ErrUnknownBenchmark", err)
	}
	if err == nil || !strings.Contains(err.Error(), "s0000") {
		t.Errorf("error %v does not name the offending benchmark", err)
	}
}
