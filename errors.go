package scanpower

import "errors"

// Sentinel errors of the public API. They are always returned wrapped
// (with circuit or benchmark context), so match with errors.Is.
var (
	// ErrNotMapped reports a circuit that has not been mapped to the
	// NAND/NOR/INV library; call Prepare first.
	ErrNotMapped = errors.New("circuit is not mapped to the NAND/NOR/INV library")
	// ErrUnknownBenchmark reports a name outside the twelve Table I
	// profiles; see BenchmarkNames.
	ErrUnknownBenchmark = errors.New("unknown benchmark")
	// ErrBadBench reports unparseable .bench input to LoadBench or
	// ParseBench. The wrapped chain keeps the parser's detailed error
	// (line number and message) alongside this sentinel.
	ErrBadBench = errors.New("malformed .bench input")
)
