package scanpower

// Round-trip coverage for the Verilog source path: a Table I circuit
// written out as structural Verilog and parsed back must fingerprint
// stably across repeated parses and produce the same Table I comparison
// as the native generated netlist. This is the contract the source-union
// API relies on: a client submitting the Verilog form of a design gets
// the same experiment as one submitting the equivalent .bench.

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/techmap"
	"repro/internal/verilog"
)

// roundTrip writes c as Verilog and parses it back, preparing the result
// for measurement if the parse did not land in the mapped library.
func roundTrip(t *testing.T, name string) (src string, parse func() uint64, compare func() *Comparison) {
	t.Helper()
	c, err := Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := verilog.Write(&buf, c); err != nil {
		t.Fatalf("Write(%s): %v", name, err)
	}
	src = buf.String()

	parseOnce := func() (fp uint64, cmp *Comparison) {
		p, err := verilog.ParseString(src, name)
		if err != nil {
			t.Fatalf("ParseString(%s): %v", name, err)
		}
		if !techmap.IsMapped(p, 4) {
			if p, err = Prepare(p); err != nil {
				t.Fatalf("Prepare(%s): %v", name, err)
			}
		}
		fp = p.Fingerprint()
		res, err := Compare(context.Background(), p, DefaultConfig())
		if err != nil {
			t.Fatalf("Compare(%s round trip): %v", name, err)
		}
		return fp, res
	}
	parse = func() uint64 { fp, _ := parseOnce(); return fp }
	compare = func() *Comparison { _, cmp := parseOnce(); return cmp }
	return src, parse, compare
}

// TestVerilogRoundTripFingerprintStable checks that parsing the same
// emitted Verilog source repeatedly is deterministic: identical source
// bytes must always resolve to the identical content fingerprint, since
// that fingerprint keys job coalescing and the persistent store.
func TestVerilogRoundTripFingerprintStable(t *testing.T) {
	for _, name := range []string{"s344", "s1196", "s1423"} {
		_, parse, _ := roundTrip(t, name)
		first := parse()
		if first == 0 {
			t.Fatalf("%s: zero fingerprint", name)
		}
		for i := 0; i < 2; i++ {
			if again := parse(); again != first {
				t.Fatalf("%s: fingerprint drifted across parses: %016x != %016x",
					name, again, first)
			}
		}
	}
}

// TestVerilogRoundTripMatchesNative checks the round-tripped circuit
// produces the same Table I comparison as the native generated netlist.
// Net renumbering through the Verilog writer/parser reorders the
// floating-point accumulations, so float fields (peak power, leakage
// means) may differ by a few ulps; every discrete field — pattern count,
// coverage counts, structure stats, circuit stats — must match exactly.
func TestVerilogRoundTripMatchesNative(t *testing.T) {
	const name = "s344"
	c, err := Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	native, err := Compare(context.Background(), c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, _, compare := roundTrip(t, name)
	rt := compare()
	equalWithinUlps(t, "Comparison", reflect.ValueOf(*native), reflect.ValueOf(*rt))
}

// equalWithinUlps walks two values of the same type: float64 leaves may
// differ by at most 64 ulps (summation-order noise), everything else
// must be identical.
func equalWithinUlps(t *testing.T, path string, a, b reflect.Value) {
	t.Helper()
	switch a.Kind() {
	case reflect.Float64, reflect.Float32:
		if ulps := ulpDistance(a.Float(), b.Float()); ulps > 64 {
			t.Errorf("%s differs by %d ulps: %v vs %v", path, ulps, a.Float(), b.Float())
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			equalWithinUlps(t, path+"."+a.Type().Field(i).Name, a.Field(i), b.Field(i))
		}
	case reflect.Pointer:
		if a.IsNil() != b.IsNil() {
			t.Errorf("%s: nil mismatch", path)
			return
		}
		if !a.IsNil() {
			equalWithinUlps(t, path, a.Elem(), b.Elem())
		}
	case reflect.Slice, reflect.Array:
		if a.Len() != b.Len() {
			t.Errorf("%s: length %d vs %d", path, a.Len(), b.Len())
			return
		}
		for i := 0; i < a.Len(); i++ {
			equalWithinUlps(t, fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i))
		}
	default:
		if !reflect.DeepEqual(a.Interface(), b.Interface()) {
			t.Errorf("%s: %v vs %v", path, a.Interface(), b.Interface())
		}
	}
}

// ulpDistance returns how many representable float64 values apart a and
// b are (0 when bit-identical).
func ulpDistance(a, b float64) uint64 {
	ab, bb := math.Float64bits(a), math.Float64bits(b)
	// Map the sign-magnitude bit patterns onto a monotone integer line.
	if ab>>63 != 0 {
		ab = ^ab
	} else {
		ab |= 1 << 63
	}
	if bb>>63 != 0 {
		bb = ^bb
	} else {
		bb |= 1 << 63
	}
	if ab > bb {
		return ab - bb
	}
	return bb - ab
}
