package scanpower

import (
	"fmt"
	"time"

	"sync"

	"repro/internal/telemetry"
)

// Metric families emitted by Recorder. Label sets: stage ∈ {atpg,
// traditional, input-control, proposed}, outcome ∈ {detected, untestable,
// aborted, skipped}, result ∈ {success, fail}.
const (
	MetricStageSeconds     = "scanpower_stage_seconds"    // histogram{stage}
	MetricSubStageSeconds  = "scanpower_substage_seconds" // histogram{stage,sub}
	MetricCacheHits        = "scanpower_atpg_cache_hits_total"
	MetricCacheMisses      = "scanpower_atpg_cache_misses_total"
	MetricPodemFaults      = "scanpower_podem_faults_total" // counter{outcome}
	MetricPodemBacktracks  = "scanpower_podem_backtracks"   // histogram
	MetricJustify          = "scanpower_justify_total"      // counter{result}
	MetricJustifyBacktrack = "scanpower_justify_backtracks" // histogram
	MetricObsSamples       = "scanpower_obs_samples_total"
	MetricPatterns         = "scanpower_patterns_measured_total"
	MetricCircuitsDone     = "scanpower_circuits_done_total"
	// MetricPackedLanes counts scan cycles evaluated by the bit-parallel
	// measurement kernel (64 per full batch); serial backends leave it 0.
	MetricPackedLanes = "scanpower_power_packed_lanes_total"
	// MetricATPGFaultSimLanes counts pattern lanes evaluated by the
	// packed fault-dropping passes of the ATPG stage ("drop" buffer
	// flushes plus "compact" compaction chunks).
	MetricATPGFaultSimLanes = "scanpower_atpg_faultsim_lanes_total"
	// MetricMCLanes counts Monte-Carlo lanes (observability vectors plus
	// fill trials) evaluated by the packed MC kernels inside the structure
	// builds; the scalar MC backend leaves it 0.
	MetricMCLanes = "scanpower_mc_packed_lanes_total"
)

// Recorder bridges Hooks to the telemetry substrate: it aggregates the
// callback stream into registry metrics, emits the run → circuit → stage
// → sub-stage span hierarchy to a TraceWriter, and accumulates the
// per-circuit stage record a run manifest embeds. Either sink may be nil:
// a nil registry drops metrics, a nil trace writer drops spans, and the
// manifest record is kept regardless.
//
// Use it by merging its Hooks into an Engine (or compare call):
//
//	rec := scanpower.NewRecorder(reg, tw)
//	eng.Hooks = scanpower.MergeHooks(progressHooks, rec.Hooks())
//	... run ...
//	rec.Close()
//	m := rec.Manifest("tableone")
//
// All methods are safe for concurrent use by Engine workers.
type Recorder struct {
	reg   *telemetry.Registry
	tw    *telemetry.TraceWriter
	run   *telemetry.Span
	start time.Time

	// Pre-resolved hot-path handles (single atomic op per event).
	cacheHits, cacheMisses *telemetry.Counter
	podemByOutcome         map[string]*telemetry.Counter
	podemBacktracks        *telemetry.Histogram
	justifyOK, justifyFail *telemetry.Counter
	justifyBacktracks      *telemetry.Histogram
	obsSamples             *telemetry.Counter
	patterns               *telemetry.Counter
	circuitsDone           *telemetry.Counter
	packedLanes            *telemetry.Counter
	mcLanes                *telemetry.Counter
	faultSimLanes          *telemetry.Counter

	mu       sync.Mutex
	circuits map[string]*circuitRecord
	done     []telemetry.CircuitManifest
}

// circuitRecord is the in-flight state of one circuit: its open span, the
// stacked open stage spans (keyed by stage name — pairs always balance,
// but ATPG may run under another circuit's worker via the shared cache),
// and the accumulating manifest entry.
type circuitRecord struct {
	span     *telemetry.Span
	stages   map[string][]*telemetry.Span
	manifest telemetry.CircuitManifest
}

// NewRecorder returns a Recorder feeding reg and tw (either may be nil)
// and opens the root "run" span.
func NewRecorder(reg *telemetry.Registry, tw *telemetry.TraceWriter) *Recorder {
	r := &Recorder{
		reg:   reg,
		tw:    tw,
		start: time.Now(),

		cacheHits:   reg.Counter(MetricCacheHits),
		cacheMisses: reg.Counter(MetricCacheMisses),
		podemByOutcome: map[string]*telemetry.Counter{
			"detected":   reg.Counter(MetricPodemFaults + `{outcome="detected"}`),
			"untestable": reg.Counter(MetricPodemFaults + `{outcome="untestable"}`),
			"aborted":    reg.Counter(MetricPodemFaults + `{outcome="aborted"}`),
			"skipped":    reg.Counter(MetricPodemFaults + `{outcome="skipped"}`),
		},
		podemBacktracks:   reg.Histogram(MetricPodemBacktracks, telemetry.DefCountBuckets),
		justifyOK:         reg.Counter(MetricJustify + `{result="success"}`),
		justifyFail:       reg.Counter(MetricJustify + `{result="fail"}`),
		justifyBacktracks: reg.Histogram(MetricJustifyBacktrack, telemetry.DefCountBuckets),
		obsSamples:        reg.Counter(MetricObsSamples),
		patterns:          reg.Counter(MetricPatterns),
		circuitsDone:      reg.Counter(MetricCircuitsDone),
		packedLanes:       reg.Counter(MetricPackedLanes),
		mcLanes:           reg.Counter(MetricMCLanes),
		faultSimLanes:     reg.Counter(MetricATPGFaultSimLanes),

		circuits: make(map[string]*circuitRecord),
	}
	r.run = tw.Start("run", nil)
	return r
}

// Hooks returns the callback set feeding this Recorder; merge it with any
// other hooks via MergeHooks.
func (r *Recorder) Hooks() Hooks {
	return Hooks{
		OnStageStart:    r.onStageStart,
		OnStageDone:     r.onStageDone,
		OnProgress:      r.onProgress,
		OnSubStage:      r.onSubStage,
		OnPodemFault:    r.onPodemFault,
		OnJustify:       r.onJustify,
		OnObsSamples:    r.onObsSamples,
		OnPattern:       r.onPattern,
		OnMeasureBatch:  r.onMeasureBatch,
		OnMCBatch:       r.onMCBatch,
		OnFaultSimBatch: r.onFaultSimBatch,
		OnPodemChunk:    r.onPodemChunk,
	}
}

// circuit returns (creating on first touch) the in-flight record, opening
// the circuit span lazily under the run span. Callers hold r.mu.
func (r *Recorder) circuit(name string) *circuitRecord {
	cr, ok := r.circuits[name]
	if !ok {
		cr = &circuitRecord{
			span:   r.run.Start(name, map[string]any{"kind": "circuit"}),
			stages: make(map[string][]*telemetry.Span),
		}
		cr.manifest.Name = name
		r.circuits[name] = cr
	}
	return cr
}

func (r *Recorder) onStageStart(circuit, stage string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cr := r.circuit(circuit)
	s := cr.span.Start(stage, nil)
	cr.stages[stage] = append(cr.stages[stage], s)
}

func (r *Recorder) onStageDone(circuit, stage string, elapsed time.Duration, info StageInfo) {
	r.reg.Histogram(fmt.Sprintf(MetricStageSeconds+`{stage=%q}`, stage), nil).
		Observe(elapsed.Seconds())
	if stage == StageATPG {
		if info.CacheHit {
			r.cacheHits.Inc()
		} else {
			r.cacheMisses.Inc()
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	cr := r.circuit(circuit)
	if st := cr.stages[stage]; len(st) > 0 {
		s := st[len(st)-1]
		cr.stages[stage] = st[:len(st)-1]
		s.End(stageAttrs(info))
	}
	cr.manifest.Stages = append(cr.manifest.Stages, telemetry.StageManifest{
		Stage:      stage,
		WallNS:     elapsed.Nanoseconds(),
		Patterns:   info.Patterns,
		Backtracks: info.Backtracks,
		CacheHit:   info.CacheHit,
	})
}

func stageAttrs(info StageInfo) map[string]any {
	attrs := map[string]any{"patterns": info.Patterns}
	if info.Backtracks > 0 {
		attrs["backtracks"] = info.Backtracks
	}
	if info.CacheHit {
		attrs["cache_hit"] = true
	}
	if info.Failed {
		attrs["failed"] = true
	}
	return attrs
}

// onMeasureBatch counts bit-parallel lanes and, when tracing, emits one
// completed span per packed batch under the owning stage span.
func (r *Recorder) onMeasureBatch(circuit, stage string, lanes int, elapsed time.Duration) {
	r.packedLanes.Add(int64(lanes))
	if r.tw == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cr := r.circuit(circuit)
	parent := cr.span
	if st := cr.stages[stage]; len(st) > 0 {
		parent = st[len(st)-1]
	}
	parent.Completed("measure-batch", elapsed, map[string]any{"stage": stage, "lanes": lanes})
}

// onMCBatch counts packed Monte-Carlo lanes and, when tracing, emits one
// completed span per batch under the owning stage span, tagged with the
// kernel kind ("obs" or "fill").
func (r *Recorder) onMCBatch(circuit, stage, kind string, lanes int, elapsed time.Duration) {
	r.mcLanes.Add(int64(lanes))
	if r.tw == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cr := r.circuit(circuit)
	parent := cr.span
	if st := cr.stages[stage]; len(st) > 0 {
		parent = st[len(st)-1]
	}
	parent.Completed("mc-batch", elapsed, map[string]any{
		"stage": stage, "kind": kind, "lanes": lanes,
	})
}

// onFaultSimBatch counts packed fault-simulation lanes and, when tracing,
// emits one completed span per fault-dropping pass under the ATPG stage
// span, tagged with the pass kind ("drop" or "compact").
func (r *Recorder) onFaultSimBatch(circuit, kind string, lanes int, elapsed time.Duration) {
	r.faultSimLanes.Add(int64(lanes))
	if r.tw == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cr := r.circuit(circuit)
	parent := cr.span
	if st := cr.stages[StageATPG]; len(st) > 0 {
		parent = st[len(st)-1]
	}
	parent.Completed("faultsim-batch", elapsed, map[string]any{
		"stage": StageATPG, "kind": kind, "lanes": lanes,
	})
}

// onPodemChunk emits one completed span per fault-parallel PODEM chunk
// under the ATPG stage span. It arrives concurrently from scheduler
// workers; r.mu makes it safe like every other handler.
func (r *Recorder) onPodemChunk(circuit string, start, n int, elapsed time.Duration) {
	if r.tw == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cr := r.circuit(circuit)
	parent := cr.span
	if st := cr.stages[StageATPG]; len(st) > 0 {
		parent = st[len(st)-1]
	}
	parent.Completed("podem-chunk", elapsed, map[string]any{
		"stage": StageATPG, "start": start, "faults": n,
	})
}

func (r *Recorder) onSubStage(circuit, stage, sub string, elapsed time.Duration, info StageInfo) {
	r.reg.Histogram(fmt.Sprintf(MetricSubStageSeconds+`{stage=%q,sub=%q}`, stage, sub), nil).
		Observe(elapsed.Seconds())
	if r.tw == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cr := r.circuit(circuit)
	parent := cr.span
	if st := cr.stages[stage]; len(st) > 0 {
		parent = st[len(st)-1]
	}
	parent.Completed(sub, elapsed, map[string]any{"stage": stage})
}

func (r *Recorder) onPodemFault(_ string, info PodemFaultInfo) {
	if c, ok := r.podemByOutcome[info.Outcome]; ok {
		c.Inc()
	}
	r.podemBacktracks.Observe(float64(info.Backtracks))
}

func (r *Recorder) onJustify(_ string, info JustifyInfo) {
	if info.Success {
		r.justifyOK.Inc()
	} else {
		r.justifyFail.Inc()
	}
	r.justifyBacktracks.Observe(float64(info.Backtracks))
}

func (r *Recorder) onObsSamples(_ string, samples int) {
	r.obsSamples.Add(int64(samples))
}

func (r *Recorder) onPattern(_, _ string, _ int) {
	r.patterns.Inc()
}

// onProgress closes the circuit's span and moves its stage record to the
// finished list. Circuits run outside an Engine (no progress feed) are
// flushed by Close instead.
func (r *Recorder) onProgress(circuit string, _, _ int) {
	r.FinishCircuit(circuit)
}

// FinishCircuit closes the named circuit's open span and moves its stage
// record to the finished manifest list. Engine runs do this through the
// progress feed; long-running callers that invoke Engine.Compare directly
// per job — the scanpowerd service — call it after each job so the span
// tree stays balanced without waiting for Close. Unknown names are a
// no-op for the span but still count a completed circuit.
func (r *Recorder) FinishCircuit(circuit string) {
	r.circuitsDone.Inc()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finishLocked(circuit)
}

func (r *Recorder) finishLocked(circuit string) {
	cr, ok := r.circuits[circuit]
	if !ok {
		return
	}
	delete(r.circuits, circuit)
	for _, st := range cr.stages { // unbalanced stage spans (cancelled run)
		for _, s := range st {
			s.End(map[string]any{"aborted": true})
		}
	}
	cr.span.End(map[string]any{"stages": len(cr.manifest.Stages)})
	r.done = append(r.done, cr.manifest)
}

// CircuitError records a per-circuit failure in the manifest. Call it for
// Engine Results carrying an error (the hook feed has no error channel).
func (r *Recorder) CircuitError(circuit string, err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cr, ok := r.circuits[circuit]; ok {
		cr.manifest.Err = err.Error()
		return
	}
	for i := range r.done {
		if r.done[i].Name == circuit {
			r.done[i].Err = err.Error()
			return
		}
	}
	r.done = append(r.done, telemetry.CircuitManifest{Name: circuit, Err: err.Error()})
}

// Close flushes any circuits still open (runs without a progress feed, or
// cancelled mid-circuit) and ends the run span. Idempotent.
func (r *Recorder) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name := range r.circuits {
		r.finishLocked(name)
	}
	if r.run != nil {
		r.run.End(map[string]any{"circuits": len(r.done)})
		r.run = nil
	}
}

// Manifest assembles the run manifest from everything recorded so far:
// environment stamp, per-circuit stage timings in completion order, and
// the registry snapshot. Call after Close (open circuits are not
// included). Config and Results are left for the caller to attach.
func (r *Recorder) Manifest(label string) *telemetry.Manifest {
	m := telemetry.NewManifest(label)
	m.WallNS = time.Since(r.start).Nanoseconds()
	m.Counters = r.reg.Snapshot()
	r.mu.Lock()
	m.Circuits = append([]telemetry.CircuitManifest(nil), r.done...)
	r.mu.Unlock()
	return m
}
