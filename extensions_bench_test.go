package scanpower

// Benchmarks for the extension experiments (the studies the paper defers
// or argues against): enhanced-scan full isolation and pattern/scan-cell
// reordering. Reported metrics carry the measured values.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/atpg"
	"repro/internal/power"
	"repro/internal/scan"
)

func BenchmarkExtensionEnhancedScan(b *testing.B) {
	c := benchCircuit(b, "s344")
	cfg := DefaultConfig()
	var cmp *EnhancedComparison
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err = CompareEnhanced(context.Background(), c, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.Proposed.DynamicPerHz*1e9, "prop_dyn_nW/GHz")
	b.ReportMetric(cmp.Enhanced.DynamicPerHz*1e9, "enh_dyn_nW/GHz")
	b.ReportMetric(cmp.DelayPenaltyPS, "enh_delay_ps")
	b.ReportMetric(float64(cmp.ProposedMuxes), "prop_muxes")
}

func BenchmarkExtensionReordering(b *testing.B) {
	for _, structure := range []string{"traditional", "proposed"} {
		b.Run(structure, func(b *testing.B) {
			c := benchCircuit(b, "s344")
			cfg := DefaultConfig()
			var st *ReorderingStudy
			var err error
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err = StudyReordering(context.Background(), c, cfg, structure)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(st.Baseline.DynamicPerHz*1e9, "base_dyn_nW/GHz")
			b.ReportMetric(st.PatternsReordered.DynamicPerHz*1e9, "patord_dyn_nW/GHz")
			b.ReportMetric(st.ChainReordered.DynamicPerHz*1e9, "chainord_dyn_nW/GHz")
			b.ReportMetric(st.Both.DynamicPerHz*1e9, "both_dyn_nW/GHz")
			b.ReportMetric(st.BestDynamicGain(), "best_gain_%")
		})
	}
}

func BenchmarkExtensionPeakPower(b *testing.B) {
	c := benchCircuit(b, "s344")
	cfg := DefaultConfig()
	var cmp *Comparison
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err = Compare(context.Background(), c, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.Traditional.PeakDynamicPerHz*1e9, "trad_peak_nW/GHz")
	b.ReportMetric(cmp.Proposed.PeakDynamicPerHz*1e9, "prop_peak_nW/GHz")
}

// BenchmarkExtensionTechScaling reports the static share of traditional
// scan power per technology node (the paper's motivating trend) at a
// 100 MHz shift clock.
func BenchmarkExtensionTechScaling(b *testing.B) {
	c := benchCircuit(b, "s344")
	cfg := DefaultConfig()
	var pts []TechScalingPoint
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err = StudyTechScaling(c, cfg, 100e6)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.StaticShare*100, fmt.Sprintf("static_share_%dnm_%%", p.NM))
	}
}

// BenchmarkExtensionXFill compares don't-care fill strategies for the
// deterministic patterns: minimum-transition (adjacent) fill vs random
// fill, measured as traditional-scan dynamic power — the classic
// low-power-ATPG lever, orthogonal to the paper's structure.
func BenchmarkExtensionXFill(b *testing.B) {
	c := benchCircuit(b, "s344")
	cfg := DefaultConfig()
	var dynRandom, dynAdjacent float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, mode := range []atpg.FillMode{atpg.FillRandom, atpg.FillAdjacent} {
			opts := cfg.ATPG
			opts.Fill = mode
			opts.MaxRandomPatterns = 0 // deterministic patterns only
			res, err := atpg.Generate(c, opts)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := power.MeasureScan(scan.New(c), res.Patterns, scan.Traditional(c), cfg.Leak, cfg.Cap)
			if err != nil {
				b.Fatal(err)
			}
			if mode == atpg.FillRandom {
				dynRandom = rep.DynamicPerHz
			} else {
				dynAdjacent = rep.DynamicPerHz
			}
		}
	}
	b.ReportMetric(dynRandom*1e9, "randomfill_dyn_nW/GHz")
	b.ReportMetric(dynAdjacent*1e9, "mtfill_dyn_nW/GHz")
	b.ReportMetric(power.Improvement(dynRandom, dynAdjacent), "mtfill_gain_%")
}

// BenchmarkExtensionMultiChain reports test time (shift cycles) across
// chain counts for the proposed structure.
func BenchmarkExtensionMultiChain(b *testing.B) {
	c := benchCircuit(b, "s344")
	cfg := DefaultConfig()
	var pts []ChainStudyPoint
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err = StudyChains(c, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(float64(p.ShiftCycles), fmt.Sprintf("cycles_%dchains", p.Chains))
	}
}

// BenchmarkExtensionTestPoints reproduces the [6]-style peak-power
// control baseline: how many gated lines it takes to cut traditional
// scan's peak to 60%, and the clock-period price — both costs the
// proposed structure avoids.
func BenchmarkExtensionTestPoints(b *testing.B) {
	c := benchCircuit(b, "s344")
	cfg := DefaultConfig()
	var st *TestPointStudy
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err = StudyTestPoints(c, cfg, 0.6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.Points), "points")
	b.ReportMetric(st.BasePeakPerHz*1e9, "base_peak_nW/GHz")
	b.ReportMetric(st.FinalPeakPerHz*1e9, "final_peak_nW/GHz")
	b.ReportMetric(st.DelayPenaltyPS, "delay_penalty_ps")
}
