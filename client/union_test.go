package client

// Tests of the typed source union and activity block on the client side:
// the shared validator runs before any request is sent, the deprecated
// flat fields conflict with the union, and an annotated job's result
// carries the activity columns end to end.

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/api"
	"repro/internal/service"
)

const s27Verilog = `module s27v (G0, G1, G2, G3, G17);
  input G0, G1, G2, G3;
  output G17;
  wire G5, G6, G7, G8, G9, G10, G11, G12, G13, G14, G15, G16;
  dff d1 (G5, G10);
  dff d2 (G6, G11);
  dff d3 (G7, G13);
  not n1 (G14, G0);
  not n2 (G17, G11);
  and a1 (G8, G14, G6);
  or o1 (G15, G12, G8);
  or o2 (G16, G3, G8);
  nand na1 (G9, G16, G15);
  nor no1 (G10, G14, G11);
  nor no2 (G11, G5, G9);
  nor no3 (G12, G1, G7);
  nor no4 (G13, G2, G12);
endmodule
`

// TestClientSideValidation checks the shared validator fires before any
// HTTP round trip: the endpoint here refuses connections, so a request
// that reaches the wire fails with ErrNoEndpoints, not a typed 4xx.
func TestClientSideValidation(t *testing.T) {
	cl, err := New([]string{deadEndpoint(t)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := cl.Submit(ctx, SubmitRequest{
		Circuit: "s344", Source: &api.Source{Circuit: "s344"},
	}); !errors.Is(err, ErrConflictingSource) || !errors.Is(err, ErrBadSource) {
		t.Errorf("conflicting forms error = %v", err)
	}
	if _, err := cl.Submit(ctx, SubmitRequest{Source: &api.Source{}}); !errors.Is(err, ErrBadSource) {
		t.Errorf("empty union error = %v", err)
	}
	if _, err := cl.Submit(ctx, SubmitRequest{
		Source:   &api.Source{Circuit: "s344"},
		Activity: &api.Activity{},
	}); !errors.Is(err, ErrBadActivity) {
		t.Errorf("empty activity error = %v", err)
	}
	bad := 1.5
	if _, err := cl.Submit(ctx, SubmitRequest{
		Source:   &api.Source{Circuit: "s344"},
		Activity: &api.Activity{DefaultInput: &bad},
	}); !errors.Is(err, ErrBadActivity) {
		t.Errorf("out-of-range factor error = %v", err)
	}
	var apiErr *APIError
	if _, err := cl.Submit(ctx, SubmitRequest{Source: &api.Source{}}); !errors.As(err, &apiErr) ||
		apiErr.Status != http.StatusUnprocessableEntity || apiErr.Code != "bad_source" {
		t.Errorf("client-side validation should yield the server's envelope shape, got %v", err)
	}
}

// TestUnionSubmitEndToEnd runs a Verilog source with an activity profile
// through a real service and checks the typed result carries the
// weighted-transition block; server-side rejections map to the new
// sentinels.
func TestUnionSubmitEndToEnd(t *testing.T) {
	srv := newService(t, service.Options{})
	cl, err := New([]string{srv.URL}, Options{PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	job, err := cl.Submit(ctx, SubmitRequest{
		Source:   &api.Source{Verilog: s27Verilog},
		Activity: &api.Activity{Inputs: map[string]float64{"G0": 0.9}},
		Wait:     true,
	})
	if err != nil {
		t.Fatalf("union submit: %v", err)
	}
	if job.State != "done" || job.Circuit != "s27v" {
		t.Fatalf("job = %+v", job)
	}
	cmp, _, err := cl.Result(ctx, job)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if cmp.Activity == nil {
		t.Fatal("result has no Activity block")
	}
	if cmp.Activity.Source != "profile" || cmp.Activity.Inputs["G0"] != 0.9 {
		t.Errorf("Activity = %+v", cmp.Activity)
	}
	if cmp.Activity.TraditionalWeightedPerHz <= 0 {
		t.Errorf("weighted dynamic should be positive: %+v", cmp.Activity)
	}

	// Server-side rejections that client-side validation cannot catch.
	if _, err := cl.Submit(ctx, SubmitRequest{
		Source: &api.Source{Verilog: "module m (a, y);\n input a;\n output y;\n bogus u1 (y, a);\nendmodule\n"},
	}); !errors.Is(err, ErrBadVerilog) {
		t.Errorf("bad verilog error = %v", err)
	}
	if _, err := cl.Submit(ctx, SubmitRequest{
		Source:   &api.Source{Circuit: "s344"},
		Activity: &api.Activity{Inputs: map[string]float64{"nope": 0.5}},
	}); !errors.Is(err, ErrBadActivity) {
		t.Errorf("unknown activity input error = %v", err)
	}
}
