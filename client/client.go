// Package client is the Go client for the scanpowerd v1 job API. It is
// the one place that knows the wire details — the JSON request and
// response shapes, the `{"error":{"code","message"}}` envelope, the
// Retry-After contract — so callers program against typed requests,
// typed jobs and sentinel errors instead of raw HTTP.
//
// The client is cluster-aware. It takes the full endpoint list at
// construction; submits rotate across live endpoints and fail over past
// unreachable or draining nodes, and every job remembers its owning
// node (the `node` field of the submit response, set when the cluster
// forwarded the job to its shard owner) so status polls, cancels and
// result fetches go to the daemon that actually holds the job.
//
// Typical use:
//
//	cl, _ := client.New([]string{"http://10.0.0.1:8344", "http://10.0.0.2:8344"}, client.Options{})
//	job, err := cl.Submit(ctx, client.SubmitRequest{Circuit: "s344"})
//	job, err = cl.Wait(ctx, job)
//	cmp, raw, err := cl.Result(ctx, job)
//
// Errors that originate in the server's envelope come back as an
// *APIError whose Code maps onto the package sentinels, so
// errors.Is(err, client.ErrQueueFull) works across the wire.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/api"
)

// Sentinel errors, one per server error code. Match with errors.Is
// against any error returned by this package.
var (
	ErrQueueFull        = errors.New("client: server queue is full")
	ErrDraining         = errors.New("client: server is draining")
	ErrBadRequest       = errors.New("client: request rejected")
	ErrUnknownBenchmark = errors.New("client: unknown benchmark")
	ErrBadBench         = errors.New("client: bench source rejected")
	ErrBadSource        = errors.New("client: source union rejected")
	ErrBadVerilog       = errors.New("client: verilog source rejected")
	ErrBadActivity      = errors.New("client: activity block rejected")
	ErrUnknownJob       = errors.New("client: unknown job")
	ErrNotReady         = errors.New("client: result not ready")
	ErrCanceled         = errors.New("client: job was canceled")
	ErrDeadline         = errors.New("client: job deadline exceeded")
	ErrJobFailed        = errors.New("client: job failed")
	// ErrConflictingSource reports a SubmitRequest that sets both the
	// typed Source union and the deprecated flat Circuit/Bench/Name
	// fields; pick one form. It wraps ErrBadSource, so errors.Is matches
	// either.
	ErrConflictingSource = fmt.Errorf("%w: both Source and the deprecated Circuit/Bench/Name fields are set", ErrBadSource)
	// ErrNoEndpoints reports that every configured endpoint failed at
	// the transport level (or rejected the submit as draining).
	ErrNoEndpoints = errors.New("client: no reachable endpoint")
)

// codeSentinels maps envelope codes to the package sentinels.
var codeSentinels = map[string]error{
	"queue_full":        ErrQueueFull,
	"draining":          ErrDraining,
	"bad_request":       ErrBadRequest,
	"unknown_benchmark": ErrUnknownBenchmark,
	"bad_bench":         ErrBadBench,
	"bad_source":        ErrBadSource,
	"bad_verilog":       ErrBadVerilog,
	"bad_activity":      ErrBadActivity,
	"unknown_job":       ErrUnknownJob,
	"not_ready":         ErrNotReady,
	"canceled":          ErrCanceled,
	"deadline_exceeded": ErrDeadline,
	"job_failed":        ErrJobFailed,
}

// APIError is a non-2xx response decoded from the server's error
// envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the envelope's machine-readable code ("queue_full", ...).
	Code string
	// Message is the envelope's human-readable message.
	Message string
	// RetryAfter is the parsed Retry-After header (0 if absent) — the
	// server's suggested backpressure pause.
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d %s: %s", e.Status, e.Code, e.Message)
}

// Is maps the envelope code onto the package sentinels so callers can
// errors.Is without inspecting Code themselves.
func (e *APIError) Is(target error) bool {
	s, ok := codeSentinels[e.Code]
	return ok && target == s
}

// Options configures New. The zero value is usable.
type Options struct {
	// HTTPClient overrides the transport (nil = a default client with
	// no global timeout, since wait-mode submits legitimately block for
	// the job's runtime; pass request contexts to bound calls).
	HTTPClient *http.Client
	// PollInterval is Wait's status-poll cadence (default 100ms).
	PollInterval time.Duration
}

// Client talks to one scanpowerd daemon or a cluster of them. Safe for
// concurrent use.
type Client struct {
	endpoints []string
	hc        *http.Client
	poll      time.Duration

	mu   sync.Mutex
	next int // round-robin cursor over endpoints
}

// New builds a client over the given base URLs (for example
// http://127.0.0.1:8344). At least one endpoint is required.
func New(endpoints []string, opts Options) (*Client, error) {
	var eps []string
	for _, e := range endpoints {
		if e != "" {
			eps = append(eps, e)
		}
	}
	if len(eps) == 0 {
		return nil, errors.New("client: at least one endpoint is required")
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	poll := opts.PollInterval
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	return &Client{endpoints: eps, hc: hc, poll: poll}, nil
}

// Endpoints returns the configured endpoint list.
func (c *Client) Endpoints() []string {
	out := make([]string, len(c.endpoints))
	copy(out, c.endpoints)
	return out
}

// SubmitRequest describes one job. The circuit comes from Source — a
// discriminated union over built-in names, inline .bench and inline
// Verilog — or from the deprecated flat Circuit/Bench/Name trio; setting
// both forms fails with ErrConflictingSource before any request is sent.
type SubmitRequest struct {
	// Circuit, Bench and Name are the flat source fields of the original
	// v1 submit body.
	//
	// Deprecated: use Source, which adds Verilog and keeps the three
	// variants from being set at once. The flat form stays supported
	// (the server accepts it forever) but cannot be combined with Source.
	Circuit string
	Bench   string
	Name    string
	// Source selects the circuit: exactly one of Source.Circuit (built-in
	// Table I name), Source.Bench or Source.Verilog (inline sources,
	// optionally named via Source.Name).
	Source *api.Source
	// Activity optionally annotates the job with switching activity —
	// explicit per-input factors or a VCD — and adds the weighted
	// transition metrics block to the job's result document.
	Activity *api.Activity
	// Measure selects the measurement backend ("" = server default).
	Measure string
	// Timeout bounds the job's runtime (0 = server default).
	Timeout time.Duration
	// Wait blocks the submit until the job settles.
	Wait bool
	// TraceParent, when set, joins the job to the caller's distributed
	// trace: it is sent as the X-Scanpowerd-Trace header in traceparent
	// form ("00-<32 hex trace id>-<16 hex parent span id>-01"), and the
	// server's job spans parent to it instead of minting a fresh trace.
	TraceParent string
}

// Job is the client-side view of one submitted job. It carries its
// owning node, so follow-up calls land on the right daemon.
type Job struct {
	ID      string
	Node    string // owning daemon's base URL
	TraceID string // distributed trace identity (32 hex chars)
	Circuit string
	Measure string
	State   string
	// Coalesced reports the submit attached to an existing identical job.
	Coalesced bool
	// Err is the server-reported failure message of a failed/canceled job.
	Err       string
	ResultURL string
	Created   time.Time
	Started   time.Time
	Finished  time.Time
}

// Terminal reports whether the job has settled.
func (j *Job) Terminal() bool {
	switch j.State {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// wireJob is the server's job document.
type wireJob struct {
	ID        string `json:"id"`
	Node      string `json:"node"`
	TraceID   string `json:"trace_id"`
	Circuit   string `json:"circuit"`
	Measure   string `json:"measure"`
	State     string `json:"state"`
	Coalesced bool   `json:"coalesced"`
	TimeoutMS int64  `json:"timeout_ms"`
	Error     string `json:"error"`
	Created   string `json:"created"`
	Started   string `json:"started"`
	Finished  string `json:"finished"`
	ResultURL string `json:"result_url"`
}

func parseStamp(s string) time.Time {
	t, _ := time.Parse(time.RFC3339Nano, s)
	return t
}

// job converts the wire document, defaulting the owning node to the
// endpoint that answered when the server does not advertise one
// (single-node daemons without -self).
func (w *wireJob) job(answeredBy string) *Job {
	node := w.Node
	if node == "" {
		node = answeredBy
	}
	return &Job{
		ID:        w.ID,
		Node:      node,
		TraceID:   w.TraceID,
		Circuit:   w.Circuit,
		Measure:   w.Measure,
		State:     w.State,
		Coalesced: w.Coalesced,
		Err:       w.Error,
		ResultURL: w.ResultURL,
		Created:   parseStamp(w.Created),
		Started:   parseStamp(w.Started),
		Finished:  parseStamp(w.Finished),
	}
}

// decodeError turns a non-2xx response into an *APIError.
func decodeError(resp *http.Response, body []byte) error {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	apiErr := &APIError{Status: resp.StatusCode}
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		apiErr.Code = env.Error.Code
		apiErr.Message = env.Error.Message
	} else {
		apiErr.Code = "http_" + strconv.Itoa(resp.StatusCode)
		apiErr.Message = string(bytes.TrimSpace(body))
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
		apiErr.RetryAfter = time.Duration(ra) * time.Second
	}
	return apiErr
}

// do issues one request and returns the response body, mapping non-2xx
// responses to *APIError.
func (c *Client) do(ctx context.Context, method, url string, body []byte) ([]byte, error) {
	return c.doHeaders(ctx, method, url, body, nil)
}

// doHeaders is do with extra request headers.
func (c *Client) doHeaders(ctx context.Context, method, url string, body []byte, headers map[string]string) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return nil, decodeError(resp, raw)
	}
	return raw, nil
}

// rotate returns the endpoints starting at the round-robin cursor, so
// concurrent submitters spread cold jobs across the cluster entry
// points instead of convoying on the first one.
func (c *Client) rotate() []string {
	c.mu.Lock()
	start := c.next
	c.next = (c.next + 1) % len(c.endpoints)
	c.mu.Unlock()
	out := make([]string, 0, len(c.endpoints))
	for i := 0; i < len(c.endpoints); i++ {
		out = append(out, c.endpoints[(start+i)%len(c.endpoints)])
	}
	return out
}

// Submit sends the job to the cluster, failing over past endpoints that
// are unreachable or draining. Other rejections (bad request, full
// queue) return immediately: they are authoritative answers, not node
// failures.
//
// The body is validated client-side with the same shared validator the
// server runs (repro/api), so a malformed source union or activity block
// fails as an *APIError — matching the server's envelope code and the
// package sentinels — without a round trip.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (*Job, error) {
	if req.Source != nil && (req.Circuit != "" || req.Bench != "" || req.Name != "") {
		return nil, ErrConflictingSource
	}
	wire := api.SubmitBody{
		Circuit:   req.Circuit,
		Bench:     req.Bench,
		Name:      req.Name,
		Source:    req.Source,
		Activity:  req.Activity,
		Measure:   req.Measure,
		TimeoutMS: req.Timeout.Milliseconds(),
		Wait:      req.Wait,
	}
	if verr := wire.Validate(); verr != nil {
		return nil, &APIError{Status: verr.Status, Code: verr.Code, Message: verr.Message}
	}
	body, err := json.Marshal(&wire)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	var headers map[string]string
	if req.TraceParent != "" {
		headers = map[string]string{"X-Scanpowerd-Trace": req.TraceParent}
	}
	var lastErr error
	for _, ep := range c.rotate() {
		raw, err := c.doHeaders(ctx, http.MethodPost, ep+"/v1/jobs", body, headers)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			var apiErr *APIError
			if errors.As(err, &apiErr) && apiErr.Code != "draining" {
				return nil, err
			}
			lastErr = err // transport failure or draining: try the next node
			continue
		}
		var w wireJob
		if err := json.Unmarshal(raw, &w); err != nil {
			return nil, fmt.Errorf("client: bad job document: %w", err)
		}
		return w.job(ep), nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("%w: %w", ErrNoEndpoints, lastErr)
	}
	return nil, ErrNoEndpoints
}

// jobCall issues a job-affine request against the job's owning node.
func (c *Client) jobCall(ctx context.Context, method string, j *Job, path string) (*Job, error) {
	raw, err := c.do(ctx, method, j.Node+path, nil)
	if err != nil {
		return nil, err
	}
	var w wireJob
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, fmt.Errorf("client: bad job document: %w", err)
	}
	return w.job(j.Node), nil
}

// Status fetches the job's current state from its owning node.
func (c *Client) Status(ctx context.Context, j *Job) (*Job, error) {
	return c.jobCall(ctx, http.MethodGet, j, "/v1/jobs/"+j.ID)
}

// Cancel aborts the job on its owning node and returns its state after
// the cancel.
func (c *Client) Cancel(ctx context.Context, j *Job) (*Job, error) {
	return c.jobCall(ctx, http.MethodDelete, j, "/v1/jobs/"+j.ID)
}

// Wait polls the job until it settles or ctx ends. The returned job is
// terminal; inspect State (or fetch Result, which maps failure states
// to sentinels) for the outcome.
func (c *Client) Wait(ctx context.Context, j *Job) (*Job, error) {
	if j.Terminal() {
		return j, nil
	}
	ticker := time.NewTicker(c.poll)
	defer ticker.Stop()
	for {
		cur, err := c.Status(ctx, j)
		if err != nil {
			return nil, err
		}
		if cur.Terminal() {
			return cur, nil
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return nil, fmt.Errorf("client: %w", ctx.Err())
		}
	}
}

// Result fetches the scanpower/comparison/v1 result document from the
// job's owning node, returning both the decoded comparison and the raw
// response bytes (which are canonical: byte-identical across recomputes
// and warm-start serves of the same job). Non-done jobs surface as
// ErrNotReady, ErrCanceled, ErrDeadline or ErrJobFailed.
func (c *Client) Result(ctx context.Context, j *Job) (*scanpower.Comparison, []byte, error) {
	raw, err := c.do(ctx, http.MethodGet, j.Node+"/v1/jobs/"+j.ID+"/result", nil)
	if err != nil {
		return nil, nil, err
	}
	var cmp scanpower.Comparison
	if err := json.Unmarshal(raw, &cmp); err != nil {
		return nil, nil, fmt.Errorf("client: bad result document: %w", err)
	}
	return &cmp, raw, nil
}

// Benchmarks lists the built-in Table I circuits as structured entries
// (name plus published gate/scan-cell/chain counts). BenchmarkNames
// returns the bare name list for callers that only route on names.
func (c *Client) Benchmarks(ctx context.Context) ([]api.Benchmark, error) {
	var lastErr error
	for _, ep := range c.rotate() {
		raw, err := c.do(ctx, http.MethodGet, ep+"/v1/benchmarks", nil)
		if err != nil {
			lastErr = err
			continue
		}
		var out api.BenchmarksResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			return nil, fmt.Errorf("client: %w", err)
		}
		return out.Benchmarks, nil
	}
	return nil, fmt.Errorf("%w: %w", ErrNoEndpoints, lastErr)
}

// BenchmarkNames lists the built-in circuit names (the `names` field of
// the v1 benchmarks response, which preserves the pre-structured shape).
func (c *Client) BenchmarkNames(ctx context.Context) ([]string, error) {
	entries, err := c.Benchmarks(ctx)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return names, nil
}

// StoreStatus is a daemon's persistent result store view.
type StoreStatus struct {
	Dir       string `json:"dir"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Puts      int64  `json:"puts"`
	Evictions int64  `json:"evictions"`
	Corrupt   int64  `json:"corrupt"`
}

// Health is the GET /v1/healthz document.
type Health struct {
	Status        string       `json:"status"`
	Node          string       `json:"node"`
	UptimeSec     float64      `json:"uptime_sec"`
	Version       string       `json:"version"`
	GoVersion     string       `json:"go_version"`
	Revision      string       `json:"revision"`
	QueueDepth    int          `json:"queue_depth"`
	QueueCapacity int          `json:"queue_capacity"`
	Inflight      int          `json:"inflight"`
	Workers       int          `json:"workers"`
	Jobs          int          `json:"jobs"`
	CacheHits     int64        `json:"cache_hits"`
	CacheMisses   int64        `json:"cache_misses"`
	Store         *StoreStatus `json:"store"`
}

// Health fetches one node's healthz document. A draining daemon answers
// 503 with a valid body; that is returned as a Health with Status
// "draining", not an error.
func (c *Client) Health(ctx context.Context, node string) (*Health, error) {
	raw, err := c.do(ctx, http.MethodGet, node+"/v1/healthz", nil)
	if err != nil {
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			return nil, err
		}
		// 503 healthz carries the document in place of an envelope; fall
		// through to a direct fetch of the body.
		req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/healthz", nil)
		if rerr != nil {
			return nil, err
		}
		resp, rerr := c.hc.Do(req)
		if rerr != nil {
			return nil, err
		}
		defer resp.Body.Close()
		raw, rerr = io.ReadAll(resp.Body)
		if rerr != nil {
			return nil, err
		}
	}
	var h Health
	if err := json.Unmarshal(raw, &h); err != nil {
		return nil, fmt.Errorf("client: bad healthz document: %w", err)
	}
	return &h, nil
}

// ClusterNode is one member's row in the cluster status.
type ClusterNode struct {
	Node       string `json:"node"`
	Self       bool   `json:"self"`
	Healthy    bool   `json:"healthy"`
	Draining   bool   `json:"draining"`
	Error      string `json:"error"`
	QueueDepth int    `json:"queue_depth"`
	Inflight   int    `json:"inflight"`
	Jobs       int    `json:"jobs"`
}

// ClusterStatus is the GET /v1/cluster document.
type ClusterStatus struct {
	Schema string        `json:"schema"`
	Self   string        `json:"self"`
	Nodes  []ClusterNode `json:"nodes"`
	Store  *StoreStatus  `json:"store"`
}

// ClusterStatus fetches the membership view from the first reachable
// endpoint.
func (c *Client) ClusterStatus(ctx context.Context) (*ClusterStatus, error) {
	var lastErr error
	for _, ep := range c.rotate() {
		raw, err := c.do(ctx, http.MethodGet, ep+"/v1/cluster", nil)
		if err != nil {
			lastErr = err
			continue
		}
		var cs ClusterStatus
		if err := json.Unmarshal(raw, &cs); err != nil {
			return nil, fmt.Errorf("client: bad cluster document: %w", err)
		}
		return &cs, nil
	}
	return nil, fmt.Errorf("%w: %w", ErrNoEndpoints, lastErr)
}

// Span is one finished span of a distributed trace.
type Span struct {
	SpanID string         `json:"span_id"`
	Parent string         `json:"parent_id"`
	Name   string         `json:"name"`
	Node   string         `json:"node"`
	Start  time.Time      `json:"start"`
	DurNS  int64          `json:"dur_ns"`
	Attrs  map[string]any `json:"attrs"`
}

// Trace is the GET /v1/jobs/{id}/trace document: the merged cross-node
// span tree of one job's distributed trace.
type Trace struct {
	Schema  string   `json:"schema"`
	TraceID string   `json:"trace_id"`
	JobID   string   `json:"job_id"`
	Nodes   []string `json:"nodes"`
	Spans   []Span   `json:"spans"`
}

// Trace fetches the job's merged distributed trace from its owning node,
// which pulls the remote segments (the forwarding hop's ingress span, for
// example) from its peers before merging.
func (c *Client) Trace(ctx context.Context, j *Job) (*Trace, error) {
	raw, err := c.do(ctx, http.MethodGet, j.Node+"/v1/jobs/"+j.ID+"/trace", nil)
	if err != nil {
		return nil, err
	}
	var t Trace
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("client: bad trace document: %w", err)
	}
	return &t, nil
}

// HistogramSnapshot is one histogram series in a metrics snapshot:
// sorted finite upper bounds and len(bounds)+1 bucket counts (the last
// bucket is +Inf).
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// MetricsSnapshot is one registry's typed export (GET /v1/node/metrics),
// and the fused block of the cluster metrics document.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// LatencySummary is the fused percentile view of one endpoint.
type LatencySummary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_sec"`
	P95   float64 `json:"p95_sec"`
	P99   float64 `json:"p99_sec"`
}

// MetricsSummary is the operator digest of one node (or of the fusion).
type MetricsSummary struct {
	QueueDepth   float64                   `json:"queue_depth"`
	Inflight     float64                   `json:"inflight"`
	Jobs         map[string]int64          `json:"jobs_by_state"`
	StoreHits    int64                     `json:"store_hits"`
	StoreMisses  int64                     `json:"store_misses"`
	StoreHitRate float64                   `json:"store_hit_rate"`
	Latency      map[string]LatencySummary `json:"latency"`
}

// NodeMetrics is one member's row in the cluster metrics document.
type NodeMetrics struct {
	Node    string          `json:"node"`
	Self    bool            `json:"self"`
	Error   string          `json:"error"`
	Summary *MetricsSummary `json:"summary"`
}

// ClusterMetrics is the GET /v1/cluster/metrics document.
type ClusterMetrics struct {
	Schema  string           `json:"schema"`
	Self    string           `json:"self"`
	Summary MetricsSummary   `json:"summary"`
	Nodes   []NodeMetrics    `json:"nodes"`
	Fused   *MetricsSnapshot `json:"fused"`
}

// ClusterMetrics fetches the fused cluster metrics snapshot from the
// first reachable endpoint: counters and gauges summed per series across
// live peers, histogram buckets bit-exact sums, with per-node summaries.
func (c *Client) ClusterMetrics(ctx context.Context) (*ClusterMetrics, error) {
	var lastErr error
	for _, ep := range c.rotate() {
		raw, err := c.do(ctx, http.MethodGet, ep+"/v1/cluster/metrics", nil)
		if err != nil {
			lastErr = err
			continue
		}
		var cm ClusterMetrics
		if err := json.Unmarshal(raw, &cm); err != nil {
			return nil, fmt.Errorf("client: bad cluster metrics document: %w", err)
		}
		return &cm, nil
	}
	return nil, fmt.Errorf("%w: %w", ErrNoEndpoints, lastErr)
}

// NodeMetricsSnapshot fetches one node's raw typed registry snapshot.
func (c *Client) NodeMetricsSnapshot(ctx context.Context, node string) (*MetricsSnapshot, error) {
	raw, err := c.do(ctx, http.MethodGet, node+"/v1/node/metrics", nil)
	if err != nil {
		return nil, err
	}
	var ms MetricsSnapshot
	if err := json.Unmarshal(raw, &ms); err != nil {
		return nil, fmt.Errorf("client: bad metrics document: %w", err)
	}
	return &ms, nil
}
