package client

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/netlist"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// deadEndpoint returns a URL whose port refuses connections.
func deadEndpoint(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + l.Addr().String()
	l.Close()
	return url
}

// blockingRunner parks every job until release closes.
func blockingRunner(release chan struct{}) service.Runner {
	return func(ctx context.Context, c *netlist.Circuit, cfg scanpower.Config) (*scanpower.Comparison, error) {
		select {
		case <-release:
			return &scanpower.Comparison{Circuit: c.Name}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

const s27Bench = `# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

// newService boots a real scanpowerd service under httptest.
func newService(t *testing.T, opts service.Options) *httptest.Server {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	if opts.QueueSize == 0 {
		opts.QueueSize = 8
	}
	svc := service.New(opts)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv
}

// TestSubmitWaitResult drives the happy path through the typed client
// against a real service.
func TestSubmitWaitResult(t *testing.T) {
	srv := newService(t, service.Options{})
	cl, err := New([]string{srv.URL}, Options{PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	job, err := cl.Submit(ctx, SubmitRequest{Bench: s27Bench, Name: "s27"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job.ID == "" || job.Node != srv.URL {
		t.Fatalf("job = %+v", job)
	}
	job, err = cl.Wait(ctx, job)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if job.State != "done" {
		t.Fatalf("job settled %s (%s)", job.State, job.Err)
	}
	cmp, raw, err := cl.Result(ctx, job)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if cmp.Circuit != "s27" || cmp.Patterns == 0 {
		t.Errorf("comparison = %+v", cmp)
	}
	var redecoded map[string]any
	if err := json.Unmarshal(raw, &redecoded); err != nil {
		t.Errorf("raw result bytes are not JSON: %v", err)
	}
	if redecoded["schema"] != "scanpower/comparison/v1" {
		t.Errorf("raw result schema = %v", redecoded["schema"])
	}

	// Wait-mode submit settles in one round trip.
	job2, err := cl.Submit(ctx, SubmitRequest{Bench: s27Bench, Name: "s27", Wait: true})
	if err != nil {
		t.Fatalf("wait submit: %v", err)
	}
	if job2.State != "done" || !job2.Coalesced || job2.ID != job.ID {
		t.Errorf("wait submit = %+v, want coalesced done %s", job2, job.ID)
	}

	entries, err := cl.Benchmarks(ctx)
	if err != nil || len(entries) != 12 {
		t.Errorf("Benchmarks = %v (%v)", entries, err)
	}
	for _, e := range entries {
		if e.Name == "" || e.Gates <= 0 || e.ScanCells <= 0 || e.Chains != 1 {
			t.Errorf("benchmark entry missing stats: %+v", e)
		}
	}
	names, err := cl.BenchmarkNames(ctx)
	if err != nil || len(names) != 12 || names[0] != "s1196" {
		t.Errorf("BenchmarkNames = %v (%v)", names, err)
	}
	h, err := cl.Health(ctx, srv.URL)
	if err != nil || h.Status != "ok" {
		t.Errorf("Health = %+v (%v)", h, err)
	}
	cs, err := cl.ClusterStatus(ctx)
	if err != nil || len(cs.Nodes) != 1 || !cs.Nodes[0].Self {
		t.Errorf("ClusterStatus = %+v (%v)", cs, err)
	}
}

// TestTypedErrors checks the envelope-to-sentinel mapping.
func TestTypedErrors(t *testing.T) {
	srv := newService(t, service.Options{})
	cl, err := New([]string{srv.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := cl.Submit(ctx, SubmitRequest{Circuit: "s9999"}); !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("unknown benchmark error = %v", err)
	}
	if _, err := cl.Submit(ctx, SubmitRequest{Bench: "INPUT(a)\nnot an assignment\n"}); !errors.Is(err, ErrBadBench) {
		t.Errorf("bad bench error = %v", err)
	}
	if _, err := cl.Submit(ctx, SubmitRequest{}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty submit error = %v", err)
	}
	if _, err := cl.Status(ctx, &Job{ID: "job-999", Node: srv.URL}); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job error = %v", err)
	}

	var apiErr *APIError
	_, err = cl.Submit(ctx, SubmitRequest{Circuit: "s9999"})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != "unknown_benchmark" {
		t.Errorf("APIError = %+v", apiErr)
	}
}

// TestQueueFullRetryAfter checks the backpressure contract surfaces
// typed: ErrQueueFull with the parsed Retry-After.
func TestQueueFullRetryAfter(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"code":"queue_full","message":"service: job queue is full"}}`))
	}))
	defer stub.Close()
	cl, _ := New([]string{stub.URL}, Options{})
	_, err := cl.Submit(context.Background(), SubmitRequest{Circuit: "s344"})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("error = %v, want ErrQueueFull", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfter != 2*time.Second {
		t.Errorf("RetryAfter = %+v", apiErr)
	}
}

// TestEndpointFailover: a dead first endpoint and a draining second are
// skipped; the third serves the submit.
func TestEndpointFailover(t *testing.T) {
	deadURL := deadEndpoint(t)

	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"draining","message":"service: draining"}}`))
	}))
	defer draining.Close()

	live := newService(t, service.Options{})

	cl, err2 := New([]string{deadURL, draining.URL, live.URL}, Options{PollInterval: 5 * time.Millisecond})
	if err2 != nil {
		t.Fatal(err2)
	}
	// Exercise every rotation offset so each endpoint leads once.
	for i := 0; i < 3; i++ {
		job, err := cl.Submit(context.Background(), SubmitRequest{Bench: s27Bench, Name: "s27", Wait: true})
		if err != nil {
			t.Fatalf("Submit #%d: %v", i, err)
		}
		if job.State != "done" || job.Node != live.URL {
			t.Fatalf("Submit #%d landed %+v", i, job)
		}
	}
}

// TestNoEndpoints: all endpoints down maps to ErrNoEndpoints.
func TestNoEndpoints(t *testing.T) {
	cl, _ := New([]string{deadEndpoint(t)}, Options{})
	if _, err := cl.Submit(context.Background(), SubmitRequest{Circuit: "s344"}); !errors.Is(err, ErrNoEndpoints) {
		t.Errorf("error = %v, want ErrNoEndpoints", err)
	}
	if _, err := New(nil, Options{}); err == nil {
		t.Error("New accepted an empty endpoint list")
	}
}

// TestJobAffinity: a submit answered with a node URL directs follow-ups
// at that node, not the endpoint that answered.
func TestJobAffinity(t *testing.T) {
	ownerHits := 0
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ownerHits++
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"job-7","node":"OWNER","circuit":"s344","measure":"packed","state":"done","result_url":"/v1/jobs/job-7/result"}`))
	}))
	defer owner.Close()

	entry := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"job-7","node":"` + owner.URL + `","circuit":"s344","measure":"packed","state":"done","result_url":"/v1/jobs/job-7/result"}`))
	}))
	defer entry.Close()

	cl, _ := New([]string{entry.URL}, Options{})
	job, err := cl.Submit(context.Background(), SubmitRequest{Circuit: "s344"})
	if err != nil {
		t.Fatal(err)
	}
	if job.Node != owner.URL {
		t.Fatalf("job node = %q, want owner %q", job.Node, owner.URL)
	}
	if _, err := cl.Status(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if ownerHits != 1 {
		t.Errorf("owner served %d follow-ups, want 1", ownerHits)
	}
}

// TestCancel cancels a queued job through the client.
func TestCancel(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv := newService(t, service.Options{
		Workers: 1, QueueSize: 2,
		Runner: blockingRunner(block),
	})
	cl, _ := New([]string{srv.URL}, Options{PollInterval: 5 * time.Millisecond})
	ctx := context.Background()

	// Park the worker, then cancel a queued second job.
	if _, err := cl.Submit(ctx, SubmitRequest{Circuit: "s344"}); err != nil {
		t.Fatal(err)
	}
	job, err := cl.Submit(ctx, SubmitRequest{Circuit: "s382"})
	if err != nil {
		t.Fatal(err)
	}
	job, err = cl.Cancel(ctx, job)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if job.State != "canceled" {
		t.Fatalf("canceled job state = %s", job.State)
	}
	if _, _, err := cl.Result(ctx, job); !errors.Is(err, ErrCanceled) {
		t.Errorf("result of canceled job = %v, want ErrCanceled", err)
	}
}

// TestTraceAndMetrics drives the observability surface through the
// typed client: trace-context submission, trace retrieval, health
// identity and the fused metrics snapshot.
func TestTraceAndMetrics(t *testing.T) {
	srv := newService(t, service.Options{Node: "alpha"})
	cl, err := New([]string{srv.URL}, Options{PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	tc := telemetry.TraceContext{TraceID: telemetry.NewTraceID(), SpanID: telemetry.NewSpanID()}
	job, err := cl.Submit(ctx, SubmitRequest{
		Bench: s27Bench, Name: "s27", Wait: true, TraceParent: tc.Traceparent(),
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job.TraceID != tc.TraceID {
		t.Errorf("job TraceID = %q, want adopted %q", job.TraceID, tc.TraceID)
	}

	tr, err := cl.Trace(ctx, job)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if tr.TraceID != tc.TraceID || tr.JobID != job.ID {
		t.Errorf("trace identity = %s/%s, want %s/%s", tr.TraceID, tr.JobID, tc.TraceID, job.ID)
	}
	if len(tr.Nodes) != 1 || tr.Nodes[0] != "alpha" {
		t.Errorf("trace nodes = %v", tr.Nodes)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
		if sp.Node != "alpha" {
			t.Errorf("span %s node = %q", sp.Name, sp.Node)
		}
	}
	for _, want := range []string{"job", "queue", "run"} {
		if !names[want] {
			t.Errorf("trace missing span %q: %v", want, names)
		}
	}

	h, err := cl.Health(ctx, srv.URL)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Node != "alpha" || h.GoVersion == "" || h.UptimeSec < 0 {
		t.Errorf("health identity = %+v", h)
	}

	cm, err := cl.ClusterMetrics(ctx)
	if err != nil {
		t.Fatalf("ClusterMetrics: %v", err)
	}
	if cm.Schema != service.ClusterMetricsSchemaV1 {
		t.Errorf("cluster metrics schema = %q", cm.Schema)
	}
	if len(cm.Nodes) != 1 || !cm.Nodes[0].Self || cm.Nodes[0].Node != "alpha" {
		t.Errorf("cluster metrics nodes = %+v", cm.Nodes)
	}
	if cm.Fused == nil || cm.Fused.Counters[service.MetricJobsSubmitted] != 1 {
		t.Errorf("fused submitted = %v", cm.Fused)
	}
	if cm.Summary.Jobs["done"] != 1 {
		t.Errorf("summary jobs = %v", cm.Summary.Jobs)
	}

	ms, err := cl.NodeMetricsSnapshot(ctx, srv.URL)
	if err != nil {
		t.Fatalf("NodeMetricsSnapshot: %v", err)
	}
	if ms.Counters[service.MetricJobsSubmitted] != cm.Fused.Counters[service.MetricJobsSubmitted] {
		t.Errorf("single-node fusion differs from the node snapshot")
	}
}
