package scanpower

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// TestMCBackendRowEquivalence: the packed and scalar Monte-Carlo backends
// must produce byte-identical Table I rows — same solutions, same
// measured powers — for the same configuration. This is the seed-
// stability contract at the outermost layer of the API.
func TestMCBackendRowEquivalence(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	rows := map[MCBackend]*Comparison{}
	for _, backend := range MCBackends() {
		cfg := DefaultConfig()
		cfg.MC = backend
		cmp, err := Compare(context.Background(), c, cfg)
		if err != nil {
			t.Fatalf("%q: %v", backend, err)
		}
		rows[backend] = cmp
	}
	packed, scalar := rows[MCPacked], rows[MCScalar]
	if packed.Row() != scalar.Row() {
		t.Errorf("Table I rows differ across MC backends:\npacked: %s\nscalar: %s",
			packed.Row(), scalar.Row())
	}
	if packed.ProposedStats != scalar.ProposedStats {
		t.Errorf("proposed stats differ: %+v vs %+v",
			packed.ProposedStats, scalar.ProposedStats)
	}
	if packed.InputControlStats != scalar.InputControlStats {
		t.Errorf("input-control stats differ: %+v vs %+v",
			packed.InputControlStats, scalar.InputControlStats)
	}
}

func TestMCBackendsList(t *testing.T) {
	if len(MCBackends()) != 2 {
		t.Fatalf("MCBackends = %v, want packed and scalar", MCBackends())
	}
	cfg := DefaultConfig()
	if cfg.MC != MCPacked {
		t.Errorf("DefaultConfig MC backend = %q, want %q", cfg.MC, MCPacked)
	}
}

func TestCompareRejectsUnknownMCBackend(t *testing.T) {
	c, err := Benchmark("s344")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MC = "simd" // not a backend
	if _, err := Compare(context.Background(), c, cfg); err == nil {
		t.Fatal("Compare accepted an unknown MC backend")
	}
}

// TestRecorderMCBatches: a run on the default (packed) MC backend must
// surface the Monte-Carlo kernels in telemetry — a live lane counter and
// per-batch "mc-batch" spans tagged with their kind, nested under the
// structure-build stages.
func TestRecorderMCBatches(t *testing.T) {
	_, reg, traceBuf := runWithRecorder(t, []string{"s344"}, 1)

	snap := reg.Snapshot()
	if snap[MetricMCLanes] <= 0 {
		t.Errorf("metric %s = %v, want > 0", MetricMCLanes, snap[MetricMCLanes])
	}

	kinds := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(traceBuf.Bytes()))
	for sc.Scan() {
		var ev struct {
			Name  string `json:"name"`
			Attrs struct {
				Kind  string `json:"kind"`
				Lanes int    `json:"lanes"`
			} `json:"attrs"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue
		}
		if ev.Name != "mc-batch" || ev.Attrs.Kind == "" {
			continue
		}
		if ev.Attrs.Lanes < 1 || ev.Attrs.Lanes > sim.WideLanes {
			t.Errorf("mc-batch span carries %d lanes", ev.Attrs.Lanes)
		}
		kinds[ev.Attrs.Kind]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if kinds["obs"] == 0 {
		t.Error("no obs mc-batch spans in trace")
	}
	if kinds["fill"] == 0 {
		t.Error("no fill mc-batch spans in trace")
	}
}
