package scanpower

// This file is the versioned wire schema of the public result types: one
// marshaller, used verbatim by the run manifests (cmd/tableone -manifest),
// the scanpowerd service responses, and any consumer that wants Table I
// rows as JSON. The Go structs stay free to evolve; the JSON field names
// below are frozen per schema version. Bump the schema suffix on any
// breaking change and keep the old decoder working.

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/power"
)

// Wire schema identifiers. Every marshalled Comparison and
// EnhancedComparison carries its schema in a "schema" field; decoders
// reject payloads with a different version.
const (
	// ComparisonSchemaV1 tags the Comparison JSON layout.
	ComparisonSchemaV1 = "scanpower/comparison/v1"
	// EnhancedComparisonSchemaV1 tags the EnhancedComparison JSON layout.
	EnhancedComparisonSchemaV1 = "scanpower/enhanced-comparison/v1"
)

// powerReportV1 is the frozen JSON form of power.Report.
type powerReportV1 struct {
	DynamicPerHz        float64 `json:"dynamic_per_hz"`
	PeakDynamicPerHz    float64 `json:"peak_dynamic_per_hz"`
	StaticUW            float64 `json:"static_uw"`
	Cycles              int     `json:"cycles"`
	MeanTogglesPerCycle float64 `json:"mean_toggles_per_cycle"`
	MeanLeakNA          float64 `json:"mean_leak_na"`
}

func toPowerReportV1(r power.Report) powerReportV1 {
	return powerReportV1{
		DynamicPerHz:        r.DynamicPerHz,
		PeakDynamicPerHz:    r.PeakDynamicPerHz,
		StaticUW:            r.StaticUW,
		Cycles:              r.Cycles,
		MeanTogglesPerCycle: r.MeanTogglesPerCycle,
		MeanLeakNA:          r.MeanLeakNA,
	}
}

func (w powerReportV1) report() power.Report {
	return power.Report{
		DynamicPerHz:        w.DynamicPerHz,
		PeakDynamicPerHz:    w.PeakDynamicPerHz,
		StaticUW:            w.StaticUW,
		Cycles:              w.Cycles,
		MeanTogglesPerCycle: w.MeanTogglesPerCycle,
		MeanLeakNA:          w.MeanLeakNA,
	}
}

// circuitStatsV1 is the frozen JSON form of netlist.Stats. Gate-type
// counts use the .bench type names ("NAND", "MUX2", ...), not Go enum
// values.
type circuitStatsV1 struct {
	Name       string         `json:"name"`
	PIs        int            `json:"pis"`
	POs        int            `json:"pos"`
	FFs        int            `json:"ffs"`
	Gates      int            `json:"gates"`
	Nets       int            `json:"nets"`
	Depth      int            `json:"depth"`
	ByType     map[string]int `json:"by_type,omitempty"`
	MeanFanout float64        `json:"mean_fanout"`
	MaxFanout  int            `json:"max_fanout"`
	MaxArity   int            `json:"max_arity"`
}

func toCircuitStatsV1(s netlist.Stats) circuitStatsV1 {
	w := circuitStatsV1{
		Name: s.Name, PIs: s.PIs, POs: s.POs, FFs: s.FFs,
		Gates: s.Gates, Nets: s.Nets, Depth: s.Depth,
		MeanFanout: s.Fanout, MaxFanout: s.MaxFan, MaxArity: s.MaxArit,
	}
	if len(s.ByType) > 0 {
		w.ByType = make(map[string]int, len(s.ByType))
		for t, n := range s.ByType {
			w.ByType[t.String()] = n
		}
	}
	return w
}

func (w circuitStatsV1) stats() (netlist.Stats, error) {
	s := netlist.Stats{
		Name: w.Name, PIs: w.PIs, POs: w.POs, FFs: w.FFs,
		Gates: w.Gates, Nets: w.Nets, Depth: w.Depth,
		Fanout: w.MeanFanout, MaxFan: w.MaxFanout, MaxArit: w.MaxArity,
	}
	if len(w.ByType) > 0 {
		s.ByType = make(map[logic.GateType]int, len(w.ByType))
		for name, n := range w.ByType {
			t, ok := logic.ParseGateType(name)
			if !ok {
				return s, fmt.Errorf("scanpower: unknown gate type %q in stats", name)
			}
			s.ByType[t] = n
		}
	}
	return s, nil
}

// structStatsV1 is the frozen JSON form of core.Stats.
type structStatsV1 struct {
	MuxCount        int     `json:"mux_count"`
	CriticalDelayPS float64 `json:"critical_delay_ps"`
	BlockedGates    int     `json:"blocked_gates"`
	FailedGates     int     `json:"failed_gates"`
	TransitionNets  int     `json:"transition_nets"`
	AssignedInputs  int     `json:"assigned_inputs"`
	FilledInputs    int     `json:"filled_inputs"`
	ReorderedGates  int     `json:"reordered_gates"`
	ScanLeakNA      float64 `json:"scan_leak_na"`
}

func toStructStatsV1(s core.Stats) structStatsV1 {
	return structStatsV1{
		MuxCount: s.MuxCount, CriticalDelayPS: s.CriticalDelay,
		BlockedGates: s.BlockedGates, FailedGates: s.FailedGates,
		TransitionNets: s.TransitionNets, AssignedInputs: s.AssignedInputs,
		FilledInputs: s.FilledInputs, ReorderedGates: s.ReorderedGates,
		ScanLeakNA: s.ScanLeakNA,
	}
}

func (w structStatsV1) stats() core.Stats {
	return core.Stats{
		MuxCount: w.MuxCount, CriticalDelay: w.CriticalDelayPS,
		BlockedGates: w.BlockedGates, FailedGates: w.FailedGates,
		TransitionNets: w.TransitionNets, AssignedInputs: w.AssignedInputs,
		FilledInputs: w.FilledInputs, ReorderedGates: w.ReorderedGates,
		ScanLeakNA: w.ScanLeakNA,
	}
}

// improvementsV1 carries the four Table I improvement percentages.
// Derived from the power reports; emitted for consumers, ignored on
// decode.
type improvementsV1 struct {
	DynVsTraditionalPct  float64 `json:"dyn_vs_traditional_pct"`
	StatVsTraditionalPct float64 `json:"stat_vs_traditional_pct"`
	DynVsInputCtrlPct    float64 `json:"dyn_vs_input_control_pct"`
	StatVsInputCtrlPct   float64 `json:"stat_vs_input_control_pct"`
}

// activityV1 is the frozen JSON form of ActivityResult. The whole block
// is optional (omitted when the job carried no activity annotation), so
// legacy documents keep their exact bytes.
type activityV1 struct {
	Source                    string             `json:"source"`
	DefaultInput              float64            `json:"default_input"`
	Inputs                    map[string]float64 `json:"inputs,omitempty"`
	WTMTotal                  int                `json:"wtm_total"`
	WTMPerPattern             float64            `json:"wtm_per_pattern"`
	TraditionalWeightedPerHz  float64            `json:"traditional_weighted_per_hz"`
	InputControlWeightedPerHz float64            `json:"input_control_weighted_per_hz"`
	ProposedWeightedPerHz     float64            `json:"proposed_weighted_per_hz"`
}

func toActivityV1(a *ActivityResult) *activityV1 {
	if a == nil {
		return nil
	}
	return &activityV1{
		Source:                    a.Source,
		DefaultInput:              a.DefaultInput,
		Inputs:                    a.Inputs,
		WTMTotal:                  a.WTMTotal,
		WTMPerPattern:             a.WTMPerPattern,
		TraditionalWeightedPerHz:  a.TraditionalWeightedPerHz,
		InputControlWeightedPerHz: a.InputControlWeightedPerHz,
		ProposedWeightedPerHz:     a.ProposedWeightedPerHz,
	}
}

func (w *activityV1) result() *ActivityResult {
	if w == nil {
		return nil
	}
	return &ActivityResult{
		Source:                    w.Source,
		DefaultInput:              w.DefaultInput,
		Inputs:                    w.Inputs,
		WTMTotal:                  w.WTMTotal,
		WTMPerPattern:             w.WTMPerPattern,
		TraditionalWeightedPerHz:  w.TraditionalWeightedPerHz,
		InputControlWeightedPerHz: w.InputControlWeightedPerHz,
		ProposedWeightedPerHz:     w.ProposedWeightedPerHz,
	}
}

// comparisonV1 is the frozen JSON layout of Comparison.
type comparisonV1 struct {
	Schema            string         `json:"schema"`
	Circuit           string         `json:"circuit"`
	Stats             circuitStatsV1 `json:"stats"`
	Patterns          int            `json:"patterns"`
	FaultCoverage     float64        `json:"fault_coverage"`
	Traditional       powerReportV1  `json:"traditional"`
	InputControl      powerReportV1  `json:"input_control"`
	Proposed          powerReportV1  `json:"proposed"`
	ProposedStats     structStatsV1  `json:"proposed_stats"`
	InputControlStats structStatsV1  `json:"input_control_stats"`
	MuxOverheadUW     float64        `json:"mux_overhead_uw"`
	Improvements      improvementsV1 `json:"improvements"`
	Activity          *activityV1    `json:"activity,omitempty"`
}

// MarshalJSON emits the scanpower/comparison/v1 wire form. This is the
// single marshaller behind the service's result responses and the run
// manifests, so the three always agree byte for byte.
func (c *Comparison) MarshalJSON() ([]byte, error) {
	return json.Marshal(comparisonV1{
		Schema:            ComparisonSchemaV1,
		Circuit:           c.Circuit,
		Stats:             toCircuitStatsV1(c.Stats),
		Patterns:          c.Patterns,
		FaultCoverage:     c.FaultCoverage,
		Traditional:       toPowerReportV1(c.Traditional),
		InputControl:      toPowerReportV1(c.InputControl),
		Proposed:          toPowerReportV1(c.Proposed),
		ProposedStats:     toStructStatsV1(c.ProposedStats),
		InputControlStats: toStructStatsV1(c.InputControlStats),
		MuxOverheadUW:     c.MuxOverheadUW,
		Improvements: improvementsV1{
			DynVsTraditionalPct:  c.DynImprovementVsTraditional(),
			StatVsTraditionalPct: c.StaticImprovementVsTraditional(),
			DynVsInputCtrlPct:    c.DynImprovementVsInputControl(),
			StatVsInputCtrlPct:   c.StaticImprovementVsInputControl(),
		},
		Activity: toActivityV1(c.Activity),
	})
}

// UnmarshalJSON decodes the scanpower/comparison/v1 wire form, rejecting
// any other schema tag. The improvement block is derived and ignored.
func (c *Comparison) UnmarshalJSON(data []byte) error {
	var w comparisonV1
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("scanpower: decode comparison: %w", err)
	}
	if w.Schema != ComparisonSchemaV1 {
		return fmt.Errorf("scanpower: comparison schema %q, want %q", w.Schema, ComparisonSchemaV1)
	}
	stats, err := w.Stats.stats()
	if err != nil {
		return err
	}
	*c = Comparison{
		Circuit:           w.Circuit,
		Stats:             stats,
		Patterns:          w.Patterns,
		FaultCoverage:     w.FaultCoverage,
		Traditional:       w.Traditional.report(),
		InputControl:      w.InputControl.report(),
		Proposed:          w.Proposed.report(),
		ProposedStats:     w.ProposedStats.stats(),
		InputControlStats: w.InputControlStats.stats(),
		MuxOverheadUW:     w.MuxOverheadUW,
		Activity:          w.Activity.result(),
	}
	return nil
}

// enhancedComparisonV1 is the frozen JSON layout of EnhancedComparison.
type enhancedComparisonV1 struct {
	Schema         string        `json:"schema"`
	Circuit        string        `json:"circuit"`
	Enhanced       powerReportV1 `json:"enhanced"`
	Proposed       powerReportV1 `json:"proposed"`
	DelayPenaltyPS float64       `json:"delay_penalty_ps"`
	ProposedMuxes  int           `json:"proposed_muxes"`
	FFs            int           `json:"ffs"`
}

// MarshalJSON emits the scanpower/enhanced-comparison/v1 wire form.
func (c *EnhancedComparison) MarshalJSON() ([]byte, error) {
	return json.Marshal(enhancedComparisonV1{
		Schema:         EnhancedComparisonSchemaV1,
		Circuit:        c.Circuit,
		Enhanced:       toPowerReportV1(c.Enhanced),
		Proposed:       toPowerReportV1(c.Proposed),
		DelayPenaltyPS: c.DelayPenaltyPS,
		ProposedMuxes:  c.ProposedMuxes,
		FFs:            c.FFs,
	})
}

// UnmarshalJSON decodes the scanpower/enhanced-comparison/v1 wire form.
func (c *EnhancedComparison) UnmarshalJSON(data []byte) error {
	var w enhancedComparisonV1
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("scanpower: decode enhanced comparison: %w", err)
	}
	if w.Schema != EnhancedComparisonSchemaV1 {
		return fmt.Errorf("scanpower: enhanced comparison schema %q, want %q", w.Schema, EnhancedComparisonSchemaV1)
	}
	*c = EnhancedComparison{
		Circuit:        w.Circuit,
		Enhanced:       w.Enhanced.report(),
		Proposed:       w.Proposed.report(),
		DelayPenaltyPS: w.DelayPenaltyPS,
		ProposedMuxes:  w.ProposedMuxes,
		FFs:            w.FFs,
	}
	return nil
}

// comparisonSetV1 is the container WriteComparisonsJSON emits: the schema
// of the elements plus the rows themselves.
type comparisonSetV1 struct {
	Schema      string        `json:"schema"`
	Comparisons []*Comparison `json:"comparisons"`
}

// WriteComparisonsJSON writes cmps as indented JSON — a
// {schema, comparisons:[...]} container whose elements use the
// scanpower/comparison/v1 marshaller. Run manifests embed exactly this
// payload as Results.
func WriteComparisonsJSON(w io.Writer, cmps []*Comparison) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(comparisonSetV1{Schema: ComparisonSchemaV1, Comparisons: cmps})
}

// ReadComparisonsJSON parses a WriteComparisonsJSON payload.
func ReadComparisonsJSON(r io.Reader) ([]*Comparison, error) {
	var set comparisonSetV1
	if err := json.NewDecoder(r).Decode(&set); err != nil {
		return nil, fmt.Errorf("scanpower: decode comparison set: %w", err)
	}
	if set.Schema != ComparisonSchemaV1 {
		return nil, fmt.Errorf("scanpower: comparison set schema %q, want %q", set.Schema, ComparisonSchemaV1)
	}
	return set.Comparisons, nil
}
