// Atpgflow: generate a stuck-at test set for a benchmark, then show that
// the proposed DFT modification leaves fault coverage untouched — the
// paper's "Fault coverage is not affected by this method" claim.
//
// The test set is generated once, for the original circuit; it is then
// re-fault-simulated against the circuit the flow actually measures (with
// leakage-reordered gate inputs) and against the materialized MUX netlist
// in normal mode.
//
//	go run ./examples/atpgflow
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/atpg"
	"repro/internal/core"
)

func main() {
	c, err := scanpower.Benchmark("s344")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.ComputeStats())

	res, err := atpg.Generate(c, atpg.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ATPG: %d patterns, %d/%d faults detected (%.2f%% coverage), %d untestable, %d aborted\n",
		len(res.Patterns), res.DetectedCount(), len(res.Faults),
		res.Coverage()*100, res.Untestable, res.Aborted)

	sol, err := core.Build(c, scanpower.DefaultConfig().Proposed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proposed structure: %d/%d scan cells muxed, %d gates reordered\n",
		sol.Stats.MuxCount, c.NumFFs(), sol.Stats.ReorderedGates)

	covOrig := atpg.CoverageOf(c, res.Patterns)
	covMod := atpg.CoverageOf(sol.Circuit, res.Patterns)
	fmt.Printf("coverage on original circuit:   %.2f%%\n", covOrig*100)
	fmt.Printf("coverage on modified circuit:   %.2f%%\n", covMod*100)
	if covMod+1e-9 < covOrig {
		log.Fatal("coverage dropped — this should never happen")
	}
	fmt.Println("fault coverage unaffected, as the paper requires.")
}
