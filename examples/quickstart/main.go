// Quickstart: the complete low-power scan flow in ~40 lines.
//
// Loads the real ISCAS89 s27 circuit, maps it onto the NAND/NOR/INV 45 nm
// library, generates a stuck-at test set, and compares the scan-mode power
// of the traditional structure against the paper's proposed structure.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

const s27 = `# ISCAS89 s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

func main() {
	// 1. Parse and map to the library the paper evaluates on.
	raw, err := scanpower.ParseBench(s27, "s27")
	if err != nil {
		log.Fatal(err)
	}
	c, err := scanpower.Prepare(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.ComputeStats())

	// 2. Run the whole Table I experiment on it: ATPG, three structures,
	// power measurement.
	cmp, err := scanpower.Compare(context.Background(), c, scanpower.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test set: %d patterns, %.1f%% stuck-at coverage\n",
		cmp.Patterns, cmp.FaultCoverage*100)
	fmt.Printf("traditional scan: dynamic %.3e µW/Hz, static %.2f µW\n",
		cmp.Traditional.DynamicPerHz, cmp.Traditional.StaticUW)
	fmt.Printf("proposed:         dynamic %.3e µW/Hz, static %.2f µW\n",
		cmp.Proposed.DynamicPerHz, cmp.Proposed.StaticUW)
	fmt.Printf("improvement:      dynamic %.1f%%, static %.1f%%\n",
		cmp.DynImprovementVsTraditional(), cmp.StaticImprovementVsTraditional())
}
