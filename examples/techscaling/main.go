// Techscaling: reproduces the paper's motivating trend. The introduction
// argues that "dynamic power has been the dominant part of power
// dissipation in CMOS circuits, however, in future technologies the
// static portion of power dissipation will outreach the dynamic portion"
// — which is why the technique optimizes both at once.
//
// This experiment measures traditional-scan power of one benchmark across
// technology generations (the calibrated 45 nm model scaled by classic
// per-node leakage/capacitance trends) at a 100 MHz shift clock and
// prints the static share of total scan power per node.
//
//	go run ./examples/techscaling
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	c, err := scanpower.Benchmark("s641")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.ComputeStats())
	const shiftHz = 100e6
	fmt.Printf("traditional scan @ %.0f MHz shift clock\n\n", shiftHz/1e6)

	points, err := scanpower.StudyTechScaling(c, scanpower.DefaultConfig(), shiftHz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s %6s %14s %14s %14s\n", "node", "VDD", "dynamic µW", "static µW", "static share")
	for _, p := range points {
		bar := ""
		for i := 0; i < int(p.StaticShare*40+0.5); i++ {
			bar += "#"
		}
		fmt.Printf("%4dnm %5.2fV %14.2f %14.2f %13.1f%%  %s\n",
			p.NM, p.VDD, p.DynamicUW, p.StaticUW, p.StaticShare*100, bar)
	}
	fmt.Println("\nthe static share grows monotonically and dominates at the")
	fmt.Println("scaled nodes — the paper's reason to attack both components.")
}
