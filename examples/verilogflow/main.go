// Verilogflow: the downstream-user story end to end. A design arrives as
// structural Verilog; we map it to the library, build the proposed
// low-power scan structure, generate (and save) a test set, replay it on
// both structures, and dump the scan-mode waveforms to a VCD for a
// waveform viewer — every interchange format the repository speaks, in
// one pipeline.
//
//	go run ./examples/verilogflow
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro"
	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/scan"
	"repro/internal/vcd"
	"repro/internal/vectors"
	"repro/internal/verilog"
)

// A small traffic-light-style controller in structural Verilog.
const design = `
// three-state controller with a mode input
module traffic (mode, sensor, red, green);
  input mode, sensor;
  output red, green;
  wire s0, s1, d0, d1, n1, n2, n3, n4;
  dff u_s0 (s0, d0);
  dff u_s1 (s1, d1);
  nand u1 (n1, s0, mode);
  nor  u2 (n2, n1, sensor);
  not  u3 (n3, s1);
  nand u4 (d0, n2, n3);
  nor  u5 (d1, s0, n2);
  nand u6 (n4, s0, s1);
  not  u7 (red, n4);
  nor  u8 (green, s0, s1);
endmodule
`

func main() {
	tmp, err := os.MkdirTemp("", "verilogflow")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	// 1. Parse the Verilog and map it onto the NAND/NOR/INV library.
	raw, err := verilog.ParseString(design, "traffic")
	if err != nil {
		log.Fatal(err)
	}
	c, err := scanpower.Prepare(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed:", c.ComputeStats())

	// 2. Build the proposed structure.
	cfg := scanpower.DefaultConfig()
	sol, err := core.Build(c, cfg.Proposed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proposed: %d/%d cells muxed, %d gates reordered\n",
		sol.Stats.MuxCount, c.NumFFs(), sol.Stats.ReorderedGates)

	// 3. ATPG with minimum-transition fill; save the set to disk.
	aopts := cfg.ATPG
	aopts.Fill = atpg.FillAdjacent
	res, err := atpg.Generate(c, aopts)
	if err != nil {
		log.Fatal(err)
	}
	patPath := filepath.Join(tmp, "traffic.pat")
	pf, err := os.Create(patPath)
	if err != nil {
		log.Fatal(err)
	}
	set := vectors.Set{Circuit: c.Name, NPI: len(c.PIs), NFF: c.NumFFs(), Patterns: res.Patterns}
	if err := vectors.Write(pf, set); err != nil {
		log.Fatal(err)
	}
	pf.Close()
	fmt.Printf("ATPG: %d patterns, %.1f%% coverage, saved to %s\n",
		len(res.Patterns), res.Coverage()*100, patPath)

	// 4. Replay the stored set on both structures.
	rf, err := os.Open(patPath)
	if err != nil {
		log.Fatal(err)
	}
	stored, err := vectors.Read(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	if err := stored.Validate(c); err != nil {
		log.Fatal(err)
	}
	trad, err := power.MeasureScanFast(scan.New(c), stored.Patterns, scan.Traditional(c), cfg.Leak, cfg.Cap)
	if err != nil {
		log.Fatal(err)
	}
	prop, err := power.MeasureScanFast(scan.New(sol.Circuit), stored.Patterns, sol.Cfg, cfg.Leak, cfg.Cap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traditional: %s\n", trad)
	fmt.Printf("proposed:    %s\n", prop)
	fmt.Printf("dynamic improvement: %.1f%%\n",
		power.Improvement(trad.DynamicPerHz, prop.DynamicPerHz))

	// 5. Waveforms of the proposed structure for a viewer.
	vcdPath := filepath.Join(tmp, "traffic.vcd")
	vf, err := os.Create(vcdPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := vcd.DumpScan(vf, scan.New(sol.Circuit), stored.Patterns, sol.Cfg, nil); err != nil {
		log.Fatal(err)
	}
	vf.Close()
	data, _ := os.ReadFile(vcdPath)
	fmt.Printf("VCD: %d bytes, %d signals\n", len(data), strings.Count(string(data), "$var"))

	// 6. And back out as Verilog (the DFT netlist with MUXes stitched in).
	dft, err := core.InsertMuxes(c, sol.Cfg.Muxed, sol.Cfg.MuxVal)
	if err != nil {
		log.Fatal(err)
	}
	vPath := filepath.Join(tmp, "traffic_dft.v")
	df, err := os.Create(vPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := verilog.Write(df, dft); err != nil {
		log.Fatal(err)
	}
	df.Close()
	fmt.Printf("DFT netlist written as Verilog: %s (%s)\n", vPath, dft.ComputeStats())
}
