// Customcircuit: build a netlist programmatically, run the proposed flow
// stage by stage, and inspect what each stage decided — which scan cells
// got a MUX, which gates were blocked by the justified vector, what the
// final controlled-input pattern is, and which gates had their inputs
// reordered for leakage.
//
//	go run ./examples/customcircuit
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/netlist"
)

func main() {
	// A small controller-ish design: 4 flops, a few levels of logic.
	c := netlist.New("demo")
	c.AddPI("start")
	c.AddPI("mode")
	c.AddFF("st0", "q0", "d0")
	c.AddFF("st1", "q1", "d1")
	c.AddFF("st2", "q2", "d2")
	c.AddFF("st3", "q3", "d3")
	c.AddGate(logic.Not, "nstart", "start")
	c.AddGate(logic.Nand, "t1", "q0", "mode")
	c.AddGate(logic.Nor, "t2", "t1", "q1")
	c.AddGate(logic.Nand, "t3", "t2", "nstart")
	c.AddGate(logic.Nand, "d0", "t3", "q3")
	c.AddGate(logic.Nor, "d1", "q0", "t1")
	c.AddGate(logic.Nand, "d2", "q1", "q2", "t2")
	c.AddGate(logic.Not, "d3", "q2")
	c.AddGate(logic.Nor, "done", "t3", "q3")
	c.MarkPO("done")
	if err := c.Freeze(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.ComputeStats())

	opts := core.ProposedOptions()
	sol, err := core.Build(c, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncritical path delay: %.1f ps (preserved)\n", sol.Stats.CriticalDelay)
	fmt.Println("scan cells:")
	for fi, ff := range sol.Circuit.FFs {
		q := sol.Circuit.Nets[ff.Q].Name
		if sol.Cfg.Muxed[fi] {
			v := 0
			if sol.Cfg.MuxVal[fi] {
				v = 1
			}
			fmt.Printf("  %-4s  MUXed to constant %d during shift\n", q, v)
		} else {
			fmt.Printf("  %-4s  on a critical path — transitions enter here\n", q)
		}
	}
	fmt.Println("primary inputs held at:")
	for i, pi := range sol.Circuit.PIs {
		fmt.Printf("  %-6s = %v\n", sol.Circuit.Nets[pi].Name, sol.Cfg.PIHold[i])
	}
	fmt.Printf("blocking: %d gates blocked, %d unblockable\n",
		sol.Stats.BlockedGates, sol.Stats.FailedGates)
	fmt.Printf("quiet: %.0f%% of gates are transition-free in scan mode\n",
		sol.BlockedShare()*100)
	fmt.Printf("reordered gates: %d\n", sol.Stats.ReorderedGates)

	fmt.Println("\nscan-mode net states (X = still toggling):")
	for ni := range sol.Circuit.Nets {
		n := &sol.Circuit.Nets[ni]
		if n.IsPI() || n.IsPPI() {
			continue
		}
		mark := " "
		if sol.Trans[ni] {
			mark = "~"
		}
		fmt.Printf("  %s %-7s = %v\n", mark, n.Name, sol.Val[ni])
	}

	// Materialize the DFT netlist (Figure 1's structure) and print it.
	dft, err := core.InsertMuxes(c, sol.Cfg.Muxed, sol.Cfg.MuxVal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaterialized DFT netlist: %s\n", dft.ComputeStats())
}
