// Powersweep: ablation frontier of the proposed structure. Sweeps the
// number of multiplexed scan cells from 0 up to the timing-feasible
// maximum (adding the most slack-rich cells first) and prints the
// dynamic/static power at each point, so the marginal value of every
// additional MUX is visible. Also reports the contribution of the
// observability directive and of gate input reordering at the full
// configuration.
//
//	go run ./examples/powersweep
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/scan"
)

func main() {
	cfg := scanpower.DefaultConfig()
	c, err := scanpower.Benchmark("s344")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.ComputeStats())

	res, err := atpg.Generate(c, cfg.ATPG)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test set: %d patterns\n\n", len(res.Patterns))

	// Order timing-feasible flops by slack, richest first.
	muxable, a := core.AddMUX(c, cfg.Delay)
	type cand struct {
		ff    int
		slack float64
	}
	var cands []cand
	for fi, ok := range muxable {
		if ok {
			cands = append(cands, cand{fi, a.SlackAt(c.FFs[fi].Q)})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].slack > cands[j].slack })

	measure := func(opts core.Options) power.Report {
		sol, err := core.Build(c, opts)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := power.MeasureScan(scan.New(sol.Circuit), res.Patterns, sol.Cfg, cfg.Leak, cfg.Cap)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	fmt.Printf("%-7s %14s %12s\n", "muxes", "dynamic µW/Hz", "static µW")
	for k := 0; k <= len(cands); k++ {
		mask := make([]bool, c.NumFFs())
		for i := 0; i < k; i++ {
			mask[cands[i].ff] = true
		}
		opts := cfg.Proposed
		opts.MuxMask = mask
		rep := measure(opts)
		fmt.Printf("%-7d %14.3e %12.2f\n", k, rep.DynamicPerHz, rep.StaticUW)
	}

	// Ablations at the full configuration.
	fmt.Println("\nablations (full MUX budget):")
	full := measure(cfg.Proposed)
	fmt.Printf("%-28s %14.3e %12.2f\n", "full proposed flow", full.DynamicPerHz, full.StaticUW)

	noObs := cfg.Proposed
	noObs.ObsDirected = false
	r := measure(noObs)
	fmt.Printf("%-28s %14.3e %12.2f\n", "without obs. directive", r.DynamicPerHz, r.StaticUW)

	noReorder := cfg.Proposed
	noReorder.ReorderInputs = false
	r = measure(noReorder)
	fmt.Printf("%-28s %14.3e %12.2f\n", "without input reordering", r.DynamicPerHz, r.StaticUW)

	noFill := cfg.Proposed
	noFill.FillTrials = 1
	r = measure(noFill)
	fmt.Printf("%-28s %14.3e %12.2f\n", "single random DC fill", r.DynamicPerHz, r.StaticUW)
}
