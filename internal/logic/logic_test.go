package logic

import (
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{{Zero, "0"}, {One, "1"}, {X, "X"}, {Value(7), "Value(7)"}}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Value(%d).String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestNot(t *testing.T) {
	if Zero.Not() != One || One.Not() != Zero || X.Not() != X {
		t.Fatalf("Not table wrong: 0->%v 1->%v X->%v", Zero.Not(), One.Not(), X.Not())
	}
}

func TestFromBoolRoundTrip(t *testing.T) {
	if !FromBool(true).Bool() || FromBool(false).Bool() {
		t.Fatal("FromBool/Bool round trip failed")
	}
}

func TestBoolPanicsOnX(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bool() on X did not panic")
		}
	}()
	_ = X.Bool()
}

func TestIsBinary(t *testing.T) {
	if !Zero.IsBinary() || !One.IsBinary() || X.IsBinary() {
		t.Fatal("IsBinary table wrong")
	}
}

func TestParseGateType(t *testing.T) {
	cases := map[string]GateType{
		"NAND": Nand, "NOR": Nor, "NOT": Not, "INV": Not, "AND": And,
		"OR": Or, "XOR": Xor, "XNOR": Xnor, "BUF": Buf, "BUFF": Buf,
		"MUX2": Mux2, "MUX": Mux2,
	}
	for s, want := range cases {
		got, ok := ParseGateType(s)
		if !ok || got != want {
			t.Errorf("ParseGateType(%q) = %v,%v want %v", s, got, ok, want)
		}
	}
	if _, ok := ParseGateType("DFF"); ok {
		t.Error("ParseGateType accepted DFF; flops are not combinational gates")
	}
	if _, ok := ParseGateType("bogus"); ok {
		t.Error("ParseGateType accepted bogus name")
	}
}

func TestControllingValues(t *testing.T) {
	cases := []struct {
		t           GateType
		cv, ncv, co Value
	}{
		{And, Zero, One, Zero},
		{Nand, Zero, One, One},
		{Or, One, Zero, One},
		{Nor, One, Zero, Zero},
	}
	for _, c := range cases {
		if !c.t.HasControllingValue() {
			t.Errorf("%v should have a controlling value", c.t)
		}
		if c.t.ControllingValue() != c.cv {
			t.Errorf("%v controlling value = %v, want %v", c.t, c.t.ControllingValue(), c.cv)
		}
		if c.t.NonControllingValue() != c.ncv {
			t.Errorf("%v non-controlling value = %v, want %v", c.t, c.t.NonControllingValue(), c.ncv)
		}
		if c.t.ControlledOutput() != c.co {
			t.Errorf("%v controlled output = %v, want %v", c.t, c.t.ControlledOutput(), c.co)
		}
	}
	for _, g := range []GateType{Buf, Not, Xor, Xnor, Mux2} {
		if g.HasControllingValue() {
			t.Errorf("%v should not have a controlling value", g)
		}
	}
}

func TestControllingValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ControllingValue(Xor) did not panic")
		}
	}()
	Xor.ControllingValue()
}

func TestInverting(t *testing.T) {
	inv := map[GateType]bool{Not: true, Nand: true, Nor: true, Xnor: true,
		Buf: false, And: false, Or: false, Xor: false, Mux2: false}
	for g, want := range inv {
		if g.Inverting() != want {
			t.Errorf("%v.Inverting() = %v, want %v", g, g.Inverting(), want)
		}
	}
}

func TestEvalBinaryTables(t *testing.T) {
	two := []struct {
		t    GateType
		want [4]Value // indexed by a*2+b over {0,1}
	}{
		{And, [4]Value{Zero, Zero, Zero, One}},
		{Nand, [4]Value{One, One, One, Zero}},
		{Or, [4]Value{Zero, One, One, One}},
		{Nor, [4]Value{One, Zero, Zero, Zero}},
		{Xor, [4]Value{Zero, One, One, Zero}},
		{Xnor, [4]Value{One, Zero, Zero, One}},
	}
	vals := []Value{Zero, One}
	for _, c := range two {
		for i, a := range vals {
			for j, b := range vals {
				got := Eval(c.t, []Value{a, b})
				if got != c.want[i*2+j] {
					t.Errorf("Eval(%v, %v,%v) = %v, want %v", c.t, a, b, got, c.want[i*2+j])
				}
			}
		}
	}
	if Eval(Not, []Value{One}) != Zero || Eval(Buf, []Value{One}) != One {
		t.Error("NOT/BUF tables wrong")
	}
}

func TestEvalXSemantics(t *testing.T) {
	cases := []struct {
		t    GateType
		in   []Value
		want Value
	}{
		{And, []Value{X, Zero}, Zero}, // controlling value dominates X
		{And, []Value{X, One}, X},
		{Nand, []Value{Zero, X}, One},
		{Nand, []Value{One, X}, X},
		{Or, []Value{X, One}, One},
		{Or, []Value{X, Zero}, X},
		{Nor, []Value{One, X}, Zero},
		{Nor, []Value{Zero, X}, X},
		{Xor, []Value{X, Zero}, X}, // XOR never blocks
		{Xor, []Value{X, One}, X},
		{Xnor, []Value{One, X}, X},
		{Not, []Value{X}, X},
		{Buf, []Value{X}, X},
		{Mux2, []Value{One, Zero, X}, X},
		{Mux2, []Value{One, One, X}, One}, // equal binary data dominates unknown select
		{Mux2, []Value{X, One, Zero}, X},
		{Mux2, []Value{Zero, One, One}, One},
		{Mux2, []Value{Zero, One, Zero}, Zero},
		{Mux2, []Value{X, X, X}, X},
	}
	for _, c := range cases {
		if got := Eval(c.t, c.in); got != c.want {
			t.Errorf("Eval(%v, %v) = %v, want %v", c.t, c.in, got, c.want)
		}
	}
}

func TestEvalWideGates(t *testing.T) {
	in := []Value{One, One, One, One}
	if Eval(Nand, in) != Zero {
		t.Error("NAND4(1,1,1,1) != 0")
	}
	in[2] = Zero
	if Eval(Nand, in) != One {
		t.Error("NAND4 with a 0 input != 1")
	}
	if Eval(Nor, []Value{Zero, Zero, Zero}) != One {
		t.Error("NOR3(0,0,0) != 1")
	}
	if Eval(Xor, []Value{One, One, One}) != One {
		t.Error("XOR3(1,1,1) != 1 (odd parity)")
	}
}

// Property: Eval restricted to binary inputs agrees with EvalBool for every
// gate type and every input combination up to arity 4.
func TestEvalAgreesWithEvalBool(t *testing.T) {
	types := []GateType{And, Nand, Or, Nor, Xor, Xnor}
	for _, gt := range types {
		for arity := 2; arity <= 4; arity++ {
			for bits := 0; bits < 1<<arity; bits++ {
				vs := make([]Value, arity)
				bs := make([]bool, arity)
				for i := 0; i < arity; i++ {
					b := bits>>i&1 == 1
					bs[i] = b
					vs[i] = FromBool(b)
				}
				if Eval(gt, vs) != FromBool(EvalBool(gt, bs)) {
					t.Fatalf("Eval/EvalBool disagree for %v %v", gt, bs)
				}
			}
		}
	}
	for bits := 0; bits < 8; bits++ {
		bs := []bool{bits&1 == 1, bits&2 == 2, bits&4 == 4}
		vs := []Value{FromBool(bs[0]), FromBool(bs[1]), FromBool(bs[2])}
		if Eval(Mux2, vs) != FromBool(EvalBool(Mux2, bs)) {
			t.Fatalf("Eval/EvalBool disagree for MUX2 %v", bs)
		}
	}
}

// Property: X is a sound abstraction — for any gate and any input vector
// containing X, every binary refinement of the inputs must produce an
// output consistent with the three-valued result (if Eval says 0/1, every
// refinement says the same).
func TestXSoundness(t *testing.T) {
	types := []GateType{And, Nand, Or, Nor, Xor, Xnor, Mux2, Not, Buf}
	arities := map[GateType]int{Not: 1, Buf: 1, Mux2: 3}
	for _, gt := range types {
		arity := arities[gt]
		if arity == 0 {
			arity = 3
		}
		// enumerate all 3^arity three-valued input vectors
		n := 1
		for i := 0; i < arity; i++ {
			n *= 3
		}
		for code := 0; code < n; code++ {
			in := make([]Value, arity)
			c := code
			for i := 0; i < arity; i++ {
				in[i] = Value(c % 3) // 0=X 1=Zero 2=One matches const order
				c /= 3
			}
			abs := Eval(gt, in)
			if !abs.IsBinary() {
				continue
			}
			// all refinements must agree
			var rec func(i int, ref []bool)
			rec = func(i int, ref []bool) {
				if i == arity {
					if EvalBool(gt, ref) != abs.Bool() {
						t.Fatalf("%v: Eval(%v)=%v but refinement %v gives %v",
							gt, in, abs, ref, EvalBool(gt, ref))
					}
					return
				}
				switch in[i] {
				case Zero:
					ref[i] = false
					rec(i+1, ref)
				case One:
					ref[i] = true
					rec(i+1, ref)
				default:
					ref[i] = false
					rec(i+1, ref)
					ref[i] = true
					rec(i+1, ref)
				}
			}
			rec(0, make([]bool, arity))
		}
	}
}

// Property (testing/quick): De Morgan duality between NAND and NOR on
// complemented binary inputs.
func TestDeMorganQuick(t *testing.T) {
	f := func(a, b, c bool) bool {
		in := []bool{a, b, c}
		neg := []bool{!a, !b, !c}
		return EvalBool(Nand, in) == EvalBool(Or, neg) &&
			EvalBool(Nor, in) == EvalBool(And, neg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGateTypeStringUnknown(t *testing.T) {
	if got := GateType(200).String(); got != "GateType(200)" {
		t.Errorf("unknown GateType string = %q", got)
	}
}
