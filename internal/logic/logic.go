// Package logic provides the three-valued (0, 1, X) logic system used by
// every simulator, justifier and power estimator in this repository.
//
// The value X means "unknown / free": during scan shifting the
// non-multiplexed pseudo-inputs carry arbitrary, changing data, so any line
// whose value depends on them is X. A line that evaluates to a binary
// constant under the controlled inputs alone is immune to scan-chain
// transitions — that observation is the heart of the transition-blocking
// algorithm of the paper.
package logic

import "fmt"

// Value is a three-valued logic level.
type Value uint8

const (
	// X is the unknown / unassigned value.
	X Value = iota
	// Zero is logic 0.
	Zero
	// One is logic 1.
	One
)

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "X"
	}
	return fmt.Sprintf("Value(%d)", uint8(v))
}

// IsBinary reports whether v is a determinate 0 or 1.
func (v Value) IsBinary() bool { return v == Zero || v == One }

// Not returns the three-valued complement of v (X stays X).
func (v Value) Not() Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	default:
		return X
	}
}

// FromBool converts a bool to a binary Value.
func FromBool(b bool) Value {
	if b {
		return One
	}
	return Zero
}

// Bool converts a binary Value to a bool; it panics on X because callers
// must only use it on lines already proven binary.
func (v Value) Bool() bool {
	switch v {
	case Zero:
		return false
	case One:
		return true
	}
	panic("logic: Bool() on X value")
}

// GateType enumerates the gate primitives understood by the simulators.
// After technology mapping only NAND, NOR and NOT appear in circuits, but
// the parser and the mapper accept the full set.
type GateType uint8

const (
	// Buf is a non-inverting buffer.
	Buf GateType = iota
	// Not is an inverter.
	Not
	// And is a logical AND of any arity >= 2.
	And
	// Nand is a logical NAND of any arity >= 2.
	Nand
	// Or is a logical OR of any arity >= 2.
	Or
	// Nor is a logical NOR of any arity >= 2.
	Nor
	// Xor is a logical XOR of any arity >= 2.
	Xor
	// Xnor is a logical XNOR of any arity >= 2.
	Xnor
	// Mux2 is the 2:1 multiplexer inserted by the proposed DFT
	// modification: inputs are (d0, d1, sel); output = sel ? d1 : d0.
	Mux2
	numGateTypes
)

var gateTypeNames = [...]string{
	Buf:  "BUF",
	Not:  "NOT",
	And:  "AND",
	Nand: "NAND",
	Or:   "OR",
	Nor:  "NOR",
	Xor:  "XOR",
	Xnor: "XNOR",
	Mux2: "MUX2",
}

// String implements fmt.Stringer.
func (t GateType) String() string {
	if int(t) < len(gateTypeNames) {
		return gateTypeNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// ParseGateType converts a .bench-style type name to a GateType.
func ParseGateType(s string) (GateType, bool) {
	switch s {
	case "BUF", "BUFF":
		return Buf, true
	case "NOT", "INV":
		return Not, true
	case "AND":
		return And, true
	case "NAND":
		return Nand, true
	case "OR":
		return Or, true
	case "NOR":
		return Nor, true
	case "XOR":
		return Xor, true
	case "XNOR":
		return Xnor, true
	case "MUX2", "MUX":
		return Mux2, true
	}
	return 0, false
}

// HasControllingValue reports whether the gate type has a controlling input
// value (a value on one input that fixes the output regardless of the other
// inputs). NOT/BUF/XOR/XNOR/MUX2 have none — transitions on any of their
// inputs always propagate (for MUX2 this conservatively treats the select
// as fixed during scan, which it is).
func (t GateType) HasControllingValue() bool {
	switch t {
	case And, Nand, Or, Nor:
		return true
	}
	return false
}

// ControllingValue returns the controlling input value of the gate type.
// It panics for types that have none; guard with HasControllingValue.
func (t GateType) ControllingValue() Value {
	switch t {
	case And, Nand:
		return Zero
	case Or, Nor:
		return One
	}
	panic("logic: ControllingValue on " + t.String())
}

// NonControllingValue returns the complement of the controlling value.
func (t GateType) NonControllingValue() Value {
	return t.ControllingValue().Not()
}

// Inverting reports whether the gate's output parity is inverted relative
// to the AND/OR core (true for NOT, NAND, NOR, XNOR).
func (t GateType) Inverting() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// ControlledOutput returns the output value produced when at least one
// input carries the controlling value. Panics for gate types without one.
func (t GateType) ControlledOutput() Value {
	switch t {
	case And:
		return Zero
	case Nand:
		return One
	case Or:
		return One
	case Nor:
		return Zero
	}
	panic("logic: ControlledOutput on " + t.String())
}

// Eval evaluates the gate type over the given three-valued inputs.
// For MUX2, ins must be (d0, d1, sel).
func Eval(t GateType, ins []Value) Value {
	switch t {
	case Buf:
		return ins[0]
	case Not:
		return ins[0].Not()
	case And, Nand:
		out := One
		for _, v := range ins {
			switch v {
			case Zero:
				out = Zero
			case X:
				if out == One {
					out = X
				}
			}
			if out == Zero {
				break
			}
		}
		if t == Nand {
			return out.Not()
		}
		return out
	case Or, Nor:
		out := Zero
		for _, v := range ins {
			switch v {
			case One:
				out = One
			case X:
				if out == Zero {
					out = X
				}
			}
			if out == One {
				break
			}
		}
		if t == Nor {
			return out.Not()
		}
		return out
	case Xor, Xnor:
		out := Zero
		for _, v := range ins {
			if v == X {
				return X
			}
			if v == One {
				out = out.Not()
			}
		}
		if t == Xnor {
			return out.Not()
		}
		return out
	case Mux2:
		d0, d1, sel := ins[0], ins[1], ins[2]
		switch sel {
		case Zero:
			return d0
		case One:
			return d1
		default:
			if d0 == d1 && d0.IsBinary() {
				return d0
			}
			return X
		}
	}
	panic("logic: Eval on unknown gate type " + t.String())
}

// EvalBool evaluates the gate over binary inputs with no X handling; it is
// the hot path of the two-valued simulators.
func EvalBool(t GateType, ins []bool) bool {
	switch t {
	case Buf:
		return ins[0]
	case Not:
		return !ins[0]
	case And, Nand:
		out := true
		for _, v := range ins {
			if !v {
				out = false
				break
			}
		}
		if t == Nand {
			return !out
		}
		return out
	case Or, Nor:
		out := false
		for _, v := range ins {
			if v {
				out = true
				break
			}
		}
		if t == Nor {
			return !out
		}
		return out
	case Xor, Xnor:
		out := false
		for _, v := range ins {
			if v {
				out = !out
			}
		}
		if t == Xnor {
			return !out
		}
		return out
	case Mux2:
		if ins[2] {
			return ins[1]
		}
		return ins[0]
	}
	panic("logic: EvalBool on unknown gate type " + t.String())
}
