// Package power measures the dynamic and static power dissipated in the
// combinational part of a full-scan circuit during scan-mode test
// application — the two quantities compared across structures in the
// paper's Table I.
//
// Dynamic power follows Eq. (1): each toggling net contributes its load
// capacitance; the per-cycle average of Σ C·V²/2 is reported in µW/Hz
// ("the values in the dynamic columns must be multiplied by the working
// frequency to give the actual dynamic power"). Static power is the mean
// over shift cycles of V_DD·Σ I_leak(gate state), in µW.
package power

import (
	"context"
	"fmt"
	"time"

	"repro/internal/leakage"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sim"
)

// CapModel gives load capacitances in femtofarads.
type CapModel struct {
	// PinCap is the input pin capacitance per gate type.
	PinCap map[logic.GateType]float64
	// PinCapPerFanin is added per input beyond 2 (wider cells use larger
	// devices).
	PinCapPerFanin float64
	// FFDCap is the pin capacitance of a flip-flop data input.
	FFDCap float64
	// POCap is the load presented by a primary output pad/boundary.
	POCap float64
	// WirePerFanout models routing capacitance per sink.
	WirePerFanout float64
	// VDD in volts.
	VDD float64
}

// DefaultCapModel returns the 45 nm-flavored capacitances used by all
// experiments.
func DefaultCapModel() CapModel {
	return CapModel{
		PinCap: map[logic.GateType]float64{
			logic.Not:  0.7,
			logic.Buf:  0.7,
			logic.Nand: 0.9,
			logic.Nor:  1.0,
			logic.And:  0.9,
			logic.Or:   1.0,
			logic.Xor:  1.6,
			logic.Xnor: 1.6,
			logic.Mux2: 1.1,
		},
		PinCapPerFanin: 0.15,
		FFDCap:         1.2,
		POCap:          2.0,
		WirePerFanout:  0.4,
		VDD:            0.9,
	}
}

// NetLoads returns the switched capacitance per net in fF for the frozen
// circuit: the sum of the input pin caps of all reading gates and flops,
// wire capacitance per sink, and pad load for primary outputs.
func (cm CapModel) NetLoads(c *netlist.Circuit) []float64 {
	loads := make([]float64, c.NumNets())
	for ni := range c.Nets {
		n := &c.Nets[ni]
		cap := 0.0
		for _, gi := range n.Fanout {
			g := &c.Gates[gi]
			pin := cm.PinCap[g.Type]
			if extra := len(g.Inputs) - 2; extra > 0 {
				pin += float64(extra) * cm.PinCapPerFanin
			}
			cap += pin + cm.WirePerFanout
		}
		cap += float64(len(n.FanoutFF)) * (cm.FFDCap + cm.WirePerFanout)
		if n.IsPO() {
			cap += cm.POCap
		}
		loads[ni] = cap
	}
	return loads
}

// Report is the scan-mode power measurement of one structure.
type Report struct {
	// DynamicPerHz is the average switched energy per scan clock in
	// µW/Hz (multiply by the shift frequency for watts).
	DynamicPerHz float64
	// PeakDynamicPerHz is the worst single cycle's switched energy in
	// µW/Hz — the peak-power figure test schedules must respect.
	PeakDynamicPerHz float64
	// StaticUW is the average leakage power over scan-mode cycles in µW.
	StaticUW float64
	// Cycles is the number of simulated scan-mode clock cycles.
	Cycles int
	// MeanTogglesPerCycle is the average number of switching nets per
	// cycle (an implementation-independent activity figure).
	MeanTogglesPerCycle float64
	// MeanLeakNA is the average total leakage current in nA.
	MeanLeakNA float64
}

// String summarizes the report.
func (r Report) String() string {
	return fmt.Sprintf("dynamic %.3e µW/Hz, static %.2f µW over %d cycles",
		r.DynamicPerHz, r.StaticUW, r.Cycles)
}

// MeasureOptions tunes the accounting of MeasureScan.
type MeasureOptions struct {
	// IncludeCapture also accumulates the capture-cycle state into the
	// transition and leakage sums. Table I's convention (and the default)
	// is scan/shift power only: the capture excursion to the test's own
	// input values is test-application power common to every structure.
	// Captures still update the chain contents either way, and the
	// boundary transition from the last shift state of one pattern to the
	// first of the next is always counted once.
	IncludeCapture bool
	// Ctx, when non-nil, is checked between patterns; a done context
	// aborts the measurement with its error.
	Ctx context.Context `json:"-"`
	// OnPattern, when non-nil, fires after each pattern's capture with the
	// zero-based pattern index — the per-pattern progress feed of the
	// telemetry layer. A nil OnPattern adds no work.
	OnPattern func(index int) `json:"-"`
	// OnBatch, when non-nil, fires after each packed batch of lanes is
	// evaluated, with the number of cycles packed into the batch and the
	// wall time the batch took. Only MeasureScanPacked emits it; the
	// serial kernels never call it.
	OnBatch func(lanes int, elapsed time.Duration) `json:"-"`
	// Lanes is the batch width of the packed kernel: how many scan cycles
	// are evaluated per pass (see sim.LaneWidths; 0 means the default,
	// sim.WideLanes). Reports are bit-identical across widths, so this is
	// purely a throughput knob; the serial kernels ignore it.
	Lanes int
}

// patternHook wraps a capture function so OnPattern fires once per
// applied pattern; with OnPattern unset the capture function is returned
// untouched.
func (o MeasureOptions) patternHook(capture func(pi, ppi []bool) []bool) func(pi, ppi []bool) []bool {
	if o.OnPattern == nil {
		return capture
	}
	idx := 0
	return func(pi, ppi []bool) []bool {
		next := capture(pi, ppi)
		o.OnPattern(idx)
		idx++
		return next
	}
}

// stopHook converts the optional context into a scan.Hooks Stop check.
func (o MeasureOptions) stopHook() func() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err
}

// MeasureScan applies the pattern set through the chain under cfg and
// accumulates dynamic and static power of the combinational part across
// the scan shift cycles (the paper's Table I convention; see
// MeasureOptions to include capture cycles).
func MeasureScan(ch scan.Runner, patterns []scan.Pattern, cfg scan.ShiftConfig,
	lm *leakage.Model, cm CapModel) (Report, error) {
	return MeasureScanOpts(ch, patterns, cfg, lm, cm, MeasureOptions{})
}

// MeasureScanOpts is MeasureScan with explicit accounting options. It
// accepts any scan.Runner (single chain or multi-chain).
func MeasureScanOpts(ch scan.Runner, patterns []scan.Pattern, cfg scan.ShiftConfig,
	lm *leakage.Model, cm CapModel, opts MeasureOptions) (Report, error) {

	c := ch.Circuit()
	s := sim.New(c)
	loads := cm.NetLoads(c)
	tc := sim.NewToggleCounter(loads)
	leakTabs := lm.CircuitTables(c)
	leakSum := 0.0
	leakCycles := 0
	stateCopy := make([]bool, c.NumNets())

	peak := 0.0
	observe := func(pi, ppi []bool) []bool {
		st := s.Eval(pi, ppi)
		copy(stateCopy, st)
		if d := tc.Observe(stateCopy); d > peak {
			peak = d
		}
		leakSum += lm.CircuitLeakBoolTabs(c, stateCopy, leakTabs)
		leakCycles++
		return st
	}

	hooks := scan.Hooks{
		ShiftCycle: func(pi, ppi []bool) { observe(pi, ppi) },
		Capture: opts.patternHook(func(pi, ppi []bool) []bool {
			var st []bool
			if opts.IncludeCapture {
				st = observe(pi, ppi)
			} else {
				st = s.Eval(pi, ppi)
			}
			next := make([]bool, c.NumFFs())
			for i, ff := range c.FFs {
				next[i] = st[ff.D]
			}
			return next
		}),
		Stop: opts.stopHook(),
	}
	if err := ch.Run(patterns, cfg, hooks); err != nil {
		return Report{}, err
	}

	var r Report
	r.Cycles = tc.Cycles()
	if r.Cycles > 0 {
		// fF·V² per cycle → J: 1e-15; per-cycle J → µW/Hz: 1e6.
		toUWHz := cm.VDD * cm.VDD / 2 * 1e-9
		r.DynamicPerHz = tc.MeanWeightedPerCycle() * toUWHz
		r.PeakDynamicPerHz = peak * toUWHz
		r.MeanTogglesPerCycle = float64(tc.RawTotal()) / float64(r.Cycles)
	}
	if leakCycles > 0 {
		r.MeanLeakNA = leakSum / float64(leakCycles)
		r.StaticUW = lm.PowerUW(r.MeanLeakNA)
	}
	return r, nil
}

// Improvement returns the percentage reduction from base to improved
// (positive = improved is lower), the convention of Table I.
func Improvement(base, improved float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - improved) / base * 100
}
