package power

import (
	"math/bits"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/benchjson"
	"repro/internal/iscas"
	"repro/internal/leakage"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sim"
)

// This file preserves the pre-refactor 64-lane measurement kernel as the
// baseline for `make bench-wide`: a per-gate switch over a topological
// net walk (the old sim.Packed) and per-lane shift extraction for the
// leakage accumulation (the old leakage.AccumLeakPacked). The shipping
// kernel compiles the circuit once into a levelized flat program and
// decomposes leakage lookups into lane masks; the report quantifies what
// that bought on the profiling circuits.

// legacyPackedSim is the pre-refactor sim.Packed: a 64-lane evaluator
// that re-walks Topo() and re-dispatches on gate type every batch.
type legacyPackedSim struct {
	c     *netlist.Circuit
	words []uint64
}

func newLegacyPackedSim(c *netlist.Circuit) *legacyPackedSim {
	return &legacyPackedSim{c: c, words: make([]uint64, c.NumNets())}
}

func (p *legacyPackedSim) Eval(pi, ppi []uint64) []uint64 {
	c := p.c
	v := p.words
	for i, n := range c.PIs {
		v[n] = pi[i]
	}
	for i, ff := range c.FFs {
		v[ff.Q] = ppi[i]
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		ins := g.Inputs
		var w uint64
		switch g.Type {
		case logic.Buf:
			w = v[ins[0]]
		case logic.Not:
			w = ^v[ins[0]]
		case logic.And, logic.Nand:
			w = v[ins[0]]
			for _, in := range ins[1:] {
				w &= v[in]
			}
			if g.Type == logic.Nand {
				w = ^w
			}
		case logic.Or, logic.Nor:
			w = v[ins[0]]
			for _, in := range ins[1:] {
				w |= v[in]
			}
			if g.Type == logic.Nor {
				w = ^w
			}
		case logic.Xor, logic.Xnor:
			w = v[ins[0]]
			for _, in := range ins[1:] {
				w ^= v[in]
			}
			if g.Type == logic.Xnor {
				w = ^w
			}
		case logic.Mux2:
			sel := v[ins[2]]
			w = (v[ins[0]] &^ sel) | (v[ins[1]] & sel)
		default:
			panic("legacy packed Eval on unknown gate type " + g.Type.String())
		}
		v[g.Output] = w
	}
	return v
}

// legacyAccumLeak is the pre-refactor leakage.AccumLeakPacked: per gate,
// every lane's table index is extracted with a serially dependent
// shift-and-mask chain.
func legacyAccumLeak(c *netlist.Circuit, words []uint64, n int, tabs [][]float64, cyc []float64) {
	for gi := range c.Gates {
		g := &c.Gates[gi]
		tab := tabs[gi]
		switch len(g.Inputs) {
		case 1:
			a := words[g.Inputs[0]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[a&1]
				a >>= 1
			}
		case 2:
			a := words[g.Inputs[0]]
			b := words[g.Inputs[1]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[(a&1)|(b&1)<<1]
				a >>= 1
				b >>= 1
			}
		case 3:
			a := words[g.Inputs[0]]
			b := words[g.Inputs[1]]
			d := words[g.Inputs[2]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[(a&1)|(b&1)<<1|(d&1)<<2]
				a >>= 1
				b >>= 1
				d >>= 1
			}
		default:
			for t := 0; t < n; t++ {
				idx := 0
				for i, in := range g.Inputs {
					idx |= int(words[in]>>uint(t)&1) << i
				}
				cyc[t] += tab[idx]
			}
		}
	}
}

// legacyMeasureScanPacked is the pre-refactor MeasureScanPackedOpts,
// verbatim except for using the preserved local evaluator and
// accumulator. It produces the same bit-identical Report the shipping
// kernel does — the bench test asserts that before timing anything.
func legacyMeasureScanPacked(ch scan.Runner, patterns []scan.Pattern, cfg scan.ShiftConfig,
	lm *leakage.Model, cm CapModel, opts MeasureOptions) (Report, error) {

	c := ch.Circuit()
	ps := newLegacyPackedSim(c)
	scratch := sim.New(c)
	loads := cm.NetLoads(c)
	leakTabs := lm.CircuitTables(c)
	nNets := c.NumNets()

	var (
		piW  = make([]uint64, len(c.PIs))
		ppiW = make([]uint64, c.NumFFs())
		lane int

		prevBit = make([]uint64, nNets)
		primed  bool

		cycDelta = make([]float64, sim.PackedLanes)
		cycLeak  = make([]float64, sim.PackedLanes)

		dynTotal, peak float64
		rawToggles     int64
		cycles         int
		leakSum        float64
		leakCycles     int
	)

	flush := func() {
		n := lane
		if n == 0 {
			return
		}
		start := time.Now()
		words := ps.Eval(piW, ppiW)

		for t := 0; t < n; t++ {
			cycLeak[t] = 0
			cycDelta[t] = 0
		}
		legacyAccumLeak(c, words, n, leakTabs, cycLeak)

		valid := ^uint64(0)
		if n < 64 {
			valid = 1<<uint(n) - 1
		}
		for ni := 0; ni < nNets; ni++ {
			w := words[ni] & valid
			tw := (w ^ (w<<1 | prevBit[ni])) & valid
			if !primed {
				tw &^= 1
			}
			prevBit[ni] = w >> uint(n-1)
			if tw == 0 {
				continue
			}
			rawToggles += int64(bits.OnesCount64(tw))
			load := loads[ni]
			for tw != 0 {
				cycDelta[bits.TrailingZeros64(tw)] += load
				tw &= tw - 1
			}
		}

		first := 0
		if !primed {
			first = 1
		}
		for t := first; t < n; t++ {
			d := cycDelta[t]
			dynTotal += d
			if d > peak {
				peak = d
			}
			cycles++
		}
		for t := 0; t < n; t++ {
			leakSum += cycLeak[t]
			leakCycles++
		}

		primed = true
		lane = 0
		for i := range piW {
			piW[i] = 0
		}
		for i := range ppiW {
			ppiW[i] = 0
		}
		if opts.OnBatch != nil {
			opts.OnBatch(n, time.Since(start))
		}
	}

	observe := func(pi, ppi []bool) {
		bit := uint64(1) << uint(lane)
		for i, v := range pi {
			if v {
				piW[i] |= bit
			}
		}
		for i, v := range ppi {
			if v {
				ppiW[i] |= bit
			}
		}
		lane++
		if lane == sim.PackedLanes {
			flush()
		}
	}

	hooks := scan.Hooks{
		ShiftCycle: observe,
		Stop:       opts.stopHook(),
		Capture: opts.patternHook(func(pi, ppi []bool) []bool {
			if opts.IncludeCapture {
				observe(pi, ppi)
			}
			vals := scratch.Eval(pi, ppi)
			next := make([]bool, c.NumFFs())
			for i, ff := range c.FFs {
				next[i] = vals[ff.D]
			}
			return next
		}),
	}
	if err := ch.Run(patterns, cfg, hooks); err != nil {
		return Report{}, err
	}
	flush()

	var r Report
	r.Cycles = cycles
	if cycles > 0 {
		toUWHz := cm.VDD * cm.VDD / 2 * 1e-9
		r.DynamicPerHz = dynTotal / float64(cycles) * toUWHz
		r.PeakDynamicPerHz = peak * toUWHz
		r.MeanTogglesPerCycle = float64(rawToggles) / float64(cycles)
	}
	if leakCycles > 0 {
		r.MeanLeakNA = leakSum / float64(leakCycles)
		r.StaticUW = lm.PowerUW(r.MeanLeakNA)
	}
	return r, nil
}

// TestBenchWideMeasureJSON times the scan-power measurement kernel —
// preserved legacy 64-lane baseline vs the compiled evaluator at 64 and
// 256 lanes — on the profiling circuits and merges a measure/<circuit>
// entry into the bench-wide report. `make bench-wide` runs it; without
// WIDE_BENCH_OUT it is skipped so normal test runs stay fast.
func TestBenchWideMeasureJSON(t *testing.T) {
	out := os.Getenv("WIDE_BENCH_OUT")
	if out == "" {
		t.Skip("set WIDE_BENCH_OUT to run the wide-kernel measure benchmark")
	}
	const nPats = 256
	const rounds = 5
	entries := map[string]benchjson.Entry{}
	for _, name := range []string{"s1423", "s5378"} {
		p, ok := iscas.ByName(name)
		if !ok {
			t.Fatalf("no ISCAS profile %q", name)
		}
		c, err := iscas.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := scan.Traditional(c)
		pats := randomPatterns(rand.New(rand.NewSource(40)), c, nPats)
		lm := leakage.Default()
		cm := DefaultCapModel()
		ch := scan.New(c)

		run := func(lanes int) Report {
			opts := MeasureOptions{Lanes: lanes}
			var r Report
			var err error
			if lanes == 0 {
				r, err = legacyMeasureScanPacked(ch, pats, cfg, lm, cm, MeasureOptions{})
			} else {
				r, err = MeasureScanPackedOpts(ch, pats, cfg, lm, cm, opts)
			}
			if err != nil {
				t.Fatal(err)
			}
			return r
		}

		// The baseline must still be the kernel it claims to be: all
		// three variants produce bit-identical reports.
		legacyRep, new64, new256 := run(0), run(64), run(256)
		if f := reportsIdentical(legacyRep, new64); f != "" {
			t.Fatalf("%s: legacy vs new64 %s differs", name, f)
		}
		if f := reportsIdentical(legacyRep, new256); f != "" {
			t.Fatalf("%s: legacy vs new256 %s differs", name, f)
		}

		legacyMS := benchjson.MinMS(rounds, func() { run(0) })
		new64MS := benchjson.MinMS(rounds, func() { run(64) })
		new256MS := benchjson.MinMS(rounds, func() { run(256) })
		speedup := legacyMS / new256MS
		t.Logf("%s: legacy64 %.2fms, new64 %.2fms, new256 %.2fms (%.2fx)",
			name, legacyMS, new64MS, new256MS, speedup)
		entries["measure/"+name] = benchjson.Entry{
			Workload: "MeasureScanPacked, 256 random patterns, traditional scan, seed 40, best of 5",
			ResultsMS: map[string]float64{
				"legacy64": benchjson.Round2(legacyMS),
				"new64":    benchjson.Round2(new64MS),
				"new256":   benchjson.Round2(new256MS),
			},
			SpeedupVsLegacy64: benchjson.Round2(speedup),
			Criterion:         "new256 >= 1.5x over the pre-refactor 64-lane kernel",
			Met:               speedup >= 1.5,
		}
	}
	if err := benchjson.Merge(out, entries); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged measure entries into %s", out)
}
