package power

import (
	"math/rand"
	"testing"

	"repro/internal/iscas"
	"repro/internal/leakage"
	"repro/internal/scan"
	"repro/internal/sim"
)

func TestWTMHandComputed(t *testing.T) {
	order := []int{0, 1, 2, 3} // identity chain, position 0 nearest scan-in
	// Loaded state 1010 (flop0=1, flop1=0, ...). Stream (first shifted =
	// bit for position 3): 0,1,0,1. Transitions at stream steps 0-1, 1-2,
	// 2-3 with weights 3, 2, 1 -> WTM = 6.
	if got := WTM([]bool{true, false, true, false}, order); got != 6 {
		t.Errorf("WTM = %d, want 6", got)
	}
	// Constant state: no transitions.
	if got := WTM([]bool{true, true, true, true}, order); got != 0 {
		t.Errorf("WTM(const) = %d, want 0", got)
	}
	// Single transition mid-stream: state 0011 -> stream 1,1,0,0:
	// mismatch at step 1-2, weight 2.
	if got := WTM([]bool{false, false, true, true}, order); got != 2 {
		t.Errorf("WTM = %d, want 2", got)
	}
}

func TestWTMRespectsChainOrder(t *testing.T) {
	state := []bool{true, false, true, false}
	// Reorder the chain so equal bits are adjacent: flops 0,2 then 1,3.
	grouped := []int{0, 2, 1, 3}
	identity := []int{0, 1, 2, 3}
	if WTM(state, grouped) >= WTM(state, identity) {
		t.Errorf("grouped order %d should beat identity %d",
			WTM(state, grouped), WTM(state, identity))
	}
}

func TestTestSetWTM(t *testing.T) {
	order := []int{0, 1}
	pats := []scan.Pattern{
		{State: []bool{true, false}},
		{State: []bool{false, false}},
	}
	if got := TestSetWTM(pats, order); got != 1 {
		t.Errorf("TestSetWTM = %d, want 1", got)
	}
}

// TestWTMCorrelatesWithSimulatedDynamic validates the estimator: over
// random pattern sets on a real circuit, the set with (much) higher WTM
// must measure higher traditional-scan dynamic power.
func TestWTMCorrelatesWithSimulatedDynamic(t *testing.T) {
	p, _ := iscas.ByName("s344")
	c, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	ch := scan.New(c)
	order := make([]int, c.NumFFs())
	for i := range order {
		order[i] = i
	}
	lm := leakage.Default()
	cm := DefaultCapModel()
	rng := rand.New(rand.NewSource(9))

	makeSet := func(flip float64) []scan.Pattern {
		// flip = probability a bit differs from its stream predecessor;
		// low flip -> low WTM workload.
		var pats []scan.Pattern
		for i := 0; i < 20; i++ {
			pat := scan.Pattern{PI: make([]bool, len(c.PIs)), State: make([]bool, c.NumFFs())}
			sim.RandomVector(rng, pat.PI)
			cur := rng.Intn(2) == 1
			for j := range pat.State {
				if rng.Float64() < flip {
					cur = !cur
				}
				pat.State[j] = cur
			}
			pats = append(pats, pat)
		}
		return pats
	}
	calm := makeSet(0.05)
	wild := makeSet(0.5)
	if TestSetWTM(calm, order) >= TestSetWTM(wild, order) {
		t.Fatal("construction failed: calm set should have lower WTM")
	}
	repCalm, err := MeasureScan(ch, calm, scan.Traditional(c), lm, cm)
	if err != nil {
		t.Fatal(err)
	}
	repWild, err := MeasureScan(ch, wild, scan.Traditional(c), lm, cm)
	if err != nil {
		t.Fatal(err)
	}
	if repCalm.DynamicPerHz >= repWild.DynamicPerHz {
		t.Errorf("WTM did not predict dynamic power: calm %v >= wild %v",
			repCalm.DynamicPerHz, repWild.DynamicPerHz)
	}
}

func TestPeakDynamicAtLeastMean(t *testing.T) {
	p, _ := iscas.ByName("s344")
	c, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	ch := scan.New(c)
	rng := rand.New(rand.NewSource(10))
	var pats []scan.Pattern
	for i := 0; i < 10; i++ {
		pat := scan.Pattern{PI: make([]bool, len(c.PIs)), State: make([]bool, c.NumFFs())}
		sim.RandomVector(rng, pat.PI)
		sim.RandomVector(rng, pat.State)
		pats = append(pats, pat)
	}
	rep, err := MeasureScan(ch, pats, scan.Traditional(c), leakage.Default(), DefaultCapModel())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakDynamicPerHz < rep.DynamicPerHz {
		t.Errorf("peak %v below mean %v", rep.PeakDynamicPerHz, rep.DynamicPerHz)
	}
	if rep.PeakDynamicPerHz <= 0 {
		t.Error("peak should be positive for random workload")
	}
}
