package power

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/iscas"
	"repro/internal/leakage"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sim"
)

// reportsIdentical returns "" when a and b agree on every field to the
// last bit, else a description of the first difference. The packed kernel
// promises bit-identity, so no tolerance is applied.
func reportsIdentical(a, b Report) string {
	switch {
	case a.Cycles != b.Cycles:
		return "Cycles"
	case a.DynamicPerHz != b.DynamicPerHz:
		return "DynamicPerHz"
	case a.PeakDynamicPerHz != b.PeakDynamicPerHz:
		return "PeakDynamicPerHz"
	case a.StaticUW != b.StaticUW:
		return "StaticUW"
	case a.MeanTogglesPerCycle != b.MeanTogglesPerCycle:
		return "MeanTogglesPerCycle"
	case a.MeanLeakNA != b.MeanLeakNA:
		return "MeanLeakNA"
	}
	return ""
}

func randomPatterns(rng *rand.Rand, c *netlist.Circuit, n int) []scan.Pattern {
	pats := make([]scan.Pattern, n)
	for i := range pats {
		pats[i] = scan.Pattern{PI: make([]bool, len(c.PIs)), State: make([]bool, c.NumFFs())}
		sim.RandomVector(rng, pats[i].PI)
		sim.RandomVector(rng, pats[i].State)
	}
	return pats
}

// TestMeasureScanPackedMatchesSlow: the bit-parallel kernel must agree
// with the full re-evaluation path bit for bit, across structures,
// capture accounting modes, and batch-boundary-crossing pattern counts.
func TestMeasureScanPackedMatchesSlow(t *testing.T) {
	p, _ := iscas.ByName("s344")
	c, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	lm := leakage.Default()
	cm := DefaultCapModel()
	rng := rand.New(rand.NewSource(21))

	cfgs := []scan.ShiftConfig{scan.Traditional(c)}
	withMux := scan.Traditional(c)
	for f := range withMux.Muxed {
		if f%2 == 0 {
			withMux.Muxed[f] = true
			withMux.MuxVal[f] = f%4 == 0
		}
	}
	withMux.PIHold[0] = logic.One
	cfgs = append(cfgs, withMux)

	for _, nPats := range []int{1, 12} {
		pats := randomPatterns(rng, c, nPats)
		for ci, cfg := range cfgs {
			for _, includeCapture := range []bool{false, true} {
				opts := MeasureOptions{IncludeCapture: includeCapture}
				slow, err := MeasureScanOpts(scan.New(c), pats, cfg, lm, cm, opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, lanes := range sim.LaneWidths() {
					opts.Lanes = lanes
					packed, err := MeasureScanPackedOpts(scan.New(c), pats, cfg, lm, cm, opts)
					if err != nil {
						t.Fatal(err)
					}
					if field := reportsIdentical(slow, packed); field != "" {
						t.Errorf("pats=%d cfg=%d cap=%v lanes=%d: %s differs: serial %+v, packed %+v",
							nPats, ci, includeCapture, lanes, field, slow, packed)
					}
				}
			}
		}
	}
}

// TestMeasureScanPackedPartialBatch: a stream far shorter than one
// 64-lane batch must still match the serial kernel.
func TestMeasureScanPackedPartialBatch(t *testing.T) {
	c := buildShiftReg(t)
	lm := leakage.Default()
	cm := DefaultCapModel()
	pats := []scan.Pattern{
		{PI: []bool{true}, State: []bool{true, false, true}},
		{PI: []bool{false}, State: []bool{false, true, false}},
	}
	slow, err := MeasureScan(scan.New(c), pats, scan.Traditional(c), lm, cm)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := MeasureScanPacked(scan.New(c), pats, scan.Traditional(c), lm, cm)
	if err != nil {
		t.Fatal(err)
	}
	if field := reportsIdentical(slow, packed); field != "" {
		t.Errorf("%s differs: serial %+v, packed %+v", field, slow, packed)
	}
}

// TestMeasureScanPackedEmptyAndErrors pins the edge behaviour shared with
// the serial kernels.
func TestMeasureScanPackedEmptyAndErrors(t *testing.T) {
	c := buildShiftReg(t)
	rep, err := MeasureScanPacked(scan.New(c), nil, scan.Traditional(c), leakage.Default(), DefaultCapModel())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 0 || rep.DynamicPerHz != 0 {
		t.Errorf("empty run should measure nothing: %+v", rep)
	}
	bad := []scan.Pattern{{PI: []bool{true, true}, State: []bool{true, false, true}}}
	if _, err := MeasureScanPacked(scan.New(c), bad, scan.Traditional(c), leakage.Default(), DefaultCapModel()); err == nil {
		t.Error("bad pattern accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pats := []scan.Pattern{{PI: []bool{true}, State: []bool{true, false, true}}}
	if _, err := MeasureScanPackedOpts(scan.New(c), pats, scan.Traditional(c),
		leakage.Default(), DefaultCapModel(), MeasureOptions{Ctx: ctx}); err == nil {
		t.Error("cancelled context not honoured")
	}
	if _, err := MeasureScanPackedOpts(scan.New(c), pats, scan.Traditional(c),
		leakage.Default(), DefaultCapModel(), MeasureOptions{Lanes: 128}); err == nil {
		t.Error("unsupported lane width accepted")
	}
}

// TestMeasureScanPackedHooks: OnPattern fires once per pattern in order,
// and the OnBatch lane counts sum to the number of observed cycles.
func TestMeasureScanPackedHooks(t *testing.T) {
	p, _ := iscas.ByName("s344")
	c, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomPatterns(rand.New(rand.NewSource(5)), c, 5)
	for _, width := range sim.LaneWidths() {
		var patIdx []int
		lanes := 0
		batches := 0
		opts := MeasureOptions{
			Lanes:     width,
			OnPattern: func(i int) { patIdx = append(patIdx, i) },
			OnBatch: func(n int, _ time.Duration) {
				lanes += n
				batches++
				if n < 1 || n > width {
					t.Errorf("width %d: batch of %d lanes", width, n)
				}
			},
		}
		rep, err := MeasureScanPackedOpts(scan.New(c), pats, scan.Traditional(c),
			leakage.Default(), DefaultCapModel(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(patIdx) != len(pats) {
			t.Fatalf("width %d: OnPattern fired %d times, want %d", width, len(patIdx), len(pats))
		}
		for i, got := range patIdx {
			if got != i {
				t.Errorf("width %d: OnPattern[%d] = %d", width, i, got)
			}
		}
		// Observed cycles = counted transitions + the priming observation.
		if want := rep.Cycles + 1; lanes != want {
			t.Errorf("width %d: OnBatch lanes sum = %d, want %d", width, lanes, want)
		}
		if wantMin := (rep.Cycles + 1 + width - 1) / width; batches < wantMin {
			t.Errorf("width %d: OnBatch fired %d times, want >= %d", width, batches, wantMin)
		}
	}
}

// randomFuzzCircuit builds a small random, well-formed frozen circuit
// from a seed: a DAG of random gates over a few PIs and flops.
func randomFuzzCircuit(rng *rand.Rand) *netlist.Circuit {
	c := netlist.New("fuzz")
	nPI := 1 + rng.Intn(3)
	nFF := 1 + rng.Intn(4)
	var nets []string
	for i := 0; i < nPI; i++ {
		name := "pi" + string(rune('a'+i))
		c.AddPI(name)
		nets = append(nets, name)
	}
	for i := 0; i < nFF; i++ {
		q := "q" + string(rune('a'+i))
		nets = append(nets, q)
	}
	types := []logic.GateType{logic.Not, logic.Buf, logic.And, logic.Nand,
		logic.Or, logic.Nor, logic.Xor, logic.Xnor, logic.Mux2}
	nGates := 3 + rng.Intn(20)
	var driven []string
	for i := 0; i < nGates; i++ {
		tpe := types[rng.Intn(len(types))]
		arity := 2 + rng.Intn(3)
		switch tpe {
		case logic.Not, logic.Buf:
			arity = 1
		case logic.Mux2:
			arity = 3
		}
		ins := make([]string, arity)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		out := "g" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		c.AddGate(tpe, out, ins...)
		nets = append(nets, out)
		driven = append(driven, out)
	}
	for i := 0; i < nFF; i++ {
		d := driven[rng.Intn(len(driven))]
		c.AddFF("f"+string(rune('a'+i)), "q"+string(rune('a'+i)), d)
	}
	c.MarkPO(driven[len(driven)-1])
	c.MustFreeze()
	return c
}

// FuzzMeasureScanPackedEquivalence drives random circuits, pattern sets
// and shift configurations through both kernels and requires bit-equal
// reports. `make fuzz-equiv` runs this continuously; the seed corpus runs
// on every `go test`.
func FuzzMeasureScanPackedEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(0b1010), false)
	f.Add(int64(2), uint8(1), uint8(0), true)
	f.Add(int64(99), uint8(70), uint8(0xFF), false)
	f.Fuzz(func(t *testing.T, seed int64, nPats, muxMask uint8, includeCapture bool) {
		rng := rand.New(rand.NewSource(seed))
		c := randomFuzzCircuit(rng)
		np := int(nPats)%80 + 1
		pats := randomPatterns(rng, c, np)
		cfg := scan.Traditional(c)
		for fi := range cfg.Muxed {
			if muxMask>>(uint(fi)%8)&1 == 1 {
				cfg.Muxed[fi] = true
				cfg.MuxVal[fi] = rng.Intn(2) == 1
			}
		}
		for pi := range cfg.PIHold {
			cfg.PIHold[pi] = logic.Value(rng.Intn(3))
		}
		opts := MeasureOptions{IncludeCapture: includeCapture}
		lm := leakage.Default()
		cm := DefaultCapModel()
		slow, err := MeasureScanOpts(scan.New(c), pats, cfg, lm, cm, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, lanes := range sim.LaneWidths() {
			opts.Lanes = lanes
			packed, err := MeasureScanPackedOpts(scan.New(c), pats, cfg, lm, cm, opts)
			if err != nil {
				t.Fatal(err)
			}
			if field := reportsIdentical(slow, packed); field != "" {
				t.Fatalf("seed=%d np=%d mux=%x cap=%v lanes=%d: %s differs: serial %+v, packed %+v",
					seed, np, muxMask, includeCapture, lanes, field, slow, packed)
			}
		}
	})
}

// BenchmarkScanKernels compares the three measurement kernels on a
// traditional-scan ISCAS stream with >= 64 patterns — the regime the
// Table I rows spend their wall time in. The packed kernel's >= 5x edge
// over the event-driven path here is an acceptance criterion recorded in
// BENCH_*.json.
func BenchmarkScanKernels(b *testing.B) {
	p, _ := iscas.ByName("s1423")
	c, err := iscas.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	cfg := scan.Traditional(c)
	pats := randomPatterns(rand.New(rand.NewSource(40)), c, 64)
	lm := leakage.Default()
	cm := DefaultCapModel()
	ch := scan.New(c)
	kernels := []struct {
		name string
		fn   func() (Report, error)
	}{
		{"dense", func() (Report, error) { return MeasureScan(ch, pats, cfg, lm, cm) }},
		{"fast", func() (Report, error) { return MeasureScanFast(ch, pats, cfg, lm, cm) }},
		{"packed", func() (Report, error) { return MeasureScanPacked(ch, pats, cfg, lm, cm) }},
	}
	for _, k := range kernels {
		b.Run(k.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := k.fn(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
