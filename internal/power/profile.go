package power

import (
	"repro/internal/scan"
	"repro/internal/sim"
)

// ToggleProfile runs the scan workload and returns, per net, the total
// switched capacitance it contributed (load × toggle count, fF) across
// all shift cycles — the ranking signal peak-power test-point insertion
// uses to decide where forcing a constant buys the most.
func ToggleProfile(ch scan.Runner, patterns []scan.Pattern, cfg scan.ShiftConfig,
	cm CapModel) ([]float64, error) {

	c := ch.Circuit()
	es := sim.NewEvent(c)
	scratch := sim.New(c)
	loads := cm.NetLoads(c)
	profile := make([]float64, c.NumNets())
	hooks := scan.Hooks{
		ShiftCycle: func(pi, ppi []bool) {
			for _, n := range es.Apply(pi, ppi) {
				profile[n] += loads[n]
			}
		},
		Capture: func(pi, ppi []bool) []bool {
			vals := scratch.Eval(pi, ppi)
			next := make([]bool, c.NumFFs())
			for i, ff := range c.FFs {
				next[i] = vals[ff.D]
			}
			return next
		},
	}
	if err := ch.Run(patterns, cfg, hooks); err != nil {
		return nil, err
	}
	return profile, nil
}
