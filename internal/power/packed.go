package power

import (
	"math/bits"
	"time"

	"repro/internal/leakage"
	"repro/internal/scan"
	"repro/internal/sim"
)

// MeasureScanPacked is MeasureScan on the bit-parallel simulator: it
// packs consecutive scan-stream cycles into lane words — 64 per uint64,
// opts.Lanes cycles per batch (default sim.WideLanes = 256) — evaluates
// the combinational core once per batch with word-wide boolean operations
// over the compiled levelized program, counts toggled capacitance from
// the popcount of prev^cur per net, and resolves every gate's leakage
// state per lane from the packed words.
//
// Results are bit-identical to MeasureScan — not merely close, and at
// every supported lane width: the per-cycle accumulation orders of the
// serial kernel (net order within a cycle for switched capacitance, gate
// order within a cycle for leakage, cycle order across the run) are
// reproduced exactly, so every float in the Report matches to the last
// ulp. The equivalence is enforced by unit and fuzz tests, like the
// existing MeasureScanFast guarantee.
func MeasureScanPacked(ch scan.Runner, patterns []scan.Pattern, cfg scan.ShiftConfig,
	lm *leakage.Model, cm CapModel) (Report, error) {
	return MeasureScanPackedOpts(ch, patterns, cfg, lm, cm, MeasureOptions{})
}

// MeasureScanPackedOpts is MeasureScanPacked with accounting options.
func MeasureScanPackedOpts(ch scan.Runner, patterns []scan.Pattern, cfg scan.ShiftConfig,
	lm *leakage.Model, cm CapModel, opts MeasureOptions) (Report, error) {

	lanes, err := sim.ResolveLanes(opts.Lanes)
	if err != nil {
		return Report{}, err
	}
	ww := lanes / 64

	c := ch.Circuit()
	prog := sim.Compile(c)
	loads := cm.NetLoads(c)
	leakTabs := lm.CircuitTables(c)
	nNets := c.NumNets()

	// eval runs the shared compiled program at the chosen width over the
	// flat input layout (ww words per PI/FF) and returns the flat per-net
	// lane words (ww words per net).
	var eval func(piW, ppiW []uint64) []uint64
	if ww == 1 {
		ps := sim.NewPackedProgram(prog)
		eval = ps.Eval
	} else {
		wide := sim.NewWideProgram(prog)
		eval = wide.Eval
	}

	// The capture responses run the same compiled program one lane at a
	// time (lane 0 of a private packed instance): bit 0 of every output
	// word is exactly the scalar evaluation of the same inputs, so this
	// changes nothing but the cost of the throwaway capture simulation.
	capSim := sim.NewPackedProgram(prog)
	capPI := make([]uint64, len(c.PIs))
	capPPI := make([]uint64, c.NumFFs())

	var (
		piW  = make([]uint64, len(c.PIs)*ww)
		ppiW = make([]uint64, c.NumFFs()*ww)
		lane int // cycles packed into the current batch

		// prevBit[n] is net n's value on the last cycle of the previous
		// batch (bit 0), the seed for cross-batch transition counting.
		prevBit = make([]uint64, nNets)
		primed  bool // true once the first observed cycle has been consumed

		cycDelta = make([]float64, lanes)
		cycLeak  = make([]float64, lanes)

		dynTotal, peak float64
		rawToggles     int64
		cycles         int
		leakSum        float64
		leakCycles     int
	)

	// flush evaluates the batched lanes and folds them into the running
	// sums in exactly the serial order: per lane, switched capacitance in
	// net order and leakage in gate order; across lanes, ascending cycle
	// order.
	flush := func() {
		n := lane
		if n == 0 {
			return
		}
		start := time.Now()
		words := eval(piW, ppiW)

		for t := 0; t < n; t++ {
			cycLeak[t] = 0
			cycDelta[t] = 0
		}
		lm.AccumLeakPackedW(c, words, ww, n, leakTabs, cycLeak)

		kLast := (n - 1) >> 6
		lastShift := uint((n - 1) & 63)
		for ni := 0; ni < nNets; ni++ {
			load := loads[ni]
			carry := prevBit[ni]
			for k, base := 0, 0; base < n; k, base = k+1, base+64 {
				valid := ^uint64(0)
				if rem := n - base; rem < 64 {
					valid = 1<<uint(rem) - 1
				}
				w := words[ni*ww+k] & valid
				// Toggle word: bit t set iff the net differs between
				// lane t and lane t-1 (bit 0 compares against the
				// previous word's top lane, or across batches for k=0).
				tw := (w ^ (w<<1 | carry)) & valid
				if k == 0 && !primed {
					tw &^= 1 // the first cycle ever is the priming observation
				}
				carry = w >> 63
				if tw == 0 {
					continue
				}
				rawToggles += int64(bits.OnesCount64(tw))
				cw := cycDelta[base:]
				for ; tw != 0; tw &= tw - 1 {
					cw[bits.TrailingZeros64(tw)] += load
				}
			}
			prevBit[ni] = words[ni*ww+kLast] >> lastShift & 1
		}

		first := 0
		if !primed {
			first = 1
		}
		for t := first; t < n; t++ {
			d := cycDelta[t]
			dynTotal += d
			if d > peak {
				peak = d
			}
			cycles++
		}
		for t := 0; t < n; t++ {
			leakSum += cycLeak[t]
			leakCycles++
		}

		primed = true
		lane = 0
		for i := range piW {
			piW[i] = 0
		}
		for i := range ppiW {
			ppiW[i] = 0
		}
		if opts.OnBatch != nil {
			opts.OnBatch(n, time.Since(start))
		}
	}

	observe := func(pi, ppi []bool) {
		wk, bit := lane>>6, uint(lane&63)
		for i, v := range pi {
			piW[i*ww+wk] |= b2w(v) << bit
		}
		for i, v := range ppi {
			ppiW[i*ww+wk] |= b2w(v) << bit
		}
		lane++
		if lane == lanes {
			flush()
		}
	}

	hooks := scan.Hooks{
		ShiftCycle: observe,
		Stop:       opts.stopHook(),
		Capture: opts.patternHook(func(pi, ppi []bool) []bool {
			if opts.IncludeCapture {
				observe(pi, ppi)
			}
			// The capture response is a pure function of the applied
			// inputs; a throwaway single-lane evaluation decides it
			// without disturbing the packed stream.
			for i, v := range pi {
				capPI[i] = b2w(v)
			}
			for i, v := range ppi {
				capPPI[i] = b2w(v)
			}
			vals := capSim.Eval(capPI, capPPI)
			next := make([]bool, c.NumFFs())
			for i, ff := range c.FFs {
				next[i] = vals[ff.D]&1 != 0
			}
			return next
		}),
	}
	if err := ch.Run(patterns, cfg, hooks); err != nil {
		return Report{}, err
	}
	flush() // drain the final partial batch

	var r Report
	r.Cycles = cycles
	if cycles > 0 {
		toUWHz := cm.VDD * cm.VDD / 2 * 1e-9
		r.DynamicPerHz = dynTotal / float64(cycles) * toUWHz
		r.PeakDynamicPerHz = peak * toUWHz
		r.MeanTogglesPerCycle = float64(rawToggles) / float64(cycles)
	}
	if leakCycles > 0 {
		r.MeanLeakNA = leakSum / float64(leakCycles)
		r.StaticUW = lm.PowerUW(r.MeanLeakNA)
	}
	return r, nil
}

// b2w converts a bool to a 0/1 word without a branch.
func b2w(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}
