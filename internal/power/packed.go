package power

import (
	"math/bits"
	"time"

	"repro/internal/leakage"
	"repro/internal/scan"
	"repro/internal/sim"
)

// MeasureScanPacked is MeasureScan on the 64-way bit-parallel simulator:
// it packs 64 consecutive scan-stream cycles into one uint64 lane word
// per net, evaluates the combinational core once per batch with word-wide
// boolean operations, counts toggled capacitance from the popcount of
// prev^cur per net, and resolves every gate's leakage state per lane from
// the packed input words.
//
// Results are bit-identical to MeasureScan — not merely close: the
// per-cycle accumulation orders of the serial kernel (net order within a
// cycle for switched capacitance, gate order within a cycle for leakage,
// cycle order across the run) are reproduced exactly, so every float in
// the Report matches to the last ulp. The equivalence is enforced by unit
// and fuzz tests, like the existing MeasureScanFast guarantee.
func MeasureScanPacked(ch scan.Runner, patterns []scan.Pattern, cfg scan.ShiftConfig,
	lm *leakage.Model, cm CapModel) (Report, error) {
	return MeasureScanPackedOpts(ch, patterns, cfg, lm, cm, MeasureOptions{})
}

// MeasureScanPackedOpts is MeasureScanPacked with accounting options.
func MeasureScanPackedOpts(ch scan.Runner, patterns []scan.Pattern, cfg scan.ShiftConfig,
	lm *leakage.Model, cm CapModel, opts MeasureOptions) (Report, error) {

	c := ch.Circuit()
	ps := sim.NewPacked(c)
	scratch := sim.New(c)
	loads := cm.NetLoads(c)
	leakTabs := lm.CircuitTables(c)
	nNets := c.NumNets()

	var (
		piW  = make([]uint64, len(c.PIs))
		ppiW = make([]uint64, c.NumFFs())
		lane int // cycles packed into the current batch

		// prevBit[n] is net n's value on the last cycle of the previous
		// batch (bit 0), the seed for cross-batch transition counting.
		prevBit = make([]uint64, nNets)
		primed  bool // true once the first observed cycle has been consumed

		cycDelta = make([]float64, sim.PackedLanes)
		cycLeak  = make([]float64, sim.PackedLanes)

		dynTotal, peak float64
		rawToggles     int64
		cycles         int
		leakSum        float64
		leakCycles     int
	)

	// flush evaluates the batched lanes and folds them into the running
	// sums in exactly the serial order: per lane, switched capacitance in
	// net order and leakage in gate order; across lanes, ascending cycle
	// order.
	flush := func() {
		n := lane
		if n == 0 {
			return
		}
		start := time.Now()
		words := ps.Eval(piW, ppiW)

		for t := 0; t < n; t++ {
			cycLeak[t] = 0
			cycDelta[t] = 0
		}
		lm.AccumLeakPacked(c, words, n, leakTabs, cycLeak)

		valid := ^uint64(0)
		if n < 64 {
			valid = 1<<uint(n) - 1
		}
		for ni := 0; ni < nNets; ni++ {
			w := words[ni] & valid
			// Toggle word: bit t set iff the net differs between cycle t
			// and cycle t-1 (bit 0 compares against the previous batch's
			// last cycle).
			tw := (w ^ (w<<1 | prevBit[ni])) & valid
			if !primed {
				tw &^= 1 // the first cycle ever is the priming observation
			}
			prevBit[ni] = w >> uint(n-1)
			if tw == 0 {
				continue
			}
			rawToggles += int64(bits.OnesCount64(tw))
			load := loads[ni]
			for tw != 0 {
				cycDelta[bits.TrailingZeros64(tw)] += load
				tw &= tw - 1
			}
		}

		first := 0
		if !primed {
			first = 1
		}
		for t := first; t < n; t++ {
			d := cycDelta[t]
			dynTotal += d
			if d > peak {
				peak = d
			}
			cycles++
		}
		for t := 0; t < n; t++ {
			leakSum += cycLeak[t]
			leakCycles++
		}

		primed = true
		lane = 0
		for i := range piW {
			piW[i] = 0
		}
		for i := range ppiW {
			ppiW[i] = 0
		}
		if opts.OnBatch != nil {
			opts.OnBatch(n, time.Since(start))
		}
	}

	observe := func(pi, ppi []bool) {
		bit := uint64(1) << uint(lane)
		for i, v := range pi {
			if v {
				piW[i] |= bit
			}
		}
		for i, v := range ppi {
			if v {
				ppiW[i] |= bit
			}
		}
		lane++
		if lane == sim.PackedLanes {
			flush()
		}
	}

	hooks := scan.Hooks{
		ShiftCycle: observe,
		Stop:       opts.stopHook(),
		Capture: opts.patternHook(func(pi, ppi []bool) []bool {
			if opts.IncludeCapture {
				observe(pi, ppi)
			}
			// The capture response is a pure function of the applied
			// inputs; a scalar throwaway evaluation decides it without
			// disturbing the packed stream.
			vals := scratch.Eval(pi, ppi)
			next := make([]bool, c.NumFFs())
			for i, ff := range c.FFs {
				next[i] = vals[ff.D]
			}
			return next
		}),
	}
	if err := ch.Run(patterns, cfg, hooks); err != nil {
		return Report{}, err
	}
	flush() // drain the final partial batch

	var r Report
	r.Cycles = cycles
	if cycles > 0 {
		toUWHz := cm.VDD * cm.VDD / 2 * 1e-9
		r.DynamicPerHz = dynTotal / float64(cycles) * toUWHz
		r.PeakDynamicPerHz = peak * toUWHz
		r.MeanTogglesPerCycle = float64(rawToggles) / float64(cycles)
	}
	if leakCycles > 0 {
		r.MeanLeakNA = leakSum / float64(leakCycles)
		r.StaticUW = lm.PowerUW(r.MeanLeakNA)
	}
	return r, nil
}
