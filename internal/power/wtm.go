package power

import "repro/internal/scan"

// WTM computes the weighted transition metric of one scan-in state
// (Sankaralingam's classic estimator): a transition between adjacent
// stream bits is weighted by how many shift cycles it spends traveling
// down the chain, so transitions entering early cost more. order[p] is
// the flop index at chain position p (position 0 nearest scan-in); the
// stream is the pattern's state bits in shift order.
//
// WTM correlates with the simulated scan-in dynamic power of traditional
// scan and is O(L) instead of O(L·gates); the test suite checks the
// correlation against full simulation.
func WTM(state []bool, order []int) int {
	l := len(order)
	wtm := 0
	// The bit destined for chain position p enters at shift l-1-p and is
	// preceded in the stream by the bit for position p+1. A mismatch
	// between stream neighbours k and k+1 toggles the scan-in line and
	// ripples for (l-1-k) cycles, k indexed from the first-shifted bit.
	for k := 0; k+1 < l; k++ {
		// Stream order: first-shifted bit is state[order[l-1]].
		a := state[order[l-1-k]]
		b := state[order[l-2-k]]
		if a != b {
			wtm += l - 1 - k
		}
	}
	return wtm
}

// TestSetWTM sums WTM over a pattern set.
func TestSetWTM(patterns []scan.Pattern, order []int) int {
	total := 0
	for _, p := range patterns {
		total += WTM(p.State, order)
	}
	return total
}
