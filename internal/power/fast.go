package power

import (
	"repro/internal/leakage"
	"repro/internal/scan"
	"repro/internal/sim"
)

// MeasureScanFast is MeasureScan on an event-driven simulator with
// incremental accounting: per cycle it touches only the nets that
// actually changed, updating the switched-capacitance sum and a running
// leakage total from per-gate deltas. Results are bit-identical to
// MeasureScan (the equivalence is unit-tested); on mostly-quiet
// structures — exactly what the paper builds — it is many times faster.
func MeasureScanFast(ch scan.Runner, patterns []scan.Pattern, cfg scan.ShiftConfig,
	lm *leakage.Model, cm CapModel) (Report, error) {
	return MeasureScanFastOpts(ch, patterns, cfg, lm, cm, MeasureOptions{})
}

// MeasureScanFastOpts is MeasureScanFast with accounting options.
func MeasureScanFastOpts(ch scan.Runner, patterns []scan.Pattern, cfg scan.ShiftConfig,
	lm *leakage.Model, cm CapModel, opts MeasureOptions) (Report, error) {

	c := ch.Circuit()
	es := sim.NewEvent(c)
	scratch := sim.New(c)
	loads := cm.NetLoads(c)
	leakTabs := lm.CircuitTables(c)

	gateBits := func(gi int) int {
		g := &c.Gates[gi]
		bits := 0
		vals := es.Values()
		for i, in := range g.Inputs {
			if vals[in] {
				bits |= 1 << i
			}
		}
		return bits
	}

	gateLeak := make([]float64, c.NumGates())
	gmark := make([]uint32, c.NumGates())
	var gepoch uint32
	var (
		runningLeak float64
		leakSum     float64
		leakCycles  int
		dynTotal    float64
		peak        float64
		rawToggles  int64
		cycles      int
	)

	observe := func(pi, ppi []bool) {
		changed := es.Apply(pi, ppi)
		if changed == nil {
			// Priming evaluation: establish the leakage baseline.
			runningLeak = 0
			for gi := range c.Gates {
				l := leakTabs[gi][gateBits(gi)]
				gateLeak[gi] = l
				runningLeak += l
			}
		} else {
			gepoch++
			delta := 0.0
			for _, n := range changed {
				delta += loads[n]
				for _, gi := range c.Nets[n].Fanout {
					if gmark[gi] == gepoch {
						continue
					}
					gmark[gi] = gepoch
					l := leakTabs[gi][gateBits(int(gi))]
					runningLeak += l - gateLeak[gi]
					gateLeak[gi] = l
				}
			}
			dynTotal += delta
			if delta > peak {
				peak = delta
			}
			rawToggles += int64(len(changed))
			cycles++
		}
		leakSum += runningLeak
		leakCycles++
	}

	hooks := scan.Hooks{
		ShiftCycle: observe,
		Stop:       opts.stopHook(),
		Capture: opts.patternHook(func(pi, ppi []bool) []bool {
			var vals []bool
			if opts.IncludeCapture {
				observe(pi, ppi)
				vals = es.Values()
			} else {
				// The response is decided by a throwaway evaluation: the
				// event state must not advance through the capture state,
				// or the next shift cycle's delta would be measured
				// against it instead of the last shift state.
				vals = scratch.Eval(pi, ppi)
			}
			next := make([]bool, c.NumFFs())
			for i, ff := range c.FFs {
				next[i] = vals[ff.D]
			}
			return next
		}),
	}
	if err := ch.Run(patterns, cfg, hooks); err != nil {
		return Report{}, err
	}
	var r Report
	r.Cycles = cycles
	if cycles > 0 {
		toUWHz := cm.VDD * cm.VDD / 2 * 1e-9
		r.DynamicPerHz = dynTotal / float64(cycles) * toUWHz
		r.PeakDynamicPerHz = peak * toUWHz
		r.MeanTogglesPerCycle = float64(rawToggles) / float64(cycles)
	}
	if leakCycles > 0 {
		r.MeanLeakNA = leakSum / float64(leakCycles)
		r.StaticUW = lm.PowerUW(r.MeanLeakNA)
	}
	return r, nil
}
