package power

import (
	"math"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

func TestActivityProfileValidate(t *testing.T) {
	good := []ActivityProfile{
		{},
		{Default: 0.2},
		{Default: 1, Inputs: map[string]float64{"a": 0, "b": 0.5}},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
	bad := []ActivityProfile{
		{Default: -0.1},
		{Default: 1.1},
		{Default: math.NaN()},
		{Inputs: map[string]float64{"a": 2}},
		{Inputs: map[string]float64{"a": math.Inf(1)}},
		{Inputs: map[string]float64{"": 0.5}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad[%d]: expected error", i)
		}
	}
}

func TestActivityProfileHash(t *testing.T) {
	a := &ActivityProfile{Source: "profile", Default: 0.2,
		Inputs: map[string]float64{"x": 0.1, "y": 0.9}}
	b := &ActivityProfile{Source: "profile", Default: 0.2,
		Inputs: map[string]float64{"y": 0.9, "x": 0.1}}
	if a.Hash() != b.Hash() {
		t.Fatalf("hash is map-order dependent")
	}
	variants := []*ActivityProfile{
		{Source: "vcd", Default: 0.2, Inputs: map[string]float64{"x": 0.1, "y": 0.9}},
		{Source: "profile", Default: 0.3, Inputs: map[string]float64{"x": 0.1, "y": 0.9}},
		{Source: "profile", Default: 0.2, Inputs: map[string]float64{"x": 0.1}},
		{Source: "profile", Default: 0.2, Inputs: map[string]float64{"x": 0.1, "y": 0.8}},
	}
	for i, v := range variants {
		if v.Hash() == a.Hash() {
			t.Errorf("variant %d collides with base", i)
		}
	}
	var nilP *ActivityProfile
	if nilP.Hash() != 0 {
		t.Errorf("nil profile must hash to 0")
	}
}

// chainCircuit builds a -> NOT -> y so density passes through unchanged.
func TestTransitionDensityInverterChain(t *testing.T) {
	c := netlist.New("chain")
	c.AddPI("a")
	c.AddGate(logic.Not, "n1", "a")
	c.AddGate(logic.Not, "y", "n1")
	c.MarkPO("y")
	c.MustFreeze()

	p := &ActivityProfile{Default: 0, Inputs: map[string]float64{"a": 0.4}}
	dens := TransitionDensity(c, p)
	na, _ := c.NetByName("a")
	n1, _ := c.NetByName("n1")
	ny, _ := c.NetByName("y")
	for _, n := range []netlist.NetID{na, n1, ny} {
		if dens[n] != 0.4 {
			t.Errorf("net %d density %v, want 0.4 (inverters preserve density)", n, dens[n])
		}
	}
}

func TestTransitionDensityNand(t *testing.T) {
	c := netlist.New("nand")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGate(logic.Nand, "y", "a", "b")
	c.MarkPO("y")
	c.MustFreeze()

	p := &ActivityProfile{Inputs: map[string]float64{"a": 0.6, "b": 0.2}}
	dens := TransitionDensity(c, p)
	ny, _ := c.NetByName("y")
	// D(y) = p_b·D(a) + p_a·D(b) with both probabilities 1/2.
	want := 0.5*0.6 + 0.5*0.2
	if math.Abs(dens[ny]-want) > 1e-15 {
		t.Errorf("nand density %v, want %v", dens[ny], want)
	}
}

func TestTransitionDensityXorTransparent(t *testing.T) {
	c := netlist.New("xor")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGate(logic.Xor, "y", "a", "b")
	c.MarkPO("y")
	c.MustFreeze()

	p := &ActivityProfile{Inputs: map[string]float64{"a": 0.3, "b": 0.5}}
	dens := TransitionDensity(c, p)
	ny, _ := c.NetByName("y")
	if math.Abs(dens[ny]-0.8) > 1e-15 {
		t.Errorf("xor density %v, want 0.8 (XOR never blocks)", dens[ny])
	}
}

func TestTransitionDensityScanCellsUseDefault(t *testing.T) {
	c := netlist.New("ff")
	c.AddPI("a")
	c.AddFF("ff1", "q", "d")
	c.AddGate(logic.Nand, "d", "a", "q")
	c.MarkPO("d")
	c.MustFreeze()

	p := &ActivityProfile{Default: 0.7, Inputs: map[string]float64{"a": 0.1}}
	dens := TransitionDensity(c, p)
	nq, _ := c.NetByName("q")
	if dens[nq] != 0.7 {
		t.Errorf("scan-cell output density %v, want the profile default 0.7", dens[nq])
	}
}

// TestWeightedDynamicDeterministic pins the accumulation as bit-stable and
// monotone in activity.
func TestWeightedDynamicDeterministic(t *testing.T) {
	c := netlist.New("m")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGate(logic.Nand, "n1", "a", "b")
	c.AddGate(logic.Nor, "n2", "n1", "a")
	c.AddGate(logic.Not, "y", "n2")
	c.MarkPO("y")
	c.MustFreeze()

	cm := DefaultCapModel()
	low := &ActivityProfile{Default: 0.1}
	high := &ActivityProfile{Default: 0.9}
	l1 := cm.WeightedDynamicPerHz(c, low)
	l2 := cm.WeightedDynamicPerHz(c, low)
	h := cm.WeightedDynamicPerHz(c, high)
	if l1 != l2 {
		t.Errorf("weighted dynamic not deterministic: %v vs %v", l1, l2)
	}
	if !(h > l1 && l1 > 0) {
		t.Errorf("weighted dynamic not monotone in activity: low %v high %v", l1, h)
	}
}
