// Activity-weighted dynamic power: industrial flows parameterize power
// analysis by per-input switching activity (the Voltus
// set_default_switching_activity flow) rather than a concrete stimulus.
// This file propagates input activity factors through the combinational
// logic as transition densities (Najm's density propagation under the
// usual spatial-independence approximation) and folds them into the same
// capacitance model the simulated measurements use, giving a
// stimulus-independent µW/Hz figure per structure that sits alongside the
// simulated Table I columns.

package power

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// ActivityProfile assigns switching-activity factors to a circuit's
// primary inputs (and, via Default, its scan cells): the expected number
// of transitions per clock cycle, in [0, 1].
type ActivityProfile struct {
	// Source records where the profile came from: "profile" for explicit
	// per-input factors, "vcd" for factors extracted from a dump.
	Source string
	// Default is the activity of every input not listed in Inputs, and of
	// the scan-cell (pseudo-input) outputs.
	Default float64
	// Inputs maps primary-input names to activity factors.
	Inputs map[string]float64
}

// Validate checks every factor is a real number in [0, 1].
func (p *ActivityProfile) Validate() error {
	check := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			return fmt.Errorf("power: activity %s = %v out of [0, 1]", name, v)
		}
		return nil
	}
	if err := check("default", p.Default); err != nil {
		return err
	}
	for name, v := range p.Inputs {
		if name == "" {
			return fmt.Errorf("power: activity entry with empty input name")
		}
		if err := check(fmt.Sprintf("input %q", name), v); err != nil {
			return err
		}
	}
	return nil
}

// For returns the activity factor of the named input.
func (p *ActivityProfile) For(name string) float64 {
	if v, ok := p.Inputs[name]; ok {
		return v
	}
	return p.Default
}

// Hash returns a canonical FNV-64a fingerprint of the profile — identical
// profiles hash identically regardless of map iteration order, so the
// hash is a stable cache/store key component.
func (p *ActivityProfile) Hash() uint64 {
	if p == nil {
		return 0
	}
	h := fnv.New64a()
	writeF := func(v float64) {
		b := math.Float64bits(v)
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(b >> (8 * i))
		}
		h.Write(buf[:])
	}
	h.Write([]byte(p.Source))
	h.Write([]byte{0})
	writeF(p.Default)
	names := make([]string, 0, len(p.Inputs))
	for name := range p.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h.Write([]byte(name))
		h.Write([]byte{0})
		writeF(p.Inputs[name])
	}
	return h.Sum64()
}

// TransitionDensity propagates the profile's input activities through the
// frozen circuit's combinational core and returns the per-net transition
// density (expected transitions per cycle), indexed by NetID.
//
// Signal probabilities are taken as 1/2 at every source (inputs carry
// arbitrary data; scan cells shift pseudo-random patterns) and propagated
// exactly per gate; densities follow Najm's rule D(y) = Σ_i P(∂y/∂x_i)·
// D(x_i) with the Boolean-difference probabilities computed under input
// independence. Reconvergent fanout makes this an estimate, which is the
// standard trade for a stimulus-independent figure.
func TransitionDensity(c *netlist.Circuit, p *ActivityProfile) []float64 {
	prob := make([]float64, c.NumNets())
	dens := make([]float64, c.NumNets())
	for _, n := range c.PIs {
		prob[n] = 0.5
		dens[n] = p.For(c.Nets[n].Name)
	}
	for _, ff := range c.FFs {
		prob[ff.Q] = 0.5
		dens[ff.Q] = p.Default
	}

	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		in := g.Inputs
		var pOut, dOut float64
		switch g.Type {
		case logic.Buf:
			pOut = prob[in[0]]
			dOut = dens[in[0]]
		case logic.Not:
			pOut = 1 - prob[in[0]]
			dOut = dens[in[0]]
		case logic.And, logic.Nand:
			all := 1.0
			for _, x := range in {
				all *= prob[x]
			}
			for i, x := range in {
				// P(∂y/∂x_i) = Π_{j≠i} p_j.
				side := 1.0
				for j, y := range in {
					if j != i {
						side *= prob[y]
					}
				}
				dOut += side * dens[x]
			}
			pOut = all
			if g.Type == logic.Nand {
				pOut = 1 - all
			}
		case logic.Or, logic.Nor:
			none := 1.0
			for _, x := range in {
				none *= 1 - prob[x]
			}
			for i, x := range in {
				side := 1.0
				for j, y := range in {
					if j != i {
						side *= 1 - prob[y]
					}
				}
				dOut += side * dens[x]
			}
			pOut = 1 - none
			if g.Type == logic.Nor {
				pOut = none
			}
		case logic.Xor, logic.Xnor:
			acc := 0.0
			for _, x := range in {
				px := prob[x]
				acc = acc*(1-px) + px*(1-acc)
				dOut += dens[x] // XOR is sensitive to every input always
			}
			pOut = acc
			if g.Type == logic.Xnor {
				pOut = 1 - acc
			}
		case logic.Mux2:
			// Inputs are (d0, d1, sel) — see logic.Eval.
			p0, p1, ps := prob[in[0]], prob[in[1]], prob[in[2]]
			pOut = (1-ps)*p0 + ps*p1
			dOut = (1-ps)*dens[in[0]] + ps*dens[in[1]] +
				(p0*(1-p1)+p1*(1-p0))*dens[in[2]]
		default:
			// Unknown type: treat as a buffer of its first input.
			pOut = prob[in[0]]
			dOut = dens[in[0]]
		}
		prob[g.Output] = pOut
		dens[g.Output] = dOut
	}
	return dens
}

// WeightedDynamicPerHz folds the profile's transition densities into the
// capacitance model: Σ_net D(net)·C_L(net)·V²/2, reported in µW/Hz like
// Report.DynamicPerHz. The accumulation runs in net-ID order so the figure
// is bit-stable for a given frozen circuit.
func (cm CapModel) WeightedDynamicPerHz(c *netlist.Circuit, p *ActivityProfile) float64 {
	return cm.WeightedDynamicPerHzOn(c, p, nil)
}

// WeightedDynamicPerHzOn is WeightedDynamicPerHz restricted to the nets
// flagged in active (nil = every net). The engineered scan structures
// never rewrite the combinational graph — MUX gating and input holds
// live in the shift configuration — so their activity-weighted figure is
// the density sum over the nets that still carry transitions during
// shift (core.Solution.Trans); the unmasked sum is the traditional
// structure, where nothing is blocked.
func (cm CapModel) WeightedDynamicPerHzOn(c *netlist.Circuit, p *ActivityProfile, active []bool) float64 {
	dens := TransitionDensity(c, p)
	loads := cm.NetLoads(c)
	sum := 0.0
	for ni := range dens {
		if active != nil && !active[ni] {
			continue
		}
		sum += dens[ni] * loads[ni]
	}
	// fF·V² per cycle → µW/Hz (same scaling as the measured reports).
	return sum * cm.VDD * cm.VDD / 2 * 1e-9
}
