package power

import (
	"repro/internal/leakage"
	"repro/internal/logic"
)

// CapModelForNode scales the default 45 nm capacitance model to another
// technology generation (pin, wire and pad capacitances shrink with
// feature size; VDD follows the node).
func CapModelForNode(nm int) (CapModel, error) {
	n, err := leakage.NodeByNM(nm)
	if err != nil {
		return CapModel{}, err
	}
	cm := DefaultCapModel()
	scaled := CapModel{
		PinCap:         make(map[logic.GateType]float64, len(cm.PinCap)),
		PinCapPerFanin: cm.PinCapPerFanin * n.CapScale,
		FFDCap:         cm.FFDCap * n.CapScale,
		POCap:          cm.POCap * n.CapScale,
		WirePerFanout:  cm.WirePerFanout * n.CapScale,
		VDD:            n.VDD,
	}
	for t, c := range cm.PinCap {
		scaled.PinCap[t] = c * n.CapScale
	}
	return scaled, nil
}
