package power

import (
	"math"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// TestNetLoadsAccounting audits the per-net load bookkeeping against
// hand-computed sums on a circuit built to hit every accounting edge:
// single-input readers (the per-extra-fanin adder must not go negative),
// a 4-input gate (two extra fanins), a Mux2 whose select pin must be
// charged like any other input, a net driving two pins of the same gate
// (one Fanout entry per pin), and flop-D plus primary-output loads.
func TestNetLoadsAccounting(t *testing.T) {
	c := netlist.New("loads")
	c.AddPI("a")
	c.AddPI("b")
	c.AddPI("s")
	c.AddGate(logic.Not, "ninv", "a")
	c.AddGate(logic.Buf, "nbuf", "a")
	c.AddGate(logic.Nand, "n4", "a", "b", "ninv", "nbuf")
	c.AddGate(logic.Mux2, "m", "n4", "b", "s")
	c.AddGate(logic.Xor, "dbl", "b", "b")
	c.AddFF("f", "q", "m")
	c.MarkPO("n4")
	c.MarkPO("dbl")
	c.MustFreeze()

	cm := DefaultCapModel()
	w := cm.WirePerFanout
	nand4Pin := cm.PinCap[logic.Nand] + 2*cm.PinCapPerFanin
	mux2Pin := cm.PinCap[logic.Mux2] + cm.PinCapPerFanin
	loads := cm.NetLoads(c)

	cases := []struct {
		net  string
		want float64
		why  string
	}{
		{"a", cm.PinCap[logic.Not] + w + cm.PinCap[logic.Buf] + w + nand4Pin + w,
			"NOT and BUF pins must not get a negative wide-gate adjustment"},
		{"b", nand4Pin + w + mux2Pin + w + 2*(cm.PinCap[logic.Xor]+w),
			"both XOR pins of the same gate count, as does the MUX data pin"},
		{"s", mux2Pin + w,
			"the Mux2 select pin is a load like any data pin"},
		{"m", cm.FFDCap + w,
			"a flop D input contributes FFDCap plus wire"},
		{"n4", mux2Pin + w + cm.POCap,
			"a PO net adds the pad load on top of its gate sinks"},
		{"dbl", cm.POCap,
			"a PO with no gate readers carries just the pad load"},
	}
	for _, tc := range cases {
		id, ok := c.NetByName(tc.net)
		if !ok {
			t.Fatalf("net %s missing", tc.net)
		}
		if math.Abs(loads[id]-tc.want) > 1e-12 {
			t.Errorf("load(%s) = %v, want %v (%s)", tc.net, loads[id], tc.want, tc.why)
		}
	}

	// Anchor one absolute value so a silent change to the default model
	// constants fails loudly too: a = 0.7+0.4 + 0.7+0.4 + 1.2+0.4.
	aID, _ := c.NetByName("a")
	if math.Abs(loads[aID]-3.8) > 1e-9 {
		t.Errorf("load(a) = %v, want 3.8 under the default model", loads[aID])
	}
}
