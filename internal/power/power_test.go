package power

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/iscas"
	"repro/internal/leakage"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sim"
)

func buildShiftReg(t *testing.T) *netlist.Circuit {
	// 3-bit shift-register-ish circuit: each flop's D is a function of the
	// previous flop so shifting creates combinational activity.
	t.Helper()
	c := netlist.New("sr")
	c.AddPI("a")
	c.AddFF("f0", "q0", "d0")
	c.AddFF("f1", "q1", "d1")
	c.AddFF("f2", "q2", "d2")
	c.AddGate(logic.Nand, "d0", "a", "q2")
	c.AddGate(logic.Not, "d1", "q0")
	c.AddGate(logic.Nor, "d2", "q1", "a")
	c.MarkPO("d2")
	c.MustFreeze()
	return c
}

func TestNetLoads(t *testing.T) {
	c := buildShiftReg(t)
	cm := DefaultCapModel()
	loads := cm.NetLoads(c)
	// Net a feeds NAND(d0) and NOR(d2): 0.9+0.4 + 1.0+0.4 = 2.7.
	aID, _ := c.NetByName("a")
	if math.Abs(loads[aID]-2.7) > 1e-9 {
		t.Errorf("load(a) = %v, want 2.7", loads[aID])
	}
	// Net d2 is a PO and feeds flop f2: 1.2+0.4+2.0 = 3.6.
	dID, _ := c.NetByName("d2")
	if math.Abs(loads[dID]-3.6) > 1e-9 {
		t.Errorf("load(d2) = %v, want 3.6", loads[dID])
	}
	// q0 feeds one NOT: 0.7+0.4.
	qID, _ := c.NetByName("q0")
	if math.Abs(loads[qID]-1.1) > 1e-9 {
		t.Errorf("load(q0) = %v, want 1.1", loads[qID])
	}
}

func TestNetLoadsWideGateExtraPin(t *testing.T) {
	c := netlist.New("wide")
	c.AddPI("a")
	c.AddPI("b")
	c.AddPI("x")
	c.AddGate(logic.Nand, "o", "a", "b", "x")
	c.MarkPO("o")
	c.MustFreeze()
	cm := DefaultCapModel()
	loads := cm.NetLoads(c)
	aID, _ := c.NetByName("a")
	want := cm.PinCap[logic.Nand] + cm.PinCapPerFanin + cm.WirePerFanout
	if math.Abs(loads[aID]-want) > 1e-9 {
		t.Errorf("load into NAND3 = %v, want %v", loads[aID], want)
	}
}

func TestMeasureScanBasics(t *testing.T) {
	c := buildShiftReg(t)
	ch := scan.New(c)
	lm := leakage.Default()
	cm := DefaultCapModel()
	pats := []scan.Pattern{
		{PI: []bool{true}, State: []bool{true, false, true}},
		{PI: []bool{false}, State: []bool{false, true, false}},
	}
	rep, err := MeasureScan(ch, pats, scan.Traditional(c), lm, cm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles <= 0 {
		t.Fatal("no cycles measured")
	}
	if rep.DynamicPerHz <= 0 {
		t.Error("alternating patterns must produce dynamic power")
	}
	if rep.StaticUW <= 0 {
		t.Error("static power must be positive")
	}
	if rep.MeanLeakNA <= 0 {
		t.Error("mean leakage must be positive")
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

// TestFrozenInputsKillDynamicPower: with every pseudo-input muxed to a
// constant and PIs held, the combinational state never changes, so
// dynamic power is exactly zero while static stays positive.
func TestFrozenInputsKillDynamicPower(t *testing.T) {
	c := buildShiftReg(t)
	ch := scan.New(c)
	cfg := scan.Traditional(c)
	for f := range cfg.Muxed {
		cfg.Muxed[f] = true
		cfg.MuxVal[f] = f%2 == 0
	}
	cfg.PIHold[0] = logic.One
	pats := []scan.Pattern{
		{PI: []bool{true}, State: []bool{true, false, true}},
		{PI: []bool{false}, State: []bool{false, true, false}},
	}
	// Measure only shift cycles: captures still change state, so use
	// patterns whose capture states coincide? Simpler: the capture cycles
	// inject activity; verify dynamic power is far below traditional.
	repFrozen, err := MeasureScan(ch, pats, cfg, leakage.Default(), DefaultCapModel())
	if err != nil {
		t.Fatal(err)
	}
	repTrad, err := MeasureScan(ch, pats, scan.Traditional(c), leakage.Default(), DefaultCapModel())
	if err != nil {
		t.Fatal(err)
	}
	if repFrozen.DynamicPerHz >= repTrad.DynamicPerHz {
		t.Errorf("frozen %v >= traditional %v", repFrozen.DynamicPerHz, repTrad.DynamicPerHz)
	}
}

func TestMeasureScanEmptyPatterns(t *testing.T) {
	c := buildShiftReg(t)
	ch := scan.New(c)
	rep, err := MeasureScan(ch, nil, scan.Traditional(c), leakage.Default(), DefaultCapModel())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 0 || rep.DynamicPerHz != 0 {
		t.Errorf("empty run should measure nothing: %+v", rep)
	}
}

func TestMeasureScanPropagatesRunErrors(t *testing.T) {
	c := buildShiftReg(t)
	ch := scan.New(c)
	bad := []scan.Pattern{{PI: []bool{true, true}, State: []bool{true, false, true}}}
	if _, err := MeasureScan(ch, bad, scan.Traditional(c), leakage.Default(), DefaultCapModel()); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 60); math.Abs(got-40) > 1e-12 {
		t.Errorf("Improvement(100,60) = %v, want 40", got)
	}
	if got := Improvement(100, 120); math.Abs(got+20) > 1e-12 {
		t.Errorf("Improvement(100,120) = %v, want -20", got)
	}
	if got := Improvement(0, 5); got != 0 {
		t.Errorf("Improvement(0,5) = %v, want 0", got)
	}
}

// TestDynamicUnitsSanity pins the µW/Hz conversion: one net of 1 fF
// toggling every cycle at 0.9 V is 1e-15*0.81/2 J/cycle = 4.05e-10 µW/Hz.
func TestDynamicUnitsSanity(t *testing.T) {
	c := netlist.New("tog")
	c.AddPI("a")
	c.AddFF("f0", "q0", "d0")
	c.AddGate(logic.Not, "d0", "q0")
	c.MustFreeze()
	ch := scan.New(c)
	// Alternating chain bits toggle q0 (load: NOT pin 0.7 + wire 0.4) and
	// d0 (FF pin 1.2 + wire 0.4) every shift cycle.
	pats := []scan.Pattern{
		{PI: []bool{false}, State: []bool{true}},
		{PI: []bool{false}, State: []bool{false}},
		{PI: []bool{false}, State: []bool{true}},
	}
	rep, err := MeasureScan(ch, pats, scan.Traditional(c), leakage.Default(), DefaultCapModel())
	if err != nil {
		t.Fatal(err)
	}
	perToggleCap := 1.1 + 1.6 // q0 + d0 loads in fF
	want := perToggleCap * 0.81 / 2 * 1e-9
	// Not every cycle toggles (captures interleave); allow the mean to be
	// at most the full-toggle bound and above a third of it.
	if rep.DynamicPerHz > want*1.001 || rep.DynamicPerHz < want/3 {
		t.Errorf("DynamicPerHz = %v, want within (%v/3, %v]", rep.DynamicPerHz, want, want)
	}
}

func TestCapModelForNode(t *testing.T) {
	cm45, err := CapModelForNode(45)
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultCapModel()
	if cm45.FFDCap != def.FFDCap || cm45.VDD != def.VDD {
		t.Error("45 nm cap model must equal the default")
	}
	cm22, err := CapModelForNode(22)
	if err != nil {
		t.Fatal(err)
	}
	if cm22.FFDCap >= cm45.FFDCap || cm22.PinCap[logic.Nand] >= cm45.PinCap[logic.Nand] {
		t.Error("22 nm capacitances must be below 45 nm")
	}
	if _, err := CapModelForNode(14); err == nil {
		t.Error("accepted unsupported node")
	}
}

// TestMeasureScanFastMatchesSlow: the event-driven incremental
// measurement must agree with the full re-evaluation path on every
// metric, across structures and capture accounting modes.
func TestMeasureScanFastMatchesSlow(t *testing.T) {
	p, _ := iscas.ByName("s344")
	c, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	lm := leakage.Default()
	cm := DefaultCapModel()
	rng := rand.New(rand.NewSource(20))
	var pats []scan.Pattern
	for i := 0; i < 12; i++ {
		pat := scan.Pattern{PI: make([]bool, len(c.PIs)), State: make([]bool, c.NumFFs())}
		sim.RandomVector(rng, pat.PI)
		sim.RandomVector(rng, pat.State)
		pats = append(pats, pat)
	}
	cfgs := []scan.ShiftConfig{scan.Traditional(c)}
	withMux := scan.Traditional(c)
	for f := range withMux.Muxed {
		if f%2 == 0 {
			withMux.Muxed[f] = true
			withMux.MuxVal[f] = f%4 == 0
		}
	}
	withMux.PIHold[0] = logic.One
	cfgs = append(cfgs, withMux)
	for ci, cfg := range cfgs {
		for _, includeCapture := range []bool{false, true} {
			opts := MeasureOptions{IncludeCapture: includeCapture}
			slow, err := MeasureScanOpts(scan.New(c), pats, cfg, lm, cm, opts)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := MeasureScanFastOpts(scan.New(c), pats, cfg, lm, cm, opts)
			if err != nil {
				t.Fatal(err)
			}
			if slow.Cycles != fast.Cycles {
				t.Fatalf("cfg %d cap=%v: cycles %d vs %d", ci, includeCapture, slow.Cycles, fast.Cycles)
			}
			close := func(a, b, tol float64, what string) {
				if math.Abs(a-b) > tol*(math.Abs(a)+1e-30) {
					t.Errorf("cfg %d cap=%v: %s %v vs %v", ci, includeCapture, what, a, b)
				}
			}
			close(slow.DynamicPerHz, fast.DynamicPerHz, 1e-9, "dynamic")
			close(slow.PeakDynamicPerHz, fast.PeakDynamicPerHz, 1e-9, "peak")
			close(slow.StaticUW, fast.StaticUW, 1e-9, "static")
			if slow.MeanTogglesPerCycle != fast.MeanTogglesPerCycle {
				t.Errorf("cfg %d cap=%v: toggles %v vs %v", ci, includeCapture,
					slow.MeanTogglesPerCycle, fast.MeanTogglesPerCycle)
			}
		}
	}
}

func BenchmarkMeasureScanFull(b *testing.B) {
	benchMeasure(b, false)
}

func BenchmarkMeasureScanEventDriven(b *testing.B) {
	benchMeasure(b, true)
}

func benchMeasure(b *testing.B, fast bool) {
	b.Helper()
	p, _ := iscas.ByName("s1423")
	c, err := iscas.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	// Mostly-quiet structure: every other flop muxed — where the event
	// simulator shines.
	cfg := scan.Traditional(c)
	for f := range cfg.Muxed {
		if f%4 != 0 {
			cfg.Muxed[f] = true
		}
	}
	rng := rand.New(rand.NewSource(30))
	var pats []scan.Pattern
	for i := 0; i < 20; i++ {
		pat := scan.Pattern{PI: make([]bool, len(c.PIs)), State: make([]bool, c.NumFFs())}
		sim.RandomVector(rng, pat.PI)
		sim.RandomVector(rng, pat.State)
		pats = append(pats, pat)
	}
	lm := leakage.Default()
	cm := DefaultCapModel()
	ch := scan.New(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if fast {
			_, err = MeasureScanFast(ch, pats, cfg, lm, cm)
		} else {
			_, err = MeasureScan(ch, pats, cfg, lm, cm)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
