// Package reorder implements the two ordering optimizations the paper
// leaves on the table ("No test vector reordering or scan cell reordering
// was performed in these experiments. By applying reordering techniques,
// further improvements can be achieved."):
//
//   - Pattern reordering: choose the application order of the test set so
//     that consecutive (state-out, state-in) chain images differ in as few
//     bits as possible — a greedy nearest-neighbour tour over Hamming
//     distance, the classic test-vector-ordering heuristic.
//
//   - Scan-cell reordering: choose the chain order so that bits that
//     rarely differ sit adjacently, reducing the number of transitions
//     that travel down the chain during shifting. We minimize the total
//     adjacent-pair mismatch count over the pattern set with a greedy
//     chain-growing heuristic.
//
// Both are workload transformations: they change neither the circuit nor
// the structures, only the order in which stimuli are applied, and
// compose with the paper's technique.
package reorder

import (
	"math/rand"

	"repro/internal/scan"
)

// Patterns returns a permutation of patterns minimizing (greedily) the
// Hamming distance between consecutive scan states. The first pattern is
// the one closest to the all-zero initial chain state. Ties are broken by
// original index, so the result is deterministic.
func Patterns(patterns []scan.Pattern) []scan.Pattern {
	n := len(patterns)
	if n <= 2 {
		return append([]scan.Pattern(nil), patterns...)
	}
	used := make([]bool, n)
	out := make([]scan.Pattern, 0, n)
	// Start nearest to the all-zero chain.
	cur := -1
	best := -1
	for i, p := range patterns {
		d := weight(p.State)
		if cur == -1 || d < best {
			cur, best = i, d
		}
	}
	used[cur] = true
	out = append(out, patterns[cur])
	for len(out) < n {
		next, bd := -1, -1
		for i, p := range patterns {
			if used[i] {
				continue
			}
			d := hamming(patterns[cur].State, p.State)
			if next == -1 || d < bd {
				next, bd = i, d
			}
		}
		used[next] = true
		out = append(out, patterns[next])
		cur = next
	}
	return out
}

func weight(v []bool) int {
	n := 0
	for _, b := range v {
		if b {
			n++
		}
	}
	return n
}

func hamming(a, b []bool) int {
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// ChainOrder returns a scan-cell order (a permutation of flop indices)
// chosen so that flops whose pattern bits agree most often sit adjacent
// in the chain. It greedily grows the chain from the most-correlated pair
// outward, appending at whichever end has the cheaper best extension.
//
// The cost model counts, over all patterns, the adjacent-pair mismatches
// of the loaded states — a proxy for the transitions a shifted-in stream
// drags through the chain.
func ChainOrder(patterns []scan.Pattern, numFFs int) []int {
	if numFFs == 0 {
		return nil
	}
	order := make([]int, 0, numFFs)
	if numFFs == 1 || len(patterns) == 0 {
		for i := 0; i < numFFs; i++ {
			order = append(order, i)
		}
		return order
	}
	// mismatch[i][j] = number of patterns in which bits i and j differ.
	mismatch := make([][]int, numFFs)
	for i := range mismatch {
		mismatch[i] = make([]int, numFFs)
	}
	for _, p := range patterns {
		for i := 0; i < numFFs; i++ {
			for j := i + 1; j < numFFs; j++ {
				if p.State[i] != p.State[j] {
					mismatch[i][j]++
					mismatch[j][i]++
				}
			}
		}
	}
	used := make([]bool, numFFs)
	// Seed with the globally best pair.
	bi, bj, bd := 0, 1, -1
	for i := 0; i < numFFs; i++ {
		for j := i + 1; j < numFFs; j++ {
			if bd == -1 || mismatch[i][j] < bd {
				bi, bj, bd = i, j, mismatch[i][j]
			}
		}
	}
	order = append(order, bi, bj)
	used[bi], used[bj] = true, true
	for len(order) < numFFs {
		head, tail := order[0], order[len(order)-1]
		bestFF, bestCost, atHead := -1, -1, false
		for f := 0; f < numFFs; f++ {
			if used[f] {
				continue
			}
			if c := mismatch[head][f]; bestFF == -1 || c < bestCost {
				bestFF, bestCost, atHead = f, c, true
			}
			if c := mismatch[tail][f]; c < bestCost {
				bestFF, bestCost, atHead = f, c, false
			}
		}
		used[bestFF] = true
		if atHead {
			order = append([]int{bestFF}, order...)
		} else {
			order = append(order, bestFF)
		}
	}
	return order
}

// AdjacentMismatchCost evaluates a chain order under the ChainOrder cost
// model (exposed so tests and ablations can compare orders).
func AdjacentMismatchCost(patterns []scan.Pattern, order []int) int {
	cost := 0
	for _, p := range patterns {
		for k := 0; k+1 < len(order); k++ {
			if p.State[order[k]] != p.State[order[k+1]] {
				cost++
			}
		}
	}
	return cost
}

// RandomOrder returns a random permutation of 0..n-1 (baseline for the
// reordering experiments).
func RandomOrder(n int, rng *rand.Rand) []int {
	order := rng.Perm(n)
	return order
}
