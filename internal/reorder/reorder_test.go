package reorder

import (
	"math/rand"
	"testing"

	"repro/internal/scan"
)

func randomPatterns(rng *rand.Rand, n, ffs, pis int) []scan.Pattern {
	out := make([]scan.Pattern, n)
	for i := range out {
		out[i] = scan.Pattern{PI: make([]bool, pis), State: make([]bool, ffs)}
		for j := range out[i].State {
			out[i].State[j] = rng.Intn(2) == 1
		}
		for j := range out[i].PI {
			out[i].PI[j] = rng.Intn(2) == 1
		}
	}
	return out
}

func tourCost(patterns []scan.Pattern) int {
	cost := weight(patterns[0].State) // distance from all-zero start
	for i := 1; i < len(patterns); i++ {
		cost += hamming(patterns[i-1].State, patterns[i].State)
	}
	return cost
}

func TestPatternsReducesTourCost(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		pats := randomPatterns(rng, 40, 30, 4)
		ordered := Patterns(pats)
		if len(ordered) != len(pats) {
			t.Fatalf("lost patterns: %d -> %d", len(pats), len(ordered))
		}
		if got, want := tourCost(ordered), tourCost(pats); got > want {
			t.Errorf("trial %d: reordering worsened tour: %d > %d", trial, got, want)
		}
	}
}

func TestPatternsIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pats := randomPatterns(rng, 25, 10, 2)
	ordered := Patterns(pats)
	// Count multiset membership by encoding states.
	count := func(ps []scan.Pattern) map[string]int {
		m := make(map[string]int)
		for _, p := range ps {
			key := ""
			for _, b := range p.State {
				if b {
					key += "1"
				} else {
					key += "0"
				}
			}
			for _, b := range p.PI {
				if b {
					key += "1"
				} else {
					key += "0"
				}
			}
			m[key]++
		}
		return m
	}
	a, b := count(pats), count(ordered)
	if len(a) != len(b) {
		t.Fatal("pattern multiset changed")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("pattern %q count %d -> %d", k, v, b[k])
		}
	}
}

func TestPatternsSmallInputs(t *testing.T) {
	if got := Patterns(nil); len(got) != 0 {
		t.Error("nil input not handled")
	}
	one := randomPatterns(rand.New(rand.NewSource(3)), 1, 4, 1)
	if got := Patterns(one); len(got) != 1 {
		t.Error("single pattern not handled")
	}
}

func TestPatternsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pats := randomPatterns(rng, 30, 12, 2)
	a := Patterns(pats)
	b := Patterns(pats)
	for i := range a {
		if hamming(a[i].State, b[i].State) != 0 {
			t.Fatal("nondeterministic ordering")
		}
	}
}

func TestChainOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pats := randomPatterns(rng, 30, 17, 2)
	order := ChainOrder(pats, 17)
	seen := make([]bool, 17)
	for _, f := range order {
		if f < 0 || f >= 17 || seen[f] {
			t.Fatalf("order %v is not a permutation", order)
		}
		seen[f] = true
	}
}

func TestChainOrderBeatsIdentityOnStructuredData(t *testing.T) {
	// Build patterns where even-indexed flops strongly correlate with one
	// another and anticorrelate with odd ones: the natural order pays a
	// mismatch at every boundary, a grouped order almost none.
	rng := rand.New(rand.NewSource(6))
	const ffs = 16
	var pats []scan.Pattern
	for i := 0; i < 50; i++ {
		base := rng.Intn(2) == 1
		p := scan.Pattern{PI: []bool{false}, State: make([]bool, ffs)}
		for f := 0; f < ffs; f++ {
			v := base
			if f%2 == 1 {
				v = !v
			}
			if rng.Intn(20) == 0 { // light noise
				v = !v
			}
			p.State[f] = v
		}
		pats = append(pats, p)
	}
	identity := make([]int, ffs)
	for i := range identity {
		identity[i] = i
	}
	order := ChainOrder(pats, ffs)
	got := AdjacentMismatchCost(pats, order)
	want := AdjacentMismatchCost(pats, identity)
	if got >= want/2 {
		t.Errorf("chain order cost %d not clearly below identity %d", got, want)
	}
}

func TestChainOrderEdgeCases(t *testing.T) {
	if got := ChainOrder(nil, 0); len(got) != 0 {
		t.Error("0 flops")
	}
	got := ChainOrder(nil, 3)
	if len(got) != 3 {
		t.Error("no patterns should yield identity order")
	}
	one := ChainOrder(randomPatterns(rand.New(rand.NewSource(7)), 5, 1, 1), 1)
	if len(one) != 1 || one[0] != 0 {
		t.Error("single flop")
	}
}

func TestRandomOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	order := RandomOrder(9, rng)
	seen := make([]bool, 9)
	for _, f := range order {
		if seen[f] {
			t.Fatal("not a permutation")
		}
		seen[f] = true
	}
}
