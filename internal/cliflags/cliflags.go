// Package cliflags centralizes the flag definitions and validation that
// the scanpower commands share. cmd/tableone, cmd/scanpower and
// cmd/scanpowerd all take the same backend selectors (-measure,
// -mc-backend), worker-pool and timeout knobs, and — for anything that
// boots or joins a scanpowerd cluster — the same cluster flags (-peers,
// -store-dir, -store-max-bytes). Defining them here once keeps the
// usage strings, defaults and validation identical everywhere, so a new
// flag lands in every command by construction.
package cliflags

import (
	"flag"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/sim"
)

// Measure registers the -measure backend selector on fs and returns its
// value. Validate with ValidateMeasure after fs.Parse.
func Measure(fs *flag.FlagSet) *string {
	return fs.String("measure", string(scanpower.MeasurePacked),
		"measurement kernel: packed (bit-parallel), fast (event-driven) or dense (full re-eval)")
}

// MC registers the -mc-backend selector on fs and returns its value.
// Validate with ValidateMC after fs.Parse.
func MC(fs *flag.FlagSet) *string {
	return fs.String("mc-backend", string(scanpower.MCPacked),
		"Monte-Carlo kernel for observability and fill: packed (64-way bit-parallel) or scalar")
}

// Lanes registers the -lanes packed batch-width selector on fs and
// returns its value. Validate with ValidateLanes after fs.Parse.
func Lanes(fs *flag.FlagSet) *int {
	return fs.Int("lanes", 0, fmt.Sprintf(
		"packed kernel batch width in patterns/samples per pass, one of %v (0 = default %d); results are bit-identical at every width",
		sim.LaneWidths(), sim.WideLanes))
}

// ValidateLanes resolves a -lanes value to a concrete width: 0 means the
// default (sim.WideLanes), the supported widths pass through, anything
// else is an error naming them.
func ValidateLanes(n int) (int, error) {
	w, err := sim.ResolveLanes(n)
	if err != nil {
		return 0, fmt.Errorf("-lanes must be 0 or one of %v, got %d", sim.LaneWidths(), n)
	}
	return w, nil
}

// Workers registers the worker-pool size flag under name ("j" for the
// batch tools, "workers" for the daemon) and returns its value.
func Workers(fs *flag.FlagSet, name string, def int, usage string) *int {
	return fs.Int(name, def, usage)
}

// ATPGWorkers registers the -atpg-workers knob — the fault-parallel
// PODEM worker count inside the ATPG stage — and returns its value.
// Resolve with ValidateATPGWorkers after fs.Parse.
func ATPGWorkers(fs *flag.FlagSet) *int {
	return fs.Int("atpg-workers", 1,
		"fault-parallel PODEM workers inside the ATPG stage (0 = GOMAXPROCS, 1 = serial); patterns are bit-identical for every value")
}

// ValidateATPGWorkers resolves an -atpg-workers value: 0 means
// GOMAXPROCS, positive counts pass through, negative is an error.
func ValidateATPGWorkers(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("-atpg-workers must be >= 0, got %d", n)
	}
	if n == 0 {
		return runtime.GOMAXPROCS(0), nil
	}
	return n, nil
}

// Timeout registers a duration flag under name and returns its value.
func Timeout(fs *flag.FlagSet, name string, def time.Duration, usage string) *time.Duration {
	return fs.Duration(name, def, usage)
}

// ValidateMeasure checks a -measure value against the known backends.
func ValidateMeasure(s string) (scanpower.MeasureBackend, error) {
	b := scanpower.MeasureBackend(s)
	for _, want := range scanpower.MeasureBackends() {
		if b == want {
			return b, nil
		}
	}
	return "", fmt.Errorf("unknown measure backend %q (want one of %v)", s, scanpower.MeasureBackends())
}

// ValidateMC checks a -mc-backend value against the known backends.
func ValidateMC(s string) (scanpower.MCBackend, error) {
	b := scanpower.MCBackend(s)
	for _, want := range scanpower.MCBackends() {
		if b == want {
			return b, nil
		}
	}
	return "", fmt.Errorf("unknown mc backend %q (want one of %v)", s, scanpower.MCBackends())
}

// BackendConfig returns DefaultConfig with the validated -measure,
// -mc-backend and -lanes selections applied — the shared "flags to
// Config" step of every command.
func BackendConfig(measure, mc string, lanes int) (scanpower.Config, error) {
	cfg := scanpower.DefaultConfig()
	m, err := ValidateMeasure(measure)
	if err != nil {
		return cfg, err
	}
	b, err := ValidateMC(mc)
	if err != nil {
		return cfg, err
	}
	w, err := ValidateLanes(lanes)
	if err != nil {
		return cfg, err
	}
	cfg.Measure = m
	cfg.MC = b
	cfg.Lanes = w
	return cfg, nil
}

// Cluster carries the cluster-mode flag values: peer daemons and the
// persistent result store.
type Cluster struct {
	// Peers is the raw comma-separated peer base URLs.
	Peers string
	// StoreDir is the result-store directory ("" disables persistence).
	StoreDir string
	// StoreMaxBytes caps the store's total size (0 = no cap).
	StoreMaxBytes int64
}

// ClusterFlags registers -peers, -store-dir and -store-max-bytes on fs
// and returns their values.
func ClusterFlags(fs *flag.FlagSet) *Cluster {
	var c Cluster
	fs.StringVar(&c.Peers, "peers", "",
		"comma-separated base URLs of the peer scanpowerd nodes (e.g. http://10.0.0.2:8344,http://10.0.0.3:8344); empty = single node")
	fs.StringVar(&c.StoreDir, "store-dir", "",
		"directory of the persistent result store; empty = results die with the process")
	fs.Int64Var(&c.StoreMaxBytes, "store-max-bytes", 256<<20,
		"size cap of the result store in bytes, evicting least-recently-used entries (0 = no cap)")
	return &c
}

// PeerList parses the -peers value into normalized base URLs, dropping
// empties and trailing slashes and defaulting bare host:port entries to
// http.
func (c *Cluster) PeerList() []string {
	if c == nil || strings.TrimSpace(c.Peers) == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(c.Peers, ",") {
		if p = NormalizeEndpoint(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// NormalizeEndpoint canonicalizes one node base URL: trims space and
// trailing slashes and prefixes http:// when no scheme is given. Returns
// "" for blank input.
func NormalizeEndpoint(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimRight(s, "/")
	if s == "" {
		return ""
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return s
}
