package cliflags

import (
	"flag"
	"reflect"
	"testing"
	"time"

	"repro"
	"repro/internal/sim"
)

func TestSharedFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	measure := Measure(fs)
	mc := MC(fs)
	lanes := Lanes(fs)
	workers := Workers(fs, "j", 4, "worker pool size")
	timeout := Timeout(fs, "timeout", 0, "run deadline")
	cluster := ClusterFlags(fs)

	err := fs.Parse([]string{
		"-measure", "dense", "-mc-backend", "scalar", "-lanes", "64", "-j", "2", "-timeout", "90s",
		"-peers", " 10.0.0.2:8344, http://10.0.0.3:8344/ ,",
		"-store-dir", "/tmp/s", "-store-max-bytes", "1024",
	})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if *measure != "dense" || *mc != "scalar" || *lanes != 64 || *workers != 2 || *timeout != 90*time.Second {
		t.Errorf("parsed %q %q %d %d %v", *measure, *mc, *lanes, *workers, *timeout)
	}
	if cluster.StoreDir != "/tmp/s" || cluster.StoreMaxBytes != 1024 {
		t.Errorf("cluster = %+v", cluster)
	}
	want := []string{"http://10.0.0.2:8344", "http://10.0.0.3:8344"}
	if got := cluster.PeerList(); !reflect.DeepEqual(got, want) {
		t.Errorf("PeerList = %v, want %v", got, want)
	}
}

func TestDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	measure := Measure(fs)
	mc := MC(fs)
	cluster := ClusterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *measure != string(scanpower.MeasurePacked) || *mc != string(scanpower.MCPacked) {
		t.Errorf("defaults %q %q", *measure, *mc)
	}
	if cluster.PeerList() != nil {
		t.Errorf("empty -peers parsed to %v", cluster.PeerList())
	}
	if cluster.StoreMaxBytes != 256<<20 {
		t.Errorf("store cap default = %d", cluster.StoreMaxBytes)
	}
}

func TestValidation(t *testing.T) {
	if _, err := ValidateMeasure("quantum"); err == nil {
		t.Error("ValidateMeasure accepted quantum")
	}
	if _, err := ValidateMC("gpu"); err == nil {
		t.Error("ValidateMC accepted gpu")
	}
	for _, m := range scanpower.MeasureBackends() {
		if _, err := ValidateMeasure(string(m)); err != nil {
			t.Errorf("ValidateMeasure(%q): %v", m, err)
		}
	}
	if _, err := ValidateLanes(100); err == nil {
		t.Error("ValidateLanes accepted 100")
	}
	if w, err := ValidateLanes(0); err != nil || w != sim.WideLanes {
		t.Errorf("ValidateLanes(0) = %d, %v; want the %d default", w, err, sim.WideLanes)
	}
	for _, n := range sim.LaneWidths() {
		if w, err := ValidateLanes(n); err != nil || w != n {
			t.Errorf("ValidateLanes(%d) = %d, %v", n, w, err)
		}
	}
	cfg, err := BackendConfig("fast", "scalar", 64)
	if err != nil {
		t.Fatalf("BackendConfig: %v", err)
	}
	if cfg.Measure != scanpower.MeasureFast || cfg.MC != scanpower.MCScalar || cfg.Lanes != 64 {
		t.Errorf("BackendConfig applied %q %q %d", cfg.Measure, cfg.MC, cfg.Lanes)
	}
	if _, err := BackendConfig("nope", "packed", 0); err == nil {
		t.Error("BackendConfig accepted bad measure")
	}
	if _, err := BackendConfig("packed", "packed", 33); err == nil {
		t.Error("BackendConfig accepted bad lane width")
	}
}

func TestNormalizeEndpoint(t *testing.T) {
	cases := map[string]string{
		"":                        "",
		"  ":                      "",
		"127.0.0.1:8344":          "http://127.0.0.1:8344",
		"http://a:1/":             "http://a:1",
		"https://b.example:443//": "https://b.example:443",
	}
	for in, want := range cases {
		if got := NormalizeEndpoint(in); got != want {
			t.Errorf("NormalizeEndpoint(%q) = %q, want %q", in, got, want)
		}
	}
}
