package obs

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/leakage"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// PackedOpts tunes EstimatePacked. The zero value is a good default.
type PackedOpts struct {
	// Workers bounds the evaluation pool; values < 1 mean GOMAXPROCS.
	Workers int
	// Lanes is the batch width: how many random vectors are evaluated per
	// packed pass (see sim.LaneWidths; 0 means the default,
	// sim.WideLanes). Estimates are bit-identical across widths.
	Lanes int
	// OnSamples, when non-nil, receives the number of vectors folded into
	// the estimate since its previous call — once per packed batch, from
	// the reducing goroutine, so it need not be safe for concurrent use.
	OnSamples func(n int)
	// OnBatch, when non-nil, fires once per packed batch with its lane
	// count and evaluation wall time, also from the reducing goroutine.
	// It feeds the telemetry layer's mc-batch spans and lane counters.
	OnBatch func(lanes int, elapsed time.Duration)
}

// estSlot is one in-flight batch: inputs drawn serially on the main
// goroutine, evaluated by a worker, folded in order by the reducer.
type estSlot struct {
	pi, ppi []uint64  // packed input lane groups (ww words per input)
	n       int       // lanes carried (== the lane width except the tail)
	words   []uint64  // per-net lane groups after evaluation
	cyc     []float64 // per-lane circuit leakage
	elapsed time.Duration
}

// estScratch is the reusable state of EstimatePacked for one (circuit,
// lane width) pair: the compiled program, per-worker simulators, and the
// batch slots. A finished run returns its scratch to estPool so repeated
// estimates on the same circuit allocate nothing batch-sized.
type estScratch struct {
	c     *netlist.Circuit
	ww    int
	prog  *sim.Program
	slots []*estSlot
	evals []func(pi, ppi []uint64) []uint64
}

var estPool sync.Pool

// getEstScratch fetches pooled scratch compatible with (c, ww) or builds
// a fresh one. An incompatible pooled entry is simply dropped.
func getEstScratch(c *netlist.Circuit, ww int) *estScratch {
	if s, _ := estPool.Get().(*estScratch); s != nil && s.c == c && s.ww == ww {
		return s
	}
	return &estScratch{c: c, ww: ww, prog: sim.Compile(c)}
}

// ensure grows the scratch to hold window slots and workers evaluators.
func (s *estScratch) ensure(window, workers, lanes int) {
	c, ww := s.c, s.ww
	for len(s.slots) < window {
		s.slots = append(s.slots, &estSlot{
			pi:    make([]uint64, len(c.PIs)*ww),
			ppi:   make([]uint64, c.NumFFs()*ww),
			words: make([]uint64, c.NumNets()*ww),
			cyc:   make([]float64, lanes),
		})
	}
	for len(s.evals) < workers {
		if ww == 1 {
			s.evals = append(s.evals, sim.NewPackedProgram(s.prog).Eval)
		} else {
			s.evals = append(s.evals, sim.NewWideProgram(s.prog).Eval)
		}
	}
}

// EstimatePacked is EstimateObserved on the bit-parallel simulator:
// opts.Lanes random vectors (default sim.WideLanes = 256) pack into lane
// words per net, the compiled combinational core evaluates once per
// batch, per-lane leakage comes from leakage.AccumLeakPackedW, and the
// per-line conditional accumulators fold through
// leakage.AccumLineLeakPackedW. Batches are sharded across a worker pool.
//
// The result is bit-identical to the scalar kernel for the same rng, not
// merely statistically equivalent — and therefore seed-stable at every
// lane width: the random stream is drawn in the exact serial sample order
// while packing (so the rng ends in the same state the scalar kernel
// leaves it in), each lane's leakage is summed in the scalar gate order,
// and the reducer folds batches in ascending sample order on a single
// goroutine. Workers only ever evaluate; they never touch the global
// accumulators.
//
// ctx is checked before every batch is drawn and before every fold, so a
// job deadline aborts the estimate promptly with ctx's error.
func EstimatePacked(ctx context.Context, c *netlist.Circuit, lm *leakage.Model, samples int,
	rng *rand.Rand, opts PackedOpts) (*Observability, error) {

	lanes, err := sim.ResolveLanes(opts.Lanes)
	if err != nil {
		return nil, err
	}
	ww := lanes / 64

	if samples <= 0 {
		samples = 128
	}
	nNets := c.NumNets()
	sum1 := make([]float64, nNets)
	cnt1 := make([]int, nNets)
	sumAll := 0.0

	nBatches := (samples + lanes - 1) / lanes
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nBatches {
		workers = nBatches
	}

	// The per-gate tables are resolved once, before the pool starts, so
	// the workers share them read-only.
	leakTabs := lm.CircuitTables(c)

	// A bounded window of reusable slots keeps memory flat however many
	// samples are requested: draw a window serially, evaluate it in
	// parallel, fold it in order, repeat.
	window := workers * 4
	if window > nBatches {
		window = nBatches
	}
	scratch := getEstScratch(c, ww)
	scratch.ensure(window, workers, lanes)
	defer estPool.Put(scratch)
	slots := scratch.slots

	// evalSlot runs one batch on evaluator w: compiled-program pass plus
	// per-lane leakage accumulation.
	evalSlot := func(w int, s *estSlot) {
		t0 := time.Now()
		words := scratch.evals[w](s.pi, s.ppi)
		copy(s.words, words)
		for t := 0; t < s.n; t++ {
			s.cyc[t] = 0
		}
		lm.AccumLeakPackedW(c, s.words, ww, s.n, leakTabs, s.cyc)
		s.elapsed = time.Since(t0)
	}

	// The worker pool is spawned once for the whole run; each window
	// dispatches its live slots and waits. With a single worker the
	// batches run inline on this goroutine instead.
	var (
		wg   sync.WaitGroup
		next chan int
	)
	if workers > 1 {
		next = make(chan int)
		defer close(next)
		for w := 0; w < workers; w++ {
			go func(w int) {
				for bi := range next {
					evalSlot(w, slots[bi])
					wg.Done()
				}
			}(w)
		}
	}

	nPI, nFF := len(c.PIs), c.NumFFs()
	drawn := 0 // samples drawn so far
	for start := 0; start < nBatches; start += window {
		end := start + window
		if end > nBatches {
			end = nBatches
		}
		live := end - start

		// Draw this window's random stream in the exact serial order the
		// scalar kernel consumes it: per sample, PI vector then PPI
		// vector, packed as lane (sample mod lanes) of its batch.
		for bi := 0; bi < live; bi++ {
			s := slots[bi]
			for i := range s.pi {
				s.pi[i] = 0
			}
			for i := range s.ppi {
				s.ppi[i] = 0
			}
			n := samples - drawn
			if n > lanes {
				n = lanes
			}
			s.n = n
			for t := 0; t < n; t++ {
				wk, bit := t>>6, uint(t&63)
				for i := 0; i < nPI; i++ {
					s.pi[i*ww+wk] |= coin(rng) << bit
				}
				for i := 0; i < nFF; i++ {
					s.ppi[i*ww+wk] |= coin(rng) << bit
				}
			}
			drawn += n
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// Evaluate the window's batches across the pool. Worker 0 is this
		// goroutine.
		if workers == 1 {
			for bi := 0; bi < live; bi++ {
				evalSlot(0, slots[bi])
			}
		} else {
			wg.Add(live)
			for bi := 0; bi < live; bi++ {
				next <- bi
			}
			wg.Wait()
		}

		// Fold in ascending batch order — the scalar sample order.
		for bi := 0; bi < live; bi++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s := slots[bi]
			for t := 0; t < s.n; t++ {
				sumAll += s.cyc[t]
			}
			leakage.AccumLineLeakPackedW(s.words, ww, s.n, s.cyc, sum1, cnt1)
			if opts.OnSamples != nil {
				opts.OnSamples(s.n)
			}
			if opts.OnBatch != nil {
				opts.OnBatch(s.n, s.elapsed)
			}
		}
	}
	return finish(nNets, samples, sumAll, sum1, cnt1), nil
}

// coin draws one fair bit from rng with the same consumption as
// sim.RandomVector (one Intn(2) per value), returning it as a 0/1 word.
func coin(rng *rand.Rand) uint64 {
	if rng.Intn(2) == 1 {
		return 1
	}
	return 0
}
