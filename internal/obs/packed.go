package obs

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/leakage"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// PackedOpts tunes EstimatePacked. The zero value is a good default.
type PackedOpts struct {
	// Workers bounds the evaluation pool; values < 1 mean GOMAXPROCS.
	Workers int
	// OnSamples, when non-nil, receives the number of vectors folded into
	// the estimate since its previous call — once per 64-lane batch, from
	// the reducing goroutine, so it need not be safe for concurrent use.
	OnSamples func(n int)
	// OnBatch, when non-nil, fires once per packed batch with its lane
	// count and evaluation wall time, also from the reducing goroutine.
	// It feeds the telemetry layer's mc-batch spans and lane counters.
	OnBatch func(lanes int, elapsed time.Duration)
}

// EstimatePacked is EstimateObserved on the 64-way bit-parallel simulator:
// 64 random vectors pack into one lane word per net, the combinational
// core evaluates once per batch, per-lane leakage comes from
// leakage.AccumLeakPacked, and the per-line conditional accumulators fold
// through leakage.AccumLineLeakPacked. Batches are sharded across a
// worker pool.
//
// The result is bit-identical to the scalar kernel for the same rng, not
// merely statistically equivalent — and therefore seed-stable: the random
// stream is drawn in the exact serial sample order before packing (so the
// rng ends in the same state the scalar kernel leaves it in), each lane's
// leakage is summed in the scalar gate order, and the reducer folds
// batches in ascending sample order on a single goroutine. Workers only
// ever evaluate; they never touch the global accumulators.
//
// ctx is checked before every batch is drawn and before every fold, so a
// job deadline aborts the estimate promptly with ctx's error.
func EstimatePacked(ctx context.Context, c *netlist.Circuit, lm *leakage.Model, samples int,
	rng *rand.Rand, opts PackedOpts) (*Observability, error) {

	if samples <= 0 {
		samples = 128
	}
	nNets := c.NumNets()
	sum1 := make([]float64, nNets)
	cnt1 := make([]int, nNets)
	sumAll := 0.0

	nBatches := (samples + sim.PackedLanes - 1) / sim.PackedLanes
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nBatches {
		workers = nBatches
	}

	// The per-gate tables are resolved once, before the pool starts, so
	// the workers share them read-only.
	leakTabs := lm.CircuitTables(c)

	// slot is one in-flight batch: inputs drawn serially on the main
	// goroutine, evaluated by a worker, folded in order by the reducer.
	type slot struct {
		pi, ppi []uint64  // packed input lanes
		n       int       // lanes carried (== PackedLanes except the tail)
		words   []uint64  // per-net lane words after evaluation
		cyc     []float64 // per-lane circuit leakage
		elapsed time.Duration
	}
	// A bounded window of reusable slots keeps memory flat however many
	// samples are requested: draw a window serially, evaluate it in
	// parallel, fold it in order, repeat.
	window := workers * 4
	if window > nBatches {
		window = nBatches
	}
	slots := make([]*slot, window)
	for i := range slots {
		slots[i] = &slot{
			pi:    make([]uint64, len(c.PIs)),
			ppi:   make([]uint64, c.NumFFs()),
			words: make([]uint64, nNets),
			cyc:   make([]float64, sim.PackedLanes),
		}
	}
	sims := make([]*sim.Packed, workers)
	for i := range sims {
		sims[i] = sim.NewPacked(c)
	}

	pi := make([]bool, len(c.PIs))
	ppi := make([]bool, c.NumFFs())
	drawn := 0 // samples drawn so far
	for start := 0; start < nBatches; start += window {
		end := start + window
		if end > nBatches {
			end = nBatches
		}
		live := end - start

		// Draw this window's random stream in the exact serial order the
		// scalar kernel consumes it: per sample, PI vector then PPI
		// vector, packed as lane (sample mod 64) of its batch.
		for bi := 0; bi < live; bi++ {
			s := slots[bi]
			for i := range s.pi {
				s.pi[i] = 0
			}
			for i := range s.ppi {
				s.ppi[i] = 0
			}
			n := samples - drawn
			if n > sim.PackedLanes {
				n = sim.PackedLanes
			}
			s.n = n
			for t := 0; t < n; t++ {
				sim.RandomVector(rng, pi)
				sim.RandomVector(rng, ppi)
				bit := uint64(1) << uint(t)
				for i, v := range pi {
					if v {
						s.pi[i] |= bit
					}
				}
				for i, v := range ppi {
					if v {
						s.ppi[i] |= bit
					}
				}
			}
			drawn += n
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// Evaluate the window's batches across the pool.
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(ps *sim.Packed) {
				defer wg.Done()
				for bi := range next {
					s := slots[bi]
					t0 := time.Now()
					words := ps.Eval(s.pi, s.ppi)
					copy(s.words, words)
					for t := 0; t < s.n; t++ {
						s.cyc[t] = 0
					}
					lm.AccumLeakPacked(c, s.words, s.n, leakTabs, s.cyc)
					s.elapsed = time.Since(t0)
				}
			}(sims[w])
		}
		for bi := 0; bi < live; bi++ {
			next <- bi
		}
		close(next)
		wg.Wait()

		// Fold in ascending batch order — the scalar sample order.
		for bi := 0; bi < live; bi++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s := slots[bi]
			for t := 0; t < s.n; t++ {
				sumAll += s.cyc[t]
			}
			leakage.AccumLineLeakPacked(s.words, s.n, s.cyc, sum1, cnt1)
			if opts.OnSamples != nil {
				opts.OnSamples(s.n)
			}
			if opts.OnBatch != nil {
				opts.OnBatch(s.n, s.elapsed)
			}
		}
	}
	return finish(nNets, samples, sumAll, sum1, cnt1), nil
}
