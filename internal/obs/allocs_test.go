package obs

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/leakage"
)

// TestEstimatePackedAllocsFlat guards the scratch reuse of the packed
// estimator: once the pool is warm, the number of allocations per call
// must not grow with the sample count — batches run entirely in pooled
// buffers. A regression that allocates per batch (or per window) shows up
// as the large run allocating far more than the small one.
func TestEstimatePackedAllocsFlat(t *testing.T) {
	c := testCircuit(t)
	lm := leakage.Default()
	rng := rand.New(rand.NewSource(17))
	run := func(samples int) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := EstimatePacked(context.Background(), c, lm, samples, rng,
				PackedOpts{Workers: 1}); err != nil {
				t.Fatal(err)
			}
		})
	}
	run(64) // warm the scratch pool
	small := run(256)
	large := run(4096)
	// Slack absorbs an occasional mid-measurement GC clearing the pool;
	// per-batch allocations would exceed it by an order of magnitude.
	if large > small+16 {
		t.Errorf("allocs grew with samples: %v at 256, %v at 4096", small, large)
	}
}
