package obs

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/iscas"
	"repro/internal/leakage"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// obsIdentical returns "" when two estimates agree bit for bit on every
// field, else the first differing field. The packed kernel promises
// bit-identity, so no tolerance is applied.
func obsIdentical(a, b *Observability) string {
	switch {
	case a.Samples != b.Samples:
		return "Samples"
	case a.Mean != b.Mean:
		return "Mean"
	}
	for n := range a.Lobs {
		if a.Lobs[n] != b.Lobs[n] {
			return "Lobs"
		}
		if a.Ones[n] != b.Ones[n] {
			return "Ones"
		}
	}
	return ""
}

func testCircuit(t testing.TB) *netlist.Circuit {
	t.Helper()
	c := netlist.New("mc")
	c.AddPI("a")
	c.AddPI("b")
	c.AddPI("s")
	c.AddFF("f1", "q1", "d1")
	c.AddFF("f2", "q2", "d2")
	c.AddGate(logic.Nand, "x", "a", "q1")
	c.AddGate(logic.Nor, "y", "x", "b")
	c.AddGate(logic.Mux2, "m", "x", "y", "s")
	c.AddGate(logic.Xor, "z", "m", "q2")
	c.AddGate(logic.Not, "d1", "z")
	c.AddGate(logic.And, "d2", "m", "b")
	c.MarkPO("z")
	c.MustFreeze()
	return c
}

// TestMCPackedObsEquivalence: the packed estimator must reproduce the
// scalar kernel bit for bit — across batch-boundary sample counts, worker
// counts, and the s27 real circuit — and leave the rng in the same state.
func TestMCPackedObsEquivalence(t *testing.T) {
	lm := leakage.Default()
	circuits := []*netlist.Circuit{testCircuit(t), iscas.S27()}
	for _, c := range circuits {
		for _, samples := range []int{1, 63, 64, 65, 100, 500} {
			for _, workers := range []int{1, 3} {
				for _, lanes := range sim.LaneWidths() {
					r1 := rand.New(rand.NewSource(42))
					r2 := rand.New(rand.NewSource(42))
					ref, err := EstimateObserved(context.Background(), c, lm, samples, r1, nil)
					if err != nil {
						t.Fatal(err)
					}
					got, err := EstimatePacked(context.Background(), c, lm, samples, r2,
						PackedOpts{Workers: workers, Lanes: lanes})
					if err != nil {
						t.Fatal(err)
					}
					if field := obsIdentical(ref, got); field != "" {
						t.Fatalf("%s samples=%d workers=%d lanes=%d: %s differs",
							c.Name, samples, workers, lanes, field)
					}
					// Seed stability beyond this call: the packed kernel must
					// consume exactly the scalar kernel's random stream.
					if a, b := r1.Int63(), r2.Int63(); a != b {
						t.Fatalf("%s samples=%d lanes=%d: rng state diverged (%d vs %d)",
							c.Name, samples, lanes, a, b)
					}
				}
			}
		}
	}
	if _, err := EstimatePacked(context.Background(), circuits[0], lm, 64,
		rand.New(rand.NewSource(1)), PackedOpts{Lanes: 96}); err == nil {
		t.Error("unsupported lane width accepted")
	}
}

// TestMCPackedObsTelemetry: per-batch sample reports must sum to the
// request and every batch must carry 1..width lanes.
func TestMCPackedObsTelemetry(t *testing.T) {
	c := testCircuit(t)
	for _, width := range sim.LaneWidths() {
		total, batches, lanes := 0, 0, 0
		_, err := EstimatePacked(context.Background(), c, leakage.Default(), 200,
			rand.New(rand.NewSource(8)), PackedOpts{
				Lanes:     width,
				OnSamples: func(n int) { total += n },
				OnBatch: func(n int, _ time.Duration) {
					batches++
					lanes += n
					if n < 1 || n > width {
						t.Errorf("width %d: batch of %d lanes", width, n)
					}
				},
			})
		if err != nil {
			t.Fatal(err)
		}
		if total != 200 || lanes != 200 {
			t.Errorf("width %d: OnSamples %d / OnBatch lanes %d, want 200", width, total, lanes)
		}
		if want := (200 + width - 1) / width; batches != want {
			t.Errorf("width %d: OnBatch fired %d times, want %d", width, batches, want)
		}
	}
}

// TestEstimateDeadline: both kernels must honour an expired context
// mid-run instead of completing the estimate — the path a scanpowerd job
// deadline takes into the observability phase.
func TestEstimateDeadline(t *testing.T) {
	c := testCircuit(t)
	lm := leakage.Default()

	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := EstimateObserved(ctx, c, lm, 100000, rand.New(rand.NewSource(1)), func(int) {
		if calls++; calls == 2 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Errorf("scalar: err = %v, want context.Canceled", err)
	}
	if calls > 3 {
		t.Errorf("scalar kept sampling after cancel: %d progress calls", calls)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	calls = 0
	_, err = EstimatePacked(ctx2, c, lm, 1<<20, rand.New(rand.NewSource(1)), PackedOpts{
		Workers:   2,
		OnSamples: func(int) { calls++; cancel2() },
	})
	if err != context.Canceled {
		t.Errorf("packed: err = %v, want context.Canceled", err)
	}

	expired, cancel3 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel3()
	if _, err := EstimatePacked(expired, c, lm, 4096, rand.New(rand.NewSource(1)),
		PackedOpts{}); err != context.DeadlineExceeded {
		t.Errorf("packed expired deadline: err = %v, want DeadlineExceeded", err)
	}
}

// TestEstimatePackedDefaults mirrors TestEstimateDefaults for the packed
// kernel: samples <= 0 falls back to 128.
func TestEstimatePackedDefaults(t *testing.T) {
	c := testCircuit(t)
	o, err := EstimatePacked(context.Background(), c, leakage.Default(), 0,
		rand.New(rand.NewSource(3)), PackedOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if o.Samples != 128 {
		t.Errorf("default samples = %d, want 128", o.Samples)
	}
	if o.Mean <= 0 {
		t.Error("mean leakage should be positive")
	}
}
