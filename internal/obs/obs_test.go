package obs

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/leakage"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// invOnly: a single inverter. Leakage(in=0)=IsubN+IgP=220, (in=1)=IsubP+IgN=204.
// So Lobs(a) = 204-220 = -16: setting a=1 is cheaper.
func TestObservabilitySingleInverter(t *testing.T) {
	c := netlist.New("inv")
	c.AddPI("a")
	c.AddGate(logic.Not, "o", "a")
	c.MarkPO("o")
	c.MustFreeze()
	lm := leakage.Default()
	o := Estimate(c, lm, 2000, rand.New(rand.NewSource(1)))
	aID, _ := c.NetByName("a")
	p := lm.Params()
	want := (p.IsubP + p.IgN) - (p.IsubN + p.IgP)
	if math.Abs(o.At(aID)-want) > 1e-6 {
		t.Errorf("Lobs(a) = %v, want %v", o.At(aID), want)
	}
	if !o.PreferredValue(aID) {
		t.Error("preferred value of inverter input should be 1")
	}
	oID, _ := c.NetByName("o")
	if math.Abs(o.At(oID)+want) > 1e-6 {
		t.Errorf("Lobs(o) = %v, want %v (perfect anticorrelation)", o.At(oID), -want)
	}
}

// nand2: exact conditional averages computable by hand from the Figure 2
// table: states 00,01,10,11 equally likely.
// Lavg(a=1) = (264+408)/2, Lavg(a=0) = (78+73)/2 -> Lobs(a) = 260.5.
// Lavg(b=1) = (73+408)/2, Lavg(b=0) = (78+264)/2 -> Lobs(b) = 69.5.
func TestObservabilityNAND2Exact(t *testing.T) {
	c := netlist.New("nand")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGate(logic.Nand, "o", "a", "b")
	c.MarkPO("o")
	c.MustFreeze()
	lm := leakage.Default()
	o := Estimate(c, lm, 20000, rand.New(rand.NewSource(2)))
	aID, _ := c.NetByName("a")
	bID, _ := c.NetByName("b")
	f := lm.Figure2()
	wantA := (f[2]+f[3])/2 - (f[0]+f[1])/2
	wantB := (f[1]+f[3])/2 - (f[0]+f[2])/2
	if math.Abs(o.At(aID)-wantA) > 12 {
		t.Errorf("Lobs(a) = %v, want ~%v", o.At(aID), wantA)
	}
	if math.Abs(o.At(bID)-wantB) > 12 {
		t.Errorf("Lobs(b) = %v, want ~%v", o.At(bID), wantB)
	}
	// a dominates b: first input position carries the bigger cost swing.
	if o.At(aID) <= o.At(bID) {
		t.Error("Lobs(a) should exceed Lobs(b)")
	}
}

func TestPickForValue(t *testing.T) {
	o := &Observability{Lobs: []float64{-50, 10, 200}}
	cands := []netlist.NetID{0, 1, 2}
	// Setting a 1: pick minimum observability -> net 0.
	if got := o.PickForValue(cands, true); got != 0 {
		t.Errorf("PickForValue(1) = %d, want 0", got)
	}
	// Setting a 0: pick maximum -> net 2.
	if got := o.PickForValue(cands, false); got != 2 {
		t.Errorf("PickForValue(0) = %d, want 2", got)
	}
}

func TestEstimateDefaults(t *testing.T) {
	c := netlist.New("inv")
	c.AddPI("a")
	c.AddGate(logic.Not, "o", "a")
	c.MarkPO("o")
	c.MustFreeze()
	o := Estimate(c, leakage.Default(), 0, rand.New(rand.NewSource(3)))
	if o.Samples != 128 {
		t.Errorf("default samples = %d, want 128", o.Samples)
	}
	if o.Mean <= 0 {
		t.Error("mean leakage should be positive")
	}
}

func TestConstantLikeNetFallsBackToMean(t *testing.T) {
	// y = AND(a, NOT(a)) is always 0: Lavg(y,1) falls back to the mean, so
	// Lobs(y) = mean - Lavg(y=0) = 0 exactly (every sample has y=0).
	c := netlist.New("const")
	c.AddPI("a")
	c.AddGate(logic.Not, "na", "a")
	c.AddGate(logic.And, "y", "a", "na")
	c.MarkPO("y")
	c.MustFreeze()
	o := Estimate(c, leakage.Default(), 500, rand.New(rand.NewSource(4)))
	yID, _ := c.NetByName("y")
	if math.Abs(o.At(yID)) > 1e-9 {
		t.Errorf("Lobs(constant net) = %v, want 0", o.At(yID))
	}
	if o.Ones[yID] != 0 {
		t.Errorf("constant-0 net observed at 1 %d times", o.Ones[yID])
	}
}

// TestEstimateDeterministic: the estimator is a pure function of the seed
// — two runs from identical sources agree bit-for-bit on every field, so
// experiments are reproducible.
func TestEstimateDeterministic(t *testing.T) {
	c := netlist.New("det")
	c.AddPI("a")
	c.AddPI("b")
	c.AddFF("f", "q", "d")
	c.AddGate(logic.Nand, "x", "a", "q")
	c.AddGate(logic.Nor, "d", "x", "b")
	c.AddGate(logic.Not, "o", "x")
	c.MarkPO("o")
	c.MustFreeze()
	lm := leakage.Default()
	o1 := Estimate(c, lm, 512, rand.New(rand.NewSource(42)))
	o2 := Estimate(c, lm, 512, rand.New(rand.NewSource(42)))
	if o1.Mean != o2.Mean || o1.Samples != o2.Samples {
		t.Fatalf("summary differs: (%v,%d) vs (%v,%d)", o1.Mean, o1.Samples, o2.Mean, o2.Samples)
	}
	for ni := range o1.Lobs {
		if o1.Lobs[ni] != o2.Lobs[ni] || o1.Ones[ni] != o2.Ones[ni] {
			t.Fatalf("net %d differs across identically-seeded runs", ni)
		}
	}
	// A different seed must actually change the sample set (Ones shifts).
	o3 := Estimate(c, lm, 512, rand.New(rand.NewSource(43)))
	same := true
	for ni := range o1.Ones {
		if o1.Ones[ni] != o3.Ones[ni] {
			same = false
			break
		}
	}
	if same {
		t.Error("seed 43 reproduced seed 42's sample counts exactly")
	}
}

// TestNeverObservedUsesMean: a net stuck at 1 has no v=0 samples, so
// Lavg(·,0) falls back to the overall mean and Lobs = Lavg(·,1) − Mean.
func TestNeverObservedUsesMean(t *testing.T) {
	// y = OR(a, NOT(a)) is constant 1: cnt0(y) = 0 for every sample.
	c := netlist.New("const1")
	c.AddPI("a")
	c.AddGate(logic.Not, "na", "a")
	c.AddGate(logic.Or, "y", "a", "na")
	c.MarkPO("y")
	c.MustFreeze()
	o := Estimate(c, leakage.Default(), 400, rand.New(rand.NewSource(5)))
	yID, _ := c.NetByName("y")
	if o.Ones[yID] != o.Samples {
		t.Fatalf("constant-1 net observed at 1 %d/%d times", o.Ones[yID], o.Samples)
	}
	// avg0 == Mean ⇒ Lobs = avg1 − Mean = Mean − Mean = 0 (avg1 over all
	// samples IS the mean when every sample has y=1).
	if math.Abs(o.At(yID)) > 1e-9 {
		t.Errorf("Lobs(constant-1 net) = %v, want 0 (mean fallback)", o.At(yID))
	}
}

// TestEstimateObservedBatches: the progress callback must account for
// every vector exactly once (batches of obsBatch plus one remainder call)
// and must not perturb the estimate.
func TestEstimateObservedBatches(t *testing.T) {
	c := netlist.New("batch")
	c.AddPI("a")
	c.AddGate(logic.Not, "o", "a")
	c.MarkPO("o")
	c.MustFreeze()
	lm := leakage.Default()
	const samples = 100 // 3 full batches of 32 + remainder 4
	var got []int
	total := 0
	o, err := EstimateObserved(context.Background(), c, lm, samples, rand.New(rand.NewSource(7)),
		func(n int) {
			got = append(got, n)
			total += n
		})
	if err != nil {
		t.Fatal(err)
	}
	if total != samples {
		t.Errorf("callback accounted %d vectors, want %d", total, samples)
	}
	want := []int{32, 32, 32, 4}
	if len(got) != len(want) {
		t.Fatalf("callback fired %d times (%v), want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch sizes %v, want %v", got, want)
		}
	}
	plain := Estimate(c, lm, samples, rand.New(rand.NewSource(7)))
	if o.Mean != plain.Mean {
		t.Errorf("observed estimate diverged from plain: %v vs %v", o.Mean, plain.Mean)
	}
}

// exactObservability computes Lobs by full enumeration of the input space
// — the ground truth the Monte-Carlo estimator must converge to.
func exactObservability(c *netlist.Circuit, lm *leakage.Model) []float64 {
	s := sim.New(c)
	nIn := len(c.CombInputs())
	sum1 := make([]float64, c.NumNets())
	cnt1 := make([]int, c.NumNets())
	total := 0.0
	n := 1 << nIn
	pi := make([]bool, len(c.PIs))
	ppi := make([]bool, c.NumFFs())
	for bits := 0; bits < n; bits++ {
		for i := range pi {
			pi[i] = bits>>i&1 == 1
		}
		for i := range ppi {
			ppi[i] = bits>>(len(pi)+i)&1 == 1
		}
		st := s.Eval(pi, ppi)
		leak := lm.CircuitLeakBool(c, st)
		total += leak
		for ni := range st {
			if st[ni] {
				sum1[ni] += leak
				cnt1[ni]++
			}
		}
	}
	out := make([]float64, c.NumNets())
	for ni := range out {
		c0 := n - cnt1[ni]
		mean := total / float64(n)
		a1, a0 := mean, mean
		if cnt1[ni] > 0 {
			a1 = sum1[ni] / float64(cnt1[ni])
		}
		if c0 > 0 {
			a0 = (total - sum1[ni]) / float64(c0)
		}
		out[ni] = a1 - a0
	}
	return out
}

// TestEstimateConvergesToExact: with enough samples the Monte-Carlo
// estimate must approach the exhaustive conditional averages on a small
// circuit, for every line.
func TestEstimateConvergesToExact(t *testing.T) {
	c := netlist.New("conv")
	c.AddPI("a")
	c.AddPI("b")
	c.AddPI("s")
	c.AddFF("f", "q", "d")
	c.AddGate(logic.Nand, "x", "a", "q")
	c.AddGate(logic.Nor, "y", "x", "b")
	c.AddGate(logic.Nand, "d", "y", "s")
	c.AddGate(logic.Not, "o", "y")
	c.MarkPO("o")
	c.MustFreeze()
	lm := leakage.Default()
	exact := exactObservability(c, lm)
	o := Estimate(c, lm, 60000, rand.New(rand.NewSource(9)))
	for ni := range exact {
		diff := math.Abs(o.Lobs[ni] - exact[ni])
		// Tolerate a few nA of Monte-Carlo noise on values spanning
		// hundreds of nA.
		if diff > 8 {
			t.Errorf("net %s: estimate %v vs exact %v", c.Nets[ni].Name, o.Lobs[ni], exact[ni])
		}
	}
}
