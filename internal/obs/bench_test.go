package obs

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/iscas"
	"repro/internal/leakage"
)

// BenchmarkObsKernels compares the scalar and 64-way packed observability
// estimators on s1423 (657 gates, 74 FFs) at Table-I-scale sample counts.
// Feeds `make bench-mc`; the acceptance bar is packed >= 5x scalar at
// >= 1024 samples.
func BenchmarkObsKernels(b *testing.B) {
	p, ok := iscas.ByName("s1423")
	if !ok {
		b.Fatal("no s1423 profile")
	}
	c, err := iscas.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	lm := leakage.Default()
	for _, samples := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("scalar/s1423/n%d", samples), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EstimateObserved(context.Background(), c, lm, samples,
					rand.New(rand.NewSource(1)), nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("packed/s1423/n%d", samples), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EstimatePacked(context.Background(), c, lm, samples,
					rand.New(rand.NewSource(1)), PackedOpts{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
