package obs

import (
	"context"
	"math/bits"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/benchjson"
	"repro/internal/iscas"
	"repro/internal/leakage"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// This file preserves the pre-refactor 64-lane observability estimator as
// the baseline for `make bench-wide`: per-worker topo-walk simulators
// (the old sim.Packed), per-lane shift extraction for leakage (the old
// leakage.AccumLeakPacked), single-width line accumulators, and a worker
// pool respawned per window. The shipping kernel runs the compiled
// program at 256 lanes with pooled scratch; the report quantifies the
// difference.

// legacyObsSim is the pre-refactor sim.Packed bound to one worker.
type legacyObsSim struct {
	c     *netlist.Circuit
	words []uint64
}

func newLegacyObsSim(c *netlist.Circuit) *legacyObsSim {
	return &legacyObsSim{c: c, words: make([]uint64, c.NumNets())}
}

func (p *legacyObsSim) Eval(pi, ppi []uint64) []uint64 {
	c := p.c
	v := p.words
	for i, n := range c.PIs {
		v[n] = pi[i]
	}
	for i, ff := range c.FFs {
		v[ff.Q] = ppi[i]
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		ins := g.Inputs
		var w uint64
		switch g.Type {
		case logic.Buf:
			w = v[ins[0]]
		case logic.Not:
			w = ^v[ins[0]]
		case logic.And, logic.Nand:
			w = v[ins[0]]
			for _, in := range ins[1:] {
				w &= v[in]
			}
			if g.Type == logic.Nand {
				w = ^w
			}
		case logic.Or, logic.Nor:
			w = v[ins[0]]
			for _, in := range ins[1:] {
				w |= v[in]
			}
			if g.Type == logic.Nor {
				w = ^w
			}
		case logic.Xor, logic.Xnor:
			w = v[ins[0]]
			for _, in := range ins[1:] {
				w ^= v[in]
			}
			if g.Type == logic.Xnor {
				w = ^w
			}
		case logic.Mux2:
			sel := v[ins[2]]
			w = (v[ins[0]] &^ sel) | (v[ins[1]] & sel)
		default:
			panic("legacy obs Eval on unknown gate type " + g.Type.String())
		}
		v[g.Output] = w
	}
	return v
}

// legacyObsAccumLeak is the pre-refactor leakage.AccumLeakPacked.
func legacyObsAccumLeak(c *netlist.Circuit, words []uint64, n int, tabs [][]float64, cyc []float64) {
	for gi := range c.Gates {
		g := &c.Gates[gi]
		tab := tabs[gi]
		switch len(g.Inputs) {
		case 1:
			a := words[g.Inputs[0]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[a&1]
				a >>= 1
			}
		case 2:
			a := words[g.Inputs[0]]
			b := words[g.Inputs[1]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[(a&1)|(b&1)<<1]
				a >>= 1
				b >>= 1
			}
		case 3:
			a := words[g.Inputs[0]]
			b := words[g.Inputs[1]]
			d := words[g.Inputs[2]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[(a&1)|(b&1)<<1|(d&1)<<2]
				a >>= 1
				b >>= 1
				d >>= 1
			}
		default:
			for t := 0; t < n; t++ {
				idx := 0
				for i, in := range g.Inputs {
					idx |= int(words[in]>>uint(t)&1) << i
				}
				cyc[t] += tab[idx]
			}
		}
	}
}

// legacyAccumLineLeak is the pre-refactor leakage.AccumLineLeakPacked.
func legacyAccumLineLeak(words []uint64, n int, cyc []float64, sum1 []float64, cnt1 []int) {
	valid := ^uint64(0)
	if n < 64 {
		valid = 1<<uint(n) - 1
	}
	for ni := range words {
		w := words[ni] & valid
		if w == 0 {
			continue
		}
		s := sum1[ni]
		for m := w; m != 0; m &= m - 1 {
			s += cyc[bits.TrailingZeros64(m)]
		}
		sum1[ni] = s
		cnt1[ni] += bits.OnesCount64(w)
	}
}

// legacyEstimatePacked is the pre-refactor EstimatePacked, verbatim
// except for using the preserved local evaluator and accumulators: fixed
// 64-lane batches, fresh slots and simulators every call, and a worker
// pool spawned per window.
func legacyEstimatePacked(ctx context.Context, c *netlist.Circuit, lm *leakage.Model, samples int,
	rng *rand.Rand, opts PackedOpts) (*Observability, error) {

	if samples <= 0 {
		samples = 128
	}
	nNets := c.NumNets()
	sum1 := make([]float64, nNets)
	cnt1 := make([]int, nNets)
	sumAll := 0.0

	nBatches := (samples + sim.PackedLanes - 1) / sim.PackedLanes
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nBatches {
		workers = nBatches
	}

	leakTabs := lm.CircuitTables(c)

	type slot struct {
		pi, ppi []uint64
		n       int
		words   []uint64
		cyc     []float64
		elapsed time.Duration
	}
	window := workers * 4
	if window > nBatches {
		window = nBatches
	}
	slots := make([]*slot, window)
	for i := range slots {
		slots[i] = &slot{
			pi:    make([]uint64, len(c.PIs)),
			ppi:   make([]uint64, c.NumFFs()),
			words: make([]uint64, nNets),
			cyc:   make([]float64, sim.PackedLanes),
		}
	}
	sims := make([]*legacyObsSim, workers)
	for i := range sims {
		sims[i] = newLegacyObsSim(c)
	}

	pi := make([]bool, len(c.PIs))
	ppi := make([]bool, c.NumFFs())
	drawn := 0
	for start := 0; start < nBatches; start += window {
		end := start + window
		if end > nBatches {
			end = nBatches
		}
		live := end - start

		for bi := 0; bi < live; bi++ {
			s := slots[bi]
			for i := range s.pi {
				s.pi[i] = 0
			}
			for i := range s.ppi {
				s.ppi[i] = 0
			}
			n := samples - drawn
			if n > sim.PackedLanes {
				n = sim.PackedLanes
			}
			s.n = n
			for t := 0; t < n; t++ {
				sim.RandomVector(rng, pi)
				sim.RandomVector(rng, ppi)
				bit := uint64(1) << uint(t)
				for i, v := range pi {
					if v {
						s.pi[i] |= bit
					}
				}
				for i, v := range ppi {
					if v {
						s.ppi[i] |= bit
					}
				}
			}
			drawn += n
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(ps *legacyObsSim) {
				defer wg.Done()
				for bi := range next {
					s := slots[bi]
					t0 := time.Now()
					words := ps.Eval(s.pi, s.ppi)
					copy(s.words, words)
					for t := 0; t < s.n; t++ {
						s.cyc[t] = 0
					}
					legacyObsAccumLeak(c, s.words, s.n, leakTabs, s.cyc)
					s.elapsed = time.Since(t0)
				}
			}(sims[w])
		}
		for bi := 0; bi < live; bi++ {
			next <- bi
		}
		close(next)
		wg.Wait()

		for bi := 0; bi < live; bi++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s := slots[bi]
			for t := 0; t < s.n; t++ {
				sumAll += s.cyc[t]
			}
			legacyAccumLineLeak(s.words, s.n, s.cyc, sum1, cnt1)
			if opts.OnSamples != nil {
				opts.OnSamples(s.n)
			}
			if opts.OnBatch != nil {
				opts.OnBatch(s.n, s.elapsed)
			}
		}
	}
	return finish(nNets, samples, sumAll, sum1, cnt1), nil
}

// TestBenchWideObsJSON times the observability estimator — preserved
// legacy 64-lane baseline vs the compiled evaluator at 64 and 256 lanes —
// and merges obs/<circuit> entries into the bench-wide report. `make
// bench-wide` runs it; without WIDE_BENCH_OUT it is skipped.
func TestBenchWideObsJSON(t *testing.T) {
	out := os.Getenv("WIDE_BENCH_OUT")
	if out == "" {
		t.Skip("set WIDE_BENCH_OUT to run the wide-kernel obs benchmark")
	}
	const samples = 4096
	const rounds = 5
	ctx := context.Background()
	entries := map[string]benchjson.Entry{}
	for _, name := range []string{"s1423", "s5378"} {
		p, ok := iscas.ByName(name)
		if !ok {
			t.Fatalf("no ISCAS profile %q", name)
		}
		c, err := iscas.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		lm := leakage.Default()

		run := func(lanes int) *Observability {
			var ob *Observability
			var err error
			rng := rand.New(rand.NewSource(1))
			if lanes == 0 {
				ob, err = legacyEstimatePacked(ctx, c, lm, samples, rng, PackedOpts{})
			} else {
				ob, err = EstimatePacked(ctx, c, lm, samples, rng, PackedOpts{Lanes: lanes})
			}
			if err != nil {
				t.Fatal(err)
			}
			return ob
		}

		legacyOb, new64, new256 := run(0), run(64), run(256)
		if !reflect.DeepEqual(legacyOb, new64) {
			t.Fatalf("%s: legacy vs new64 estimate differs", name)
		}
		if !reflect.DeepEqual(legacyOb, new256) {
			t.Fatalf("%s: legacy vs new256 estimate differs", name)
		}

		legacyMS := benchjson.MinMS(rounds, func() { run(0) })
		new64MS := benchjson.MinMS(rounds, func() { run(64) })
		new256MS := benchjson.MinMS(rounds, func() { run(256) })
		speedup := legacyMS / new256MS
		t.Logf("%s: legacy64 %.2fms, new64 %.2fms, new256 %.2fms (%.2fx)",
			name, legacyMS, new64MS, new256MS, speedup)
		entries["obs/"+name] = benchjson.Entry{
			Workload: "EstimatePacked, 4096 samples, seed 1, best of 5",
			ResultsMS: map[string]float64{
				"legacy64": benchjson.Round2(legacyMS),
				"new64":    benchjson.Round2(new64MS),
				"new256":   benchjson.Round2(new256MS),
			},
			SpeedupVsLegacy64: benchjson.Round2(speedup),
			Criterion:         "new256 >= 1.5x over the pre-refactor 64-lane kernel",
			Met:               speedup >= 1.5,
		}
	}
	if err := benchjson.Merge(out, entries); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged obs entries into %s", out)
}
