// Package obs computes the leakage observability attribute of
// Johnson, Somasekhar & Roy ("Models and algorithms for bounds on leakage
// in CMOS circuits", TCAD 1999), extended — as the paper proposes — from
// primary inputs to every line of the circuit.
//
// The leakage observability of line i is
//
//	Lobs(i) = Lavg(i,1) − Lavg(i,0)
//
// the difference between the average total circuit leakage when the line
// carries 1 versus 0. A large magnitude means the line's value strongly
// influences total leakage; the sign says which value is cheaper. The
// proposed FindControlledInputPattern procedure uses it to steer every
// free choice (which gate input to set to the controlling value, which
// input to pick during Backtrace) toward low-leakage assignments.
//
// Lavg is estimated by Monte-Carlo conditional averaging: simulate N
// uniform random input vectors, evaluate the total leakage of each, and
// average per (line, value) bucket. This estimates the conditional
// expectation E[L | line=v] under uniform inputs, the tractable analogue
// of the reverse-topological bound computation of the original paper.
package obs

import (
	"context"
	"math/rand"

	"repro/internal/leakage"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Observability holds per-net leakage observability estimates in nA.
type Observability struct {
	// Lobs[n] = Lavg(n,1) - Lavg(n,0).
	Lobs []float64
	// Mean is the overall average circuit leakage across samples.
	Mean float64
	// Samples is the number of random vectors used.
	Samples int
	// Ones[n] counts samples in which net n carried 1 (confidence proxy).
	Ones []int
}

// Estimate computes observabilities for the frozen circuit c with the
// given leakage model, using `samples` random vectors from rng. It is the
// uncancellable convenience form of EstimateObserved.
func Estimate(c *netlist.Circuit, lm *leakage.Model, samples int, rng *rand.Rand) *Observability {
	o, _ := EstimateObserved(context.Background(), c, lm, samples, rng, nil)
	return o
}

// obsBatch is how many Monte-Carlo vectors run between onSamples calls
// and context checks — frequent enough for a live samples/sec gauge and a
// prompt deadline abort, rare enough to be free.
const obsBatch = 32

// EstimateObserved is Estimate with cancellation and progress telemetry:
// ctx is checked every obsBatch vectors, so a job deadline aborts the
// estimate mid-run with ctx's error instead of after it; onSamples (when
// non-nil) receives the number of vectors simulated since its previous
// call, every obsBatch vectors and once at the end. A nil onSamples adds
// no work.
//
// This is the scalar reference kernel: EstimatePacked reproduces its
// results bit for bit and is the default in the flow.
func EstimateObserved(ctx context.Context, c *netlist.Circuit, lm *leakage.Model, samples int,
	rng *rand.Rand, onSamples func(n int)) (*Observability, error) {

	if samples <= 0 {
		samples = 128
	}
	s := sim.New(c)
	nNets := c.NumNets()
	sum1 := make([]float64, nNets)
	cnt1 := make([]int, nNets)
	sumAll := 0.0

	pi := make([]bool, len(c.PIs))
	ppi := make([]bool, c.NumFFs())
	unreported := 0
	for it := 0; it < samples; it++ {
		sim.RandomVector(rng, pi)
		sim.RandomVector(rng, ppi)
		state := s.Eval(pi, ppi)
		leak := lm.CircuitLeakBool(c, state)
		sumAll += leak
		for n := 0; n < nNets; n++ {
			if state[n] {
				sum1[n] += leak
				cnt1[n]++
			}
		}
		if unreported++; unreported == obsBatch {
			if onSamples != nil {
				onSamples(unreported)
			}
			unreported = 0
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	if onSamples != nil && unreported > 0 {
		onSamples(unreported)
	}
	return finish(nNets, samples, sumAll, sum1, cnt1), nil
}

// finish turns the raw conditional accumulators into an Observability —
// shared by the scalar and packed kernels so the estimate is a pure
// function of (sumAll, sum1, cnt1), whichever kernel produced them.
func finish(nNets, samples int, sumAll float64, sum1 []float64, cnt1 []int) *Observability {
	o := &Observability{
		Lobs:    make([]float64, nNets),
		Mean:    sumAll / float64(samples),
		Samples: samples,
		Ones:    cnt1,
	}
	for n := 0; n < nNets; n++ {
		c0 := samples - cnt1[n]
		var avg1, avg0 float64
		if cnt1[n] > 0 {
			avg1 = sum1[n] / float64(cnt1[n])
		} else {
			avg1 = o.Mean // never observed at 1: no information
		}
		if c0 > 0 {
			avg0 = (sumAll - sum1[n]) / float64(c0)
		} else {
			avg0 = o.Mean
		}
		o.Lobs[n] = avg1 - avg0
	}
	return o
}

// At returns Lobs for net n.
func (o *Observability) At(n netlist.NetID) float64 { return o.Lobs[n] }

// PreferredValue returns the cheaper value for net n: false (0) when
// setting the line to 1 costs more leakage on average, true otherwise.
func (o *Observability) PreferredValue(n netlist.NetID) bool {
	return o.Lobs[n] < 0
}

// PickForValue implements the paper's selection directive: when a value v
// must be placed on one line out of candidates, choose the line with
// minimum observability if v is 1, maximum if v is 0 — so the assignment
// disturbs total leakage toward cheaper states. Returns the index into
// candidates.
func (o *Observability) PickForValue(candidates []netlist.NetID, v bool) int {
	best := 0
	for i := 1; i < len(candidates); i++ {
		oi := o.Lobs[candidates[i]]
		ob := o.Lobs[candidates[best]]
		if v {
			if oi < ob {
				best = i
			}
		} else {
			if oi > ob {
				best = i
			}
		}
	}
	return best
}
