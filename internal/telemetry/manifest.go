package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// ManifestSchema identifies the manifest JSON layout. Bump the suffix on
// breaking changes; consumers (bench-trajectory tooling, CI) key on it.
const ManifestSchema = "scanpower/run-manifest/v1"

// Manifest is the machine-readable record of one experiment run: the
// environment it ran in, what it was configured to do, how long every
// per-circuit stage took, the metric snapshot, and the rendered results.
// It is the payload of the BENCH_<date>.json perf-trajectory files.
type Manifest struct {
	Schema    string    `json:"schema"`
	Label     string    `json:"label,omitempty"`
	CreatedAt time.Time `json:"created_at"`

	// Environment.
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Workers    int    `json:"workers,omitempty"`

	// Config is the run configuration, marshaled by the caller (kept raw
	// so the manifest schema does not chase config struct evolution).
	Config json.RawMessage `json:"config,omitempty"`

	// WallNS is the whole run's wall time in nanoseconds.
	WallNS int64 `json:"wall_ns"`

	// Circuits holds the per-circuit stage record, in completion order.
	Circuits []CircuitManifest `json:"circuits"`

	// Counters is the metric snapshot at the end of the run
	// (Registry.Snapshot form).
	Counters map[string]float64 `json:"counters,omitempty"`

	// Results is the run's result payload, marshaled by the caller —
	// since scanpower/comparison/v1, the {schema, comparisons:[...]}
	// container that scanpower.WriteComparisonsJSON emits, identical to
	// the scanpowerd service's result responses.
	Results json.RawMessage `json:"results,omitempty"`
}

// CircuitManifest records one circuit's trip through the pipeline.
type CircuitManifest struct {
	Name string `json:"name"`
	// Err is the per-circuit failure, empty on success.
	Err string `json:"err,omitempty"`
	// Stages lists the observed stages in completion order.
	Stages []StageManifest `json:"stages"`
}

// StageManifest is one stage's wall time and counters.
type StageManifest struct {
	Stage  string `json:"stage"`
	WallNS int64  `json:"wall_ns"`
	// Patterns is the test-set size after the stage.
	Patterns int `json:"patterns,omitempty"`
	// Backtracks is the PODEM search effort (ATPG stage only).
	Backtracks int `json:"backtracks,omitempty"`
	// CacheHit marks an ATPG stage served from the Engine's pattern cache.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// NewManifest returns a manifest stamped with the current environment.
func NewManifest(label string) *Manifest {
	return &Manifest{
		Schema:     ManifestSchema,
		Label:      label,
		CreatedAt:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// Write emits the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	if m.Schema == "" {
		m.Schema = ManifestSchema
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: marshal manifest: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile writes the manifest to path, creating or truncating it.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest parses a manifest written by Write and checks its schema.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("telemetry: parse manifest: %w", err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("telemetry: unknown manifest schema %q", m.Schema)
	}
	return &m, nil
}
