package telemetry

import (
	"strings"
	"testing"
)

func TestHistogramSnapshotExact(t *testing.T) {
	reg := NewRegistry()
	bounds := []float64{1, 2, 4}
	h := reg.Histogram("lat", bounds)
	for _, v := range []float64{0.5, 1.5, 3, 8, 8} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if len(s.Bounds) != 3 || len(s.Counts) != 4 {
		t.Fatalf("snapshot shape: bounds %d counts %d", len(s.Bounds), len(s.Counts))
	}
	wantCounts := []int64{1, 1, 1, 2}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], want)
		}
	}
	if s.Count != 5 || s.Sum != 21 {
		t.Errorf("count=%d sum=%v, want 5 and 21", s.Count, s.Sum)
	}
	// The snapshot owns its slices — mutating it must not touch the live
	// histogram.
	s.Counts[0] = 99
	if h.Snapshot().Counts[0] != 1 {
		t.Error("snapshot aliases the live histogram")
	}

	var nilH *Histogram
	ns := nilH.Snapshot()
	if ns.Count != 0 || len(ns.Bounds) != 0 {
		t.Errorf("nil histogram snapshot = %+v", ns)
	}
}

func TestHistogramSnapshotMergeIdenticalBounds(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	bounds := []float64{1, 2, 4}
	ha := regA.Histogram("lat", bounds)
	hb := regB.Histogram("lat", bounds)
	for _, v := range []float64{0.5, 3} {
		ha.Observe(v)
	}
	for _, v := range []float64{1.5, 8} {
		hb.Observe(v)
	}
	sa, sb := ha.Snapshot(), hb.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 1, 1, 1}
	for i, w := range want {
		if sa.Counts[i] != w {
			t.Errorf("merged bucket %d = %d, want %d", i, sa.Counts[i], w)
		}
	}
	if sa.Count != 4 || sa.Sum != 13 {
		t.Errorf("merged count=%d sum=%v, want 4 and 13", sa.Count, sa.Sum)
	}

	// Merging into an empty snapshot adopts the operand wholesale, and an
	// empty operand is a no-op.
	var empty HistogramSnapshot
	if err := empty.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if empty.Count != sb.Count || empty.Counts[1] != sb.Counts[1] {
		t.Errorf("empty.Merge = %+v, want copy of %+v", empty, sb)
	}
	before := sa.Count
	if err := sa.Merge(HistogramSnapshot{}); err != nil {
		t.Fatal(err)
	}
	if sa.Count != before {
		t.Error("empty operand changed the snapshot")
	}
}

func TestHistogramSnapshotMergeRejectsMismatchedBounds(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	ha := regA.Histogram("lat", []float64{1, 2, 4})
	hb := regB.Histogram("lat", []float64{1, 2, 8})
	ha.Observe(1)
	hb.Observe(1)
	sa, sb := ha.Snapshot(), hb.Snapshot()
	if err := sa.Merge(sb); err == nil {
		t.Fatal("mismatched bounds merged without error")
	} else if !strings.Contains(err.Error(), "bounds mismatch") {
		t.Errorf("error = %v", err)
	}
}

func TestHistogramSnapshotQuantileMatchesLive(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{0.01, 0.1, 1, 10})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 20) // 0 .. 4.95
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got, want := s.Quantile(q), h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, live = %v", q, got, want)
		}
	}
}

func TestRegistryExportAndMerge(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	regA.Counter("jobs_total").Add(3)
	regB.Counter("jobs_total").Add(4)
	regB.Counter("only_b_total").Inc()
	regA.Gauge("depth").Set(2)
	regB.Gauge("depth").Set(5)
	bounds := []float64{1, 2}
	regA.Histogram("lat", bounds).Observe(0.5)
	regB.Histogram("lat", bounds).Observe(1.5)

	sa, sb := regA.Export(), regB.Export()
	fused := sa.Clone()
	if err := fused.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if fused.Counters["jobs_total"] != 7 || fused.Counters["only_b_total"] != 1 {
		t.Errorf("fused counters = %v", fused.Counters)
	}
	if fused.Gauges["depth"] != 7 {
		t.Errorf("fused depth = %v, want 7", fused.Gauges["depth"])
	}
	hs := fused.Histograms["lat"]
	if hs.Count != 2 || hs.Counts[0] != 1 || hs.Counts[1] != 1 {
		t.Errorf("fused histogram = %+v", hs)
	}
	// Fused buckets are the bit-exact per-bucket sums.
	for i := range hs.Counts {
		if hs.Counts[i] != sa.Histograms["lat"].Counts[i]+sb.Histograms["lat"].Counts[i] {
			t.Errorf("bucket %d not the exact sum", i)
		}
	}
	// Clone isolated the fusion from A's export.
	if sa.Counters["jobs_total"] != 3 {
		t.Error("merge mutated the cloned-from snapshot")
	}

	// A mismatched series aborts with the series name in the error.
	regC := NewRegistry()
	regC.Histogram("lat", []float64{1, 2, 3}).Observe(1)
	if err := fused.Merge(regC.Export()); err == nil {
		t.Fatal("mismatched series merged")
	} else if !strings.Contains(err.Error(), "lat") {
		t.Errorf("error does not name the series: %v", err)
	}

	// Nil registry exports empty; nil operand merges as a no-op.
	var nilReg *Registry
	empty := nilReg.Export()
	if len(empty.Counters)+len(empty.Gauges)+len(empty.Histograms) != 0 {
		t.Errorf("nil registry export = %+v", empty)
	}
	if err := fused.Merge(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	info := RegisterBuildInfo(reg)
	if info.GoVersion == "" || info.Version == "" || info.Revision == "" {
		t.Fatalf("build info has empty fields: %+v", info)
	}
	snap := reg.Export()
	found := false
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, MetricBuildInfo+"{") {
			found = true
			if v != 1 {
				t.Errorf("build info gauge = %v, want 1", v)
			}
			if !strings.Contains(name, info.GoVersion) {
				t.Errorf("gauge labels %q missing go version %q", name, info.GoVersion)
			}
		}
	}
	if !found {
		t.Fatalf("no %s series in %v", MetricBuildInfo, snap.Gauges)
	}
	// Nil registry is a no-op but still reports the identity.
	if got := RegisterBuildInfo(nil); got.GoVersion == "" {
		t.Errorf("nil registry build info = %+v", got)
	}
}
