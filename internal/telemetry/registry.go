// Package telemetry is the measurement layer of the repository: a
// lock-cheap metrics registry with Prometheus-style text exposition and an
// expvar bridge, hierarchical trace spans emitted as JSONL, an optional
// debug HTTP server (metrics + expvar + pprof), and machine-readable run
// manifests that record what an experiment run did and how long each piece
// took.
//
// The registry is designed for hot paths: metric handles are looked up (or
// created) once, then updated with a single atomic operation. A nil
// *Counter, *Gauge or *Histogram is a valid no-op sink, so callers may
// keep optional handles without nil checks at every update site.
//
// Series names follow the Prometheus data model. A name is either a bare
// family ("scanpower_cache_hits_total") or a family with an inline label
// set ("scanpower_stage_seconds{stage=\"atpg\"}"); each distinct full name
// is one independent series.
package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 gauge.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d to the gauge with a CAS loop. Safe on a nil receiver.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: counts per upper bound plus a
// +Inf overflow bucket, with a running sum and total count. Buckets are
// fixed at creation; Observe is wait-free except for the sum's CAS.
type Histogram struct {
	bounds []float64      // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// DefLatencyBuckets are the default latency buckets in seconds, spanning
// sub-millisecond PODEM runs to multi-minute circuit stages.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// DefCountBuckets are default buckets for small work counts (backtracks,
// decisions per fault).
var DefCountBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Observe records v. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket slices are short (≤ ~20) and the scan is
	// branch-predictable; a binary search buys nothing here.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the observed
// values from the bucket counts, interpolating linearly inside the
// winning bucket. Observations above the largest finite bound clamp to
// that bound — the +Inf bucket has no width to interpolate over. Returns
// 0 with no observations or on a nil receiver. The estimate reads the
// counters without a snapshot, so concurrent Observes may skew it by a
// few observations; that is fine for the latency-percentile reporting it
// exists for.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: clamp to the largest finite bound.
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry holds named metric series. The zero value is ready to use; a
// nil *Registry is a valid no-op registry (every lookup returns a nil
// handle, and nil handles discard updates).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// splitName separates "family{labels}" into its parts; labels is "" for a
// bare family name.
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

func validName(name string) error {
	family, _ := splitName(name)
	if family == "" {
		return fmt.Errorf("telemetry: empty metric name %q", name)
	}
	for i, r := range family {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("telemetry: invalid metric name %q", name)
		}
	}
	return nil
}

// Counter returns the named counter series, creating it on first use.
// Returns nil (a no-op counter) on a nil registry. Panics on a malformed
// name — metric names are compile-time constants, not data.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if err := validName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge series, creating it on first use. Returns
// nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if err := validName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram series with the given bucket upper
// bounds (nil = DefLatencyBuckets), creating it on first use. The bounds
// of an existing series are kept; they must match across call sites.
// Returns nil (a no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if err := validName(name); err != nil {
		panic(err)
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// seriesWithLabel splices an extra label (e.g. le="0.1") into a series
// name that may already carry a label set.
func seriesWithLabel(family, labels, extra string) string {
	if labels == "" {
		return family + "{" + extra + "}"
	}
	return family + "{" + labels + "," + extra + "}"
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes every series in the Prometheus text exposition
// format (version 0.0.4), sorted by series name so output is diffable.
// Histograms expand to cumulative _bucket series plus _sum and _count. A
// nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type hsnap struct {
		bounds []float64
		counts []int64
		sum    float64
		count  int64
	}
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]hsnap, len(r.hists))
	for name, h := range r.hists {
		s := hsnap{bounds: h.bounds, sum: h.Sum(), count: h.Count()}
		s.counts = make([]int64, len(h.counts))
		for i := range h.counts {
			s.counts[i] = h.counts[i].Load()
		}
		hists[name] = s
	}
	r.mu.Unlock()

	var b strings.Builder
	typedFamilies := make(map[string]bool)
	writeType := func(family, kind string) {
		if !typedFamilies[family] {
			typedFamilies[family] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", family, kind)
		}
	}
	for _, name := range sortedKeys(counters) {
		family, _ := splitName(name)
		writeType(family, "counter")
		fmt.Fprintf(&b, "%s %d\n", name, counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		family, _ := splitName(name)
		writeType(family, "gauge")
		fmt.Fprintf(&b, "%s %s\n", name, formatValue(gauges[name]))
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		family, labels := splitName(name)
		writeType(family, "histogram")
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			le := seriesWithLabel(family+"_bucket", labels, fmt.Sprintf("le=%q", formatValue(bound)))
			fmt.Fprintf(&b, "%s %d\n", le, cum)
		}
		inf := seriesWithLabel(family+"_bucket", labels, `le="+Inf"`)
		fmt.Fprintf(&b, "%s %d\n", inf, h.count)
		if labels != "" {
			fmt.Fprintf(&b, "%s{%s} %s\n", family+"_sum", labels, formatValue(h.sum))
			fmt.Fprintf(&b, "%s{%s} %d\n", family+"_count", labels, h.count)
		} else {
			fmt.Fprintf(&b, "%s %s\n", family+"_sum", formatValue(h.sum))
			fmt.Fprintf(&b, "%s %d\n", family+"_count", h.count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot returns every series as a flat name → value map: counters and
// gauges directly, histograms as _sum and _count entries. The snapshot is
// what run manifests embed. A nil registry returns nil.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+2*len(r.hists))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		family, labels := splitName(name)
		sum, count := family+"_sum", family+"_count"
		if labels != "" {
			sum += "{" + labels + "}"
			count += "{" + labels + "}"
		}
		out[sum] = h.Sum()
		out[count] = float64(h.Count())
	}
	return out
}

// ExpvarFunc returns an expvar.Func exposing the registry snapshot, for
// mounting under /debug/vars.
func (r *Registry) ExpvarFunc() expvar.Func {
	return expvar.Func(func() any { return r.Snapshot() })
}

// Publish publishes the registry under the given expvar name. The expvar
// namespace is global and write-once; repeated Publish calls (including
// from tests constructing several registries) rebind the name to this
// registry instead of panicking.
func (r *Registry) Publish(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if v, ok := published[name]; ok {
		v.mu.Lock()
		v.r = r
		v.mu.Unlock()
		return
	}
	v := &publishedVar{r: r}
	published[name] = v
	expvar.Publish(name, v)
}

var (
	publishMu sync.Mutex
	published = map[string]*publishedVar{}
)

// publishedVar is the rebindable expvar slot Publish installs.
type publishedVar struct {
	mu sync.Mutex
	r  *Registry
}

func (p *publishedVar) String() string {
	p.mu.Lock()
	r := p.r
	p.mu.Unlock()
	return r.ExpvarFunc().String()
}
