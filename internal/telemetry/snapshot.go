package telemetry

import "fmt"

// Typed registry snapshots and cluster metrics fusion. Export copies a
// registry into plain values that marshal to JSON and merge additively,
// so one node can fetch its peers' snapshots and serve a fused view of
// the whole cluster. Histogram merges are bucket-exact: identical bounds
// sum count-for-count, mismatched bounds are an error rather than a
// silently wrong percentile.

// HistogramSnapshot is a point-in-time copy of one histogram series.
type HistogramSnapshot struct {
	// Bounds are the sorted finite upper bounds.
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the +Inf bucket.
	Counts []int64 `json:"counts"`
	Sum    float64 `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot copies the histogram's bounds, per-bucket counts, sum and
// count. Concurrent Observes may be torn across buckets by at most the
// observations in flight. A nil histogram returns a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
		Count:  h.Count(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// boundsEqual reports whether two bucket layouts are identical.
func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge adds o's buckets into h. The bucket bounds must be identical —
// merging histograms with different layouts cannot be bucket-exact, so
// it is rejected. An empty (zero-count, boundless) operand merges as a
// no-op on either side.
func (h *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if o.Count == 0 && len(o.Bounds) == 0 {
		return nil
	}
	if h.Count == 0 && len(h.Bounds) == 0 {
		h.Bounds = append([]float64(nil), o.Bounds...)
		h.Counts = append([]int64(nil), o.Counts...)
		h.Sum, h.Count = o.Sum, o.Count
		return nil
	}
	if !boundsEqual(h.Bounds, o.Bounds) {
		return fmt.Errorf("telemetry: histogram bounds mismatch: %v vs %v", h.Bounds, o.Bounds)
	}
	if len(h.Counts) != len(o.Counts) {
		return fmt.Errorf("telemetry: histogram bucket count mismatch: %d vs %d", len(h.Counts), len(o.Counts))
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Sum += o.Sum
	h.Count += o.Count
	return nil
}

// Quantile estimates the q-th quantile from the snapshot's buckets with
// the same interpolation rules as Histogram.Quantile.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var total int64
	for _, n := range s.Counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(s.Bounds) {
				if len(s.Bounds) == 0 {
					return 0
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// RegistrySnapshot is a typed point-in-time copy of every series in a
// registry: counters and gauges by full series name, histograms with
// their exact buckets. It is the wire document of per-node metrics
// pulls and the unit of cluster fusion.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Export copies every series. A nil registry exports an empty snapshot.
func (r *Registry) Export() *RegistrySnapshot {
	out := &RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return out
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	for name, c := range counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		out.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		out.Histograms[name] = h.Snapshot()
	}
	return out
}

// Merge fuses o into s: counters and gauges sum per series (gauges in
// this system are additive occupancy values — queue depth, inflight — so
// a cluster-wide sum is the meaningful fusion), histograms merge
// bucket-exactly. A histogram series whose bounds disagree across nodes
// aborts the merge with an error.
func (s *RegistrySnapshot) Merge(o *RegistrySnapshot) error {
	if o == nil {
		return nil
	}
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		s.Gauges[name] += v
	}
	for name, hs := range o.Histograms {
		cur := s.Histograms[name]
		if err := cur.Merge(hs); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		s.Histograms[name] = cur
	}
	return nil
}

// Clone deep-copies the snapshot, so fusion can start from one node's
// export without mutating it.
func (s *RegistrySnapshot) Clone() *RegistrySnapshot {
	out := &RegistrySnapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = HistogramSnapshot{
			Bounds: append([]float64(nil), v.Bounds...),
			Counts: append([]int64(nil), v.Counts...),
			Sum:    v.Sum,
			Count:  v.Count,
		}
	}
	return out
}
