package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("srv_hits_total").Add(3)
	reg.Histogram(`srv_stage_seconds{stage="atpg"}`, nil).Observe(0.02)

	srv, err := ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"srv_hits_total 3",
		`srv_stage_seconds_count{stage="atpg"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	var snap map[string]float64
	if err := json.Unmarshal(vars["scanpower"], &snap); err != nil {
		t.Fatalf("scanpower expvar not published: %v (body %s)", err, body)
	}
	if snap["srv_hits_total"] != 3 {
		t.Fatalf("expvar snapshot = %v", snap)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status=%d body=%q", code, body[:min(len(body), 120)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
