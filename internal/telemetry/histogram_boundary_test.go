package telemetry

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// TestHistogramBoundaryInclusive pins the Prometheus `le` semantics: a
// value exactly equal to a bucket's upper bound belongs in that bucket
// (the bound is inclusive), never in the next one. Each DefLatencyBuckets
// boundary is observed exactly once, so in the rendered exposition the
// cumulative count of bucket i must be i+1.
func TestHistogramBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bound_seconds", DefLatencyBuckets)
	for _, b := range DefLatencyBuckets {
		h.Observe(b)
	}
	h.Observe(DefLatencyBuckets[len(DefLatencyBuckets)-1] * 10) // +Inf only

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	var cums []int64
	var infCum int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "bound_seconds_bucket{le=") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("bucket count in %q: %v", line, err)
		}
		if strings.Contains(fields[0], `le="+Inf"`) {
			infCum = n
		} else {
			cums = append(cums, n)
		}
	}
	if len(cums) != len(DefLatencyBuckets) {
		t.Fatalf("rendered %d finite buckets, want %d:\n%s", len(cums), len(DefLatencyBuckets), out)
	}
	for i, cum := range cums {
		if cum != int64(i)+1 {
			t.Errorf("bucket %d (le=%v): cumulative count %d, want %d — the bound must be inclusive",
				i, DefLatencyBuckets[i], cum, i+1)
		}
	}
	if want := int64(len(DefLatencyBuckets)) + 1; infCum != want {
		t.Errorf(`le="+Inf" count = %d, want %d`, infCum, want)
	}
	if want := fmt.Sprintf("bound_seconds_count %d", len(DefLatencyBuckets)+1); !strings.Contains(out, want) {
		t.Errorf("exposition missing %q:\n%s", want, out)
	}
}
