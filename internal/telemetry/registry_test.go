package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("runs_total") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("workers")
	g.Set(8)
	g.Add(-2)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %g, want 6", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x_total").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x_seconds", nil).Observe(1)
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var h *Histogram
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should stay empty")
	}
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid metric name")
		}
	}()
	NewRegistry().Counter("bad name!")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %g, want 106", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="2"} 3`,
		`lat_seconds_bucket{le="4"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 106",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter(`stage_total{stage="atpg"}`).Add(3)
	r.Counter(`stage_total{stage="proposed"}`).Add(1)
	r.Histogram(`stage_seconds{stage="atpg"}`, []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`stage_total{stage="atpg"} 3`,
		`stage_total{stage="proposed"} 1`,
		`stage_seconds_bucket{stage="atpg",le="1"} 1`,
		`stage_seconds_bucket{stage="atpg",le="+Inf"} 1`,
		`stage_seconds_sum{stage="atpg"} 0.5`,
		`stage_seconds_count{stage="atpg"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE stage_total counter"); n != 1 {
		t.Errorf("TYPE line for stage_total emitted %d times, want 1", n)
	}
}

func TestSnapshotAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(7)
	r.Gauge("ratio").Set(0.5)
	r.Histogram("lat_seconds", []float64{1}).Observe(2)
	snap := r.Snapshot()
	if snap["hits_total"] != 7 || snap["ratio"] != 0.5 ||
		snap["lat_seconds_sum"] != 2 || snap["lat_seconds_count"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	var decoded map[string]float64
	if err := json.Unmarshal([]byte(r.ExpvarFunc().String()), &decoded); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	if decoded["hits_total"] != 7 {
		t.Fatalf("expvar snapshot = %v", decoded)
	}
}

func TestPublishRebinds(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("v_total").Add(1)
	b.Counter("v_total").Add(2)
	a.Publish("telemetry_test_rebind")
	b.Publish("telemetry_test_rebind") // must not panic, must rebind
	v := published["telemetry_test_rebind"]
	var decoded map[string]float64
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["v_total"] != 2 {
		t.Fatalf("published var shows %v, want rebound registry (v_total=2)", decoded)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c_total")
			h := r.Histogram("h_seconds", []float64{1, 2})
			g := r.Gauge("g")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(1.5)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if r.Counter("c_total").Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", r.Counter("c_total").Value())
	}
	if r.Histogram("h_seconds", nil).Count() != 8000 {
		t.Fatalf("hist count = %d, want 8000", r.Histogram("h_seconds", nil).Count())
	}
	if r.Gauge("g").Value() != 8000 {
		t.Fatalf("gauge = %g, want 8000", r.Gauge("g").Value())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %g, want 0", got)
	}

	r := NewRegistry()
	h := r.Histogram("q_seconds", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}

	// 100 observations uniformly placed in the (1,2] bucket: the median
	// interpolates to the middle of that bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got < 1 || got > 2 {
		t.Errorf("median = %g, want within (1,2]", got)
	}

	// Spread across buckets: 50 in (0,1], 30 in (1,2], 20 in (2,4].
	h2 := r.Histogram("q2_seconds", []float64{1, 2, 4})
	for i := 0; i < 50; i++ {
		h2.Observe(0.5)
	}
	for i := 0; i < 30; i++ {
		h2.Observe(1.5)
	}
	for i := 0; i < 20; i++ {
		h2.Observe(3)
	}
	if p50 := h2.Quantile(0.5); p50 > 1 {
		t.Errorf("p50 = %g, want <= 1 (50%% of mass in first bucket)", p50)
	}
	p90 := h2.Quantile(0.9)
	if p90 <= 2 || p90 > 4 {
		t.Errorf("p90 = %g, want within (2,4]", p90)
	}
	if p99, p90 := h2.Quantile(0.99), h2.Quantile(0.90); p99 < p90 {
		t.Errorf("quantiles not monotone: p99 %g < p90 %g", p99, p90)
	}

	// Values past the last finite bound clamp to it.
	h3 := r.Histogram("q3_seconds", []float64{1, 2})
	for i := 0; i < 10; i++ {
		h3.Observe(100)
	}
	if got := h3.Quantile(0.5); got != 2 {
		t.Errorf("overflow-bucket quantile = %g, want clamp to 2", got)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.01)
	}
}

func BenchmarkNilHandles(b *testing.B) {
	var c *Counter
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(1)
	}
}
