package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync"
	"time"
)

// Distributed trace context. A trace is identified by a cluster-unique
// 128-bit ID minted at first ingress; it crosses process boundaries as a
// W3C-traceparent-style header value
//
//	00-<32 hex trace-id>-<16 hex parent-span-id>-01
//
// so a job forwarded across the consistent-hash ring carries one identity
// through every hop. Each node accumulates its own segment of the span
// tree in a SpanBuilder and retains finished segments in a bounded
// TraceStore; the node serving a trace query merges its segment with the
// segments pulled from its peers.

// TraceContext is one position inside a distributed trace: the trace's
// identity plus the span on the sending side that new spans should parent
// to. A zero TraceContext means "no incoming context".
type TraceContext struct {
	// TraceID is 32 lowercase hex characters (128 bits).
	TraceID string
	// SpanID is the remote parent span, 16 lowercase hex characters.
	// Empty at first ingress.
	SpanID string
}

// NewTraceID mints a cluster-unique 128-bit trace ID.
func NewTraceID() string { return randHex(16) }

// NewSpanID mints a 64-bit span ID.
func NewSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is
		// still a valid (if unlucky) identifier.
		for i := range b {
			b[i] = byte(time.Now().UnixNano() >> (8 * (i % 8)))
		}
	}
	return hex.EncodeToString(b)
}

// Traceparent renders the context as the wire header value. An empty
// SpanID is rendered as all zeroes (a root context).
func (tc TraceContext) Traceparent() string {
	span := tc.SpanID
	if span == "" {
		span = "0000000000000000"
	}
	return "00-" + tc.TraceID + "-" + span + "-01"
}

// ParseTraceparent parses a traceparent-style header value. It accepts
// only version 00 with well-formed hex IDs; anything else reports ok
// false so the receiver mints a fresh trace instead of propagating
// garbage.
func ParseTraceparent(s string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 4 || parts[0] != "00" {
		return TraceContext{}, false
	}
	trace, span := strings.ToLower(parts[1]), strings.ToLower(parts[2])
	if len(trace) != 32 || !isHex(trace) || len(span) != 16 || !isHex(span) {
		return TraceContext{}, false
	}
	if trace == strings.Repeat("0", 32) {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: trace}
	if span != "0000000000000000" {
		tc.SpanID = span
	}
	return tc, true
}

func isHex(s string) bool {
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// SpanRecord is one finished span of a distributed trace segment.
type SpanRecord struct {
	SpanID string         `json:"span_id"`
	Parent string         `json:"parent_id,omitempty"`
	Name   string         `json:"name"`
	Node   string         `json:"node,omitempty"`
	Start  time.Time      `json:"start"`
	DurNS  int64          `json:"dur_ns"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// JobTrace is one node's retained segment of a distributed trace: the
// finished spans this node contributed, tagged with the node's name.
type JobTrace struct {
	TraceID string       `json:"trace_id"`
	JobID   string       `json:"job_id,omitempty"`
	Node    string       `json:"node,omitempty"`
	Spans   []SpanRecord `json:"spans"`
}

// SpanBuilder accumulates one node's segment of one distributed trace.
// Spans are recorded when they End; a snapshot of the finished spans is
// available at any time via Segment, so a trace query racing a live job
// sees the spans completed so far. A nil *SpanBuilder is a valid no-op
// sink, and all methods are safe for concurrent use.
type SpanBuilder struct {
	mu      sync.Mutex
	traceID string
	node    string
	jobID   string
	spans   []SpanRecord
	open    int
}

// NewSpanBuilder starts an empty segment of the given trace, tagging
// every span with node.
func NewSpanBuilder(traceID, node string) *SpanBuilder {
	return &SpanBuilder{traceID: traceID, node: node}
}

// TraceID returns the trace this builder contributes to ("" on nil).
func (b *SpanBuilder) TraceID() string {
	if b == nil {
		return ""
	}
	return b.traceID
}

// SetJobID tags the segment with the job it belongs to. Safe on nil.
func (b *SpanBuilder) SetJobID(id string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.jobID = id
	b.mu.Unlock()
}

// JobID returns the segment's job tag ("" on nil or before SetJobID).
func (b *SpanBuilder) JobID() string {
	if b == nil {
		return ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.jobID
}

// OpenSpans reports spans started but not yet ended — zero once the
// segment is balanced. Safe on nil (returns 0).
func (b *SpanBuilder) OpenSpans() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// BuildSpan is one open span under a SpanBuilder. End it exactly once;
// extra Ends are ignored. A nil *BuildSpan is a valid no-op.
type BuildSpan struct {
	b      *SpanBuilder
	id     string
	parent string
	name   string
	start  time.Time
	attrs  map[string]any

	mu    sync.Mutex
	ended bool
}

// StartSpan opens a span parented to the given remote or local span ID
// ("" for a root span). Safe on nil (returns nil).
func (b *SpanBuilder) StartSpan(parent, name string, attrs map[string]any) *BuildSpan {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	b.open++
	b.mu.Unlock()
	return &BuildSpan{
		b: b, id: NewSpanID(), parent: parent, name: name,
		start: time.Now(), attrs: attrs,
	}
}

// Start opens a child of s. Safe on nil (returns nil).
func (s *BuildSpan) Start(name string, attrs map[string]any) *BuildSpan {
	if s == nil {
		return nil
	}
	return s.b.StartSpan(s.id, name, attrs)
}

// ID returns the span's ID ("" on nil), for parenting remote spans.
func (s *BuildSpan) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// End finishes the span, merging attrs over the start attributes, and
// records it in the builder. Idempotent and safe on nil.
func (s *BuildSpan) End(attrs map[string]any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.mu.Unlock()

	merged := s.attrs
	if len(attrs) > 0 {
		merged = make(map[string]any, len(s.attrs)+len(attrs))
		for k, v := range s.attrs {
			merged[k] = v
		}
		for k, v := range attrs {
			merged[k] = v
		}
	}
	rec := SpanRecord{
		SpanID: s.id, Parent: s.parent, Name: s.name, Node: s.b.node,
		Start: s.start, DurNS: time.Since(s.start).Nanoseconds(), Attrs: merged,
	}
	s.b.mu.Lock()
	s.b.open--
	s.b.spans = append(s.b.spans, rec)
	s.b.mu.Unlock()
}

// Segment snapshots the finished spans as a JobTrace.
func (b *SpanBuilder) Segment() JobTrace {
	if b == nil {
		return JobTrace{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return JobTrace{
		TraceID: b.traceID,
		JobID:   b.jobID,
		Node:    b.node,
		Spans:   append([]SpanRecord(nil), b.spans...),
	}
}

// DefTraceCapacity is the default TraceStore ring size.
const DefTraceCapacity = 512

// TraceStore retains the most recent trace segments in a bounded
// in-memory ring: adding beyond capacity evicts the oldest segment.
// Lookups scan the ring (it is small by construction), newest first for
// job lookups so a re-submitted job ID resolves to its latest trace. A
// nil *TraceStore is a valid no-op store.
type TraceStore struct {
	mu       sync.Mutex
	capacity int
	entries  []*SpanBuilder // ring; next is the slot Add writes
	next     int
	count    int
}

// NewTraceStore returns a store retaining up to capacity segments
// (DefTraceCapacity if capacity <= 0).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefTraceCapacity
	}
	return &TraceStore{capacity: capacity, entries: make([]*SpanBuilder, capacity)}
}

// Add retains a segment builder. The builder stays live — spans ended
// after Add appear in later lookups, which is what lets a trace query
// observe a job mid-flight. Safe on nil.
func (ts *TraceStore) Add(b *SpanBuilder) {
	if ts == nil || b == nil {
		return
	}
	ts.mu.Lock()
	ts.entries[ts.next] = b
	ts.next = (ts.next + 1) % ts.capacity
	if ts.count < ts.capacity {
		ts.count++
	}
	ts.mu.Unlock()
}

// Len reports the number of retained segments.
func (ts *TraceStore) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.count
}

// snapshot returns the retained builders oldest-first.
func (ts *TraceStore) snapshot() []*SpanBuilder {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]*SpanBuilder, 0, ts.count)
	start := ts.next - ts.count
	for i := 0; i < ts.count; i++ {
		out = append(out, ts.entries[((start+i)%ts.capacity+ts.capacity)%ts.capacity])
	}
	return out
}

// All snapshots every retained segment, oldest first.
func (ts *TraceStore) All() []JobTrace {
	if ts == nil {
		return nil
	}
	bs := ts.snapshot()
	out := make([]JobTrace, 0, len(bs))
	for _, b := range bs {
		out = append(out, b.Segment())
	}
	return out
}

// OpenSpans sums the started-but-unended spans across every retained
// segment — zero when all retained segments are balanced.
func (ts *TraceStore) OpenSpans() int {
	if ts == nil {
		return 0
	}
	total := 0
	for _, b := range ts.snapshot() {
		total += b.OpenSpans()
	}
	return total
}

// ByJob returns the newest segment tagged with the given job ID.
func (ts *TraceStore) ByJob(jobID string) (JobTrace, bool) {
	if ts == nil || jobID == "" {
		return JobTrace{}, false
	}
	bs := ts.snapshot()
	for i := len(bs) - 1; i >= 0; i-- {
		if bs[i].JobID() == jobID {
			return bs[i].Segment(), true
		}
	}
	return JobTrace{}, false
}

// ByTrace returns every retained segment of the given trace, oldest
// first. One node can hold several segments of one trace (an ingress
// segment that forwarded plus a local run after failover).
func (ts *TraceStore) ByTrace(traceID string) []JobTrace {
	if ts == nil || traceID == "" {
		return nil
	}
	var out []JobTrace
	for _, b := range ts.snapshot() {
		if b.TraceID() == traceID {
			out = append(out, b.Segment())
		}
	}
	return out
}
