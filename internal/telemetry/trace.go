package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// TraceWriter emits hierarchical spans as JSON Lines. Every span start and
// end is one self-contained JSON object, so a trace of a crashed or
// cancelled run is still parseable up to the last flushed line.
//
// Event schema (one object per line):
//
//	{"ev":"start","id":3,"parent":1,"name":"atpg","t":"2006-01-02T15:04:05.000Z","attrs":{...}}
//	{"ev":"end","id":3,"name":"atpg","dur_ns":12345,"attrs":{...}}
//	{"ev":"span","id":7,"parent":3,"name":"podem","dur_ns":99,"attrs":{...}}
//
// "span" is a completed span reported after the fact (sub-stages whose
// timing is only known at the end); it counts as its own start+end pair.
//
// A nil *TraceWriter is a valid no-op sink: Start returns a nil *Span, and
// all *Span methods are safe on nil receivers, so instrumentation sites
// need no conditionals.
type TraceWriter struct {
	mu   sync.Mutex
	w    io.Writer
	seq  atomic.Int64
	open atomic.Int64
}

// TraceEvent is the parsed form of one trace line (exported for consumers
// reading traces back, e.g. tests and analysis tools).
type TraceEvent struct {
	Ev     string         `json:"ev"`
	ID     int64          `json:"id"`
	Parent int64          `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Time   string         `json:"t,omitempty"`
	DurNS  int64          `json:"dur_ns,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// NewTraceWriter returns a TraceWriter emitting to w. Writes are
// serialized internally; w itself need not be safe for concurrent use.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: w}
}

// Span is one open interval of a trace. Obtain spans from
// TraceWriter.Start or Span.Start; close them with End.
type Span struct {
	tw    *TraceWriter
	id    int64
	start time.Time
	name  string
}

func (tw *TraceWriter) emit(ev TraceEvent) {
	if tw == nil {
		return
	}
	tw.mu.Lock()
	defer tw.mu.Unlock()
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	b = append(b, '\n')
	tw.w.Write(b)
}

func (tw *TraceWriter) start(parent int64, name string, attrs map[string]any) *Span {
	if tw == nil {
		return nil
	}
	s := &Span{tw: tw, id: tw.seq.Add(1), start: time.Now(), name: name}
	tw.open.Add(1)
	tw.emit(TraceEvent{
		Ev: "start", ID: s.id, Parent: parent, Name: name,
		Time:  s.start.UTC().Format(time.RFC3339Nano),
		Attrs: attrs,
	})
	return s
}

// Start opens a root span. attrs may be nil.
func (tw *TraceWriter) Start(name string, attrs map[string]any) *Span {
	return tw.start(0, name, attrs)
}

// OpenSpans reports the number of started spans not yet ended — zero after
// a balanced run. Completed "span" events never contribute.
func (tw *TraceWriter) OpenSpans() int64 {
	if tw == nil {
		return 0
	}
	return tw.open.Load()
}

// Start opens a child span of s. Safe on a nil receiver (returns nil).
func (s *Span) Start(name string, attrs map[string]any) *Span {
	if s == nil {
		return nil
	}
	return s.tw.start(s.id, name, attrs)
}

// End closes the span, emitting its duration. attrs may carry counters
// known only at completion. Safe on a nil receiver.
func (s *Span) End(attrs map[string]any) {
	if s == nil {
		return
	}
	s.tw.open.Add(-1)
	s.tw.emit(TraceEvent{
		Ev: "end", ID: s.id, Name: s.name,
		DurNS: time.Since(s.start).Nanoseconds(),
		Attrs: attrs,
	})
}

// Completed reports a sub-span after the fact: a child of s that ran for
// dur and is already finished. Safe on a nil receiver.
func (s *Span) Completed(name string, dur time.Duration, attrs map[string]any) {
	if s == nil {
		return
	}
	s.tw.emit(TraceEvent{
		Ev: "span", ID: s.tw.seq.Add(1), Parent: s.id, Name: name,
		DurNS: dur.Nanoseconds(),
		Attrs: attrs,
	})
}
