package telemetry

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// MetricBuildInfo is the build-metadata gauge family. Following the
// Prometheus convention, the gauge's value is always 1 and the build's
// identity lives in the labels.
const MetricBuildInfo = "scanpower_build_info"

// BuildInfo is the identity RegisterBuildInfo publishes.
type BuildInfo struct {
	// Version is the main module's version ("(devel)" for local builds).
	Version string
	// GoVersion built the binary.
	GoVersion string
	// Revision is the VCS revision, suffixed "+dirty" for modified trees;
	// "unknown" when the binary carries no VCS stamp.
	Revision string
}

// ReadBuildInfo extracts the build identity from the running binary.
func ReadBuildInfo() BuildInfo {
	out := BuildInfo{Version: "unknown", GoVersion: runtime.Version(), Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Version != "" {
		out.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		out.GoVersion = bi.GoVersion
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		out.Revision = rev
	}
	return out
}

// RegisterBuildInfo publishes the scanpower_build_info gauge on reg and
// returns the identity it stamped. Safe on a nil registry.
func RegisterBuildInfo(reg *Registry) BuildInfo {
	info := ReadBuildInfo()
	reg.Gauge(fmt.Sprintf(MetricBuildInfo+`{version=%q,goversion=%q,revision=%q}`,
		info.Version, info.GoVersion, info.Revision)).Set(1)
	return info
}
