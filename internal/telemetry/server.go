package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux returns an http.ServeMux exposing the debug surface:
//
//	/metrics      — Prometheus text exposition of reg
//	/debug/vars   — expvar JSON (reg is published as "scanpower")
//	/debug/pprof/ — the standard runtime profiles
//
// The mux is self-contained; nothing is registered on
// http.DefaultServeMux.
func NewMux(reg *Registry) *http.ServeMux {
	reg.Publish("scanpower")
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug HTTP server.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// ListenAndServe starts the debug server on addr (e.g. "localhost:6060"
// or ":0" for an ephemeral port) and serves in a background goroutine.
// Close shuts it down.
func ListenAndServe(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           NewMux(reg),
		ReadHeaderTimeout: 10 * time.Second,
	}
	s := &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go srv.Serve(ln)
	return s, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
