package telemetry

import (
	"fmt"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	if len(tc.TraceID) != 32 || len(tc.SpanID) != 16 {
		t.Fatalf("ID lengths: trace %d span %d", len(tc.TraceID), len(tc.SpanID))
	}
	got, ok := ParseTraceparent(tc.Traceparent())
	if !ok || got != tc {
		t.Fatalf("round trip: %v -> %q -> %v (ok=%v)", tc, tc.Traceparent(), got, ok)
	}

	// A root context (no parent span) renders a zero span ID and parses
	// back to an empty SpanID.
	root := TraceContext{TraceID: tc.TraceID}
	if !strings.Contains(root.Traceparent(), "-0000000000000000-") {
		t.Errorf("root traceparent = %q", root.Traceparent())
	}
	got, ok = ParseTraceparent(root.Traceparent())
	if !ok || got.SpanID != "" || got.TraceID != tc.TraceID {
		t.Errorf("root round trip = %v (ok=%v)", got, ok)
	}
}

func TestParseTraceparentRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"01-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01", // wrong version
		"00-" + strings.Repeat("a", 31) + "-" + strings.Repeat("b", 16) + "-01", // short trace
		"00-" + strings.Repeat("g", 32) + "-" + strings.Repeat("b", 16) + "-01", // non-hex
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 15) + "-01", // short span
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("b", 16) + "-01", // all-zero trace
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16),         // missing flags
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
}

func TestSpanBuilderBalanceAndIdempotentEnd(t *testing.T) {
	b := NewSpanBuilder(NewTraceID(), "node-a")
	b.SetJobID("job-1")
	root := b.StartSpan("", "job", map[string]any{"circuit": "s27"})
	child := root.Start("queue", nil)
	if b.OpenSpans() != 2 {
		t.Fatalf("open spans = %d, want 2", b.OpenSpans())
	}
	child.End(nil)
	child.End(map[string]any{"twice": true}) // ignored
	root.End(map[string]any{"state": "done"})
	root.End(nil) // ignored
	if b.OpenSpans() != 0 {
		t.Fatalf("open spans after End = %d, want 0", b.OpenSpans())
	}
	seg := b.Segment()
	if seg.JobID != "job-1" || seg.Node != "node-a" || len(seg.Spans) != 2 {
		t.Fatalf("segment = %+v", seg)
	}
	for _, sp := range seg.Spans {
		if sp.Node != "node-a" {
			t.Errorf("span %s node = %q", sp.Name, sp.Node)
		}
	}
	// The child parents to the root; end-attrs merged over start-attrs.
	var rootRec, childRec SpanRecord
	for _, sp := range seg.Spans {
		switch sp.Name {
		case "job":
			rootRec = sp
		case "queue":
			childRec = sp
		}
	}
	if childRec.Parent != rootRec.SpanID {
		t.Errorf("child parent = %q, want %q", childRec.Parent, rootRec.SpanID)
	}
	if rootRec.Attrs["circuit"] != "s27" || rootRec.Attrs["state"] != "done" {
		t.Errorf("root attrs = %v", rootRec.Attrs)
	}
	if _, ok := childRec.Attrs["twice"]; ok {
		t.Errorf("second End mutated attrs: %v", childRec.Attrs)
	}
}

func TestNilSpanBuilderIsNoOp(t *testing.T) {
	var b *SpanBuilder
	b.SetJobID("x")
	sp := b.StartSpan("", "root", nil)
	if sp != nil {
		t.Fatal("nil builder started a span")
	}
	sp.End(nil)
	child := sp.Start("child", nil)
	child.End(nil)
	if id := sp.ID(); id != "" {
		t.Errorf("nil span ID = %q", id)
	}
	if seg := b.Segment(); len(seg.Spans) != 0 {
		t.Errorf("nil segment = %+v", seg)
	}
}

func TestTraceStoreEvictionAndLookups(t *testing.T) {
	ts := NewTraceStore(3)
	var builders []*SpanBuilder
	for i := 0; i < 5; i++ {
		b := NewSpanBuilder(fmt.Sprintf("%032d", i), "node-a")
		b.SetJobID(fmt.Sprintf("job-%d", i))
		sp := b.StartSpan("", "job", nil)
		sp.End(nil)
		ts.Add(b)
		builders = append(builders, b)
	}
	if ts.Len() != 3 {
		t.Fatalf("len = %d, want 3 (capacity)", ts.Len())
	}
	// Oldest two evicted, newest three retained.
	if _, ok := ts.ByJob("job-0"); ok {
		t.Error("evicted job-0 still resolvable")
	}
	if _, ok := ts.ByJob("job-4"); !ok {
		t.Error("job-4 not resolvable")
	}
	if segs := ts.ByTrace(builders[1].TraceID()); len(segs) != 0 {
		t.Errorf("evicted trace has %d segments", len(segs))
	}
	if segs := ts.ByTrace(builders[3].TraceID()); len(segs) != 1 {
		t.Errorf("trace 3 has %d segments, want 1", len(segs))
	}

	// A job ID reused across traces resolves to the newest segment.
	reused := NewSpanBuilder(strings.Repeat("f", 32), "node-b")
	reused.SetJobID("job-4")
	ts.Add(reused)
	seg, ok := ts.ByJob("job-4")
	if !ok || seg.TraceID != reused.TraceID() {
		t.Errorf("ByJob(job-4) = %+v (ok=%v), want newest trace", seg, ok)
	}

	// A segment added live keeps accumulating: spans ended after Add are
	// visible in later lookups.
	live := NewSpanBuilder(strings.Repeat("e", 32), "node-c")
	live.SetJobID("job-live")
	open := live.StartSpan("", "job", nil)
	ts.Add(live)
	if seg, _ := ts.ByJob("job-live"); len(seg.Spans) != 0 {
		t.Fatalf("unfinished span already visible: %+v", seg)
	}
	open.End(nil)
	if seg, _ := ts.ByJob("job-live"); len(seg.Spans) != 1 {
		t.Errorf("span ended after Add not visible: %+v", seg)
	}

	// Nil store is a no-op.
	var nilTS *TraceStore
	nilTS.Add(live)
	if nilTS.Len() != 0 {
		t.Error("nil store has entries")
	}
	if _, ok := nilTS.ByJob("job-live"); ok {
		t.Error("nil store resolved a job")
	}
}
