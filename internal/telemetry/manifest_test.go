package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
)

func sampleManifest() *Manifest {
	m := NewManifest("test-run")
	m.Workers = 4
	m.Config = json.RawMessage(`{"seed":1}`)
	m.WallNS = 123456789
	m.Circuits = []CircuitManifest{
		{
			Name: "s344",
			Stages: []StageManifest{
				{Stage: "atpg", WallNS: 1000, Patterns: 17, Backtracks: 3},
				{Stage: "traditional", WallNS: 2000, Patterns: 17},
				{Stage: "proposed", WallNS: 3000, Patterns: 17},
			},
		},
		{
			Name: "s382",
			Stages: []StageManifest{
				{Stage: "atpg", WallNS: 0, Patterns: 17, CacheHit: true},
			},
		},
		{Name: "s999", Err: "unknown benchmark"},
	}
	m.Counters = map[string]float64{"scanpower_cache_hits_total": 1}
	m.Results = json.RawMessage(`{"columns":["Circuit"],"rows":[["s344"]]}`)
	return m
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ManifestSchema {
		t.Fatalf("schema = %q", got.Schema)
	}
	if got.GoVersion != runtime.Version() || got.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Fatalf("environment not recorded: %+v", got)
	}
	if !reflect.DeepEqual(got.Circuits, m.Circuits) {
		t.Fatalf("circuits round-trip mismatch:\n got %+v\nwant %+v", got.Circuits, m.Circuits)
	}
	if got.Counters["scanpower_cache_hits_total"] != 1 {
		t.Fatalf("counters = %v", got.Counters)
	}
	var res map[string]any
	if err := json.Unmarshal(got.Results, &res); err != nil {
		t.Fatalf("results not JSON: %v", err)
	}
}

func TestManifestFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := sampleManifest().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// Re-read through the file to prove the on-disk form parses.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(bytes.NewReader(b)); err != nil {
		t.Fatal(err)
	}
}

func TestManifestRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadManifest(bytes.NewReader([]byte(`{"schema":"other/v9"}`))); err == nil {
		t.Fatal("expected schema error")
	}
}
