package telemetry

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// parseTrace decodes every JSONL event.
func parseTrace(t *testing.T, src string) []TraceEvent {
	t.Helper()
	var evs []TraceEvent
	sc := bufio.NewScanner(strings.NewReader(src))
	for sc.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	return evs
}

func TestSpanNestingAndBalance(t *testing.T) {
	var b strings.Builder
	tw := NewTraceWriter(&b)
	run := tw.Start("run", map[string]any{"workers": 2})
	circ := run.Start("circuit", map[string]any{"name": "s344"})
	stage := circ.Start("stage", map[string]any{"stage": "atpg"})
	stage.Completed("podem", 5*time.Millisecond, map[string]any{"faults": 10})
	stage.End(map[string]any{"patterns": 17})
	circ.End(nil)
	run.End(nil)

	if n := tw.OpenSpans(); n != 0 {
		t.Fatalf("OpenSpans = %d after balanced run, want 0", n)
	}
	evs := parseTrace(t, b.String())
	if len(evs) != 7 {
		t.Fatalf("got %d events, want 7:\n%s", len(evs), b.String())
	}
	// Reconstruct nesting: id → parent from start/span events.
	parent := map[int64]int64{}
	name := map[int64]string{}
	for _, ev := range evs {
		if ev.Ev == "start" || ev.Ev == "span" {
			parent[ev.ID] = ev.Parent
			name[ev.ID] = ev.Name
		}
	}
	// Find the podem completed span and walk up to the root.
	var podemID int64
	for id, n := range name {
		if n == "podem" {
			podemID = id
		}
	}
	chain := []string{}
	for id := podemID; id != 0; id = parent[id] {
		chain = append(chain, name[id])
	}
	got := strings.Join(chain, "<")
	if got != "podem<stage<circuit<run" {
		t.Fatalf("nesting chain = %s, want podem<stage<circuit<run", got)
	}
	// Every start has a matching end with the same name.
	ends := map[int64]string{}
	for _, ev := range evs {
		if ev.Ev == "end" {
			ends[ev.ID] = ev.Name
		}
	}
	for _, ev := range evs {
		if ev.Ev != "start" {
			continue
		}
		if ends[ev.ID] != ev.Name {
			t.Errorf("span %d (%s) has no matching end", ev.ID, ev.Name)
		}
	}
}

func TestSpanAttrsAndDuration(t *testing.T) {
	var b strings.Builder
	tw := NewTraceWriter(&b)
	s := tw.Start("work", nil)
	time.Sleep(time.Millisecond)
	s.End(map[string]any{"items": 3})
	evs := parseTrace(t, b.String())
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	end := evs[1]
	if end.DurNS <= 0 {
		t.Fatalf("end dur_ns = %d, want > 0", end.DurNS)
	}
	if end.Attrs["items"].(float64) != 3 {
		t.Fatalf("end attrs = %v", end.Attrs)
	}
	if _, err := time.Parse(time.RFC3339Nano, evs[0].Time); err != nil {
		t.Fatalf("start timestamp %q: %v", evs[0].Time, err)
	}
}

func TestNilTraceWriter(t *testing.T) {
	var tw *TraceWriter
	s := tw.Start("run", nil)
	if s != nil {
		t.Fatal("nil TraceWriter should return nil span")
	}
	child := s.Start("x", nil)
	child.Completed("y", time.Second, nil)
	child.End(nil)
	s.End(nil)
	if tw.OpenSpans() != 0 {
		t.Fatal("nil TraceWriter OpenSpans != 0")
	}
}

func TestConcurrentSpans(t *testing.T) {
	var b strings.Builder
	tw := NewTraceWriter(&syncWriter{w: &b})
	run := tw.Start("run", nil)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				s := run.Start("circuit", nil)
				s.Completed("sub", time.Microsecond, nil)
				s.End(nil)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	run.End(nil)
	if tw.OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d, want 0", tw.OpenSpans())
	}
	evs := parseTrace(t, b.String())
	// 1 run start + 8*50*(start+span+end) + 1 run end.
	if len(evs) != 2+8*50*3 {
		t.Fatalf("got %d events, want %d", len(evs), 2+8*50*3)
	}
}

// syncWriter guards a strings.Builder; TraceWriter serializes writes
// itself, but the final read in the test races without a common lock only
// if the writer were unguarded — this keeps the test honest under -race.
type syncWriter struct {
	w *strings.Builder
}

func (s *syncWriter) Write(p []byte) (int, error) { return s.w.Write(p) }
