package vcd

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// TestReadActivityHandwritten checks toggle counting on a minimal
// hand-written dump: 5 timestamps = 4 steps.
func TestReadActivityHandwritten(t *testing.T) {
	src := `$date today $end
$timescale 1ns $end
$scope module top $end
$var wire 1 ! a $end
$var wire 1 " b $end
$var wire 4 # bus [3:0] $end
$upscope $end
$enddefinitions $end
#0
0!
1"
b1010 #
#1
1!
1"
#2
0!
#3
1!
b0101 #
#4
`
	act, err := ReadActivity(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadActivity: %v", err)
	}
	if got := act["a"]; got != 3.0/4.0 {
		t.Errorf("a: got %v, want 0.75", got)
	}
	if got := act["b"]; got != 0 {
		t.Errorf("b: got %v, want 0 (never toggles)", got)
	}
	if _, ok := act["bus"]; ok {
		t.Errorf("bus: wide vector should not produce an activity entry")
	}
}

// TestReadActivityUnknowns checks that x/z break toggle chains rather than
// counting as transitions.
func TestReadActivityUnknowns(t *testing.T) {
	src := `$var wire 1 ! a $end
$enddefinitions $end
#0
x!
#1
1!
#2
z!
#3
0!
#4
1!
`
	act, err := ReadActivity(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadActivity: %v", err)
	}
	// Only the known-to-known 0->1 step at #4 toggles; x->1 and z->0 do not.
	if got := act["a"]; got != 1.0/4.0 {
		t.Errorf("a: got %v, want 0.25", got)
	}
}

// TestReadActivityErrors walks the malformed-input space.
func TestReadActivityErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no signals", "$enddefinitions $end\n#0\n#1\n"},
		{"one timestamp", "$var wire 1 ! a $end\n$enddefinitions $end\n#0\n0!\n"},
		{"undeclared id", "$var wire 1 ! a $end\n$enddefinitions $end\n#0\n0?\n#1\n"},
		{"bad var", "$var wire\n$enddefinitions $end\n#0\n#1\n"},
		{"bad width", "$var wire zero ! a $end\n$enddefinitions $end\n#0\n#1\n"},
		{"dup id", "$var wire 1 ! a $end\n$var wire 1 ! b $end\n$enddefinitions $end\n#0\n#1\n"},
		{"garbage line", "$var wire 1 ! a $end\n$enddefinitions $end\n#0\nhello\n#1\n"},
		{"bad timestamp", "$var wire 1 ! a $end\n$enddefinitions $end\n#zero\n#1\n"},
		{"only wide vectors", "$var wire 4 ! bus $end\n$enddefinitions $end\n#0\n#1\n"},
	}
	for _, tc := range cases {
		if _, err := ReadActivity(strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

// TestReadActivityRoundTrip feeds a Dumper-produced dump back through the
// reader and checks the derived activities match the state sequence.
func TestReadActivityRoundTrip(t *testing.T) {
	c := netlist.New("t")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGate(logic.Nand, "y", "a", "b")
	c.MarkPO("y")
	c.MustFreeze()

	var buf bytes.Buffer
	d, err := NewDumper(&buf, c, nil)
	if err != nil {
		t.Fatalf("NewDumper: %v", err)
	}
	na, _ := c.NetByName("a")
	nb, _ := c.NetByName("b")
	ny, _ := c.NetByName("y")
	state := make([]bool, c.NumNets())
	// a toggles every cycle, b stays 0, y = !(a&&b) stays 1.
	for i := 0; i < 4; i++ {
		state[na] = i%2 == 1
		state[nb] = false
		state[ny] = true
		if err := d.Tick(state); err != nil {
			t.Fatalf("Tick: %v", err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	act, err := ReadActivity(&buf)
	if err != nil {
		t.Fatalf("ReadActivity: %v", err)
	}
	// 4 ticks + Close's final stamp = 5 timestamps = 4 steps; a toggles 3x.
	if got := act["a"]; got != 3.0/4.0 {
		t.Errorf("a: got %v, want 0.75", got)
	}
	if got := act["b"]; got != 0 {
		t.Errorf("b: got %v, want 0", got)
	}
	if got := act["y"]; got != 0 {
		t.Errorf("y: got %v, want 0", got)
	}
}
