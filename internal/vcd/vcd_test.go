package vcd

import (
	"strings"
	"testing"

	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/scan"
)

func TestIDCodeUniqueAndPrintable(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 20000; i++ {
		id := idCode(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
		for _, ch := range id {
			if ch < 33 || ch > 126 {
				t.Fatalf("non-printable id byte %d at %d", ch, i)
			}
		}
	}
	if idCode(0) != "!" {
		t.Errorf("idCode(0) = %q", idCode(0))
	}
}

func TestDumpScanProducesValidVCD(t *testing.T) {
	c := iscas.S27()
	ch := scan.New(c)
	pats := []scan.Pattern{
		{PI: []bool{true, false, true, false}, State: []bool{true, false, true}},
		{PI: []bool{false, true, false, true}, State: []bool{false, true, false}},
	}
	var sb strings.Builder
	if err := DumpScan(&sb, ch, pats, scan.Traditional(c), nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"$timescale", "$scope module s27", "$enddefinitions", "#0", "$var wire 1 ! ",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("VCD missing %q", frag)
		}
	}
	// One tick per shift (2*3 + 3 flush) + 2 captures = 11, plus final
	// timestamp -> "#11" must appear.
	if !strings.Contains(out, "#11") {
		t.Errorf("expected final timestamp #11:\n%s", out)
	}
	// Time 0 dumps every selected net.
	lines := strings.Split(out, "\n")
	count0 := 0
	in0 := false
	for _, l := range lines {
		if l == "#0" {
			in0 = true
			continue
		}
		if in0 && strings.HasPrefix(l, "#") {
			break
		}
		if in0 && l != "" {
			count0++
		}
	}
	if count0 != c.NumNets() {
		t.Errorf("time-0 dump has %d signals, want %d", count0, c.NumNets())
	}
}

func TestDumpScanSelectedNets(t *testing.T) {
	c := iscas.S27()
	ch := scan.New(c)
	pats := []scan.Pattern{{PI: make([]bool, 4), State: make([]bool, 3)}}
	sel := []netlist.NetID{c.PIs[0], c.POs[0]}
	var sb strings.Builder
	if err := DumpScan(&sb, ch, pats, scan.Traditional(c), sel); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "$var wire"); n != 2 {
		t.Errorf("declared %d vars, want 2", n)
	}
}

func TestTickAfterClose(t *testing.T) {
	c := iscas.S27()
	var sb strings.Builder
	d, err := NewDumper(&sb, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Tick(make([]bool, c.NumNets())); err == nil {
		t.Error("Tick after Close accepted")
	}
	if err := d.Close(); err != nil {
		t.Error("double Close should be a no-op")
	}
}
