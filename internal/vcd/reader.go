package vcd

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// rdSig tracks one declared VCD signal while counting toggles.
type rdSig struct {
	name    string
	width   int
	last    int8 // -1 unknown, 0, 1
	toggles int
}

// apply folds one value character into the signal's toggle count. x/z mark
// the value unknown; a toggle is only counted between two known values.
func (s *rdSig) apply(v byte) {
	var cur int8
	switch v {
	case '0':
		cur = 0
	case '1':
		cur = 1
	default: // x, X, z, Z
		s.last = -1
		return
	}
	if s.last >= 0 && s.last != cur {
		s.toggles++
	}
	s.last = cur
}

// ReadActivity parses a Value Change Dump stream and returns the per-signal
// switching activity: for each scalar (1-bit) signal, the number of 0↔1
// toggles it makes divided by the number of time steps in the dump (the
// timestamp count minus one), clamped to [0, 1]. The result is what
// industrial power flows call the signal's activity factor, and is what the
// service feeds into activity-weighted dynamic-power accounting.
//
// The supported subset mirrors what Dumper writes plus the common output of
// other tools: $var declarations (any scope nesting), #time stamps, scalar
// changes 0/1/x/z<id>, and vector changes b<bits> <id> (a one-bit vector
// counts as a scalar; wider vectors are ignored). Unknown $-directives are
// skipped. x/z values are treated as unknown and do not toggle.
//
// Signals that never appear in a change record have activity 0 — a net that
// is not dumped or never changes did not switch. Duplicate signal names
// keep the first declaration.
func ReadActivity(r io.Reader) (map[string]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	byID := map[string]*rdSig{}
	order := []*rdSig{}
	timestamps := 0
	inDefs := true
	skipUntilEnd := false

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if skipUntilEnd {
			if strings.Contains(line, "$end") {
				skipUntilEnd = false
			}
			continue
		}
		switch {
		case strings.HasPrefix(line, "$var"):
			if !inDefs {
				return nil, fmt.Errorf("vcd: $var after $enddefinitions")
			}
			// $var <type> <width> <id> <name...> $end
			fields := strings.Fields(line)
			if len(fields) < 5 {
				return nil, fmt.Errorf("vcd: malformed declaration %q", line)
			}
			var width int
			if _, err := fmt.Sscanf(fields[2], "%d", &width); err != nil || width < 1 {
				return nil, fmt.Errorf("vcd: bad width in %q", line)
			}
			id := fields[3]
			nameEnd := len(fields)
			if fields[nameEnd-1] == "$end" {
				nameEnd--
			}
			// A trailing "[msb:lsb]" range is part of the reference, not
			// the name.
			if nameEnd > 5 && strings.HasPrefix(fields[nameEnd-1], "[") {
				nameEnd--
			}
			name := strings.Join(fields[4:nameEnd], " ")
			if name == "" {
				return nil, fmt.Errorf("vcd: unnamed signal in %q", line)
			}
			if _, dup := byID[id]; dup {
				return nil, fmt.Errorf("vcd: duplicate identifier %q", id)
			}
			s := &rdSig{name: name, width: width, last: -1}
			byID[id] = s
			order = append(order, s)
		case strings.HasPrefix(line, "$enddefinitions"):
			inDefs = false
			if !strings.Contains(line, "$end") {
				skipUntilEnd = true
			}
		case strings.HasPrefix(line, "$"):
			// $date, $timescale, $scope, $upscope, $comment, $dumpvars...
			// — skipped; their $end may sit on a later line.
			if !strings.Contains(line[1:], "$end") && line != "$end" {
				skipUntilEnd = true
			}
		case line[0] == '#':
			var t int
			if _, err := fmt.Sscanf(line[1:], "%d", &t); err != nil {
				return nil, fmt.Errorf("vcd: bad timestamp %q", line)
			}
			timestamps++
		case line[0] == '0' || line[0] == '1' || line[0] == 'x' || line[0] == 'X' ||
			line[0] == 'z' || line[0] == 'Z':
			id := strings.TrimSpace(line[1:])
			s, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("vcd: change for undeclared identifier %q", id)
			}
			s.apply(line[0])
		case line[0] == 'b' || line[0] == 'B':
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("vcd: malformed vector change %q", line)
			}
			s, ok := byID[fields[1]]
			if !ok {
				return nil, fmt.Errorf("vcd: change for undeclared identifier %q", fields[1])
			}
			bits := fields[0][1:]
			if len(bits) == 0 {
				return nil, fmt.Errorf("vcd: malformed vector change %q", line)
			}
			if s.width == 1 {
				s.apply(bits[len(bits)-1])
			}
		case line[0] == 'r' || line[0] == 'R':
			// Real-valued change — carries no toggle information here.
		default:
			return nil, fmt.Errorf("vcd: unsupported line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("vcd: read: %w", err)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("vcd: no signals declared")
	}
	if timestamps < 2 {
		return nil, fmt.Errorf("vcd: fewer than two timestamps — no time steps to derive activity from")
	}

	steps := float64(timestamps - 1)
	out := make(map[string]float64, len(order))
	for _, s := range order {
		if s.width != 1 {
			continue
		}
		if _, dup := out[s.name]; dup {
			continue
		}
		a := float64(s.toggles) / steps
		if a > 1 {
			a = 1
		}
		out[s.name] = a
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("vcd: no scalar signals declared")
	}
	return out, nil
}
