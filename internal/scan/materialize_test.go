package scan

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// TestMaterializedMatchesBehavioral is the end-to-end structural check:
// driving the stitched gate-level scan netlist cycle by cycle must expose
// exactly the combinational input values the behavioral Chain.Run
// reports, and the scan-out pin must stream exactly the captured
// responses.
func TestMaterializedMatchesBehavioral(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		c := randomSeqCircuit(t, rng, 4+rng.Intn(4), 3+rng.Intn(5), 12+rng.Intn(20))
		order := rng.Perm(c.NumFFs())
		ch, err := NewWithOrder(c, order)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Traditional(c)
		for f := range cfg.Muxed {
			if rng.Intn(3) == 0 {
				cfg.Muxed[f] = true
				cfg.MuxVal[f] = rng.Intn(2) == 1
			}
		}
		for i := range cfg.PIHold {
			cfg.PIHold[i] = logic.Value(rng.Intn(3))
		}
		var pats []Pattern
		for i := 0; i < 4; i++ {
			p := Pattern{PI: make([]bool, len(c.PIs)), State: make([]bool, c.NumFFs())}
			sim.RandomVector(rng, p.PI)
			sim.RandomVector(rng, p.State)
			pats = append(pats, p)
		}
		crossValidate(t, ch, cfg, pats)
	}
}

// crossValidate replays the Run protocol on the materialized netlist and
// compares every observable against the behavioral hooks.
func crossValidate(t *testing.T, ch *Chain, cfg ShiftConfig, pats []Pattern) {
	t.Helper()
	c := ch.c
	mat, err := Materialize(ch, cfg)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}

	// Behavioral trace: comb input values per shift cycle + capture data.
	type cap struct{ ppi, resp []bool }
	var shiftTrace [][]bool // pi ++ ppi per shift cycle
	var captures []cap
	s := sim.New(c)
	hooks := Hooks{
		ShiftCycle: func(pi, ppi []bool) {
			shiftTrace = append(shiftTrace, append(append([]bool(nil), pi...), ppi...))
		},
		Capture: func(pi, ppi []bool) []bool {
			st := s.Eval(pi, ppi)
			resp := make([]bool, c.NumFFs())
			for i, ff := range c.FFs {
				resp[i] = st[ff.D]
			}
			captures = append(captures, cap{append([]bool(nil), ppi...), resp})
			return resp
		},
	}
	if err := ch.Run(pats, cfg, hooks); err != nil {
		t.Fatal(err)
	}

	// Structural replay.
	stepper := sim.NewStepper(mat.Circuit)
	qNet := make([]netlist.NetID, c.NumFFs())
	for f, ff := range c.FFs {
		id, ok := mat.Circuit.NetByName(c.Nets[ff.Q].Name)
		if !ok {
			t.Fatalf("comb-visible net %s missing", c.Nets[ff.Q].Name)
		}
		qNet[f] = id
	}
	piNet := make([]netlist.NetID, len(c.PIs))
	for i, pi := range c.PIs {
		id, ok := mat.Circuit.NetByName(c.Nets[pi].Name)
		if !ok {
			t.Fatalf("PI %s missing", c.Nets[pi].Name)
		}
		piNet[i] = id
	}
	soNet := mat.Circuit.POs[mat.SO]

	L := ch.Length()
	cycle := 0
	holdPI := func(pat Pattern) []bool {
		out := make([]bool, len(c.PIs))
		for i := range out {
			switch cfg.PIHold[i] {
			case logic.Zero:
				out[i] = false
			case logic.One:
				out[i] = true
			default:
				out[i] = pat.PI[i]
			}
		}
		return out
	}
	var lastResp []bool
	for pi, pat := range pats {
		hold := holdPI(pat)
		for tshift := 0; tshift < L; tshift++ {
			inBit := pat.State[ch.Order[L-1-tshift]]
			// Scan-out check: the bit leaving now is the previous
			// response at descending chain positions.
			if lastResp != nil {
				pre := stepper.Peek(mat.Drive(hold, inBit, true))
				want := lastResp[ch.Order[L-1-tshift]]
				if pre[soNet] != want {
					t.Fatalf("pattern %d shift %d: SO = %v, want %v",
						pi, tshift, pre[soNet], want)
				}
			}
			stepper.Step(mat.Drive(hold, inBit, true))
			vals := stepper.Peek(mat.Drive(hold, false, true))
			ref := shiftTrace[cycle]
			for i := range c.PIs {
				if vals[piNet[i]] != ref[i] {
					t.Fatalf("pattern %d shift %d: PI %d differs", pi, tshift, i)
				}
			}
			for f := 0; f < c.NumFFs(); f++ {
				if vals[qNet[f]] != ref[len(c.PIs)+f] {
					t.Fatalf("pattern %d shift %d: comb input of flop %d = %v, want %v",
						pi, tshift, f, vals[qNet[f]], ref[len(c.PIs)+f])
				}
			}
			cycle++
		}
		// Capture cycle: SE=0, pattern PI values.
		pre := stepper.Peek(mat.Drive(pat.PI, false, false))
		for f := 0; f < c.NumFFs(); f++ {
			if pre[qNet[f]] != captures[pi].ppi[f] {
				t.Fatalf("pattern %d capture: flop %d sees %v, want %v",
					pi, f, pre[qNet[f]], captures[pi].ppi[f])
			}
		}
		stepper.Step(mat.Drive(pat.PI, false, false))
		// Flop state must now equal the captured response.
		for f, want := range captures[pi].resp {
			if stepper.State()[f] != want {
				t.Fatalf("pattern %d: captured state of flop %d = %v, want %v",
					pi, f, stepper.State()[f], want)
			}
		}
		lastResp = captures[pi].resp
	}
}

// randomSeqCircuit builds a random, well-formed sequential circuit.
func randomSeqCircuit(t *testing.T, rng *rand.Rand, pis, ffs, gates int) *netlist.Circuit {
	t.Helper()
	c := netlist.New("rnd")
	var pool []string
	for i := 0; i < pis; i++ {
		n := "pi" + string(rune('a'+i))
		c.AddPI(n)
		pool = append(pool, n)
	}
	for i := 0; i < ffs; i++ {
		q := "q" + string(rune('a'+i))
		c.AddFF("ff"+string(rune('a'+i)), q, "d"+string(rune('a'+i)))
		pool = append(pool, q)
	}
	types := []logic.GateType{logic.Nand, logic.Nor, logic.Not}
	for i := 0; i < gates; i++ {
		gt := types[rng.Intn(len(types))]
		arity := 2
		if gt == logic.Not {
			arity = 1
		}
		ins := make([]string, arity)
		for j := range ins {
			ins[j] = pool[rng.Intn(len(pool))]
		}
		out := "n" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		c.AddGate(gt, out, ins...)
		pool = append(pool, out)
	}
	for i := 0; i < ffs; i++ {
		c.AddGate(logic.Nand, "d"+string(rune('a'+i)),
			pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))])
	}
	c.AddGate(logic.Nor, "outg", pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))])
	c.MarkPO("outg")
	c.MustFreeze()
	return c
}

func TestMaterializeValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomSeqCircuit(t, rng, 2, 3, 5)
	ch := New(c)
	bad := Traditional(c)
	bad.Muxed = bad.Muxed[:1]
	if _, err := Materialize(ch, bad); err == nil {
		t.Error("accepted invalid config")
	}
}

func TestMaterializePortBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := randomSeqCircuit(t, rng, 2, 3, 5)
	ch := New(c)
	cfg := Traditional(c)
	cfg.Muxed[0], cfg.MuxVal[0] = true, true
	cfg.Muxed[1], cfg.MuxVal[1] = true, false
	mat, err := Materialize(ch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mc := mat.Circuit
	if mc.Nets[mc.PIs[mat.SI]].Name != "SI" || mc.Nets[mc.PIs[mat.SE]].Name != "SE" {
		t.Error("SI/SE indices wrong")
	}
	if mat.Tie0 < 0 || mat.Tie1 < 0 {
		t.Error("tie rails missing despite both constants in use")
	}
	drive := mat.Drive(make([]bool, 2), true, true)
	if !drive[mat.SI] || !drive[mat.SE] || drive[mat.Tie0] || !drive[mat.Tie1] {
		t.Errorf("Drive wiring wrong: %v", drive)
	}
	// Scan netlist grows by one D-mux per flop plus one output MUX per
	// muxed flop.
	wantGates := c.NumGates() + c.NumFFs() + 2
	if mc.NumGates() != wantGates {
		t.Errorf("materialized gates = %d, want %d", mc.NumGates(), wantGates)
	}
}
