package scan

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Runner abstracts single- and multi-chain scan test application; both
// Chain and Chains implement it, and the power measurement accepts either.
type Runner interface {
	Circuit() *netlist.Circuit
	Run(patterns []Pattern, cfg ShiftConfig, hooks Hooks) error
}

var (
	_ Runner = (*Chain)(nil)
	_ Runner = (*Chains)(nil)
)

// Chains is a multi-chain scan configuration: the flops are partitioned
// into n chains that shift simultaneously, cutting test time by roughly
// n× at the cost of n scan-in/scan-out pins. Shorter chains pad with
// leading zero bits so every chain finishes loading on the same cycle.
type Chains struct {
	c *netlist.Circuit
	// Groups[k][p] is the flop index at position p of chain k (position 0
	// nearest that chain's scan input).
	Groups [][]int
	chain  []int // per flop: owning chain
	pos    []int // per flop: position in its chain
}

// NewChains partitions the flops round-robin into n balanced chains.
func NewChains(c *netlist.Circuit, n int) (*Chains, error) {
	if n < 1 {
		return nil, fmt.Errorf("scan: need at least one chain, got %d", n)
	}
	if n > c.NumFFs() && c.NumFFs() > 0 {
		n = c.NumFFs()
	}
	groups := make([][]int, n)
	for f := 0; f < c.NumFFs(); f++ {
		k := f % n
		groups[k] = append(groups[k], f)
	}
	return NewChainsWithGroups(c, groups)
}

// NewChainsWithGroups builds chains from an explicit partition; every
// flop must appear exactly once across the groups.
func NewChainsWithGroups(c *netlist.Circuit, groups [][]int) (*Chains, error) {
	chain := make([]int, c.NumFFs())
	pos := make([]int, c.NumFFs())
	for i := range chain {
		chain[i] = -1
	}
	for k, g := range groups {
		for p, f := range g {
			if f < 0 || f >= c.NumFFs() || chain[f] != -1 {
				return nil, fmt.Errorf("scan: groups are not a partition (flop %d)", f)
			}
			chain[f] = k
			pos[f] = p
		}
	}
	for f, k := range chain {
		if k == -1 {
			return nil, fmt.Errorf("scan: flop %d missing from every chain", f)
		}
	}
	return &Chains{c: c, Groups: groups, chain: chain, pos: pos}, nil
}

// Circuit returns the underlying circuit.
func (cs *Chains) Circuit() *netlist.Circuit { return cs.c }

// NumChains returns the chain count.
func (cs *Chains) NumChains() int { return len(cs.Groups) }

// MaxLength returns the longest chain length — the shift cycles needed
// per pattern.
func (cs *Chains) MaxLength() int {
	m := 0
	for _, g := range cs.Groups {
		if len(g) > m {
			m = len(g)
		}
	}
	return m
}

// Run applies the patterns through all chains simultaneously; semantics
// match Chain.Run (shift in while the previous response shifts out, one
// capture per pattern, final zero-fill flush), with MaxLength() shift
// cycles per pattern.
func (cs *Chains) Run(patterns []Pattern, cfg ShiftConfig, hooks Hooks) error {
	c := cs.c
	if err := cfg.Validate(c); err != nil {
		return err
	}
	for pi, p := range patterns {
		if len(p.PI) != len(c.PIs) || len(p.State) != c.NumFFs() {
			return fmt.Errorf("scan: pattern %d sized %d/%d, want %d/%d",
				pi, len(p.PI), len(p.State), len(c.PIs), c.NumFFs())
		}
	}
	L := cs.MaxLength()
	// content[k][p] = bit at position p of chain k.
	content := make([][]bool, cs.NumChains())
	for k := range content {
		content[k] = make([]bool, len(cs.Groups[k]))
	}
	piVals := make([]bool, len(c.PIs))
	ppiVals := make([]bool, c.NumFFs())

	emit := func(patPI []bool) {
		if hooks.ShiftCycle == nil {
			return
		}
		for i := range piVals {
			switch cfg.PIHold[i] {
			case logic.Zero:
				piVals[i] = false
			case logic.One:
				piVals[i] = true
			default:
				piVals[i] = patPI[i]
			}
		}
		for f := 0; f < c.NumFFs(); f++ {
			if cfg.Muxed[f] {
				ppiVals[f] = cfg.MuxVal[f]
			} else {
				ppiVals[f] = content[cs.chain[f]][cs.pos[f]]
			}
		}
		hooks.ShiftCycle(piVals, ppiVals)
	}
	shiftOne := func(inBits []bool) {
		for k := range content {
			ck := content[k]
			for p := len(ck) - 1; p > 0; p-- {
				ck[p] = ck[p-1]
			}
			if len(ck) > 0 {
				ck[0] = inBits[k]
			}
		}
	}
	inBits := make([]bool, cs.NumChains())
	for _, pat := range patterns {
		if hooks.Stop != nil {
			if err := hooks.Stop(); err != nil {
				return err
			}
		}
		for t := 0; t < L; t++ {
			for k, g := range cs.Groups {
				lk := len(g)
				lead := L - lk // padding cycles before chain k's data starts
				if t < lead {
					inBits[k] = false
				} else {
					inBits[k] = pat.State[g[lk-1-(t-lead)]]
				}
			}
			shiftOne(inBits)
			emit(pat.PI)
		}
		if hooks.Capture != nil {
			for f := 0; f < c.NumFFs(); f++ {
				ppiVals[f] = content[cs.chain[f]][cs.pos[f]]
			}
			resp := hooks.Capture(pat.PI, ppiVals)
			if len(resp) != c.NumFFs() {
				return fmt.Errorf("scan: capture hook returned %d bits for %d flops",
					len(resp), c.NumFFs())
			}
			for f, v := range resp {
				content[cs.chain[f]][cs.pos[f]] = v
			}
		}
	}
	if len(patterns) > 0 {
		lastPI := patterns[len(patterns)-1].PI
		for k := range inBits {
			inBits[k] = false
		}
		for t := 0; t < L; t++ {
			shiftOne(inBits)
			emit(lastPI)
		}
	}
	return nil
}
