package scan

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Materialized describes the stitched gate-level scan netlist produced by
// Materialize, with the indices of its added ports.
type Materialized struct {
	// Circuit is the structural netlist: every flop's D input goes
	// through a scan-path MUX (functional data vs. the previous cell's
	// output), muxed flops additionally carry the scan-mode output MUX of
	// the paper, and the added primary inputs drive scan-in, Shift Enable
	// and the tie rails.
	Circuit *netlist.Circuit
	// SI, SE are indices into Circuit.PIs for the scan-in and shift
	// enable ports; Tie0/Tie1 are -1 when unused.
	SI, SE     int
	Tie0, Tie1 int
	// SO is the index into Circuit.POs of the scan-out port.
	SO int
	// OrigPI[i] gives, for each original primary input i, its index in
	// Circuit.PIs.
	OrigPI []int
}

// Materialize stitches the scan chain into the netlist: the behavioral
// protocol of Chain.Run becomes real gates and wires, so a cycle-accurate
// simulation of the result must reproduce Run's behaviour exactly — that
// equivalence is what the cross-validation tests check.
//
// cfg supplies the scan-mode output MUXes (the paper's structure); pass
// Traditional(c) for a plain scan stitch.
func Materialize(ch *Chain, cfg ShiftConfig) (*Materialized, error) {
	c := ch.c
	if err := cfg.Validate(c); err != nil {
		return nil, err
	}
	nb := netlist.New(c.Name + "_scan")
	m := &Materialized{Tie0: -1, Tie1: -1}

	// Original primary inputs first, then the scan control ports.
	m.OrigPI = make([]int, len(c.PIs))
	for i, pi := range c.PIs {
		nb.AddPI(c.Nets[pi].Name)
		m.OrigPI[i] = i
	}
	siName := unique(c, "SI")
	seName := unique(c, "SE")
	nb.AddPI(siName)
	m.SI = len(c.PIs)
	nb.AddPI(seName)
	m.SE = len(c.PIs) + 1
	next := len(c.PIs) + 2
	needTie0, needTie1 := false, false
	for f, muxed := range cfg.Muxed {
		if muxed {
			if cfg.MuxVal[f] {
				needTie1 = true
			} else {
				needTie0 = true
			}
		}
	}
	tie0Name, tie1Name := unique(c, "TIE0"), unique(c, "TIE1")
	if needTie0 {
		nb.AddPI(tie0Name)
		m.Tie0 = next
		next++
	}
	if needTie1 {
		nb.AddPI(tie1Name)
		m.Tie1 = next
		next++
	}

	// Flops: scan-path MUX on D; chain wiring by position; optional
	// output MUX per the paper's structure.
	for f, ff := range c.FFs {
		q := c.Nets[ff.Q].Name
		d := c.Nets[ff.D].Name
		pos := ch.pos[f]
		var si string
		if pos == 0 {
			si = siName
		} else {
			// Scan input comes from the *raw* flop output of the previous
			// chain position (before any scan-mode output MUX).
			si = rawQName(c, ch.Order[pos-1], cfg)
		}
		dmux := unique(c, fmt.Sprintf("%s_scanD", q))
		nb.AddGate(logic.Mux2, dmux, d, si, seName)
		rq := rawQName(c, f, cfg)
		nb.AddFF(ff.Name, rq, dmux)
		if cfg.Muxed[f] {
			tie := tie0Name
			if cfg.MuxVal[f] {
				tie = tie1Name
			}
			// Output MUX: shift enable selects the tied constant.
			nb.AddGate(logic.Mux2, q, rq, tie, seName)
		}
	}
	// Combinational gates unchanged.
	for _, g := range c.Gates {
		ins := make([]string, len(g.Inputs))
		for i, in := range g.Inputs {
			ins[i] = c.Nets[in].Name
		}
		nb.AddGate(g.Type, c.Nets[g.Output].Name, ins...)
	}
	for _, po := range c.POs {
		nb.MarkPO(c.Nets[po].Name)
	}
	// Scan-out: raw output of the last chain cell.
	last := ch.Order[ch.Length()-1]
	nb.MarkPO(rawQName(c, last, cfg))
	m.SO = len(c.POs)
	if err := nb.Freeze(); err != nil {
		return nil, fmt.Errorf("scan: materialized netlist invalid: %w", err)
	}
	m.Circuit = nb
	return m, nil
}

// rawQName returns the net name carrying flop f's true output in the
// materialized netlist: the original Q name, unless the flop has a
// scan-mode output MUX (then the original name is the MUX output and the
// flop drives a _raw net).
func rawQName(c *netlist.Circuit, f int, cfg ShiftConfig) string {
	q := c.Nets[c.FFs[f].Q].Name
	if cfg.Muxed[f] {
		return unique(c, q+"_raw")
	}
	return q
}

// unique returns base, suffixed if it collides with an existing net of
// the source circuit.
func unique(c *netlist.Circuit, base string) string {
	if _, ok := c.NetByName(base); !ok {
		return base
	}
	for i := 1; ; i++ {
		name := fmt.Sprintf("%s_%d", base, i)
		if _, ok := c.NetByName(name); !ok {
			return name
		}
	}
}

// Drive computes the primary-input vector of the materialized netlist for
// one cycle: the original PI values, the scan-in bit, and shift enable.
func (m *Materialized) Drive(origPI []bool, si, se bool) []bool {
	out := make([]bool, len(m.Circuit.PIs))
	for i, idx := range m.OrigPI {
		out[idx] = origPI[i]
	}
	out[m.SI] = si
	out[m.SE] = se
	if m.Tie0 >= 0 {
		out[m.Tie0] = false
	}
	if m.Tie1 >= 0 {
		out[m.Tie1] = true
	}
	return out
}
