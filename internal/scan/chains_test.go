package scan

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

func build5FF(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("c5")
	c.AddPI("a")
	for i := 0; i < 5; i++ {
		q := "q" + string(rune('0'+i))
		d := "d" + string(rune('0'+i))
		c.AddFF("f"+string(rune('0'+i)), q, d)
	}
	c.AddGate(logic.Nand, "d0", "a", "q4")
	c.AddGate(logic.Not, "d1", "q0")
	c.AddGate(logic.Nor, "d2", "q1", "a")
	c.AddGate(logic.Not, "d3", "q2")
	c.AddGate(logic.Nand, "d4", "q3", "q0")
	c.MarkPO("d4")
	c.MustFreeze()
	return c
}

func TestNewChainsBalanced(t *testing.T) {
	c := build5FF(t)
	cs, err := NewChains(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cs.NumChains() != 2 {
		t.Fatalf("NumChains = %d", cs.NumChains())
	}
	if len(cs.Groups[0]) != 3 || len(cs.Groups[1]) != 2 {
		t.Errorf("unbalanced groups: %v", cs.Groups)
	}
	if cs.MaxLength() != 3 {
		t.Errorf("MaxLength = %d, want 3", cs.MaxLength())
	}
}

func TestNewChainsClampsAndValidates(t *testing.T) {
	c := build5FF(t)
	if _, err := NewChains(c, 0); err == nil {
		t.Error("accepted zero chains")
	}
	cs, err := NewChains(c, 99)
	if err != nil {
		t.Fatal(err)
	}
	if cs.NumChains() != 5 {
		t.Errorf("chain count should clamp to flop count, got %d", cs.NumChains())
	}
	if _, err := NewChainsWithGroups(c, [][]int{{0, 1}, {1, 2, 3, 4}}); err == nil {
		t.Error("accepted duplicate flop")
	}
	if _, err := NewChainsWithGroups(c, [][]int{{0, 1, 2}}); err == nil {
		t.Error("accepted missing flops")
	}
}

// TestChainsLoadPattern: after shift-in, every flop must hold its pattern
// bit regardless of the partition.
func TestChainsLoadPattern(t *testing.T) {
	c := build5FF(t)
	pat := Pattern{PI: []bool{true}, State: []bool{true, false, true, true, false}}
	for chains := 1; chains <= 5; chains++ {
		cs, err := NewChains(c, chains)
		if err != nil {
			t.Fatal(err)
		}
		var loaded []bool
		hooks := Hooks{Capture: func(pi, ppi []bool) []bool {
			loaded = append([]bool(nil), ppi...)
			return make([]bool, 5)
		}}
		if err := cs.Run([]Pattern{pat}, Traditional(c), hooks); err != nil {
			t.Fatal(err)
		}
		for f, want := range pat.State {
			if loaded[f] != want {
				t.Errorf("%d chains: flop %d loaded %v, want %v", chains, f, loaded[f], want)
			}
		}
	}
}

// TestChainsCutShiftCycles: shift cycles per pattern equal the longest
// chain, so doubling the chains roughly halves test time.
func TestChainsCutShiftCycles(t *testing.T) {
	c := build5FF(t)
	count := func(chains int) int {
		cs, err := NewChains(c, chains)
		if err != nil {
			t.Fatal(err)
		}
		cycles := 0
		hooks := Hooks{
			ShiftCycle: func(pi, ppi []bool) { cycles++ },
			Capture:    func(pi, ppi []bool) []bool { return make([]bool, 5) },
		}
		pats := []Pattern{
			{PI: []bool{false}, State: []bool{true, false, true, false, true}},
			{PI: []bool{true}, State: []bool{false, true, false, true, false}},
		}
		if err := cs.Run(pats, Traditional(c), hooks); err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	one := count(1)  // 2 patterns * 5 + 5 flush = 15
	five := count(5) // 2 * 1 + 1 = 3
	if one != 15 || five != 3 {
		t.Errorf("cycles: 1 chain %d (want 15), 5 chains %d (want 3)", one, five)
	}
}

// TestChainsSingleMatchesChain: a 1-chain Chains must behave exactly like
// the plain Chain on the same workload.
func TestChainsSingleMatchesChain(t *testing.T) {
	c := build5FF(t)
	cs, err := NewChains(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	ch := New(c)
	pats := []Pattern{
		{PI: []bool{true}, State: []bool{true, true, false, false, true}},
		{PI: []bool{false}, State: []bool{false, true, true, false, false}},
	}
	collect := func(r Runner) [][]bool {
		var states [][]bool
		hooks := Hooks{
			ShiftCycle: func(pi, ppi []bool) {
				row := append(append([]bool(nil), pi...), ppi...)
				states = append(states, row)
			},
			Capture: func(pi, ppi []bool) []bool { return []bool{true, false, true, false, true} },
		}
		if err := r.Run(pats, Traditional(c), hooks); err != nil {
			t.Fatal(err)
		}
		return states
	}
	a, b := collect(ch), collect(cs)
	if len(a) != len(b) {
		t.Fatalf("cycle counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("cycle %d bit %d differs", i, j)
			}
		}
	}
}

func TestChainsMuxedFlopsFrozen(t *testing.T) {
	c := build5FF(t)
	cs, err := NewChains(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Traditional(c)
	cfg.Muxed[2] = true
	cfg.MuxVal[2] = true
	pat := Pattern{PI: []bool{false}, State: []bool{true, true, false, true, true}}
	hooks := Hooks{ShiftCycle: func(pi, ppi []bool) {
		if !ppi[2] {
			t.Error("muxed flop leaked chain content")
		}
	}}
	if err := cs.Run([]Pattern{pat}, cfg, hooks); err != nil {
		t.Fatal(err)
	}
}
