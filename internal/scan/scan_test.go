package scan

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// build3FF returns a circuit with 3 flops, 2 PIs and a little logic.
func build3FF(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("c3")
	c.AddPI("a")
	c.AddPI("b")
	c.AddFF("f0", "q0", "d0")
	c.AddFF("f1", "q1", "d1")
	c.AddFF("f2", "q2", "d2")
	c.AddGate(logic.Nand, "d0", "a", "q2")
	c.AddGate(logic.Nor, "d1", "q0", "b")
	c.AddGate(logic.Not, "d2", "q1")
	c.MarkPO("d2")
	c.MustFreeze()
	return c
}

func TestChainBasics(t *testing.T) {
	c := build3FF(t)
	ch := New(c)
	if ch.Length() != 3 {
		t.Fatalf("Length = %d, want 3", ch.Length())
	}
	for f := 0; f < 3; f++ {
		if ch.PositionOf(f) != f {
			t.Errorf("default order: PositionOf(%d) = %d", f, ch.PositionOf(f))
		}
	}
}

func TestNewWithOrderValidation(t *testing.T) {
	c := build3FF(t)
	if _, err := NewWithOrder(c, []int{0, 1}); err == nil {
		t.Error("accepted short order")
	}
	if _, err := NewWithOrder(c, []int{0, 1, 1}); err == nil {
		t.Error("accepted non-permutation")
	}
	if _, err := NewWithOrder(c, []int{0, 1, 5}); err == nil {
		t.Error("accepted out-of-range entry")
	}
	ch, err := NewWithOrder(c, []int{2, 0, 1})
	if err != nil {
		t.Fatalf("valid order rejected: %v", err)
	}
	if ch.PositionOf(2) != 0 || ch.PositionOf(0) != 1 || ch.PositionOf(1) != 2 {
		t.Error("PositionOf inconsistent with order")
	}
}

// TestShiftInLoadsPattern verifies the stream-order convention: after the
// shift-in phase the chain holds exactly the pattern state, FF-indexed.
func TestShiftInLoadsPattern(t *testing.T) {
	c := build3FF(t)
	for _, order := range [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
		ch, err := NewWithOrder(c, order)
		if err != nil {
			t.Fatal(err)
		}
		pat := Pattern{PI: []bool{false, true}, State: []bool{true, false, true}}
		var lastPPI []bool
		hooks := Hooks{
			Capture: func(pi, ppi []bool) []bool {
				lastPPI = append([]bool(nil), ppi...)
				return make([]bool, 3)
			},
		}
		if err := ch.Run([]Pattern{pat}, Traditional(c), hooks); err != nil {
			t.Fatal(err)
		}
		for f := range pat.State {
			if lastPPI[f] != pat.State[f] {
				t.Errorf("order %v: flop %d loaded %v, want %v", order, f, lastPPI[f], pat.State[f])
			}
		}
	}
}

func TestShiftCycleCount(t *testing.T) {
	c := build3FF(t)
	ch := New(c)
	pats := []Pattern{
		{PI: []bool{false, false}, State: []bool{true, true, false}},
		{PI: []bool{true, false}, State: []bool{false, true, true}},
	}
	cycles := 0
	hooks := Hooks{
		ShiftCycle: func(pi, ppi []bool) { cycles++ },
		Capture:    func(pi, ppi []bool) []bool { return make([]bool, 3) },
	}
	if err := ch.Run(pats, Traditional(c), hooks); err != nil {
		t.Fatal(err)
	}
	// 2 patterns * 3 shifts + 3 flush shifts.
	if cycles != 9 {
		t.Errorf("shift cycles = %d, want 9", cycles)
	}
}

func TestMuxFreezesPseudoInput(t *testing.T) {
	c := build3FF(t)
	ch := New(c)
	cfg := Traditional(c)
	cfg.Muxed[1] = true
	cfg.MuxVal[1] = true
	pat := Pattern{PI: []bool{false, false}, State: []bool{true, false, true}}
	sawChange := false
	hooks := Hooks{
		ShiftCycle: func(pi, ppi []bool) {
			if ppi[1] != true {
				sawChange = true
			}
		},
		Capture: func(pi, ppi []bool) []bool {
			// At capture the MUX switches back to the flop: the loaded
			// state, not the frozen constant, must be visible.
			if ppi[1] != pat.State[1] {
				t.Errorf("capture saw frozen value instead of chain content")
			}
			return make([]bool, 3)
		},
	}
	if err := ch.Run([]Pattern{pat}, cfg, hooks); err != nil {
		t.Fatal(err)
	}
	if sawChange {
		t.Error("muxed pseudo-input changed during shifting")
	}
}

func TestPIHoldValues(t *testing.T) {
	c := build3FF(t)
	ch := New(c)
	cfg := Traditional(c)
	cfg.PIHold[0] = logic.One
	cfg.PIHold[1] = logic.X // follow pattern bit
	pat := Pattern{PI: []bool{false, true}, State: []bool{false, false, false}}
	hooks := Hooks{
		ShiftCycle: func(pi, ppi []bool) {
			if pi[0] != true {
				t.Error("held PI 0 not at forced value")
			}
			if pi[1] != true {
				t.Error("X-hold PI 1 should follow the pattern bit")
			}
		},
	}
	if err := ch.Run([]Pattern{pat}, cfg, hooks); err != nil {
		t.Fatal(err)
	}
}

func TestResponseShiftsOut(t *testing.T) {
	// With a capture hook returning a known response, the first shift
	// cycle of the next pattern must expose the response shifted by one.
	c := build3FF(t)
	ch := New(c)
	resp := []bool{true, true, false}
	pats := []Pattern{
		{PI: []bool{false, false}, State: []bool{false, false, false}},
		{PI: []bool{false, false}, State: []bool{false, false, false}},
	}
	cycle := 0
	var firstAfterCapture []bool
	hooks := Hooks{
		ShiftCycle: func(pi, ppi []bool) {
			cycle++
			if cycle == 4 { // first shift of pattern 2
				firstAfterCapture = append([]bool(nil), ppi...)
			}
		},
		Capture: func(pi, ppi []bool) []bool { return resp },
	}
	if err := ch.Run(pats, Traditional(c), hooks); err != nil {
		t.Fatal(err)
	}
	// After one shift: position0 = new bit (false), position1 = old resp
	// at position0 (flop0=true), position2 = old resp at pos1 (flop1=true).
	want := []bool{false, true, true}
	for f, v := range want {
		if firstAfterCapture[f] != v {
			t.Errorf("flop %d after 1 shift = %v, want %v (got %v)", f, firstAfterCapture[f], v, firstAfterCapture)
		}
	}
}

func TestRunValidatesSizes(t *testing.T) {
	c := build3FF(t)
	ch := New(c)
	bad := Pattern{PI: []bool{true}, State: []bool{false, false, false}}
	if err := ch.Run([]Pattern{bad}, Traditional(c), Hooks{}); err == nil {
		t.Error("accepted short PI vector")
	}
	cfg := Traditional(c)
	cfg.PIHold = cfg.PIHold[:1]
	good := Pattern{PI: []bool{true, false}, State: []bool{false, false, false}}
	if err := ch.Run([]Pattern{good}, cfg, Hooks{}); err == nil {
		t.Error("accepted bad config")
	}
	cfg2 := Traditional(c)
	badCap := Hooks{Capture: func(pi, ppi []bool) []bool { return nil }}
	if err := ch.Run([]Pattern{good}, cfg2, badCap); err == nil {
		t.Error("accepted short capture response")
	}
}

func TestMuxCount(t *testing.T) {
	c := build3FF(t)
	cfg := Traditional(c)
	if cfg.MuxCount() != 0 {
		t.Error("fresh config has muxes")
	}
	cfg.Muxed[0] = true
	cfg.Muxed[2] = true
	if cfg.MuxCount() != 2 {
		t.Errorf("MuxCount = %d, want 2", cfg.MuxCount())
	}
}

func TestNoPatternsNoCycles(t *testing.T) {
	c := build3FF(t)
	ch := New(c)
	cycles := 0
	hooks := Hooks{ShiftCycle: func(pi, ppi []bool) { cycles++ }}
	if err := ch.Run(nil, Traditional(c), hooks); err != nil {
		t.Fatal(err)
	}
	if cycles != 0 {
		t.Errorf("empty run produced %d cycles", cycles)
	}
}
