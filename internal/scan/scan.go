// Package scan models full-scan test application: the scan chain threaded
// through every flip-flop, the shift/capture protocol of test-per-scan
// schemes, and the behaviour of the combinational inputs during shifting
// under the three structures compared in the paper:
//
//   - traditional scan: every pseudo-input follows the moving chain
//     contents; primary inputs hold the test's PI bits;
//   - input control (Huang & Lee): as traditional, but the primary inputs
//     hold a computed transition-blocking pattern during shifting;
//   - the proposed structure: additionally, the pseudo-inputs that
//     received a scan-mode MUX are frozen at chosen constants while the
//     chain shifts behind them (select line = Shift Enable).
package scan

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Pattern is one scan test: the primary-input bits applied at capture (and
// held during shift under traditional scan) and the state to be loaded
// into the flip-flops, indexed in netlist FF order.
type Pattern struct {
	PI    []bool
	State []bool
}

// Chain is a scan chain over every flip-flop of a circuit.
type Chain struct {
	c *netlist.Circuit
	// Order[p] is the FF index at chain position p; position 0 is nearest
	// the scan input, position len-1 drives the scan output.
	Order []int
	pos   []int // pos[ffIndex] = chain position
}

// New threads a chain through the flops in netlist order.
func New(c *netlist.Circuit) *Chain {
	order := make([]int, c.NumFFs())
	for i := range order {
		order[i] = i
	}
	ch, _ := NewWithOrder(c, order)
	return ch
}

// NewWithOrder threads the chain in the given FF order (a permutation of
// 0..NumFFs-1).
func NewWithOrder(c *netlist.Circuit, order []int) (*Chain, error) {
	if len(order) != c.NumFFs() {
		return nil, fmt.Errorf("scan: order has %d entries for %d flops", len(order), c.NumFFs())
	}
	pos := make([]int, len(order))
	for i := range pos {
		pos[i] = -1
	}
	for p, ff := range order {
		if ff < 0 || ff >= len(order) || pos[ff] != -1 {
			return nil, fmt.Errorf("scan: order is not a permutation (entry %d = %d)", p, ff)
		}
		pos[ff] = p
	}
	return &Chain{c: c, Order: append([]int(nil), order...), pos: pos}, nil
}

// Circuit returns the underlying circuit.
func (ch *Chain) Circuit() *netlist.Circuit { return ch.c }

// Length returns the number of scan cells.
func (ch *Chain) Length() int { return len(ch.Order) }

// PositionOf returns the chain position of flop ff.
func (ch *Chain) PositionOf(ff int) int { return ch.pos[ff] }

// ShiftConfig describes how the combinational inputs behave while the
// chain shifts.
type ShiftConfig struct {
	// PIHold[i] is the value held on primary input i during shifting;
	// logic.X means "hold the current pattern's PI bit" (traditional ATE
	// behaviour).
	PIHold []logic.Value
	// Muxed[f] reports whether flop f's output has a scan-mode MUX; if so
	// MuxVal[f] is the constant seen by the combinational logic during
	// shifting.
	Muxed  []bool
	MuxVal []bool
}

// Traditional returns the plain scan structure for circuit c: no MUXes,
// PIs hold the pattern bits.
func Traditional(c *netlist.Circuit) ShiftConfig {
	return ShiftConfig{
		PIHold: make([]logic.Value, len(c.PIs)), // all X
		Muxed:  make([]bool, c.NumFFs()),
		MuxVal: make([]bool, c.NumFFs()),
	}
}

// Validate checks cfg against circuit c.
func (cfg *ShiftConfig) Validate(c *netlist.Circuit) error {
	if len(cfg.PIHold) != len(c.PIs) {
		return fmt.Errorf("scan: PIHold has %d entries for %d PIs", len(cfg.PIHold), len(c.PIs))
	}
	if len(cfg.Muxed) != c.NumFFs() || len(cfg.MuxVal) != c.NumFFs() {
		return fmt.Errorf("scan: Muxed/MuxVal sized %d/%d for %d flops",
			len(cfg.Muxed), len(cfg.MuxVal), c.NumFFs())
	}
	return nil
}

// MuxCount returns the number of multiplexed flops.
func (cfg *ShiftConfig) MuxCount() int {
	n := 0
	for _, m := range cfg.Muxed {
		if m {
			n++
		}
	}
	return n
}

// Hooks receive the simulation events of Run. Either hook may be nil.
type Hooks struct {
	// ShiftCycle is called once per shift clock with the combinational
	// input values seen by the logic during that cycle: pi in PI order,
	// ppi in FF order (already accounting for MUX freezing). The slices
	// are reused across calls; copy to retain.
	ShiftCycle func(pi, ppi []bool)
	// Capture is called at each capture clock with the inputs applied
	// (pattern PI bits, fully loaded state). It must return the
	// next-state response of the combinational logic in FF order (the
	// simulator's job); Run loads it into the chain so the following
	// shift-out carries realistic response data.
	Capture func(pi, ppi []bool) []bool
	// Stop, when non-nil, is consulted before each pattern; a non-nil
	// return aborts Run with that error. Power measurement wires a
	// context's Err here so long runs stay cancellable.
	Stop func() error
}

// Run applies the patterns through the chain: for each pattern, Length()
// shift cycles (during which the previous response shifts out as the new
// state shifts in) followed by one capture; after the last pattern the
// final response is flushed out with zero fill. The initial chain content
// is all zeros.
//
// Run reports, via hooks, exactly what the combinational logic sees each
// cycle; it performs no power accounting itself.
func (ch *Chain) Run(patterns []Pattern, cfg ShiftConfig, hooks Hooks) error {
	c := ch.c
	if err := cfg.Validate(c); err != nil {
		return err
	}
	for pi, p := range patterns {
		if len(p.PI) != len(c.PIs) || len(p.State) != c.NumFFs() {
			return fmt.Errorf("scan: pattern %d sized %d/%d, want %d/%d",
				pi, len(p.PI), len(p.State), len(c.PIs), c.NumFFs())
		}
	}
	L := ch.Length()
	chain := make([]bool, L) // chain[p] = content at position p
	piVals := make([]bool, len(c.PIs))
	ppiVals := make([]bool, c.NumFFs())

	emit := func(patPI []bool) {
		if hooks.ShiftCycle == nil {
			return
		}
		for i := range piVals {
			switch cfg.PIHold[i] {
			case logic.Zero:
				piVals[i] = false
			case logic.One:
				piVals[i] = true
			default:
				piVals[i] = patPI[i]
			}
		}
		for f := 0; f < c.NumFFs(); f++ {
			if cfg.Muxed[f] {
				ppiVals[f] = cfg.MuxVal[f]
			} else {
				ppiVals[f] = chain[ch.pos[f]]
			}
		}
		hooks.ShiftCycle(piVals, ppiVals)
	}

	shiftOne := func(inBit bool) {
		for p := L - 1; p > 0; p-- {
			chain[p] = chain[p-1]
		}
		if L > 0 {
			chain[0] = inBit
		}
	}

	for _, pat := range patterns {
		if hooks.Stop != nil {
			if err := hooks.Stop(); err != nil {
				return err
			}
		}
		// Shift in the new state (old content — previous response —
		// shifts out). The bit destined for the flop at chain position
		// L-1-t enters at shift t.
		for t := 0; t < L; t++ {
			shiftOne(pat.State[ch.Order[L-1-t]])
			emit(pat.PI)
		}
		// Capture.
		if hooks.Capture != nil {
			for f := 0; f < c.NumFFs(); f++ {
				ppiVals[f] = chain[ch.pos[f]]
			}
			resp := hooks.Capture(pat.PI, ppiVals)
			if len(resp) != c.NumFFs() {
				return fmt.Errorf("scan: capture hook returned %d bits for %d flops",
					len(resp), c.NumFFs())
			}
			for f, v := range resp {
				chain[ch.pos[f]] = v
			}
		}
	}
	// Flush the last response; the tester keeps the last pattern's PI
	// values applied while zeros fill the chain.
	if len(patterns) > 0 {
		lastPI := patterns[len(patterns)-1].PI
		for t := 0; t < L; t++ {
			shiftOne(false)
			emit(lastPI)
		}
	}
	return nil
}

// LoadedState returns what each flop holds after shifting in pattern p:
// by construction, exactly p.State. Exposed for tests documenting the
// stream-order convention.
func (ch *Chain) LoadedState(p Pattern) []bool {
	out := make([]bool, ch.Length())
	copy(out, p.State)
	return out
}
