// Package report renders experiment results as aligned text, Markdown,
// CSV, or JSON — one Table type, four writers, so every command emits
// consistent, diffable output.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple rectangular result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; it must match the column count.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("report: row has %d cells for %d columns", len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustAddRow is AddRow that panics on mismatch (for literal tables).
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// Markdown writes the table as GitHub-flavored Markdown.
func (t *Table) Markdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(sep, "|")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table with a header row.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonTable is the serialized form of a Table: rows become objects keyed
// by column header, so consumers need no positional knowledge.
type jsonTable struct {
	Title   string              `json:"title,omitempty"`
	Columns []string            `json:"columns"`
	Rows    []map[string]string `json:"rows"`
}

// WriteJSON writes the table as indented JSON with one object per row,
// keyed by column header — the machine-readable sibling of Text/CSV and
// the form run manifests embed as Results.
func (t *Table) WriteJSON(w io.Writer) error {
	jt := jsonTable{Title: t.Title, Columns: t.Columns, Rows: make([]map[string]string, 0, len(t.Rows))}
	for _, row := range t.Rows {
		m := make(map[string]string, len(row))
		for i, cell := range row {
			m[t.Columns[i]] = cell
		}
		jt.Rows = append(jt.Rows, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// Text writes a column-aligned plain-text rendering.
func (t *Table) Text(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintln(w, t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Format names an output format accepted by Write.
type Format string

// Supported formats.
const (
	FormatText     Format = "text"
	FormatMarkdown Format = "markdown"
	FormatCSV      Format = "csv"
	FormatJSON     Format = "json"
)

// Write renders the table in the named format.
func (t *Table) Write(w io.Writer, f Format) error {
	switch f {
	case FormatText, "":
		return t.Text(w)
	case FormatMarkdown:
		return t.Markdown(w)
	case FormatCSV:
		return t.CSV(w)
	case FormatJSON:
		return t.WriteJSON(w)
	}
	return fmt.Errorf("report: unknown format %q", f)
}
