package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Power", "Circuit", "Dyn", "Static")
	t.MustAddRow("s344", "2.2e-08", "23.2")
	t.MustAddRow("s9234", "8.1e-09", "849.9")
	return t
}

func TestMarkdownGolden(t *testing.T) {
	var sb strings.Builder
	if err := sample().Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	want := `### Power

| Circuit | Dyn | Static |
|---|---|---|
| s344 | 2.2e-08 | 23.2 |
| s9234 | 8.1e-09 | 849.9 |
`
	if sb.String() != want {
		t.Errorf("markdown:\n%q\nwant\n%q", sb.String(), want)
	}
}

func TestCSVGolden(t *testing.T) {
	var sb strings.Builder
	if err := sample().CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "Circuit,Dyn,Static\ns344,2.2e-08,23.2\ns9234,8.1e-09,849.9\n"
	if sb.String() != want {
		t.Errorf("csv:\n%q\nwant\n%q", sb.String(), want)
	}
}

func TestTextGolden(t *testing.T) {
	var sb strings.Builder
	if err := sample().Text(&sb); err != nil {
		t.Fatal(err)
	}
	want := `Power
Circuit  Dyn      Static
s344     2.2e-08  23.2
s9234    8.1e-09  849.9
`
	if sb.String() != want {
		t.Errorf("text:\n%q\nwant\n%q", sb.String(), want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string              `json:"title"`
		Columns []string            `json:"columns"`
		Rows    []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if got.Title != "Power" || len(got.Columns) != 3 || len(got.Rows) != 2 {
		t.Errorf("round-trip = %+v", got)
	}
	if got.Rows[1]["Circuit"] != "s9234" || got.Rows[1]["Static"] != "849.9" {
		t.Errorf("row keyed by column header wrong: %+v", got.Rows[1])
	}
}

func TestJSONEmptyRows(t *testing.T) {
	var sb strings.Builder
	if err := New("t", "a").WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"rows": []`) {
		t.Errorf("empty table must serialize rows as [], got %s", sb.String())
	}
}

func TestAddRowValidates(t *testing.T) {
	tb := New("x", "a", "b")
	if err := tb.AddRow("only one"); err == nil {
		t.Error("accepted short row")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow did not panic")
		}
	}()
	tb.MustAddRow("1", "2", "3")
}

func TestWriteFormats(t *testing.T) {
	for _, f := range []Format{FormatText, FormatMarkdown, FormatCSV, FormatJSON, ""} {
		var sb strings.Builder
		if err := sample().Write(&sb, f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
		if sb.Len() == 0 {
			t.Errorf("format %q produced nothing", f)
		}
	}
	var sb strings.Builder
	if err := sample().Write(&sb, "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := New("", "a")
	tb.MustAddRow(`comma, and "quote"`)
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"comma, and ""quote"""`) {
		t.Errorf("csv escaping wrong: %q", sb.String())
	}
}
