package techmap

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

const s27 = `INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

func TestMapS27(t *testing.T) {
	c, err := bench.ParseString(s27, "s27")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(c, DefaultOptions())
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if !IsMapped(m, 4) {
		t.Fatal("result is not library-only")
	}
	rng := rand.New(rand.NewSource(1))
	if err := sim.Equivalent(c, m, 500, rng); err != nil {
		t.Fatalf("mapped circuit not equivalent: %v", err)
	}
	// Mapping must preserve the interface exactly.
	if len(m.PIs) != 4 || len(m.POs) != 1 || len(m.FFs) != 3 {
		t.Fatalf("interface changed: %v", m.ComputeStats())
	}
}

// buildOneGate builds a circuit with a single gate of type t and arity n.
func buildOneGate(t *testing.T, gt logic.GateType, n int) *netlist.Circuit {
	t.Helper()
	c := netlist.New(fmt.Sprintf("%v%d", gt, n))
	ins := make([]string, n)
	for i := range ins {
		ins[i] = fmt.Sprintf("i%d", i)
		c.AddPI(ins[i])
	}
	c.AddGate(gt, "o", ins...)
	c.MarkPO("o")
	c.MustFreeze()
	return c
}

func TestMapEveryGateTypeAndArity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, gt := range []logic.GateType{logic.And, logic.Or, logic.Nand,
		logic.Nor, logic.Xor, logic.Xnor} {
		for n := 2; n <= 9; n++ {
			c := buildOneGate(t, gt, n)
			m, err := Map(c, DefaultOptions())
			if err != nil {
				t.Fatalf("Map(%v/%d): %v", gt, n, err)
			}
			if !IsMapped(m, 4) {
				t.Fatalf("%v/%d not mapped to library", gt, n)
			}
			// Exhaustive equivalence for n <= 9 via full enumeration.
			if err := exhaustiveEquiv(c, m); err != nil {
				t.Fatalf("%v/%d: %v", gt, n, err)
			}
			_ = rng
		}
	}
	for _, gt := range []logic.GateType{logic.Not, logic.Buf} {
		c := buildOneGate(t, gt, 1)
		m, err := Map(c, DefaultOptions())
		if err != nil {
			t.Fatalf("Map(%v): %v", gt, err)
		}
		if err := exhaustiveEquiv(c, m); err != nil {
			t.Fatalf("%v: %v", gt, err)
		}
	}
}

// exhaustiveEquiv compares two pure-combinational circuits with identical
// PI name sets over the full input space (use only for small PI counts).
func exhaustiveEquiv(a, b *netlist.Circuit) error {
	sa, sb := sim.New(a), sim.New(b)
	n := len(a.PIs)
	pia := make([]bool, n)
	pib := make([]bool, n)
	// b's PI order may differ; build map by name.
	idx := make(map[string]int)
	for i, p := range b.PIs {
		idx[b.Nets[p].Name] = i
	}
	for bits := 0; bits < 1<<n; bits++ {
		for i := 0; i < n; i++ {
			v := bits>>i&1 == 1
			pia[i] = v
			pib[idx[a.Nets[a.PIs[i]].Name]] = v
		}
		sta := sa.Eval(pia, nil)
		stb := sb.Eval(pib, nil)
		for _, po := range a.POs {
			name := a.Nets[po].Name
			pob, ok := b.NetByName(name)
			if !ok {
				return fmt.Errorf("output %s missing in mapped circuit", name)
			}
			if sta[po] != stb[pob] {
				return fmt.Errorf("input %0*b: output %s differs", n, bits, name)
			}
		}
	}
	return nil
}

func TestMapMux2Passthrough(t *testing.T) {
	c := netlist.New("mux")
	c.AddPI("d0")
	c.AddPI("d1")
	c.AddPI("se")
	c.AddGate(logic.Mux2, "y", "d0", "d1", "se")
	c.MarkPO("y")
	c.MustFreeze()
	m, err := Map(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumGates() != 1 || m.Gates[0].Type != logic.Mux2 {
		t.Fatalf("MUX2 was not passed through: %v", m.ComputeStats())
	}
}

func TestMapWideFaninTree(t *testing.T) {
	c := buildOneGate(t, logic.Nand, 16)
	m, err := Map(c, Options{MaxFanin: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !IsMapped(m, 4) {
		t.Fatal("wide NAND not split to fanin<=4")
	}
	rng := rand.New(rand.NewSource(3))
	if err := sim.Equivalent(c, m, 2000, rng); err != nil {
		t.Fatalf("wide NAND tree wrong: %v", err)
	}
	// The all-ones corner (only vector where NAND output is 0) must work.
	ones := make([]bool, 16)
	for i := range ones {
		ones[i] = true
	}
	if out := sim.New(m).Eval(ones, nil); out[m.POs[0]] {
		t.Error("NAND16(1...1) != 0 after mapping")
	}
}

func TestMapMaxFanin2(t *testing.T) {
	c := buildOneGate(t, logic.Nor, 7)
	m, err := Map(c, Options{MaxFanin: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !IsMapped(m, 2) {
		t.Fatal("not mapped to fanin<=2")
	}
	if err := exhaustiveEquiv(c, m); err != nil {
		t.Fatal(err)
	}
}

func TestMapRejectsBadOptions(t *testing.T) {
	c := buildOneGate(t, logic.Nand, 2)
	if _, err := Map(c, Options{MaxFanin: 1}); err == nil {
		t.Fatal("Map accepted MaxFanin=1")
	}
}

func TestIsMapped(t *testing.T) {
	c := buildOneGate(t, logic.And, 2)
	if IsMapped(c, 4) {
		t.Error("AND reported as mapped")
	}
	w := buildOneGate(t, logic.Nand, 6)
	if IsMapped(w, 4) {
		t.Error("NAND6 reported as mapped at fanin limit 4")
	}
	if !IsMapped(buildOneGate(t, logic.Nand, 4), 4) {
		t.Error("NAND4 not accepted")
	}
}

func TestFreshNetsDoNotCollide(t *testing.T) {
	// A source circuit that already uses _tm-style names must not collide
	// with mapper-generated nets: mapper names are unique per instance, and
	// ensureNet would silently merge. Guard: mapped circuit must freeze and
	// stay equivalent.
	src := `INPUT(a)
INPUT(b)
OUTPUT(_tm1)
_tm1 = AND(a, b)
`
	c, err := bench.ParseString(src, "collide")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(c, DefaultOptions())
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if err := exhaustiveEquiv(c, m); err != nil {
		t.Fatalf("collision broke equivalence: %v", err)
	}
}

func TestMapGrowthBounded(t *testing.T) {
	c, _ := bench.ParseString(s27, "s27")
	m, err := Map(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumGates() > 4*c.NumGates() {
		t.Errorf("mapping grew s27 from %d to %d gates", c.NumGates(), m.NumGates())
	}
	if !strings.Contains(m.Name, "s27") {
		t.Error("mapped circuit lost its name")
	}
}
