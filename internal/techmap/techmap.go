// Package techmap maps arbitrary gate-level circuits onto the cell
// library used throughout the paper's evaluation: NAND (2–4 inputs),
// NOR (2–4 inputs) and inverters. AND, OR, XOR, XNOR and BUF gates are
// decomposed; NAND/NOR gates wider than the library limit are split into
// balanced trees.
//
// The transformation is function-preserving by construction and covered
// by random-simulation equivalence tests.
package techmap

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Options configures the mapper.
type Options struct {
	// MaxFanin is the widest NAND/NOR the library offers (default 4).
	MaxFanin int
}

// DefaultOptions returns the library limits used by all experiments.
func DefaultOptions() Options { return Options{MaxFanin: 4} }

type mapper struct {
	src  *netlist.Circuit
	dst  *netlist.Circuit
	opts Options
	tmp  int // fresh-net counter
}

// Map returns a new circuit computing the same functions as c using only
// NAND, NOR and NOT gates of fanin <= opts.MaxFanin. The input circuit is
// not modified. MUX2 gates (scan-mode DFT cells) pass through unchanged:
// they are a dedicated library cell, not subject to decomposition.
func Map(c *netlist.Circuit, opts Options) (*netlist.Circuit, error) {
	if opts.MaxFanin < 2 {
		return nil, fmt.Errorf("techmap: MaxFanin %d < 2", opts.MaxFanin)
	}
	if !c.Frozen() {
		if err := c.Freeze(); err != nil {
			return nil, err
		}
	}
	m := &mapper{src: c, dst: netlist.New(c.Name), opts: opts}
	for _, pi := range c.PIs {
		m.dst.AddPI(c.Nets[pi].Name)
	}
	for _, ff := range c.FFs {
		m.dst.AddFF(ff.Name, c.Nets[ff.Q].Name, c.Nets[ff.D].Name)
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		ins := make([]string, len(g.Inputs))
		for i, in := range g.Inputs {
			ins[i] = c.Nets[in].Name
		}
		out := c.Nets[g.Output].Name
		if err := m.emit(g.Type, out, ins); err != nil {
			return nil, err
		}
	}
	for _, po := range c.POs {
		m.dst.MarkPO(c.Nets[po].Name)
	}
	if err := m.dst.Freeze(); err != nil {
		return nil, fmt.Errorf("techmap: result malformed: %w", err)
	}
	return m.dst, nil
}

// fresh returns a new internal net name that collides with nothing in the
// source circuit (every non-fresh name in dst comes from src, so checking
// src suffices).
func (m *mapper) fresh() string {
	for {
		m.tmp++
		name := fmt.Sprintf("_tm%d", m.tmp)
		if _, ok := m.src.NetByName(name); !ok {
			return name
		}
	}
}

// emit writes gates computing out = type(ins) into dst using library cells.
func (m *mapper) emit(t logic.GateType, out string, ins []string) error {
	switch t {
	case logic.Not:
		m.dst.AddGate(logic.Not, out, ins[0])
	case logic.Buf:
		// BUF has no library cell: two inverters.
		n := m.fresh()
		m.dst.AddGate(logic.Not, n, ins[0])
		m.dst.AddGate(logic.Not, out, n)
	case logic.Nand:
		m.emitNary(logic.Nand, out, ins)
	case logic.Nor:
		m.emitNary(logic.Nor, out, ins)
	case logic.And:
		n := m.fresh()
		m.emitNary(logic.Nand, n, ins)
		m.dst.AddGate(logic.Not, out, n)
	case logic.Or:
		n := m.fresh()
		m.emitNary(logic.Nor, n, ins)
		m.dst.AddGate(logic.Not, out, n)
	case logic.Xor:
		m.emitXorChain(out, ins, false)
	case logic.Xnor:
		m.emitXorChain(out, ins, true)
	case logic.Mux2:
		m.dst.AddGate(logic.Mux2, out, ins...)
	default:
		return fmt.Errorf("techmap: unsupported gate type %v", t)
	}
	return nil
}

// emitNary emits out = t(ins) where t is NAND or NOR, splitting wide gates
// into trees. For a wide NAND: NAND(a1..an) = NAND(AND(first half),
// AND(second half)); each half's AND is NAND+INV. Symmetrically for NOR.
func (m *mapper) emitNary(t logic.GateType, out string, ins []string) {
	if len(ins) == 1 {
		// Degenerate single-input NAND/NOR is an inverter.
		m.dst.AddGate(logic.Not, out, ins[0])
		return
	}
	if len(ins) <= m.opts.MaxFanin {
		m.dst.AddGate(t, out, ins...)
		return
	}
	// Split into up to MaxFanin groups, reduce each group to its
	// non-inverted sub-result (AND for NAND, OR for NOR), then apply one
	// final library gate across the group results.
	groups := splitGroups(ins, m.opts.MaxFanin)
	tops := make([]string, len(groups))
	for i, grp := range groups {
		if len(grp) == 1 {
			tops[i] = grp[0]
			continue
		}
		inv := m.fresh() // t(grp)
		m.emitNary(t, inv, grp)
		pos := m.fresh() // AND(grp) or OR(grp)
		m.dst.AddGate(logic.Not, pos, inv)
		tops[i] = pos
	}
	m.emitNary(t, out, tops)
}

// splitGroups partitions ins into at most maxFanin groups as evenly as
// possible, each of size >= 1.
func splitGroups(ins []string, maxFanin int) [][]string {
	n := len(ins)
	k := maxFanin
	if k > n {
		k = n
	}
	groups := make([][]string, 0, k)
	base := n / k
	extra := n % k
	idx := 0
	for g := 0; g < k; g++ {
		size := base
		if g < extra {
			size++
		}
		groups = append(groups, ins[idx:idx+size])
		idx += size
	}
	return groups
}

// emitXorChain reduces a multi-input XOR/XNOR pairwise. Each 2-input XOR
// uses the classic four-NAND network; a trailing inverter turns the final
// stage into XNOR when invert is true.
func (m *mapper) emitXorChain(out string, ins []string, invert bool) {
	acc := ins[0]
	for i := 1; i < len(ins); i++ {
		last := i == len(ins)-1
		var target string
		if last && !invert {
			target = out
		} else {
			target = m.fresh()
		}
		m.emitXor2(target, acc, ins[i])
		acc = target
	}
	if invert {
		m.dst.AddGate(logic.Not, out, acc)
	}
	if len(ins) == 1 {
		// Degenerate 1-input XOR is a buffer (or inverter for XNOR);
		// handled here for completeness.
		if invert {
			// already emitted NOT(acc) above — nothing more to do.
			return
		}
		n := m.fresh()
		m.dst.AddGate(logic.Not, n, acc)
		m.dst.AddGate(logic.Not, out, n)
	}
}

// emitXor2 emits out = a XOR b as four NAND2 gates.
func (m *mapper) emitXor2(out, a, b string) {
	n1 := m.fresh()
	n2 := m.fresh()
	n3 := m.fresh()
	m.dst.AddGate(logic.Nand, n1, a, b)
	m.dst.AddGate(logic.Nand, n2, a, n1)
	m.dst.AddGate(logic.Nand, n3, b, n1)
	m.dst.AddGate(logic.Nand, out, n2, n3)
}

// IsMapped reports whether the circuit uses only library cells: NAND/NOR
// with fanin within maxFanin, inverters, and MUX2 DFT cells.
func IsMapped(c *netlist.Circuit, maxFanin int) bool {
	for i := range c.Gates {
		g := &c.Gates[i]
		switch g.Type {
		case logic.Not, logic.Mux2:
		case logic.Nand, logic.Nor:
			if len(g.Inputs) > maxFanin {
				return false
			}
		default:
			return false
		}
	}
	return true
}
