package sim

import (
	"math/rand"
	"testing"

	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// buildAllGates covers every gate type and arity the library emits.
func buildAllGates(t testing.TB) *netlist.Circuit {
	t.Helper()
	c := netlist.New("allgates")
	c.AddPI("a")
	c.AddPI("b")
	c.AddPI("s")
	c.AddFF("f0", "q0", "d0")
	c.AddGate(logic.Buf, "n_buf", "a")
	c.AddGate(logic.Not, "n_not", "b")
	c.AddGate(logic.And, "n_and", "a", "b", "q0")
	c.AddGate(logic.Nand, "n_nand", "a", "n_buf", "n_not")
	c.AddGate(logic.Or, "n_or", "n_and", "b")
	c.AddGate(logic.Nor, "n_nor", "n_or", "q0")
	c.AddGate(logic.Xor, "n_xor", "a", "b", "s")
	c.AddGate(logic.Xnor, "n_xnor", "n_xor", "n_nand")
	c.AddGate(logic.Mux2, "d0", "n_nor", "n_xnor", "s")
	c.MarkPO("d0")
	c.MustFreeze()
	return c
}

// TestPackedMatchesScalar: each lane of a packed evaluation must equal the
// scalar simulator's result for that lane's inputs, on every net.
func TestPackedMatchesScalar(t *testing.T) {
	circuits := []*netlist.Circuit{buildAllGates(t)}
	if p, ok := iscas.ByName("s344"); ok {
		c, err := iscas.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		circuits = append(circuits, c)
	}
	rng := rand.New(rand.NewSource(7))
	for _, c := range circuits {
		ps := NewPacked(c)
		ss := New(c)
		piW := make([]uint64, len(c.PIs))
		ppiW := make([]uint64, c.NumFFs())
		for i := range piW {
			piW[i] = rng.Uint64()
		}
		for i := range ppiW {
			ppiW[i] = rng.Uint64()
		}
		words := ps.Eval(piW, ppiW)
		pi := make([]bool, len(c.PIs))
		ppi := make([]bool, c.NumFFs())
		for lane := 0; lane < PackedLanes; lane++ {
			for i := range pi {
				pi[i] = piW[i]>>uint(lane)&1 == 1
			}
			for i := range ppi {
				ppi[i] = ppiW[i]>>uint(lane)&1 == 1
			}
			st := ss.Eval(pi, ppi)
			for ni, v := range st {
				if got := words[ni]>>uint(lane)&1 == 1; got != v {
					t.Fatalf("%s: lane %d net %s: packed %v, scalar %v",
						c.Name, lane, c.Nets[ni].Name, got, v)
				}
			}
		}
	}
}

// TestPackedInputLengthPanics pins the misuse contract shared with the
// scalar simulator.
func TestPackedInputLengthPanics(t *testing.T) {
	c := buildAllGates(t)
	ps := NewPacked(c)
	defer func() {
		if recover() == nil {
			t.Error("short input slice accepted")
		}
	}()
	ps.Eval(make([]uint64, 1), make([]uint64, c.NumFFs()))
}
