package sim

import (
	"fmt"

	"repro/internal/netlist"
)

// Wide evaluates the combinational core of a frozen circuit 256 lanes at
// a time: every net carries WideWords (4) uint64 words, and lane t lives
// at bit t&63 of word t>>6 of the net's group. It executes the same
// compiled program as Packed through the same generic kernel — only the
// lane-group width differs — so bit t of every output group equals
// exactly what Simulator.Eval computes for that lane's scalar inputs.
// Not safe for concurrent use; create one per goroutine (the Program may
// be shared via NewWideProgram).
type Wide struct {
	p *Program
	v []uint64 // per-net lane groups, net n at v[n*WideWords:(n+1)*WideWords]
}

// NewWide returns a wide simulator bound to the frozen circuit c,
// compiling it first.
func NewWide(c *netlist.Circuit) *Wide {
	if !c.Frozen() {
		panic(fmt.Sprintf("sim: NewWide needs a frozen circuit (circuit %q is not frozen)", c.Name))
	}
	return NewWideProgram(Compile(c))
}

// NewWideProgram returns a wide simulator executing the already compiled
// program p with its own lane state.
func NewWideProgram(p *Program) *Wide {
	return &Wide{p: p, v: make([]uint64, p.c.NumNets()*WideWords)}
}

// Circuit returns the simulated circuit.
func (w *Wide) Circuit() *netlist.Circuit { return w.p.c }

// Program returns the compiled program the simulator executes.
func (w *Wide) Program() *Program { return w.p }

// Lanes returns the lane width (WideLanes).
func (w *Wide) Lanes() int { return WideLanes }

// Words returns the uint64 words carried per net (WideWords).
func (w *Wide) Words() int { return WideWords }

// Eval evaluates the combinational core across all 256 lanes. pi holds
// the primary-input lane groups (WideWords words per PI, flat, in
// netlist.Circuit.PIs order), ppi the flip-flop output groups in FF
// order. The returned slice holds WideWords words per net, net n at
// [n*WideWords : (n+1)*WideWords]; it is owned by the simulator and
// overwritten by the next Eval call.
func (w *Wide) Eval(pi, ppi []uint64) []uint64 {
	c := w.p.c
	if len(pi) != len(c.PIs)*WideWords {
		panic(fmt.Sprintf("sim: wide Eval on circuit %q: got %d primary-input words, want %d PIs x %d = %d",
			c.Name, len(pi), len(c.PIs), WideWords, len(c.PIs)*WideWords))
	}
	if len(ppi) != len(c.FFs)*WideWords {
		panic(fmt.Sprintf("sim: wide Eval on circuit %q: got %d pseudo-input words, want %d FFs x %d = %d",
			c.Name, len(ppi), len(c.FFs), WideWords, len(c.FFs)*WideWords))
	}
	v := w.v
	for i, n := range c.PIs {
		copy(v[int(n)*WideWords:int(n)*WideWords+WideWords], pi[i*WideWords:])
	}
	for i, ff := range c.FFs {
		copy(v[int(ff.Q)*WideWords:int(ff.Q)*WideWords+WideWords], ppi[i*WideWords:])
	}
	runProg4(w.p, v)
	return v
}

// Wide3 is the 256-lane three-valued twin of Packed3: dual-rail
// normalized encoding with WideWords words per net on each rail,
// executing the shared compiled program. It holds no lane state, so one
// instance may be shared across goroutines.
type Wide3 struct {
	p *Program
}

// NewWide3 returns a wide three-valued evaluator bound to the frozen
// circuit c, compiling it first.
func NewWide3(c *netlist.Circuit) *Wide3 {
	if !c.Frozen() {
		panic(fmt.Sprintf("sim: NewWide3 needs a frozen circuit (circuit %q is not frozen)", c.Name))
	}
	return NewWide3Program(Compile(c))
}

// NewWide3Program returns a wide three-valued evaluator executing the
// already compiled program p.
func NewWide3Program(p *Program) *Wide3 { return &Wide3{p: p} }

// Circuit returns the evaluated circuit.
func (w *Wide3) Circuit() *netlist.Circuit { return w.p.c }

// Program returns the compiled program the evaluator executes.
func (w *Wide3) Program() *Program { return w.p }

// Lanes returns the lane width (WideLanes).
func (w *Wide3) Lanes() int { return WideLanes }

// EvalNets recomputes every gate-output (v, x) group in place from the
// caller-set PI and pseudo-input groups. v and x each hold WideWords
// words per net, length NumNets*WideWords.
func (w *Wide3) EvalNets(v, x []uint64) {
	c := w.p.c
	nw := c.NumNets() * WideWords
	if len(v) != nw || len(x) != nw {
		panic(fmt.Sprintf("sim: wide3 EvalNets on circuit %q: got v=%d x=%d words, want %d nets x %d = %d",
			c.Name, len(v), len(x), c.NumNets(), WideWords, nw))
	}
	runProg3w4(w.p, v, x)
}
