package sim

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Packed3 evaluates the combinational core of a frozen circuit in
// three-valued logic, 64 lanes at a time, using a dual-rail encoding: net
// n carries two uint64 words, v[n] and x[n]. Bit t of x[n] set means the
// net is X (unknown) in lane t; otherwise bit t of v[n] is its binary
// value. The encoding is normalized — v bits are always clear where the
// matching x bit is set — and every gate operation preserves that
// invariant.
//
// Bit t of every output (v, x) pair equals exactly what logic.Eval would
// compute for the scalar three-valued inputs at bit t, including the
// optimistic rules (a controlling value forces the output through X side
// inputs; MUX2 with an X select still resolves when both data inputs
// agree on a binary value). The packed minimum-leakage fill rides on this
// to evaluate 64 candidate completions per pass of the compiled program
// while free pseudo-inputs stay X.
type Packed3 struct {
	p *Program
}

// NewPacked3 returns a packed three-valued evaluator bound to the frozen
// circuit c, compiling it first. It holds no lane state — EvalNets works
// in caller-owned word slices — so one instance may be shared across
// goroutines. To share an existing compiled program, use
// NewPacked3Program.
func NewPacked3(c *netlist.Circuit) *Packed3 {
	if !c.Frozen() {
		panic(fmt.Sprintf("sim: NewPacked3 needs a frozen circuit (circuit %q is not frozen)", c.Name))
	}
	return NewPacked3Program(Compile(c))
}

// NewPacked3Program returns a packed three-valued evaluator executing the
// already compiled program p.
func NewPacked3Program(p *Program) *Packed3 { return &Packed3{p: p} }

// Circuit returns the evaluated circuit.
func (p *Packed3) Circuit() *netlist.Circuit { return p.p.c }

// Program returns the compiled program the evaluator executes.
func (p *Packed3) Program() *Program { return p.p }

// Lanes returns the lane width (PackedLanes).
func (p *Packed3) Lanes() int { return PackedLanes }

// EvalNets evaluates the combinational core from an arbitrary per-net
// lane assignment: the caller must set (v[n], x[n]) for every PI and
// pseudo-input net n — normalized, v&x == 0 — and every gate-output entry
// is recomputed in place in instruction order. v and x must both have
// length NumNets.
func (p *Packed3) EvalNets(v, x []uint64) {
	c := p.p.c
	if len(v) != c.NumNets() || len(x) != c.NumNets() {
		panic(fmt.Sprintf("sim: packed3 EvalNets on circuit %q: got v=%d x=%d words, want %d nets",
			c.Name, len(v), len(x), c.NumNets()))
	}
	runProg3w1(p.p, v, x)
}

// PackValue sets lane t of the (v, x) pair for one net to the three-valued
// value val, keeping the encoding normalized.
func PackValue(v, x *uint64, t int, val logic.Value) {
	bit := uint64(1) << uint(t)
	switch val {
	case logic.One:
		*v |= bit
		*x &^= bit
	case logic.Zero:
		*v &^= bit
		*x &^= bit
	default:
		*v &^= bit
		*x |= bit
	}
}

// UnpackValue reads lane t of a (v, x) pair back as a three-valued value.
func UnpackValue(v, x uint64, t int) logic.Value {
	bit := uint64(1) << uint(t)
	if x&bit != 0 {
		return logic.X
	}
	if v&bit != 0 {
		return logic.One
	}
	return logic.Zero
}
