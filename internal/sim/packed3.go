package sim

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Packed3 evaluates the combinational core of a frozen circuit in
// three-valued logic, 64 lanes at a time, using a dual-rail encoding: net
// n carries two uint64 words, v[n] and x[n]. Bit t of x[n] set means the
// net is X (unknown) in lane t; otherwise bit t of v[n] is its binary
// value. The encoding is normalized — v bits are always clear where the
// matching x bit is set — and every gate operation preserves that
// invariant.
//
// Bit t of every output (v, x) pair equals exactly what logic.Eval would
// compute for the scalar three-valued inputs at bit t, including the
// optimistic rules (a controlling value forces the output through X side
// inputs; MUX2 with an X select still resolves when both data inputs
// agree on a binary value). The packed minimum-leakage fill rides on this
// to evaluate 64 candidate completions per topological pass while free
// pseudo-inputs stay X.
type Packed3 struct {
	c *netlist.Circuit
}

// NewPacked3 returns a packed three-valued evaluator bound to the frozen
// circuit c. It holds no lane state — EvalNets works in caller-owned
// word slices — so one instance may be shared across goroutines.
func NewPacked3(c *netlist.Circuit) *Packed3 {
	if !c.Frozen() {
		panic("sim: circuit must be frozen")
	}
	return &Packed3{c: c}
}

// Circuit returns the evaluated circuit.
func (p *Packed3) Circuit() *netlist.Circuit { return p.c }

// EvalNets evaluates the combinational core from an arbitrary per-net
// lane assignment: the caller must set (v[n], x[n]) for every PI and
// pseudo-input net n — normalized, v&x == 0 — and every gate-output entry
// is recomputed in place in topological order. v and x must both have
// length NumNets.
func (p *Packed3) EvalNets(v, x []uint64) {
	c := p.c
	if len(v) != c.NumNets() || len(x) != c.NumNets() {
		panic("sim: packed3 EvalNets length mismatch")
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		ins := g.Inputs
		var ov, ox uint64
		switch g.Type {
		case logic.Buf:
			ov, ox = v[ins[0]], x[ins[0]]
		case logic.Not:
			ox = x[ins[0]]
			ov = ^v[ins[0]] &^ ox
		case logic.And, logic.Nand:
			// one: every input known 1. zero: some input known 0.
			one := v[ins[0]]
			zero := ^x[ins[0]] &^ v[ins[0]]
			for _, in := range ins[1:] {
				one &= v[in]
				zero |= ^x[in] &^ v[in]
			}
			if g.Type == logic.And {
				ov = one
			} else {
				ov = zero
			}
			ox = ^(one | zero)
		case logic.Or, logic.Nor:
			// one: some input known 1. zero: every input known 0.
			one := v[ins[0]]
			zero := ^x[ins[0]] &^ v[ins[0]]
			for _, in := range ins[1:] {
				one |= v[in]
				zero &= ^x[in] &^ v[in]
			}
			if g.Type == logic.Or {
				ov = one
			} else {
				ov = zero
			}
			ox = ^(one | zero)
		case logic.Xor, logic.Xnor:
			// Known only where every input is known (no optimistic rule).
			known := ^x[ins[0]]
			s := v[ins[0]]
			for _, in := range ins[1:] {
				known &= ^x[in]
				s ^= v[in]
			}
			if g.Type == logic.Xor {
				ov = s & known
			} else {
				ov = ^s & known
			}
			ox = ^known
		case logic.Mux2:
			d0v, d0x := v[ins[0]], x[ins[0]]
			d1v, d1x := v[ins[1]], x[ins[1]]
			sv, sx := v[ins[2]], x[ins[2]]
			m1 := ^sx & sv  // select known 1: pass d1
			m0 := ^sx &^ sv // select known 0: pass d0
			// Select X: the output is still binary where both data inputs
			// are known and agree (logic.Eval's d0 == d1 rule).
			agree := ^d0x & ^d1x &^ (d0v ^ d1v)
			ov = m1&d1v | m0&d0v | sx&agree&d0v
			ox = m1&d1x | m0&d0x | sx&^agree
		default:
			panic("sim: packed3 EvalNets on unknown gate type " + g.Type.String())
		}
		v[g.Output] = ov
		x[g.Output] = ox
	}
}

// PackValue sets lane t of the (v, x) pair for one net to the three-valued
// value val, keeping the encoding normalized.
func PackValue(v, x *uint64, t int, val logic.Value) {
	bit := uint64(1) << uint(t)
	switch val {
	case logic.One:
		*v |= bit
		*x &^= bit
	case logic.Zero:
		*v &^= bit
		*x &^= bit
	default:
		*v &^= bit
		*x |= bit
	}
}

// UnpackValue reads lane t of a (v, x) pair back as a three-valued value.
func UnpackValue(v, x uint64, t int) logic.Value {
	bit := uint64(1) << uint(t)
	if x&bit != 0 {
		return logic.X
	}
	if v&bit != 0 {
		return logic.One
	}
	return logic.Zero
}
