package sim

import "repro/internal/netlist"

// Stepper is a cycle-accurate sequential simulator: it holds the flip-flop
// state and advances it one clock per Step. Use it to exercise
// materialized netlists (e.g. the stitched scan structure) exactly as
// hardware would behave.
type Stepper struct {
	s     *Simulator
	state []bool
}

// NewStepper creates a stepper with all flops at zero.
func NewStepper(c *netlist.Circuit) *Stepper {
	return &Stepper{s: New(c), state: make([]bool, c.NumFFs())}
}

// Reset clears the flop state.
func (st *Stepper) Reset() {
	for i := range st.state {
		st.state[i] = false
	}
}

// State returns the current flop state (flop order); the caller must not
// modify it.
func (st *Stepper) State() []bool { return st.state }

// SetState overwrites the flop state.
func (st *Stepper) SetState(s []bool) {
	copy(st.state, s)
}

// Step applies pi for one clock: it evaluates the combinational logic
// with the current state, loads every flop from its D input, and returns
// the per-net values observed during the cycle (owned by the stepper,
// valid until the next call).
func (st *Stepper) Step(pi []bool) []bool {
	vals := st.s.Eval(pi, st.state)
	c := st.s.Circuit()
	for i, ff := range c.FFs {
		st.state[i] = vals[ff.D]
	}
	return vals
}

// Peek evaluates the combinational logic for pi and the current state
// without clocking the flops.
func (st *Stepper) Peek(pi []bool) []bool {
	return st.s.Eval(pi, st.state)
}
