package sim

import (
	"fmt"

	"repro/internal/netlist"
)

// PackedLanes is the lane width of the bit-parallel simulator: one uint64
// word per net carries 64 independent evaluations.
const PackedLanes = 64

// Packed evaluates the combinational core of a frozen circuit 64 lanes at
// a time: every net carries one uint64 whose bit t is the net's boolean
// value in lane t. A lane is an independent evaluation — callers pack 64
// patterns, or 64 consecutive shift cycles of a scan stream, into the
// input words and get all 64 per-net states from a single pass of
// word-wide boolean operations over the compiled levelized program.
//
// Bit t of every output word equals exactly what Simulator.Eval would
// compute for the scalar inputs at bit t of every input word (the packed
// gate operations are the word-wide forms of logic.EvalBool). It is not
// safe for concurrent use; create one per goroutine — the compiled
// Program itself is immutable and may be shared via NewPackedProgram.
type Packed struct {
	p *Program
	v []uint64 // per-net lane words, indexed by NetID
}

// NewPacked returns a packed simulator bound to the frozen circuit c,
// compiling it first. To share one compiled program across simulators,
// use Compile once and NewPackedProgram per goroutine.
func NewPacked(c *netlist.Circuit) *Packed {
	if !c.Frozen() {
		panic(fmt.Sprintf("sim: NewPacked needs a frozen circuit (circuit %q is not frozen)", c.Name))
	}
	return NewPackedProgram(Compile(c))
}

// NewPackedProgram returns a packed simulator executing the already
// compiled program p with its own lane state.
func NewPackedProgram(p *Program) *Packed {
	return &Packed{p: p, v: make([]uint64, p.c.NumNets())}
}

// Circuit returns the simulated circuit.
func (p *Packed) Circuit() *netlist.Circuit { return p.p.c }

// Program returns the compiled program the simulator executes.
func (p *Packed) Program() *Program { return p.p }

// Lanes returns the lane width (PackedLanes).
func (p *Packed) Lanes() int { return PackedLanes }

// Words returns the uint64 words carried per net (1).
func (p *Packed) Words() int { return 1 }

// Eval evaluates the combinational core across all 64 lanes. pi holds the
// primary-input lane words in netlist.Circuit.PIs order, ppi the
// flip-flop output lane words in FF order. The returned slice is the
// per-net lane word, indexed by NetID; it is owned by the simulator and
// overwritten by the next Eval call.
func (p *Packed) Eval(pi, ppi []uint64) []uint64 {
	c := p.p.c
	if len(pi) != len(c.PIs) {
		panic(fmt.Sprintf("sim: packed Eval on circuit %q: got %d primary-input words, want %d", c.Name, len(pi), len(c.PIs)))
	}
	if len(ppi) != len(c.FFs) {
		panic(fmt.Sprintf("sim: packed Eval on circuit %q: got %d pseudo-input words, want %d", c.Name, len(ppi), len(c.FFs)))
	}
	v := p.v
	for i, n := range c.PIs {
		v[n] = pi[i]
	}
	for i, ff := range c.FFs {
		v[ff.Q] = ppi[i]
	}
	runProg1(p.p, v)
	return v
}
