package sim

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// PackedLanes is the lane width of the bit-parallel simulator: one uint64
// word per net carries 64 independent evaluations.
const PackedLanes = 64

// Packed evaluates the combinational core of a frozen circuit 64 lanes at
// a time: every net carries one uint64 whose bit t is the net's boolean
// value in lane t. A lane is an independent evaluation — callers pack 64
// patterns, or 64 consecutive shift cycles of a scan stream, into the
// input words and get all 64 per-net states from a single topological
// pass of word-wide boolean operations.
//
// Bit t of every output word equals exactly what Simulator.Eval would
// compute for the scalar inputs at bit t of every input word (the packed
// gate operations are the word-wide forms of logic.EvalBool). It is not
// safe for concurrent use; create one per goroutine.
type Packed struct {
	c     *netlist.Circuit
	words []uint64 // per-net lane words, indexed by NetID
}

// NewPacked returns a packed simulator bound to the frozen circuit c.
func NewPacked(c *netlist.Circuit) *Packed {
	if !c.Frozen() {
		panic("sim: circuit must be frozen")
	}
	return &Packed{c: c, words: make([]uint64, c.NumNets())}
}

// Circuit returns the simulated circuit.
func (p *Packed) Circuit() *netlist.Circuit { return p.c }

// Eval evaluates the combinational core across all 64 lanes. pi holds the
// primary-input lane words in netlist.Circuit.PIs order, ppi the
// flip-flop output lane words in FF order. The returned slice is the
// per-net lane word, indexed by NetID; it is owned by the simulator and
// overwritten by the next Eval call.
func (p *Packed) Eval(pi, ppi []uint64) []uint64 {
	c := p.c
	if len(pi) != len(c.PIs) || len(ppi) != len(c.FFs) {
		panic("sim: packed Eval input length mismatch")
	}
	v := p.words
	for i, n := range c.PIs {
		v[n] = pi[i]
	}
	for i, ff := range c.FFs {
		v[ff.Q] = ppi[i]
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		ins := g.Inputs
		var w uint64
		switch g.Type {
		case logic.Buf:
			w = v[ins[0]]
		case logic.Not:
			w = ^v[ins[0]]
		case logic.And, logic.Nand:
			w = v[ins[0]]
			for _, in := range ins[1:] {
				w &= v[in]
			}
			if g.Type == logic.Nand {
				w = ^w
			}
		case logic.Or, logic.Nor:
			w = v[ins[0]]
			for _, in := range ins[1:] {
				w |= v[in]
			}
			if g.Type == logic.Nor {
				w = ^w
			}
		case logic.Xor, logic.Xnor:
			w = v[ins[0]]
			for _, in := range ins[1:] {
				w ^= v[in]
			}
			if g.Type == logic.Xnor {
				w = ^w
			}
		case logic.Mux2:
			sel := v[ins[2]]
			w = (v[ins[0]] &^ sel) | (v[ins[1]] & sel)
		default:
			panic("sim: packed Eval on unknown gate type " + g.Type.String())
		}
		v[g.Output] = w
	}
	return v
}
