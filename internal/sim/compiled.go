package sim

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// WideWords is the number of uint64 words each net carries in the wide
// (256-lane) packed backend.
const WideWords = 4

// WideLanes is the lane width of the wide packed backend: WideWords
// uint64 words per net carry 256 independent evaluations.
const WideLanes = WideWords * 64

// LaneWidths lists the selectable packed lane widths, narrowest first.
func LaneWidths() []int { return []int{PackedLanes, WideLanes} }

// ResolveLanes maps a configuration-level lane selection to a concrete
// width: 0 picks the default (WideLanes), PackedLanes and WideLanes pass
// through, and anything else is an error naming the valid widths.
func ResolveLanes(n int) (int, error) {
	switch n {
	case 0:
		return WideLanes, nil
	case PackedLanes, WideLanes:
		return n, nil
	}
	return 0, fmt.Errorf("sim: invalid lane width %d (want one of %v)", n, LaneWidths())
}

// opcode is the compiled form of a logic.GateType. The variable-arity
// inverting pairs share the accumulation loop of their positive form and
// differ only in a final complement.
type opcode uint8

const (
	opBuf opcode = iota
	opNot
	opAnd
	opNand
	opOr
	opNor
	opXor
	opXnor
	opMux2
)

var opcodeOf = [...]opcode{
	logic.Buf:  opBuf,
	logic.Not:  opNot,
	logic.And:  opAnd,
	logic.Nand: opNand,
	logic.Or:   opOr,
	logic.Nor:  opNor,
	logic.Xor:  opXor,
	logic.Xnor: opXnor,
	logic.Mux2: opMux2,
}

// Program is a frozen circuit's combinational core lowered to a
// levelized, flat structure-of-arrays form: one contiguous instruction
// stream sorted by (topological level, GateID), with every gate's fanin
// run flattened into a single shared index slice. All packed evaluators
// — Packed/Packed3 at 64 lanes and Wide/Wide3 at 256 — execute this one
// program through width-specialized copies of one evaluator loop, so a
// cache line of the instruction stream serves whatever lane width the
// caller picked. (The cores are specialized by hand rather than by Go
// generics: shape-dictionary method calls defeat inlining and measure
// ~3x slower per word on the same stream.)
//
// A Program is immutable after Compile and safe for concurrent use.
type Program struct {
	c        *netlist.Circuit
	ops      []opcode        // per instruction, len NumGates
	outs     []netlist.NetID // per instruction: output net
	gates    []netlist.GateID
	finStart []int32         // per instruction: offset into fins; len NumGates+1
	fins     []netlist.NetID // flattened fanin runs in gate-input order
	levels   []int32         // levels[l]..levels[l+1] = instruction range of level l
}

// Compile lowers the frozen circuit c into a levelized structure-of-arrays
// program. Instructions are ordered by (Level, GateID) ascending — a valid
// topological order, since a gate's level is strictly greater than each of
// its fanin drivers' levels — and fanins keep their netlist multiplicity
// and order, so evaluation is bit-identical to walking c.Topo().
func Compile(c *netlist.Circuit) *Program {
	if !c.Frozen() {
		panic(fmt.Sprintf("sim: Compile needs a frozen circuit (circuit %q is not frozen)", c.Name))
	}
	n := c.NumGates()
	p := &Program{
		c:        c,
		ops:      make([]opcode, n),
		outs:     make([]netlist.NetID, n),
		gates:    make([]netlist.GateID, n),
		finStart: make([]int32, n+1),
	}
	for i := range p.gates {
		p.gates[i] = netlist.GateID(i)
	}
	sort.Slice(p.gates, func(a, b int) bool {
		ga, gb := p.gates[a], p.gates[b]
		la, lb := c.Level(ga), c.Level(gb)
		if la != lb {
			return la < lb
		}
		return ga < gb
	})
	nFins := 0
	for _, g := range c.Gates {
		nFins += len(g.Inputs)
	}
	p.fins = make([]netlist.NetID, 0, nFins)
	depth := c.Depth()
	p.levels = make([]int32, depth+1)
	level := 0
	for i, gi := range p.gates {
		g := &c.Gates[gi]
		if int(g.Type) >= len(opcodeOf) || (g.Type != logic.Buf && opcodeOf[g.Type] == opBuf) {
			panic(fmt.Sprintf("sim: Compile on unknown gate type %s in circuit %q", g.Type.String(), c.Name))
		}
		p.ops[i] = opcodeOf[g.Type]
		p.outs[i] = g.Output
		p.finStart[i] = int32(len(p.fins))
		p.fins = append(p.fins, g.Inputs...)
		for l := c.Level(gi); level < l; level++ {
			p.levels[level+1] = int32(i)
		}
	}
	p.finStart[n] = int32(len(p.fins))
	for ; level < depth; level++ {
		p.levels[level+1] = int32(n)
	}
	return p
}

// Circuit returns the compiled circuit.
func (p *Program) Circuit() *netlist.Circuit { return p.c }

// NumInstrs returns the instruction count (one per gate).
func (p *Program) NumInstrs() int { return len(p.ops) }

// GateOf returns the GateID the i-th instruction was lowered from.
func (p *Program) GateOf(i int) netlist.GateID { return p.gates[i] }

// Fanins returns the i-th instruction's fanin nets in gate-input order.
// The slice aliases the program's flattened index stream; do not modify.
func (p *Program) Fanins(i int) []netlist.NetID {
	return p.fins[p.finStart[i]:p.finStart[i+1]]
}

// Output returns the i-th instruction's output net.
func (p *Program) Output(i int) netlist.NetID { return p.outs[i] }

// LevelRange returns the half-open instruction range holding the gates of
// topological level l (0-based, matching netlist.Circuit.Level). The last
// level's range ends at NumInstrs.
func (p *Program) LevelRange(l int) (int, int) {
	end := p.NumInstrs()
	if l+1 < len(p.levels) {
		end = int(p.levels[l+1])
	}
	return int(p.levels[l]), end
}

// checkWords validates a caller-selected per-net word stride.
func (p *Program) checkWords(ww int) {
	if ww != 1 && ww != WideWords {
		panic(fmt.Sprintf("sim: program for circuit %q: invalid lane words %d (want 1 or %d)", p.c.Name, ww, WideWords))
	}
}

// Run evaluates the program in place over caller-owned flat lane words:
// v holds ww uint64 words per net, indexed v[int(n)*ww : int(n)*ww+ww],
// with every PI and pseudo-input group already set. Every gate-output
// group is recomputed in instruction order. ww must be 1 (64 lanes) or
// WideWords (256 lanes).
func (p *Program) Run(v []uint64, ww int) {
	p.checkWords(ww)
	if len(v) != p.c.NumNets()*ww {
		panic(fmt.Sprintf("sim: program Run for circuit %q: state length %d, want %d nets x %d words = %d",
			p.c.Name, len(v), p.c.NumNets(), ww, p.c.NumNets()*ww))
	}
	if ww == 1 {
		runProg1(p, v)
	} else {
		runProg4(p, v)
	}
}

// Run3 is the dual-rail three-valued form of Run: v and x each hold ww
// words per net in the normalized encoding (v&x == 0 lane-wise), and
// every gate-output (v, x) group is recomputed in instruction order.
func (p *Program) Run3(v, x []uint64, ww int) {
	p.checkWords(ww)
	if len(v) != p.c.NumNets()*ww || len(x) != p.c.NumNets()*ww {
		panic(fmt.Sprintf("sim: program Run3 for circuit %q: state lengths v=%d x=%d, want %d nets x %d words = %d",
			p.c.Name, len(v), len(x), p.c.NumNets(), ww, p.c.NumNets()*ww))
	}
	if ww == 1 {
		runProg3w1(p, v, x)
	} else {
		runProg3w4(p, v, x)
	}
}

// w4 is the four-word (256-lane) lane group of the wide backend. It is
// a struct, not a [4]uint64: the compiler keeps small structs in
// registers through SSA, while multi-element arrays spill to memory,
// and the concrete inlineable methods below are what let the wide cores
// run at ~4x the scalar cost per pass instead of the ~15x a
// dictionary-based generic kernel measures on the same instruction
// stream.
type w4 struct{ a, b, c, d uint64 }

// ld4 loads net n's four-word lane group from the flat state (the
// layout of Wide/Wide3: net n at v[n*WideWords : (n+1)*WideWords]).
func ld4(v []uint64, n int) w4 {
	s := v[n*WideWords : n*WideWords+WideWords : n*WideWords+WideWords]
	return w4{s[0], s[1], s[2], s[3]}
}

// st4 stores the group back to net n of the flat state.
func (w w4) st4(v []uint64, n int) {
	s := v[n*WideWords : n*WideWords+WideWords : n*WideWords+WideWords]
	s[0], s[1], s[2], s[3] = w.a, w.b, w.c, w.d
}

func (w w4) not() w4 { return w4{^w.a, ^w.b, ^w.c, ^w.d} }

func (w w4) and(o w4) w4 { return w4{w.a & o.a, w.b & o.b, w.c & o.c, w.d & o.d} }

func (w w4) or(o w4) w4 { return w4{w.a | o.a, w.b | o.b, w.c | o.c, w.d | o.d} }

func (w w4) xor(o w4) w4 { return w4{w.a ^ o.a, w.b ^ o.b, w.c ^ o.c, w.d ^ o.d} }

func (w w4) andNot(o w4) w4 { return w4{w.a &^ o.a, w.b &^ o.b, w.c &^ o.c, w.d &^ o.d} }

// runProg1 is the two-valued evaluator core at one word per net. The
// four cores below are width-specialized by hand from one reference
// semantics (logic.EvalBool / logic.Eval per lane); the differential and
// fuzz tests pin the 64- and 256-lane cores bit-identical to each other
// and to the scalar simulator, which is what licenses the duplication.
func runProg1(p *Program, v []uint64) {
	fins := p.fins
	for ii, op := range p.ops {
		s, e := int(p.finStart[ii]), int(p.finStart[ii+1])
		w := v[fins[s]]
		switch op {
		case opBuf:
		case opNot:
			w = ^w
		case opAnd, opNand:
			for j := s + 1; j < e; j++ {
				w &= v[fins[j]]
			}
			if op == opNand {
				w = ^w
			}
		case opOr, opNor:
			for j := s + 1; j < e; j++ {
				w |= v[fins[j]]
			}
			if op == opNor {
				w = ^w
			}
		case opXor, opXnor:
			for j := s + 1; j < e; j++ {
				w ^= v[fins[j]]
			}
			if op == opXnor {
				w = ^w
			}
		case opMux2:
			d1 := v[fins[s+1]]
			sel := v[fins[s+2]]
			w = (w &^ sel) | (d1 & sel)
		}
		v[p.outs[ii]] = w
	}
}

// runProg4 is runProg1 at four words per net.
func runProg4(p *Program, v []uint64) {
	fins := p.fins
	for ii, op := range p.ops {
		s, e := int(p.finStart[ii]), int(p.finStart[ii+1])
		w := ld4(v, int(fins[s]))
		switch op {
		case opBuf:
		case opNot:
			w = w.not()
		case opAnd, opNand:
			for j := s + 1; j < e; j++ {
				w = w.and(ld4(v, int(fins[j])))
			}
			if op == opNand {
				w = w.not()
			}
		case opOr, opNor:
			for j := s + 1; j < e; j++ {
				w = w.or(ld4(v, int(fins[j])))
			}
			if op == opNor {
				w = w.not()
			}
		case opXor, opXnor:
			for j := s + 1; j < e; j++ {
				w = w.xor(ld4(v, int(fins[j])))
			}
			if op == opXnor {
				w = w.not()
			}
		case opMux2:
			d1 := ld4(v, int(fins[s+1]))
			sel := ld4(v, int(fins[s+2]))
			w = w.andNot(sel).or(d1.and(sel))
		}
		w.st4(v, int(p.outs[ii]))
	}
}

// runProg3w1 is the three-valued evaluator core at one word per rail per
// net: the dual-rail normalized-encoding twin of runProg1 with the
// optimistic rules of logic.Eval (controlling values force outputs
// through X side inputs; MUX2 with an X select resolves where both data
// inputs agree).
func runProg3w1(p *Program, v, x []uint64) {
	fins := p.fins
	for ii, op := range p.ops {
		s, e := int(p.finStart[ii]), int(p.finStart[ii+1])
		var ov, ox uint64
		switch op {
		case opBuf:
			ov, ox = v[fins[s]], x[fins[s]]
		case opNot:
			ox = x[fins[s]]
			ov = ^v[fins[s]] &^ ox
		case opAnd, opNand:
			// one: every input known 1. zero: some input known 0.
			one := v[fins[s]]
			zero := ^x[fins[s]] &^ one
			for j := s + 1; j < e; j++ {
				iv, ix := v[fins[j]], x[fins[j]]
				one &= iv
				zero |= ^ix &^ iv
			}
			if op == opAnd {
				ov = one
			} else {
				ov = zero
			}
			ox = ^(one | zero)
		case opOr, opNor:
			// one: some input known 1. zero: every input known 0.
			one := v[fins[s]]
			zero := ^x[fins[s]] &^ one
			for j := s + 1; j < e; j++ {
				iv, ix := v[fins[j]], x[fins[j]]
				one |= iv
				zero &= ^ix &^ iv
			}
			if op == opOr {
				ov = one
			} else {
				ov = zero
			}
			ox = ^(one | zero)
		case opXor, opXnor:
			// Known only where every input is known (no optimistic rule).
			known := ^x[fins[s]]
			sum := v[fins[s]]
			for j := s + 1; j < e; j++ {
				known &= ^x[fins[j]]
				sum ^= v[fins[j]]
			}
			if op == opXor {
				ov = sum & known
			} else {
				ov = ^sum & known
			}
			ox = ^known
		case opMux2:
			d0v, d0x := v[fins[s]], x[fins[s]]
			d1v, d1x := v[fins[s+1]], x[fins[s+1]]
			sv, sx := v[fins[s+2]], x[fins[s+2]]
			m1 := ^sx & sv  // select known 1: pass d1
			m0 := ^sx &^ sv // select known 0: pass d0
			// Select X: still binary where both data inputs agree.
			agree := ^d0x & ^d1x &^ (d0v ^ d1v)
			ov = m1&d1v | m0&d0v | sx&agree&d0v
			ox = m1&d1x | m0&d0x | sx&^agree
		}
		v[p.outs[ii]] = ov
		x[p.outs[ii]] = ox
	}
}

// runProg3w4 is runProg3w1 at four words per rail per net.
func runProg3w4(p *Program, v, x []uint64) {
	fins := p.fins
	for ii, op := range p.ops {
		s, e := int(p.finStart[ii]), int(p.finStart[ii+1])
		var ov, ox w4
		switch op {
		case opBuf:
			ov, ox = ld4(v, int(fins[s])), ld4(x, int(fins[s]))
		case opNot:
			ox = ld4(x, int(fins[s]))
			ov = ld4(v, int(fins[s])).not().andNot(ox)
		case opAnd, opNand:
			one := ld4(v, int(fins[s]))
			zero := ld4(x, int(fins[s])).not().andNot(one)
			for j := s + 1; j < e; j++ {
				iv, ix := ld4(v, int(fins[j])), ld4(x, int(fins[j]))
				one = one.and(iv)
				zero = zero.or(ix.not().andNot(iv))
			}
			if op == opAnd {
				ov = one
			} else {
				ov = zero
			}
			ox = one.or(zero).not()
		case opOr, opNor:
			one := ld4(v, int(fins[s]))
			zero := ld4(x, int(fins[s])).not().andNot(one)
			for j := s + 1; j < e; j++ {
				iv, ix := ld4(v, int(fins[j])), ld4(x, int(fins[j]))
				one = one.or(iv)
				zero = zero.and(ix.not().andNot(iv))
			}
			if op == opOr {
				ov = one
			} else {
				ov = zero
			}
			ox = one.or(zero).not()
		case opXor, opXnor:
			known := ld4(x, int(fins[s])).not()
			sum := ld4(v, int(fins[s]))
			for j := s + 1; j < e; j++ {
				known = known.andNot(ld4(x, int(fins[j])))
				sum = sum.xor(ld4(v, int(fins[j])))
			}
			if op == opXor {
				ov = sum.and(known)
			} else {
				ov = sum.not().and(known)
			}
			ox = known.not()
		case opMux2:
			d0v, d0x := ld4(v, int(fins[s])), ld4(x, int(fins[s]))
			d1v, d1x := ld4(v, int(fins[s+1])), ld4(x, int(fins[s+1]))
			sv, sx := ld4(v, int(fins[s+2])), ld4(x, int(fins[s+2]))
			m1 := sv.andNot(sx)
			m0 := sx.or(sv).not()
			agree := d0x.or(d1x).or(d0v.xor(d1v)).not()
			ov = m1.and(d1v).or(m0.and(d0v)).or(sx.and(agree).and(d0v))
			ox = m1.and(d1x).or(m0.and(d0x)).or(sx.andNot(agree))
		}
		ov.st4(v, int(p.outs[ii]))
		ox.st4(x, int(p.outs[ii]))
	}
}
