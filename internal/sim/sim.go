// Package sim provides two- and three-valued logic simulation of the
// combinational core of a circuit, plus the weighted transition counting
// that underlies the dynamic-power estimate of Eq. (1) of the paper
// (P_dyn = f/2 · Σ_i α_i·C_Li·V²).
package sim

import (
	"math/rand"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Simulator evaluates the combinational core of one frozen circuit.
// It is not safe for concurrent use; create one per goroutine.
type Simulator struct {
	c *netlist.Circuit

	vals  []bool        // per-net two-valued state
	vals3 []logic.Value // per-net three-valued state
	inBuf []bool
	in3   []logic.Value
}

// New returns a simulator bound to the frozen circuit c.
func New(c *netlist.Circuit) *Simulator {
	if !c.Frozen() {
		panic("sim: circuit must be frozen")
	}
	return &Simulator{
		c:     c,
		vals:  make([]bool, c.NumNets()),
		vals3: make([]logic.Value, c.NumNets()),
		inBuf: make([]bool, 0, 8),
		in3:   make([]logic.Value, 0, 8),
	}
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *netlist.Circuit { return s.c }

// Eval evaluates the combinational core. pi holds the primary-input values
// in netlist.Circuit.PIs order, ppi the flip-flop output values in FF
// order. The returned slice is the per-net state, indexed by NetID; it is
// owned by the simulator and overwritten by the next Eval call.
func (s *Simulator) Eval(pi, ppi []bool) []bool {
	c := s.c
	if len(pi) != len(c.PIs) || len(ppi) != len(c.FFs) {
		panic("sim: Eval input length mismatch")
	}
	for i, n := range c.PIs {
		s.vals[n] = pi[i]
	}
	for i, ff := range c.FFs {
		s.vals[ff.Q] = ppi[i]
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		s.inBuf = s.inBuf[:0]
		for _, in := range g.Inputs {
			s.inBuf = append(s.inBuf, s.vals[in])
		}
		s.vals[g.Output] = logic.EvalBool(g.Type, s.inBuf)
	}
	return s.vals
}

// Eval3 is Eval over three-valued inputs; unassigned lines carry logic.X.
// The returned slice is indexed by NetID and owned by the simulator.
func (s *Simulator) Eval3(pi, ppi []logic.Value) []logic.Value {
	c := s.c
	if len(pi) != len(c.PIs) || len(ppi) != len(c.FFs) {
		panic("sim: Eval3 input length mismatch")
	}
	for i, n := range c.PIs {
		s.vals3[n] = pi[i]
	}
	for i, ff := range c.FFs {
		s.vals3[ff.Q] = ppi[i]
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		s.in3 = s.in3[:0]
		for _, in := range g.Inputs {
			s.in3 = append(s.in3, s.vals3[in])
		}
		s.vals3[g.Output] = logic.Eval(g.Type, s.in3)
	}
	return s.vals3
}

// EvalNets3 evaluates the combinational core from an arbitrary per-net
// assignment of the input nets: assign[n] must be set for every PI and
// pseudo-input net n; all other entries are recomputed in place.
// assign must have length NumNets. It returns assign.
func (s *Simulator) EvalNets3(assign []logic.Value) []logic.Value {
	c := s.c
	if len(assign) != c.NumNets() {
		panic("sim: EvalNets3 length mismatch")
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		s.in3 = s.in3[:0]
		for _, in := range g.Inputs {
			s.in3 = append(s.in3, assign[in])
		}
		assign[g.Output] = logic.Eval(g.Type, s.in3)
	}
	return assign
}

// Outputs extracts the primary-output values from a per-net state slice.
func (s *Simulator) Outputs(state []bool) []bool {
	out := make([]bool, len(s.c.POs))
	for i, po := range s.c.POs {
		out[i] = state[po]
	}
	return out
}

// NextState extracts the flip-flop next-state values (pseudo-outputs) from
// a per-net state slice.
func (s *Simulator) NextState(state []bool) []bool {
	out := make([]bool, len(s.c.FFs))
	for i, ff := range s.c.FFs {
		out[i] = state[ff.D]
	}
	return out
}

// ToggleCounter accumulates weighted signal transitions across a sequence
// of evaluations. The weight of net n — physically the capacitance
// switched when the driving gate's output toggles — is supplied per net.
type ToggleCounter struct {
	weights []float64
	prev    []bool
	primed  bool
	total   float64 // weighted sum of all transitions observed
	raw     int64   // unweighted transition count
	cycles  int
}

// NewToggleCounter creates a counter for states of n nets with the given
// per-net weights (len(weights) == n).
func NewToggleCounter(weights []float64) *ToggleCounter {
	return &ToggleCounter{
		weights: weights,
		prev:    make([]bool, len(weights)),
	}
}

// Observe records one new per-net state and returns the weighted
// transition sum of this observation (0 for the priming observation).
func (t *ToggleCounter) Observe(state []bool) float64 {
	if len(state) != len(t.prev) {
		panic("sim: ToggleCounter state length mismatch")
	}
	delta := 0.0
	if t.primed {
		for i, v := range state {
			if v != t.prev[i] {
				delta += t.weights[i]
				t.raw++
			}
		}
		t.total += delta
		t.cycles++
	} else {
		t.primed = true
	}
	copy(t.prev, state)
	return delta
}

// WeightedTotal returns the weight-summed transition count.
func (t *ToggleCounter) WeightedTotal() float64 { return t.total }

// RawTotal returns the unweighted transition count.
func (t *ToggleCounter) RawTotal() int64 { return t.raw }

// Cycles returns the number of observed state changes (observations - 1).
func (t *ToggleCounter) Cycles() int { return t.cycles }

// MeanWeightedPerCycle returns WeightedTotal()/Cycles(), or 0 before two
// observations.
func (t *ToggleCounter) MeanWeightedPerCycle() float64 {
	if t.cycles == 0 {
		return 0
	}
	return t.total / float64(t.cycles)
}

// Reset returns the counter to its unprimed state.
func (t *ToggleCounter) Reset() {
	t.primed = false
	t.total = 0
	t.raw = 0
	t.cycles = 0
}

// RandomVector fills dst with independent fair coin flips from rng.
func RandomVector(rng *rand.Rand, dst []bool) {
	for i := range dst {
		dst[i] = rng.Intn(2) == 1
	}
}

// RandomValues fills dst with random binary logic values from rng.
func RandomValues(rng *rand.Rand, dst []logic.Value) {
	for i := range dst {
		dst[i] = logic.FromBool(rng.Intn(2) == 1)
	}
}
