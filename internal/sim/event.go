package sim

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// EventSim is an event-driven (selective-trace) two-valued simulator: it
// keeps the whole net state between calls and, on each new input vector,
// re-evaluates only the cones reached by actual value changes. During
// proposed-structure scan shifting most of the circuit is quiet, so this
// is dramatically cheaper than full re-evaluation — and the changed-net
// list it returns is exactly what incremental power accounting needs.
type EventSim struct {
	c      *netlist.Circuit
	vals   []bool
	primed bool

	buckets [][]netlist.GateID
	gstamp  []uint32
	epoch   uint32
	inBuf   []bool
	changed []netlist.NetID
}

// NewEvent creates an event-driven simulator for the frozen circuit.
func NewEvent(c *netlist.Circuit) *EventSim {
	if !c.Frozen() {
		panic("sim: EventSim needs a frozen circuit")
	}
	return &EventSim{
		c:       c,
		vals:    make([]bool, c.NumNets()),
		buckets: make([][]netlist.GateID, c.Depth()+1),
		gstamp:  make([]uint32, c.NumGates()),
		inBuf:   make([]bool, 0, 8),
		// Non-nil so a change-free cycle returns an empty (not nil) list:
		// nil is reserved for the priming call.
		changed: make([]netlist.NetID, 0, 16),
	}
}

// Values returns the current per-net state (owned by the simulator).
func (e *EventSim) Values() []bool { return e.vals }

// Apply drives the inputs and propagates. The first call evaluates the
// whole circuit and returns nil (priming); later calls return the list of
// nets whose value changed this cycle (owned by the simulator, valid
// until the next Apply).
func (e *EventSim) Apply(pi, ppi []bool) []netlist.NetID {
	c := e.c
	if len(pi) != len(c.PIs) || len(ppi) != len(c.FFs) {
		panic("sim: EventSim.Apply input length mismatch")
	}
	if !e.primed {
		for i, n := range c.PIs {
			e.vals[n] = pi[i]
		}
		for i, ff := range c.FFs {
			e.vals[ff.Q] = ppi[i]
		}
		for _, gi := range c.Topo() {
			g := &c.Gates[gi]
			e.inBuf = e.inBuf[:0]
			for _, in := range g.Inputs {
				e.inBuf = append(e.inBuf, e.vals[in])
			}
			e.vals[g.Output] = logic.EvalBool(g.Type, e.inBuf)
		}
		e.primed = true
		return nil
	}
	e.epoch++
	if e.epoch == 0 {
		for i := range e.gstamp {
			e.gstamp[i] = 0
		}
		e.epoch = 1
	}
	for i := range e.buckets {
		e.buckets[i] = e.buckets[i][:0]
	}
	e.changed = e.changed[:0]
	schedule := func(n netlist.NetID) {
		for _, g := range c.Nets[n].Fanout {
			if e.gstamp[g] != e.epoch {
				e.gstamp[g] = e.epoch
				e.buckets[c.Level(g)] = append(e.buckets[c.Level(g)], g)
			}
		}
	}
	flip := func(n netlist.NetID, v bool) {
		if e.vals[n] != v {
			e.vals[n] = v
			e.changed = append(e.changed, n)
			schedule(n)
		}
	}
	for i, n := range c.PIs {
		flip(n, pi[i])
	}
	for i, ff := range c.FFs {
		flip(ff.Q, ppi[i])
	}
	for lvl := 0; lvl < len(e.buckets); lvl++ {
		for qi := 0; qi < len(e.buckets[lvl]); qi++ {
			gi := e.buckets[lvl][qi]
			g := &c.Gates[gi]
			e.inBuf = e.inBuf[:0]
			for _, in := range g.Inputs {
				e.inBuf = append(e.inBuf, e.vals[in])
			}
			nv := logic.EvalBool(g.Type, e.inBuf)
			if nv != e.vals[g.Output] {
				e.vals[g.Output] = nv
				e.changed = append(e.changed, g.Output)
				schedule(g.Output)
			}
		}
	}
	return e.changed
}
