package sim

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// randomCircuit3 builds a small random frozen circuit covering every gate
// type, for differential testing of the packed three-valued evaluator.
func randomCircuit3(rng *rand.Rand) *netlist.Circuit {
	c := netlist.New("p3fuzz")
	nPI := 1 + rng.Intn(4)
	nFF := 1 + rng.Intn(3)
	var nets []string
	for i := 0; i < nPI; i++ {
		name := "pi" + string(rune('a'+i))
		c.AddPI(name)
		nets = append(nets, name)
	}
	for i := 0; i < nFF; i++ {
		nets = append(nets, "q"+string(rune('a'+i)))
	}
	types := []logic.GateType{logic.Not, logic.Buf, logic.And, logic.Nand,
		logic.Or, logic.Nor, logic.Xor, logic.Xnor, logic.Mux2}
	nGates := 4 + rng.Intn(24)
	var driven []string
	for i := 0; i < nGates; i++ {
		tpe := types[rng.Intn(len(types))]
		arity := 2 + rng.Intn(3)
		switch tpe {
		case logic.Not, logic.Buf:
			arity = 1
		case logic.Mux2:
			arity = 3
		}
		ins := make([]string, arity)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		out := "g" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		c.AddGate(tpe, out, ins...)
		nets = append(nets, out)
		driven = append(driven, out)
	}
	for i := 0; i < nFF; i++ {
		c.AddFF("f"+string(rune('a'+i)), "q"+string(rune('a'+i)), driven[rng.Intn(len(driven))])
	}
	c.MarkPO(driven[len(driven)-1])
	c.MustFreeze()
	return c
}

// TestPacked3MatchesEval3 drives random circuits with 64 random
// three-valued input lanes and requires every lane of every net to match
// the scalar three-valued simulator exactly.
func TestPacked3MatchesEval3(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 60; iter++ {
		c := randomCircuit3(rng)
		p3 := NewPacked3(c)
		s := New(c)
		nNets := c.NumNets()
		v := make([]uint64, nNets)
		x := make([]uint64, nNets)
		lanes := make([][]logic.Value, PackedLanes)
		pi := make([]logic.Value, len(c.PIs))
		ppi := make([]logic.Value, c.NumFFs())
		for tl := 0; tl < PackedLanes; tl++ {
			for i, n := range c.PIs {
				pi[i] = logic.Value(rng.Intn(3))
				PackValue(&v[n], &x[n], tl, pi[i])
			}
			for i, ff := range c.FFs {
				ppi[i] = logic.Value(rng.Intn(3))
				PackValue(&v[ff.Q], &x[ff.Q], tl, ppi[i])
			}
			lanes[tl] = append([]logic.Value(nil), s.Eval3(pi, ppi)...)
		}
		p3.EvalNets(v, x)
		for n := 0; n < nNets; n++ {
			if v[n]&x[n] != 0 {
				t.Fatalf("iter %d: net %s not normalized: v=%x x=%x",
					iter, c.Nets[n].Name, v[n], x[n])
			}
			for tl := 0; tl < PackedLanes; tl++ {
				got := UnpackValue(v[n], x[n], tl)
				if want := lanes[tl][n]; got != want {
					t.Fatalf("iter %d: net %s lane %d = %v, want %v",
						iter, c.Nets[n].Name, tl, got, want)
				}
			}
		}
	}
}

// TestPacked3BinaryLanesMatchPacked pins the degenerate case: with no X
// anywhere the three-valued packed evaluator must agree with the binary
// packed simulator word for word.
func TestPacked3BinaryLanesMatchPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := randomCircuit3(rng)
	p3 := NewPacked3(c)
	p2 := NewPacked(c)
	nNets := c.NumNets()
	v := make([]uint64, nNets)
	x := make([]uint64, nNets)
	piW := make([]uint64, len(c.PIs))
	ppiW := make([]uint64, c.NumFFs())
	for i, n := range c.PIs {
		piW[i] = rng.Uint64()
		v[n] = piW[i]
	}
	for i, ff := range c.FFs {
		ppiW[i] = rng.Uint64()
		v[ff.Q] = ppiW[i]
	}
	words := p2.Eval(piW, ppiW)
	p3.EvalNets(v, x)
	for n := 0; n < nNets; n++ {
		if x[n] != 0 {
			t.Fatalf("net %s turned X with binary inputs", c.Nets[n].Name)
		}
		if v[n] != words[n] {
			t.Fatalf("net %s: packed3 %x vs packed %x", c.Nets[n].Name, v[n], words[n])
		}
	}
}

func TestPacked3PanicsOnBadInput(t *testing.T) {
	c := netlist.New("tiny")
	c.AddPI("a")
	c.AddGate(logic.Not, "o", "a")
	c.MarkPO("o")
	c.MustFreeze()
	p3 := NewPacked3(c)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch not rejected")
		}
	}()
	p3.EvalNets(make([]uint64, 1), make([]uint64, c.NumNets()))
}
