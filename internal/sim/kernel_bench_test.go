package sim

import (
	"math/rand"
	"testing"

	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// legacyTopoEval is the pre-refactor Packed.Eval inner loop: per-gate
// type switch over a Topo() walk. Kept as a micro-benchmark baseline for
// the compiled program.
func legacyTopoEval(c *netlist.Circuit, v []uint64) {
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		ins := g.Inputs
		var w uint64
		switch g.Type {
		case logic.Buf:
			w = v[ins[0]]
		case logic.Not:
			w = ^v[ins[0]]
		case logic.And, logic.Nand:
			w = v[ins[0]]
			for _, in := range ins[1:] {
				w &= v[in]
			}
			if g.Type == logic.Nand {
				w = ^w
			}
		case logic.Or, logic.Nor:
			w = v[ins[0]]
			for _, in := range ins[1:] {
				w |= v[in]
			}
			if g.Type == logic.Nor {
				w = ^w
			}
		case logic.Xor, logic.Xnor:
			w = v[ins[0]]
			for _, in := range ins[1:] {
				w ^= v[in]
			}
			if g.Type == logic.Xnor {
				w = ^w
			}
		case logic.Mux2:
			sel := v[ins[2]]
			w = (v[ins[0]] &^ sel) | (v[ins[1]] & sel)
		default:
			panic("unknown gate type")
		}
		v[g.Output] = w
	}
}

// BenchmarkEvalKernels compares one combinational pass of the legacy
// topo-walk evaluator against the compiled program at one and four words
// per net on s1423.
func BenchmarkEvalKernels(b *testing.B) {
	p, _ := iscas.ByName("s1423")
	c, err := iscas.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	prog := Compile(c)
	rng := rand.New(rand.NewSource(1))
	v1 := make([]uint64, c.NumNets())
	v4 := make([]uint64, c.NumNets()*WideWords)
	for i := range v4 {
		v4[i] = rng.Uint64()
	}
	for i := range v1 {
		v1[i] = v4[i*WideWords]
	}
	b.Run("legacy-topo/w1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			legacyTopoEval(c, v1)
		}
	})
	b.Run("compiled/w1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prog.Run(v1, 1)
		}
	})
	b.Run("compiled/w4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prog.Run(v4, WideWords)
		}
	})
}
