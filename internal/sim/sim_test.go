package sim

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
)

const s27 = `INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

func loadS27(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(s27, "s27")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEvalS27KnownVector(t *testing.T) {
	c := loadS27(t)
	s := New(c)
	// All PIs = 0, all state = 0:
	// G14=NOT(0)=1, G8=AND(1,0)=0, G12=NOR(0,0)=1, G15=OR(1,0)=1,
	// G16=OR(0,0)=0, G9=NAND(0,1)=1, G11=NOR(0,1)=0, G17=NOT(0)=1,
	// G10=NOR(1,0)=0, G13=NOR(0,1)=0.
	st := s.Eval([]bool{false, false, false, false}, []bool{false, false, false})
	get := func(name string) bool {
		id, ok := c.NetByName(name)
		if !ok {
			t.Fatalf("net %s missing", name)
		}
		return st[id]
	}
	checks := map[string]bool{
		"G14": true, "G8": false, "G12": true, "G15": true,
		"G16": false, "G9": true, "G11": false, "G17": true,
		"G10": false, "G13": false,
	}
	for name, want := range checks {
		if got := get(name); got != want {
			t.Errorf("net %s = %v, want %v", name, got, want)
		}
	}
	outs := s.Outputs(st)
	if len(outs) != 1 || outs[0] != true {
		t.Errorf("Outputs = %v, want [true]", outs)
	}
	ns := s.NextState(st)
	if len(ns) != 3 || ns[0] || ns[1] || ns[2] {
		t.Errorf("NextState = %v, want all false", ns)
	}
}

func TestEval3AgreesWithEvalOnBinary(t *testing.T) {
	c := loadS27(t)
	s := New(c)
	rng := rand.New(rand.NewSource(1))
	pi := make([]bool, 4)
	ppi := make([]bool, 3)
	pi3 := make([]logic.Value, 4)
	ppi3 := make([]logic.Value, 3)
	for trial := 0; trial < 200; trial++ {
		RandomVector(rng, pi)
		RandomVector(rng, ppi)
		for i, b := range pi {
			pi3[i] = logic.FromBool(b)
		}
		for i, b := range ppi {
			ppi3[i] = logic.FromBool(b)
		}
		st2 := s.Eval(pi, ppi)
		// need a second simulator: Eval and Eval3 share the circuit but
		// use distinct state arrays, so one instance suffices — but Eval3
		// runs after st2 was captured by reference. Copy first.
		st2c := append([]bool(nil), st2...)
		st3 := s.Eval3(pi3, ppi3)
		for n := range st3 {
			if !st3[n].IsBinary() || st3[n].Bool() != st2c[n] {
				t.Fatalf("trial %d: net %s: Eval3=%v Eval=%v",
					trial, c.Nets[n].Name, st3[n], st2c[n])
			}
		}
	}
}

// Property: X inputs in Eval3 are a sound abstraction of both refinements.
func TestEval3XSoundness(t *testing.T) {
	c := loadS27(t)
	s := New(c)
	s2 := New(c)
	rng := rand.New(rand.NewSource(2))
	pi3 := make([]logic.Value, 4)
	ppi3 := make([]logic.Value, 3)
	pi := make([]bool, 4)
	ppi := make([]bool, 3)
	for trial := 0; trial < 100; trial++ {
		for i := range pi3 {
			pi3[i] = logic.Value(rng.Intn(3))
		}
		for i := range ppi3 {
			ppi3[i] = logic.Value(rng.Intn(3))
		}
		st3 := append([]logic.Value(nil), s.Eval3(pi3, ppi3)...)
		// A handful of random refinements.
		for r := 0; r < 8; r++ {
			for i, v := range pi3 {
				if v.IsBinary() {
					pi[i] = v.Bool()
				} else {
					pi[i] = rng.Intn(2) == 1
				}
			}
			for i, v := range ppi3 {
				if v.IsBinary() {
					ppi[i] = v.Bool()
				} else {
					ppi[i] = rng.Intn(2) == 1
				}
			}
			st2 := s2.Eval(pi, ppi)
			for n, v3 := range st3 {
				if v3.IsBinary() && v3.Bool() != st2[n] {
					t.Fatalf("net %s: abstract %v but refinement %v", c.Nets[n].Name, v3, st2[n])
				}
			}
		}
	}
}

func TestEvalNets3(t *testing.T) {
	c := loadS27(t)
	s := New(c)
	assign := make([]logic.Value, c.NumNets())
	for i := range assign {
		assign[i] = logic.X
	}
	for _, piN := range c.PIs {
		assign[piN] = logic.Zero
	}
	for _, q := range c.PseudoInputs() {
		assign[q] = logic.Zero
	}
	st := s.EvalNets3(assign)
	id, _ := c.NetByName("G17")
	if st[id] != logic.One {
		t.Errorf("G17 = %v, want 1", st[id])
	}
}

func TestEvalPanicsOnBadLength(t *testing.T) {
	c := loadS27(t)
	s := New(c)
	defer func() {
		if recover() == nil {
			t.Fatal("Eval with wrong-length inputs did not panic")
		}
	}()
	s.Eval([]bool{true}, []bool{false, false, false})
}

func TestToggleCounter(t *testing.T) {
	w := []float64{1, 2, 4}
	tc := NewToggleCounter(w)
	tc.Observe([]bool{false, false, false}) // primes
	tc.Observe([]bool{true, false, true})   // nets 0,2 toggle: weight 5
	tc.Observe([]bool{true, true, true})    // net 1: weight 2
	if got := tc.WeightedTotal(); got != 7 {
		t.Errorf("WeightedTotal = %v, want 7", got)
	}
	if got := tc.RawTotal(); got != 3 {
		t.Errorf("RawTotal = %v, want 3", got)
	}
	if got := tc.Cycles(); got != 2 {
		t.Errorf("Cycles = %v, want 2", got)
	}
	if got := tc.MeanWeightedPerCycle(); got != 3.5 {
		t.Errorf("MeanWeightedPerCycle = %v, want 3.5", got)
	}
	tc.Reset()
	if tc.WeightedTotal() != 0 || tc.Cycles() != 0 {
		t.Error("Reset did not clear counter")
	}
	if tc.MeanWeightedPerCycle() != 0 {
		t.Error("MeanWeightedPerCycle before two observations should be 0")
	}
}

func TestEquivalentSelf(t *testing.T) {
	c := loadS27(t)
	rng := rand.New(rand.NewSource(3))
	if err := Equivalent(c, c, 100, rng); err != nil {
		t.Fatalf("circuit not equivalent to itself: %v", err)
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	c := loadS27(t)
	// Mutate one gate type.
	m, err := bench.ParseString(s27, "s27m")
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Gates {
		if m.Gates[i].Type == logic.Nand {
			m.Gates[i].Type = logic.And
		}
	}
	m.MustFreeze()
	rng := rand.New(rand.NewSource(4))
	if err := Equivalent(c, m, 200, rng); err == nil {
		t.Fatal("Equivalent missed a NAND->AND mutation")
	}
}

func TestEquivalentInterfaceMismatch(t *testing.T) {
	c := loadS27(t)
	d, err := bench.ParseString("INPUT(a)\nOUTPUT(o)\no = NOT(a)\n", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	if err := Equivalent(c, d, 10, rng); err == nil {
		t.Fatal("Equivalent accepted mismatched interfaces")
	}
}

func TestEquivalentNameMismatch(t *testing.T) {
	a, _ := bench.ParseString("INPUT(a)\nOUTPUT(o)\no = NOT(a)\n", "a")
	b, _ := bench.ParseString("INPUT(zz)\nOUTPUT(o)\no = NOT(zz)\n", "b")
	rng := rand.New(rand.NewSource(6))
	if err := Equivalent(a, b, 10, rng); err == nil {
		t.Fatal("Equivalent accepted mismatched PI names")
	}
}

// TestEventSimMatchesFullEval drives random input sequences through the
// event-driven simulator and checks, each cycle, that its persistent
// state equals a from-scratch full evaluation and that the changed list
// is exactly the symmetric difference.
func TestEventSimMatchesFullEval(t *testing.T) {
	c := loadS27(t)
	es := NewEvent(c)
	full := New(c)
	rng := rand.New(rand.NewSource(21))
	pi := make([]bool, len(c.PIs))
	ppi := make([]bool, c.NumFFs())
	prev := make([]bool, c.NumNets())
	for cycle := 0; cycle < 300; cycle++ {
		// Mostly small input deltas, to exercise the selective trace.
		if cycle == 0 || rng.Intn(10) == 0 {
			RandomVector(rng, pi)
			RandomVector(rng, ppi)
		} else if rng.Intn(2) == 0 {
			pi[rng.Intn(len(pi))] = !pi[rng.Intn(len(pi))]
		} else {
			ppi[rng.Intn(len(ppi))] = !ppi[rng.Intn(len(ppi))]
		}
		changed := es.Apply(pi, ppi)
		want := full.Eval(pi, ppi)
		for n := range want {
			if es.Values()[n] != want[n] {
				t.Fatalf("cycle %d: net %s: event %v, full %v",
					cycle, c.Nets[n].Name, es.Values()[n], want[n])
			}
		}
		if cycle > 0 {
			seen := make(map[netlist.NetID]bool, len(changed))
			for _, n := range changed {
				if seen[n] {
					t.Fatalf("cycle %d: net %s reported changed twice", cycle, c.Nets[n].Name)
				}
				seen[n] = true
				if want[n] == prev[n] {
					t.Fatalf("cycle %d: net %s reported changed but is stable", cycle, c.Nets[n].Name)
				}
			}
			for n := range want {
				if want[n] != prev[n] && !seen[netlist.NetID(n)] {
					t.Fatalf("cycle %d: net %s changed but was not reported", cycle, c.Nets[n].Name)
				}
			}
		}
		copy(prev, want)
	}
}

func TestEventSimPanics(t *testing.T) {
	c := loadS27(t)
	es := NewEvent(c)
	defer func() {
		if recover() == nil {
			t.Fatal("bad input length accepted")
		}
	}()
	es.Apply([]bool{true}, nil)
}
