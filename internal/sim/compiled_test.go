package sim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// TestCompileLevelizedOrder is the lowering property test: on random
// circuits (plus an ISCAS netlist when available), the compiled program
// must hold every gate exactly once in (level, GateID) ascending order,
// with each instruction's opcode, output and fanin run matching the
// netlist gate in order and multiplicity, and every fanin's driver
// lowered to an earlier instruction.
func TestCompileLevelizedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var circuits []*netlist.Circuit
	for iter := 0; iter < 40; iter++ {
		circuits = append(circuits, randomCircuit3(rng))
	}
	if p, ok := iscas.ByName("s344"); ok {
		c, err := iscas.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		circuits = append(circuits, c)
	}
	for _, c := range circuits {
		p := Compile(c)
		if p.NumInstrs() != c.NumGates() {
			t.Fatalf("%s: %d instructions for %d gates", c.Name, p.NumInstrs(), c.NumGates())
		}
		seen := make([]bool, c.NumGates())
		// instrOf[g] = instruction index of gate g, for the driver check.
		instrOf := make([]int, c.NumGates())
		for i := 0; i < p.NumInstrs(); i++ {
			gi := p.GateOf(i)
			if seen[gi] {
				t.Fatalf("%s: gate %d lowered twice", c.Name, gi)
			}
			seen[gi] = true
			instrOf[gi] = i
			if i > 0 {
				prev := p.GateOf(i - 1)
				lp, li := c.Level(prev), c.Level(gi)
				if lp > li || (lp == li && prev > gi) {
					t.Fatalf("%s: instr %d: (level %d, gate %d) after (level %d, gate %d)",
						c.Name, i, li, gi, lp, prev)
				}
			}
			g := &c.Gates[gi]
			if p.Output(i) != g.Output {
				t.Fatalf("%s: instr %d output %d, want %d", c.Name, i, p.Output(i), g.Output)
			}
			fins := p.Fanins(i)
			if len(fins) != len(g.Inputs) {
				t.Fatalf("%s: instr %d has %d fanins, want %d (multiplicity must survive lowering)",
					c.Name, i, len(fins), len(g.Inputs))
			}
			for j, in := range g.Inputs {
				if fins[j] != in {
					t.Fatalf("%s: instr %d fanin %d is net %d, want %d", c.Name, i, j, fins[j], in)
				}
			}
		}
		// Topological soundness: every gate-driven fanin was computed by an
		// earlier instruction.
		for i := 0; i < p.NumInstrs(); i++ {
			for _, in := range p.Fanins(i) {
				if d := c.Nets[in].Driver; d != netlist.InvalidGate && instrOf[d] >= i {
					t.Fatalf("%s: instr %d reads net %d before its driver (instr %d) ran",
						c.Name, i, in, instrOf[d])
				}
			}
		}
		// LevelRange partitions the instruction stream in level order.
		at := 0
		for l := 0; l < c.Depth(); l++ {
			s, e := p.LevelRange(l)
			if s != at {
				t.Fatalf("%s: level %d starts at %d, want %d", c.Name, l, s, at)
			}
			for i := s; i < e; i++ {
				if c.Level(p.GateOf(i)) != l {
					t.Fatalf("%s: instr %d in level-%d range has level %d",
						c.Name, i, l, c.Level(p.GateOf(i)))
				}
			}
			at = e
		}
		if at != p.NumInstrs() {
			t.Fatalf("%s: level ranges cover %d of %d instructions", c.Name, at, p.NumInstrs())
		}
	}
}

// TestWideMatchesScalar: each of the 256 lanes of a wide evaluation must
// equal the scalar simulator's result for that lane's inputs, on every
// net — the same contract TestPackedMatchesScalar pins at 64 lanes.
func TestWideMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 20; iter++ {
		c := randomCircuit3(rng)
		ws := NewWide(c)
		ss := New(c)
		piW := make([]uint64, len(c.PIs)*WideWords)
		ppiW := make([]uint64, c.NumFFs()*WideWords)
		for i := range piW {
			piW[i] = rng.Uint64()
		}
		for i := range ppiW {
			ppiW[i] = rng.Uint64()
		}
		words := ws.Eval(piW, ppiW)
		pi := make([]bool, len(c.PIs))
		ppi := make([]bool, c.NumFFs())
		for lane := 0; lane < WideLanes; lane++ {
			wd, bit := lane>>6, uint(lane&63)
			for i := range pi {
				pi[i] = piW[i*WideWords+wd]>>bit&1 == 1
			}
			for i := range ppi {
				ppi[i] = ppiW[i*WideWords+wd]>>bit&1 == 1
			}
			st := ss.Eval(pi, ppi)
			for ni, v := range st {
				if got := words[ni*WideWords+wd]>>bit&1 == 1; got != v {
					t.Fatalf("%s: lane %d net %s: wide %v, scalar %v",
						c.Name, lane, c.Nets[ni].Name, got, v)
				}
			}
		}
	}
}

// TestWide3MatchesPacked3 pins word-level identity of the wide
// three-valued evaluator against Packed3 (itself pinned against the
// scalar Eval3): every 64-lane slice of a 256-lane evaluation must equal
// the packed evaluation of those lanes.
func TestWide3MatchesPacked3(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 20; iter++ {
		c := randomCircuit3(rng)
		prog := Compile(c)
		w3 := NewWide3Program(prog)
		p3 := NewPacked3Program(prog)
		nNets := c.NumNets()
		v := make([]uint64, nNets*WideWords)
		x := make([]uint64, nNets*WideWords)
		for _, n := range c.CombInputs() {
			for k := 0; k < WideWords; k++ {
				xv := rng.Uint64()
				v[int(n)*WideWords+k] = rng.Uint64() &^ xv
				x[int(n)*WideWords+k] = xv
			}
		}
		// Narrow reference: evaluate each 64-lane slice with Packed3.
		for k := 0; k < WideWords; k++ {
			nv := make([]uint64, nNets)
			nx := make([]uint64, nNets)
			for n := 0; n < nNets; n++ {
				nv[n] = v[n*WideWords+k]
				nx[n] = x[n*WideWords+k]
			}
			w3.EvalNets(v, x) // idempotent over inputs; run before compare below
			p3.EvalNets(nv, nx)
			for n := 0; n < nNets; n++ {
				if v[n*WideWords+k] != nv[n] || x[n*WideWords+k] != nx[n] {
					t.Fatalf("%s: word %d net %s: wide (%x,%x) vs packed (%x,%x)", c.Name, k,
						c.Nets[n].Name, v[n*WideWords+k], x[n*WideWords+k], nv[n], nx[n])
				}
			}
		}
	}
}

// TestLaneWidthResolution pins the selectable-backend contract.
func TestLaneWidthResolution(t *testing.T) {
	if got, err := ResolveLanes(0); err != nil || got != WideLanes {
		t.Fatalf("ResolveLanes(0) = %d, %v; want default %d", got, err, WideLanes)
	}
	for _, w := range LaneWidths() {
		if got, err := ResolveLanes(w); err != nil || got != w {
			t.Fatalf("ResolveLanes(%d) = %d, %v", w, got, err)
		}
	}
	for _, bad := range []int{-1, 1, 63, 128, 512} {
		if _, err := ResolveLanes(bad); err == nil {
			t.Fatalf("ResolveLanes(%d) accepted", bad)
		}
	}
}

// TestPanicsNameCircuitAndLengths pins the misuse diagnostics: frozen
// and length panics must name the circuit and the offending vs expected
// counts, across all four evaluators.
func TestPanicsNameCircuitAndLengths(t *testing.T) {
	mustPanic := func(name string, want []string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			msg, ok := r.(string)
			if !ok {
				t.Errorf("%s: panic value %v is not a string", name, r)
				return
			}
			for _, w := range want {
				if !strings.Contains(msg, w) {
					t.Errorf("%s: panic %q does not mention %q", name, msg, w)
				}
			}
		}()
		fn()
	}

	unfrozen := netlist.New("never-frozen")
	unfrozen.AddPI("a")
	unfrozen.AddGate(logic.Not, "o", "a")
	mustPanic("NewPacked unfrozen", []string{`"never-frozen"`}, func() { NewPacked(unfrozen) })
	mustPanic("NewPacked3 unfrozen", []string{`"never-frozen"`}, func() { NewPacked3(unfrozen) })
	mustPanic("NewWide unfrozen", []string{`"never-frozen"`}, func() { NewWide(unfrozen) })
	mustPanic("NewWide3 unfrozen", []string{`"never-frozen"`}, func() { NewWide3(unfrozen) })
	mustPanic("Compile unfrozen", []string{`"never-frozen"`}, func() { Compile(unfrozen) })

	c := netlist.New("tiny2")
	c.AddPI("a")
	c.AddPI("b")
	c.AddFF("f", "q", "d")
	c.AddGate(logic.And, "d", "a", "b", "q")
	c.MarkPO("d")
	c.MustFreeze()

	mustPanic("Packed.Eval pi", []string{`"tiny2"`, "got 1", "want 2"}, func() {
		NewPacked(c).Eval(make([]uint64, 1), make([]uint64, 1))
	})
	mustPanic("Packed.Eval ppi", []string{`"tiny2"`, "got 3", "want 1"}, func() {
		NewPacked(c).Eval(make([]uint64, 2), make([]uint64, 3))
	})
	mustPanic("Packed3.EvalNets", []string{`"tiny2"`, "v=1", "want 4"}, func() {
		NewPacked3(c).EvalNets(make([]uint64, 1), make([]uint64, c.NumNets()))
	})
	mustPanic("Wide.Eval", []string{`"tiny2"`, "got 2", "want 2 PIs x 4 = 8"}, func() {
		NewWide(c).Eval(make([]uint64, 2), make([]uint64, WideWords))
	})
	mustPanic("Wide3.EvalNets", []string{`"tiny2"`, "want 4 nets x 4 = 16"}, func() {
		NewWide3(c).EvalNets(make([]uint64, 1), make([]uint64, 1))
	})
	mustPanic("Program.Run bad words", []string{`"tiny2"`, "lane words 2"}, func() {
		Compile(c).Run(make([]uint64, c.NumNets()*2), 2)
	})
	mustPanic("Program.Run bad length", []string{`"tiny2"`, "state length 3"}, func() {
		Compile(c).Run(make([]uint64, 3), 1)
	})
	mustPanic("Program.Run3 bad length", []string{`"tiny2"`, "v=16 x=3"}, func() {
		Compile(c).Run3(make([]uint64, 16), make([]uint64, 3), WideWords)
	})
}

// FuzzWideEquivalence cross-checks the three backends — scalar, 64-lane
// packed, 256-lane wide — on fuzzer-shaped random circuits, both
// two-valued and three-valued, lane by lane on every net. Wired into
// `make fuzz-equiv`.
func FuzzWideEquivalence(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit3(rng)
		prog := Compile(c)
		ss := New(c)
		nNets := c.NumNets()

		// Two-valued: wide vs packed word-identity, then packed vs scalar.
		piW := make([]uint64, len(c.PIs)*WideWords)
		ppiW := make([]uint64, c.NumFFs()*WideWords)
		for i := range piW {
			piW[i] = rng.Uint64()
		}
		for i := range ppiW {
			ppiW[i] = rng.Uint64()
		}
		wide := NewWideProgram(prog).Eval(piW, ppiW)
		packed := NewPackedProgram(prog)
		pi1 := make([]uint64, len(c.PIs))
		ppi1 := make([]uint64, c.NumFFs())
		for k := 0; k < WideWords; k++ {
			for i := range pi1 {
				pi1[i] = piW[i*WideWords+k]
			}
			for i := range ppi1 {
				ppi1[i] = ppiW[i*WideWords+k]
			}
			words := packed.Eval(pi1, ppi1)
			for n := 0; n < nNets; n++ {
				if words[n] != wide[n*WideWords+k] {
					t.Fatalf("net %s word %d: packed %x vs wide %x",
						c.Nets[n].Name, k, words[n], wide[n*WideWords+k])
				}
			}
		}
		pib := make([]bool, len(c.PIs))
		ppib := make([]bool, c.NumFFs())
		for lane := 0; lane < PackedLanes; lane++ {
			for i := range pib {
				pib[i] = pi1[i]>>uint(lane)&1 == 1
			}
			for i := range ppib {
				ppib[i] = ppi1[i]>>uint(lane)&1 == 1
			}
			st := ss.Eval(pib, ppib)
			for n, v := range st {
				if got := packed.v[n]>>uint(lane)&1 == 1; got != v {
					t.Fatalf("net %s lane %d: packed %v vs scalar %v", c.Nets[n].Name, lane, got, v)
				}
			}
		}

		// Three-valued: wide vs packed word-identity and scalar spot check.
		v := make([]uint64, nNets*WideWords)
		x := make([]uint64, nNets*WideWords)
		for _, n := range c.CombInputs() {
			for k := 0; k < WideWords; k++ {
				xv := rng.Uint64()
				v[int(n)*WideWords+k] = rng.Uint64() &^ xv
				x[int(n)*WideWords+k] = xv
			}
		}
		nv := make([]uint64, nNets)
		nx := make([]uint64, nNets)
		for n := 0; n < nNets; n++ {
			nv[n] = v[n*WideWords]
			nx[n] = x[n*WideWords]
		}
		NewWide3Program(prog).EvalNets(v, x)
		NewPacked3Program(prog).EvalNets(nv, nx)
		for n := 0; n < nNets; n++ {
			if nv[n] != v[n*WideWords] || nx[n] != x[n*WideWords] {
				t.Fatalf("net %s: packed3 (%x,%x) vs wide3 word 0 (%x,%x)",
					c.Nets[n].Name, nv[n], nx[n], v[n*WideWords], x[n*WideWords])
			}
		}
		piV := make([]logic.Value, len(c.PIs))
		ppiV := make([]logic.Value, c.NumFFs())
		lane := int(rng.Int31n(PackedLanes))
		for i, n := range c.PIs {
			piV[i] = UnpackValue(nvIn(nv, nx, n, lane))
		}
		for i, ff := range c.FFs {
			ppiV[i] = UnpackValue(nvIn(nv, nx, ff.Q, lane))
		}
		st3 := ss.Eval3(piV, ppiV)
		for n := 0; n < nNets; n++ {
			if got := UnpackValue(nv[n], nx[n], lane); got != st3[n] {
				t.Fatalf("net %s lane %d: packed3 %v vs scalar %v", c.Nets[n].Name, lane, got, st3[n])
			}
		}
	})
}

// nvIn adapts (slice, slice, net, lane) to UnpackValue's word arguments.
func nvIn(v, x []uint64, n netlist.NetID, lane int) (uint64, uint64, int) {
	return v[n], x[n], lane
}
