package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// Equivalent checks, by random simulation, that the combinational cores of
// a and b compute the same primary-output and next-state functions. Inputs
// and flops are matched by name, so the circuits may differ freely in
// internal structure (e.g. before and after technology mapping).
//
// It returns nil if all trials agree and a descriptive error on the first
// mismatch or on interface mismatch. Random simulation is a probabilistic
// check; use enough trials for the input-space coverage you need (the
// repository's callers use it on circuits whose transformations are
// correct by construction, as a safety net).
func Equivalent(a, b *netlist.Circuit, trials int, rng *rand.Rand) error {
	if len(a.PIs) != len(b.PIs) || len(a.FFs) != len(b.FFs) || len(a.POs) != len(b.POs) {
		return fmt.Errorf("sim: interface mismatch: %d/%d PIs, %d/%d FFs, %d/%d POs",
			len(a.PIs), len(b.PIs), len(a.FFs), len(b.FFs), len(a.POs), len(b.POs))
	}
	// Build index maps from a's order into b's order, matching by name.
	piMap, err := matchByName(a, b, a.PIs, "primary input")
	if err != nil {
		return err
	}
	poMap, err := matchByName(a, b, a.POs, "primary output")
	if err != nil {
		return err
	}
	ffMap := make([]int, len(a.FFs))
	bQ := make(map[string]int, len(b.FFs))
	for i, ff := range b.FFs {
		bQ[b.Nets[ff.Q].Name] = i
	}
	for i, ff := range a.FFs {
		j, ok := bQ[a.Nets[ff.Q].Name]
		if !ok {
			return fmt.Errorf("sim: flop output %q missing in %s", a.Nets[ff.Q].Name, b.Name)
		}
		ffMap[i] = j
	}

	sa, sb := New(a), New(b)
	pi := make([]bool, len(a.PIs))
	ppi := make([]bool, len(a.FFs))
	piB := make([]bool, len(b.PIs))
	ppiB := make([]bool, len(b.FFs))
	for trial := 0; trial < trials; trial++ {
		RandomVector(rng, pi)
		RandomVector(rng, ppi)
		for i, j := range piMap {
			piB[j] = pi[i]
		}
		for i, j := range ffMap {
			ppiB[j] = ppi[i]
		}
		stA := sa.Eval(pi, ppi)
		stB := sb.Eval(piB, ppiB)
		for i, poA := range a.POs {
			if stA[poA] != stB[b.POs[poMap[i]]] {
				return fmt.Errorf("sim: trial %d: output %q differs (%v vs %v)",
					trial, a.Nets[poA].Name, stA[poA], stB[b.POs[poMap[i]]])
			}
		}
		for i, ffA := range a.FFs {
			if stA[ffA.D] != stB[b.FFs[ffMap[i]].D] {
				return fmt.Errorf("sim: trial %d: next-state of flop %q differs",
					trial, a.Nets[ffA.Q].Name)
			}
		}
	}
	return nil
}

func matchByName(a, b *netlist.Circuit, netsA []netlist.NetID, kind string) ([]int, error) {
	// Positional index of each name in b's corresponding list.
	var listB []netlist.NetID
	if kind == "primary input" {
		listB = b.PIs
	} else {
		listB = b.POs
	}
	idx := make(map[string]int, len(listB))
	for i, n := range listB {
		idx[b.Nets[n].Name] = i
	}
	out := make([]int, len(netsA))
	for i, n := range netsA {
		j, ok := idx[a.Nets[n].Name]
		if !ok {
			return nil, fmt.Errorf("sim: %s %q missing in %s", kind, a.Nets[n].Name, b.Name)
		}
		out[i] = j
	}
	return out, nil
}
