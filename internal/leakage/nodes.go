package leakage

import "fmt"

// Node describes one technology generation for the scaling study that
// backs the paper's motivation ("in future technologies the static
// portion of power dissipation will outreach the dynamic portion").
// The 45 nm entry is the calibrated Figure 2 point; other generations
// scale it with the classic ITRS-era trends: subthreshold leakage grows
// roughly 3–5× per node as V_T drops, gate tunneling grows faster still
// as T_ox thins, supply voltage and capacitance shrink slowly.
type Node struct {
	NM int
	// VDD in volts.
	VDD float64
	// SubScale multiplies the subthreshold currents relative to 45 nm.
	SubScale float64
	// GateScale multiplies the gate-tunneling currents relative to 45 nm.
	GateScale float64
	// CapScale multiplies load capacitances relative to 45 nm.
	CapScale float64
}

// Nodes lists the supported generations, oldest first.
var Nodes = []Node{
	{NM: 90, VDD: 1.20, SubScale: 0.06, GateScale: 0.02, CapScale: 2.2},
	{NM: 65, VDD: 1.10, SubScale: 0.25, GateScale: 0.15, CapScale: 1.5},
	{NM: 45, VDD: 0.90, SubScale: 1.00, GateScale: 1.00, CapScale: 1.0},
	{NM: 32, VDD: 0.85, SubScale: 3.50, GateScale: 5.00, CapScale: 0.7},
	{NM: 22, VDD: 0.80, SubScale: 11.0, GateScale: 22.0, CapScale: 0.5},
}

// NodeByNM returns the generation entry for the given feature size.
func NodeByNM(nm int) (Node, error) {
	for _, n := range Nodes {
		if n.NM == nm {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("leakage: no %d nm node model (have 90/65/45/32/22)", nm)
}

// ParamsForNode returns the leakage calibration scaled to a technology
// generation. ParamsForNode(45) equals DefaultParams.
func ParamsForNode(nm int) (Params, error) {
	n, err := NodeByNM(nm)
	if err != nil {
		return Params{}, err
	}
	p := DefaultParams()
	p.IsubN *= n.SubScale
	p.IsubP *= n.SubScale
	p.IgN *= n.GateScale
	p.IgP *= n.GateScale
	p.VDD = n.VDD
	return p, nil
}
