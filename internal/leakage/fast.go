package leakage

import "repro/internal/netlist"

// CircuitTables precomputes, for every gate of the frozen circuit, a
// pointer to its leakage table indexed by the packed binary input pattern
// (bit i = input i). It removes the per-gate map lookup from hot
// measurement loops; use with CircuitLeakBoolTabs.
func (m *Model) CircuitTables(c *netlist.Circuit) [][]float64 {
	tabs := make([][]float64, c.NumGates())
	for gi := range c.Gates {
		g := &c.Gates[gi]
		key := tableKey{g.Type, len(g.Inputs)}
		tab, ok := m.tables[key]
		if !ok {
			m.buildTable(g.Type, len(g.Inputs))
			tab = m.tables[key]
		}
		tabs[gi] = tab
	}
	return tabs
}

// CircuitLeakBoolTabs is CircuitLeakBool using tables from CircuitTables.
func (m *Model) CircuitLeakBoolTabs(c *netlist.Circuit, state []bool, tabs [][]float64) float64 {
	total := 0.0
	for gi := range c.Gates {
		g := &c.Gates[gi]
		bits := 0
		for i, in := range g.Inputs {
			if state[in] {
				bits |= 1 << i
			}
		}
		total += tabs[gi][bits]
	}
	return total
}
