package leakage

import (
	"math"
	"testing"
)

func TestParamsForNode45IsDefault(t *testing.T) {
	p, err := ParamsForNode(45)
	if err != nil {
		t.Fatal(err)
	}
	if p != DefaultParams() {
		t.Errorf("45 nm params %+v differ from calibration %+v", p, DefaultParams())
	}
}

func TestParamsForNodeUnknown(t *testing.T) {
	if _, err := ParamsForNode(28); err == nil {
		t.Error("accepted unsupported node")
	}
	if _, err := NodeByNM(7); err == nil {
		t.Error("accepted unsupported node")
	}
}

func TestLeakageGrowsMonotonicallyAcrossNodes(t *testing.T) {
	// Total NAND2 table leakage must grow strictly from 90 nm to 22 nm.
	prev := -1.0
	for _, n := range Nodes {
		p, err := ParamsForNode(n.NM)
		if err != nil {
			t.Fatal(err)
		}
		m := New(p)
		f := m.Figure2()
		total := f[0] + f[1] + f[2] + f[3]
		if total <= prev {
			t.Errorf("%d nm total NAND2 leak %v not above previous node %v", n.NM, total, prev)
		}
		prev = total
	}
}

func TestNodesOrderedAndScalesAnchored(t *testing.T) {
	for i := 1; i < len(Nodes); i++ {
		if Nodes[i].NM >= Nodes[i-1].NM {
			t.Fatal("Nodes must be ordered newest-last")
		}
		if Nodes[i].CapScale >= Nodes[i-1].CapScale {
			t.Error("capacitance must shrink with feature size")
		}
		if Nodes[i].VDD >= Nodes[i-1].VDD {
			t.Error("VDD must shrink with feature size")
		}
	}
	n45, _ := NodeByNM(45)
	if n45.SubScale != 1 || n45.GateScale != 1 || n45.CapScale != 1 ||
		math.Abs(n45.VDD-0.9) > 1e-12 {
		t.Errorf("45 nm must be the calibration anchor: %+v", n45)
	}
}

func TestParamsFromDevices(t *testing.T) {
	p, err := ParamsFromDevices(defaultTech())
	if err != nil {
		t.Fatal(err)
	}
	if p.IsubN <= 0 || p.IsubP <= 0 || p.IgN <= 0 || p.IgP <= 0 {
		t.Fatalf("non-positive derived currents: %+v", p)
	}
	if p.Stack <= 1.5 {
		t.Errorf("derived stack factor %v implausibly weak", p.Stack)
	}
	if p.VDD != 0.9 {
		t.Errorf("VDD = %v", p.VDD)
	}
	// A model built from the derived parameters must be usable and show
	// the effects the flow exploits.
	m := New(p)
	f := m.Figure2()
	for s, v := range f {
		if v <= 0 {
			t.Errorf("derived model state %02b leak %v", s, v)
		}
	}
	// All-on worst; both-off beats both single-off states (stack effect).
	if !(f[3] > f[1] && f[3] > f[2] && f[3] > f[0]) {
		t.Errorf("derived model loses the all-on-worst shape: %v", f)
	}
	if !(f[0] < f[1] && f[0] < f[2]) {
		t.Errorf("derived model loses the stack effect: %v", f)
	}
	// Input order must still matter (the reordering stage's raison d'être).
	if f[1] == f[2] {
		t.Error("derived model shows no input-order dependence")
	}
}
