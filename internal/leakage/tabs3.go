package leakage

import (
	"math/bits"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// CircuitTables3 precomputes, for every gate of the frozen circuit, its
// X-averaged leakage table: entry xmask<<k | bits (k = the gate's arity)
// holds the expected leakage when the inputs flagged in xmask are X and
// the remaining inputs carry the binary pattern bits (bits must be clear
// at X positions). Entries with bits overlapping xmask are unused.
//
// Every entry is built by the exact refinement enumeration GateLeak
// performs — same visit order, same division — so a lookup is bit-for-bit
// the float GateLeak would return for the same three-valued pattern. That
// makes the table the fast path of the minimum-leakage fill: the scalar
// backend replaces one map lookup plus a 2^nX enumeration per gate per
// trial with a single indexed load, and the packed backend resolves whole
// 64-trial words against it, both without drifting from the reference
// accumulation by even an ulp.
func (m *Model) CircuitTables3(c *netlist.Circuit) [][]float64 {
	type key = tableKey
	cache := make(map[key][]float64)
	tabs3 := make([][]float64, c.NumGates())
	for gi := range c.Gates {
		g := &c.Gates[gi]
		k := key{g.Type, len(g.Inputs)}
		avg, ok := cache[k]
		if !ok {
			avg = m.buildTable3(g.Type, len(g.Inputs))
			cache[k] = avg
		}
		tabs3[gi] = avg
	}
	return tabs3
}

// buildTable3 assembles the X-averaged table for one cell, replicating
// GateLeak's enumeration (ascending refinement mask, X positions scattered
// in ascending input order) so every entry is bit-identical to it.
func (m *Model) buildTable3(t logic.GateType, arity int) []float64 {
	tab, ok := m.tables[tableKey{t, arity}]
	if !ok {
		m.buildTable(t, arity)
		tab = m.tables[tableKey{t, arity}]
	}
	size := 1 << uint(arity)
	avg := make([]float64, size*size)
	var xPos []int
	for xmask := 0; xmask < size; xmask++ {
		xPos = xPos[:0]
		for i := 0; i < arity; i++ {
			if xmask>>i&1 == 1 {
				xPos = append(xPos, i)
			}
		}
		for base := 0; base < size; base++ {
			if base&xmask != 0 {
				continue
			}
			sum := 0.0
			count := 0
			for mask := 0; mask < 1<<uint(len(xPos)); mask++ {
				bits := base
				for j, p := range xPos {
					if mask>>j&1 == 1 {
						bits |= 1 << uint(p)
					}
				}
				sum += tab[bits]
				count++
			}
			avg[xmask<<uint(arity)|base] = sum / float64(count)
		}
	}
	return avg
}

// CircuitLeakTabs3 is CircuitLeak using tables from CircuitTables3: the
// same expected total leakage under a three-valued per-net state, summed
// in the same gate order, bit-identical to the reference — minus the
// per-gate map lookup and refinement enumeration.
func (m *Model) CircuitLeakTabs3(c *netlist.Circuit, state []logic.Value, tabs3 [][]float64) float64 {
	total := 0.0
	for gi := range c.Gates {
		g := &c.Gates[gi]
		k := uint(len(g.Inputs))
		bits, xmask := 0, 0
		for i, in := range g.Inputs {
			switch state[in] {
			case logic.One:
				bits |= 1 << uint(i)
			case logic.X:
				xmask |= 1 << uint(i)
			}
		}
		total += tabs3[gi][xmask<<k|bits]
	}
	return total
}

// AccumLeak3Packed is AccumLeakPacked for the dual-rail three-valued lane
// layout of sim.Packed3: v[n]/x[n] carry net n's packed value/unknown
// bits, and cyc[t] receives the X-averaged leakage sum of lane t over all
// gates, for t < n, using tables from CircuitTables3.
//
// As with AccumLeakPacked, the accumulation order is load-bearing: each
// cyc[t] is built in ascending gate-index order — exactly the order
// CircuitLeak (and CircuitLeakTabs3) sums one scalar state — so per-lane
// totals are bit-identical to the serial evaluation of the same
// three-valued state.
func (m *Model) AccumLeak3Packed(c *netlist.Circuit, v, x []uint64, n int, tabs3 [][]float64, cyc []float64) {
	m.AccumLeak3PackedW(c, v, x, 1, n, tabs3, cyc)
}

// AccumLeak3PackedW is the lane-width-generic form of AccumLeak3Packed:
// v and x hold ww words per net (the dual-rail layout of sim.Packed3 at
// ww=1 and sim.Wide3 at ww=4), and cyc[t] receives lane t's X-averaged
// leakage sum over all gates, for t < n.
//
// Like AccumLeakPackedW, the lanes are tiled eight at a time — one
// 8-lane block of accumulators stays in registers across a full walk of
// the gate list — and each gate's eight table indices
// (xmask<<arity | bits) are formed in a single word by byte-spreading
// the dual-rail words; the normalized encoding (v clear where x is set)
// is exactly the "bits clear at X positions" convention of
// CircuitTables3. Every lane still gets exactly one add per gate, in
// ascending gate-index order, so per-lane totals remain bit-identical
// to CircuitLeakTabs3 at any lane width.
func (m *Model) AccumLeak3PackedW(c *netlist.Circuit, v, x []uint64, ww, n int, tabs3 [][]float64, cyc []float64) {
	base := 0
	for ; base+8 <= n; base += 8 {
		k := base >> 6
		sh := uint(base & 63)
		cw := cyc[base : base+8 : base+8]
		s0, s1, s2, s3 := cw[0], cw[1], cw[2], cw[3]
		s4, s5, s6, s7 := cw[4], cw[5], cw[6], cw[7]
		for gi := range c.Gates {
			g := &c.Gates[gi]
			tab := tabs3[gi]
			var u uint64
			switch len(g.Inputs) {
			case 1:
				ia := int(g.Inputs[0])*ww + k
				u = spreadTab[byte(v[ia]>>sh)] | spreadTab[byte(x[ia]>>sh)]<<1
				t4 := tab[0:4:4]
				s0 += t4[u&3]
				s1 += t4[u>>8&3]
				s2 += t4[u>>16&3]
				s3 += t4[u>>24&3]
				s4 += t4[u>>32&3]
				s5 += t4[u>>40&3]
				s6 += t4[u>>48&3]
				s7 += t4[u>>56&3]
			case 2:
				ia, ib := int(g.Inputs[0])*ww+k, int(g.Inputs[1])*ww+k
				u = spreadTab[byte(v[ia]>>sh)] | spreadTab[byte(v[ib]>>sh)]<<1 |
					spreadTab[byte(x[ia]>>sh)]<<2 | spreadTab[byte(x[ib]>>sh)]<<3
				t16 := tab[0:16:16]
				s0 += t16[u&15]
				s1 += t16[u>>8&15]
				s2 += t16[u>>16&15]
				s3 += t16[u>>24&15]
				s4 += t16[u>>32&15]
				s5 += t16[u>>40&15]
				s6 += t16[u>>48&15]
				s7 += t16[u>>56&15]
			case 3:
				ia, ib, id := int(g.Inputs[0])*ww+k, int(g.Inputs[1])*ww+k, int(g.Inputs[2])*ww+k
				u = spreadTab[byte(v[ia]>>sh)] | spreadTab[byte(v[ib]>>sh)]<<1 | spreadTab[byte(v[id]>>sh)]<<2 |
					spreadTab[byte(x[ia]>>sh)]<<3 | spreadTab[byte(x[ib]>>sh)]<<4 | spreadTab[byte(x[id]>>sh)]<<5
				t64 := tab[0:64:64]
				s0 += t64[u&63]
				s1 += t64[u>>8&63]
				s2 += t64[u>>16&63]
				s3 += t64[u>>24&63]
				s4 += t64[u>>32&63]
				s5 += t64[u>>40&63]
				s6 += t64[u>>48&63]
				s7 += t64[u>>56&63]
			case 4:
				ia, ib := int(g.Inputs[0])*ww+k, int(g.Inputs[1])*ww+k
				id, ie := int(g.Inputs[2])*ww+k, int(g.Inputs[3])*ww+k
				u = spreadTab[byte(v[ia]>>sh)] | spreadTab[byte(v[ib]>>sh)]<<1 |
					spreadTab[byte(v[id]>>sh)]<<2 | spreadTab[byte(v[ie]>>sh)]<<3 |
					spreadTab[byte(x[ia]>>sh)]<<4 | spreadTab[byte(x[ib]>>sh)]<<5 |
					spreadTab[byte(x[id]>>sh)]<<6 | spreadTab[byte(x[ie]>>sh)]<<7
				t256 := tab[0:256:256]
				s0 += t256[u&255]
				s1 += t256[u>>8&255]
				s2 += t256[u>>16&255]
				s3 += t256[u>>24&255]
				s4 += t256[u>>32&255]
				s5 += t256[u>>40&255]
				s6 += t256[u>>48&255]
				s7 += t256[u>>56&255]
			default:
				// Wider gates are rare; extract their lanes serially.
				ar := uint(len(g.Inputs))
				for t := uint(0); t < 8; t++ {
					bits, xmask := 0, 0
					for i, in := range g.Inputs {
						bits |= int(v[int(in)*ww+k]>>(sh+t)&1) << uint(i)
						xmask |= int(x[int(in)*ww+k]>>(sh+t)&1) << uint(i)
					}
					val := tab[xmask<<ar|bits]
					switch t {
					case 0:
						s0 += val
					case 1:
						s1 += val
					case 2:
						s2 += val
					case 3:
						s3 += val
					case 4:
						s4 += val
					case 5:
						s5 += val
					case 6:
						s6 += val
					case 7:
						s7 += val
					}
				}
			}
		}
		cw[0], cw[1], cw[2], cw[3] = s0, s1, s2, s3
		cw[4], cw[5], cw[6], cw[7] = s4, s5, s6, s7
	}
	// Tail lanes of a batch not a multiple of 8, one lane at a time.
	for ; base < n; base++ {
		wk, bit := base>>6, uint(base&63)
		s := cyc[base]
		for gi := range c.Gates {
			g := &c.Gates[gi]
			ar := uint(len(g.Inputs))
			bits, xmask := 0, 0
			for i, in := range g.Inputs {
				bits |= int(v[int(in)*ww+wk]>>bit&1) << uint(i)
				xmask |= int(x[int(in)*ww+wk]>>bit&1) << uint(i)
			}
			s += tabs3[gi][xmask<<ar|bits]
		}
		cyc[base] = s
	}
}

// AccumLineLeakPacked folds one packed batch into the per-line
// conditional-leakage accumulators of the observability estimate:
// words[n] carries net n's binary value in bit t for lane t (the layout
// of sim.Packed), cyc[t] the total circuit leakage of lane t, and for
// every net the lanes where it carried 1 add cyc[t] to sum1[n] and bump
// cnt1[n], for t < n only.
//
// Per net, lanes are visited in ascending order — the order the scalar
// estimator adds samples — so sum1 stays bit-identical to the serial
// Monte-Carlo accumulation when callers feed batches in sample order.
func AccumLineLeakPacked(words []uint64, n int, cyc []float64, sum1 []float64, cnt1 []int) {
	AccumLineLeakPackedW(words, 1, n, cyc, sum1, cnt1)
}

// AccumLineLeakPackedW is the lane-width-generic form of
// AccumLineLeakPacked: words holds ww words per net (len(words)/ww nets),
// lane t of net n at bit t&63 of words[int(n)*ww+t>>6], and lanes up to n
// are folded per net in ascending lane order (ascending word, then
// ascending bit) — the order the scalar estimator adds samples.
func AccumLineLeakPackedW(words []uint64, ww, n int, cyc []float64, sum1 []float64, cnt1 []int) {
	nets := len(words) / ww
	for ni := 0; ni < nets; ni++ {
		s := sum1[ni]
		cnt := 0
		for k, base := 0, 0; base < n; k, base = k+1, base+64 {
			w := words[ni*ww+k] & validMask(n-base)
			if w == 0 {
				continue
			}
			cw := cyc[base:]
			for m := w; m != 0; m &= m - 1 {
				s += cw[bits.TrailingZeros64(m)]
			}
			cnt += bits.OnesCount64(w)
		}
		if cnt != 0 {
			sum1[ni] = s
			cnt1[ni] += cnt
		}
	}
}
