package leakage

import (
	"math/bits"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// CircuitTables3 precomputes, for every gate of the frozen circuit, its
// X-averaged leakage table: entry xmask<<k | bits (k = the gate's arity)
// holds the expected leakage when the inputs flagged in xmask are X and
// the remaining inputs carry the binary pattern bits (bits must be clear
// at X positions). Entries with bits overlapping xmask are unused.
//
// Every entry is built by the exact refinement enumeration GateLeak
// performs — same visit order, same division — so a lookup is bit-for-bit
// the float GateLeak would return for the same three-valued pattern. That
// makes the table the fast path of the minimum-leakage fill: the scalar
// backend replaces one map lookup plus a 2^nX enumeration per gate per
// trial with a single indexed load, and the packed backend resolves whole
// 64-trial words against it, both without drifting from the reference
// accumulation by even an ulp.
func (m *Model) CircuitTables3(c *netlist.Circuit) [][]float64 {
	type key = tableKey
	cache := make(map[key][]float64)
	tabs3 := make([][]float64, c.NumGates())
	for gi := range c.Gates {
		g := &c.Gates[gi]
		k := key{g.Type, len(g.Inputs)}
		avg, ok := cache[k]
		if !ok {
			avg = m.buildTable3(g.Type, len(g.Inputs))
			cache[k] = avg
		}
		tabs3[gi] = avg
	}
	return tabs3
}

// buildTable3 assembles the X-averaged table for one cell, replicating
// GateLeak's enumeration (ascending refinement mask, X positions scattered
// in ascending input order) so every entry is bit-identical to it.
func (m *Model) buildTable3(t logic.GateType, arity int) []float64 {
	tab, ok := m.tables[tableKey{t, arity}]
	if !ok {
		m.buildTable(t, arity)
		tab = m.tables[tableKey{t, arity}]
	}
	size := 1 << uint(arity)
	avg := make([]float64, size*size)
	var xPos []int
	for xmask := 0; xmask < size; xmask++ {
		xPos = xPos[:0]
		for i := 0; i < arity; i++ {
			if xmask>>i&1 == 1 {
				xPos = append(xPos, i)
			}
		}
		for base := 0; base < size; base++ {
			if base&xmask != 0 {
				continue
			}
			sum := 0.0
			count := 0
			for mask := 0; mask < 1<<uint(len(xPos)); mask++ {
				bits := base
				for j, p := range xPos {
					if mask>>j&1 == 1 {
						bits |= 1 << uint(p)
					}
				}
				sum += tab[bits]
				count++
			}
			avg[xmask<<uint(arity)|base] = sum / float64(count)
		}
	}
	return avg
}

// CircuitLeakTabs3 is CircuitLeak using tables from CircuitTables3: the
// same expected total leakage under a three-valued per-net state, summed
// in the same gate order, bit-identical to the reference — minus the
// per-gate map lookup and refinement enumeration.
func (m *Model) CircuitLeakTabs3(c *netlist.Circuit, state []logic.Value, tabs3 [][]float64) float64 {
	total := 0.0
	for gi := range c.Gates {
		g := &c.Gates[gi]
		k := uint(len(g.Inputs))
		bits, xmask := 0, 0
		for i, in := range g.Inputs {
			switch state[in] {
			case logic.One:
				bits |= 1 << uint(i)
			case logic.X:
				xmask |= 1 << uint(i)
			}
		}
		total += tabs3[gi][xmask<<k|bits]
	}
	return total
}

// AccumLeak3Packed is AccumLeakPacked for the dual-rail three-valued lane
// layout of sim.Packed3: v[n]/x[n] carry net n's packed value/unknown
// bits, and cyc[t] receives the X-averaged leakage sum of lane t over all
// gates, for t < n, using tables from CircuitTables3.
//
// As with AccumLeakPacked, the accumulation order is load-bearing: each
// cyc[t] is built in ascending gate-index order — exactly the order
// CircuitLeak (and CircuitLeakTabs3) sums one scalar state — so per-lane
// totals are bit-identical to the serial evaluation of the same
// three-valued state.
func (m *Model) AccumLeak3Packed(c *netlist.Circuit, v, x []uint64, n int, tabs3 [][]float64, cyc []float64) {
	for gi := range c.Gates {
		g := &c.Gates[gi]
		tab := tabs3[gi]
		switch len(g.Inputs) {
		case 1:
			av := v[g.Inputs[0]]
			ax := x[g.Inputs[0]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[ax&1<<1|av&1]
				av >>= 1
				ax >>= 1
			}
		case 2:
			av, ax := v[g.Inputs[0]], x[g.Inputs[0]]
			bv, bx := v[g.Inputs[1]], x[g.Inputs[1]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[(ax&1|bx&1<<1)<<2|av&1|bv&1<<1]
				av >>= 1
				ax >>= 1
				bv >>= 1
				bx >>= 1
			}
		case 3:
			av, ax := v[g.Inputs[0]], x[g.Inputs[0]]
			bv, bx := v[g.Inputs[1]], x[g.Inputs[1]]
			dv, dx := v[g.Inputs[2]], x[g.Inputs[2]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[(ax&1|bx&1<<1|dx&1<<2)<<3|av&1|bv&1<<1|dv&1<<2]
				av >>= 1
				ax >>= 1
				bv >>= 1
				bx >>= 1
				dv >>= 1
				dx >>= 1
			}
		default:
			k := uint(len(g.Inputs))
			for t := 0; t < n; t++ {
				bits, xmask := 0, 0
				for i, in := range g.Inputs {
					bits |= int(v[in]>>uint(t)&1) << uint(i)
					xmask |= int(x[in]>>uint(t)&1) << uint(i)
				}
				cyc[t] += tab[xmask<<k|bits]
			}
		}
	}
}

// AccumLineLeakPacked folds one packed batch into the per-line
// conditional-leakage accumulators of the observability estimate:
// words[n] carries net n's binary value in bit t for lane t (the layout
// of sim.Packed), cyc[t] the total circuit leakage of lane t, and for
// every net the lanes where it carried 1 add cyc[t] to sum1[n] and bump
// cnt1[n], for t < n only.
//
// Per net, lanes are visited in ascending order — the order the scalar
// estimator adds samples — so sum1 stays bit-identical to the serial
// Monte-Carlo accumulation when callers feed batches in sample order.
func AccumLineLeakPacked(words []uint64, n int, cyc []float64, sum1 []float64, cnt1 []int) {
	valid := ^uint64(0)
	if n < 64 {
		valid = 1<<uint(n) - 1
	}
	for ni := range words {
		w := words[ni] & valid
		if w == 0 {
			continue
		}
		s := sum1[ni]
		for m := w; m != 0; m &= m - 1 {
			s += cyc[bits.TrailingZeros64(m)]
		}
		sum1[ni] = s
		cnt1[ni] += bits.OnesCount64(w)
	}
}
