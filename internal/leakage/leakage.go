// Package leakage models the static (leakage) power of the NAND/NOR/INV
// 45 nm library used in the paper's evaluation.
//
// The paper characterized every library cell with HSPICE BSIM4 at 45 nm /
// 0.9 V and stored the result in per-gate lookup tables ("the results are
// stored in several tables containing the leakage of each gate for a given
// input pattern"). We substitute an analytic transistor-network model with
// the same structure BSIM4 exposes at the gate level:
//
//   - subthreshold conduction through OFF devices, with the series stack
//     effect (each extra OFF device in a stack divides the current by a
//     calibrated stack factor) and a position dependence for a single OFF
//     device (an OFF transistor next to the power rail sees a boosted
//     drain-source drop from the charged internal node; one next to the
//     output is strongly suppressed);
//   - gate-oxide direct tunneling through ON devices whose channel sits at
//     the opposite rail from their gate (full oxide drop), electrons
//     tunneling more readily than holes (IgN > IgP).
//
// The four free parameter groups are calibrated so the NAND2 table
// reproduces the paper's Figure 2 exactly in ordering and closely in
// magnitude (00→78 nA, 01→73 nA, 10→264 nA, 11→408 nA); every other cell
// and input state follows from the same physics.
//
// Input-position convention: for the series transistor stack of a cell
// (the NMOS pull-down of a NAND, the PMOS pull-up of a NOR), input index 0
// drives the transistor nearest the output node and the last index drives
// the transistor nearest the power rail. The strong position dependence of
// single-OFF-device leakage is exactly what the paper's gate input
// reordering step exploits.
package leakage

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Params are the electrical calibration constants, currents in nA.
type Params struct {
	IsubN float64 // subthreshold of one OFF NMOS at full VDS
	IsubP float64 // subthreshold of one OFF PMOS at full |VDS|
	IgN   float64 // gate tunneling of one ON NMOS with full oxide drop
	IgP   float64 // gate tunneling of one ON PMOS with full oxide drop
	// Stack is the per-extra-OFF-device suppression in a series stack.
	Stack float64
	// OffNearOutput scales a single OFF device adjacent to the output.
	OffNearOutput float64
	// OffNearRail scales a single OFF device adjacent to the power rail
	// (internal-node boost makes it leak slightly more than nominal).
	OffNearRail float64
	// VDD is the supply voltage in volts (power = VDD·ΣI).
	VDD float64
}

// DefaultParams returns the 45 nm / 0.9 V calibration that reproduces the
// paper's Figure 2 NAND2 table.
func DefaultParams() Params {
	return Params{
		IsubN:         200,
		IsubP:         174,
		IgN:           30,
		IgP:           20,
		Stack:         5.26,
		OffNearOutput: 0.115,
		OffNearRail:   1.22,
		VDD:           0.9,
	}
}

// Model evaluates per-gate and whole-circuit leakage. It caches the
// per-cell tables; create once and share (read-only after creation, safe
// for concurrent use).
type Model struct {
	p Params
	// tables[key][pattern] = nA, key = type/arity, pattern bit i = input i.
	tables map[tableKey][]float64
}

type tableKey struct {
	t     logic.GateType
	arity int
}

// New builds a model (and its cell tables up to fanin 4) from params.
func New(p Params) *Model {
	m := &Model{p: p, tables: make(map[tableKey][]float64)}
	for _, t := range []logic.GateType{logic.Not, logic.Buf} {
		m.buildTable(t, 1)
	}
	for _, t := range []logic.GateType{logic.Nand, logic.Nor, logic.And, logic.Or, logic.Xor, logic.Xnor} {
		for a := 2; a <= 4; a++ {
			m.buildTable(t, a)
		}
	}
	m.buildTable(logic.Mux2, 3)
	return m
}

// Default returns New(DefaultParams()).
func Default() *Model { return New(DefaultParams()) }

// Params returns the calibration constants of the model.
func (m *Model) Params() Params { return m.p }

func (m *Model) buildTable(t logic.GateType, arity int) {
	tab := make([]float64, 1<<arity)
	in := make([]bool, arity)
	for bits := range tab {
		for i := range in {
			in[i] = bits>>i&1 == 1
		}
		tab[bits] = m.raw(t, in)
	}
	m.tables[tableKey{t, arity}] = tab
}

// raw computes the leakage of one cell instance for a binary input
// pattern, in nA.
func (m *Model) raw(t logic.GateType, in []bool) float64 {
	switch t {
	case logic.Not:
		return m.invLeak(in[0])
	case logic.Buf:
		// No BUF library cell exists; model as two inverters.
		return m.invLeak(in[0]) + m.invLeak(!in[0])
	case logic.Nand:
		return m.seriesParallel(in, true)
	case logic.Nor:
		return m.seriesParallel(in, false)
	case logic.And:
		// Composite pre-mapping cell: NAND + INV.
		n := !allTrue(in)
		return m.seriesParallel(in, true) + m.invLeak(n)
	case logic.Or:
		n := !anyTrue(in)
		return m.seriesParallel(in, false) + m.invLeak(n)
	case logic.Xor, logic.Xnor:
		return m.xorLeak(in, t == logic.Xnor)
	case logic.Mux2:
		return m.muxLeak(in[0], in[1], in[2])
	}
	panic(fmt.Sprintf("leakage: no cell model for %v", t))
}

func allTrue(in []bool) bool {
	for _, v := range in {
		if !v {
			return false
		}
	}
	return true
}

func anyTrue(in []bool) bool {
	for _, v := range in {
		if v {
			return true
		}
	}
	return false
}

// invLeak is the inverter: single NMOS / single PMOS.
func (m *Model) invLeak(a bool) float64 {
	if a {
		// Output 0: PMOS off at full VDS, NMOS on with channel at ground.
		return m.p.IsubP + m.p.IgN
	}
	// Output 1: NMOS off at full VDS, PMOS on with channel at VDD.
	return m.p.IsubN + m.p.IgP
}

// seriesParallel evaluates a NAND (nmosSeries=true) or NOR
// (nmosSeries=false) of arbitrary arity.
//
// For a NAND: series NMOS pull-down (input i=0 nearest output), parallel
// PMOS pull-up. A device conducts when its input is 1 (NMOS) / 0 (PMOS).
// For a NOR the roles are dual.
func (m *Model) seriesParallel(in []bool, nmosSeries bool) float64 {
	n := len(in)
	// In the series stack, device i is OFF when the input fails to turn it
	// on. For NAND/NMOS: off when in[i]==false. For NOR/PMOS: off when
	// in[i]==true.
	offInStack := func(v bool) bool {
		if nmosSeries {
			return !v
		}
		return v
	}
	offCount := 0
	firstOff, lastOff := -1, -1
	for i, v := range in {
		if offInStack(v) {
			offCount++
			if firstOff < 0 {
				firstOff = i
			}
			lastOff = i
		}
	}
	var IsubStack, IsubPar, IgSeries, IgPar float64
	if nmosSeries {
		IsubStack, IsubPar = m.p.IsubN, m.p.IsubP
		IgSeries, IgPar = m.p.IgN, m.p.IgP
	} else {
		IsubStack, IsubPar = m.p.IsubP, m.p.IsubN
		IgSeries, IgPar = m.p.IgP, m.p.IgN
	}

	total := 0.0
	if offCount == 0 {
		// Stack conducts: output at the stack's rail. Every parallel
		// device is OFF at full VDS; every stack device is ON with its
		// channel at the rail (full oxide drop).
		total += float64(n) * IsubPar
		total += float64(n) * IgSeries
		return total
	}
	// Stack blocked: output at the opposite rail, parallel network has at
	// least one ON device, so parallel OFF devices see ~0 VDS (no
	// subthreshold). Parallel ON devices hold their channel at the output
	// rail with full oxide drop. A parallel device is ON exactly when its
	// series twin is OFF, so onPar == offCount.
	onPar := offCount
	total += float64(onPar) * IgPar
	// Series subthreshold through the blocked stack.
	switch {
	case offCount >= 2:
		sub := IsubStack
		for k := 1; k < offCount; k++ {
			sub /= m.p.Stack
		}
		total += sub
	default: // exactly one OFF device: position-dependent.
		total += IsubStack * m.positionFactor(firstOff, n)
	}
	// Gate tunneling of ON stack devices between the OFF device(s) and the
	// rail: their channel is pinned at the rail through the conducting
	// lower part of the stack.
	onBelow := n - 1 - lastOff
	total += float64(onBelow) * IgSeries
	return total
}

// positionFactor interpolates the single-OFF-device subthreshold factor
// from OffNearOutput (index 0) to OffNearRail (index n-1).
func (m *Model) positionFactor(idx, n int) float64 {
	if n <= 1 {
		return 1
	}
	frac := float64(idx) / float64(n-1)
	return m.p.OffNearOutput + (m.p.OffNearRail-m.p.OffNearOutput)*frac
}

// xorLeak models the pre-mapping XOR/XNOR composite as the four-NAND2
// network (plus an inverter for XNOR), matching what techmap emits.
func (m *Model) xorLeak(in []bool, invert bool) float64 {
	acc := in[0]
	total := 0.0
	for i := 1; i < len(in); i++ {
		b := in[i]
		n1 := !(acc && b)
		n2 := !(acc && n1)
		n3 := !(b && n1)
		total += m.raw(logic.Nand, []bool{acc, b})
		total += m.raw(logic.Nand, []bool{acc, n1})
		total += m.raw(logic.Nand, []bool{b, n1})
		total += m.raw(logic.Nand, []bool{n2, n3})
		acc = acc != b
	}
	if invert {
		total += m.invLeak(acc)
	}
	return total
}

// muxLeak models the MUX2 DFT cell as its NAND-level network:
// selb = NOT(sel); n1 = NAND(d0, selb); n2 = NAND(d1, sel);
// out = NAND(n1, n2).
func (m *Model) muxLeak(d0, d1, sel bool) float64 {
	selb := !sel
	n1 := !(d0 && selb)
	n2 := !(d1 && sel)
	return m.invLeak(sel) +
		m.raw(logic.Nand, []bool{d0, selb}) +
		m.raw(logic.Nand, []bool{d1, sel}) +
		m.raw(logic.Nand, []bool{n1, n2})
}

// GateLeak returns the expected leakage of one gate in nA for a
// three-valued input pattern: X inputs are averaged over both binary
// values (independently, probability 1/2 each) — the steady "unknown,
// toggling" state a non-blocked line has during scan shifting.
func (m *Model) GateLeak(t logic.GateType, in []logic.Value) float64 {
	tab, ok := m.tables[tableKey{t, len(in)}]
	if !ok {
		m.buildTable(t, len(in))
		tab = m.tables[tableKey{t, len(in)}]
	}
	// Enumerate refinements of X positions.
	sum := 0.0
	count := 0
	nX := 0
	base := 0
	var xPos []int
	for i, v := range in {
		switch v {
		case logic.One:
			base |= 1 << i
		case logic.X:
			nX++
			xPos = append(xPos, i)
		}
	}
	for mask := 0; mask < 1<<nX; mask++ {
		bits := base
		for j, p := range xPos {
			if mask>>j&1 == 1 {
				bits |= 1 << p
			}
		}
		sum += tab[bits]
		count++
	}
	return sum / float64(count)
}

// GateLeakBits returns the leakage of one gate for a binary input pattern
// encoded as bits (bit i = input i), in nA.
func (m *Model) GateLeakBits(t logic.GateType, arity, bits int) float64 {
	tab, ok := m.tables[tableKey{t, arity}]
	if !ok {
		m.buildTable(t, arity)
		tab = m.tables[tableKey{t, arity}]
	}
	return tab[bits]
}

// CircuitLeak sums the expected leakage of every gate of the frozen
// circuit under the given per-net three-valued state, in nA.
func (m *Model) CircuitLeak(c *netlist.Circuit, state []logic.Value) float64 {
	total := 0.0
	buf := make([]logic.Value, 0, 8)
	for gi := range c.Gates {
		g := &c.Gates[gi]
		buf = buf[:0]
		for _, in := range g.Inputs {
			buf = append(buf, state[in])
		}
		total += m.GateLeak(g.Type, buf)
	}
	return total
}

// CircuitLeakBool is CircuitLeak for a fully binary per-net state.
func (m *Model) CircuitLeakBool(c *netlist.Circuit, state []bool) float64 {
	total := 0.0
	for gi := range c.Gates {
		g := &c.Gates[gi]
		bits := 0
		for i, in := range g.Inputs {
			if state[in] {
				bits |= 1 << i
			}
		}
		total += m.GateLeakBits(g.Type, len(g.Inputs), bits)
	}
	return total
}

// PowerUW converts a total leakage current in nA to power in µW at the
// model's supply voltage.
func (m *Model) PowerUW(totalNA float64) float64 {
	return totalNA * m.p.VDD * 1e-3
}

// Figure2 returns the NAND2 table in the paper's Figure 2 layout:
// entries for input states 00, 01, 10, 11 (A = input 0 = transistor
// nearest the output, B = input 1), in nA.
func (m *Model) Figure2() [4]float64 {
	var out [4]float64
	for ab := 0; ab < 4; ab++ {
		a := ab >> 1 & 1 // paper lists A as the high-order column
		b := ab & 1
		bits := a | b<<1
		out[ab] = m.GateLeakBits(logic.Nand, 2, bits)
	}
	return out
}
