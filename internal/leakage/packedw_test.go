package leakage

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// buildArities returns a frozen circuit with gate arities 1 through 4 so
// every accumulator path (the mask-decomposed fast cases and the serial
// fallback) is exercised.
func buildArities(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("arities")
	c.AddPI("a")
	c.AddPI("b")
	c.AddPI("s")
	c.AddFF("f0", "q0", "d0")
	c.AddGate(logic.Not, "n1", "a")
	c.AddGate(logic.Nand, "n2", "a", "b")
	c.AddGate(logic.Nor, "n3", "n1", "n2", "q0")
	c.AddGate(logic.Nand, "n4", "a", "b", "n1", "n3")
	c.AddGate(logic.Mux2, "d0", "n3", "n4", "s")
	c.MarkPO("d0")
	c.MustFreeze()
	return c
}

// TestAccumLeakPackedWMatchesScalar: at four words per net, every lane of
// the wide two-valued accumulator must reproduce CircuitLeakBool for that
// lane's per-net state — exactly, since both sum the same table entries
// in the same gate order.
func TestAccumLeakPackedWMatchesScalar(t *testing.T) {
	c := buildArities(t)
	m := Default()
	tabs := m.CircuitTables(c)
	rng := rand.New(rand.NewSource(21))
	const ww = sim.WideWords
	words := make([]uint64, c.NumNets()*ww)
	for i := range words {
		words[i] = rng.Uint64()
	}
	for _, n := range []int{1, 63, 64, 100, 256} {
		cyc := make([]float64, 256)
		m.AccumLeakPackedW(c, words, ww, n, tabs, cyc)
		state := make([]bool, c.NumNets())
		for lane := 0; lane < n; lane++ {
			for i := range state {
				state[i] = words[i*ww+lane>>6]>>uint(lane&63)&1 == 1
			}
			want := m.CircuitLeakBool(c, state)
			if cyc[lane] != want {
				t.Fatalf("n=%d lane %d: packed %v, scalar %v", n, lane, cyc[lane], want)
			}
		}
		for lane := n; lane < 256; lane++ {
			if cyc[lane] != 0 {
				t.Fatalf("n=%d: lane %d beyond batch accumulated %v", n, lane, cyc[lane])
			}
		}
	}
}

// TestAccumLeak3PackedWMatchesScalar: each lane total of the wide
// three-valued accumulator must equal CircuitLeak on the lane's unpacked
// state, bit for bit, with lanes beyond the batch untouched.
func TestAccumLeak3PackedWMatchesScalar(t *testing.T) {
	c := buildArities(t)
	m := Default()
	tabs3 := m.CircuitTables3(c)
	rng := rand.New(rand.NewSource(23))
	const ww = sim.WideWords
	nNets := c.NumNets()
	v := make([]uint64, nNets*ww)
	x := make([]uint64, nNets*ww)
	lanes := make([][]logic.Value, 256)
	for tl := range lanes {
		lanes[tl] = make([]logic.Value, nNets)
		for n := 0; n < nNets; n++ {
			val := logic.Value(rng.Intn(3))
			lanes[tl][n] = val
			sim.PackValue(&v[n*ww+tl>>6], &x[n*ww+tl>>6], tl&63, val)
		}
	}
	for _, n := range []int{1, 63, 64, 100, 256} {
		cyc := make([]float64, 256)
		m.AccumLeak3PackedW(c, v, x, ww, n, tabs3, cyc)
		for tl := 0; tl < n; tl++ {
			want := m.CircuitLeak(c, lanes[tl])
			if cyc[tl] != want {
				t.Fatalf("n=%d lane %d: packed %v, scalar %v", n, tl, cyc[tl], want)
			}
		}
		for tl := n; tl < 256; tl++ {
			if cyc[tl] != 0 {
				t.Fatalf("n=%d: lane %d beyond batch accumulated %v", n, tl, cyc[tl])
			}
		}
	}
}

// TestAccumLineLeakPackedW: the wide per-line conditional accumulator
// must reproduce the scalar per-sample loop — same sums in the same
// per-net ascending-lane addition order, lanes beyond the batch excluded.
func TestAccumLineLeakPackedW(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	const (
		nNets = 17
		ww    = sim.WideWords
	)
	for _, n := range []int{1, 63, 64, 100, 256} {
		words := make([]uint64, nNets*ww)
		cyc := make([]float64, 256)
		for i := range words {
			words[i] = rng.Uint64()
		}
		for t := range cyc {
			cyc[t] = rng.Float64() * 1000
		}
		sum1 := make([]float64, nNets)
		cnt1 := make([]int, nNets)
		AccumLineLeakPackedW(words, ww, n, cyc, sum1, cnt1)

		wantSum := make([]float64, nNets)
		wantCnt := make([]int, nNets)
		for ni := 0; ni < nNets; ni++ {
			for tl := 0; tl < n; tl++ {
				if words[ni*ww+tl>>6]>>uint(tl&63)&1 == 1 {
					wantSum[ni] += cyc[tl]
					wantCnt[ni]++
				}
			}
		}
		for ni := 0; ni < nNets; ni++ {
			if sum1[ni] != wantSum[ni] || cnt1[ni] != wantCnt[ni] {
				t.Fatalf("n=%d net %d: packed (%v,%d), scalar (%v,%d)",
					n, ni, sum1[ni], cnt1[ni], wantSum[ni], wantCnt[ni])
			}
		}
	}
}
