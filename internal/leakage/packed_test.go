package leakage

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// TestAccumLeakPackedMatchesScalar: for every lane, the packed per-lane
// accumulation must reproduce CircuitLeakBool for that lane's per-net
// state — exactly, since both sum the same table entries in the same
// gate order.
func TestAccumLeakPackedMatchesScalar(t *testing.T) {
	c := netlist.New("mix")
	c.AddPI("a")
	c.AddPI("b")
	c.AddPI("s")
	c.AddFF("f0", "q0", "d0")
	c.AddGate(logic.Not, "n1", "a")
	c.AddGate(logic.Nand, "n2", "a", "b")
	c.AddGate(logic.Nor, "n3", "n1", "n2", "q0")
	c.AddGate(logic.Nand, "n4", "a", "b", "n1", "n3")
	c.AddGate(logic.Mux2, "d0", "n3", "n4", "s")
	c.MarkPO("d0")
	c.MustFreeze()

	m := Default()
	tabs := m.CircuitTables(c)
	rng := rand.New(rand.NewSource(11))
	words := make([]uint64, c.NumNets())
	// Random per-net words: AccumLeakPacked only reads, so an arbitrary
	// (even combinationally inconsistent) state exercises every table row.
	for i := range words {
		words[i] = rng.Uint64()
	}
	for _, n := range []int{1, 13, 64} {
		cyc := make([]float64, n)
		m.AccumLeakPacked(c, words, n, tabs, cyc)
		state := make([]bool, c.NumNets())
		for lane := 0; lane < n; lane++ {
			for i := range state {
				state[i] = words[i]>>uint(lane)&1 == 1
			}
			want := m.CircuitLeakBool(c, state)
			if cyc[lane] != want {
				t.Fatalf("n=%d lane %d: packed %v, scalar %v", n, lane, cyc[lane], want)
			}
		}
	}
}
