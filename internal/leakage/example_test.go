package leakage_test

import (
	"fmt"

	"repro/internal/leakage"
	"repro/internal/logic"
)

// The calibrated model reproduces the paper's Figure 2 and exposes the
// input-order asymmetry the gate input reordering stage exploits.
func ExampleModel_GateLeak() {
	m := leakage.Default()
	l01 := m.GateLeak(logic.Nand, []logic.Value{logic.Zero, logic.One})
	l10 := m.GateLeak(logic.Nand, []logic.Value{logic.One, logic.Zero})
	fmt.Printf("NAND2 01: %.0f nA, 10: %.0f nA — order matters %.1fx\n",
		l01, l10, l10/l01)
	// Output:
	// NAND2 01: 73 nA, 10: 264 nA — order matters 3.6x
}

// X inputs average over both binary refinements — the steady "toggling"
// state a non-blocked line has during scan shifting.
func ExampleModel_GateLeak_unknownInputs() {
	m := leakage.Default()
	lx := m.GateLeak(logic.Nand, []logic.Value{logic.X, logic.X})
	fmt.Printf("NAND2 with both inputs toggling: %.2f nA expected\n", lx)
	// Output:
	// NAND2 with both inputs toggling: 205.76 nA expected
}

// Technology scaling grows the model's leakage per node.
func ExampleParamsForNode() {
	for _, nm := range []int{65, 45, 32} {
		p, _ := leakage.ParamsForNode(nm)
		m := leakage.New(p)
		f := m.Figure2()
		fmt.Printf("%d nm NAND2(1,1): %.0f nA\n", nm, f[3])
	}
	// Output:
	// 65 nm NAND2(1,1): 96 nA
	// 45 nm NAND2(1,1): 408 nA
	// 32 nm NAND2(1,1): 1518 nA
}
