package leakage

import (
	"math"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// TestFigure2Exact pins the model to the paper's Figure 2: the NAND2 45 nm
// leakage table. This is the calibration anchor of the whole static-power
// reproduction.
func TestFigure2Exact(t *testing.T) {
	m := Default()
	got := m.Figure2()
	want := [4]float64{78, 73, 264, 408} // states 00, 01, 10, 11 (A,B)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.5 {
			t.Errorf("Figure2[%02b] = %.2f nA, want %.0f", i, got[i], want[i])
		}
	}
}

func TestFigure2Ordering(t *testing.T) {
	m := Default()
	f := m.Figure2()
	if !(f[1] < f[0] && f[0] < f[2] && f[2] < f[3]) {
		t.Errorf("NAND2 ordering wrong: 01=%v 00=%v 10=%v 11=%v", f[1], f[0], f[2], f[3])
	}
}

// TestInputOrderMatters verifies the asymmetry the paper's gate input
// reordering step exploits: NAND2 "01" vs "10" differ by >3x.
func TestInputOrderMatters(t *testing.T) {
	m := Default()
	l01 := m.GateLeak(logic.Nand, []logic.Value{logic.Zero, logic.One})
	l10 := m.GateLeak(logic.Nand, []logic.Value{logic.One, logic.Zero})
	if l10 < 3*l01 {
		t.Errorf("NAND2 10/01 ratio = %v, want > 3", l10/l01)
	}
	// NOR has the dual asymmetry.
	n01 := m.GateLeak(logic.Nor, []logic.Value{logic.Zero, logic.One})
	n10 := m.GateLeak(logic.Nor, []logic.Value{logic.One, logic.Zero})
	if n01 < 3*n10 {
		t.Errorf("NOR2 01/10 ratio = %v, want > 3", n01/n10)
	}
}

// TestStackEffect: more OFF devices in series leak (much) less.
func TestStackEffect(t *testing.T) {
	m := Default()
	one := m.GateLeakBits(logic.Nand, 2, 0b10) // input0=0? bits: bit i = input i; 0b10 -> in0=0,in1=1
	two := m.GateLeakBits(logic.Nand, 2, 0b00) // both off
	if two >= one+200 {
		t.Errorf("stack effect missing: 2-off=%v 1-off=%v", two, one)
	}
	// NAND4: all-off much smaller than single-off-at-rail.
	allOff := m.GateLeakBits(logic.Nand, 4, 0b0000)
	railOff := m.GateLeakBits(logic.Nand, 4, 0b0111) // only input3 (rail) off
	if allOff >= railOff {
		t.Errorf("NAND4 all-off %v should leak less than rail-off %v", allOff, railOff)
	}
}

func TestPositionFactorMonotone(t *testing.T) {
	m := Default()
	// Single OFF device moving from output (idx 0) to rail (idx 3) in a
	// NAND4 must leak monotonically more.
	prev := -1.0
	for idx := 0; idx < 4; idx++ {
		bits := 0b1111 &^ (1 << idx)
		l := m.GateLeakBits(logic.Nand, 4, bits)
		if l <= prev {
			t.Errorf("position %d leak %v not increasing (prev %v)", idx, l, prev)
		}
		prev = l
	}
}

func TestGateLeakXAveraging(t *testing.T) {
	m := Default()
	// X on one input = average of the two refinements.
	lx := m.GateLeak(logic.Nand, []logic.Value{logic.X, logic.One})
	l0 := m.GateLeak(logic.Nand, []logic.Value{logic.Zero, logic.One})
	l1 := m.GateLeak(logic.Nand, []logic.Value{logic.One, logic.One})
	if math.Abs(lx-(l0+l1)/2) > 1e-9 {
		t.Errorf("X average wrong: %v vs %v", lx, (l0+l1)/2)
	}
	// All-X NAND2 = mean of the full table.
	lxx := m.GateLeak(logic.Nand, []logic.Value{logic.X, logic.X})
	f := m.Figure2()
	want := (f[0] + f[1] + f[2] + f[3]) / 4
	if math.Abs(lxx-want) > 1e-9 {
		t.Errorf("all-X NAND2 = %v, want table mean %v", lxx, want)
	}
}

func TestAllTablesPositive(t *testing.T) {
	m := Default()
	types := []struct {
		t     logic.GateType
		arity []int
	}{
		{logic.Not, []int{1}},
		{logic.Buf, []int{1}},
		{logic.Nand, []int{2, 3, 4}},
		{logic.Nor, []int{2, 3, 4}},
		{logic.And, []int{2, 3, 4}},
		{logic.Or, []int{2, 3, 4}},
		{logic.Xor, []int{2, 3}},
		{logic.Xnor, []int{2, 3}},
		{logic.Mux2, []int{3}},
	}
	for _, ty := range types {
		for _, a := range ty.arity {
			for bits := 0; bits < 1<<a; bits++ {
				l := m.GateLeakBits(ty.t, a, bits)
				if l <= 0 || math.IsNaN(l) || l > 1e5 {
					t.Errorf("%v/%d pattern %0*b: implausible leak %v", ty.t, a, a, bits, l)
				}
			}
		}
	}
}

func TestCompositeCellsLeakMore(t *testing.T) {
	m := Default()
	// AND = NAND+INV must leak more than the bare NAND in every state.
	for bits := 0; bits < 4; bits++ {
		if m.GateLeakBits(logic.And, 2, bits) <= m.GateLeakBits(logic.Nand, 2, bits) {
			t.Errorf("AND2 pattern %02b leaks no more than NAND2", bits)
		}
	}
	// XOR (4 NAND2s) leaks several times an inverter.
	if m.GateLeakBits(logic.Xor, 2, 0) < 2*m.GateLeakBits(logic.Not, 1, 0) {
		t.Error("XOR2 leak implausibly small")
	}
}

func TestMuxLeakMatchesNandNetwork(t *testing.T) {
	m := Default()
	for bits := 0; bits < 8; bits++ {
		d0 := bits&1 == 1
		d1 := bits&2 == 2
		sel := bits&4 == 4
		selb := !sel
		n1 := !(d0 && selb)
		n2 := !(d1 && sel)
		want := m.invLeak(sel) +
			m.raw(logic.Nand, []bool{d0, selb}) +
			m.raw(logic.Nand, []bool{d1, sel}) +
			m.raw(logic.Nand, []bool{n1, n2})
		if got := m.GateLeakBits(logic.Mux2, 3, bits); math.Abs(got-want) > 1e-9 {
			t.Errorf("MUX2 %03b: %v vs network %v", bits, got, want)
		}
	}
}

func TestCircuitLeakAgainstManualSum(t *testing.T) {
	m := Default()
	c := netlist.New("two")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGate(logic.Nand, "n", "a", "b")
	c.AddGate(logic.Not, "o", "n")
	c.MarkPO("o")
	c.MustFreeze()

	state := make([]logic.Value, c.NumNets())
	aID, _ := c.NetByName("a")
	bID, _ := c.NetByName("b")
	nID, _ := c.NetByName("n")
	state[aID], state[bID], state[nID] = logic.One, logic.Zero, logic.One

	want := m.GateLeak(logic.Nand, []logic.Value{logic.One, logic.Zero}) +
		m.GateLeak(logic.Not, []logic.Value{logic.One})
	if got := m.CircuitLeak(c, state); math.Abs(got-want) > 1e-9 {
		t.Errorf("CircuitLeak = %v, want %v", got, want)
	}

	bstate := make([]bool, c.NumNets())
	bstate[aID], bstate[bID], bstate[nID] = true, false, true
	if got := m.CircuitLeakBool(c, bstate); math.Abs(got-want) > 1e-9 {
		t.Errorf("CircuitLeakBool = %v, want %v", got, want)
	}
}

func TestPowerUW(t *testing.T) {
	m := Default()
	// 1000 nA at 0.9 V = 0.9 µW.
	if got := m.PowerUW(1000); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("PowerUW(1000) = %v, want 0.9", got)
	}
}

func TestLazyTableForUncommonArity(t *testing.T) {
	m := Default()
	// Arity 5 not prebuilt; GateLeak must build it on demand.
	in := []logic.Value{logic.One, logic.One, logic.One, logic.One, logic.One}
	l := m.GateLeak(logic.Nand, in)
	if l <= 0 {
		t.Errorf("NAND5 leak = %v", l)
	}
	// All-on NAND5: 5 off PMOS + 5 gate-leaking NMOS.
	p := DefaultParams()
	want := 5*p.IsubP + 5*p.IgN
	if math.Abs(l-want) > 1e-9 {
		t.Errorf("NAND5(1^5) = %v, want %v", l, want)
	}
}
