package leakage

import (
	"repro/internal/netlist"
)

// AccumLeakPacked adds every gate's leakage to the per-lane accumulators
// for a bit-parallel per-net state: words[n] carries net n's value in bit
// t for lane t (the layout of sim.Packed), and cyc[t] receives the sum of
// tabs[gi][input bits of gate gi in lane t] over all gates, for t < n.
// It is AccumLeakPackedW at one word per net.
func (m *Model) AccumLeakPacked(c *netlist.Circuit, words []uint64, n int, tabs [][]float64, cyc []float64) {
	m.AccumLeakPackedW(c, words, 1, n, tabs, cyc)
}

// AccumLeakPackedW is the lane-width-generic packed leakage accumulator:
// words holds ww uint64 words per net (net n's group at
// words[int(n)*ww:...], lane t at bit t&63 of word t>>6 — the layout of
// sim.Packed at ww=1 and sim.Wide at ww=4), and cyc[t] receives the sum
// of tabs[gi][input bits in lane t] over all gates, for t < n.
//
// The accumulation order is load-bearing: each cyc[t] is built in
// ascending gate-index order — exactly the order CircuitLeakBoolTabs sums
// one scalar state — so a caller that then folds cyc[0..n) in lane order
// reproduces the serial per-cycle leakage sums bit for bit, at any lane
// width. That is what lets the packed power kernels stay bit-identical
// to the serial one despite floating-point addition being
// non-associative.
//
// Internally the lanes are tiled eight at a time: one 8-lane block of
// accumulators stays in registers across a full walk of the gate list,
// and each gate's eight table indices are formed in a single word by
// byte-spreading its input words (spreadTab turns 8 packed bits into 8
// bytes; OR-ing shifted spreads interleaves the inputs). Every lane
// still gets exactly one add per gate, of the same table value, in the
// same ascending gate order, so per-lane sums are unchanged down to the
// ulp — at roughly a third of the cost of extracting each lane's bits
// serially, because the cyc loads and stores amortize over the whole
// gate list instead of repeating per gate.
func (m *Model) AccumLeakPackedW(c *netlist.Circuit, words []uint64, ww, n int, tabs [][]float64, cyc []float64) {
	base := 0
	for ; base+8 <= n; base += 8 {
		k := base >> 6
		sh := uint(base & 63)
		cw := cyc[base : base+8 : base+8]
		s0, s1, s2, s3 := cw[0], cw[1], cw[2], cw[3]
		s4, s5, s6, s7 := cw[4], cw[5], cw[6], cw[7]
		for gi := range c.Gates {
			g := &c.Gates[gi]
			tab := tabs[gi]
			var u uint64
			switch len(g.Inputs) {
			case 1:
				u = spreadTab[byte(words[int(g.Inputs[0])*ww+k]>>sh)]
				t2 := tab[0:2:2]
				s0 += t2[u&1]
				s1 += t2[u>>8&1]
				s2 += t2[u>>16&1]
				s3 += t2[u>>24&1]
				s4 += t2[u>>32&1]
				s5 += t2[u>>40&1]
				s6 += t2[u>>48&1]
				s7 += t2[u>>56&1]
			case 2:
				u = spreadTab[byte(words[int(g.Inputs[0])*ww+k]>>sh)] |
					spreadTab[byte(words[int(g.Inputs[1])*ww+k]>>sh)]<<1
				t4 := tab[0:4:4]
				s0 += t4[u&3]
				s1 += t4[u>>8&3]
				s2 += t4[u>>16&3]
				s3 += t4[u>>24&3]
				s4 += t4[u>>32&3]
				s5 += t4[u>>40&3]
				s6 += t4[u>>48&3]
				s7 += t4[u>>56&3]
			case 3:
				u = spreadTab[byte(words[int(g.Inputs[0])*ww+k]>>sh)] |
					spreadTab[byte(words[int(g.Inputs[1])*ww+k]>>sh)]<<1 |
					spreadTab[byte(words[int(g.Inputs[2])*ww+k]>>sh)]<<2
				t8 := tab[0:8:8]
				s0 += t8[u&7]
				s1 += t8[u>>8&7]
				s2 += t8[u>>16&7]
				s3 += t8[u>>24&7]
				s4 += t8[u>>32&7]
				s5 += t8[u>>40&7]
				s6 += t8[u>>48&7]
				s7 += t8[u>>56&7]
			case 4:
				u = spreadTab[byte(words[int(g.Inputs[0])*ww+k]>>sh)] |
					spreadTab[byte(words[int(g.Inputs[1])*ww+k]>>sh)]<<1 |
					spreadTab[byte(words[int(g.Inputs[2])*ww+k]>>sh)]<<2 |
					spreadTab[byte(words[int(g.Inputs[3])*ww+k]>>sh)]<<3
				t16 := tab[0:16:16]
				s0 += t16[u&15]
				s1 += t16[u>>8&15]
				s2 += t16[u>>16&15]
				s3 += t16[u>>24&15]
				s4 += t16[u>>32&15]
				s5 += t16[u>>40&15]
				s6 += t16[u>>48&15]
				s7 += t16[u>>56&15]
			default:
				// Wider gates are rare; extract their lanes serially.
				for t := uint(0); t < 8; t++ {
					idx := 0
					for i, in := range g.Inputs {
						idx |= int(words[int(in)*ww+k]>>(sh+t)&1) << i
					}
					v := tab[idx]
					switch t {
					case 0:
						s0 += v
					case 1:
						s1 += v
					case 2:
						s2 += v
					case 3:
						s3 += v
					case 4:
						s4 += v
					case 5:
						s5 += v
					case 6:
						s6 += v
					case 7:
						s7 += v
					}
				}
			}
		}
		cw[0], cw[1], cw[2], cw[3] = s0, s1, s2, s3
		cw[4], cw[5], cw[6], cw[7] = s4, s5, s6, s7
	}
	// Tail lanes of a batch not a multiple of 8, one lane at a time.
	for ; base < n; base++ {
		k, bit := base>>6, uint(base&63)
		s := cyc[base]
		for gi := range c.Gates {
			g := &c.Gates[gi]
			idx := 0
			for i, in := range g.Inputs {
				idx |= int(words[int(in)*ww+k]>>bit&1) << i
			}
			s += tabs[gi][idx]
		}
		cyc[base] = s
	}
}

// spreadTab[b] holds byte b spread one bit per byte: byte i of the word
// is bit i of b. OR-ing left-shifted spreads of several input words
// builds 8 lanes' table indices in one word-wide operation.
var spreadTab = func() (t [256]uint64) {
	for b := 0; b < 256; b++ {
		var u uint64
		for i := uint(0); i < 8; i++ {
			if b>>i&1 == 1 {
				u |= 1 << (8 * i)
			}
		}
		t[b] = u
	}
	return
}()

// validMask returns the valid-lane mask for one 64-lane word holding the
// remaining rem lanes of a batch (rem >= 1; full word when rem >= 64).
func validMask(rem int) uint64 {
	if rem >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(rem) - 1
}
