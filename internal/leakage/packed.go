package leakage

import "repro/internal/netlist"

// AccumLeakPacked adds every gate's leakage to the per-lane accumulators
// for a bit-parallel per-net state: words[n] carries net n's value in bit
// t for lane t (the layout of sim.Packed), and cyc[t] receives the sum of
// tabs[gi][input bits of gate gi in lane t] over all gates, for t < n.
//
// The accumulation order is load-bearing: each cyc[t] is built in
// ascending gate-index order — exactly the order CircuitLeakBoolTabs sums
// one scalar state — so a caller that then folds cyc[0..n) in lane order
// reproduces the serial per-cycle leakage sums bit for bit. That is what
// lets the packed power kernel stay bit-identical to the serial one
// despite floating-point addition being non-associative.
func (m *Model) AccumLeakPacked(c *netlist.Circuit, words []uint64, n int, tabs [][]float64, cyc []float64) {
	for gi := range c.Gates {
		g := &c.Gates[gi]
		tab := tabs[gi]
		switch len(g.Inputs) {
		case 1:
			a := words[g.Inputs[0]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[a&1]
				a >>= 1
			}
		case 2:
			a := words[g.Inputs[0]]
			b := words[g.Inputs[1]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[(a&1)|(b&1)<<1]
				a >>= 1
				b >>= 1
			}
		case 3:
			a := words[g.Inputs[0]]
			b := words[g.Inputs[1]]
			d := words[g.Inputs[2]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[(a&1)|(b&1)<<1|(d&1)<<2]
				a >>= 1
				b >>= 1
				d >>= 1
			}
		default:
			for t := 0; t < n; t++ {
				bits := 0
				for i, in := range g.Inputs {
					bits |= int(words[in]>>uint(t)&1) << i
				}
				cyc[t] += tab[bits]
			}
		}
	}
}
