package leakage

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/iscas"
	"repro/internal/netlist"
)

// Micro-benchmark of the packed leakage accumulator variants on a real
// gate mix; the package implementation must stay the fastest of these.

func benchCircuit(b *testing.B) (*netlist.Circuit, *Model, [][]float64) {
	b.Helper()
	p, ok := iscas.ByName("s5378")
	if !ok {
		b.Skip("no s5378 profile")
	}
	c, err := iscas.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	m := Default()
	return c, m, m.CircuitTables(c)
}

// accumShift is the pre-refactor accumulator: per lane, extract each
// input bit with shifts and index the table directly.
func accumShift(c *netlist.Circuit, words []uint64, n int, tabs [][]float64, cyc []float64) {
	for gi := range c.Gates {
		g := &c.Gates[gi]
		tab := tabs[gi]
		switch len(g.Inputs) {
		case 1:
			a := words[g.Inputs[0]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[a>>uint(t)&1]
			}
		case 2:
			a, b2 := words[g.Inputs[0]], words[g.Inputs[1]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[a>>uint(t)&1|(b2>>uint(t)&1)<<1]
			}
		case 3:
			a, b2, d := words[g.Inputs[0]], words[g.Inputs[1]], words[g.Inputs[2]]
			for t := 0; t < n; t++ {
				cyc[t] += tab[a>>uint(t)&1|(b2>>uint(t)&1)<<1|(d>>uint(t)&1)<<2]
			}
		default:
			for t := 0; t < n; t++ {
				idx := 0
				for i, in := range g.Inputs {
					idx |= int(words[in]>>uint(t)&1) << i
				}
				cyc[t] += tab[idx]
			}
		}
	}
}

// accumTZ is the mask-decomposition accumulator: one word-wide mask per
// table entry, walked with TrailingZeros64.
func accumTZ(c *netlist.Circuit, words []uint64, n int, tabs [][]float64, cyc []float64) {
	valid := ^uint64(0)
	if n < 64 {
		valid = 1<<uint(n) - 1
	}
	addTZ := func(m uint64, v float64) {
		for ; m != 0; m &= m - 1 {
			cyc[bits.TrailingZeros64(m)] += v
		}
	}
	for gi := range c.Gates {
		g := &c.Gates[gi]
		tab := tabs[gi]
		switch len(g.Inputs) {
		case 1:
			a := words[g.Inputs[0]]
			addTZ(valid&^a, tab[0])
			addTZ(valid&a, tab[1])
		case 2:
			a, b2 := words[g.Inputs[0]], words[g.Inputs[1]]
			addTZ(valid&^(a|b2), tab[0])
			addTZ(valid&a&^b2, tab[1])
			addTZ(valid&b2&^a, tab[2])
			addTZ(valid&a&b2, tab[3])
		case 3:
			a, b2, d := words[g.Inputs[0]], words[g.Inputs[1]], words[g.Inputs[2]]
			sa := [2]uint64{valid &^ a, valid & a}
			sb := [2]uint64{^b2, b2}
			sd := [2]uint64{^d, d}
			for ja := 0; ja < 2; ja++ {
				for jb := 0; jb < 2; jb++ {
					for jd := 0; jd < 2; jd++ {
						if w := sa[ja] & sb[jb] & sd[jd]; w != 0 {
							addTZ(w, tab[ja|jb<<1|jd<<2])
						}
					}
				}
			}
		default:
			for t := 0; t < n; t++ {
				idx := 0
				for i, in := range g.Inputs {
					idx |= int(words[in]>>uint(t)&1) << i
				}
				cyc[t] += tab[idx]
			}
		}
	}
}

func benchAccum(b *testing.B, n, ww int, fn func(c *netlist.Circuit, words []uint64, n int, tabs [][]float64, cyc []float64)) {
	c, _, tabs := benchCircuit(b)
	rng := rand.New(rand.NewSource(11))
	words := make([]uint64, c.NumNets()*ww)
	for i := range words {
		words[i] = rng.Uint64()
	}
	cyc := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := range cyc {
			cyc[t] = 0
		}
		fn(c, words, n, tabs, cyc)
	}
}

func BenchmarkAccumLeak64(b *testing.B) {
	c, m, tabs := benchCircuit(b)
	_ = c
	b.Run("shift", func(b *testing.B) { benchAccum(b, 64, 1, accumShift) })
	b.Run("tz", func(b *testing.B) { benchAccum(b, 64, 1, accumTZ) })
	b.Run("pkg", func(b *testing.B) {
		benchAccum(b, 64, 1, func(c *netlist.Circuit, words []uint64, n int, tabs [][]float64, cyc []float64) {
			m.AccumLeakPackedW(c, words, 1, n, tabs, cyc)
		})
	})
	_ = tabs
}

func BenchmarkAccumLeak256(b *testing.B) {
	_, m, _ := benchCircuit(b)
	b.Run("pkg", func(b *testing.B) {
		benchAccum(b, 256, 4, func(c *netlist.Circuit, words []uint64, n int, tabs [][]float64, cyc []float64) {
			m.AccumLeakPackedW(c, words, 4, n, tabs, cyc)
		})
	})
}

// accumU forms 8 lanes' indices in one spread word and extracts them
// with independent shifts — no byte-buffer round trip.
func accumU(c *netlist.Circuit, words []uint64, n int, tabs [][]float64, cyc []float64) {
	for gi := range c.Gates {
		g := &c.Gates[gi]
		tab := tabs[gi]
		switch len(g.Inputs) {
		case 2:
			t4 := tab[0:4:4]
			a, b2 := words[g.Inputs[0]], words[g.Inputs[1]]
			for q, base := 0, 0; base < n; q, base = q+1, base+8 {
				sh := 8 * uint(q)
				u := spreadTab[byte(a>>sh)] | spreadTab[byte(b2>>sh)]<<1
				cw := cyc[base : base+8 : base+8]
				cw[0] += t4[u&3]
				cw[1] += t4[u>>8&3]
				cw[2] += t4[u>>16&3]
				cw[3] += t4[u>>24&3]
				cw[4] += t4[u>>32&3]
				cw[5] += t4[u>>40&3]
				cw[6] += t4[u>>48&3]
				cw[7] += t4[u>>56&3]
			}
		case 1:
			t2 := tab[0:2:2]
			a := words[g.Inputs[0]]
			for q, base := 0, 0; base < n; q, base = q+1, base+8 {
				u := spreadTab[byte(a>>(8*uint(q)))]
				cw := cyc[base : base+8 : base+8]
				cw[0] += t2[u&1]
				cw[1] += t2[u>>8&1]
				cw[2] += t2[u>>16&1]
				cw[3] += t2[u>>24&1]
				cw[4] += t2[u>>32&1]
				cw[5] += t2[u>>40&1]
				cw[6] += t2[u>>48&1]
				cw[7] += t2[u>>56&1]
			}
		case 3:
			t8 := tab[0:8:8]
			a, b2, d := words[g.Inputs[0]], words[g.Inputs[1]], words[g.Inputs[2]]
			for q, base := 0, 0; base < n; q, base = q+1, base+8 {
				sh := 8 * uint(q)
				u := spreadTab[byte(a>>sh)] | spreadTab[byte(b2>>sh)]<<1 | spreadTab[byte(d>>sh)]<<2
				cw := cyc[base : base+8 : base+8]
				cw[0] += t8[u&7]
				cw[1] += t8[u>>8&7]
				cw[2] += t8[u>>16&7]
				cw[3] += t8[u>>24&7]
				cw[4] += t8[u>>32&7]
				cw[5] += t8[u>>40&7]
				cw[6] += t8[u>>48&7]
				cw[7] += t8[u>>56&7]
			}
		default:
			for t := 0; t < n; t++ {
				idx := 0
				for i, in := range g.Inputs {
					idx |= int(words[in]>>uint(t)&1) << i
				}
				cyc[t] += tab[idx]
			}
		}
	}
}

func BenchmarkAccumLeak64More(b *testing.B) {
	b.Run("directu", func(b *testing.B) { benchAccum(b, 64, 1, accumU) })
}

// BenchmarkAccumLeakTile times the shipping lane-tiled accumulator
// (AccumLeakPackedW) against the variants above; it must stay the
// fastest.
func BenchmarkAccumLeakTile(b *testing.B) {
	_, m, _ := benchCircuit(b)
	b.Run("tile64", func(b *testing.B) {
		benchAccum(b, 64, 1, func(c *netlist.Circuit, words []uint64, n int, tabs [][]float64, cyc []float64) {
			m.AccumLeakPackedW(c, words, 1, n, tabs, cyc)
		})
	})
	b.Run("tile256w4", func(b *testing.B) {
		benchAccum256(b, func(c *netlist.Circuit, words []uint64, n int, tabs [][]float64, cyc []float64) {
			m.AccumLeakPackedW(c, words, 4, n, tabs, cyc)
		})
	})
}

func benchAccum256(b *testing.B, fn func(c *netlist.Circuit, words []uint64, n int, tabs [][]float64, cyc []float64)) {
	c, _, tabs := benchCircuit(b)
	rng := rand.New(rand.NewSource(11))
	words := make([]uint64, c.NumNets()*4)
	for i := range words {
		words[i] = rng.Uint64()
	}
	cyc := make([]float64, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := range cyc {
			cyc[t] = 0
		}
		fn(c, words, 256, tabs, cyc)
	}
}
