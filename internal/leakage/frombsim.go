package leakage

import "repro/internal/bsim"

// ParamsFromDevices derives the behavioral calibration constants from the
// device-level BSIM models of internal/bsim instead of the Figure 2
// anchor: single-device subthreshold and tunneling currents are evaluated
// directly from Eq. 2 and Eq. 4, and the stack/position factors from the
// series-stack DC solver. This is the "characterize the library with a
// circuit simulator" path of the paper's Section 3, minus HSPICE.
//
// The default (Figure 2-anchored) calibration remains what the
// experiments use; ParamsFromDevices exists to show the behavioral model
// is obtainable from first principles and to let users re-derive it for
// other device corners.
func ParamsFromDevices(t bsim.Tech) (Params, error) {
	n, p := t.N, t.P
	isubN := bsim.NA(n.Subthreshold(0, t.VDD, 0))
	isubP := bsim.NA(p.Subthreshold(0, t.VDD, 0))

	one, err := bsim.SolveStack([]bsim.Device{n}, []bool{false}, t.VDD)
	if err != nil {
		return Params{}, err
	}
	two, err := bsim.SolveStack([]bsim.Device{n, n}, []bool{false, false}, t.VDD)
	if err != nil {
		return Params{}, err
	}
	offTop, err := bsim.SolveStack([]bsim.Device{n, n}, []bool{false, true}, t.VDD)
	if err != nil {
		return Params{}, err
	}
	offBottom, err := bsim.SolveStack([]bsim.Device{n, n}, []bool{true, false}, t.VDD)
	if err != nil {
		return Params{}, err
	}
	return Params{
		IsubN:         isubN,
		IsubP:         isubP,
		IgN:           bsim.NA(n.GateTunnel(t.VDD)),
		IgP:           bsim.NA(p.GateTunnel(t.VDD)),
		Stack:         one.Current / two.Current,
		OffNearOutput: offTop.Current / one.Current,
		OffNearRail:   offBottom.Current / one.Current,
		VDD:           t.VDD,
	}, nil
}

// defaultTech is split out for tests.
func defaultTech() bsim.Tech { return bsim.Default45() }
