package leakage

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// buildMixed returns a frozen circuit exercising every table arity the
// fill path meets: 1-, 2- and 3-input cells including a MUX2.
func buildMixed(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("mixed")
	c.AddPI("a")
	c.AddPI("b")
	c.AddPI("s")
	c.AddFF("f", "q", "d")
	c.AddGate(logic.Nand, "x", "a", "q")
	c.AddGate(logic.Nor, "y", "x", "b")
	c.AddGate(logic.Not, "ny", "y")
	c.AddGate(logic.Mux2, "m", "x", "ny", "s")
	c.AddGate(logic.And, "w", "a", "b", "m")
	c.AddGate(logic.Nand, "d", "w", "s")
	c.MarkPO("m")
	c.MustFreeze()
	return c
}

// TestCircuitLeakTabs3Identical: the table fast path must reproduce
// CircuitLeak to the last bit on random three-valued states — including
// all-X and all-binary extremes.
func TestCircuitLeakTabs3Identical(t *testing.T) {
	c := buildMixed(t)
	m := Default()
	tabs3 := m.CircuitTables3(c)
	rng := rand.New(rand.NewSource(3)) //nolint (deterministic test stream)
	state := make([]logic.Value, c.NumNets())
	for iter := 0; iter < 200; iter++ {
		for i := range state {
			state[i] = logic.Value(rng.Intn(3))
		}
		if iter == 0 {
			for i := range state {
				state[i] = logic.X
			}
		}
		if iter == 1 {
			for i := range state {
				state[i] = logic.FromBool(i%2 == 0)
			}
		}
		want := m.CircuitLeak(c, state)
		got := m.CircuitLeakTabs3(c, state, tabs3)
		if got != want {
			t.Fatalf("iter %d: tabs3 %v, reference %v", iter, got, want)
		}
	}
}

// TestAccumLeak3PackedMatchesScalar: each lane total of the packed
// three-valued accumulator must equal CircuitLeak on the lane's unpacked
// state, bit for bit.
func TestAccumLeak3PackedMatchesScalar(t *testing.T) {
	c := buildMixed(t)
	m := Default()
	tabs3 := m.CircuitTables3(c)
	rng := rand.New(rand.NewSource(7))
	nNets := c.NumNets()
	v := make([]uint64, nNets)
	x := make([]uint64, nNets)
	lanes := make([][]logic.Value, 64)
	for tl := 0; tl < 64; tl++ {
		lanes[tl] = make([]logic.Value, nNets)
		for n := 0; n < nNets; n++ {
			val := logic.Value(rng.Intn(3))
			lanes[tl][n] = val
			sim.PackValue(&v[n], &x[n], tl, val)
		}
	}
	for _, n := range []int{1, 13, 64} {
		cyc := make([]float64, 64)
		m.AccumLeak3Packed(c, v, x, n, tabs3, cyc)
		for tl := 0; tl < n; tl++ {
			want := m.CircuitLeak(c, lanes[tl])
			if cyc[tl] != want {
				t.Fatalf("n=%d lane %d: packed %v, scalar %v", n, tl, cyc[tl], want)
			}
		}
		for tl := n; tl < 64; tl++ {
			if cyc[tl] != 0 {
				t.Fatalf("n=%d: lane %d beyond batch accumulated %v", n, tl, cyc[tl])
			}
		}
	}
}

// TestAccumLineLeakPacked: the per-line conditional accumulator must
// reproduce the scalar per-sample loop — same sums in the same per-net
// addition order, lanes beyond the batch excluded.
func TestAccumLineLeakPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const nNets = 17
	for _, n := range []int{1, 31, 64} {
		words := make([]uint64, nNets)
		cyc := make([]float64, 64)
		for i := range words {
			words[i] = rng.Uint64()
		}
		for t := range cyc {
			cyc[t] = rng.Float64() * 1000
		}
		sum1 := make([]float64, nNets)
		cnt1 := make([]int, nNets)
		AccumLineLeakPacked(words, n, cyc, sum1, cnt1)

		wantSum := make([]float64, nNets)
		wantCnt := make([]int, nNets)
		for tl := 0; tl < n; tl++ {
			for ni := 0; ni < nNets; ni++ {
				if words[ni]>>uint(tl)&1 == 1 {
					wantSum[ni] += cyc[tl]
					wantCnt[ni]++
				}
			}
		}
		for ni := 0; ni < nNets; ni++ {
			if sum1[ni] != wantSum[ni] || cnt1[ni] != wantCnt[ni] {
				t.Fatalf("n=%d net %d: packed (%v,%d), scalar (%v,%d)",
					n, ni, sum1[ni], cnt1[ni], wantSum[ni], wantCnt[ni])
			}
		}
	}
}

// TestCircuitTables3SharedAcrossGates: gates of the same cell share one
// averaged table (no per-gate rebuild).
func TestCircuitTables3SharedAcrossGates(t *testing.T) {
	c := netlist.New("share")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGate(logic.Nand, "x", "a", "b")
	c.AddGate(logic.Nand, "y", "b", "a")
	c.MarkPO("x")
	c.MarkPO("y")
	c.MustFreeze()
	m := Default()
	tabs3 := m.CircuitTables3(c)
	if &tabs3[0][0] != &tabs3[1][0] {
		t.Error("identical cells received distinct averaged tables")
	}
	if len(tabs3[0]) != 16 {
		t.Errorf("NAND2 averaged table has %d entries, want 16", len(tabs3[0]))
	}
}
