package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const wireSchema = "scanpower/comparison/v1"

// wireBytes builds a compact stand-in for a v1 result document, the way
// the service produces one (a single json.Marshal).
func wireBytes(t *testing.T, circuit string, pad int) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]any{
		"schema":  wireSchema,
		"circuit": circuit,
		"pad":     strings.Repeat("x", pad),
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.WireSchema == "" {
		opts.WireSchema = wireSchema
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	key := Key{Fingerprint: 0xdeadbeef, Measure: "packed"}
	want := wireBytes(t, "s344", 0)

	if _, _, ok := s.Get(key); ok {
		t.Fatal("Get on empty store hit")
	}
	if err := s.Put(key, Meta{Circuit: "s344", Elapsed: 42 * time.Millisecond}, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, meta, ok := s.Get(key)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("round trip not bit-identical:\nput: %s\ngot: %s", want, got)
	}
	if meta.Circuit != "s344" || meta.Elapsed != 42*time.Millisecond {
		t.Errorf("meta = %+v", meta)
	}

	// A different measure backend is a different entry.
	if _, _, ok := s.Get(Key{Fingerprint: 0xdeadbeef, Measure: "dense"}); ok {
		t.Error("distinct-measure key hit the packed entry")
	}

	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 2 || st.Puts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestRestartWarmHit closes over nothing — a fresh Open on the same
// directory must serve the entry written by the previous Store.
func TestRestartWarmHit(t *testing.T) {
	dir := t.TempDir()
	key := Key{Fingerprint: 7, Measure: "packed"}
	want := wireBytes(t, "s27", 0)

	s1 := open(t, dir, Options{})
	if err := s1.Put(key, Meta{Circuit: "s27"}, want); err != nil {
		t.Fatalf("Put: %v", err)
	}

	s2 := open(t, dir, Options{})
	if s2.Len() != 1 {
		t.Fatalf("restarted store indexed %d entries, want 1", s2.Len())
	}
	got, _, ok := s2.Get(key)
	if !ok {
		t.Fatal("restarted store missed the warm entry")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("warm hit not bit-identical:\nput: %s\ngot: %s", want, got)
	}
}

// TestCorruptionEvicted flips and truncates entries and requires both to
// read as misses, with the files deleted — never served.
func TestCorruptionEvicted(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"bit-flip", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a bit inside the embedded result payload.
			i := bytes.Index(raw, []byte(`"result"`))
			if i < 0 || i+20 >= len(raw) {
				t.Fatalf("no result field to corrupt in %s", raw)
			}
			raw[i+15] ^= 0x01
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncate", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, Options{})
			key := Key{Fingerprint: 99, Measure: "packed"}
			if err := s.Put(key, Meta{}, wireBytes(t, "s344", 0)); err != nil {
				t.Fatalf("Put: %v", err)
			}
			path := filepath.Join(dir, key.id()+".json")
			tc.corrupt(t, path)

			if _, _, ok := s.Get(key); ok {
				t.Fatal("corrupted entry was served")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupted entry file survived: %v", err)
			}
			if st := s.Stats(); st.Corrupt != 1 || st.Entries != 0 {
				t.Errorf("stats after corruption = %+v", st)
			}

			// A restart scan also refuses a corrupted entry.
			if err := s.Put(key, Meta{}, wireBytes(t, "s344", 0)); err != nil {
				t.Fatalf("re-Put: %v", err)
			}
			tc.corrupt(t, path)
			s2 := open(t, dir, Options{})
			if s2.Len() != 0 {
				t.Errorf("restart indexed a corrupted entry")
			}
			if st := s2.Stats(); st.Corrupt != 1 {
				t.Errorf("restart stats = %+v", st)
			}
		})
	}
}

// TestWireSchemaMismatchInvalidated bumps the expected wire schema and
// requires old entries to be invalidated, not served.
func TestWireSchemaMismatchInvalidated(t *testing.T) {
	dir := t.TempDir()
	key := Key{Fingerprint: 5, Measure: "packed"}
	s1 := open(t, dir, Options{WireSchema: wireSchema})
	if err := s1.Put(key, Meta{}, wireBytes(t, "s344", 0)); err != nil {
		t.Fatalf("Put: %v", err)
	}

	s2 := open(t, dir, Options{WireSchema: "scanpower/comparison/v2"})
	if s2.Len() != 0 {
		t.Fatalf("v2 store served a v1 entry")
	}
	if _, _, ok := s2.Get(key); ok {
		t.Fatal("schema-mismatched entry was served")
	}
}

// TestLRUEviction caps the store and checks the least-recently-used
// entry goes first.
func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	keyA := Key{Fingerprint: 1, Measure: "packed"}
	keyB := Key{Fingerprint: 2, Measure: "packed"}
	keyC := Key{Fingerprint: 3, Measure: "packed"}

	// Each entry is ~600 bytes with the pad; cap to about two entries.
	s := open(t, dir, Options{MaxBytes: 1400})
	for _, k := range []Key{keyA, keyB} {
		if err := s.Put(k, Meta{}, wireBytes(t, "c", 400)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Touch A so B is the least recently used.
	if _, _, ok := s.Get(keyA); !ok {
		t.Fatal("A missing before eviction")
	}
	if err := s.Put(keyC, Meta{}, wireBytes(t, "c", 400)); err != nil {
		t.Fatalf("Put C: %v", err)
	}

	if _, _, ok := s.Get(keyB); ok {
		t.Error("LRU entry B survived the cap")
	}
	if _, _, ok := s.Get(keyA); !ok {
		t.Error("recently used entry A was evicted")
	}
	if _, _, ok := s.Get(keyC); !ok {
		t.Error("fresh entry C was evicted")
	}
	if st := s.Stats(); st.Evictions == 0 || st.Bytes > 1400 {
		t.Errorf("stats after eviction = %+v", st)
	}
}

// TestNilStore checks the no-op contract of a nil *Store.
func TestNilStore(t *testing.T) {
	var s *Store
	if err := s.Put(Key{}, Meta{}, []byte("{}")); err != nil {
		t.Errorf("nil Put: %v", err)
	}
	if _, _, ok := s.Get(Key{}); ok {
		t.Error("nil Get hit")
	}
	if s.Len() != 0 || s.Dir() != "" || s.Stats() != (Stats{}) {
		t.Error("nil accessors not zero")
	}
}

// TestPutOverwrite replaces an entry and checks size accounting.
func TestPutOverwrite(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	key := Key{Fingerprint: 11, Measure: "fast"}
	if err := s.Put(key, Meta{}, wireBytes(t, "a", 100)); err != nil {
		t.Fatal(err)
	}
	want := wireBytes(t, "b", 10)
	if err := s.Put(key, Meta{}, want); err != nil {
		t.Fatal(err)
	}
	got, _, ok := s.Get(key)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("overwrite not visible: ok=%v got=%s", ok, got)
	}
	st := s.Stats()
	if st.Entries != 1 {
		t.Errorf("entries = %d after overwrite", st.Entries)
	}
	fi, err := os.Stat(filepath.Join(s.Dir(), key.id()+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != fi.Size() {
		t.Errorf("size accounting %d != file size %d", st.Bytes, fi.Size())
	}
}
