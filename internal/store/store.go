// Package store is the disk-backed, content-addressed result store
// behind scanpowerd's warm-start path: completed job results — the
// scanpower/comparison/v1 wire bytes plus a little run metadata — keyed
// by the circuit's structural fingerprint and the measurement backend,
// one file per entry.
//
// The store gives a restarted daemon its memory back: a job whose result
// was computed before the restart is served from disk, bit-identical to
// the original response, with no ATPG or measurement work. Guarantees:
//
//   - atomic writes — entries are written to a temp file and renamed in,
//     so a crash mid-Put never leaves a half-entry the next Open could
//     serve;
//   - corruption detection — every entry carries a CRC-32 of its result
//     bytes plus the entry and wire schema versions; a truncated,
//     bit-flipped or version-mismatched entry is deleted on read, never
//     served;
//   - bounded size — Put evicts least-recently-used entries once the
//     store exceeds MaxBytes;
//   - warm start — Open scans the directory and rebuilds the index, so
//     hits are served from the first request after a restart.
//
// Deadlines are deliberately absent from the key: they bound how long a
// job may run, not what it computes, so jobs differing only in timeout
// share one entry.
package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// EntrySchemaV1 tags the on-disk entry layout. Bump on any breaking
// change to the entry file format; Open deletes entries with any other
// tag.
const EntrySchemaV1 = "scanpower/store-entry/v1"

// Key identifies one stored result: the frozen circuit's structural
// fingerprint plus every job option that changes the computed bytes.
type Key struct {
	// Fingerprint is netlist.Circuit.Fingerprint() of the frozen circuit.
	Fingerprint uint64
	// Measure is the measurement backend name ("packed", "fast",
	// "dense"). Callers canonicalize "" to the effective default before
	// building a Key so "no preference" and an explicit default share an
	// entry.
	Measure string
	// Activity is the job's switching-activity profile hash
	// (power.ActivityProfile.Hash), 0 when the job carries none. An
	// activity profile adds columns to the result document, so jobs that
	// differ only in activity must not share an entry.
	Activity uint64
}

// id returns the filename-safe form of the key. Keys without activity
// keep the pre-activity two-part form, so stores written before the
// activity extension stay warm across the upgrade.
func (k Key) id() string {
	if k.Activity == 0 {
		return fmt.Sprintf("%016x-%s", k.Fingerprint, k.Measure)
	}
	return fmt.Sprintf("%016x-%s-a%016x", k.Fingerprint, k.Measure, k.Activity)
}

// Meta is the run metadata stored alongside the result bytes.
type Meta struct {
	// Circuit is the job's circuit name (informational; the fingerprint
	// is authoritative).
	Circuit string
	// Elapsed is how long the original computation took.
	Elapsed time.Duration
}

// entryV1 is the on-disk JSON layout of one entry. Result holds the
// wire-schema bytes verbatim (they are compact json.Marshal output, so
// embedding them as a RawMessage preserves them byte for byte).
type entryV1 struct {
	Schema     string          `json:"schema"`
	WireSchema string          `json:"wire_schema"`
	Key        string          `json:"key"`
	Circuit    string          `json:"circuit,omitempty"`
	Measure    string          `json:"measure"`
	CreatedAt  string          `json:"created_at"`
	ElapsedNS  int64           `json:"elapsed_ns,omitempty"`
	Checksum   string          `json:"checksum"`
	Result     json.RawMessage `json:"result"`
}

func checksum(b []byte) string {
	return fmt.Sprintf("crc32:%08x", crc32.ChecksumIEEE(b))
}

// Options configures Open.
type Options struct {
	// MaxBytes caps the total size of entry files; Put evicts the
	// least-recently-used entries past it. 0 means no cap.
	MaxBytes int64
	// WireSchema is the schema tag entries must carry (for example
	// scanpower.ComparisonSchemaV1). Entries with any other tag are
	// invalidated — deleted, not served — on Open and on Get, so a wire
	// schema bump never replays stale bytes.
	WireSchema string
}

// Stats is a point-in-time view of the store's counters.
type Stats struct {
	Entries   int
	Bytes     int64
	Hits      int64
	Misses    int64
	Puts      int64
	Evictions int64
	// Corrupt counts entries deleted because their checksum, schema or
	// key did not verify (at Open or Get).
	Corrupt int64
}

// entryInfo is the in-memory index record of one entry file.
type entryInfo struct {
	size   int64
	access int64 // LRU clock: larger = more recently used
}

// Store is the disk-backed result store. Open creates it; it is safe for
// concurrent use. A nil *Store is a valid no-op store: Get always
// misses and Put discards.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	entries map[string]entryInfo
	size    int64
	clock   int64
	stats   Stats
}

// Open creates (if needed) and indexes the store directory, deleting
// entries that fail verification or carry a stale schema. The rebuild
// reads every entry once; the result bytes are verified again on each
// Get, so a corruption introduced after Open is still caught.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, entries: make(map[string]entryInfo)}

	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Oldest files get the oldest LRU stamps, so the cap evicts in
	// roughly original age order after a restart.
	type candidate struct {
		path string
		mod  time.Time
	}
	var cands []candidate
	for _, path := range names {
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		cands = append(cands, candidate{path, fi.ModTime()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mod.Before(cands[j].mod) })
	for _, cand := range cands {
		id := strings.TrimSuffix(filepath.Base(cand.path), ".json")
		if _, err := s.readVerified(cand.path, id); err != nil {
			s.stats.Corrupt++
			os.Remove(cand.path)
			continue
		}
		s.clock++
		s.entries[id] = entryInfo{size: entrySize(cand.path), access: s.clock}
		s.size += s.entries[id].size
	}
	s.evictLocked()
	return s, nil
}

func entrySize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Dir returns the store's directory ("" on a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

func (s *Store) path(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// readVerified parses and verifies one entry file: entry schema, wire
// schema, key match and result checksum all have to hold.
func (s *Store) readVerified(path, wantID string) (*entryV1, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e entryV1
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, fmt.Errorf("store: entry %s unparseable: %w", wantID, err)
	}
	if e.Schema != EntrySchemaV1 {
		return nil, fmt.Errorf("store: entry %s schema %q, want %q", wantID, e.Schema, EntrySchemaV1)
	}
	if s.opts.WireSchema != "" && e.WireSchema != s.opts.WireSchema {
		return nil, fmt.Errorf("store: entry %s wire schema %q, want %q", wantID, e.WireSchema, s.opts.WireSchema)
	}
	if e.Key != wantID {
		return nil, fmt.Errorf("store: entry %s claims key %q", wantID, e.Key)
	}
	if got := checksum(e.Result); got != e.Checksum {
		return nil, fmt.Errorf("store: entry %s checksum %s, recorded %s", wantID, got, e.Checksum)
	}
	return &e, nil
}

// Get returns the stored wire bytes and metadata for key. ok is false on
// a miss; an entry that fails verification counts as corrupt, is deleted
// and reads as a miss.
func (s *Store) Get(key Key) (wire []byte, meta Meta, ok bool) {
	if s == nil {
		return nil, Meta{}, false
	}
	id := key.id()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.entries[id]; !exists {
		s.stats.Misses++
		return nil, Meta{}, false
	}
	e, err := s.readVerified(s.path(id), id)
	if err != nil {
		s.dropLocked(id)
		s.stats.Corrupt++
		s.stats.Misses++
		return nil, Meta{}, false
	}
	s.clock++
	info := s.entries[id]
	info.access = s.clock
	s.entries[id] = info
	s.stats.Hits++
	return []byte(e.Result), Meta{
		Circuit: e.Circuit,
		Elapsed: time.Duration(e.ElapsedNS),
	}, true
}

// Put stores wire (which must be the compact output of a single
// json.Marshal of the wire type — the bytes are returned verbatim by
// Get) under key, overwriting any existing entry, then enforces the
// size cap. Errors are returned, not fatal: a full disk degrades the
// store to a cache miss, never the job itself.
func (s *Store) Put(key Key, meta Meta, wire []byte) error {
	if s == nil {
		return nil
	}
	id := key.id()
	e := entryV1{
		Schema:     EntrySchemaV1,
		WireSchema: s.opts.WireSchema,
		Key:        id,
		Circuit:    meta.Circuit,
		Measure:    key.Measure,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339Nano),
		ElapsedNS:  meta.Elapsed.Nanoseconds(),
		Checksum:   checksum(wire),
		Result:     json.RawMessage(wire),
	}
	raw, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, id+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if old, exists := s.entries[id]; exists {
		s.size -= old.size
	}
	s.clock++
	s.entries[id] = entryInfo{size: int64(len(raw)), access: s.clock}
	s.size += int64(len(raw))
	s.stats.Puts++
	s.evictLocked()
	return nil
}

// dropLocked removes one entry (index and file). Callers hold s.mu.
func (s *Store) dropLocked(id string) {
	if info, exists := s.entries[id]; exists {
		s.size -= info.size
		delete(s.entries, id)
	}
	os.Remove(s.path(id))
}

// evictLocked enforces the size cap, dropping least-recently-used
// entries first. Callers hold s.mu.
func (s *Store) evictLocked() {
	if s.opts.MaxBytes <= 0 {
		return
	}
	for s.size > s.opts.MaxBytes && len(s.entries) > 0 {
		oldest, oldestAccess := "", int64(0)
		for id, info := range s.entries {
			if oldest == "" || info.access < oldestAccess {
				oldest, oldestAccess = id, info.access
			}
		}
		s.dropLocked(oldest)
		s.stats.Evictions++
	}
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns the current counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.size
	return st
}
