package atpg

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sim"
)

// TestFaultSim64AgainstSerial cross-validates the bit-parallel simulator
// against the serial one, lane by lane, over random batches.
func TestFaultSim64AgainstSerial(t *testing.T) {
	c, err := bench.ParseString(s27, "s27")
	if err != nil {
		t.Fatal(err)
	}
	faults := AllFaults(c)
	fsS := NewFaultSim(c)
	fsP := NewFaultSim64(c)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(64)
		batch := make([]scan.Pattern, n)
		for i := range batch {
			batch[i] = scan.Pattern{
				PI:    make([]bool, len(c.PIs)),
				State: make([]bool, c.NumFFs()),
			}
			sim.RandomVector(rng, batch[i].PI)
			sim.RandomVector(rng, batch[i].State)
		}
		fsP.SetPatterns(batch)
		for _, f := range faults {
			mask := fsP.DetectMask(f)
			for lane := 0; lane < n; lane++ {
				fsS.SetPattern(batch[lane].PI, batch[lane].State)
				want := fsS.Detects(f)
				got := mask&(1<<lane) != 0
				if got != want {
					t.Fatalf("trial %d fault %s lane %d: parallel=%v serial=%v",
						trial, f.Name(c), lane, got, want)
				}
			}
		}
	}
}

func TestFaultSim64LaneMaskRespectsBatchSize(t *testing.T) {
	c, err := bench.ParseString(s27, "s27")
	if err != nil {
		t.Fatal(err)
	}
	// One pattern: only lane 0 may ever be set.
	p := scan.Pattern{PI: make([]bool, len(c.PIs)), State: make([]bool, c.NumFFs())}
	fs := NewFaultSim64(c)
	fs.SetPatterns([]scan.Pattern{p})
	for _, f := range AllFaults(c) {
		if mask := fs.DetectMask(f); mask&^1 != 0 {
			t.Fatalf("fault %s: mask %b has bits beyond lane 0", f.Name(c), mask)
		}
	}
}

func TestFaultSim64PanicsOnBadBatch(t *testing.T) {
	c, err := bench.ParseString(s27, "s27")
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultSim64(c)
	defer func() {
		if recover() == nil {
			t.Fatal("empty batch did not panic")
		}
	}()
	fs.SetPatterns(nil)
}

// TestGenerateParallelPhaseCoverageParity: the 64-way random phase must
// not lose coverage relative to an independent full re-simulation of the
// kept patterns plus PODEM top-ups.
func TestGenerateParallelPhaseCoverageParity(t *testing.T) {
	p, _ := iscas.ByName("s344")
	c, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	indep := CoverageOf(c, res.Patterns)
	claimed := float64(res.DetectedCount()) / float64(len(res.Faults))
	if indep < claimed-1e-12 {
		t.Errorf("claimed coverage %v exceeds independent re-simulation %v", claimed, indep)
	}
}

func BenchmarkFaultSimSerialBatch(b *testing.B) {
	p, _ := iscas.ByName("s1423")
	c, err := iscas.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	faults := AllFaults(c)
	fs := NewFaultSim(c)
	rng := rand.New(rand.NewSource(12))
	batch := randomBatch(c, rng, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pat := range batch {
			fs.SetPattern(pat.PI, pat.State)
			for _, f := range faults {
				fs.Detects(f)
			}
		}
	}
}

func BenchmarkFaultSim64Batch(b *testing.B) {
	p, _ := iscas.ByName("s1423")
	c, err := iscas.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	faults := AllFaults(c)
	fs := NewFaultSim64(c)
	rng := rand.New(rand.NewSource(12))
	batch := randomBatch(c, rng, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.SetPatterns(batch)
		for _, f := range faults {
			fs.DetectMask(f)
		}
	}
}

func randomBatch(c *netlist.Circuit, rng *rand.Rand, n int) []scan.Pattern {
	batch := make([]scan.Pattern, n)
	for i := range batch {
		batch[i] = scan.Pattern{
			PI:    make([]bool, len(c.PIs)),
			State: make([]bool, c.NumFFs()),
		}
		sim.RandomVector(rng, batch[i].PI)
		sim.RandomVector(rng, batch[i].State)
	}
	return batch
}
