package atpg

import (
	"fmt"
	"math/bits"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sim"
)

// FaultSimW is a bit-parallel stuck-at fault simulator (the classic
// PPSFP technique) over a configurable lane count: each net carries
// lanes/64 words holding its value under up to `lanes` patterns at once.
// The good-circuit pass runs the compiled levelized program (sim.Compile)
// directly over the flat per-net state — the same instruction stream the
// packed measure, observability, and fill kernels execute — so loading a
// 256-pattern batch costs one wide compiled evaluation instead of four
// interpreted topological walks.
//
// The faulty passes are deliberately NOT width-parallel: event-driven
// simulation does the same total word operations at any lane width (a
// four-word event is four single-word events), so widening buys nothing
// there and costs plenty — a fault detected by the first 64 patterns
// would still drag its whole 256-lane cone through every event. Instead
// each fault is simulated one 64-lane word at a time, in ascending word
// order, stopping as soon as the caller's detection quota is met. The
// per-word pass keeps the faulty state as a repaired copy of the good
// state (equal outside a pass, patched back afterward via a touched
// list), so the inner loop reads operands with one unconditional load
// instead of a stamp-check branch per fanin, and walks flattened
// structure arrays (fanin/fanout CSR, levels, observability flags)
// instead of the pointer-rich netlist structs.
//
// The lane count is a pure throughput knob: detection masks are per-lane
// exact, and DetectAllMask credits lowest lanes first — ascending word,
// then ascending bit — which is exactly the order the early-exit word
// walk discovers them, so results are independent of the width.
// FaultSim64 wraps the 64-lane instantiation behind the original
// single-word API for the generation phases whose rng stream and stall
// accounting are defined in 64-pattern batches.
type FaultSimW struct {
	c    *netlist.Circuit
	prog *sim.Program
	ww   int // words per net (lane count / 64)
	n    int // number of valid pattern lanes (1..64*ww)

	good   []uint64 // NumNets()*ww; net n's words at [n*ww : (n+1)*ww]
	faulty []uint64 // == good outside a pass; patched back via touched
	gstamp []uint32 // per-gate scheduled-this-pass stamp
	epoch  uint32

	// Flattened structure arrays: everything the event loop touches per
	// gate, without loading netlist.Gate or netlist.Net structs.
	gop      []uint8 // fused (type, arity) opcode, see fop* constants
	ginStart []int32 // gate g's fanin words at gins[ginStart[g]:ginStart[g+1]]
	gins     []int32 // fanin net IDs premultiplied by ww (flat word indices)
	gout     []int32 // output net ID premultiplied by ww
	goutNet  []netlist.NetID
	glevel   []int32
	fanStart []int32 // net n's fanout gates at fanGates[fanStart[n]:fanStart[n+1]]
	fanGates []netlist.GateID
	obsFlag  []uint8 // 1 if the net is a PO or feeds a flop D input
	piGrp    []int32 // PI i's net ID premultiplied by ww
	ffGrp    []int32 // flop f's Q net ID premultiplied by ww

	buckets [][]netlist.GateID
	lvlMask []uint64 // occupancy bitmap over buckets: bit l set iff level l is non-empty
	touched []int32  // flat word indices diverged this pass, for repair
	lanes   []uint64 // ww, valid-lane mask of the loaded batch
	detBuf  []uint64 // ww, DetectMask result
	credBuf []uint64 // ww, DetectAllMask result
}

// NewFaultSimW builds a parallel simulator for the frozen circuit c with
// the given lane count (0 means the default, sim.WideLanes). It panics —
// naming the offender — on an unfrozen circuit or an unsupported width.
func NewFaultSimW(c *netlist.Circuit, lanes int) *FaultSimW {
	if !c.Frozen() {
		panic(fmt.Sprintf("atpg: FaultSimW needs a frozen circuit, got unfrozen %q", c.Name))
	}
	width, err := sim.ResolveLanes(lanes)
	if err != nil {
		panic("atpg: " + err.Error())
	}
	ww := width / 64
	nNets, nGates := c.NumNets(), c.NumGates()

	fs := &FaultSimW{
		c:        c,
		prog:     sim.Compile(c),
		ww:       ww,
		good:     make([]uint64, nNets*ww),
		faulty:   make([]uint64, nNets*ww),
		gstamp:   make([]uint32, nGates),
		gop:      make([]uint8, nGates),
		ginStart: make([]int32, nGates+1),
		gout:     make([]int32, nGates),
		goutNet:  make([]netlist.NetID, nGates),
		glevel:   make([]int32, nGates),
		fanStart: make([]int32, nNets+1),
		obsFlag:  make([]uint8, nNets),
		buckets:  make([][]netlist.GateID, c.Depth()+1),
		lvlMask:  make([]uint64, (c.Depth()+64)/64),
		lanes:    make([]uint64, ww),
		detBuf:   make([]uint64, ww),
		credBuf:  make([]uint64, ww),
	}
	nIns := 0
	for gi := range c.Gates {
		nIns += len(c.Gates[gi].Inputs)
	}
	fs.gins = make([]int32, 0, nIns)
	for gi := range c.Gates {
		g := &c.Gates[gi]
		fs.gop[gi] = fuseOp(g.Type, len(g.Inputs))
		for _, in := range g.Inputs {
			fs.gins = append(fs.gins, int32(in)*int32(ww))
		}
		fs.ginStart[gi+1] = int32(len(fs.gins))
		fs.gout[gi] = int32(g.Output) * int32(ww)
		fs.goutNet[gi] = g.Output
		fs.glevel[gi] = int32(c.Level(netlist.GateID(gi)))
	}
	nFan := 0
	for ni := range c.Nets {
		nFan += len(c.Nets[ni].Fanout)
	}
	fs.fanGates = make([]netlist.GateID, 0, nFan)
	for ni := range c.Nets {
		net := &c.Nets[ni]
		fs.fanGates = append(fs.fanGates, net.Fanout...)
		fs.fanStart[ni+1] = int32(len(fs.fanGates))
		if net.IsPO() || len(net.FanoutFF) > 0 {
			fs.obsFlag[ni] = 1
		}
	}
	fs.piGrp = make([]int32, len(c.PIs))
	for i, piNet := range c.PIs {
		fs.piGrp[i] = int32(piNet) * int32(ww)
	}
	fs.ffGrp = make([]int32, len(c.FFs))
	for f, ff := range c.FFs {
		fs.ffGrp[f] = int32(ff.Q) * int32(ww)
	}
	return fs
}

// LaneWidth returns the simulator's batch capacity in patterns.
func (fs *FaultSimW) LaneWidth() int { return fs.ww * 64 }

// SetPatterns loads up to LaneWidth() patterns (lane i = patterns[i]) and
// runs the good-circuit simulation.
func (fs *FaultSimW) SetPatterns(patterns []scan.Pattern) {
	if len(patterns) == 0 || len(patterns) > fs.ww*64 {
		panic(fmt.Sprintf("atpg: SetPatterns needs 1..%d patterns, got %d", fs.ww*64, len(patterns)))
	}
	ww := fs.ww
	fs.n = len(patterns)
	for k := 0; k < ww; k++ {
		rem := fs.n - k*64
		switch {
		case rem >= 64:
			fs.lanes[k] = ^uint64(0)
		case rem <= 0:
			fs.lanes[k] = 0
		default:
			fs.lanes[k] = 1<<uint(rem) - 1
		}
	}
	for _, grp := range fs.piGrp {
		for k := 0; k < ww; k++ {
			fs.good[int(grp)+k] = 0
		}
	}
	for _, grp := range fs.ffGrp {
		for k := 0; k < ww; k++ {
			fs.good[int(grp)+k] = 0
		}
	}
	// Pack pattern-major: each pattern's PI/State slices are read
	// sequentially (one cache-friendly walk per lane) instead of chasing
	// lane l's bit through all the pattern structs once per input.
	for lane, p := range patterns {
		wk, bit := lane>>6, uint64(1)<<uint(lane&63)
		for i, v := range p.PI {
			if v {
				fs.good[int(fs.piGrp[i])+wk] |= bit
			}
		}
		for f, v := range p.State {
			if v {
				fs.good[int(fs.ffGrp[f])+wk] |= bit
			}
		}
	}
	// The good-circuit values come straight from the compiled levelized
	// program over the flat state — the same instruction stream the
	// packed measure/obs/fill kernels execute.
	fs.prog.Run(fs.good, ww)
	// Establish the repair invariant: faulty mirrors good between passes.
	copy(fs.faulty, fs.good)
}

// detectWord runs one 64-lane faulty pass for fault f over lane word k
// and returns the word's detection mask. It assumes (and restores) the
// repair invariant faulty == good.
func (fs *FaultSimW) detectWord(f Fault, stuck uint64, k int) uint64 {
	valid := fs.lanes[k]
	fi := int(f.Net)*fs.ww + k
	good, faulty := fs.good, fs.faulty
	act := (good[fi] ^ stuck) & valid
	if act == 0 {
		return 0
	}
	fs.epoch++
	if fs.epoch == 0 {
		for i := range fs.gstamp {
			fs.gstamp[i] = 0
		}
		fs.epoch = 1
	}
	epoch := fs.epoch
	faulty[fi] = stuck
	fs.touched = append(fs.touched[:0], int32(fi))
	det := uint64(0)
	if fs.obsFlag[f.Net] != 0 {
		det = act
	}
	// Buckets are empty between passes (each level is drained and reset as
	// it is processed), and a gate's fanout gates sit at strictly higher
	// levels, so the walk can pop occupied levels in ascending order off
	// the lvlMask bitmap — empty levels inside a deep, narrow cone cost
	// nothing — and never revisits or mutates the level it is draining.
	for fo := fs.fanStart[f.Net]; fo < fs.fanStart[f.Net+1]; fo++ {
		g := fs.fanGates[fo]
		fs.gstamp[g] = epoch
		lg := fs.glevel[g]
		fs.lvlMask[lg>>6] |= 1 << (uint(lg) & 63)
		fs.buckets[lg] = append(fs.buckets[lg], g)
	}
	gins, ginStart := fs.gins, fs.ginStart
	for wi := 0; wi < len(fs.lvlMask); wi++ {
		for fs.lvlMask[wi] != 0 {
			b := bits.TrailingZeros64(fs.lvlMask[wi])
			fs.lvlMask[wi] &^= 1 << uint(b)
			lvl := wi<<6 | b
			for _, gi := range fs.buckets[lvl] {
				onet := fs.goutNet[gi]
				if onet == f.Net {
					continue
				}
				s, e := int(ginStart[gi]), int(ginStart[gi+1])
				w := faulty[int(gins[s])+k]
				switch fs.gop[gi] {
				case fopBuf:
				case fopNot:
					w = ^w
				case fopAnd2:
					w &= faulty[int(gins[s+1])+k]
				case fopNand2:
					w = ^(w & faulty[int(gins[s+1])+k])
				case fopOr2:
					w |= faulty[int(gins[s+1])+k]
				case fopNor2:
					w = ^(w | faulty[int(gins[s+1])+k])
				case fopXor2:
					w ^= faulty[int(gins[s+1])+k]
				case fopXnor2:
					w = ^(w ^ faulty[int(gins[s+1])+k])
				case fopAndN:
					for j := s + 1; j < e; j++ {
						w &= faulty[int(gins[j])+k]
					}
				case fopNandN:
					for j := s + 1; j < e; j++ {
						w &= faulty[int(gins[j])+k]
					}
					w = ^w
				case fopOrN:
					for j := s + 1; j < e; j++ {
						w |= faulty[int(gins[j])+k]
					}
				case fopNorN:
					for j := s + 1; j < e; j++ {
						w |= faulty[int(gins[j])+k]
					}
					w = ^w
				case fopXorN:
					for j := s + 1; j < e; j++ {
						w ^= faulty[int(gins[j])+k]
					}
				case fopXnorN:
					for j := s + 1; j < e; j++ {
						w ^= faulty[int(gins[j])+k]
					}
					w = ^w
				default: // fopMux2
					d1, sel := faulty[int(gins[s+1])+k], faulty[int(gins[s+2])+k]
					w = (w &^ sel) | (d1 & sel)
				}
				oi := int(fs.gout[gi]) + k
				if (w^faulty[oi])&valid == 0 {
					continue
				}
				// Each gate is scheduled at most once per pass, so this is the
				// output's first divergence from good — record it for repair.
				fs.touched = append(fs.touched, int32(oi))
				faulty[oi] = w
				if fs.obsFlag[onet] != 0 {
					det |= (w ^ good[oi]) & valid
				}
				for fo := fs.fanStart[onet]; fo < fs.fanStart[onet+1]; fo++ {
					g := fs.fanGates[fo]
					if fs.gstamp[g] != epoch {
						fs.gstamp[g] = epoch
						lg := fs.glevel[g]
						fs.lvlMask[lg>>6] |= 1 << (uint(lg) & 63)
						fs.buckets[lg] = append(fs.buckets[lg], g)
					}
				}
			}
			fs.buckets[lvl] = fs.buckets[lvl][:0]
		}
	}
	for _, oi := range fs.touched {
		faulty[oi] = good[oi]
	}
	fs.touched = fs.touched[:0]
	return det
}

// DetectMask returns, as a bitmask over the loaded lanes (lane t at bit
// t&63 of word t/64), the patterns that detect fault f at a primary
// output or flop data input. The returned slice is an internal buffer
// reused by the next call.
func (fs *FaultSimW) DetectMask(f Fault) []uint64 {
	stuck := uint64(0)
	if f.Stuck {
		stuck = ^uint64(0)
	}
	det := fs.detBuf
	for k := 0; k < fs.ww; k++ {
		det[k] = fs.detectWord(f, stuck, k)
	}
	return det
}

// DetectAllMask is the batched fault-dropping pass: one packed sweep over
// every fault still short of its nDetect quota, under the patterns loaded
// by SetPatterns. Per fault, detections are credited to the
// lowest-indexed detecting lanes until the quota is met — ascending word,
// then ascending bit within the word, which is exactly the order a serial
// per-pattern sweep credits them. The updated detCount values (and, when
// non-nil, the detected flags) are therefore bit-identical to processing
// the loaded patterns one at a time in lane order, at any lane width. The
// return value is the mask of lanes that received at least one credit,
// i.e. the patterns that earned their place in the set; like DetectMask's
// result it is an internal buffer reused by the next call.
//
// Because crediting is ascending-word-first, lane words past the one that
// fills the quota cannot contribute; the sweep therefore stops simulating
// a fault as soon as its quota is met, which for dropping sweeps
// (nDetect 1) skips most of the batch for every easy fault.
func (fs *FaultSimW) DetectAllMask(faults []Fault, detCount []int, detected []bool, nDetect int) []uint64 {
	if nDetect < 1 {
		nDetect = 1
	}
	cred := fs.credBuf
	for k := range cred {
		cred[k] = 0
	}
	for i, f := range faults {
		if detCount[i] >= nDetect {
			continue
		}
		stuck := uint64(0)
		if f.Stuck {
			stuck = ^uint64(0)
		}
		hit := false
		for k := 0; k < fs.ww && detCount[i] < nDetect; k++ {
			m := fs.detectWord(f, stuck, k)
			if m == 0 {
				continue
			}
			hit = true
			for m != 0 && detCount[i] < nDetect {
				low := m & (-m)
				cred[k] |= low
				m &^= low
				detCount[i]++
			}
		}
		if hit && detected != nil {
			detected[i] = true
		}
	}
	return cred
}

// Lanes returns the number of loaded pattern lanes (0 before the first
// SetPatterns call); telemetry uses it to count packed work.
func (fs *FaultSimW) Lanes() int { return fs.n }

// FaultSim64 is the 64-lane instantiation of FaultSimW behind the
// original single-word API: each mask is one uint64 over up to 64
// pattern lanes. The random phase and the deterministic pending buffer of
// Generate stay on this width — their rng stream and stall accounting are
// defined per 64-pattern batch — while width-free passes (compaction,
// coverage audits) run FaultSimW at the configured lane count.
type FaultSim64 struct {
	w *FaultSimW
}

// NewFaultSim64 builds a 64-lane parallel simulator for the frozen
// circuit c.
func NewFaultSim64(c *netlist.Circuit) *FaultSim64 {
	return &FaultSim64{w: NewFaultSimW(c, 64)}
}

// SetPatterns loads up to 64 patterns (lane i = patterns[i]) and runs the
// good-circuit simulation.
func (fs *FaultSim64) SetPatterns(patterns []scan.Pattern) {
	fs.w.SetPatterns(patterns)
}

// DetectMask returns, as a bitmask over the loaded lanes, the patterns
// that detect fault f at a primary output or flop data input.
func (fs *FaultSim64) DetectMask(f Fault) uint64 {
	return fs.w.DetectMask(f)[0]
}

// DetectAllMask is FaultSimW.DetectAllMask over the 64-lane batch; see
// that method for the lowest-lane crediting contract.
func (fs *FaultSim64) DetectAllMask(faults []Fault, detCount []int, detected []bool, nDetect int) uint64 {
	return fs.w.DetectAllMask(faults, detCount, detected, nDetect)[0]
}

// Lanes returns the number of loaded pattern lanes (0 before the first
// SetPatterns call); telemetry uses it to count packed work.
func (fs *FaultSim64) Lanes() int { return fs.w.Lanes() }

// Fused (type, arity) opcodes for the event loop: the dominant one- and
// two-input gates dispatch straight to a branch-free body instead of
// paying a fanin loop per event.
const (
	fopBuf uint8 = iota
	fopNot
	fopAnd2
	fopNand2
	fopOr2
	fopNor2
	fopXor2
	fopXnor2
	fopAndN
	fopNandN
	fopOrN
	fopNorN
	fopXorN
	fopXnorN
	fopMux2
)

// fuseOp lowers a gate type and fanin count to its event-loop opcode,
// panicking — naming the offender — on a type the simulator cannot run.
func fuseOp(t logic.GateType, nIn int) uint8 {
	two := nIn == 2
	switch t {
	case logic.Buf:
		return fopBuf
	case logic.Not:
		return fopNot
	case logic.And:
		if two {
			return fopAnd2
		}
		return fopAndN
	case logic.Nand:
		if two {
			return fopNand2
		}
		return fopNandN
	case logic.Or:
		if two {
			return fopOr2
		}
		return fopOrN
	case logic.Nor:
		if two {
			return fopNor2
		}
		return fopNorN
	case logic.Xor:
		if two {
			return fopXor2
		}
		return fopXorN
	case logic.Xnor:
		if two {
			return fopXnor2
		}
		return fopXnorN
	case logic.Mux2:
		return fopMux2
	}
	panic("atpg: FaultSimW on unsupported gate type " + t.String())
}
