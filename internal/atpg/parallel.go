package atpg

import (
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
)

// FaultSim64 is a 64-way bit-parallel stuck-at fault simulator (the
// classic PPSFP technique): each net carries a 64-bit word holding its
// value under up to 64 patterns at once, so one event-driven pass decides
// a fault's detection under the whole batch. The random-pattern phase of
// Generate runs on top of this; the serial FaultSim remains for
// single-pattern uses (compaction, coverage audits).
type FaultSim64 struct {
	c    *netlist.Circuit
	good []uint64
	n    int // number of valid pattern lanes (1..64)

	faulty []uint64
	stamp  []uint32
	gstamp []uint32
	epoch  uint32

	buckets [][]netlist.GateID
	inBuf   []uint64
}

// NewFaultSim64 builds a parallel simulator for the frozen circuit c.
func NewFaultSim64(c *netlist.Circuit) *FaultSim64 {
	if !c.Frozen() {
		panic("atpg: FaultSim64 needs a frozen circuit")
	}
	return &FaultSim64{
		c:       c,
		good:    make([]uint64, c.NumNets()),
		faulty:  make([]uint64, c.NumNets()),
		stamp:   make([]uint32, c.NumNets()),
		gstamp:  make([]uint32, c.NumGates()),
		buckets: make([][]netlist.GateID, c.Depth()+1),
		inBuf:   make([]uint64, 0, 8),
	}
}

// evalWord evaluates one gate over packed words.
func evalWord(t logic.GateType, ins []uint64) uint64 {
	switch t {
	case logic.Buf:
		return ins[0]
	case logic.Not:
		return ^ins[0]
	case logic.And, logic.Nand:
		out := ^uint64(0)
		for _, w := range ins {
			out &= w
		}
		if t == logic.Nand {
			return ^out
		}
		return out
	case logic.Or, logic.Nor:
		out := uint64(0)
		for _, w := range ins {
			out |= w
		}
		if t == logic.Nor {
			return ^out
		}
		return out
	case logic.Xor, logic.Xnor:
		out := uint64(0)
		for _, w := range ins {
			out ^= w
		}
		if t == logic.Xnor {
			return ^out
		}
		return out
	case logic.Mux2:
		d0, d1, sel := ins[0], ins[1], ins[2]
		return (d0 &^ sel) | (d1 & sel)
	}
	panic("atpg: evalWord on unknown gate type " + t.String())
}

// SetPatterns loads up to 64 patterns (lane i = patterns[i]) and runs the
// good-circuit simulation.
func (fs *FaultSim64) SetPatterns(patterns []scan.Pattern) {
	if len(patterns) == 0 || len(patterns) > 64 {
		panic("atpg: SetPatterns needs 1..64 patterns")
	}
	c := fs.c
	fs.n = len(patterns)
	for i, piNet := range c.PIs {
		w := uint64(0)
		for lane, p := range patterns {
			if p.PI[i] {
				w |= 1 << lane
			}
		}
		fs.good[piNet] = w
	}
	for f, ff := range c.FFs {
		w := uint64(0)
		for lane, p := range patterns {
			if p.State[f] {
				w |= 1 << lane
			}
		}
		fs.good[ff.Q] = w
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		fs.inBuf = fs.inBuf[:0]
		for _, in := range g.Inputs {
			fs.inBuf = append(fs.inBuf, fs.good[in])
		}
		fs.good[g.Output] = evalWord(g.Type, fs.inBuf)
	}
}

// laneMask returns the mask of valid lanes.
func (fs *FaultSim64) laneMask() uint64 {
	if fs.n == 64 {
		return ^uint64(0)
	}
	return (1 << fs.n) - 1
}

func (fs *FaultSim64) val(n netlist.NetID) uint64 {
	if fs.stamp[n] == fs.epoch {
		return fs.faulty[n]
	}
	return fs.good[n]
}

// DetectMask returns, as a bitmask over the loaded lanes, the patterns
// that detect fault f at a primary output or flop data input.
func (fs *FaultSim64) DetectMask(f Fault) uint64 {
	c := fs.c
	lanes := fs.laneMask()
	stuck := uint64(0)
	if f.Stuck {
		stuck = ^uint64(0)
	}
	// Activation requires the good value to differ from the stuck value.
	if (fs.good[f.Net]^stuck)&lanes == 0 {
		return 0
	}
	fs.epoch++
	if fs.epoch == 0 {
		for i := range fs.stamp {
			fs.stamp[i] = 0
		}
		for i := range fs.gstamp {
			fs.gstamp[i] = 0
		}
		fs.epoch = 1
	}
	fs.faulty[f.Net] = stuck
	fs.stamp[f.Net] = fs.epoch
	detected := uint64(0)
	if net := &c.Nets[f.Net]; net.IsPO() || len(net.FanoutFF) > 0 {
		detected |= (fs.good[f.Net] ^ stuck) & lanes
	}
	for i := range fs.buckets {
		fs.buckets[i] = fs.buckets[i][:0]
	}
	schedule := func(n netlist.NetID) {
		for _, g := range c.Nets[n].Fanout {
			if fs.gstamp[g] != fs.epoch {
				fs.gstamp[g] = fs.epoch
				fs.buckets[c.Level(g)] = append(fs.buckets[c.Level(g)], g)
			}
		}
	}
	schedule(f.Net)
	for lvl := 0; lvl < len(fs.buckets); lvl++ {
		for qi := 0; qi < len(fs.buckets[lvl]); qi++ {
			gi := fs.buckets[lvl][qi]
			g := &c.Gates[gi]
			if g.Output == f.Net {
				continue
			}
			fs.inBuf = fs.inBuf[:0]
			for _, in := range g.Inputs {
				fs.inBuf = append(fs.inBuf, fs.val(in))
			}
			nv := evalWord(g.Type, fs.inBuf)
			if (nv^fs.val(g.Output))&lanes == 0 {
				continue
			}
			fs.faulty[g.Output] = nv
			fs.stamp[g.Output] = fs.epoch
			if net := &c.Nets[g.Output]; net.IsPO() || len(net.FanoutFF) > 0 {
				detected |= (nv ^ fs.good[g.Output]) & lanes
			}
			schedule(g.Output)
		}
	}
	return detected
}

// DetectAllMask is the batched fault-dropping pass: one packed sweep over
// every fault still short of its nDetect quota, under the ≤64 patterns
// loaded by SetPatterns. Per fault, detections are credited to the
// lowest-indexed detecting lanes until the quota is met — exactly the
// order a serial per-pattern sweep credits them, so the updated detCount
// values (and, when non-nil, the detected flags) are bit-identical to
// processing the loaded patterns one at a time in lane order. The return
// value is the mask of lanes that received at least one credit, i.e. the
// patterns that earned their place in the set.
func (fs *FaultSim64) DetectAllMask(faults []Fault, detCount []int, detected []bool, nDetect int) uint64 {
	if nDetect < 1 {
		nDetect = 1
	}
	credited := uint64(0)
	for i, f := range faults {
		if detCount[i] >= nDetect {
			continue
		}
		mask := fs.DetectMask(f)
		if mask == 0 {
			continue
		}
		for mask != 0 && detCount[i] < nDetect {
			low := mask & (-mask)
			credited |= low
			mask &^= low
			detCount[i]++
		}
		if detected != nil {
			detected[i] = true
		}
	}
	return credited
}

// Lanes returns the number of loaded pattern lanes (0 before the first
// SetPatterns call); telemetry uses it to count packed work.
func (fs *FaultSim64) Lanes() int { return fs.n }
