// Package atpg generates stuck-at test patterns for full-scan circuits.
// It stands in for the ATOM test generator used in the paper's
// experiments: a random-pattern phase followed by deterministic PODEM for
// the residual faults, then reverse-order compaction. The produced
// patterns are what the scan structures shift in during the power
// measurements, and the fault bookkeeping is what demonstrates that the
// proposed DFT modification leaves fault coverage untouched.
package atpg

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// Fault is a single stuck-at fault on a net (stem fault model).
type Fault struct {
	Net   netlist.NetID
	Stuck bool // true = stuck-at-1
}

// String renders the fault as "netname/SA0" style.
func (f Fault) String() string {
	v := "SA0"
	if f.Stuck {
		v = "SA1"
	}
	return fmt.Sprintf("net%d/%s", f.Net, v)
}

// Name renders the fault with its net name resolved against c.
func (f Fault) Name(c *netlist.Circuit) string {
	v := "SA0"
	if f.Stuck {
		v = "SA1"
	}
	return c.Nets[f.Net].Name + "/" + v
}

// AllFaults enumerates both stuck-at faults on every net that is either a
// combinational input, a gate output that something reads, or an observed
// endpoint. Nets driving nothing and observed nowhere are excluded (their
// faults are trivially untestable).
func AllFaults(c *netlist.Circuit) []Fault {
	var out []Fault
	for ni := range c.Nets {
		n := &c.Nets[ni]
		observable := n.IsPO() || len(n.Fanout) > 0 || len(n.FanoutFF) > 0
		if !observable {
			continue
		}
		out = append(out, Fault{netlist.NetID(ni), false}, Fault{netlist.NetID(ni), true})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Net != out[j].Net {
			return out[i].Net < out[j].Net
		}
		return !out[i].Stuck && out[j].Stuck
	})
	return out
}
