package atpg

import (
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/testability"
)

// podemStatus is the outcome of one deterministic test-generation run.
type podemStatus int

const (
	podemSuccess podemStatus = iota
	// podemUntestable: the search space was exhausted — the fault is
	// redundant (no test exists).
	podemUntestable
	// podemAborted: the backtrack limit was hit before a conclusion.
	podemAborted
)

// podemEnv is the per-circuit state shared by every podem engine: the
// decision-input enumeration, topological gate ranks (for canonical
// D-frontier selection), the observed-net set, and the optional SCOAP
// guidance. It is built once per generation instead of once per fault,
// and is read-only after construction, so one env safely backs many
// engines across scheduler workers.
type podemEnv struct {
	c      *netlist.Circuit
	inputs []netlist.NetID
	inIdx  map[netlist.NetID]int
	// topoIdx ranks each gate by its position in c.Topo(); the D-frontier
	// gate with the smallest rank is the canonical objective choice.
	topoIdx []int32
	// observed marks nets where a good/faulty difference is a detection:
	// primary outputs and flop D inputs.
	observed []bool
	// scoap, when non-nil, steers backtrace toward the cheapest
	// controllability choices.
	scoap         *testability.Analysis
	maxBacktracks int
}

func newPodemEnv(c *netlist.Circuit, scoap *testability.Analysis, maxBacktracks int) *podemEnv {
	inputs := c.CombInputs()
	idx := make(map[netlist.NetID]int, len(inputs))
	for i, n := range inputs {
		idx[n] = i
	}
	topoIdx := make([]int32, c.NumGates())
	for i, gi := range c.Topo() {
		topoIdx[gi] = int32(i)
	}
	observed := make([]bool, c.NumNets())
	for ni := range c.Nets {
		n := &c.Nets[ni]
		observed[ni] = n.IsPO() || len(n.FanoutFF) > 0
	}
	return &podemEnv{
		c:             c,
		inputs:        inputs,
		inIdx:         idx,
		topoIdx:       topoIdx,
		observed:      observed,
		scoap:         scoap,
		maxBacktracks: maxBacktracks,
	}
}

// podem implements the PODEM algorithm with the (good, faulty) pair
// representation of the D-calculus: each net carries two three-valued
// levels; D corresponds to (1,0) and D' to (0,1). Decisions are made only
// at the combinational inputs (PIs and scan-cell outputs), which is what
// makes PODEM's backtracking complete.
//
// The default engine implies incrementally: each decision (or flip, or
// undo) propagates event-driven through level buckets from the changed
// input only, and the D-frontier is tracked as a difference set instead
// of rescanned — the same technique FaultSim uses. The full mode
// re-implies the whole circuit on every step; it exists as the reference
// the incremental engine is differentially tested (and benchmarked)
// against, and both modes visit identical search states.
type podem struct {
	env   *podemEnv
	fault Fault
	// full selects the reference engine: whole-circuit re-implication per
	// decision and a full-topo D-frontier scan per objective.
	full bool

	goodV  []logic.Value
	faultV []logic.Value
	assign []logic.Value // per input, current decision values
	stack  []podemDecision
	inBufG []logic.Value
	inBufF []logic.Value

	// Incremental-engine state (unused in full mode): a level-bucketed
	// event queue over changed nets, and the set of nets carrying a binary
	// good/faulty difference with lazy cleanup.
	buckets  [][]netlist.GateID
	gstamp   []uint32
	epoch    uint32
	diffList []netlist.NetID
	diffMark []bool // net currently carries a binary difference
	inList   []bool // net is present in diffList
	// obsDiff counts observed nets currently carrying a difference, so
	// detection is a counter check instead of a PO/FF scan.
	obsDiff int

	// backtracks is the number of decision flips the last run performed.
	backtracks int
}

type podemDecision struct {
	input   int
	value   logic.Value
	flipped bool
}

// newPodem builds an engine bound to env; one engine is reused across
// faults via run(f), so the per-net arrays are allocated once per worker
// rather than once per fault.
func (env *podemEnv) newPodem(full bool) *podem {
	c := env.c
	return &podem{
		env:      env,
		full:     full,
		goodV:    make([]logic.Value, c.NumNets()),
		faultV:   make([]logic.Value, c.NumNets()),
		assign:   make([]logic.Value, len(env.inputs)),
		inBufG:   make([]logic.Value, 0, 8),
		inBufF:   make([]logic.Value, 0, 8),
		buckets:  make([][]netlist.GateID, c.Depth()+1),
		gstamp:   make([]uint32, c.NumGates()),
		diffMark: make([]bool, c.NumNets()),
		inList:   make([]bool, c.NumNets()),
	}
}

// reset rebinds the engine to fault f and restores the all-X state. For
// the incremental engine this is the one full evaluation pass per run;
// every later imply is event-driven from the nets a decision changes.
func (p *podem) reset(f Fault) {
	p.fault = f
	p.backtracks = 0
	p.stack = p.stack[:0]
	for i := range p.assign {
		p.assign[i] = logic.X
	}
	if p.full {
		return
	}
	for i := range p.goodV {
		p.goodV[i] = logic.X
		p.faultV[i] = logic.X
	}
	c := p.env.c
	stuck := logic.FromBool(f.Stuck)
	p.faultV[f.Net] = stuck
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		p.inBufG = p.inBufG[:0]
		p.inBufF = p.inBufF[:0]
		for _, in := range g.Inputs {
			p.inBufG = append(p.inBufG, p.goodV[in])
			p.inBufF = append(p.inBufF, p.faultV[in])
		}
		p.goodV[g.Output] = logic.Eval(g.Type, p.inBufG)
		if g.Output == f.Net {
			p.faultV[g.Output] = stuck
		} else {
			p.faultV[g.Output] = logic.Eval(g.Type, p.inBufF)
		}
	}
	for _, n := range p.diffList {
		p.inList[n] = false
	}
	p.diffList = p.diffList[:0]
	p.obsDiff = 0
	for ni := range p.diffMark {
		p.diffMark[ni] = false
	}
	for ni := range p.goodV {
		p.noteNet(netlist.NetID(ni))
	}
	for i := range p.buckets {
		p.buckets[i] = p.buckets[i][:0]
	}
	p.bumpEpoch()
}

// noteNet refreshes net n's membership in the difference set after its
// good or faulty value changed.
func (p *podem) noteNet(n netlist.NetID) {
	d := diffBinary(p.goodV[n], p.faultV[n])
	if d == p.diffMark[n] {
		return
	}
	p.diffMark[n] = d
	if p.env.observed[n] {
		if d {
			p.obsDiff++
		} else {
			p.obsDiff--
		}
	}
	if d && !p.inList[n] {
		p.inList[n] = true
		p.diffList = append(p.diffList, n)
	}
}

func (p *podem) bumpEpoch() {
	p.epoch++
	if p.epoch == 0 {
		for i := range p.gstamp {
			p.gstamp[i] = 0
		}
		p.epoch = 1
	}
}

func (p *podem) scheduleFanout(n netlist.NetID) {
	c := p.env.c
	for _, g := range c.Nets[n].Fanout {
		if p.gstamp[g] != p.epoch {
			p.gstamp[g] = p.epoch
			p.buckets[c.Level(g)] = append(p.buckets[c.Level(g)], g)
		}
	}
}

// assignInput records a decision value (or its undo, v == X) and, in
// incremental mode, applies it to both circuit copies and queues the
// fanout for the next propagation.
func (p *podem) assignInput(i int, v logic.Value) {
	p.assign[i] = v
	if p.full {
		return
	}
	n := p.env.inputs[i]
	changed := false
	if p.goodV[n] != v {
		p.goodV[n] = v
		changed = true
	}
	if n != p.fault.Net && p.faultV[n] != v {
		p.faultV[n] = v
		changed = true
	}
	if changed {
		p.noteNet(n)
		p.scheduleFanout(n)
	}
}

// imply forward-simulates both the good and the faulty circuit from the
// current input assignment: a whole-cone pass in full mode, an
// event-driven drain of the queued input changes otherwise. The fault net
// is forced to the stuck value in the faulty circuit.
func (p *podem) imply() {
	if p.full {
		p.implyFull()
		return
	}
	c := p.env.c
	f := p.fault.Net
	for lvl := 0; lvl < len(p.buckets); lvl++ {
		for qi := 0; qi < len(p.buckets[lvl]); qi++ {
			gi := p.buckets[lvl][qi]
			g := &c.Gates[gi]
			p.inBufG = p.inBufG[:0]
			p.inBufF = p.inBufF[:0]
			for _, in := range g.Inputs {
				p.inBufG = append(p.inBufG, p.goodV[in])
				p.inBufF = append(p.inBufF, p.faultV[in])
			}
			out := g.Output
			changed := false
			if ng := logic.Eval(g.Type, p.inBufG); p.goodV[out] != ng {
				p.goodV[out] = ng
				changed = true
			}
			if out != f {
				if nf := logic.Eval(g.Type, p.inBufF); p.faultV[out] != nf {
					p.faultV[out] = nf
					changed = true
				}
			}
			if changed {
				p.noteNet(out)
				p.scheduleFanout(out)
			}
		}
	}
	for i := range p.buckets {
		p.buckets[i] = p.buckets[i][:0]
	}
	p.bumpEpoch()
}

func (p *podem) implyFull() {
	c := p.env.c
	for i, n := range p.env.inputs {
		p.goodV[n] = p.assign[i]
		p.faultV[n] = p.assign[i]
	}
	stuck := logic.FromBool(p.fault.Stuck)
	if _, isInput := p.env.inIdx[p.fault.Net]; isInput {
		p.faultV[p.fault.Net] = stuck
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		p.inBufG = p.inBufG[:0]
		p.inBufF = p.inBufF[:0]
		for _, in := range g.Inputs {
			p.inBufG = append(p.inBufG, p.goodV[in])
			p.inBufF = append(p.inBufF, p.faultV[in])
		}
		p.goodV[g.Output] = logic.Eval(g.Type, p.inBufG)
		if g.Output == p.fault.Net {
			p.faultV[g.Output] = stuck
		} else {
			p.faultV[g.Output] = logic.Eval(g.Type, p.inBufF)
		}
	}
}

// detected reports whether some observed net (PO or flop D input) carries
// a binary good/faulty difference.
func (p *podem) detected() bool {
	if !p.full {
		return p.obsDiff > 0
	}
	for _, po := range p.env.c.POs {
		if diffBinary(p.goodV[po], p.faultV[po]) {
			return true
		}
	}
	for _, ff := range p.env.c.FFs {
		if diffBinary(p.goodV[ff.D], p.faultV[ff.D]) {
			return true
		}
	}
	return false
}

func diffBinary(a, b logic.Value) bool {
	return a.IsBinary() && b.IsBinary() && a != b
}

// frontier returns the canonical D-frontier gate — the topologically
// first gate with a binary-difference input, an output that can still
// change, and an unassigned side input — or nil when the frontier is
// empty. The incremental engine enumerates candidates from the fanout of
// the live difference set, compacting dead entries as it goes; the result
// is the same gate the full-topo scan picks.
func (p *podem) frontier() *netlist.Gate {
	c := p.env.c
	live := p.diffList[:0]
	best := int32(-1)
	var bestG *netlist.Gate
	for _, n := range p.diffList {
		if !p.diffMark[n] {
			p.inList[n] = false
			continue
		}
		live = append(live, n)
		for _, gi := range c.Nets[n].Fanout {
			ti := p.env.topoIdx[gi]
			if best != -1 && ti >= best {
				continue
			}
			g := &c.Gates[gi]
			if p.goodV[g.Output] != logic.X && p.faultV[g.Output] != logic.X {
				continue
			}
			hasX := false
			for _, in := range g.Inputs {
				if p.goodV[in] == logic.X {
					hasX = true
					break
				}
			}
			if !hasX {
				continue
			}
			best, bestG = ti, g
		}
	}
	p.diffList = live
	return bestG
}

func (p *podem) frontierFull() *netlist.Gate {
	c := p.env.c
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		if p.goodV[g.Output] != logic.X && p.faultV[g.Output] != logic.X {
			continue
		}
		hasD := false
		for _, in := range g.Inputs {
			if diffBinary(p.goodV[in], p.faultV[in]) {
				hasD = true
				break
			}
		}
		if !hasD {
			continue
		}
		hasX := false
		for _, in := range g.Inputs {
			if p.goodV[in] == logic.X {
				hasX = true
				break
			}
		}
		if !hasX {
			continue
		}
		return g
	}
	return nil
}

// objective returns the next (net, value) goal, or ok=false when the
// current partial assignment cannot lead to a detection (activation
// blocked or D-frontier empty).
func (p *podem) objective() (netlist.NetID, logic.Value, bool) {
	fv := p.goodV[p.fault.Net]
	want := logic.FromBool(!p.fault.Stuck)
	if fv == logic.X {
		return p.fault.Net, want, true
	}
	if fv != want {
		return 0, 0, false // activation conflict
	}
	// Fault activated: find a D-frontier gate — an input carries a binary
	// difference and the output can still change.
	var g *netlist.Gate
	if p.full {
		g = p.frontierFull()
	} else {
		g = p.frontier()
	}
	if g == nil {
		return 0, 0, false // D-frontier empty
	}
	// Objective: set an unassigned side input to the value that lets the
	// difference through (non-controlling where defined).
	for _, in := range g.Inputs {
		if p.goodV[in] == logic.X {
			v := logic.One
			if g.Type.HasControllingValue() {
				v = g.Type.NonControllingValue()
			} else if g.Type == logic.Mux2 && in == g.Inputs[2] {
				// Select line of a MUX: either side works; pick the side
				// carrying the difference.
				if diffBinary(p.goodV[g.Inputs[1]], p.faultV[g.Inputs[1]]) {
					v = logic.One
				} else {
					v = logic.Zero
				}
			}
			return in, v, true
		}
	}
	return 0, 0, false
}

// backtrace maps an internal objective to an input assignment by walking
// X-paths backwards through drivers.
func (p *podem) backtrace(n netlist.NetID, v logic.Value) (int, logic.Value) {
	c := p.env.c
	scoap := p.env.scoap
	for {
		if idx, ok := p.env.inIdx[n]; ok {
			return idx, v
		}
		g := &c.Gates[c.Nets[n].Driver]
		if g.Type.Inverting() {
			v = v.Not()
		}
		// Choose an input with X good value; one must exist because the
		// net itself is X (or we are tracing through binary nets toward
		// the fault site — then any X input works, and if none is X the
		// first input keeps the walk moving toward the inputs). With
		// SCOAP, prefer the X input whose controllability toward the
		// propagated value is cheapest.
		next := g.Inputs[0]
		bestCost := -1
		for _, in := range g.Inputs {
			if p.goodV[in] != logic.X {
				continue
			}
			if scoap == nil {
				next = in
				break
			}
			cost := scoap.Controllability(in, v == logic.One)
			if v == logic.X {
				cost = scoap.CC0[in]
				if scoap.CC1[in] < cost {
					cost = scoap.CC1[in]
				}
			}
			if bestCost == -1 || cost < bestCost {
				bestCost = cost
				next = in
			}
		}
		n = next
	}
}

// run executes the PODEM search for fault f. On success the input
// assignment (with X for untouched inputs) is left in p.assign.
func (p *podem) run(f Fault) podemStatus {
	p.reset(f)
	for {
		p.imply()
		if p.detected() {
			return podemSuccess
		}
		obj, val, ok := p.objective()
		if ok {
			in, v := p.backtrace(obj, val)
			if p.assign[in] != logic.X {
				// Backtrace landed on an assigned input (possible on
				// reconvergent paths): treat as conflict.
				ok = false
			} else {
				p.stack = append(p.stack, podemDecision{input: in, value: v})
				p.assignInput(in, v)
				continue
			}
		}
		// Conflict: flip the most recent unflipped decision.
		flipped := false
		for len(p.stack) > 0 {
			top := &p.stack[len(p.stack)-1]
			if !top.flipped {
				top.flipped = true
				top.value = top.value.Not()
				p.assignInput(top.input, top.value)
				flipped = true
				break
			}
			p.assignInput(top.input, logic.X)
			p.stack = p.stack[:len(p.stack)-1]
		}
		if !flipped {
			return podemUntestable
		}
		p.backtracks++
		if p.backtracks > p.env.maxBacktracks {
			return podemAborted
		}
	}
}
