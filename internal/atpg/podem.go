package atpg

import (
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/testability"
)

// podemStatus is the outcome of one deterministic test-generation run.
type podemStatus int

const (
	podemSuccess podemStatus = iota
	// podemUntestable: the search space was exhausted — the fault is
	// redundant (no test exists).
	podemUntestable
	// podemAborted: the backtrack limit was hit before a conclusion.
	podemAborted
)

// podem implements the PODEM algorithm with the (good, faulty) pair
// representation of the D-calculus: each net carries two three-valued
// levels; D corresponds to (1,0) and D' to (0,1). Decisions are made only
// at the combinational inputs (PIs and scan-cell outputs), which is what
// makes PODEM's backtracking complete.
type podem struct {
	c      *netlist.Circuit
	fault  Fault
	inputs []netlist.NetID
	inIdx  map[netlist.NetID]int
	// scoap, when non-nil, steers backtrace toward the cheapest
	// controllability choices.
	scoap *testability.Analysis

	goodV  []logic.Value
	faultV []logic.Value
	assign []logic.Value // per input, current decision values
	inBufG []logic.Value
	inBufF []logic.Value

	maxBacktracks int
	// backtracks is the number of decision flips the last run performed.
	backtracks int
}

type podemDecision struct {
	input   int
	value   logic.Value
	flipped bool
}

func newPodem(c *netlist.Circuit, f Fault, maxBacktracks int, scoap *testability.Analysis) *podem {
	inputs := c.CombInputs()
	idx := make(map[netlist.NetID]int, len(inputs))
	for i, n := range inputs {
		idx[n] = i
	}
	return &podem{
		c:             c,
		fault:         f,
		scoap:         scoap,
		inputs:        inputs,
		inIdx:         idx,
		goodV:         make([]logic.Value, c.NumNets()),
		faultV:        make([]logic.Value, c.NumNets()),
		assign:        make([]logic.Value, len(inputs)),
		inBufG:        make([]logic.Value, 0, 8),
		inBufF:        make([]logic.Value, 0, 8),
		maxBacktracks: maxBacktracks,
	}
}

// imply forward-simulates both the good and the faulty circuit from the
// current input assignment. The fault net is forced to the stuck value in
// the faulty circuit.
func (p *podem) imply() {
	c := p.c
	for i, n := range p.inputs {
		p.goodV[n] = p.assign[i]
		p.faultV[n] = p.assign[i]
	}
	stuck := logic.FromBool(p.fault.Stuck)
	if p.inIdx != nil {
		if _, isInput := p.inIdx[p.fault.Net]; isInput {
			p.faultV[p.fault.Net] = stuck
		}
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		p.inBufG = p.inBufG[:0]
		p.inBufF = p.inBufF[:0]
		for _, in := range g.Inputs {
			p.inBufG = append(p.inBufG, p.goodV[in])
			p.inBufF = append(p.inBufF, p.faultV[in])
		}
		p.goodV[g.Output] = logic.Eval(g.Type, p.inBufG)
		if g.Output == p.fault.Net {
			p.faultV[g.Output] = stuck
		} else {
			p.faultV[g.Output] = logic.Eval(g.Type, p.inBufF)
		}
	}
}

// detected reports whether some observed net (PO or flop D input) carries
// a binary good/faulty difference.
func (p *podem) detected() bool {
	for _, po := range p.c.POs {
		if diffBinary(p.goodV[po], p.faultV[po]) {
			return true
		}
	}
	for _, ff := range p.c.FFs {
		if diffBinary(p.goodV[ff.D], p.faultV[ff.D]) {
			return true
		}
	}
	return false
}

func diffBinary(a, b logic.Value) bool {
	return a.IsBinary() && b.IsBinary() && a != b
}

// objective returns the next (net, value) goal, or ok=false when the
// current partial assignment cannot lead to a detection (activation
// blocked or D-frontier empty).
func (p *podem) objective() (netlist.NetID, logic.Value, bool) {
	fv := p.goodV[p.fault.Net]
	want := logic.FromBool(!p.fault.Stuck)
	if fv == logic.X {
		return p.fault.Net, want, true
	}
	if fv != want {
		return 0, 0, false // activation conflict
	}
	// Fault activated: find a D-frontier gate — an input carries a binary
	// difference and the output can still change.
	for _, gi := range p.c.Topo() {
		g := &p.c.Gates[gi]
		if p.goodV[g.Output] != logic.X && p.faultV[g.Output] != logic.X {
			continue
		}
		hasD := false
		for _, in := range g.Inputs {
			if diffBinary(p.goodV[in], p.faultV[in]) {
				hasD = true
				break
			}
		}
		if !hasD {
			continue
		}
		// Objective: set an unassigned side input to the value that lets
		// the difference through (non-controlling where defined).
		for _, in := range g.Inputs {
			if p.goodV[in] == logic.X {
				v := logic.One
				if g.Type.HasControllingValue() {
					v = g.Type.NonControllingValue()
				} else if g.Type == logic.Mux2 && in == g.Inputs[2] {
					// Select line of a MUX: either side works; pick the
					// side carrying the difference.
					if diffBinary(p.goodV[g.Inputs[1]], p.faultV[g.Inputs[1]]) {
						v = logic.One
					} else {
						v = logic.Zero
					}
				}
				return in, v, true
			}
		}
	}
	return 0, 0, false // D-frontier empty
}

// backtrace maps an internal objective to an input assignment by walking
// X-paths backwards through drivers.
func (p *podem) backtrace(n netlist.NetID, v logic.Value) (int, logic.Value) {
	c := p.c
	for {
		if idx, ok := p.inIdx[n]; ok {
			return idx, v
		}
		g := &c.Gates[c.Nets[n].Driver]
		if g.Type.Inverting() {
			v = v.Not()
		}
		// Choose an input with X good value; one must exist because the
		// net itself is X (or we are tracing through binary nets toward
		// the fault site — then any X input works, and if none is X the
		// first input keeps the walk moving toward the inputs). With
		// SCOAP, prefer the X input whose controllability toward the
		// propagated value is cheapest.
		next := g.Inputs[0]
		bestCost := -1
		for _, in := range g.Inputs {
			if p.goodV[in] != logic.X {
				continue
			}
			if p.scoap == nil {
				next = in
				break
			}
			cost := p.scoap.Controllability(in, v == logic.One)
			if v == logic.X {
				cost = p.scoap.CC0[in]
				if p.scoap.CC1[in] < cost {
					cost = p.scoap.CC1[in]
				}
			}
			if bestCost == -1 || cost < bestCost {
				bestCost = cost
				next = in
			}
		}
		n = next
	}
}

// run executes the PODEM search. On success the input assignment (with X
// for untouched inputs) is left in p.assign.
func (p *podem) run() podemStatus {
	for i := range p.assign {
		p.assign[i] = logic.X
	}
	var stack []podemDecision
	p.backtracks = 0
	for {
		p.imply()
		if p.detected() {
			return podemSuccess
		}
		obj, val, ok := p.objective()
		if ok {
			in, v := p.backtrace(obj, val)
			if p.assign[in] != logic.X {
				// Backtrace landed on an assigned input (possible on
				// reconvergent paths): treat as conflict.
				ok = false
			} else {
				stack = append(stack, podemDecision{input: in, value: v})
				p.assign[in] = v
				continue
			}
		}
		// Conflict: flip the most recent unflipped decision.
		flipped := false
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				top.value = top.value.Not()
				p.assign[top.input] = top.value
				flipped = true
				break
			}
			p.assign[top.input] = logic.X
			stack = stack[:len(stack)-1]
		}
		if !flipped {
			return podemUntestable
		}
		p.backtracks++
		if p.backtracks > p.maxBacktracks {
			return podemAborted
		}
	}
}
