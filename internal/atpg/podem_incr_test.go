package atpg

import (
	"reflect"
	"testing"

	"repro/internal/netlist"
	"repro/internal/testability"
)

// TestIncrementalPodemMatchesFull is the differential for the
// event-driven PODEM engine: for every fault, with and without SCOAP
// guidance, the incremental engine must reach the same status with the
// same backtrack count and (on success) the same input assignment as the
// whole-circuit re-implication engine it replaced. Both engines are
// reused across faults, the way generation uses them, so reset hygiene
// is covered too.
func TestIncrementalPodemMatchesFull(t *testing.T) {
	circuits := []struct {
		name string
		c    *netlist.Circuit
	}{
		{"s27", loadS27(t)},
		{"s382", loadISCAS(t, "s382")},
		{"s510", loadISCAS(t, "s510")},
	}
	for _, tc := range circuits {
		for _, useSCOAP := range []bool{false, true} {
			var sc *testability.Analysis
			if useSCOAP {
				sc = testability.Compute(tc.c)
			}
			env := newPodemEnv(tc.c, sc, 64)
			inc := env.newPodem(false)
			full := env.newPodem(true)
			for _, f := range AllFaults(tc.c) {
				si := inc.run(f)
				sf := full.run(f)
				if si != sf || inc.backtracks != full.backtracks {
					t.Fatalf("%s scoap=%v fault %s: incremental (status=%d bt=%d) vs full (status=%d bt=%d)",
						tc.name, useSCOAP, f.Name(tc.c), si, inc.backtracks, sf, full.backtracks)
				}
				if si == podemSuccess && !reflect.DeepEqual(inc.assign, full.assign) {
					t.Fatalf("%s scoap=%v fault %s: assignments diverge",
						tc.name, useSCOAP, f.Name(tc.c))
				}
			}
		}
	}
}
