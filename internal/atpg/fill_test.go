package atpg

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/scan"
)

// fillTestCircuit builds a minimal frozen circuit with two PIs and nFF
// flops, all fed by one gate — enough structure to exercise the fill
// paths with a hand-crafted assignment.
func fillTestCircuit(t *testing.T, nFF int) *netlist.Circuit {
	t.Helper()
	c := netlist.New("fillt")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGate(logic.And, "g", "a", "b")
	for i := 0; i < nFF; i++ {
		c.AddFF(fmt.Sprintf("f%d", i), fmt.Sprintf("q%d", i), "g")
	}
	c.MarkPO("g")
	c.MustFreeze()
	return c
}

// TestExtractPatternAdjacentChainOrder is the unit test for the
// FillAdjacent bugfix: adjacency must follow the actual chain-position
// order of the configured partition, not flop index order, and cells
// before a chain's first specified bit must take that bit's value.
func TestExtractPatternAdjacentChainOrder(t *testing.T) {
	c := fillTestCircuit(t, 6)
	rng := rand.New(rand.NewSource(1))
	// CombInputs order: a, b, f0..f5.
	assign := []logic.Value{
		logic.One, // a: specified
		logic.X,   // b: don't-care, carries a's value
		logic.X,   // f0
		logic.Zero,
		logic.One, // f2
		logic.X,   // f3
		logic.X,   // f4
		logic.One, // f5
	}

	// Two round-robin chains: chain0 = [0 2 4], chain1 = [1 3 5].
	// chain0: first specified is f2=1 -> f0 backfills 1, f4 carries 1.
	// chain1: first specified is f1=0 -> f3 carries 0, f5 flips to 1.
	plan2, err := newFillPlan(c, Options{FillChains: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pat := extractPattern(c, assign, rng, FillAdjacent, plan2)
	wantPI := []bool{true, true}
	wantState := []bool{true, false, true, false, true, true}
	for i, w := range wantPI {
		if pat.PI[i] != w {
			t.Errorf("2 chains: PI[%d] = %v, want %v", i, pat.PI[i], w)
		}
	}
	for f, w := range wantState {
		if pat.State[f] != w {
			t.Errorf("2 chains: State[%d] = %v, want %v", f, pat.State[f], w)
		}
	}

	// Single chain [0..5]: first specified is f1=0, so f0 backfills 0 and
	// the carry runs f2=1 onward — a different pattern, which is exactly
	// what the pre-fix index-order fill got wrong on multi-chain configs.
	plan1, err := newFillPlan(c, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pat1 := extractPattern(c, assign, rng, FillAdjacent, plan1)
	wantState1 := []bool{false, false, true, true, true, true}
	for f, w := range wantState1 {
		if pat1.State[f] != w {
			t.Errorf("1 chain: State[%d] = %v, want %v", f, pat1.State[f], w)
		}
	}
}

// TestExtractPatternAdjacentUnspecifiedChain: a chain with no specified
// bit fills constant, contributing zero shift transitions.
func TestExtractPatternAdjacentUnspecifiedChain(t *testing.T) {
	c := fillTestCircuit(t, 4)
	rng := rand.New(rand.NewSource(1))
	assign := []logic.Value{
		logic.Zero, logic.X,
		logic.One, logic.X, logic.One, logic.X, // f0,f2 on chain0; chain1 all X
	}
	plan, err := newFillPlan(c, Options{FillChains: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pat := extractPattern(c, assign, rng, FillAdjacent, plan)
	// chain1 = [1 3], fully unspecified -> constant false.
	if pat.State[1] || pat.State[3] {
		t.Errorf("unspecified chain not constant: %v", pat.State)
	}
	// chain0 = [0 2]: both specified 1.
	if !pat.State[0] || !pat.State[2] {
		t.Errorf("specified chain wrong: %v", pat.State)
	}
}

// deterministicPatterns generates with the given fill setup and returns
// only the deterministic-phase patterns (the random-phase prefix is
// fill-independent and identical across runs, so it would dilute the
// comparison).
func deterministicPatterns(t *testing.T, c *netlist.Circuit, opts Options) []scan.Pattern {
	t.Helper()
	opts.Compact = false
	randN := 0
	ob := Observer{OnPhase: func(phase string, _ time.Duration, patterns int) {
		if phase == "random" {
			randN = patterns
		}
	}}
	res, err := GenerateObserved(context.Background(), c, opts, ob)
	if err != nil {
		t.Fatal(err)
	}
	return res.Patterns[randN:]
}

// TestFillAdjacentMultiChainReducesWTM is the multi-chain regression for
// the FillAdjacent fix: on a 4-chain s1423 configuration, chain-order
// adjacent fill must produce substantially fewer weighted scan-in
// transitions than random fill, and must also beat index-order adjacent
// fill (the pre-fix behavior) on the same chain layout.
func TestFillAdjacentMultiChainReducesWTM(t *testing.T) {
	c := loadISCAS(t, "s1423")
	const nChains = 4
	cs, err := scan.NewChains(c, nChains)
	if err != nil {
		t.Fatal(err)
	}
	wtmPerPattern := func(pats []scan.Pattern) float64 {
		if len(pats) == 0 {
			t.Fatal("no deterministic patterns")
		}
		total := 0
		for _, g := range cs.Groups {
			total += power.TestSetWTM(pats, g)
		}
		return float64(total) / float64(len(pats))
	}

	opts := DefaultOptions()
	opts.Fill = FillRandom
	randWTM := wtmPerPattern(deterministicPatterns(t, c, opts))

	opts.Fill = FillAdjacent
	opts.FillChains = 1 // pre-fix behavior: one carry in flop-index order
	indexWTM := wtmPerPattern(deterministicPatterns(t, c, opts))

	opts.FillChains = nChains
	chainWTM := wtmPerPattern(deterministicPatterns(t, c, opts))

	if chainWTM >= 0.7*randWTM {
		t.Errorf("chain-order adjacent fill WTM/pattern = %.1f, want < 0.7 * random (%.1f)",
			chainWTM, randWTM)
	}
	if chainWTM >= indexWTM {
		t.Errorf("chain-order adjacent fill WTM/pattern = %.1f, not below index-order fill (%.1f)",
			chainWTM, indexWTM)
	}
}

// TestFillAdjacentKeepsCoverage: the fill change is a power lever, not a
// coverage one — adjacent fill must reach the same coverage class as
// random fill on the same circuit (PODEM specifies the detecting bits;
// fill only completes don't-cares and is serial-verified per target).
func TestFillAdjacentKeepsCoverage(t *testing.T) {
	c := loadISCAS(t, "s382")
	opts := DefaultOptions()
	opts.Fill = FillRandom
	rnd, err := Generate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Fill = FillAdjacent
	opts.FillChains = 3
	adj, err := Generate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := adj.Coverage() - rnd.Coverage(); d < -0.02 {
		t.Errorf("adjacent fill coverage %.4f well below random fill %.4f",
			adj.Coverage(), rnd.Coverage())
	}
}
