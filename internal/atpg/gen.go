package atpg

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/testability"
)

// FillMode chooses how don't-care bits of deterministic patterns are
// completed. Fill strategy is a classic test-power lever: random fill
// maximizes coverage-per-pattern (more fortuitous detections), while
// adjacent fill (repeat the previous specified bit along the scan chain,
// "MT-fill") minimizes the transitions the pattern drags through the
// chain during shifting.
type FillMode int

// Fill modes.
const (
	// FillRandom completes don't-cares with random bits (default).
	FillRandom FillMode = iota
	// FillZero ties don't-cares low.
	FillZero
	// FillOne ties don't-cares high.
	FillOne
	// FillAdjacent repeats the last specified value along the scan order
	// (minimum-transition fill).
	FillAdjacent
)

// Options tunes Generate.
type Options struct {
	// Fill chooses the don't-care completion strategy for deterministic
	// patterns (the random phase is unaffected: its patterns are fully
	// random by construction).
	Fill FillMode
	// MaxBacktracks bounds each PODEM run (default 64).
	MaxBacktracks int
	// MaxRandomPatterns bounds the random-pattern phase (default 512).
	MaxRandomPatterns int
	// RandomStall ends the random phase after this many consecutive
	// useless patterns (default 32).
	RandomStall int
	// MaxPodemFaults caps how many residual faults the deterministic
	// phase attempts (0 = all). Faults beyond the cap count as aborted.
	// PODEM re-implies the full cone per decision, so on very large
	// circuits this cap bounds generation time at a small coverage cost.
	MaxPodemFaults int
	// NDetect asks that each fault be detected by at least N patterns
	// (0 or 1 = classic single detection). Higher N improves unmodeled
	// defect coverage at the cost of a larger pattern set.
	NDetect int
	// Compact enables reverse-order static compaction (default on in
	// DefaultOptions).
	Compact bool
	// UseSCOAP steers PODEM's backtrace with SCOAP controllability
	// (default on in DefaultOptions).
	UseSCOAP bool
	// Seed drives random fill and the random phase; runs are fully
	// deterministic for a given seed.
	Seed int64
}

// DefaultOptions returns the settings used by all experiments.
func DefaultOptions() Options {
	return Options{
		MaxBacktracks:     64,
		MaxRandomPatterns: 512,
		RandomStall:       32,
		Compact:           true,
		UseSCOAP:          true,
		Seed:              1,
	}
}

// Result is the outcome of test generation.
type Result struct {
	// Patterns is the compacted test set in application order.
	Patterns []scan.Pattern
	// Faults is the full fault list; Detected[i] tells whether Faults[i]
	// is covered by Patterns, and DetCounts[i] by how many patterns (up
	// to Options.NDetect, where counting stops).
	Faults    []Fault
	Detected  []bool
	DetCounts []int
	// Untestable counts faults proven redundant; Aborted counts faults on
	// which PODEM hit its backtrack limit.
	Untestable int
	Aborted    int
	// Backtracks is the total PODEM backtrack count across all
	// deterministic runs — the search-effort figure observability hooks
	// report.
	Backtracks int
}

// DetectedCount returns the number of detected faults.
func (r *Result) DetectedCount() int {
	n := 0
	for _, d := range r.Detected {
		if d {
			n++
		}
	}
	return n
}

// Coverage returns detected / (total - untestable), the standard fault
// coverage figure, in [0,1].
func (r *Result) Coverage() float64 {
	den := len(r.Faults) - r.Untestable
	if den <= 0 {
		return 1
	}
	return float64(r.DetectedCount()) / float64(den)
}

// Generate produces a stuck-at test set for the frozen circuit c.
func Generate(c *netlist.Circuit, opts Options) (*Result, error) {
	return GenerateContext(context.Background(), c, opts)
}

// GenerateContext is Generate with cancellation: the random-pattern phase
// checks ctx between 64-lane batches and the deterministic phase between
// PODEM fault targets, so an oversized run can be aborted promptly. The
// returned error is ctx.Err() when the context ends the run.
func GenerateContext(ctx context.Context, c *netlist.Circuit, opts Options) (*Result, error) {
	return GenerateObserved(ctx, c, opts, Observer{})
}

// GenerateObserved is GenerateContext with a telemetry Observer: per-fault
// PODEM outcomes, random-phase batches, and phase wall times flow to ob's
// callbacks as they happen. A zero Observer adds no work and no
// allocations to the generation hot paths.
func GenerateObserved(ctx context.Context, c *netlist.Circuit, opts Options, ob Observer) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !c.Frozen() {
		return nil, fmt.Errorf("atpg: circuit %s must be frozen", c.Name)
	}
	if opts.MaxBacktracks <= 0 {
		opts.MaxBacktracks = 64
	}
	if opts.MaxRandomPatterns < 0 {
		opts.MaxRandomPatterns = 0
	}
	if opts.RandomStall <= 0 {
		opts.RandomStall = 32
	}
	if opts.NDetect < 1 {
		opts.NDetect = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	faults := AllFaults(c)
	detected := make([]bool, len(faults))
	detCount := make([]int, len(faults))
	fs := NewFaultSim(c)

	nPI, nFF := len(c.PIs), c.NumFFs()
	var patterns []scan.Pattern

	// Phase 1: random patterns, 64 lanes at a time on the bit-parallel
	// fault simulator. A fault's detection is credited to the
	// lowest-indexed detecting lane, and only credited patterns are kept.
	stopRandom := ob.phaseTimer("random")
	fs64 := NewFaultSim64(c)
	stall := 0
	batch := make([]scan.Pattern, 0, 64)
	for tries := 0; tries < opts.MaxRandomPatterns && stall < opts.RandomStall; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bsize := opts.MaxRandomPatterns - tries
		if bsize > 64 {
			bsize = 64
		}
		batch = batch[:0]
		for len(batch) < bsize {
			p := scan.Pattern{PI: make([]bool, nPI), State: make([]bool, nFF)}
			randFill(rng, p.PI)
			randFill(rng, p.State)
			batch = append(batch, p)
		}
		tries += bsize
		fs64.SetPatterns(batch)
		credited := uint64(0)
		newDet := 0
		for i, f := range faults {
			if detCount[i] >= opts.NDetect {
				continue
			}
			mask := fs64.DetectMask(f)
			if mask == 0 {
				continue
			}
			newDet++
			// Credit the lowest detecting lanes until the quota is met.
			for mask != 0 && detCount[i] < opts.NDetect {
				low := mask & (-mask)
				credited |= low
				mask &^= low
				detCount[i]++
			}
			detected[i] = true
		}
		if newDet > 0 {
			stall = 0
			for lane := 0; lane < bsize; lane++ {
				if credited&(1<<lane) != 0 {
					patterns = append(patterns, batch[lane])
				}
			}
		} else {
			stall += bsize
		}
		if ob.OnRandomBatch != nil {
			ob.OnRandomBatch(bsize, newDet)
		}
	}
	stopRandom(len(patterns))

	// Phase 2: deterministic PODEM for the residue. For NDetect > 1 each
	// remaining fault gets one PODEM run per missing detection; the
	// random X-fill diversifies the resulting patterns.
	res := &Result{Faults: faults, Detected: detected, DetCounts: detCount}
	detectAllCount := func(pat scan.Pattern) int {
		fs.SetPattern(pat.PI, pat.State)
		n := 0
		for i, f := range faults {
			if detCount[i] >= opts.NDetect {
				continue
			}
			if fs.Detects(f) {
				detCount[i]++
				detected[i] = true
				n++
			}
		}
		return n
	}
	var scoap *testability.Analysis
	if opts.UseSCOAP {
		scoap = testability.Compute(c)
	}
	stopPodem := ob.phaseTimer("podem")
	attempted := 0
	for i, f := range faults {
		if detCount[i] >= opts.NDetect {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.MaxPodemFaults > 0 && attempted >= opts.MaxPodemFaults {
			if !detected[i] {
				res.Aborted++
			}
			if ob.OnPodemFault != nil {
				ob.OnPodemFault(f, PodemSkipped, 0)
			}
			continue
		}
		attempted++
		p := newPodem(c, f, opts.MaxBacktracks, scoap)
		status := p.run()
		res.Backtracks += p.backtracks
		if ob.OnPodemFault != nil {
			ob.OnPodemFault(f, podemOutcomeOf(status), p.backtracks)
		}
		switch status {
		case podemSuccess:
			for detCount[i] < opts.NDetect {
				pat := extractPattern(c, p, rng, opts.Fill)
				before := detCount[i]
				if detectAllCount(pat) > 0 {
					patterns = append(patterns, pat)
				}
				if detCount[i] == before {
					if !detected[i] {
						// The X-fill must not mask the target fault — PODEM
						// left the detecting assignment in place, so this
						// indicates a bug; flag it loudly rather than
						// silently losing coverage.
						return nil, fmt.Errorf("atpg: internal: PODEM pattern misses its target fault %s",
							f.Name(c))
					}
					break // repeated fills no longer add detections
				}
			}
		case podemUntestable:
			res.Untestable++
		case podemAborted:
			res.Aborted++
		}
	}

	stopPodem(len(patterns))

	// Phase 3: reverse-order static compaction (quota-aware for NDetect).
	stopCompact := ob.phaseTimer("compact")
	if opts.Compact && len(patterns) > 1 {
		patterns = compact(c, patterns, faults, opts.NDetect)
	}
	stopCompact(len(patterns))
	res.Patterns = patterns
	return res, nil
}

// podemOutcomeOf maps the internal search status to the observer enum.
func podemOutcomeOf(s podemStatus) PodemOutcome {
	switch s {
	case podemSuccess:
		return PodemDetected
	case podemUntestable:
		return PodemUntestableFault
	default:
		return PodemAbortedFault
	}
}

func randFill(rng *rand.Rand, dst []bool) {
	for i := range dst {
		dst[i] = rng.Intn(2) == 1
	}
}

// extractPattern splits PODEM's input assignment into PI/state parts and
// completes don't-cares per the fill mode.
func extractPattern(c *netlist.Circuit, p *podem, rng *rand.Rand, mode FillMode) scan.Pattern {
	nPI := len(c.PIs)
	pat := scan.Pattern{PI: make([]bool, nPI), State: make([]bool, c.NumFFs())}
	// Adjacent fill carries the last specified value forward, PI bits
	// first, then the scan state in chain (flop-index) order.
	last := false
	for i, v := range p.assign {
		var b bool
		switch {
		case v.IsBinary():
			b = v.Bool()
			last = b
		case mode == FillZero:
			b = false
		case mode == FillOne:
			b = true
		case mode == FillAdjacent:
			b = last
		default:
			b = rng.Intn(2) == 1
		}
		if i < nPI {
			pat.PI[i] = b
		} else {
			pat.State[i-nPI] = b
		}
	}
	return pat
}

// compact re-fault-simulates the patterns in reverse order and keeps only
// those that detect a fault not already covered by a kept pattern.
func compact(c *netlist.Circuit, patterns []scan.Pattern, faults []Fault, nDetect int) []scan.Pattern {
	if nDetect < 1 {
		nDetect = 1
	}
	fs := NewFaultSim(c)
	seen := make([]int, len(faults))
	var kept []scan.Pattern
	for i := len(patterns) - 1; i >= 0; i-- {
		p := patterns[i]
		fs.SetPattern(p.PI, p.State)
		useful := 0
		for fi, f := range faults {
			if seen[fi] >= nDetect {
				continue
			}
			if fs.Detects(f) {
				seen[fi]++
				useful++
			}
		}
		if useful > 0 {
			kept = append(kept, p)
		}
	}
	// Restore application order.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	return kept
}

// CoverageOf fault-simulates an arbitrary pattern set from scratch and
// returns its fault coverage over AllFaults(c). Used to demonstrate that
// a DFT modification leaves coverage unchanged.
func CoverageOf(c *netlist.Circuit, patterns []scan.Pattern) float64 {
	faults := AllFaults(c)
	if len(faults) == 0 {
		return 1
	}
	detected := make([]bool, len(faults))
	fs := NewFaultSim(c)
	for _, p := range patterns {
		fs.SetPattern(p.PI, p.State)
		fs.DetectAll(faults, detected)
	}
	n := 0
	for _, d := range detected {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(faults))
}
