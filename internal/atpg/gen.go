package atpg

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sim"
	"repro/internal/testability"
)

// FillMode chooses how don't-care bits of deterministic patterns are
// completed. Fill strategy is a classic test-power lever: random fill
// maximizes coverage-per-pattern (more fortuitous detections), while
// adjacent fill (repeat the previous specified bit along the scan chain,
// "MT-fill") minimizes the transitions the pattern drags through the
// chain during shifting.
type FillMode int

// Fill modes.
const (
	// FillRandom completes don't-cares with random bits (default).
	FillRandom FillMode = iota
	// FillZero ties don't-cares low.
	FillZero
	// FillOne ties don't-cares high.
	FillOne
	// FillAdjacent repeats the last specified value along the scan order
	// (minimum-transition fill). Adjacency is chain adjacency: each chain
	// of the configured partition (Options.FillChains, or the explicit
	// groups of GenerateChains) is filled independently in chain-position
	// order, and cells before a chain's first specified bit take that
	// bit's value, so no spurious transition enters from the padding.
	FillAdjacent
)

// Options tunes Generate.
type Options struct {
	// Fill chooses the don't-care completion strategy for deterministic
	// patterns (the random phase is unaffected: its patterns are fully
	// random by construction).
	Fill FillMode
	// FillChains tells FillAdjacent how the flops are partitioned into
	// scan chains: the round-robin partition scan.NewChains(c, n) builds
	// (0 or 1 = a single chain in flop-index order). For an arbitrary
	// partition use GenerateChains, which takes the groups explicitly.
	FillChains int
	// MaxBacktracks bounds each PODEM run (default 64).
	MaxBacktracks int
	// MaxRandomPatterns bounds the random-pattern phase (default 512).
	MaxRandomPatterns int
	// RandomStall ends the random phase after this many consecutive
	// useless patterns (default 32).
	RandomStall int
	// MaxPodemFaults caps how many residual faults the deterministic
	// phase attempts (0 = all). Faults beyond the cap count as aborted.
	MaxPodemFaults int
	// NDetect asks that each fault be detected by at least N patterns
	// (0 or 1 = classic single detection). Higher N improves unmodeled
	// defect coverage at the cost of a larger pattern set.
	NDetect int
	// Compact enables reverse-order static compaction (default on in
	// DefaultOptions).
	Compact bool
	// UseSCOAP steers PODEM's backtrace with SCOAP controllability
	// (default on in DefaultOptions).
	UseSCOAP bool
	// Workers sets the fault-parallel PODEM worker count for the
	// deterministic phase (0 or 1 = serial). The result is bit-identical
	// for every value: workers only run the rng-free PODEM searches
	// speculatively, while patterns are committed, filled, and credited
	// on one goroutine in canonical fault order.
	Workers int
	// Seed drives random fill and the random phase; runs are fully
	// deterministic for a given seed.
	Seed int64
	// Lanes sets the batch width of the width-free packed fault-simulation
	// passes — static compaction here, coverage audits via CoverageOf.
	// 0 means the default, sim.WideLanes; sim.LaneWidths lists the
	// supported values. Purely a throughput knob: DetectAllMask credits
	// lowest lanes first, so the result is identical at every width. The
	// random phase and the deterministic fault-dropping buffer always run
	// 64 wide — their rng stream and stall accounting are defined per
	// 64-pattern batch.
	Lanes int
}

// DefaultOptions returns the settings used by all experiments.
func DefaultOptions() Options {
	return Options{
		MaxBacktracks:     64,
		MaxRandomPatterns: 512,
		RandomStall:       32,
		Compact:           true,
		UseSCOAP:          true,
		Seed:              1,
	}
}

// Result is the outcome of test generation.
type Result struct {
	// Patterns is the compacted test set in application order.
	Patterns []scan.Pattern
	// Faults is the full fault list; Detected[i] tells whether Faults[i]
	// is covered by Patterns, and DetCounts[i] by how many patterns (up
	// to Options.NDetect, where counting stops).
	Faults    []Fault
	Detected  []bool
	DetCounts []int
	// Untestable counts faults proven redundant; Aborted counts faults on
	// which PODEM hit its backtrack limit.
	Untestable int
	Aborted    int
	// Backtracks is the total PODEM backtrack count across all
	// deterministic runs — the search-effort figure observability hooks
	// report.
	Backtracks int
}

// DetectedCount returns the number of detected faults.
func (r *Result) DetectedCount() int {
	n := 0
	for _, d := range r.Detected {
		if d {
			n++
		}
	}
	return n
}

// Coverage returns detected / (total - untestable), the standard fault
// coverage figure, in [0,1].
func (r *Result) Coverage() float64 {
	den := len(r.Faults) - r.Untestable
	if den <= 0 {
		return 1
	}
	return float64(r.DetectedCount()) / float64(den)
}

// Generate produces a stuck-at test set for the frozen circuit c.
func Generate(c *netlist.Circuit, opts Options) (*Result, error) {
	return GenerateContext(context.Background(), c, opts)
}

// GenerateContext is Generate with cancellation: the random-pattern phase
// checks ctx between 64-lane batches and the deterministic phase between
// PODEM fault targets, so an oversized run can be aborted promptly. The
// returned error is ctx.Err() when the context ends the run.
func GenerateContext(ctx context.Context, c *netlist.Circuit, opts Options) (*Result, error) {
	return GenerateObserved(ctx, c, opts, Observer{})
}

// GenerateChains is GenerateContext for an explicit multi-chain scan
// configuration: groups[k][p] is the flop index at position p of chain k
// (the layout of scan.Chains.Groups), and FillAdjacent fills along each
// chain's true shift order. Options.FillChains is ignored when groups is
// non-nil. Patterns, coverage, and bookkeeping are otherwise identical to
// GenerateContext — the chain partition only steers don't-care fill.
func GenerateChains(ctx context.Context, c *netlist.Circuit, opts Options, groups [][]int) (*Result, error) {
	return GenerateObservedChains(ctx, c, opts, groups, Observer{})
}

// GenerateObserved is GenerateContext with a telemetry Observer: per-fault
// PODEM outcomes, random-phase batches, packed fault-simulation flushes,
// and phase wall times flow to ob's callbacks as they happen. A zero
// Observer adds no work and no allocations to the generation hot paths.
func GenerateObserved(ctx context.Context, c *netlist.Circuit, opts Options, ob Observer) (*Result, error) {
	return GenerateObservedChains(ctx, c, opts, nil, ob)
}

// GenerateObservedChains is the full-surface entry point: observer plus
// an optional explicit chain partition for FillAdjacent (nil derives the
// round-robin partition from Options.FillChains).
func GenerateObservedChains(ctx context.Context, c *netlist.Circuit, opts Options, groups [][]int, ob Observer) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !c.Frozen() {
		return nil, fmt.Errorf("atpg: circuit %s must be frozen", c.Name)
	}
	if opts.MaxBacktracks <= 0 {
		opts.MaxBacktracks = 64
	}
	if opts.MaxRandomPatterns < 0 {
		opts.MaxRandomPatterns = 0
	}
	if opts.RandomStall <= 0 {
		opts.RandomStall = 32
	}
	if opts.NDetect < 1 {
		opts.NDetect = 1
	}
	compactLanes, err := sim.ResolveLanes(opts.Lanes)
	if err != nil {
		return nil, fmt.Errorf("atpg: %w", err)
	}
	plan, err := newFillPlan(c, opts, groups)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	faults := AllFaults(c)
	detected := make([]bool, len(faults))
	detCount := make([]int, len(faults))

	nPI, nFF := len(c.PIs), c.NumFFs()
	var patterns []scan.Pattern

	// Phase 1: random patterns, 64 lanes at a time on the bit-parallel
	// fault simulator. A fault's detection is credited to the
	// lowest-indexed detecting lane, and only credited patterns are kept.
	// Stall accounting is per pattern, exactly as a serial generator
	// processing the same rng stream would count it: every uncredited
	// pattern bumps the consecutive-useless counter, every credited one
	// resets it, and the batch is cut at the pattern where the threshold
	// trips.
	stopRandom := ob.phaseTimer("random")
	fs64 := NewFaultSim64(c)
	stall := 0
	batch := make([]scan.Pattern, 0, 64)
	type randHit struct {
		fault int
		mask  uint64
	}
	var hits []randHit
	for tries := 0; tries < opts.MaxRandomPatterns && stall < opts.RandomStall; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bsize := opts.MaxRandomPatterns - tries
		if bsize > 64 {
			bsize = 64
		}
		batch = batch[:0]
		for len(batch) < bsize {
			p := scan.Pattern{PI: make([]bool, nPI), State: make([]bool, nFF)}
			randFill(rng, p.PI)
			randFill(rng, p.State)
			batch = append(batch, p)
		}
		fs64.SetPatterns(batch)
		// Pass 1: detection masks, and the lanes serial in-order crediting
		// would award (per fault: the lowest lanes up to its quota).
		hits = hits[:0]
		credited := uint64(0)
		for i, f := range faults {
			if detCount[i] >= opts.NDetect {
				continue
			}
			mask := fs64.DetectMask(f)
			if mask == 0 {
				continue
			}
			hits = append(hits, randHit{i, mask})
			m, quota := mask, opts.NDetect-detCount[i]
			for m != 0 && quota > 0 {
				low := m & (-m)
				credited |= low
				m &^= low
				quota--
			}
		}
		// Pass 2: walk the lanes in pattern order counting consecutive
		// uncredited patterns; the phase ends at the pattern where the
		// stall threshold trips, not at the batch boundary.
		limit := bsize
		for lane := 0; lane < bsize; lane++ {
			if credited&(1<<lane) != 0 {
				stall = 0
			} else {
				stall++
				if stall >= opts.RandomStall {
					limit = lane + 1
					break
				}
			}
		}
		// Pass 3: apply credits from the surviving prefix only. A lane
		// below the cut is credited here iff pass 1 credited it: per
		// fault, the credited lanes are the lowest bits of its mask, so
		// restricting to a prefix keeps exactly the serial credits.
		prefix := lowLanes(limit)
		newDet := 0
		for _, h := range hits {
			m := h.mask & prefix
			if m == 0 {
				continue
			}
			for m != 0 && detCount[h.fault] < opts.NDetect {
				low := m & (-m)
				m &^= low
				detCount[h.fault]++
			}
			detected[h.fault] = true
			newDet++
		}
		for lane := 0; lane < limit; lane++ {
			if credited&(1<<lane) != 0 {
				patterns = append(patterns, batch[lane])
			}
		}
		tries += limit
		if ob.OnRandomBatch != nil {
			ob.OnRandomBatch(limit, newDet)
		}
	}
	stopRandom(len(patterns))

	// Phase 2: deterministic PODEM for the residue. Fault dropping is
	// batched: deterministic patterns accumulate in a ≤64-slot buffer and
	// one packed DetectAllMask pass credits them against every residual
	// fault when the buffer fills (or the phase ends), replacing the
	// serial per-pattern sweep. With Workers > 1 the PODEM searches
	// themselves run speculatively on a fault-parallel scheduler; every
	// credit, fill, and rng draw stays on this goroutine in canonical
	// fault order, so the result is bit-identical to the serial schedule.
	res := &Result{Faults: faults, Detected: detected, DetCounts: detCount}
	var scoap *testability.Analysis
	if opts.UseSCOAP {
		scoap = testability.Compute(c)
	}
	stopPodem := ob.phaseTimer("podem")

	var residual []int
	for i := range faults {
		if detCount[i] < opts.NDetect {
			residual = append(residual, i)
		}
	}
	env := newPodemEnv(c, scoap, opts.MaxBacktracks)
	inline := env.newPodem(false)
	var sched *podemScheduler
	if opts.Workers > 1 && len(residual) > 1 {
		sched = newPodemScheduler(env, faults, residual, opts.Workers, ob)
		defer sched.shutdown()
	}

	verify := NewFaultSim(c)
	pending := make([]scan.Pattern, 0, 64)
	flush := func() {
		if len(pending) == 0 {
			return
		}
		var t0 time.Time
		if ob.OnFaultSimBatch != nil {
			t0 = time.Now()
		}
		fs64.SetPatterns(pending)
		credited := fs64.DetectAllMask(faults, detCount, detected, opts.NDetect)
		for lane := range pending {
			if credited&(1<<lane) != 0 {
				patterns = append(patterns, pending[lane])
			}
		}
		if ob.OnFaultSimBatch != nil {
			ob.OnFaultSimBatch("drop", len(pending), time.Since(t0))
		}
		pending = pending[:0]
		if sched != nil {
			sched.publishSaturation(detCount, opts.NDetect)
		}
	}

	attempted := 0
	capped := false
	for r, i := range residual {
		if len(pending) == 64 {
			flush()
		}
		if detCount[i] >= opts.NDetect {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.MaxPodemFaults > 0 && attempted >= opts.MaxPodemFaults {
			if !capped {
				capped = true
				if sched != nil {
					sched.stop()
				}
				// Classify the capped tail against the up-to-date fault
				// status, not a buffer-stale one.
				flush()
				if detCount[i] >= opts.NDetect {
					continue
				}
			}
			if !detected[i] {
				res.Aborted++
			}
			if ob.OnPodemFault != nil {
				ob.OnPodemFault(faults[i], PodemSkipped, 0)
			}
			continue
		}
		attempted++
		var att podemAttempt
		if sched != nil {
			att = sched.attempt(r, i, inline)
		} else {
			st := inline.run(faults[i])
			att = podemAttempt{status: st, backtracks: inline.backtracks, assign: inline.assign}
		}
		res.Backtracks += att.backtracks
		if ob.OnPodemFault != nil {
			ob.OnPodemFault(faults[i], podemOutcomeOf(att.status), att.backtracks)
		}
		switch att.status {
		case podemSuccess:
			buffered := 0
			for detCount[i]+buffered < opts.NDetect {
				if len(pending) == 64 {
					flush()
					buffered = 0
					continue
				}
				pat := extractPattern(c, att.assign, rng, opts.Fill, plan)
				// The X-fill must not mask the target fault — PODEM left
				// the detecting assignment in place, so a miss indicates a
				// bug; flag it loudly rather than silently losing coverage.
				verify.SetPattern(pat.PI, pat.State)
				if !verify.Detects(faults[i]) {
					return nil, fmt.Errorf("atpg: internal: PODEM pattern misses its target fault %s",
						faults[i].Name(c))
				}
				pending = append(pending, pat)
				buffered++
			}
		case podemUntestable:
			res.Untestable++
		case podemAborted:
			res.Aborted++
		}
	}
	flush()
	if sched != nil {
		sched.shutdown()
	}
	stopPodem(len(patterns))

	// Phase 3: reverse-order static compaction (quota-aware for NDetect),
	// batched Options.Lanes patterns per packed pass.
	stopCompact := ob.phaseTimer("compact")
	if opts.Compact && len(patterns) > 1 {
		var t0 time.Time
		if ob.OnFaultSimBatch != nil {
			t0 = time.Now()
		}
		n := len(patterns)
		patterns = compact(c, patterns, faults, opts.NDetect, compactLanes)
		if ob.OnFaultSimBatch != nil {
			ob.OnFaultSimBatch("compact", n, time.Since(t0))
		}
	}
	stopCompact(len(patterns))
	res.Patterns = patterns
	return res, nil
}

// lowLanes returns the mask of the n lowest lanes.
func lowLanes(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<n - 1
}

// podemOutcomeOf maps the internal search status to the observer enum.
func podemOutcomeOf(s podemStatus) PodemOutcome {
	switch s {
	case podemSuccess:
		return PodemDetected
	case podemUntestable:
		return PodemUntestableFault
	default:
		return PodemAbortedFault
	}
}

func randFill(rng *rand.Rand, dst []bool) {
	for i := range dst {
		dst[i] = rng.Intn(2) == 1
	}
}

// fillPlan precomputes the chain partition FillAdjacent follows: each
// chain lists its flop indices in chain-position order (position 0
// nearest the scan input), matching scan.Chains.Groups.
type fillPlan struct {
	chains [][]int
}

// newFillPlan derives the partition from an explicit group list (which
// must cover every flop exactly once) or from Options.FillChains as the
// round-robin partition scan.NewChains builds.
func newFillPlan(c *netlist.Circuit, opts Options, groups [][]int) (*fillPlan, error) {
	nFF := c.NumFFs()
	if groups == nil {
		n := opts.FillChains
		if n < 1 {
			n = 1
		}
		if n > nFF && nFF > 0 {
			n = nFF
		}
		groups = make([][]int, n)
		for f := 0; f < nFF; f++ {
			groups[f%n] = append(groups[f%n], f)
		}
		return &fillPlan{chains: groups}, nil
	}
	seen := make([]bool, nFF)
	for _, g := range groups {
		for _, f := range g {
			if f < 0 || f >= nFF || seen[f] {
				return nil, fmt.Errorf("atpg: fill groups are not a partition (flop %d)", f)
			}
			seen[f] = true
		}
	}
	for f, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("atpg: flop %d missing from every fill group", f)
		}
	}
	return &fillPlan{chains: groups}, nil
}

// extractPattern splits PODEM's input assignment (in CombInputs order)
// into PI/state parts and completes don't-cares per the fill mode.
// FillAdjacent fills the scan state per chain in true chain-position
// order: within a chain the last specified value is carried forward, and
// the cells before the first specified bit take that bit's value so the
// leading padding causes no transition. PI don't-cares (which never shift
// through a chain) carry forward in PI order from a zero seed.
func extractPattern(c *netlist.Circuit, assign []logic.Value, rng *rand.Rand, mode FillMode, plan *fillPlan) scan.Pattern {
	nPI := len(c.PIs)
	pat := scan.Pattern{PI: make([]bool, nPI), State: make([]bool, c.NumFFs())}
	last := false
	for i := 0; i < nPI; i++ {
		v := assign[i]
		var b bool
		switch {
		case v.IsBinary():
			b = v.Bool()
			last = b
		case mode == FillZero:
			b = false
		case mode == FillOne:
			b = true
		case mode == FillAdjacent:
			b = last
		default:
			b = rng.Intn(2) == 1
		}
		pat.PI[i] = b
	}
	if mode != FillAdjacent {
		for f := 0; f < c.NumFFs(); f++ {
			v := assign[nPI+f]
			var b bool
			switch {
			case v.IsBinary():
				b = v.Bool()
			case mode == FillZero:
				b = false
			case mode == FillOne:
				b = true
			default:
				b = rng.Intn(2) == 1
			}
			pat.State[f] = b
		}
		return pat
	}
	for _, chain := range plan.chains {
		firstPos := -1
		for pos, f := range chain {
			if assign[nPI+f].IsBinary() {
				firstPos = pos
				break
			}
		}
		if firstPos == -1 {
			for _, f := range chain {
				pat.State[f] = false
			}
			continue
		}
		carry := assign[nPI+chain[firstPos]].Bool()
		for pos := 0; pos < firstPos; pos++ {
			pat.State[chain[pos]] = carry
		}
		for pos := firstPos; pos < len(chain); pos++ {
			f := chain[pos]
			if v := assign[nPI+f]; v.IsBinary() {
				carry = v.Bool()
			}
			pat.State[f] = carry
		}
	}
	return pat
}

// compact re-fault-simulates the patterns in reverse order, lanes
// patterns per packed pass, and keeps only those that detect a fault not
// already covered (to its quota) by a kept pattern. Lane 0 of each chunk
// is the latest unprocessed pattern and DetectAllMask credits lowest
// lanes first, so the kept set is bit-identical to the serial reverse
// sweep at every lane width.
func compact(c *netlist.Circuit, patterns []scan.Pattern, faults []Fault, nDetect, lanes int) []scan.Pattern {
	if nDetect < 1 {
		nDetect = 1
	}
	fs := NewFaultSimW(c, lanes)
	width := fs.LaneWidth()
	seen := make([]int, len(faults))
	kept := make([]scan.Pattern, 0, len(patterns))
	buf := make([]scan.Pattern, 0, width)
	for end := len(patterns); end > 0; {
		n := end
		if n > width {
			n = width
		}
		buf = buf[:0]
		for k := 0; k < n; k++ {
			buf = append(buf, patterns[end-1-k])
		}
		fs.SetPatterns(buf)
		credited := fs.DetectAllMask(faults, seen, nil, nDetect)
		for k := 0; k < n; k++ {
			if credited[k>>6]>>uint(k&63)&1 != 0 {
				kept = append(kept, buf[k])
			}
		}
		end -= n
	}
	// Restore application order.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	return kept
}

// CoverageOf fault-simulates an arbitrary pattern set from scratch —
// sim.WideLanes patterns per packed pass — and returns its fault
// coverage over AllFaults(c). Used to demonstrate that a DFT
// modification leaves coverage unchanged. Detection is a per-pattern
// property, so the batch width does not affect the result.
func CoverageOf(c *netlist.Circuit, patterns []scan.Pattern) float64 {
	faults := AllFaults(c)
	if len(faults) == 0 {
		return 1
	}
	detected := make([]bool, len(faults))
	if len(patterns) > 0 {
		fs := NewFaultSimW(c, sim.WideLanes)
		width := fs.LaneWidth()
		counts := make([]int, len(faults))
		for start := 0; start < len(patterns); start += width {
			end := start + width
			if end > len(patterns) {
				end = len(patterns)
			}
			fs.SetPatterns(patterns[start:end])
			fs.DetectAllMask(faults, counts, detected, 1)
		}
	}
	n := 0
	for _, d := range detected {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(faults))
}
