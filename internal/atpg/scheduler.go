package atpg

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/logic"
)

// podemAttempt is the outcome of one speculative PODEM run: the search
// status, its backtrack count, and (on success) a snapshot of the input
// assignment. ran distinguishes a real result from a slot the worker
// skipped on a saturation or stop signal.
type podemAttempt struct {
	status     podemStatus
	backtracks int
	assign     []logic.Value
	ran        bool
}

// podemSchedulerChunk is how many residual faults one work queue claim
// covers: small enough to balance across workers, large enough that the
// claim counter is not contended.
const podemSchedulerChunk = 8

// podemScheduler runs PODEM searches fault-parallel while keeping the
// generation result bit-identical to the serial fault order. The
// determinism contract:
//
//   - Workers only execute the PODEM search itself, which is a pure
//     function of (circuit, fault, backtrack limit, SCOAP) — no rng, no
//     shared mutable state. Each worker owns one reusable podem engine.
//   - The committer (the generation goroutine) consumes results strictly
//     in canonical fault-index order; every pattern fill, rng draw,
//     credit, and observer callback (except OnPodemChunk) happens there.
//   - Workers may skip a fault whose saturation flag the committer
//     published after a buffer flush; saturation is monotone, so the
//     committer is guaranteed to skip that fault too and never reads the
//     empty slot. If it ever does (defensive), it recomputes inline —
//     the same deterministic result.
//
// Memory visibility: a worker publishes a chunk's slots by closing the
// chunk's done channel; the committer reads them only after receiving
// from that channel.
type podemScheduler struct {
	env      *podemEnv
	faults   []Fault
	residual []int
	ob       Observer

	next    atomic.Int64
	stopped atomic.Bool
	sat     []atomic.Bool // per fault index: quota met, skip speculation
	slots   []podemAttempt
	done    []chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
}

func newPodemScheduler(env *podemEnv, faults []Fault, residual []int, workers int, ob Observer) *podemScheduler {
	nChunks := (len(residual) + podemSchedulerChunk - 1) / podemSchedulerChunk
	if workers > nChunks {
		workers = nChunks
	}
	s := &podemScheduler{
		env:      env,
		faults:   faults,
		residual: residual,
		ob:       ob,
		sat:      make([]atomic.Bool, len(faults)),
		slots:    make([]podemAttempt, len(residual)),
		done:     make([]chan struct{}, nChunks),
	}
	for i := range s.done {
		s.done[i] = make(chan struct{})
	}
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.worker()
	}
	return s
}

func (s *podemScheduler) worker() {
	defer s.wg.Done()
	p := s.env.newPodem(false)
	for {
		ci := int(s.next.Add(1)) - 1
		if ci >= len(s.done) {
			return
		}
		start := ci * podemSchedulerChunk
		end := start + podemSchedulerChunk
		if end > len(s.residual) {
			end = len(s.residual)
		}
		var t0 time.Time
		if s.ob.OnPodemChunk != nil {
			t0 = time.Now()
		}
		for r := start; r < end; r++ {
			if s.stopped.Load() {
				break
			}
			i := s.residual[r]
			if s.sat[i].Load() {
				continue
			}
			st := p.run(s.faults[i])
			att := podemAttempt{status: st, backtracks: p.backtracks, ran: true}
			if st == podemSuccess {
				att.assign = append([]logic.Value(nil), p.assign...)
			}
			s.slots[r] = att
		}
		close(s.done[ci])
		if s.ob.OnPodemChunk != nil {
			s.ob.OnPodemChunk(start, end-start, time.Since(t0))
		}
	}
}

// attempt returns the PODEM result for residual position r (fault index
// i), waiting for the owning chunk if a worker is still on it. inline is
// the committer's own engine, used when the slot was skipped.
func (s *podemScheduler) attempt(r, i int, inline *podem) podemAttempt {
	<-s.done[r/podemSchedulerChunk]
	if att := s.slots[r]; att.ran {
		return att
	}
	st := inline.run(s.faults[i])
	return podemAttempt{status: st, backtracks: inline.backtracks, assign: inline.assign, ran: true}
}

// publishSaturation lets workers skip faults the committer has already
// credited to quota. Flags are only ever set, never cleared, which is
// what makes worker-side skipping sound.
func (s *podemScheduler) publishSaturation(detCount []int, nDetect int) {
	for _, i := range s.residual {
		if detCount[i] >= nDetect && !s.sat[i].Load() {
			s.sat[i].Store(true)
		}
	}
}

// stop asks workers to abandon speculation (cap reached or the committer
// is bailing out); in-flight PODEM runs finish, queued faults are skipped.
func (s *podemScheduler) stop() { s.stopped.Store(true) }

// shutdown stops speculation and waits for every worker to exit, so no
// observer callback outlives the generation call. Idempotent; also run
// via defer on error paths.
func (s *podemScheduler) shutdown() {
	s.stopped.Store(true)
	s.once.Do(func() { s.wg.Wait() })
}
