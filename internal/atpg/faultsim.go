package atpg

import (
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// FaultSim is a serial, event-driven single-stuck-at fault simulator.
// After SetPattern fixes the good-circuit response, Detects answers
// whether a given fault is observable at a primary output or a flip-flop
// data input (full-scan observability) under that pattern.
type FaultSim struct {
	c    *netlist.Circuit
	s    *sim.Simulator
	good []bool

	// Copy-on-write faulty values, valid when stamp[net] == epoch.
	faulty []bool
	stamp  []uint32
	gstamp []uint32 // per-gate queued marker
	epoch  uint32

	buckets [][]netlist.GateID // worklist indexed by gate level
	inBuf   []bool
}

// NewFaultSim builds a simulator for the frozen circuit c.
func NewFaultSim(c *netlist.Circuit) *FaultSim {
	return &FaultSim{
		c:       c,
		s:       sim.New(c),
		faulty:  make([]bool, c.NumNets()),
		stamp:   make([]uint32, c.NumNets()),
		gstamp:  make([]uint32, c.NumGates()),
		buckets: make([][]netlist.GateID, c.Depth()+1),
		inBuf:   make([]bool, 0, 8),
	}
}

// SetPattern simulates the good circuit for the pattern (pi in PI order,
// ppi in FF order).
func (fs *FaultSim) SetPattern(pi, ppi []bool) {
	fs.good = fs.s.Eval(pi, ppi)
}

// GoodValue returns the good-circuit value of a net for the current
// pattern.
func (fs *FaultSim) GoodValue(n netlist.NetID) bool { return fs.good[n] }

func (fs *FaultSim) val(n netlist.NetID) bool {
	if fs.stamp[n] == fs.epoch {
		return fs.faulty[n]
	}
	return fs.good[n]
}

func (fs *FaultSim) observed(n netlist.NetID) bool {
	net := &fs.c.Nets[n]
	return net.IsPO() || len(net.FanoutFF) > 0
}

// Detects reports whether fault f is detected by the current pattern.
func (fs *FaultSim) Detects(f Fault) bool {
	if fs.good == nil {
		panic("atpg: Detects before SetPattern")
	}
	if fs.good[f.Net] == f.Stuck {
		return false // not activated
	}
	fs.epoch++
	if fs.epoch == 0 { // wrapped: clear stamps
		for i := range fs.stamp {
			fs.stamp[i] = 0
		}
		for i := range fs.gstamp {
			fs.gstamp[i] = 0
		}
		fs.epoch = 1
	}
	c := fs.c
	fs.faulty[f.Net] = f.Stuck
	fs.stamp[f.Net] = fs.epoch
	if fs.observed(f.Net) {
		return true
	}
	for i := range fs.buckets {
		fs.buckets[i] = fs.buckets[i][:0]
	}
	schedule := func(n netlist.NetID) {
		for _, g := range c.Nets[n].Fanout {
			if fs.gstamp[g] != fs.epoch {
				fs.gstamp[g] = fs.epoch
				lvl := c.Level(g)
				fs.buckets[lvl] = append(fs.buckets[lvl], g)
			}
		}
	}
	schedule(f.Net)
	for lvl := 0; lvl < len(fs.buckets); lvl++ {
		for qi := 0; qi < len(fs.buckets[lvl]); qi++ {
			gi := fs.buckets[lvl][qi]
			g := &c.Gates[gi]
			if g.Output == f.Net {
				continue // the fault site stays forced
			}
			fs.inBuf = fs.inBuf[:0]
			for _, in := range g.Inputs {
				fs.inBuf = append(fs.inBuf, fs.val(in))
			}
			nv := logic.EvalBool(g.Type, fs.inBuf)
			if nv == fs.val(g.Output) {
				continue // difference died here
			}
			fs.faulty[g.Output] = nv
			fs.stamp[g.Output] = fs.epoch
			if fs.observed(g.Output) {
				return true
			}
			schedule(g.Output)
		}
	}
	return false
}

// DetectAll marks, in detected, every not-yet-detected fault of faults
// that the current pattern catches, and returns how many were new.
func (fs *FaultSim) DetectAll(faults []Fault, detected []bool) int {
	n := 0
	for i, f := range faults {
		if detected[i] {
			continue
		}
		if fs.Detects(f) {
			detected[i] = true
			n++
		}
	}
	return n
}
