package atpg

import "time"

// PodemOutcome classifies one deterministic PODEM attempt for observers.
type PodemOutcome int

// Per-fault PODEM outcomes.
const (
	// PodemDetected: the run produced a pattern for the target fault.
	PodemDetected PodemOutcome = iota
	// PodemUntestableFault: the search space was exhausted — redundant.
	PodemUntestableFault
	// PodemAbortedFault: the backtrack limit stopped the run.
	PodemAbortedFault
	// PodemSkipped: the MaxPodemFaults cap left the fault unattempted.
	PodemSkipped
)

// String names the outcome (stable labels for metric series).
func (o PodemOutcome) String() string {
	switch o {
	case PodemDetected:
		return "detected"
	case PodemUntestableFault:
		return "untestable"
	case PodemAbortedFault:
		return "aborted"
	case PodemSkipped:
		return "skipped"
	}
	return "unknown"
}

// Observer receives fine-grained generation telemetry. Every field is
// optional; the zero Observer is free — each emission site is a single
// nil check, and no observer-related value escapes to the heap when a
// field is nil, so generation with a zero Observer allocates exactly what
// Generate does.
//
// Observer is deliberately not part of Options: Options is comparable (it
// keys the Engine's memoized pattern cache) and function fields would
// break that.
type Observer struct {
	// OnPodemFault fires after each deterministic-phase fault: the target,
	// how its PODEM run ended, and how many backtracks it cost.
	OnPodemFault func(f Fault, outcome PodemOutcome, backtracks int)
	// OnRandomBatch fires after each 64-lane random-simulation batch with
	// the batch size and how many faults it newly detected.
	OnRandomBatch func(patterns, newDetects int)
	// OnPhase fires when a generation phase completes: "random", "podem",
	// or "compact", with its wall time and the pattern count after it.
	OnPhase func(phase string, elapsed time.Duration, patterns int)
	// OnFaultSimBatch fires after each packed fault-dropping pass: kind is
	// "drop" (deterministic-phase pattern buffer flush) or "compact"
	// (static compaction), lanes is how many pattern lanes the pass
	// simulated. Emitted from the committer goroutine only, in
	// deterministic order for a given seed and options.
	OnFaultSimBatch func(kind string, lanes int, elapsed time.Duration)
	// OnPodemChunk fires after a fault-parallel scheduler worker finishes
	// one chunk of the residual fault queue: the chunk's start offset and
	// length in the residual list, and its wall time. Only set when
	// Options.Workers > 1 engages the scheduler, and — unlike every other
	// callback — invoked concurrently from worker goroutines;
	// implementations must be goroutine-safe.
	OnPodemChunk func(start, n int, elapsed time.Duration)
}

// phaseTimer returns a stopper for the named phase, or a no-op when
// OnPhase is unset. The no-op literal captures nothing, so the unobserved
// path allocates nothing.
func (o Observer) phaseTimer(phase string) func(patterns int) {
	if o.OnPhase == nil {
		return func(int) {}
	}
	start := time.Now()
	return func(patterns int) {
		o.OnPhase(phase, time.Since(start), patterns)
	}
}
