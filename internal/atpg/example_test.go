package atpg_test

import (
	"fmt"
	"log"

	"repro/internal/atpg"
	"repro/internal/iscas"
)

// Generate a compact stuck-at test set for the real ISCAS89 s27.
func ExampleGenerate() {
	c := iscas.S27()
	res, err := atpg.Generate(c, atpg.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage %.0f%%, untestable %d, aborted %d\n",
		res.Coverage()*100, res.Untestable, res.Aborted)
	// Output:
	// coverage 100%, untestable 0, aborted 0
}

// Fault-simulate an existing pattern set from scratch.
func ExampleCoverageOf() {
	c := iscas.S27()
	res, err := atpg.Generate(c, atpg.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	// Dropping half the patterns loses coverage.
	half := res.Patterns[:len(res.Patterns)/2]
	full := atpg.CoverageOf(c, res.Patterns)
	cut := atpg.CoverageOf(c, half)
	fmt.Printf("full set >= halved set: %v\n", full >= cut)
	// Output:
	// full set >= halved set: true
}
