package atpg

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/netlist"
)

// benchParseS27 is loadS27 without the *testing.T, for benchmarks.
func benchParseS27() (*netlist.Circuit, error) {
	return bench.ParseString(s27, "s27")
}

func TestGenerateObservedMatchesGenerate(t *testing.T) {
	c := loadS27(t)
	opts := DefaultOptions()
	plain, err := Generate(c, opts)
	if err != nil {
		t.Fatal(err)
	}

	var (
		outcomes   = map[PodemOutcome]int{}
		backtracks int
		phases     []string
		batches    int
	)
	observed, err := GenerateObserved(context.Background(), c, opts, Observer{
		OnPodemFault: func(f Fault, outcome PodemOutcome, bt int) {
			outcomes[outcome]++
			backtracks += bt
		},
		OnRandomBatch: func(patterns, newDetects int) { batches++ },
		OnPhase: func(phase string, elapsed time.Duration, patterns int) {
			phases = append(phases, phase)
			if elapsed < 0 {
				t.Errorf("phase %s negative elapsed %v", phase, elapsed)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Patterns, observed.Patterns) {
		t.Error("observer changed the generated pattern set")
	}
	if !reflect.DeepEqual(phases, []string{"random", "podem", "compact"}) {
		t.Errorf("phases = %v, want [random podem compact]", phases)
	}
	if batches == 0 {
		t.Error("no random batches observed")
	}
	if backtracks != observed.Backtracks {
		t.Errorf("observed backtracks %d != result total %d", backtracks, observed.Backtracks)
	}
	if outcomes[PodemUntestableFault] != observed.Untestable {
		t.Errorf("observed untestable %d != result %d",
			outcomes[PodemUntestableFault], observed.Untestable)
	}
	if outcomes[PodemAbortedFault]+outcomes[PodemSkipped] != observed.Aborted {
		t.Errorf("observed aborted+skipped %d != result %d",
			outcomes[PodemAbortedFault]+outcomes[PodemSkipped], observed.Aborted)
	}
}

func TestObserverSkippedFaults(t *testing.T) {
	c := loadS27(t)
	opts := DefaultOptions()
	opts.MaxRandomPatterns = 0 // force everything through PODEM
	opts.MaxPodemFaults = 1
	skipped := 0
	res, err := GenerateObserved(context.Background(), c, opts, Observer{
		OnPodemFault: func(f Fault, outcome PodemOutcome, bt int) {
			if outcome == PodemSkipped {
				skipped++
				if bt != 0 {
					t.Errorf("skipped fault reported %d backtracks", bt)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped == 0 {
		t.Error("MaxPodemFaults=1 produced no skipped-fault events")
	}
	if res.Aborted < skipped {
		t.Errorf("result aborted %d < skipped events %d", res.Aborted, skipped)
	}
}

// TestZeroObserverAddsNoAllocations is the hot-path guard of the telemetry
// layer: generation through GenerateObserved with a zero Observer must
// allocate exactly what the plain Generate path does — the observer hooks
// may not leak allocations into the PODEM loop when disabled.
func TestZeroObserverAddsNoAllocations(t *testing.T) {
	c := loadS27(t)
	opts := DefaultOptions()
	ctx := context.Background()
	// Warm-up so lazily initialized state doesn't skew the first sample.
	if _, err := GenerateObserved(ctx, c, opts, Observer{}); err != nil {
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(5, func() {
		if _, err := GenerateContext(ctx, c, opts); err != nil {
			t.Fatal(err)
		}
	})
	zero := testing.AllocsPerRun(5, func() {
		if _, err := GenerateObserved(ctx, c, opts, Observer{}); err != nil {
			t.Fatal(err)
		}
	})
	if zero > base {
		t.Errorf("zero Observer allocates more than plain Generate: %v > %v allocs/run", zero, base)
	}
}

func BenchmarkGenerateObserver(b *testing.B) {
	c, err := benchParseS27()
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions()
	ctx := context.Background()
	b.Run("nil", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := GenerateObserved(ctx, c, opts, Observer{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("live", func(b *testing.B) {
		var faults, batches int
		ob := Observer{
			OnPodemFault:  func(Fault, PodemOutcome, int) { faults++ },
			OnRandomBatch: func(int, int) { batches++ },
			OnPhase:       func(string, time.Duration, int) {},
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := GenerateObserved(ctx, c, opts, ob); err != nil {
				b.Fatal(err)
			}
		}
	})
}
