package atpg

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// atpgFuzzCircuit builds a small random, well-formed frozen circuit from
// a seed: a DAG of random gates over a few PIs and flops (same idiom as
// the power-kernel fuzzers).
func atpgFuzzCircuit(rng *rand.Rand) *netlist.Circuit {
	c := netlist.New("fuzz")
	nPI := 1 + rng.Intn(3)
	nFF := 1 + rng.Intn(4)
	var nets []string
	for i := 0; i < nPI; i++ {
		name := "pi" + string(rune('a'+i))
		c.AddPI(name)
		nets = append(nets, name)
	}
	for i := 0; i < nFF; i++ {
		nets = append(nets, "q"+string(rune('a'+i)))
	}
	types := []logic.GateType{logic.Not, logic.Buf, logic.And, logic.Nand,
		logic.Or, logic.Nor, logic.Xor, logic.Xnor, logic.Mux2}
	nGates := 3 + rng.Intn(20)
	var driven []string
	for i := 0; i < nGates; i++ {
		tpe := types[rng.Intn(len(types))]
		arity := 2 + rng.Intn(3)
		switch tpe {
		case logic.Not, logic.Buf:
			arity = 1
		case logic.Mux2:
			arity = 3
		}
		ins := make([]string, arity)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		out := "g" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		c.AddGate(tpe, out, ins...)
		nets = append(nets, out)
		driven = append(driven, out)
	}
	for i := 0; i < nFF; i++ {
		d := driven[rng.Intn(len(driven))]
		c.AddFF("f"+string(rune('a'+i)), "q"+string(rune('a'+i)), d)
	}
	c.MarkPO(driven[len(driven)-1])
	c.MustFreeze()
	return c
}

// FuzzFaultSimEquivalence drives random circuits and pattern batches
// through the serial fault simulator and the 64-way packed one, and
// requires lane-for-lane agreement: DetectMask bit L set iff the serial
// simulator detects that fault under pattern L, and the batched
// DetectAllMask crediting equal to a serial per-pattern sweep.
// `make fuzz-equiv` runs this continuously; the seed corpus runs on
// every `go test`.
func FuzzFaultSimEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(1))
	f.Add(int64(42), uint8(64), uint8(2))
	f.Add(int64(7), uint8(1), uint8(0))
	f.Add(int64(99), uint8(33), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, nPats, nd uint8) {
		rng := rand.New(rand.NewSource(seed))
		c := atpgFuzzCircuit(rng)
		batch := randomBatch(c, rng, int(nPats)%64+1)
		faults := AllFaults(c)
		if len(faults) == 0 {
			t.Skip("degenerate circuit")
		}

		fs64 := NewFaultSim64(c)
		fs64.SetPatterns(batch)
		masks := make([]uint64, len(faults))
		for i, flt := range faults {
			masks[i] = fs64.DetectMask(flt)
		}

		fs := NewFaultSim(c)
		nDetect := int(nd)%4 + 1
		sCount := make([]int, len(faults))
		var sCredited uint64
		for lane, p := range batch {
			fs.SetPattern(p.PI, p.State)
			for i, flt := range faults {
				got := masks[i]&(1<<lane) != 0
				want := fs.Detects(flt)
				if got != want {
					t.Fatalf("seed=%d lane=%d fault %s: DetectMask=%v serial=%v",
						seed, lane, flt.Name(c), got, want)
				}
				if want && sCount[i] < nDetect {
					sCount[i]++
					sCredited |= 1 << lane
				}
			}
		}

		pCount := make([]int, len(faults))
		fs64.SetPatterns(batch)
		pCredited := fs64.DetectAllMask(faults, pCount, nil, nDetect)
		if pCredited != sCredited {
			t.Fatalf("seed=%d nd=%d: DetectAllMask credited %064b, serial %064b",
				seed, nDetect, pCredited, sCredited)
		}
		for i := range faults {
			if pCount[i] != sCount[i] {
				t.Fatalf("seed=%d nd=%d fault %s: detCount %d vs serial %d",
					seed, nDetect, faults[i].Name(c), pCount[i], sCount[i])
			}
		}
	})
}
