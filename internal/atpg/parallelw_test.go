package atpg

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// TestFaultSimWAgainstSerial cross-validates the wide simulator against
// the serial one, lane by lane, over batch sizes crossing every word
// boundary, and requires silence beyond the loaded lanes.
func TestFaultSimWAgainstSerial(t *testing.T) {
	c, err := bench.ParseString(s27, "s27")
	if err != nil {
		t.Fatal(err)
	}
	faults := AllFaults(c)
	fsS := NewFaultSim(c)
	fsW := NewFaultSimW(c, sim.WideLanes)
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 63, 64, 65, 127, 128, 200, 256} {
		batch := randomBatch(c, rng, n)
		fsW.SetPatterns(batch)
		for _, f := range faults {
			mask := fsW.DetectMask(f)
			for lane := 0; lane < n; lane++ {
				fsS.SetPattern(batch[lane].PI, batch[lane].State)
				want := fsS.Detects(f)
				got := mask[lane>>6]>>uint(lane&63)&1 == 1
				if got != want {
					t.Fatalf("n=%d fault %s lane %d: wide=%v serial=%v",
						n, f.Name(c), lane, got, want)
				}
			}
			for lane := n; lane < sim.WideLanes; lane++ {
				if mask[lane>>6]>>uint(lane&63)&1 == 1 {
					t.Fatalf("n=%d fault %s: mask bit set at invalid lane %d",
						n, f.Name(c), lane)
				}
			}
		}
	}
}

// TestDetectAllMaskWidthInvariance: one 256-wide DetectAllMask pass over
// a batch must leave exactly the counts, flags, and credited lanes of
// sweeping the same patterns through the 64-lane simulator chunk by
// chunk — the lowest-lane crediting contract at work across widths.
func TestDetectAllMaskWidthInvariance(t *testing.T) {
	p, _ := iscas.ByName("s344")
	c, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	faults := AllFaults(c)
	rng := rand.New(rand.NewSource(5))
	batch := randomBatch(c, rng, 200)
	for _, nd := range []int{1, 2, 4} {
		wide := NewFaultSimW(c, sim.WideLanes)
		wide.SetPatterns(batch)
		wCount := make([]int, len(faults))
		wDet := make([]bool, len(faults))
		wCred := append([]uint64(nil), wide.DetectAllMask(faults, wCount, wDet, nd)...)

		narrow := NewFaultSim64(c)
		nCount := make([]int, len(faults))
		nDet := make([]bool, len(faults))
		var nCred []uint64
		for start := 0; start < len(batch); start += 64 {
			end := start + 64
			if end > len(batch) {
				end = len(batch)
			}
			narrow.SetPatterns(batch[start:end])
			nCred = append(nCred, narrow.DetectAllMask(faults, nCount, nDet, nd))
		}
		for len(nCred) < len(wCred) {
			nCred = append(nCred, 0)
		}
		for i := range faults {
			if wCount[i] != nCount[i] || wDet[i] != nDet[i] {
				t.Fatalf("nd=%d fault %s: wide count/det %d/%v, chunked %d/%v",
					nd, faults[i].Name(c), wCount[i], wDet[i], nCount[i], nDet[i])
			}
		}
		for k := range wCred {
			if wCred[k] != nCred[k] {
				t.Fatalf("nd=%d credited word %d: wide %064b, chunked %064b",
					nd, k, wCred[k], nCred[k])
			}
		}
	}
}

// TestGenerateLanesInvariance: Options.Lanes only widens the compaction
// batches, so the full generation result — patterns, flags, counts —
// must be bit-identical at every supported width, and an unsupported
// width must be rejected up front.
func TestGenerateLanesInvariance(t *testing.T) {
	p, _ := iscas.ByName("s344")
	c, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var ref *Result
	for _, lanes := range sim.LaneWidths() {
		opts := DefaultOptions()
		opts.Lanes = lanes
		res, err := Generate(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Patterns) != len(ref.Patterns) {
			t.Fatalf("lanes=%d: %d patterns, want %d", lanes, len(res.Patterns), len(ref.Patterns))
		}
		for i := range res.Patterns {
			for j := range res.Patterns[i].PI {
				if res.Patterns[i].PI[j] != ref.Patterns[i].PI[j] {
					t.Fatalf("lanes=%d: pattern %d PI differs", lanes, i)
				}
			}
			for j := range res.Patterns[i].State {
				if res.Patterns[i].State[j] != ref.Patterns[i].State[j] {
					t.Fatalf("lanes=%d: pattern %d state differs", lanes, i)
				}
			}
		}
		for i := range res.Detected {
			if res.Detected[i] != ref.Detected[i] || res.DetCounts[i] != ref.DetCounts[i] {
				t.Fatalf("lanes=%d: fault %d detection differs", lanes, i)
			}
		}
	}

	opts := DefaultOptions()
	opts.Lanes = 100
	if _, err := Generate(c, opts); err == nil {
		t.Error("Generate accepted an unsupported lane width")
	}
}

// TestFaultSimWPanicsNameOffender: constructor and batch panics must name
// what went wrong — the circuit, the width, or the batch size.
func TestFaultSimWPanicsNameOffender(t *testing.T) {
	c, err := bench.ParseString(s27, "s27")
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(substr string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("no panic, want one mentioning %q", substr)
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, substr) {
				t.Fatalf("panic %v does not mention %q", r, substr)
			}
		}()
		fn()
	}
	mustPanic("257", func() {
		fs := NewFaultSimW(c, sim.WideLanes)
		fs.SetPatterns(randomBatch(c, rand.New(rand.NewSource(1)), sim.WideLanes+1))
	})
	mustPanic("invalid lane width 100", func() { NewFaultSimW(c, 100) })
	unfrozen := netlist.New("melted")
	unfrozen.AddPI("a")
	mustPanic("melted", func() { NewFaultSimW(unfrozen, 64) })
}

// BenchmarkFaultSimWBatch is BenchmarkFaultSim64Batch at the wide width:
// one 256-pattern load and a full fault sweep per iteration.
func BenchmarkFaultSimWBatch(b *testing.B) {
	p, _ := iscas.ByName("s1423")
	c, err := iscas.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	faults := AllFaults(c)
	fs := NewFaultSimW(c, sim.WideLanes)
	rng := rand.New(rand.NewSource(12))
	batch := randomBatch(c, rng, sim.WideLanes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.SetPatterns(batch)
		for _, f := range faults {
			fs.DetectMask(f)
		}
	}
}
