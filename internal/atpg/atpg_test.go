package atpg

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

const s27 = `INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

func loadS27(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(s27, "s27")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAllFaultsCount(t *testing.T) {
	c := loadS27(t)
	faults := AllFaults(c)
	// Every net in s27 is read by something or is a PO: 17 nets * 2.
	if len(faults) != 2*c.NumNets() {
		t.Errorf("fault count = %d, want %d", len(faults), 2*c.NumNets())
	}
	// Sorted and paired.
	for i := 0; i+1 < len(faults); i += 2 {
		if faults[i].Net != faults[i+1].Net || faults[i].Stuck || !faults[i+1].Stuck {
			t.Fatalf("faults not paired at %d: %v %v", i, faults[i], faults[i+1])
		}
	}
}

func TestAllFaultsExcludesDeadNets(t *testing.T) {
	c := netlist.New("dead")
	c.AddPI("a")
	c.AddGate(logic.Not, "used", "a")
	c.AddGate(logic.Not, "unused", "a")
	c.MarkPO("used")
	c.MustFreeze()
	for _, f := range AllFaults(c) {
		if c.Nets[f.Net].Name == "unused" {
			t.Error("fault on unobservable net included")
		}
	}
}

// naiveDetects checks detection by two full simulations.
func naiveDetects(c *netlist.Circuit, pi, ppi []bool, f Fault) bool {
	s := sim.New(c)
	good := append([]bool(nil), s.Eval(pi, ppi)...)
	if good[f.Net] == f.Stuck {
		return false
	}
	// Faulty simulation: force the net by recomputing manually.
	vals := make([]bool, c.NumNets())
	for i, n := range c.PIs {
		vals[n] = pi[i]
	}
	for i, ff := range c.FFs {
		vals[ff.Q] = ppi[i]
	}
	if _, ok := inputNet(c, f.Net); ok {
		vals[f.Net] = f.Stuck
	}
	buf := make([]bool, 0, 8)
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		buf = buf[:0]
		for _, in := range g.Inputs {
			buf = append(buf, vals[in])
		}
		if g.Output == f.Net {
			vals[g.Output] = f.Stuck
		} else {
			vals[g.Output] = logic.EvalBool(g.Type, buf)
		}
	}
	for _, po := range c.POs {
		if vals[po] != good[po] {
			return true
		}
	}
	for _, ff := range c.FFs {
		if vals[ff.D] != good[ff.D] {
			return true
		}
	}
	return false
}

func inputNet(c *netlist.Circuit, n netlist.NetID) (int, bool) {
	for i, id := range c.CombInputs() {
		if id == n {
			return i, true
		}
	}
	return 0, false
}

// TestFaultSimAgainstNaive cross-validates the event-driven fault
// simulator against brute-force double simulation on random patterns.
func TestFaultSimAgainstNaive(t *testing.T) {
	c := loadS27(t)
	fs := NewFaultSim(c)
	faults := AllFaults(c)
	rng := rand.New(rand.NewSource(7))
	pi := make([]bool, len(c.PIs))
	ppi := make([]bool, c.NumFFs())
	for trial := 0; trial < 50; trial++ {
		sim.RandomVector(rng, pi)
		sim.RandomVector(rng, ppi)
		fs.SetPattern(pi, ppi)
		for _, f := range faults {
			got := fs.Detects(f)
			want := naiveDetects(c, pi, ppi, f)
			if got != want {
				t.Fatalf("trial %d fault %s: event-driven=%v naive=%v",
					trial, f.Name(c), got, want)
			}
		}
	}
}

func TestGenerateS27FullCoverage(t *testing.T) {
	c := loadS27(t)
	res, err := Generate(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != 0 {
		t.Errorf("aborted %d faults on s27", res.Aborted)
	}
	if cov := res.Coverage(); cov < 1.0 {
		var missed []string
		for i, d := range res.Detected {
			if !d {
				missed = append(missed, res.Faults[i].Name(c))
			}
		}
		t.Errorf("coverage = %v, missed %v", cov, missed)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns generated")
	}
	// Independent re-simulation must agree with the claimed coverage.
	indep := CoverageOf(c, res.Patterns)
	claimed := float64(res.DetectedCount()) / float64(len(res.Faults))
	if indep < claimed-1e-12 {
		t.Errorf("independent coverage %v < claimed %v", indep, claimed)
	}
}

// TestClassificationSoundness brute-forces detectability of every fault
// over the full input space and checks Generate never misclassifies.
func TestClassificationSoundness(t *testing.T) {
	c := loadS27(t)
	res, err := Generate(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nIn := len(c.CombInputs())
	for i, f := range res.Faults {
		testable := false
		pi := make([]bool, len(c.PIs))
		ppi := make([]bool, c.NumFFs())
		for bits := 0; bits < 1<<nIn && !testable; bits++ {
			for j := 0; j < len(pi); j++ {
				pi[j] = bits>>j&1 == 1
			}
			for j := 0; j < len(ppi); j++ {
				ppi[j] = bits>>(len(pi)+j)&1 == 1
			}
			if naiveDetects(c, pi, ppi, f) {
				testable = true
			}
		}
		if res.Detected[i] && !testable {
			t.Errorf("fault %s claimed detected but is untestable", f.Name(c))
		}
		if !res.Detected[i] && testable && res.Aborted == 0 {
			t.Errorf("fault %s testable but not detected (and nothing aborted)", f.Name(c))
		}
	}
}

func TestRedundantFaultClassifiedUntestable(t *testing.T) {
	// y = AND(a, NOT(a)) == 0 always: y/SA0 is redundant.
	c := netlist.New("red")
	c.AddPI("a")
	c.AddGate(logic.Not, "na", "a")
	c.AddGate(logic.And, "y", "a", "na")
	c.MarkPO("y")
	c.MustFreeze()
	res, err := Generate(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Untestable == 0 {
		t.Error("redundant fault not classified untestable")
	}
	yID, _ := c.NetByName("y")
	for i, f := range res.Faults {
		if f.Net == yID && !f.Stuck && res.Detected[i] {
			t.Error("y/SA0 claimed detected")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := loadS27(t)
	a, err := Generate(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Patterns, b.Patterns) {
		t.Error("same seed produced different pattern sets")
	}
	opts := DefaultOptions()
	opts.Seed = 99
	d, err := Generate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	_ = d // different seed may or may not differ; just must not crash
}

func TestCompactionPreservesCoverage(t *testing.T) {
	c := loadS27(t)
	loose := DefaultOptions()
	loose.Compact = false
	a, err := Generate(c, loose)
	if err != nil {
		t.Fatal(err)
	}
	tight := DefaultOptions()
	tight.Compact = true
	b, err := Generate(c, tight)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Patterns) > len(a.Patterns) {
		t.Errorf("compaction grew the set: %d -> %d", len(a.Patterns), len(b.Patterns))
	}
	if CoverageOf(c, b.Patterns) < CoverageOf(c, a.Patterns)-1e-12 {
		t.Error("compaction lost coverage")
	}
}

func TestGenerateNoRandomPhase(t *testing.T) {
	// Pure-PODEM mode must still reach full coverage on s27.
	c := loadS27(t)
	opts := DefaultOptions()
	opts.MaxRandomPatterns = 0
	res, err := Generate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cov := res.Coverage(); cov < 1.0 {
		t.Errorf("pure PODEM coverage = %v", cov)
	}
}

func TestGenerateRequiresFrozen(t *testing.T) {
	c := netlist.New("uf")
	c.AddPI("a")
	c.AddGate(logic.Not, "o", "a")
	c.MarkPO("o")
	if _, err := Generate(c, DefaultOptions()); err == nil {
		t.Error("Generate accepted unfrozen circuit")
	}
}

func TestFaultStrings(t *testing.T) {
	c := loadS27(t)
	f := Fault{Net: 0, Stuck: true}
	if f.String() == "" || f.Name(c) == "" {
		t.Error("empty fault strings")
	}
	if got := (Fault{Net: 3, Stuck: false}).String(); got != "net3/SA0" {
		t.Errorf("String = %q", got)
	}
}

func TestDetectsBeforeSetPatternPanics(t *testing.T) {
	c := loadS27(t)
	fs := NewFaultSim(c)
	defer func() {
		if recover() == nil {
			t.Fatal("Detects before SetPattern did not panic")
		}
	}()
	fs.Detects(Fault{Net: 0})
}

func TestNDetectGrowsPatternSetAndCounts(t *testing.T) {
	c := loadS27(t)
	single := DefaultOptions()
	res1, err := Generate(c, single)
	if err != nil {
		t.Fatal(err)
	}
	multi := DefaultOptions()
	multi.NDetect = 3
	res3, err := Generate(c, multi)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Patterns) < len(res1.Patterns) {
		t.Errorf("3-detect set (%d) smaller than 1-detect (%d)",
			len(res3.Patterns), len(res1.Patterns))
	}
	if res3.Coverage() < res1.Coverage() {
		t.Errorf("n-detect lost coverage: %v < %v", res3.Coverage(), res1.Coverage())
	}
	// Independent audit: count detections per fault over the final set.
	fs := NewFaultSim(c)
	counts := make([]int, len(res3.Faults))
	for _, p := range res3.Patterns {
		fs.SetPattern(p.PI, p.State)
		for i, f := range res3.Faults {
			if fs.Detects(f) {
				counts[i]++
			}
		}
	}
	for i, f := range res3.Faults {
		if res3.Detected[i] && res3.DetCounts[i] >= 3 && counts[i] < 3 {
			t.Errorf("fault %s: claimed >=3 detections, audit found %d", f.Name(c), counts[i])
		}
		if res3.DetCounts[i] > 0 && counts[i] == 0 {
			t.Errorf("fault %s: claimed detected, audit found none", f.Name(c))
		}
	}
}

// TestSCOAPGuidanceKeepsClassificationSound: SCOAP only reorders the
// search; coverage conclusions on s27 must be identical with and without
// it.
func TestSCOAPGuidanceKeepsClassificationSound(t *testing.T) {
	c := loadS27(t)
	with := DefaultOptions()
	with.MaxRandomPatterns = 0
	without := with
	without.UseSCOAP = false
	a, err := Generate(c, with)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(c, without)
	if err != nil {
		t.Fatal(err)
	}
	if a.Coverage() != b.Coverage() || a.Untestable != b.Untestable {
		t.Errorf("SCOAP changed conclusions: cov %v/%v untestable %d/%d",
			a.Coverage(), b.Coverage(), a.Untestable, b.Untestable)
	}
}
