package atpg

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/scan"
)

func loadISCAS(t testing.TB, name string) *netlist.Circuit {
	t.Helper()
	p, ok := iscas.ByName(name)
	if !ok {
		t.Fatalf("no ISCAS profile %q", name)
	}
	c, err := iscas.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestGenerateWorkersBitIdentical pins the scheduler's determinism
// contract: Options.Workers changes wall time only. Every field of the
// Result — the pattern set bit-for-bit, detection flags and counts,
// classification counters, and the total backtrack figure — must match
// the serial schedule for any worker count.
func TestGenerateWorkersBitIdentical(t *testing.T) {
	circuits := []struct {
		name string
		c    *netlist.Circuit
	}{
		{"s27", loadS27(t)},
		{"s382", loadISCAS(t, "s382")},
	}
	for _, tc := range circuits {
		for _, nd := range []int{1, 3} {
			opts := DefaultOptions()
			opts.NDetect = nd
			opts.Workers = 1
			base, err := Generate(tc.c, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{0, 2, 4, 9} {
				opts.Workers = w
				got, err := Generate(tc.c, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, base) {
					t.Errorf("%s ndetect=%d: workers=%d diverges from serial: "+
						"patterns %d vs %d, backtracks %d vs %d",
						tc.name, nd, w, len(got.Patterns), len(base.Patterns),
						got.Backtracks, base.Backtracks)
				}
			}
		}
	}
}

// TestGenerateWorkersBitIdenticalLarge repeats the identity check on a
// circuit big enough that every scheduler path (multiple chunks, buffer
// flushes publishing saturation mid-queue, worker-side skips) engages.
func TestGenerateWorkersBitIdenticalLarge(t *testing.T) {
	c := loadISCAS(t, "s1423")
	opts := DefaultOptions()
	opts.Workers = 1
	base, err := Generate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	got, err := Generate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, base) {
		t.Errorf("s1423: workers=4 diverges from serial: patterns %d vs %d, backtracks %d vs %d",
			len(got.Patterns), len(base.Patterns), got.Backtracks, base.Backtracks)
	}
}

// TestGenerateWorkersRespectMaxPodemFaults checks the cap interacts
// correctly with speculation: workers may have run past the cap, but the
// committer must still classify the capped tail identically.
func TestGenerateWorkersRespectMaxPodemFaults(t *testing.T) {
	c := loadISCAS(t, "s382")
	for _, cap := range []int{1, 5, 20} {
		opts := DefaultOptions()
		opts.MaxRandomPatterns = 16
		opts.MaxPodemFaults = cap
		opts.Workers = 1
		base, err := Generate(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers = 4
		got, err := Generate(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Errorf("cap=%d: workers=4 diverges (aborted %d vs %d)",
				cap, got.Aborted, base.Aborted)
		}
	}
}

// TestDetectAllMaskMatchesSerialCrediting drives the batched
// fault-dropping pass against a hand-rolled serial per-pattern sweep:
// same quota skipping, same per-fault credit counts, same set of
// credited lanes, for assorted nDetect quotas and pre-loaded counts.
func TestDetectAllMaskMatchesSerialCrediting(t *testing.T) {
	c := loadS27(t)
	rng := rand.New(rand.NewSource(7))
	faults := AllFaults(c)
	serial := NewFaultSim(c)
	packed := NewFaultSim64(c)
	for _, nd := range []int{1, 2, 5} {
		for trial := 0; trial < 6; trial++ {
			batch := randomBatch(c, rng, 1+rng.Intn(64))
			sCount := make([]int, len(faults))
			for i := range sCount {
				sCount[i] = rng.Intn(nd + 1)
			}
			pCount := append([]int(nil), sCount...)
			sDet := make([]bool, len(faults))
			pDet := make([]bool, len(faults))

			var sCredited uint64
			for lane, p := range batch {
				serial.SetPattern(p.PI, p.State)
				for i, f := range faults {
					if sCount[i] >= nd {
						continue
					}
					if serial.Detects(f) {
						sCount[i]++
						sDet[i] = true
						sCredited |= 1 << lane
					}
				}
			}

			packed.SetPatterns(batch)
			pCredited := packed.DetectAllMask(faults, pCount, pDet, nd)
			if pCredited != sCredited {
				t.Fatalf("nd=%d trial=%d: credited lanes %064b, serial %064b",
					nd, trial, pCredited, sCredited)
			}
			if !reflect.DeepEqual(pCount, sCount) {
				t.Fatalf("nd=%d trial=%d: detCount diverges", nd, trial)
			}
			if !reflect.DeepEqual(pDet, sDet) {
				t.Fatalf("nd=%d trial=%d: detected flags diverge", nd, trial)
			}
		}
	}
}

// serialRandomPhase is the per-pattern reference for the random phase:
// it draws the rng stream in the same ≤64-pattern batches Generate does
// (so the streams align), but simulates and credits one pattern at a
// time, bumping the consecutive-useless counter per pattern and stopping
// the moment it trips. Generate's three-pass batched phase must keep
// exactly these patterns and count exactly these tries.
func serialRandomPhase(c *netlist.Circuit, opts Options) (kept []scan.Pattern, tries int) {
	rng := rand.New(rand.NewSource(opts.Seed))
	faults := AllFaults(c)
	detCount := make([]int, len(faults))
	fs := NewFaultSim(c)
	nPI, nFF := len(c.PIs), c.NumFFs()
	stall := 0
	for tries < opts.MaxRandomPatterns && stall < opts.RandomStall {
		bsize := opts.MaxRandomPatterns - tries
		if bsize > 64 {
			bsize = 64
		}
		batch := make([]scan.Pattern, 0, bsize)
		for len(batch) < bsize {
			p := scan.Pattern{PI: make([]bool, nPI), State: make([]bool, nFF)}
			randFill(rng, p.PI)
			randFill(rng, p.State)
			batch = append(batch, p)
		}
		for lane := 0; lane < bsize && stall < opts.RandomStall; lane++ {
			p := batch[lane]
			fs.SetPattern(p.PI, p.State)
			n := 0
			for i, f := range faults {
				if detCount[i] >= opts.NDetect {
					continue
				}
				if fs.Detects(f) {
					detCount[i]++
					n++
				}
			}
			tries++
			if n > 0 {
				stall = 0
				kept = append(kept, p)
			} else {
				stall++
			}
		}
	}
	return kept, tries
}

// TestRandomPhaseStallMatchesSerial is the regression test for the
// random-phase stall bug: the batched phase used to count staleness per
// 64-lane batch (any credit reset the counter for the whole batch), so
// it could overrun or undercut the configured threshold by up to 63
// patterns. The fixed phase must keep the same patterns and spend the
// same number of tries as exact per-pattern processing.
func TestRandomPhaseStallMatchesSerial(t *testing.T) {
	cases := []struct {
		name    string
		c       *netlist.Circuit
		stall   int
		nDetect int
	}{
		{"s27-tight", loadS27(t), 8, 1},
		{"s27-ndetect", loadS27(t), 8, 3},
		{"s382-default", loadISCAS(t, "s382"), 32, 1},
		{"s382-tiny", loadISCAS(t, "s382"), 3, 1},
	}
	for _, tc := range cases {
		opts := DefaultOptions()
		opts.RandomStall = tc.stall
		opts.NDetect = tc.nDetect
		opts.Compact = false
		wantKept, wantTries := serialRandomPhase(tc.c, opts)

		randCount := -1
		gotTries := 0
		ob := Observer{
			OnPhase: func(phase string, _ time.Duration, patterns int) {
				if phase == "random" {
					randCount = patterns
				}
			},
			OnRandomBatch: func(patterns, _ int) { gotTries += patterns },
		}
		res, err := GenerateObserved(context.Background(), tc.c, opts, ob)
		if err != nil {
			t.Fatal(err)
		}
		if randCount != len(wantKept) {
			t.Errorf("%s: random phase kept %d patterns, serial reference kept %d",
				tc.name, randCount, len(wantKept))
			continue
		}
		if !reflect.DeepEqual(res.Patterns[:randCount], wantKept) {
			t.Errorf("%s: random-phase pattern set diverges from serial reference", tc.name)
		}
		if gotTries != wantTries {
			t.Errorf("%s: phase spent %d tries, serial reference spent %d",
				tc.name, gotTries, wantTries)
		}
	}
}

// TestGenerateChainsRejectsBadPartition: explicit fill groups must be an
// exact partition of the flops.
func TestGenerateChainsRejectsBadPartition(t *testing.T) {
	c := loadS27(t) // 3 flops
	opts := DefaultOptions()
	opts.Fill = FillAdjacent
	bad := [][][]int{
		{{0, 1}},         // flop 2 missing
		{{0, 1, 2, 2}},   // duplicate in one chain
		{{0, 1, 3}},      // out of range
		{{0, 1}, {1, 2}}, // duplicate across chains
		{{0, -1, 2}},     // negative
	}
	for _, groups := range bad {
		if _, err := GenerateChains(context.Background(), c, opts, groups); err == nil {
			t.Errorf("groups %v: want error, got nil", groups)
		}
	}
}

// TestGenerateChainsMatchesFillChains: passing the round-robin partition
// explicitly is the same as asking for it by count.
func TestGenerateChainsMatchesFillChains(t *testing.T) {
	c := loadISCAS(t, "s382") // 21 flops
	cs, err := scan.NewChains(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Fill = FillAdjacent
	opts.FillChains = 3
	implicit, err := Generate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := GenerateChains(context.Background(), c, opts, cs.Groups)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(implicit, explicit) {
		t.Error("explicit round-robin groups diverge from FillChains")
	}
}
