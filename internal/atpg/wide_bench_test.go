package atpg

import (
	"math/rand"
	"os"
	"reflect"
	"testing"

	"repro/internal/benchjson"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
)

// This file preserves the pre-refactor FaultSim64 as the baseline for
// `make bench-wide`: a fixed single-word lane layout, its own gate
// switch, a stamp-checked read per fanin, and an interpreted topological
// walk per 64-pattern good simulation. The shipping FaultSimW loads 256
// patterns at once — one wide compiled-program evaluation replaces four
// interpreted walks — and runs the faulty event passes over flattened
// structure arrays with repair-based state and per-word early exit, so a
// fault stops simulating the moment its detection quota is met.

// legacyFaultSim64 is the pre-refactor FaultSim64, verbatim with local
// names.
type legacyFaultSim64 struct {
	c    *netlist.Circuit
	good []uint64
	n    int

	faulty []uint64
	stamp  []uint32
	gstamp []uint32
	epoch  uint32

	buckets [][]netlist.GateID
	inBuf   []uint64
}

func newLegacyFaultSim64(c *netlist.Circuit) *legacyFaultSim64 {
	if !c.Frozen() {
		panic("legacy FaultSim64 needs a frozen circuit")
	}
	return &legacyFaultSim64{
		c:       c,
		good:    make([]uint64, c.NumNets()),
		faulty:  make([]uint64, c.NumNets()),
		stamp:   make([]uint32, c.NumNets()),
		gstamp:  make([]uint32, c.NumGates()),
		buckets: make([][]netlist.GateID, c.Depth()+1),
		inBuf:   make([]uint64, 0, 8),
	}
}

func legacyEvalWord(t logic.GateType, ins []uint64) uint64 {
	switch t {
	case logic.Buf:
		return ins[0]
	case logic.Not:
		return ^ins[0]
	case logic.And, logic.Nand:
		out := ^uint64(0)
		for _, w := range ins {
			out &= w
		}
		if t == logic.Nand {
			return ^out
		}
		return out
	case logic.Or, logic.Nor:
		out := uint64(0)
		for _, w := range ins {
			out |= w
		}
		if t == logic.Nor {
			return ^out
		}
		return out
	case logic.Xor, logic.Xnor:
		out := uint64(0)
		for _, w := range ins {
			out ^= w
		}
		if t == logic.Xnor {
			return ^out
		}
		return out
	case logic.Mux2:
		d0, d1, sel := ins[0], ins[1], ins[2]
		return (d0 &^ sel) | (d1 & sel)
	}
	panic("legacy evalWord on unknown gate type " + t.String())
}

func (fs *legacyFaultSim64) SetPatterns(patterns []scan.Pattern) {
	if len(patterns) == 0 || len(patterns) > 64 {
		panic("legacy SetPatterns needs 1..64 patterns")
	}
	c := fs.c
	fs.n = len(patterns)
	for i, piNet := range c.PIs {
		w := uint64(0)
		for lane, p := range patterns {
			if p.PI[i] {
				w |= 1 << lane
			}
		}
		fs.good[piNet] = w
	}
	for f, ff := range c.FFs {
		w := uint64(0)
		for lane, p := range patterns {
			if p.State[f] {
				w |= 1 << lane
			}
		}
		fs.good[ff.Q] = w
	}
	for _, gi := range c.Topo() {
		g := &c.Gates[gi]
		fs.inBuf = fs.inBuf[:0]
		for _, in := range g.Inputs {
			fs.inBuf = append(fs.inBuf, fs.good[in])
		}
		fs.good[g.Output] = legacyEvalWord(g.Type, fs.inBuf)
	}
}

func (fs *legacyFaultSim64) laneMask() uint64 {
	if fs.n == 64 {
		return ^uint64(0)
	}
	return (1 << fs.n) - 1
}

func (fs *legacyFaultSim64) val(n netlist.NetID) uint64 {
	if fs.stamp[n] == fs.epoch {
		return fs.faulty[n]
	}
	return fs.good[n]
}

func (fs *legacyFaultSim64) DetectMask(f Fault) uint64 {
	c := fs.c
	lanes := fs.laneMask()
	stuck := uint64(0)
	if f.Stuck {
		stuck = ^uint64(0)
	}
	if (fs.good[f.Net]^stuck)&lanes == 0 {
		return 0
	}
	fs.epoch++
	if fs.epoch == 0 {
		for i := range fs.stamp {
			fs.stamp[i] = 0
		}
		for i := range fs.gstamp {
			fs.gstamp[i] = 0
		}
		fs.epoch = 1
	}
	fs.faulty[f.Net] = stuck
	fs.stamp[f.Net] = fs.epoch
	detected := uint64(0)
	if net := &c.Nets[f.Net]; net.IsPO() || len(net.FanoutFF) > 0 {
		detected |= (fs.good[f.Net] ^ stuck) & lanes
	}
	for i := range fs.buckets {
		fs.buckets[i] = fs.buckets[i][:0]
	}
	schedule := func(n netlist.NetID) {
		for _, g := range c.Nets[n].Fanout {
			if fs.gstamp[g] != fs.epoch {
				fs.gstamp[g] = fs.epoch
				fs.buckets[c.Level(g)] = append(fs.buckets[c.Level(g)], g)
			}
		}
	}
	schedule(f.Net)
	for lvl := 0; lvl < len(fs.buckets); lvl++ {
		for qi := 0; qi < len(fs.buckets[lvl]); qi++ {
			gi := fs.buckets[lvl][qi]
			g := &c.Gates[gi]
			if g.Output == f.Net {
				continue
			}
			fs.inBuf = fs.inBuf[:0]
			for _, in := range g.Inputs {
				fs.inBuf = append(fs.inBuf, fs.val(in))
			}
			nv := legacyEvalWord(g.Type, fs.inBuf)
			if (nv^fs.val(g.Output))&lanes == 0 {
				continue
			}
			fs.faulty[g.Output] = nv
			fs.stamp[g.Output] = fs.epoch
			if net := &c.Nets[g.Output]; net.IsPO() || len(net.FanoutFF) > 0 {
				detected |= (nv ^ fs.good[g.Output]) & lanes
			}
			schedule(g.Output)
		}
	}
	return detected
}

func (fs *legacyFaultSim64) DetectAllMask(faults []Fault, detCount []int, detected []bool, nDetect int) uint64 {
	if nDetect < 1 {
		nDetect = 1
	}
	credited := uint64(0)
	for i, f := range faults {
		if detCount[i] >= nDetect {
			continue
		}
		mask := fs.DetectMask(f)
		if mask == 0 {
			continue
		}
		for mask != 0 && detCount[i] < nDetect {
			low := mask & (-mask)
			credited |= low
			mask &^= low
			detCount[i]++
		}
		if detected != nil {
			detected[i] = true
		}
	}
	return credited
}

// TestBenchWideFaultSimJSON times the fault-dropping sweep — every
// collapsed fault against a 256-pattern buffer — on the preserved legacy
// FaultSim64 (four 64-pattern chunks) vs FaultSimW at 64 and 256 lanes,
// and merges faultsim/<circuit> entries into the bench-wide report.
// `make bench-wide` runs it; without WIDE_BENCH_OUT it is skipped.
func TestBenchWideFaultSimJSON(t *testing.T) {
	out := os.Getenv("WIDE_BENCH_OUT")
	if out == "" {
		t.Skip("set WIDE_BENCH_OUT to run the wide-kernel faultsim benchmark")
	}
	const nPats = 256
	const rounds = 5
	entries := map[string]benchjson.Entry{}
	for _, name := range []string{"s1423", "s5378"} {
		c := loadISCAS(t, name)
		faults := AllFaults(c)
		batch := randomBatch(c, rand.New(rand.NewSource(7)), nPats)

		// Simulators are built once and reused across rounds — the realistic
		// shape (one simulator serves many batches in a generation flow), and
		// the same concession for every variant.
		legacy := newLegacyFaultSim64(c)
		sims := map[int]*FaultSimW{64: NewFaultSimW(c, 64), 256: NewFaultSimW(c, 256)}

		// sweep runs the full fault-dropping pass over the 256-pattern
		// buffer and returns the final quota state: lanes == 0 is the
		// legacy baseline, otherwise the FaultSimW at that width chunking
		// the buffer to its lane count.
		sweep := func(lanes int) ([]int, []bool) {
			detCount := make([]int, len(faults))
			detected := make([]bool, len(faults))
			if lanes == 0 {
				for at := 0; at < nPats; at += 64 {
					legacy.SetPatterns(batch[at : at+64])
					legacy.DetectAllMask(faults, detCount, detected, 1)
				}
			} else {
				fs := sims[lanes]
				width := fs.LaneWidth()
				for at := 0; at < nPats; at += width {
					fs.SetPatterns(batch[at : at+width])
					fs.DetectAllMask(faults, detCount, detected, 1)
				}
			}
			return detCount, detected
		}

		lCount, lDet := sweep(0)
		for _, lanes := range []int{64, 256} {
			nCount, nDet := sweep(lanes)
			if !reflect.DeepEqual(lCount, nCount) || !reflect.DeepEqual(lDet, nDet) {
				t.Fatalf("%s: FaultSimW(%d) sweep diverges from the legacy baseline", name, lanes)
			}
		}

		legacyMS := benchjson.MinMS(rounds, func() { sweep(0) })
		new64MS := benchjson.MinMS(rounds, func() { sweep(64) })
		new256MS := benchjson.MinMS(rounds, func() { sweep(256) })
		speedup := legacyMS / new256MS
		t.Logf("%s: legacy64 %.2fms, new64 %.2fms, new256 %.2fms (%.2fx)",
			name, legacyMS, new64MS, new256MS, speedup)
		entries["faultsim/"+name] = benchjson.Entry{
			Workload: "DetectAllMask over all collapsed faults, 256 random patterns, seed 7, best of 5",
			ResultsMS: map[string]float64{
				"legacy64": benchjson.Round2(legacyMS),
				"new64":    benchjson.Round2(new64MS),
				"new256":   benchjson.Round2(new256MS),
			},
			SpeedupVsLegacy64: benchjson.Round2(speedup),
			Criterion:         "new256 >= 1.5x over the pre-refactor 64-lane kernel",
			Met:               speedup >= 1.5,
		}
	}
	if err := benchjson.Merge(out, entries); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged faultsim entries into %s", out)
}
