package atpg

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/testability"
)

// This file preserves the pre-vectorization generation pipeline verbatim
// as the differential / benchmark baseline: whole-circuit re-implication
// PODEM (the podem engine's full mode), a serial per-pattern fault-drop
// sweep after every deterministic pattern, batch-granular random-phase
// stall accounting, serial reverse-order compaction, and flop-index-order
// adjacent fill. generateReference is what the optimized path is measured
// against in TestBenchATPGJSON, and what the search-equivalence tests
// compare engine internals to.

// generateReference runs the legacy pipeline. Results are NOT expected to
// be identical to GenerateContext — the batched pipeline's buffer-flush
// crediting, precise stall cut, and chain-order fill are deliberate
// behavior changes — but coverage conclusions must agree.
func generateReference(ctx context.Context, c *netlist.Circuit, opts Options, ob Observer) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !c.Frozen() {
		return nil, fmt.Errorf("atpg: circuit %s must be frozen", c.Name)
	}
	if opts.MaxBacktracks <= 0 {
		opts.MaxBacktracks = 64
	}
	if opts.MaxRandomPatterns < 0 {
		opts.MaxRandomPatterns = 0
	}
	if opts.RandomStall <= 0 {
		opts.RandomStall = 32
	}
	if opts.NDetect < 1 {
		opts.NDetect = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	faults := AllFaults(c)
	detected := make([]bool, len(faults))
	detCount := make([]int, len(faults))
	fs := NewFaultSim(c)

	nPI, nFF := len(c.PIs), c.NumFFs()
	var patterns []scan.Pattern

	stopRandom := ob.phaseTimer("random")
	fs64 := NewFaultSim64(c)
	stall := 0
	batch := make([]scan.Pattern, 0, 64)
	for tries := 0; tries < opts.MaxRandomPatterns && stall < opts.RandomStall; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bsize := opts.MaxRandomPatterns - tries
		if bsize > 64 {
			bsize = 64
		}
		batch = batch[:0]
		for len(batch) < bsize {
			p := scan.Pattern{PI: make([]bool, nPI), State: make([]bool, nFF)}
			randFill(rng, p.PI)
			randFill(rng, p.State)
			batch = append(batch, p)
		}
		tries += bsize
		fs64.SetPatterns(batch)
		credited := uint64(0)
		newDet := 0
		for i, f := range faults {
			if detCount[i] >= opts.NDetect {
				continue
			}
			mask := fs64.DetectMask(f)
			if mask == 0 {
				continue
			}
			newDet++
			for mask != 0 && detCount[i] < opts.NDetect {
				low := mask & (-mask)
				credited |= low
				mask &^= low
				detCount[i]++
			}
			detected[i] = true
		}
		if newDet > 0 {
			stall = 0
			for lane := 0; lane < bsize; lane++ {
				if credited&(1<<lane) != 0 {
					patterns = append(patterns, batch[lane])
				}
			}
		} else {
			stall += bsize
		}
		if ob.OnRandomBatch != nil {
			ob.OnRandomBatch(bsize, newDet)
		}
	}
	stopRandom(len(patterns))

	res := &Result{Faults: faults, Detected: detected, DetCounts: detCount}
	detectAllCount := func(pat scan.Pattern) int {
		fs.SetPattern(pat.PI, pat.State)
		n := 0
		for i, f := range faults {
			if detCount[i] >= opts.NDetect {
				continue
			}
			if fs.Detects(f) {
				detCount[i]++
				detected[i] = true
				n++
			}
		}
		return n
	}
	var scoap *testability.Analysis
	if opts.UseSCOAP {
		scoap = testability.Compute(c)
	}
	env := newPodemEnv(c, scoap, opts.MaxBacktracks)
	stopPodem := ob.phaseTimer("podem")
	attempted := 0
	for i, f := range faults {
		if detCount[i] >= opts.NDetect {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.MaxPodemFaults > 0 && attempted >= opts.MaxPodemFaults {
			if !detected[i] {
				res.Aborted++
			}
			if ob.OnPodemFault != nil {
				ob.OnPodemFault(f, PodemSkipped, 0)
			}
			continue
		}
		attempted++
		p := env.newPodem(true)
		status := p.run(f)
		res.Backtracks += p.backtracks
		if ob.OnPodemFault != nil {
			ob.OnPodemFault(f, podemOutcomeOf(status), p.backtracks)
		}
		switch status {
		case podemSuccess:
			for detCount[i] < opts.NDetect {
				pat := referenceExtractPattern(c, p.assign, rng, opts.Fill)
				before := detCount[i]
				if detectAllCount(pat) > 0 {
					patterns = append(patterns, pat)
				}
				if detCount[i] == before {
					if !detected[i] {
						return nil, fmt.Errorf("atpg: internal: PODEM pattern misses its target fault %s",
							f.Name(c))
					}
					break
				}
			}
		case podemUntestable:
			res.Untestable++
		case podemAborted:
			res.Aborted++
		}
	}
	stopPodem(len(patterns))

	stopCompact := ob.phaseTimer("compact")
	if opts.Compact && len(patterns) > 1 {
		patterns = referenceCompact(c, patterns, faults, opts.NDetect)
	}
	stopCompact(len(patterns))
	res.Patterns = patterns
	return res, nil
}

// referenceExtractPattern is the legacy fill: one carry bit walks the
// whole assignment in PI-then-flop-index order, ignoring any chain
// partition.
func referenceExtractPattern(c *netlist.Circuit, assign []logic.Value, rng *rand.Rand, mode FillMode) scan.Pattern {
	nPI := len(c.PIs)
	pat := scan.Pattern{PI: make([]bool, nPI), State: make([]bool, c.NumFFs())}
	last := false
	for i, v := range assign {
		var b bool
		switch {
		case v.IsBinary():
			b = v.Bool()
			last = b
		case mode == FillZero:
			b = false
		case mode == FillOne:
			b = true
		case mode == FillAdjacent:
			b = last
		default:
			b = rng.Intn(2) == 1
		}
		if i < nPI {
			pat.PI[i] = b
		} else {
			pat.State[i-nPI] = b
		}
	}
	return pat
}

// referenceCompact is the legacy serial reverse-order compaction.
func referenceCompact(c *netlist.Circuit, patterns []scan.Pattern, faults []Fault, nDetect int) []scan.Pattern {
	if nDetect < 1 {
		nDetect = 1
	}
	fs := NewFaultSim(c)
	seen := make([]int, len(faults))
	var kept []scan.Pattern
	for i := len(patterns) - 1; i >= 0; i-- {
		p := patterns[i]
		fs.SetPattern(p.PI, p.State)
		useful := 0
		for fi, f := range faults {
			if seen[fi] >= nDetect {
				continue
			}
			if fs.Detects(f) {
				seen[fi]++
				useful++
			}
		}
		if useful > 0 {
			kept = append(kept, p)
		}
	}
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	return kept
}
