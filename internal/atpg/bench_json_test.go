package atpg

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestBenchATPGJSON measures the deterministic-phase (PODEM + fault
// dropping) speedup of the incremental batched pipeline over the
// preserved legacy baseline on the two profiling circuits, checks the
// worker bit-identity gate, and writes a kernel-bench/v1 report.
// `make bench-atpg` runs it; without ATPG_BENCH_OUT it is skipped so
// normal test runs stay fast.
func TestBenchATPGJSON(t *testing.T) {
	out := os.Getenv("ATPG_BENCH_OUT")
	if out == "" {
		t.Skip("set ATPG_BENCH_OUT to run the ATPG pipeline benchmark")
	}

	type row struct {
		refPodemMS float64
		newPodemMS float64
		refTotalMS float64
		newTotalMS float64
		refCov     float64
		newCov     float64
		speedup    float64
	}
	circuits := []string{"s1423", "s5378"}
	rows := map[string]row{}

	for _, name := range circuits {
		c := loadISCAS(t, name)
		opts := DefaultOptions()
		timed := func(gen func(Observer) (*Result, error)) (podem, total time.Duration, res *Result) {
			ob := Observer{OnPhase: func(phase string, d time.Duration, _ int) {
				if phase == "podem" {
					podem = d
				}
			}}
			start := time.Now()
			res, err := gen(ob)
			if err != nil {
				t.Fatal(err)
			}
			return podem, time.Since(start), res
		}
		refP, refT, refRes := timed(func(ob Observer) (*Result, error) {
			return generateReference(context.Background(), c, opts, ob)
		})
		newP, newT, newRes := timed(func(ob Observer) (*Result, error) {
			return GenerateObserved(context.Background(), c, opts, ob)
		})
		if d := newRes.Coverage() - refRes.Coverage(); d < -0.02 || d > 0.02 {
			t.Errorf("%s: coverage moved from %.4f to %.4f", name, refRes.Coverage(), newRes.Coverage())
		}
		rows[name] = row{
			refPodemMS: float64(refP) / float64(time.Millisecond),
			newPodemMS: float64(newP) / float64(time.Millisecond),
			refTotalMS: float64(refT) / float64(time.Millisecond),
			newTotalMS: float64(newT) / float64(time.Millisecond),
			refCov:     refRes.Coverage(),
			newCov:     newRes.Coverage(),
			speedup:    float64(refP) / float64(newP),
		}
		t.Logf("%s: podem phase %.1fms -> %.1fms (%.2fx), total %.1fms -> %.1fms",
			name, rows[name].refPodemMS, rows[name].newPodemMS, rows[name].speedup,
			rows[name].refTotalMS, rows[name].newTotalMS)
	}

	// Correctness gate rides along: worker parallelism must not move a
	// single bit of the result on the benchmark circuit.
	identity := true
	{
		c := loadISCAS(t, "s1423")
		opts := DefaultOptions()
		opts.Workers = 1
		j1, err := Generate(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers = 4
		j4, err := Generate(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(j1, j4) {
			identity = false
			t.Error("s1423: Workers=4 result diverges from Workers=1")
		}
	}

	const wantSpeedup = 5.0
	met := rows["s1423"].speedup >= wantSpeedup && identity
	if rows["s1423"].speedup < wantSpeedup {
		t.Errorf("s1423 podem-phase speedup %.2fx below the %.0fx acceptance bar",
			rows["s1423"].speedup, wantSpeedup)
	}

	report := map[string]any{
		"schema":     "scanpower/kernel-bench/v1",
		"label":      "atpg-incremental-podem",
		"created_at": time.Now().Format("2006-01-02"),
		"go_version": runtime.Version(),
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
		"cpu":        cpuModel(),
		"benchmark":  "TestBenchATPGJSON",
		"workload": map[string]any{
			"circuits": circuits,
			"options":  "DefaultOptions (MaxBacktracks=64, MaxRandomPatterns=512, RandomStall=32, Compact, SCOAP)",
			"phase":    "podem (deterministic PODEM + fault dropping), wall time via Observer.OnPhase",
			"baseline": "generateReference: full re-implication PODEM + serial per-pattern fault dropping",
			"command":  "make bench-atpg",
		},
		"results_ms": map[string]any{
			"s1423_ref_podem": rows["s1423"].refPodemMS,
			"s1423_new_podem": rows["s1423"].newPodemMS,
			"s1423_ref_total": rows["s1423"].refTotalMS,
			"s1423_new_total": rows["s1423"].newTotalMS,
			"s5378_ref_podem": rows["s5378"].refPodemMS,
			"s5378_new_podem": rows["s5378"].newPodemMS,
			"s5378_ref_total": rows["s5378"].refTotalMS,
			"s5378_new_total": rows["s5378"].newTotalMS,
		},
		"coverage": map[string]any{
			"s1423_ref": rows["s1423"].refCov,
			"s1423_new": rows["s1423"].newCov,
			"s5378_ref": rows["s5378"].refCov,
			"s5378_new": rows["s5378"].newCov,
		},
		"speedup_podem_s1423":                 round2(rows["s1423"].speedup),
		"speedup_podem_s5378":                 round2(rows["s5378"].speedup),
		"workers_bit_identity_s1423_j1_vs_j4": identity,
		"acceptance": map[string]any{
			"criterion": "incremental podem phase >= 5x over legacy baseline on s1423, with Workers=1 vs Workers=4 bit-identity",
			"met":       met,
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

func round2(x float64) float64 {
	return float64(int(x*100+0.5)) / 100
}

// cpuModel best-effort reads the CPU model name for the report header.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if i := strings.IndexByte(line, ':'); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return "unknown"
}
