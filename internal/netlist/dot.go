package netlist

import (
	"fmt"
	"io"
)

// WriteDOT emits the circuit as a Graphviz digraph for visual inspection.
// Primary inputs are boxes, flip-flops are double octagons, gates are
// ellipses labeled with their type.
func (c *Circuit) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", c.Name); err != nil {
		return err
	}
	for _, pi := range c.PIs {
		if _, err := fmt.Fprintf(w, "  %q [shape=box];\n", c.Nets[pi].Name); err != nil {
			return err
		}
	}
	for _, ff := range c.FFs {
		if _, err := fmt.Fprintf(w, "  %q [shape=doubleoctagon];\n", ff.Name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %q -> %q [style=dashed];\n",
			c.Nets[ff.D].Name, ff.Name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %q -> %q;\n",
			ff.Name, c.Nets[ff.Q].Name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %q [shape=point];\n", c.Nets[ff.Q].Name); err != nil {
			return err
		}
	}
	for gi, g := range c.Gates {
		gname := fmt.Sprintf("g%d_%s", gi, g.Type)
		if _, err := fmt.Fprintf(w, "  %q [label=%q];\n", gname, g.Type.String()); err != nil {
			return err
		}
		for _, in := range g.Inputs {
			if _, err := fmt.Fprintf(w, "  %q -> %q;\n", c.Nets[in].Name, gname); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  %q -> %q;\n", gname, c.Nets[g.Output].Name); err != nil {
			return err
		}
	}
	for _, po := range c.POs {
		if _, err := fmt.Fprintf(w, "  %q [shape=box, peripheries=2];\n",
			c.Nets[po].Name); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
