package netlist

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

// buildS27ish builds a small sequential circuit resembling ISCAS89 s27:
// 4 PIs, 1 PO, 3 DFFs, a handful of gates.
func buildS27ish(t *testing.T) *Circuit {
	t.Helper()
	c := New("s27ish")
	for _, pi := range []string{"G0", "G1", "G2", "G3"} {
		c.AddPI(pi)
	}
	c.AddFF("ff1", "G5", "G10")
	c.AddFF("ff2", "G6", "G11")
	c.AddFF("ff3", "G7", "G13")
	c.AddGate(logic.Not, "G14", "G0")
	c.AddGate(logic.Not, "G17", "G11")
	c.AddGate(logic.Nand, "G8", "G14", "G6")
	c.AddGate(logic.Nor, "G15", "G12", "G8")
	c.AddGate(logic.Nor, "G16", "G3", "G8")
	c.AddGate(logic.Nor, "G12", "G1", "G7")
	c.AddGate(logic.Nor, "G13", "G2", "G12")
	c.AddGate(logic.Nor, "G11", "G5", "G16")
	c.AddGate(logic.Nor, "G10", "G14", "G11")
	c.AddGate(logic.Nor, "G9", "G16", "G15")
	c.MarkPO("G17")
	if err := c.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return c
}

func TestFreezeBasics(t *testing.T) {
	c := buildS27ish(t)
	if got := c.NumGates(); got != 10 {
		t.Errorf("NumGates = %d, want 10", got)
	}
	if got := c.NumFFs(); got != 3 {
		t.Errorf("NumFFs = %d, want 3", got)
	}
	if len(c.PIs) != 4 || len(c.POs) != 1 {
		t.Errorf("PIs/POs = %d/%d, want 4/1", len(c.PIs), len(c.POs))
	}
	if !c.Frozen() {
		t.Error("circuit should be frozen")
	}
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	c := buildS27ish(t)
	pos := make(map[GateID]int)
	for i, g := range c.Topo() {
		pos[g] = i
	}
	if len(pos) != c.NumGates() {
		t.Fatalf("topo order has %d gates, want %d", len(pos), c.NumGates())
	}
	for gi, g := range c.Gates {
		for _, in := range g.Inputs {
			if d := c.Nets[in].Driver; d != InvalidGate {
				if pos[d] >= pos[GateID(gi)] {
					t.Errorf("gate %d precedes its driver %d in topo order", gi, d)
				}
			}
		}
	}
}

func TestLevelsMonotone(t *testing.T) {
	c := buildS27ish(t)
	for gi, g := range c.Gates {
		for _, in := range g.Inputs {
			if d := c.Nets[in].Driver; d != InvalidGate {
				if c.Level(d) >= c.Level(GateID(gi)) {
					t.Errorf("level(driver %d)=%d >= level(gate %d)=%d",
						d, c.Level(d), gi, c.Level(GateID(gi)))
				}
			}
		}
	}
	if c.Depth() <= 0 {
		t.Error("Depth should be positive")
	}
}

func TestFanoutLists(t *testing.T) {
	c := buildS27ish(t)
	// G8 feeds G15 and G16.
	id, ok := c.NetByName("G8")
	if !ok {
		t.Fatal("net G8 missing")
	}
	if got := len(c.Nets[id].Fanout); got != 2 {
		t.Errorf("fanout(G8) = %d, want 2", got)
	}
	// G11 feeds gates G17, G10 and flop ff2.
	id, _ = c.NetByName("G11")
	if got := len(c.Nets[id].Fanout); got != 2 {
		t.Errorf("gate fanout(G11) = %d, want 2", got)
	}
	if got := len(c.Nets[id].FanoutFF); got != 1 {
		t.Errorf("FF fanout(G11) = %d, want 1", got)
	}
}

func TestCombInputsAndPseudo(t *testing.T) {
	c := buildS27ish(t)
	if got := len(c.PseudoInputs()); got != 3 {
		t.Errorf("PseudoInputs = %d, want 3", got)
	}
	if got := len(c.PseudoOutputs()); got != 3 {
		t.Errorf("PseudoOutputs = %d, want 3", got)
	}
	if got := len(c.CombInputs()); got != 7 {
		t.Errorf("CombInputs = %d, want 7", got)
	}
	for _, q := range c.PseudoInputs() {
		if !c.Nets[q].IsPPI() {
			t.Errorf("net %s should be a pseudo-input", c.Nets[q].Name)
		}
	}
}

func TestUndrivenNetRejected(t *testing.T) {
	c := New("bad")
	c.AddPI("a")
	c.AddGate(logic.Nand, "out", "a", "floating")
	if err := c.Freeze(); err == nil {
		t.Fatal("Freeze accepted an undriven net")
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	c := New("cyc")
	c.AddPI("a")
	c.AddGate(logic.Nand, "x", "a", "y")
	c.AddGate(logic.Nand, "y", "a", "x")
	if err := c.Freeze(); err == nil {
		t.Fatal("Freeze accepted a combinational cycle")
	}
	if !strings.Contains(c.Freeze().Error(), "cycle") {
		t.Errorf("error should mention cycle, got %v", c.Freeze())
	}
}

func TestCycleThroughFFAccepted(t *testing.T) {
	// Sequential loops (through a flop) are fine.
	c := New("seqloop")
	c.AddPI("a")
	c.AddFF("ff", "q", "d")
	c.AddGate(logic.Nand, "d", "a", "q")
	c.MarkPO("d")
	if err := c.Freeze(); err != nil {
		t.Fatalf("Freeze rejected a sequential loop: %v", err)
	}
}

func TestBadArityRejected(t *testing.T) {
	c := New("arity")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGateNets(logic.Not, c.AddNet("x"), c.ensureNet("a"), c.ensureNet("b"))
	if err := c.Freeze(); err == nil {
		t.Fatal("Freeze accepted a 2-input NOT")
	}
	c2 := New("arity2")
	c2.AddPI("a")
	c2.AddGateNets(logic.Nand, c2.AddNet("x"), c2.ensureNet("a"))
	if err := c2.Freeze(); err == nil {
		t.Fatal("Freeze accepted a 1-input NAND")
	}
	c3 := New("arity3")
	c3.AddPI("a")
	c3.AddGateNets(logic.Mux2, c3.AddNet("x"), c3.ensureNet("a"), c3.ensureNet("a"))
	if err := c3.Freeze(); err == nil {
		t.Fatal("Freeze accepted a 2-input MUX2")
	}
}

func TestDoubleDrivenInputRejected(t *testing.T) {
	c := New("dd")
	c.AddPI("a")
	c.AddPI("b")
	c.AddGate(logic.Not, "a", "b") // drives a PI
	if err := c.Freeze(); err == nil {
		t.Fatal("Freeze accepted a gate driving a primary input")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := buildS27ish(t)
	cp := c.Clone()
	if err := cp.Freeze(); err != nil {
		t.Fatalf("clone Freeze: %v", err)
	}
	if cp.NumGates() != c.NumGates() || cp.NumFFs() != c.NumFFs() {
		t.Fatal("clone sizes differ")
	}
	// Mutating the clone must not affect the original.
	cp.AddGate(logic.Not, "extra", "G0")
	if cp.NumGates() != c.NumGates()+1 {
		t.Fatal("AddGate on clone did not grow clone")
	}
	if err := cp.Freeze(); err != nil {
		t.Fatalf("refreeze clone: %v", err)
	}
	if c.NumGates() != 10 {
		t.Fatal("original mutated by clone edit")
	}
	// Same topology.
	for i := range c.Gates {
		if c.Gates[i].Type != cp.Gates[i].Type || c.Gates[i].Output != cp.Gates[i].Output {
			t.Fatalf("clone gate %d differs", i)
		}
	}
}

func TestMutationUnfreezes(t *testing.T) {
	c := buildS27ish(t)
	c.AddGate(logic.Not, "n1", "G0")
	if c.Frozen() {
		t.Fatal("AddGate should unfreeze")
	}
	if err := c.Freeze(); err != nil {
		t.Fatalf("refreeze: %v", err)
	}
	// Fanout must be rebuilt, not duplicated.
	id, _ := c.NetByName("G0")
	if got := len(c.Nets[id].Fanout); got != 2 {
		t.Errorf("fanout(G0) after refreeze = %d, want 2", got)
	}
}

func TestUseBeforeFreezePanics(t *testing.T) {
	c := New("x")
	c.AddPI("a")
	defer func() {
		if recover() == nil {
			t.Fatal("Topo before Freeze did not panic")
		}
	}()
	c.Topo()
}

func TestComputeStats(t *testing.T) {
	c := buildS27ish(t)
	s := c.ComputeStats()
	if s.Gates != 10 || s.FFs != 3 || s.PIs != 4 || s.POs != 1 {
		t.Errorf("stats wrong: %+v", s)
	}
	if s.ByType[logic.Nor] != 7 || s.ByType[logic.Not] != 2 || s.ByType[logic.Nand] != 1 {
		t.Errorf("ByType wrong: %v", s.ByType)
	}
	if s.Depth != c.Depth() {
		t.Errorf("stats depth %d != %d", s.Depth, c.Depth())
	}
	if !strings.Contains(s.String(), "s27ish") {
		t.Errorf("Stats.String missing name: %q", s.String())
	}
}

func TestWriteDOT(t *testing.T) {
	c := buildS27ish(t)
	var sb strings.Builder
	if err := c.WriteDOT(&sb); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := sb.String()
	for _, frag := range []string{"digraph", "ff1", "NAND", "G17"} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT output missing %q", frag)
		}
	}
}

func TestSortedNetNames(t *testing.T) {
	c := buildS27ish(t)
	names := c.SortedNetNames()
	if len(names) != c.NumNets() {
		t.Fatalf("got %d names, want %d", len(names), c.NumNets())
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("names not sorted: %q > %q", names[i-1], names[i])
		}
	}
}

func TestNetByNameMissing(t *testing.T) {
	c := buildS27ish(t)
	if _, ok := c.NetByName("nope"); ok {
		t.Error("NetByName found a missing net")
	}
}
